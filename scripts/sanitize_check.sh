#!/usr/bin/env bash
# Build the whole tree under ASan+UBSan and run the tier-1 test suite.
# Any leak, out-of-bounds access or UB in the simulator (including the
# fault-injection/repair paths, which mutate raw metadata on purpose)
# fails this script. Intended for CI and pre-merge checks:
#
#   scripts/sanitize_check.sh [build-dir] [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"
shift || true

# float-cast-overflow is listed explicitly: GCC's `undefined` group
# does NOT include it, and it is exactly the check that catches an
# out-of-range double-to-u64 conversion in the map function's bypass
# path (a huge declared `lo` used to push `avgHash - lo` past 2^64).
cmake -B "$BUILD_DIR" -S . \
    -DDOPP_SANITIZE="address;undefined;float-cast-overflow" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# Re-run the batch-runner suite with a 4-wide pool so the threaded
# work-queue path (not just the jobs=1 serial path) is exercised under
# the sanitizers regardless of the host's core count.
DOPP_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)" -R 'BatchRunner' "$@"

# Re-run the StatRegistry/observability suite explicitly: it exercises
# the counterFn/formula closures (which capture raw structure pointers)
# and the snapshot export paths end-to-end, exactly where a lifetime
# bug would hide.
DOPP_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)" \
    -R 'StatRegistry|StatSnapshot|LlcCounters|LlcFactory|SchemaDrift|StatsJsonl' \
    "$@"

# Re-run the campaign-resilience suite with a 4-wide pool: the
# journal appenders, the watchdog's monitor thread and the retry path
# all cross threads, exactly where a data race or a lifetime bug in
# the checkpoint/resume machinery would hide.
DOPP_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)" -R 'Resilience|Journal' "$@"

# Re-run the memory-tier fault suite explicitly: the per-partition
# fault draws flip raw block bytes, the write-buffer model keeps
# per-partition queues, and the cross-tier guardrail callbacks capture
# pointers across the run — all places where an out-of-bounds flip or
# a lifetime bug would hide from the unsanitized suite.
DOPP_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)" -R 'MemTier|SimRuntimeAbort' "$@"

# Re-run the map-function edge tests explicitly: the bypass-path
# double-to-u64 clamps, the degenerate map widths and the kernel
# equality sweep are exactly where float-cast-overflow / shift UB
# would reappear.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R 'MapFunction|MapEdgeCases|MapBitsExtremes|MapSpaceSweep|MapTypeSweep|KernelMatchesGeneric' \
    "$@"

# Re-run the differential hot-path suite and the tag-pool fuzzer
# explicitly: the index-pooled tag lists and the SoA directories do
# raw arena indexing on every access, and the fault-injection paths
# flip pointer bits on purpose — exactly where an out-of-bounds index
# or a stale-link dereference would hide from the unsanitized suite.
DOPP_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)" -R 'HotpathDiff|TagPool|SetAssocDir' "$@"
echo "sanitize_check: all tests passed under ASan+UBSan"
