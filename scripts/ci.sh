#!/usr/bin/env bash
# One-shot CI gate: configure, build and run the tier-1 test suite.
# This is the acceptance command for every change; the sanitizer sweep
# (scripts/sanitize_check.sh) layers on top of it for pre-merge checks.
#
#   scripts/ci.sh [build-dir] [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
echo "ci: configure + build + tier-1 tests passed"
