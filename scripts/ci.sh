#!/usr/bin/env bash
# One-shot CI gate: configure, build and run the tier-1 test suite.
# This is the acceptance command for every change; the sanitizer sweep
# (scripts/sanitize_check.sh) layers on top of it for pre-merge checks.
#
#   scripts/ci.sh [build-dir] [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
echo "ci: configure + build + tier-1 tests passed"

# Kill-and-resume smoke test: SIGKILL a journaled fault campaign
# mid-sweep, resume it from the journal, and require byte-identical
# report output to an uninterrupted run (DESIGN.md §11).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SMOKE_ENV=(DOPP_WORKLOAD_SCALE=0.05 DOPP_FAULT_WORKLOADS=blackscholes,kmeans DOPP_JOBS=2)

env "${SMOKE_ENV[@]}" "$BUILD_DIR/bench/bench_fault_campaign" \
    > "$SMOKE_DIR/clean.txt"

env "${SMOKE_ENV[@]}" DOPP_JOURNAL="$SMOKE_DIR/journal.jsonl" \
    "$BUILD_DIR/bench/bench_fault_campaign" \
    > "$SMOKE_DIR/killed.txt" 2> /dev/null &
SMOKE_PID=$!
for _ in $(seq 1 200); do
    [ -s "$SMOKE_DIR/journal.jsonl" ] && break
    sleep 0.05
done
kill -9 "$SMOKE_PID" 2> /dev/null || true
wait "$SMOKE_PID" 2> /dev/null || true
[ -s "$SMOKE_DIR/journal.jsonl" ] || {
    echo "ci: smoke test journal empty before kill" >&2
    exit 1
}

env "${SMOKE_ENV[@]}" DOPP_JOURNAL="$SMOKE_DIR/journal.jsonl" \
    "$BUILD_DIR/bench/bench_fault_campaign" > "$SMOKE_DIR/resumed.txt"
diff "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/resumed.txt"
echo "ci: kill-and-resume smoke test passed"

# Perf-harness smoke: run bench_perf with tiny iteration counts
# (report-only — throughput numbers are not gated) and require its
# JSON schema (the sorted key set) to match the committed
# BENCH_perf.json, so the benchmark trajectory cannot silently drift.
"$BUILD_DIR/bench/bench_perf" --smoke --out "$SMOKE_DIR/BENCH_perf.json" \
    > "$SMOKE_DIR/bench_perf.txt"
json_keys() { grep -o '"[A-Za-z0-9_]*":' "$1" | sort -u; }
diff <(json_keys BENCH_perf.json) <(json_keys "$SMOKE_DIR/BENCH_perf.json") || {
    echo "ci: BENCH_perf.json schema drifted from the committed baseline" >&2
    exit 1
}
echo "ci: bench_perf smoke + schema check passed"

# Memory-tier smoke sweep: run the bench_fig_memtier sweep twice at a
# tiny scale — serial and 4-wide — and require byte-identical output,
# so the per-partition fault draws and the cross-tier guardrail stay
# deterministic under the threaded batch runner (DESIGN.md §13).
MEMTIER_ENV=(DOPP_WORKLOAD_SCALE=0.05 DOPP_MEMTIER_WORKLOADS=kmeans)
env "${MEMTIER_ENV[@]}" DOPP_JOBS=1 "$BUILD_DIR/bench/bench_fig_memtier" \
    > "$SMOKE_DIR/memtier_j1.txt"
env "${MEMTIER_ENV[@]}" DOPP_JOBS=4 "$BUILD_DIR/bench/bench_fig_memtier" \
    > "$SMOKE_DIR/memtier_j4.txt"
diff "$SMOKE_DIR/memtier_j1.txt" "$SMOKE_DIR/memtier_j4.txt" || {
    echo "ci: bench_fig_memtier diverged between jobs=1 and jobs=4" >&2
    exit 1
}
echo "ci: memory-tier smoke sweep passed (jobs=1 == jobs=4)"
