#!/usr/bin/env bash
# One-shot CI gate: configure, build and run the tier-1 test suite.
# This is the acceptance command for every change; the sanitizer sweep
# (scripts/sanitize_check.sh) layers on top of it for pre-merge checks.
#
#   scripts/ci.sh [build-dir] [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
echo "ci: configure + build + tier-1 tests passed"

# Kill-and-resume smoke test: SIGKILL a journaled fault campaign
# mid-sweep, resume it from the journal, and require byte-identical
# report output to an uninterrupted run (DESIGN.md §11).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SMOKE_ENV=(DOPP_WORKLOAD_SCALE=0.05 DOPP_FAULT_WORKLOADS=blackscholes,kmeans DOPP_JOBS=2)

env "${SMOKE_ENV[@]}" "$BUILD_DIR/bench/bench_fault_campaign" \
    > "$SMOKE_DIR/clean.txt"

env "${SMOKE_ENV[@]}" DOPP_JOURNAL="$SMOKE_DIR/journal.jsonl" \
    "$BUILD_DIR/bench/bench_fault_campaign" \
    > "$SMOKE_DIR/killed.txt" 2> /dev/null &
SMOKE_PID=$!
for _ in $(seq 1 200); do
    [ -s "$SMOKE_DIR/journal.jsonl" ] && break
    sleep 0.05
done
kill -9 "$SMOKE_PID" 2> /dev/null || true
wait "$SMOKE_PID" 2> /dev/null || true
[ -s "$SMOKE_DIR/journal.jsonl" ] || {
    echo "ci: smoke test journal empty before kill" >&2
    exit 1
}

env "${SMOKE_ENV[@]}" DOPP_JOURNAL="$SMOKE_DIR/journal.jsonl" \
    "$BUILD_DIR/bench/bench_fault_campaign" > "$SMOKE_DIR/resumed.txt"
diff "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/resumed.txt"
echo "ci: kill-and-resume smoke test passed"

# Perf-harness smoke: run bench_perf with tiny iteration counts
# (report-only — throughput numbers are not gated) and require its
# JSON schema (the sorted key set) to match the committed
# BENCH_perf.json, so the benchmark trajectory cannot silently drift.
"$BUILD_DIR/bench/bench_perf" --smoke --out "$SMOKE_DIR/BENCH_perf.json" \
    > "$SMOKE_DIR/bench_perf.txt"
json_keys() { grep -o '"[A-Za-z0-9_]*":' "$1" | sort -u; }
diff <(json_keys BENCH_perf.json) <(json_keys "$SMOKE_DIR/BENCH_perf.json") || {
    echo "ci: BENCH_perf.json schema drifted from the committed baseline" >&2
    exit 1
}
echo "ci: bench_perf smoke + schema check passed"

# Differential hot-path suite: the optimized structure-of-arrays
# Doppelgänger engine must stay bit-identical to the frozen reference
# implementation. Run it serial and 4-wide so the contract holds under
# the threaded batch runner too.
DOPP_JOBS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)" -R 'HotpathDiff|TagPool'
DOPP_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)" -R 'HotpathDiff|TagPool'
echo "ci: differential hot-path suite passed (jobs=1 and jobs=4)"

# Reference-vs-optimized stdout diff on a real figure bench: flip the
# whole process to the reference engine via DOPP_REFERENCE_IMPL and
# require byte-identical report output — the end-to-end version of the
# differential suite's bit-identity contract.
env DOPP_WORKLOAD_SCALE=0.05 DOPP_REFERENCE_IMPL=1 \
    "$BUILD_DIR/bench/bench_fig12_offchip_traffic" \
    > "$SMOKE_DIR/fig12_ref.txt"
env DOPP_WORKLOAD_SCALE=0.05 DOPP_REFERENCE_IMPL=0 \
    "$BUILD_DIR/bench/bench_fig12_offchip_traffic" \
    > "$SMOKE_DIR/fig12_opt.txt"
diff "$SMOKE_DIR/fig12_ref.txt" "$SMOKE_DIR/fig12_opt.txt" || {
    echo "ci: bench_fig12 output diverged between reference and" \
         "optimized engines" >&2
    exit 1
}
echo "ci: reference-vs-optimized bench stdout diff passed"

# Throughput gate: a full (non-smoke) bench_perf run's
# split-doppelganger accesses/sec must not regress more than
# DOPP_PERF_GATE_PCT percent (default 10) below the committed
# BENCH_perf.json. DOPP_PERF_GATE=0 skips the gate (e.g. on heavily
# loaded or throttled machines where wall-clock throughput is noise).
PERF_GATE="${DOPP_PERF_GATE:-1}"
PERF_GATE_PCT="${DOPP_PERF_GATE_PCT:-10}"
if [ "$PERF_GATE" != "0" ]; then
    "$BUILD_DIR/bench/bench_perf" \
        --out "$SMOKE_DIR/BENCH_perf_gate.json" > /dev/null
    split_rate() {
        grep -o '"organization": "split-doppelganger"[^}]*' "$1" |
            grep -o '"accessesPerSec": [0-9.eE+-]*' | head -1 |
            awk '{print $2}'
    }
    COMMITTED_RATE="$(split_rate BENCH_perf.json)"
    CURRENT_RATE="$(split_rate "$SMOKE_DIR/BENCH_perf_gate.json")"
    awk -v cur="$CURRENT_RATE" -v base="$COMMITTED_RATE" \
        -v pct="$PERF_GATE_PCT" 'BEGIN {
        lim = base * (1 - pct / 100.0);
        if (cur + 0 < lim) {
            printf "ci: split-doppelganger accessesPerSec %.4g is " \
                   "more than %s%% below the committed %.4g\n",
                   cur, pct, base;
            exit 1;
        }
        printf "ci: perf gate passed: %.4g accesses/s >= %.4g " \
               "(committed %.4g - %s%%)\n", cur, lim, base, pct;
    }'
else
    echo "ci: perf gate skipped (DOPP_PERF_GATE=0)"
fi

# Memory-tier smoke sweep: run the bench_fig_memtier sweep twice at a
# tiny scale — serial and 4-wide — and require byte-identical output,
# so the per-partition fault draws and the cross-tier guardrail stay
# deterministic under the threaded batch runner (DESIGN.md §13).
MEMTIER_ENV=(DOPP_WORKLOAD_SCALE=0.05 DOPP_MEMTIER_WORKLOADS=kmeans)
env "${MEMTIER_ENV[@]}" DOPP_JOBS=1 "$BUILD_DIR/bench/bench_fig_memtier" \
    > "$SMOKE_DIR/memtier_j1.txt"
env "${MEMTIER_ENV[@]}" DOPP_JOBS=4 "$BUILD_DIR/bench/bench_fig_memtier" \
    > "$SMOKE_DIR/memtier_j4.txt"
diff "$SMOKE_DIR/memtier_j1.txt" "$SMOKE_DIR/memtier_j4.txt" || {
    echo "ci: bench_fig_memtier diverged between jobs=1 and jobs=4" >&2
    exit 1
}
echo "ci: memory-tier smoke sweep passed (jobs=1 == jobs=4)"
