/**
 * @file
 * Base-Delta-Immediate (B∆I) cache compression [Pekhimenko et al.,
 * PACT 2012], the lossless intra-block baseline the paper compares
 * against in Fig 8 and the "Dopp + B∆I" combination.
 *
 * A 64 B block is encoded as one of:
 *   - Zeros: the whole block is zero (1 B)
 *   - Rep:   one 8 B value repeated (8 B)
 *   - BkDd:  k-byte words expressed as d-byte signed deltas from either
 *            a single k-byte base or from zero ("immediate"); a bit per
 *            word selects the base (k ∈ {8,4,2}, d < k)
 *   - Uncompressed (64 B)
 *
 * The encoder picks the smallest applicable encoding; the decoder
 * losslessly reconstructs the original bytes.
 */

#ifndef DOPP_COMPRESS_BDI_HH
#define DOPP_COMPRESS_BDI_HH

#include <vector>

#include "util/types.hh"

namespace dopp
{

/** B∆I encoding selector. */
enum class BdiEncoding : u8
{
    Zeros,        ///< all-zero block, 1 B
    Rep8,         ///< repeated 8 B value, 8 B
    B8D1,         ///< 8 B base, 1 B deltas: 8 + 8×1 + 1 = 17 B
    B8D2,         ///< 8 B base, 2 B deltas: 8 + 8×2 + 1 = 25 B
    B8D4,         ///< 8 B base, 4 B deltas: 8 + 8×4 + 1 = 41 B
    B4D1,         ///< 4 B base, 1 B deltas: 4 + 16×1 + 2 = 22 B
    B4D2,         ///< 4 B base, 2 B deltas: 4 + 16×2 + 2 = 38 B
    B2D1,         ///< 2 B base, 1 B deltas: 2 + 32×1 + 4 = 38 B
    Uncompressed, ///< 64 B
};

/** Name of @p enc for reports. */
const char *bdiEncodingName(BdiEncoding enc);

/** Compressed payload size in bytes of @p enc (excluding the 4-bit
 * encoding id, which lives in the tag in hardware). */
unsigned bdiEncodingSize(BdiEncoding enc);

/** Result of compressing one block. */
struct BdiCompressed
{
    BdiEncoding encoding = BdiEncoding::Uncompressed;
    unsigned size = blockBytes;  ///< payload bytes
    std::vector<u8> payload;     ///< serialized representation
};

/**
 * Compress a 64 B block, choosing the smallest applicable encoding.
 */
BdiCompressed bdiCompress(const u8 *block);

/**
 * Size-only version of bdiCompress (no payload serialization); used by
 * the Fig 8 storage analysis where only sizes matter.
 */
unsigned bdiCompressedSize(const u8 *block);

/**
 * Decompress @p c into 64 bytes at @p out.
 * @return false if the payload is malformed.
 */
bool bdiDecompress(const BdiCompressed &c, u8 *out);

} // namespace dopp

#endif // DOPP_COMPRESS_BDI_HH
