#include "dedup.hh"

namespace dopp
{

u64
fnv1a64(const u8 *bytes, u64 len)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (u64 i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

DedupLlc::DedupLlc(MainMemory &memory, const DedupConfig &config,
                   StatRegistry *stat_registry,
                   const std::string &stat_group)
    : LastLevelCache(memory, stat_registry, stat_group)
{
    DoppConfig dc;
    dc.tagEntries = config.tagEntries;
    dc.tagWays = config.tagWays;
    dc.dataEntries = config.dataEntries;
    dc.dataWays = config.dataWays;
    dc.hitLatency = config.hitLatency;
    dc.unified = false;
    dc.mapOverride = [](const u8 *block, const MapParams &) {
        return fnv1a64(block, blockBytes);
    };
    dc.referenceImpl = config.referenceImpl;
    // The engine owns every counter; register it under the dedup
    // cache's own group so "llc.*" names resolve to engine activity.
    engine = makeDoppEngine(memory, dc, nullptr, stat_registry,
                            stat_group);
}

void
DedupLlc::setBackInvalidate(BackInvalidateFn fn)
{
    engine->setBackInvalidate(std::move(fn));
}

LastLevelCache::FetchResult
DedupLlc::fetch(Addr addr, u8 *data)
{
    return engine->fetch(addr, data);
}

void
DedupLlc::writeback(Addr addr, const u8 *data)
{
    engine->writeback(addr, data);
}

bool
DedupLlc::contains(Addr addr) const
{
    return engine->contains(addr);
}

void
DedupLlc::forEachBlock(
    const std::function<void(const LlcBlockInfo &)> &visit) const
{
    engine->forEachBlock(visit);
}

void
DedupLlc::flush()
{
    engine->flush();
}

} // namespace dopp
