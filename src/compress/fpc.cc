#include "fpc.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace dopp
{

unsigned
fpcPatternBits(FpcPattern pattern)
{
    switch (pattern) {
      case FpcPattern::ZeroRun: return 3;       // run length (1..8)
      case FpcPattern::Sign4: return 4;
      case FpcPattern::Sign8: return 8;
      case FpcPattern::Sign16: return 16;
      case FpcPattern::HalfZeroLow: return 16;
      case FpcPattern::HalfSign8: return 16;
      case FpcPattern::RepeatedByte: return 8;
      case FpcPattern::Uncompressed: return 32;
    }
    return 32;
}

namespace
{

/** Does @p v sign-extend from its low @p bits bits? */
bool
signExtends(u32 v, unsigned bits)
{
    const i32 s = static_cast<i32>(v);
    const i32 shifted = (s << (32 - bits)) >> (32 - bits);
    return shifted == s;
}

} // namespace

FpcPattern
fpcClassify(u32 word)
{
    if (signExtends(word, 4))
        return FpcPattern::Sign4;
    if (signExtends(word, 8))
        return FpcPattern::Sign8;
    if (signExtends(word, 16))
        return FpcPattern::Sign16;
    if ((word & 0xFFFF0000u) == 0)
        return FpcPattern::HalfZeroLow;
    const u16 lo = static_cast<u16>(word);
    const u16 hi = static_cast<u16>(word >> 16);
    auto half8 = [](u16 h) {
        const i16 s = static_cast<i16>(h);
        return static_cast<i16>(static_cast<i8>(h)) == s;
    };
    if (half8(lo) && half8(hi))
        return FpcPattern::HalfSign8;
    const u8 b0 = static_cast<u8>(word);
    if (((word >> 8) & 0xFF) == b0 && ((word >> 16) & 0xFF) == b0 &&
        ((word >> 24) & 0xFF) == b0) {
        return FpcPattern::RepeatedByte;
    }
    return FpcPattern::Uncompressed;
}

unsigned
fpcCompressedBits(const u8 *block)
{
    constexpr unsigned words = blockBytes / 4;
    constexpr unsigned prefixBits = 3;

    unsigned bits = 0;
    unsigned i = 0;
    while (i < words) {
        u32 w;
        std::memcpy(&w, block + i * 4, 4);
        if (w == 0) {
            // Compact a run of up to 8 zero words into one code.
            unsigned run = 1;
            while (run < 8 && i + run < words) {
                u32 next;
                std::memcpy(&next, block + (i + run) * 4, 4);
                if (next != 0)
                    break;
                ++run;
            }
            bits += prefixBits + fpcPatternBits(FpcPattern::ZeroRun);
            i += run;
            continue;
        }
        bits += prefixBits + fpcPatternBits(fpcClassify(w));
        ++i;
    }
    return bits;
}

unsigned
fpcCompressedSize(const u8 *block)
{
    const unsigned bytes = (fpcCompressedBits(block) + 7) / 8;
    return std::min(bytes, blockBytes);
}

} // namespace dopp
