/**
 * @file
 * Frequent Pattern Compression (FPC) [Alameldeen & Wood, ISCA 2004],
 * the other classic cache-compression scheme the paper cites alongside
 * B∆I [1]. Each 32-bit word is encoded with a 3-bit prefix selecting
 * one of eight frequent patterns (zero runs, sign-extended small
 * values, halfword patterns, repeated bytes, uncompressed).
 *
 * Included for completeness of the compression substrate: it lets the
 * Fig 8-style storage analysis (and any future compressed-LLC variant)
 * compare both published schemes.
 */

#ifndef DOPP_COMPRESS_FPC_HH
#define DOPP_COMPRESS_FPC_HH

#include "util/types.hh"

namespace dopp
{

/** FPC word pattern selectors (3-bit prefix). */
enum class FpcPattern : u8
{
    ZeroRun,       ///< run of zero words (run length in payload)
    Sign4,         ///< 4-bit sign-extended
    Sign8,         ///< 8-bit sign-extended
    Sign16,        ///< 16-bit sign-extended
    HalfZeroLow,   ///< upper half zero, lower half kept
    HalfSign8,     ///< both halfwords 8-bit sign-extendable
    RepeatedByte,  ///< all four bytes equal
    Uncompressed,  ///< full 32-bit word
};

/** Payload bits for @p pattern (excluding the 3-bit prefix). */
unsigned fpcPatternBits(FpcPattern pattern);

/** Classify one 32-bit word (ZeroRun is handled by the caller). */
FpcPattern fpcClassify(u32 word);

/**
 * Compressed size, in *bits*, of a 64 B block under FPC (3-bit prefix
 * per emitted code, zero-run compaction up to 8 words per code).
 */
unsigned fpcCompressedBits(const u8 *block);

/** Compressed size rounded up to bytes, capped at 64. */
unsigned fpcCompressedSize(const u8 *block);

} // namespace dopp

#endif // DOPP_COMPRESS_FPC_HH
