/**
 * @file
 * A B∆I-compressed last-level cache [Pekhimenko et al., PACT 2012],
 * rounding out the baselines: where Doppelgänger shrinks *inter-block*
 * storage lossily, B∆I shrinks *intra-block* storage losslessly. The
 * paper argues the two are orthogonal (Sec 5.1); this organization
 * makes the compression side runnable on the same hierarchy.
 *
 * Model: the set count matches an uncompressed cache of the same data
 * budget, each set holds up to `tagFactor ×  ways` tag entries, and
 * blocks occupy their compressed size against a byte budget of
 * `ways × 64` per set. Insertions evict LRU entries until both the tag
 * limit and the byte budget fit. Data is served losslessly.
 */

#ifndef DOPP_COMPRESS_BDI_LLC_HH
#define DOPP_COMPRESS_BDI_LLC_HH

#include <vector>

#include "compress/bdi.hh"
#include "sim/llc.hh"

namespace dopp
{

/** Configuration of the compressed LLC. */
struct BdiLlcConfig
{
    u64 sizeBytes = 2 * 1024 * 1024; ///< uncompressed-equivalent budget
    u32 ways = 16;                   ///< byte budget = ways × 64 per set
    u32 tagFactor = 2;               ///< tag entries per set = factor×ways
    Tick hitLatency = 6;             ///< +1 decompression cycle on hits
    Tick decompressLatency = 1;
};

/** Conventional-geometry LLC storing B∆I-compressed blocks. */
class BdiLlc : public LastLevelCache
{
  public:
    BdiLlc(MainMemory &memory, const BdiLlcConfig &config,
           const ApproxRegistry *registry,
           StatRegistry *stat_registry = nullptr,
           const std::string &stat_group = "llc");

    FetchResult fetch(Addr addr, u8 *data) override;
    void writeback(Addr addr, const u8 *data) override;
    bool contains(Addr addr) const override;
    void forEachBlock(
        const std::function<void(const LlcBlockInfo &)> &visit)
        const override;
    void flush() override;
    const char *name() const override { return "bdi"; }

    /** @name Introspection */
    /// @{
    /** Blocks currently resident. */
    u64 blockCount() const;

    /** Compressed bytes currently stored. */
    u64 compressedBytes() const;

    /** Effective compression ratio of resident blocks (≥ 1). */
    double compressionRatio() const;
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        u64 tag = 0;
        bool dirty = false;
        unsigned size = blockBytes; ///< compressed size in bytes
        u64 stamp = 0;              ///< LRU
        BlockData data = {};        ///< stored losslessly
    };

    struct Set
    {
        std::vector<Entry> entries;
        u64 usedBytes = 0;
    };

    Entry *find(Addr addr);
    const Entry *find(Addr addr) const;

    /** Evict the LRU valid entry of @p set. @pre one exists. */
    void evictLru(Set &set, u32 set_idx);

    /** Evict until @p extra bytes and one tag slot fit in @p set. */
    void makeRoom(Set &set, u32 set_idx, unsigned extra);

    BdiLlcConfig cfg;
    const ApproxRegistry *registry;
    std::vector<Set> sets;
    AddrSlicer slicer;
    u64 clock = 0;
};

} // namespace dopp

#endif // DOPP_COMPRESS_BDI_LLC_HH
