/**
 * @file
 * Exact last-level-cache deduplication [Tian et al., ICS 2014], the
 * inter-block lossless baseline of Fig 8.
 *
 * Reuses the decoupled tag/data engine of DoppelgangerCache, but maps
 * blocks by a 64-bit content hash instead of the approximate-similarity
 * map: only byte-identical blocks share a data entry (up to the ~2^-64
 * chance of a hash collision, which would merely introduce the same
 * kind of aliasing Doppelgänger embraces by design).
 */

#ifndef DOPP_COMPRESS_DEDUP_HH
#define DOPP_COMPRESS_DEDUP_HH

#include <memory>

#include "core/dopp_engine.hh"
#include "sim/llc.hh"

namespace dopp
{

/** FNV-1a 64-bit hash of @p len bytes. */
u64 fnv1a64(const u8 *bytes, u64 len);

/** Configuration of the dedup LLC. */
struct DedupConfig
{
    u32 tagEntries = 32 * 1024; ///< 2 MB tag-equivalent
    u32 tagWays = 16;
    u32 dataEntries = 16 * 1024;
    u32 dataWays = 16;
    Tick hitLatency = 6;

    /** Use the reference (AoS) engine; see DoppConfig::referenceImpl. */
    bool referenceImpl = false;
};

/**
 * Deduplicating LLC: a DoppelgangerCache whose map function is a
 * content hash, so sharing happens only between identical blocks.
 */
class DedupLlc : public LastLevelCache
{
  public:
    DedupLlc(MainMemory &memory, const DedupConfig &config,
             StatRegistry *stat_registry = nullptr,
             const std::string &stat_group = "llc");

    FetchResult fetch(Addr addr, u8 *data) override;
    void writeback(Addr addr, const u8 *data) override;
    bool contains(Addr addr) const override;
    void forEachBlock(
        const std::function<void(const LlcBlockInfo &)> &visit)
        const override;
    void flush() override;
    const char *name() const override { return "dedup"; }

    void setBackInvalidate(BackInvalidateFn fn) override;
    void
    setHotPathProfile(HotPathProfile *p) override
    {
        engine->setHotPathProfile(p);
    }
    const LlcStats &stats() const override { return engine->stats(); }
    void resetStats() override { engine->resetStats(); }

    /** Underlying engine, for occupancy introspection. */
    const DoppEngine &inner() const { return *engine; }

  private:
    std::unique_ptr<DoppEngine> engine;
};

} // namespace dopp

#endif // DOPP_COMPRESS_DEDUP_HH
