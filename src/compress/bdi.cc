#include "bdi.hh"

#include <cstring>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace dopp
{

namespace
{

/** Read a k-byte little-endian word from @p p. */
u64
readWord(const u8 *p, unsigned k)
{
    u64 v = 0;
    for (unsigned i = 0; i < k; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
}

/** Write a k-byte little-endian word to @p p. */
void
writeWord(u8 *p, unsigned k, u64 v)
{
    for (unsigned i = 0; i < k; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

/** Sign-extend the low @p bits of @p v to 64 bits. */
u64
signExtend(u64 v, unsigned bits)
{
    const u64 m = 1ULL << (bits - 1);
    v &= lowMask(bits);
    return (v ^ m) - m;
}

/** Does the k-byte value @p v fit as a d-byte signed immediate? */
bool
fitsSigned(u64 v, unsigned d, unsigned k)
{
    const u64 kept = v & lowMask(8 * k);
    const u64 sx = signExtend(v, 8 * d) & lowMask(8 * k);
    return sx == kept;
}

struct BkDd
{
    BdiEncoding enc;
    unsigned k; ///< word size in bytes
    unsigned d; ///< delta size in bytes
};

constexpr BkDd bkddTable[] = {
    {BdiEncoding::B8D1, 8, 1}, {BdiEncoding::B4D1, 4, 1},
    {BdiEncoding::B8D2, 8, 2}, {BdiEncoding::B2D1, 2, 1},
    {BdiEncoding::B4D2, 4, 2}, {BdiEncoding::B8D4, 8, 4},
};

/** Try the BkDd encoding; on success fill base/mask/deltas. */
bool
tryBkDd(const u8 *block, unsigned k, unsigned d, u64 &base,
        std::vector<bool> *mask, std::vector<u64> *deltas)
{
    const unsigned n = blockBytes / k;
    bool haveBase = false;
    base = 0;

    for (unsigned i = 0; i < n; ++i) {
        const u64 w = readWord(block + i * k, k);
        if (fitsSigned(w, d, k))
            continue;
        if (!haveBase) {
            base = w;
            haveBase = true;
        }
        const u64 delta = (w - base) & lowMask(8 * k);
        if (!fitsSigned(delta, d, k))
            return false;
    }

    if (mask && deltas) {
        mask->assign(n, false);
        deltas->assign(n, 0);
        for (unsigned i = 0; i < n; ++i) {
            const u64 w = readWord(block + i * k, k);
            // Prefer the immediate form when both apply, like the
            // reference design (base bit = 0).
            if (fitsSigned(w, d, k)) {
                (*deltas)[i] = w & lowMask(8 * d);
            } else {
                (*mask)[i] = true;
                (*deltas)[i] = (w - base) & lowMask(8 * d);
            }
        }
    }
    return true;
}

bool
isZeros(const u8 *block)
{
    for (unsigned i = 0; i < blockBytes; ++i)
        if (block[i] != 0)
            return false;
    return true;
}

bool
isRep8(const u8 *block)
{
    for (unsigned i = 8; i < blockBytes; ++i)
        if (block[i] != block[i - 8])
            return false;
    return true;
}

} // namespace

const char *
bdiEncodingName(BdiEncoding enc)
{
    switch (enc) {
      case BdiEncoding::Zeros: return "zeros";
      case BdiEncoding::Rep8: return "rep8";
      case BdiEncoding::B8D1: return "b8d1";
      case BdiEncoding::B8D2: return "b8d2";
      case BdiEncoding::B8D4: return "b8d4";
      case BdiEncoding::B4D1: return "b4d1";
      case BdiEncoding::B4D2: return "b4d2";
      case BdiEncoding::B2D1: return "b2d1";
      case BdiEncoding::Uncompressed: return "uncompressed";
    }
    return "?";
}

unsigned
bdiEncodingSize(BdiEncoding enc)
{
    switch (enc) {
      case BdiEncoding::Zeros: return 1;
      case BdiEncoding::Rep8: return 8;
      case BdiEncoding::B8D1: return 8 + 8 * 1 + 1;   // 17
      case BdiEncoding::B8D2: return 8 + 8 * 2 + 1;   // 25
      case BdiEncoding::B8D4: return 8 + 8 * 4 + 1;   // 41
      case BdiEncoding::B4D1: return 4 + 16 * 1 + 2;  // 22
      case BdiEncoding::B4D2: return 4 + 16 * 2 + 2;  // 38
      case BdiEncoding::B2D1: return 2 + 32 * 1 + 4;  // 38
      case BdiEncoding::Uncompressed: return blockBytes;
    }
    return blockBytes;
}

unsigned
bdiCompressedSize(const u8 *block)
{
    if (isZeros(block))
        return bdiEncodingSize(BdiEncoding::Zeros);
    if (isRep8(block))
        return bdiEncodingSize(BdiEncoding::Rep8);

    unsigned best = blockBytes;
    u64 base;
    for (const auto &e : bkddTable) {
        const unsigned size = bdiEncodingSize(e.enc);
        if (size < best && tryBkDd(block, e.k, e.d, base, nullptr,
                                   nullptr)) {
            best = size;
        }
    }
    return best;
}

BdiCompressed
bdiCompress(const u8 *block)
{
    BdiCompressed out;

    if (isZeros(block)) {
        out.encoding = BdiEncoding::Zeros;
        out.size = 1;
        out.payload = {0};
        return out;
    }
    if (isRep8(block)) {
        out.encoding = BdiEncoding::Rep8;
        out.size = 8;
        out.payload.assign(block, block + 8);
        return out;
    }

    const BkDd *bestEnc = nullptr;
    unsigned bestSize = blockBytes;
    for (const auto &e : bkddTable) {
        const unsigned size = bdiEncodingSize(e.enc);
        u64 base;
        if (size < bestSize &&
            tryBkDd(block, e.k, e.d, base, nullptr, nullptr)) {
            bestSize = size;
            bestEnc = &e;
        }
    }

    if (!bestEnc) {
        out.encoding = BdiEncoding::Uncompressed;
        out.size = blockBytes;
        out.payload.assign(block, block + blockBytes);
        return out;
    }

    const unsigned k = bestEnc->k;
    const unsigned d = bestEnc->d;
    const unsigned n = blockBytes / k;
    u64 base = 0;
    std::vector<bool> mask;
    std::vector<u64> deltas;
    const bool ok = tryBkDd(block, k, d, base, &mask, &deltas);
    DOPP_ASSERT(ok);

    out.encoding = bestEnc->enc;
    out.size = bestSize;
    out.payload.resize(bestSize);
    u8 *p = out.payload.data();
    writeWord(p, k, base);
    p += k;
    const unsigned maskBytes = (n + 7) / 8;
    std::memset(p, 0, maskBytes);
    for (unsigned i = 0; i < n; ++i)
        if (mask[i])
            p[i / 8] |= static_cast<u8>(1u << (i % 8));
    p += maskBytes;
    for (unsigned i = 0; i < n; ++i) {
        writeWord(p, d, deltas[i]);
        p += d;
    }
    return out;
}

bool
bdiDecompress(const BdiCompressed &c, u8 *out)
{
    switch (c.encoding) {
      case BdiEncoding::Zeros:
        std::memset(out, 0, blockBytes);
        return true;
      case BdiEncoding::Rep8:
        if (c.payload.size() < 8)
            return false;
        for (unsigned i = 0; i < blockBytes; i += 8)
            std::memcpy(out + i, c.payload.data(), 8);
        return true;
      case BdiEncoding::Uncompressed:
        if (c.payload.size() < blockBytes)
            return false;
        std::memcpy(out, c.payload.data(), blockBytes);
        return true;
      default:
        break;
    }

    unsigned k = 0;
    unsigned d = 0;
    for (const auto &e : bkddTable) {
        if (e.enc == c.encoding) {
            k = e.k;
            d = e.d;
            break;
        }
    }
    if (k == 0)
        return false;

    const unsigned n = blockBytes / k;
    const unsigned maskBytes = (n + 7) / 8;
    if (c.payload.size() < k + maskBytes + n * d)
        return false;

    const u8 *p = c.payload.data();
    const u64 base = readWord(p, k);
    p += k;
    const u8 *maskP = p;
    p += maskBytes;
    for (unsigned i = 0; i < n; ++i) {
        const bool fromBase = (maskP[i / 8] >> (i % 8)) & 1;
        const u64 delta = signExtend(readWord(p + i * d, d), 8 * d);
        const u64 word = (delta + (fromBase ? base : 0)) & lowMask(8 * k);
        writeWord(out + i * k, k, word);
    }
    return true;
}

} // namespace dopp
