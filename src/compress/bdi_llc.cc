#include "bdi_llc.hh"

#include <cstring>

#include "util/logging.hh"

namespace dopp
{

BdiLlc::BdiLlc(MainMemory &memory, const BdiLlcConfig &config,
               const ApproxRegistry *registry,
               StatRegistry *stat_registry,
               const std::string &stat_group)
    : LastLevelCache(memory, stat_registry, stat_group), cfg(config),
      registry(registry),
      sets(config.sizeBytes / blockBytes / config.ways),
      slicer(static_cast<u32>(config.sizeBytes / blockBytes /
                              config.ways))
{
    if (cfg.tagFactor == 0)
        fatal("bdi llc: tagFactor must be non-zero");
    for (auto &set : sets)
        set.entries.resize(static_cast<size_t>(cfg.ways) *
                           cfg.tagFactor);
    initLlcCounters();
}

BdiLlc::Entry *
BdiLlc::find(Addr addr)
{
    Set &set = sets[slicer.set(addr)];
    const u64 tag = slicer.tag(addr);
    for (auto &e : set.entries)
        if (e.valid && e.tag == tag)
            return &e;
    return nullptr;
}

const BdiLlc::Entry *
BdiLlc::find(Addr addr) const
{
    return const_cast<BdiLlc *>(this)->find(addr);
}

void
BdiLlc::evictLru(Set &set, u32 set_idx)
{
    Entry *victim = nullptr;
    for (auto &e : set.entries) {
        if (e.valid && (!victim || e.stamp < victim->stamp))
            victim = &e;
    }
    DOPP_ASSERT(victim);

    const Addr addr = slicer.addr(set_idx, victim->tag);
    ++ctr->evictions;
    BlockData upward;
    const bool upwardDirty = invalidateUpward(addr, upward.data());
    if (upwardDirty) {
        mem.writeBlock(addr, upward.data());
        ++ctr->dirtyWritebacks;
    } else if (victim->dirty) {
        ++ctr->dataArray.reads;
        mem.writeBlock(addr, victim->data.data());
        ++ctr->dirtyWritebacks;
    }
    set.usedBytes -= victim->size;
    victim->valid = false;
}

void
BdiLlc::makeRoom(Set &set, u32 set_idx, unsigned extra)
{
    const u64 budget = static_cast<u64>(cfg.ways) * blockBytes;
    auto freeSlot = [&]() -> bool {
        for (const auto &e : set.entries)
            if (!e.valid)
                return true;
        return false;
    };
    while (set.usedBytes + extra > budget || !freeSlot())
        evictLru(set, set_idx);
}

LastLevelCache::FetchResult
BdiLlc::fetch(Addr addr, u8 *data)
{
    ++ctr->fetches;
    ++ctr->tagArray.reads;

    Entry *entry = find(addr);
    if (entry) {
        ++ctr->fetchHits;
        ++ctr->dataArray.reads;
        entry->stamp = ++clock;
        std::memcpy(data, entry->data.data(), blockBytes);
        return {true, cfg.hitLatency + cfg.decompressLatency};
    }

    ++ctr->fetchMisses;
    BlockData fetched;
    const Tick memLat = mem.readBlock(addr, fetched.data());

    const unsigned size = bdiCompressedSize(fetched.data());
    const u32 set_idx = slicer.set(addr);
    Set &set = sets[set_idx];
    makeRoom(set, set_idx, size);

    for (auto &e : set.entries) {
        if (e.valid)
            continue;
        e.valid = true;
        e.tag = slicer.tag(addr);
        e.dirty = false;
        e.size = size;
        e.data = fetched;
        e.stamp = ++clock;
        set.usedBytes += size;
        break;
    }
    ++ctr->tagArray.writes;
    ++ctr->dataArray.writes;

    std::memcpy(data, fetched.data(), blockBytes);
    return {false, cfg.hitLatency + memLat};
}

void
BdiLlc::writeback(Addr addr, const u8 *data)
{
    ++ctr->writebacksIn;
    ++ctr->tagArray.reads;

    Entry *entry = find(addr);
    if (!entry) {
        mem.writeBlock(addr, data);
        ++ctr->dirtyWritebacks;
        return;
    }

    const unsigned newSize = bdiCompressedSize(data);
    const u32 set_idx = slicer.set(addr);
    Set &set = sets[set_idx];

    // A grown block may need room; the entry itself must survive the
    // eviction loop, so temporarily release then re-add its bytes.
    set.usedBytes -= entry->size;
    entry->size = 0;
    entry->stamp = ++clock; // protect from LRU while making room
    const u64 budget = static_cast<u64>(cfg.ways) * blockBytes;
    while (set.usedBytes + newSize > budget)
        evictLru(set, set_idx);

    std::memcpy(entry->data.data(), data, blockBytes);
    entry->size = newSize;
    entry->dirty = true;
    set.usedBytes += newSize;
    ++ctr->dataArray.writes;
}

bool
BdiLlc::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

void
BdiLlc::forEachBlock(
    const std::function<void(const LlcBlockInfo &)> &visit) const
{
    for (u32 s = 0; s < sets.size(); ++s) {
        for (const auto &e : sets[s].entries) {
            if (!e.valid)
                continue;
            LlcBlockInfo info;
            info.addr = slicer.addr(s, e.tag);
            info.data = e.data.data();
            info.dirty = e.dirty;
            const ApproxRegion *region =
                registry ? registry->find(info.addr) : nullptr;
            info.approx = region != nullptr;
            info.type = region ? region->type : ElemType::F32;
            visit(info);
        }
    }
}

void
BdiLlc::flush()
{
    for (u32 s = 0; s < sets.size(); ++s) {
        Set &set = sets[s];
        bool any = true;
        while (any) {
            any = false;
            for (const auto &e : set.entries) {
                if (e.valid) {
                    any = true;
                    break;
                }
            }
            if (any)
                evictLru(set, s);
        }
        set.usedBytes = 0;
    }
}

u64
BdiLlc::blockCount() const
{
    u64 n = 0;
    for (const auto &set : sets)
        for (const auto &e : set.entries)
            n += e.valid ? 1 : 0;
    return n;
}

u64
BdiLlc::compressedBytes() const
{
    u64 n = 0;
    for (const auto &set : sets)
        n += set.usedBytes;
    return n;
}

double
BdiLlc::compressionRatio() const
{
    const u64 bytes = compressedBytes();
    if (bytes == 0)
        return 1.0;
    return static_cast<double>(blockCount() * blockBytes) /
        static_cast<double>(bytes);
}

} // namespace dopp
