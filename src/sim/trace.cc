#include "trace.hh"

#include <cstring>
#include <memory>

#include "util/logging.hh"

namespace dopp
{

const char traceMagic[8] = {'D', 'O', 'P', 'P', 'T', 'R', 'C', '1'};

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace '%s' for writing", path.c_str());
    // Header: magic + placeholder count (fixed on close()).
    std::fwrite(traceMagic, 1, sizeof(traceMagic), file);
    const u64 zero = 0;
    std::fwrite(&zero, sizeof(zero), 1, file);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &record)
{
    DOPP_ASSERT(file);
    DOPP_ASSERT(record.size >= 1 && record.size <= 8);
    if (std::fwrite(&record, sizeof(record), 1, file) != 1)
        fatal("trace write failed");
    ++records;
}

void
TraceWriter::close()
{
    if (!file)
        return;
    // Patch the record count into the header.
    std::fseek(file, sizeof(traceMagic), SEEK_SET);
    std::fwrite(&records, sizeof(records), 1, file);
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    constexpr u64 headerBytes = sizeof(traceMagic) + sizeof(u64);

    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("trace '%s': cannot open for reading", path.c_str());

    char magic[8];
    const size_t got = std::fread(magic, 1, sizeof(magic), file);
    if (got != sizeof(magic)) {
        fatal("trace '%s': offset 0: file too short for the 8-byte "
              "magic (got %zu bytes)", path.c_str(), got);
    }
    if (std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        fatal("trace '%s': offset 0: bad magic, not a doppelganger "
              "trace", path.c_str());
    }
    if (std::fread(&total, sizeof(total), 1, file) != 1) {
        fatal("trace '%s': offset 8: file too short for the record "
              "count", path.c_str());
    }

    // The whole file must be exactly header + total records: anything
    // shorter was truncated mid-write, anything longer carries garbage
    // (or the header count itself is corrupt). Check up front so a
    // replay never starts on a trace it cannot finish.
    if (total > (static_cast<u64>(INT64_MAX) - headerBytes) /
            sizeof(TraceRecord)) {
        fatal("trace '%s': offset 8: absurd record count %llu",
              path.c_str(), static_cast<unsigned long long>(total));
    }
    if (std::fseek(file, 0, SEEK_END) != 0)
        fatal("trace '%s': cannot seek to end", path.c_str());
    const long actual = std::ftell(file);
    const u64 expected = headerBytes + total * sizeof(TraceRecord);
    if (actual < 0 || static_cast<u64>(actual) < expected) {
        fatal("trace '%s': truncated: %ld bytes, but the header "
              "promises %llu records (%llu bytes)", path.c_str(),
              actual, static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(expected));
    }
    if (static_cast<u64>(actual) > expected) {
        fatal("trace '%s': %llu trailing bytes after the %llu "
              "promised records — count corrupt or file overwritten",
              path.c_str(),
              static_cast<unsigned long long>(
                  static_cast<u64>(actual) - expected),
              static_cast<unsigned long long>(total));
    }
    std::fseek(file, static_cast<long>(headerBytes), SEEK_SET);
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceReader::next(TraceRecord &record)
{
    if (consumed >= total)
        return false;
    if (std::fread(&record, sizeof(record), 1, file) != 1) {
        fatal("trace '%s': read failed at record %llu", path_.c_str(),
              static_cast<unsigned long long>(consumed));
    }
    if (record.size < 1 || record.size > 8) {
        fatal("trace '%s': record %llu (offset %llu): access size %u "
              "out of range 1..8", path_.c_str(),
              static_cast<unsigned long long>(consumed),
              static_cast<unsigned long long>(
                  sizeof(traceMagic) + sizeof(u64) +
                  consumed * sizeof(TraceRecord)),
              static_cast<unsigned>(record.size));
    }
    if (record.isWrite > 1) {
        fatal("trace '%s': record %llu (offset %llu): isWrite flag %u "
              "is neither 0 nor 1", path_.c_str(),
              static_cast<unsigned long long>(consumed),
              static_cast<unsigned long long>(
                  sizeof(traceMagic) + sizeof(u64) +
                  consumed * sizeof(TraceRecord)),
              static_cast<unsigned>(record.isWrite));
    }
    ++consumed;
    return true;
}

void
TraceReader::rewind()
{
    std::fseek(file,
               static_cast<long>(sizeof(traceMagic) + sizeof(u64)),
               SEEK_SET);
    consumed = 0;
}

u64
interleaveTraces(const std::vector<std::string> &inputs,
                 const std::string &output, u64 chunk,
                 Addr address_stride, u32 machine_cores)
{
    DOPP_ASSERT(chunk > 0);
    if (inputs.empty())
        fatal("interleaveTraces: no inputs");
    if (inputs.size() > machine_cores)
        fatal("interleaveTraces: more programs than cores");

    std::vector<std::unique_ptr<TraceReader>> readers;
    for (const auto &path : inputs)
        readers.push_back(std::make_unique<TraceReader>(path));

    const u32 coresPer =
        machine_cores / static_cast<u32>(inputs.size());
    TraceWriter writer(output);

    bool anyLeft = true;
    while (anyLeft) {
        anyLeft = false;
        for (size_t i = 0; i < readers.size(); ++i) {
            TraceRecord rec;
            for (u64 k = 0; k < chunk; ++k) {
                if (!readers[i]->next(rec))
                    break;
                rec.addr += address_stride * i;
                rec.core = static_cast<u8>(
                    static_cast<u32>(i) * coresPer +
                    rec.core % coresPer);
                writer.append(rec);
                anyLeft = true;
            }
        }
    }
    const u64 written = writer.count();
    writer.close();
    return written;
}

ReplayStats
replayTrace(TraceReader &trace, MemorySystem &system)
{
    ReplayStats stats;
    TraceRecord rec;
    while (trace.next(rec)) {
        u64 payload = rec.payload;
        const Tick lat =
            system.access(rec.core, rec.addr, rec.isWrite != 0,
                          rec.size, &payload);
        stats.totalLatency += lat;
        ++stats.accesses;
        if (rec.isWrite)
            ++stats.writes;
        else
            ++stats.reads;
    }
    return stats;
}

} // namespace dopp
