#include "trace.hh"

#include <cstring>
#include <memory>

#include "util/logging.hh"

namespace dopp
{

const char traceMagic[8] = {'D', 'O', 'P', 'P', 'T', 'R', 'C', '1'};

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace '%s' for writing", path.c_str());
    // Header: magic + placeholder count (fixed on close()).
    std::fwrite(traceMagic, 1, sizeof(traceMagic), file);
    const u64 zero = 0;
    std::fwrite(&zero, sizeof(zero), 1, file);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &record)
{
    DOPP_ASSERT(file);
    DOPP_ASSERT(record.size >= 1 && record.size <= 8);
    if (std::fwrite(&record, sizeof(record), 1, file) != 1)
        fatal("trace write failed");
    ++records;
}

void
TraceWriter::close()
{
    if (!file)
        return;
    // Patch the record count into the header.
    std::fseek(file, sizeof(traceMagic), SEEK_SET);
    std::fwrite(&records, sizeof(records), 1, file);
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace '%s'", path.c_str());
    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
        std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        fatal("'%s' is not a doppelganger trace", path.c_str());
    }
    if (std::fread(&total, sizeof(total), 1, file) != 1)
        fatal("trace '%s' has a truncated header", path.c_str());
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceReader::next(TraceRecord &record)
{
    if (consumed >= total)
        return false;
    if (std::fread(&record, sizeof(record), 1, file) != 1)
        fatal("trace truncated at record %llu",
              static_cast<unsigned long long>(consumed));
    ++consumed;
    return true;
}

void
TraceReader::rewind()
{
    std::fseek(file,
               static_cast<long>(sizeof(traceMagic) + sizeof(u64)),
               SEEK_SET);
    consumed = 0;
}

u64
interleaveTraces(const std::vector<std::string> &inputs,
                 const std::string &output, u64 chunk,
                 Addr address_stride, u32 machine_cores)
{
    DOPP_ASSERT(chunk > 0);
    if (inputs.empty())
        fatal("interleaveTraces: no inputs");
    if (inputs.size() > machine_cores)
        fatal("interleaveTraces: more programs than cores");

    std::vector<std::unique_ptr<TraceReader>> readers;
    for (const auto &path : inputs)
        readers.push_back(std::make_unique<TraceReader>(path));

    const u32 coresPer =
        machine_cores / static_cast<u32>(inputs.size());
    TraceWriter writer(output);

    bool anyLeft = true;
    while (anyLeft) {
        anyLeft = false;
        for (size_t i = 0; i < readers.size(); ++i) {
            TraceRecord rec;
            for (u64 k = 0; k < chunk; ++k) {
                if (!readers[i]->next(rec))
                    break;
                rec.addr += address_stride * i;
                rec.core = static_cast<u8>(
                    static_cast<u32>(i) * coresPer +
                    rec.core % coresPer);
                writer.append(rec);
                anyLeft = true;
            }
        }
    }
    const u64 written = writer.count();
    writer.close();
    return written;
}

ReplayStats
replayTrace(TraceReader &trace, MemorySystem &system)
{
    ReplayStats stats;
    TraceRecord rec;
    while (trace.next(rec)) {
        u64 payload = rec.payload;
        const Tick lat =
            system.access(rec.core, rec.addr, rec.isWrite != 0,
                          rec.size, &payload);
        stats.totalLatency += lat;
        ++stats.accesses;
        if (rec.isWrite)
            ++stats.writes;
        else
            ++stats.reads;
    }
    return stats;
}

} // namespace dopp
