/**
 * @file
 * Partition profiles for the tiered main-memory model (DESIGN.md §13).
 *
 * The paper stops approximating at the LLC; the natural next tier is
 * the backing memory itself. Following Akiyama's data-partitioning
 * study (PAPERS.md), main memory is split into partitions with
 * per-partition reliability/latency/energy profiles: a precise DRAM
 * partition (normal refresh, no errors), approximate DRAM partitions
 * (lowered refresh rate, so retention errors accumulate between
 * refresh epochs and materialize at the next read), and NVM banks
 * (asymmetric read/write latency with a small write buffer absorbing
 * writeback bursts, after the AXLE nvram-sim model). The approx-region
 * registry routes annotated pages to approximate partitions; precise
 * data pins to the precise partition.
 *
 * Everything here is plain configuration: MemTierConfig is carried by
 * RunConfig, enters the journal fingerprint field-for-field
 * (harness/journal.cc), and the runtime behavior it selects is a pure
 * function of it plus the fault seed — the determinism contract of
 * DESIGN.md §9 extends through the memory tier unchanged.
 */

#ifndef DOPP_SIM_MEM_TIER_HH
#define DOPP_SIM_MEM_TIER_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace dopp
{

/** Technology class of one main-memory partition. */
enum class MemPartitionKind : u8
{
    PreciseDram, ///< normal-refresh DRAM, assumed error-free
    ApproxDram,  ///< lowered-refresh DRAM: retention errors accumulate
    Nvm,         ///< non-volatile bank: asymmetric costs, write buffer
};

/** Human-readable kind name (header-only: sim must not link fault). */
inline const char *
memPartitionKindName(MemPartitionKind kind)
{
    switch (kind) {
      case MemPartitionKind::PreciseDram: return "precise-dram";
      case MemPartitionKind::ApproxDram: return "approx-dram";
      case MemPartitionKind::Nvm: return "nvm";
    }
    return "?";
}

/**
 * One partition's profile. All rates/latencies/energies are per block
 * (64 B) access; a zero-rate profile with symmetric latencies and no
 * write buffer reproduces the legacy flat memory exactly.
 */
struct MemPartitionProfile
{
    MemPartitionKind kind = MemPartitionKind::PreciseDram;

    /** Display name for stats descriptions and bench tables. */
    std::string name = "dram";

    /** Probability a demand-read block takes one bit flip (read
     * disturb / raw cell error; drawn per read from the run's seeded
     * fault stream). */
    double bitErrorRate = 0.0;

    /**
     * Probability per *elapsed refresh epoch* that a block read takes
     * one retention bit flip (Akiyama-style refresh relaxation). A
     * block untouched for k epochs draws k times at its next read,
     * modeling errors accumulating while the data sat unrefreshed.
     */
    double refreshFaultRate = 0.0;

    /** Partition accesses per refresh epoch (0: no refresh model). */
    u64 refreshIntervalAccesses = 0;

    /** Demand-read latency in cycles (Table 1 DRAM: 160). */
    Tick readLatency = 160;

    /** Full write latency in cycles (NVM writes are several x reads). */
    Tick writeLatency = 160;

    /**
     * Write-buffer entries (0: none). A non-full buffer absorbs a
     * writeback at bufferedWriteLatency; a full one forces the write
     * (and any read arriving while it is full) to wait one full
     * writeLatency drain. Reads drain one entry each as they pass.
     */
    u32 writeBufferDepth = 0;

    /** Latency of a write absorbed by a non-full buffer. */
    Tick bufferedWriteLatency = 0;

    /** Dynamic energy per block read / write, in pJ. */
    double readEnergyPj = 0.0;
    double writeEnergyPj = 0.0;

    /** Standby (refresh + leakage) power in mW; at the 1 GHz core
     * clock, mW x runtime-cycles = pJ. */
    double standbyPowerMw = 0.0;
};

/**
 * The memory tier: an ordered partition list. Empty = legacy flat
 * memory (single implicit precise partition, no per-partition stats).
 * Approximate regions route round-robin across the non-precise
 * partitions in list order; precise data pins to the first
 * PreciseDram partition (the first partition if none is precise).
 */
struct MemTierConfig
{
    std::vector<MemPartitionProfile> partitions;

    bool enabled() const { return !partitions.empty(); }

    /** Whether any partition can inject faults (the harness attaches
     * a FaultInjector iff this or FaultConfig::enabled() holds). */
    bool
    anyFaultRate() const
    {
        for (const MemPartitionProfile &p : partitions) {
            if (p.bitErrorRate > 0.0 ||
                (p.refreshFaultRate > 0.0 &&
                 p.refreshIntervalAccesses > 0)) {
                return true;
            }
        }
        return false;
    }
};

/** Table 1-compatible precise DRAM partition. */
inline MemPartitionProfile
preciseDramProfile()
{
    MemPartitionProfile p;
    p.kind = MemPartitionKind::PreciseDram;
    p.name = "precise-dram";
    p.readLatency = 160;
    p.writeLatency = 160;
    // ~20 pJ/bit x 512 bits per 64 B DRAM burst (representative, not
    // calibrated); standby covers refresh at the nominal rate.
    p.readEnergyPj = 10240.0;
    p.writeEnergyPj = 10240.0;
    p.standbyPowerMw = 50.0;
    return p;
}

/** Lowered-refresh approximate DRAM partition. */
inline MemPartitionProfile
approxDramProfile(double bit_error_rate = 1e-6,
                  double refresh_fault_rate = 1e-4,
                  u64 refresh_interval_accesses = 4096)
{
    MemPartitionProfile p;
    p.kind = MemPartitionKind::ApproxDram;
    p.name = "approx-dram";
    p.bitErrorRate = bit_error_rate;
    p.refreshFaultRate = refresh_fault_rate;
    p.refreshIntervalAccesses = refresh_interval_accesses;
    p.readLatency = 160;
    p.writeLatency = 160;
    p.readEnergyPj = 10240.0;
    p.writeEnergyPj = 10240.0;
    // Refresh energy scales with refresh rate; the relaxed partition
    // spends roughly half the precise partition's standby power.
    p.standbyPowerMw = 25.0;
    return p;
}

/** NVM bank: asymmetric latency/energy, small write buffer, no
 * refresh (non-volatile) but a raw read bit-error rate. */
inline MemPartitionProfile
nvmProfile(double bit_error_rate = 1e-7, u32 write_buffer_depth = 8)
{
    MemPartitionProfile p;
    p.kind = MemPartitionKind::Nvm;
    p.name = "nvm";
    p.bitErrorRate = bit_error_rate;
    p.readLatency = 192;  // ~1.2x DRAM read
    p.writeLatency = 640; // ~4x DRAM write when the buffer is full
    p.writeBufferDepth = write_buffer_depth;
    p.bufferedWriteLatency = 48; // buffer-append cost
    p.readEnergyPj = 12000.0;
    p.writeEnergyPj = 35000.0;
    p.standbyPowerMw = 1.0; // no refresh
    return p;
}

/** The default three-partition tier used by the memtier sweeps. */
inline MemTierConfig
defaultMemTier(double approx_bit_error_rate = 1e-6,
               double refresh_fault_rate = 1e-4)
{
    MemTierConfig tier;
    tier.partitions.push_back(preciseDramProfile());
    tier.partitions.push_back(
        approxDramProfile(approx_bit_error_rate, refresh_fault_rate));
    tier.partitions.push_back(nvmProfile());
    return tier;
}

} // namespace dopp

#endif // DOPP_SIM_MEM_TIER_HH
