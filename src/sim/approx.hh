/**
 * @file
 * Programmer-annotation model for approximate data (paper Sec 4).
 *
 * The paper assumes EnerJ-style annotations [25] with ISA support [7]:
 * the programmer declares which address regions hold approximate data,
 * the element data type, and the expected value range [min, max]. The
 * range is sent to the LLC once at application start; runtime values
 * outside the range are clamped. This module is the software equivalent
 * of that contract: workloads register regions in an ApproxRegistry and
 * the memory system consults it to (a) steer requests to the precise or
 * Doppelgänger cache and (b) compute map values over block elements.
 */

#ifndef DOPP_SIM_APPROX_HH
#define DOPP_SIM_APPROX_HH

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace dopp
{

/** Data type of an annotated approximate element. */
enum class ElemType : u8
{
    U8,   ///< unsigned 8-bit (e.g. pixel channels)
    I16,  ///< signed 16-bit
    I32,  ///< signed 32-bit
    F32,  ///< IEEE single
    F64,  ///< IEEE double
};

/** @return the size in bytes of one element of @p type. */
constexpr unsigned
elemSize(ElemType type)
{
    switch (type) {
      case ElemType::U8: return 1;
      case ElemType::I16: return 2;
      case ElemType::I32: return 4;
      case ElemType::F32: return 4;
      case ElemType::F64: return 8;
    }
    return 1;
}

/** @return number of elements of @p type in one 64 B cache block. */
constexpr unsigned
elemsPerBlock(ElemType type)
{
    return blockBytes / elemSize(type);
}

/** @return the bit width of @p type's storage. */
constexpr unsigned
elemBits(ElemType type)
{
    return elemSize(type) * 8;
}

/** Human-readable name of @p type. */
const char *elemTypeName(ElemType type);

/**
 * One annotated approximate region of the simulated address space.
 *
 * A region covers [base, base + size) and holds elements of a single
 * type whose values the programmer expects to lie within [minValue,
 * maxValue]. Per Sec 4.1 a single range is used for all elements of a
 * given type in an application, which callers achieve by registering
 * regions of equal type with equal ranges.
 */
struct ApproxRegion
{
    Addr base = 0;           ///< first byte of the region
    u64 size = 0;            ///< region length in bytes
    ElemType type = ElemType::F32; ///< element data type
    double minValue = 0.0;   ///< declared minimum element value
    double maxValue = 1.0;   ///< declared maximum element value
    std::string name;        ///< diagnostic label

    /** @return whether @p a falls inside this region. */
    bool
    contains(Addr a) const
    {
        return a >= base && a < base + size;
    }

    /** Range width; at least a tiny epsilon to avoid divide-by-zero. */
    double
    span() const
    {
        return std::max(maxValue - minValue, 1e-30);
    }
};

/**
 * Registry of all approximate regions of one application.
 *
 * Mirrors the small range-buffer the paper stores at the LLC. Lookup is
 * by block address; regions are block-aligned in practice (workload
 * allocators guarantee it) so a block is either entirely approximate or
 * entirely precise, matching the paper's model.
 */
class ApproxRegistry
{
  public:
    /** Register a region. Regions must not overlap. */
    void add(const ApproxRegion &region);

    /** Remove all regions (between workload phases/runs). */
    void clear();

    /** @return the region containing @p a, or nullptr if precise. */
    const ApproxRegion *find(Addr a) const;

    /** @return whether address @p a is annotated approximate. */
    bool isApprox(Addr a) const { return find(a) != nullptr; }

    /** All registered regions. */
    const std::vector<ApproxRegion> &regions() const { return sorted; }

    /**
     * Mutation counter, bumped by add() and clear(). Consumers that
     * cache lookup results (the per-region MapParams cache in
     * DoppelgangerCache) record the generation at build time and
     * assert it is unchanged on later accesses: the registry models
     * the paper's start-of-application range transfer (Sec 4.1) and
     * must be immutable once the run starts.
     */
    u64 generation() const { return gen; }

  private:
    /** Regions sorted by base address for binary search. */
    std::vector<ApproxRegion> sorted;
    /** Bumped on every mutation; see generation(). */
    u64 gen = 0;
};

/**
 * Read element @p idx of a 64 B block interpreted as @p type.
 * @return the value widened to double.
 */
double blockElement(const u8 *block, ElemType type, unsigned idx);

/** Store @p value (narrowed with clamping) as element @p idx. */
void setBlockElement(u8 *block, ElemType type, unsigned idx, double value);

} // namespace dopp

#endif // DOPP_SIM_APPROX_HH
