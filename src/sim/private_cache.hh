/**
 * @file
 * Private per-core writeback cache, used for both L1 and L2 (Table 1:
 * 16 KB 4-way L1, 128 KB 8-way L2). Coherence state (MSI) is tracked by
 * the hierarchy's directory; lines here carry only valid/dirty/data.
 */

#ifndef DOPP_SIM_PRIVATE_CACHE_HH
#define DOPP_SIM_PRIVATE_CACHE_HH

#include <cstring>
#include <functional>

#include "sim/memory.hh"
#include "sim/set_assoc.hh"
#include "util/types.hh"

namespace dopp
{

/** A private writeback, write-allocate cache level. */
class PrivateCache
{
  public:
    struct Line
    {
        bool valid = false;
        u64 tag = 0;
        bool dirty = false;
        BlockData data = {};
    };

    PrivateCache(u64 size_bytes, u32 num_ways,
                 ReplPolicy policy = ReplPolicy::LRU)
        : array(static_cast<u32>(size_bytes / blockBytes / num_ways),
                num_ways, policy),
          slicer(static_cast<u32>(size_bytes / blockBytes / num_ways))
    {
    }

    /** @return the resident line for @p addr, or nullptr. No touch. */
    Line *
    find(Addr addr)
    {
        const int way = array.findWay(slicer.set(addr), slicer.tag(addr));
        if (way < 0)
            return nullptr;
        return &array.at(slicer.set(addr), static_cast<u32>(way));
    }

    const Line *
    find(Addr addr) const
    {
        const int way = array.findWay(slicer.set(addr), slicer.tag(addr));
        if (way < 0)
            return nullptr;
        return &array.at(slicer.set(addr), static_cast<u32>(way));
    }

    /** Mark @p addr recently used. @pre the line is resident. */
    void
    touch(Addr addr)
    {
        const int way = array.findWay(slicer.set(addr), slicer.tag(addr));
        if (way >= 0)
            array.touch(slicer.set(addr), static_cast<u32>(way));
    }

    /**
     * Allocate a line for @p addr, evicting a victim if needed.
     * If a valid victim is displaced, @p on_evict is called with its
     * address and line contents *before* the new line is installed.
     * @return the freshly installed (valid, clean, zeroed-data) line.
     */
    Line &
    allocate(Addr addr,
             const std::function<void(Addr, const Line &)> &on_evict)
    {
        const u32 set = slicer.set(addr);
        const u32 victim = array.victimWay(set);
        Line &line = array.at(set, victim);
        if (line.valid && on_evict)
            on_evict(slicer.addr(set, line.tag), line);
        array.setValid(set, victim, true);
        line.tag = slicer.tag(addr);
        line.dirty = false;
        line.data = {};
        array.touchInsert(set, victim);
        return line;
    }

    /** Drop @p addr if resident. @return whether a line was dropped. */
    bool
    invalidate(Addr addr)
    {
        const u32 set = slicer.set(addr);
        const int way = array.findWay(set, slicer.tag(addr));
        if (way < 0)
            return false;
        array.setValid(set, static_cast<u32>(way), false);
        return true;
    }

    /** Visit every valid line as (block address, line). */
    void
    forEachLine(const std::function<void(Addr, Line &)> &visit)
    {
        for (u32 s = 0; s < array.sets(); ++s) {
            for (u32 w = 0; w < array.ways(); ++w) {
                Line &line = array.at(s, w);
                if (line.valid)
                    visit(slicer.addr(s, line.tag), line);
            }
        }
    }

    /** Invalidate everything without writebacks. */
    void invalidateAll() { array.invalidateAll(); }

    u32 sets() const { return array.sets(); }
    u32 ways() const { return array.ways(); }

    /** Access counters for the energy model. */
    u64 accesses = 0;
    u64 misses = 0;

  private:
    SetAssocArray<Line> array;
    AddrSlicer slicer;
};

} // namespace dopp

#endif // DOPP_SIM_PRIVATE_CACHE_HH
