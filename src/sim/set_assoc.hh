/**
 * @file
 * Generic set-associative array with pluggable replacement.
 *
 * Used for every lookup structure in the repository: private L1/L2
 * caches, the baseline LLC, the Doppelgänger tag array, the MTag array
 * and the dedup hash array. The entry type supplies `valid` and `tag`
 * fields; the array manages indexing and replacement metadata.
 */

#ifndef DOPP_SIM_SET_ASSOC_HH
#define DOPP_SIM_SET_ASSOC_HH

#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace dopp
{

/** Replacement policy selector for a SetAssocArray. */
enum class ReplPolicy : u8
{
    LRU,    ///< least-recently-used (the paper's policy, Sec 3.5)
    FIFO,   ///< first-in-first-out (stamp set only on insert)
    RANDOM, ///< uniform random victim
};

/** Human-readable policy name. */
inline const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU: return "lru";
      case ReplPolicy::FIFO: return "fifo";
      case ReplPolicy::RANDOM: return "random";
    }
    return "?";
}

/**
 * Set-associative array of entries with LRU/FIFO/RANDOM replacement.
 *
 * @tparam Entry must expose `bool valid` and `u64 tag` members; all
 * other fields are the client's business.
 */
template <typename Entry>
class SetAssocArray
{
  public:
    /**
     * @param num_sets number of sets (any positive count; address-
     *        indexed clients additionally require a power of two via
     *        AddrSlicer, but map-indexed arrays may be fractional)
     * @param num_ways associativity
     * @param policy victim-selection policy
     */
    SetAssocArray(u32 num_sets, u32 num_ways,
                  ReplPolicy policy = ReplPolicy::LRU)
        : numSets(num_sets), numWays(num_ways), policy(policy),
          slots(static_cast<size_t>(num_sets) * num_ways),
          stamps(static_cast<size_t>(num_sets) * num_ways, 0),
          rng(0xD0BBE16A)
    {
        if (num_sets == 0)
            fatal("set count must be non-zero");
        if (num_ways == 0)
            fatal("associativity must be non-zero");
    }

    u32 sets() const { return numSets; }
    u32 ways() const { return numWays; }

    /** Entry at (@p set, @p way); bounds-checked in debug builds. */
    Entry &
    at(u32 set, u32 way)
    {
        DOPP_ASSERT(set < numSets && way < numWays);
        return slots[static_cast<size_t>(set) * numWays + way];
    }

    const Entry &
    at(u32 set, u32 way) const
    {
        DOPP_ASSERT(set < numSets && way < numWays);
        return slots[static_cast<size_t>(set) * numWays + way];
    }

    /**
     * Find the valid entry in @p set whose tag equals @p tag.
     * Does not touch replacement state.
     * @return way index, or -1 if not present.
     */
    int
    findWay(u32 set, u64 tag) const
    {
        for (u32 w = 0; w < numWays; ++w) {
            const Entry &e = at(set, w);
            if (e.valid && e.tag == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    /**
     * Choose a victim way in @p set: an invalid way if one exists,
     * otherwise per the replacement policy.
     */
    u32
    victimWay(u32 set)
    {
        for (u32 w = 0; w < numWays; ++w) {
            if (!at(set, w).valid)
                return w;
        }
        if (policy == ReplPolicy::RANDOM)
            return static_cast<u32>(rng.below(numWays));
        // LRU and FIFO: smallest stamp.
        u32 victim = 0;
        u64 best = stamp(set, 0);
        for (u32 w = 1; w < numWays; ++w) {
            if (stamp(set, w) < best) {
                best = stamp(set, w);
                victim = w;
            }
        }
        return victim;
    }

    /** Record a use of (@p set, @p way); LRU only (FIFO ignores it). */
    void
    touch(u32 set, u32 way)
    {
        if (policy == ReplPolicy::LRU)
            setStamp(set, way, ++clock);
    }

    /** Record an insertion at (@p set, @p way); updates all policies. */
    void
    touchInsert(u32 set, u32 way)
    {
        setStamp(set, way, ++clock);
    }

    /**
     * Set the validity of (@p set, @p way). All validity transitions
     * must flow through here (or invalidateAll) so the maintained
     * valid-entry counter stays exact; writing `entry.valid` directly
     * desyncs validCount(). A no-op when the state already matches.
     */
    void
    setValid(u32 set, u32 way, bool v)
    {
        Entry &e = at(set, way);
        if (e.valid == v)
            return;
        if (v)
            ++numValid;
        else
            --numValid;
        e.valid = v;
    }

    /** Invalidate every entry (replacement state is reset too). */
    void
    invalidateAll()
    {
        for (auto &s : slots)
            s.valid = false;
        for (auto &st : stamps)
            st = 0;
        clock = 0;
        numValid = 0;
    }

    /** Count of valid entries across the whole array (maintained
     * incrementally; O(1)). */
    u64
    validCount() const
    {
        return numValid;
    }

  private:
    u64
    stamp(u32 set, u32 way) const
    {
        return stamps[static_cast<size_t>(set) * numWays + way];
    }

    void
    setStamp(u32 set, u32 way, u64 v)
    {
        stamps[static_cast<size_t>(set) * numWays + way] = v;
    }

    u32 numSets;
    u32 numWays;
    ReplPolicy policy;
    std::vector<Entry> slots;
    std::vector<u64> stamps;
    u64 clock = 0;
    u64 numValid = 0;
    Rng rng;
};

/**
 * Structure-of-arrays set-associative *directory*: the hot-path
 * companion of SetAssocArray. Where SetAssocArray interleaves every
 * client field with the lookup key (so a 16-way probe strides one
 * whole entry per way), SetAssocDir stores only what a probe touches —
 * a contiguous per-set run of 64-bit keys plus one flag byte per way —
 * so a full-set compare reads two or three cache lines and the
 * compiler can unroll/vectorize the key loop. Client payloads (map
 * values, list links, data blocks) live in the owner's own parallel
 * arrays, indexed by the same flattened `set * ways + way` slot.
 *
 * Replacement semantics are bit-identical to SetAssocArray: the same
 * insertion-order invalid-way scan, the same monotonically increasing
 * stamp clock for LRU/FIFO, and the same Rng seed and draw sequence
 * for RANDOM — a client migrated from SetAssocArray to SetAssocDir
 * makes exactly the same victim choices (the hot-path differential
 * suite, tests/test_hotpath_diff.cc, pins this end to end).
 *
 * Flag byte layout: bit 0 is the valid bit and is owned by the
 * directory (all transitions flow through setValid/invalidateAll so
 * validCount() stays exact); bits 1..7 are the client's (dirty,
 * precise, ...), read/written through flags()/setFlag().
 */
class SetAssocDir
{
  public:
    /** Valid bit of the per-way flag byte (directory-owned). */
    static constexpr u8 kValid = 1;

    SetAssocDir(u32 num_sets, u32 num_ways,
                ReplPolicy policy = ReplPolicy::LRU)
        : numSets(num_sets), numWays(num_ways), policy(policy),
          keys(static_cast<size_t>(num_sets) * num_ways, 0),
          flagsV(static_cast<size_t>(num_sets) * num_ways, 0),
          stamps(static_cast<size_t>(num_sets) * num_ways, 0),
          rng(0xD0BBE16A)
    {
        if (num_sets == 0)
            fatal("set count must be non-zero");
        if (num_ways == 0)
            fatal("associativity must be non-zero");
    }

    u32 sets() const { return numSets; }
    u32 ways() const { return numWays; }

    /** Flattened slot index of (@p set, @p way). */
    i32
    index(u32 set, u32 way) const
    {
        DOPP_ASSERT(set < numSets && way < numWays);
        return static_cast<i32>(set * numWays + way);
    }

    u64 key(i32 idx) const { return keys[slot(idx)]; }
    void setKey(i32 idx, u64 k) { keys[slot(idx)] = k; }

    bool valid(i32 idx) const { return flagsV[slot(idx)] & kValid; }

    /** The whole flag byte (valid bit plus client bits). */
    u8 flags(i32 idx) const { return flagsV[slot(idx)]; }

    /** Test one client flag bit. */
    bool flag(i32 idx, u8 mask) const { return flagsV[slot(idx)] & mask; }

    /** Set/clear client flag bits (@p mask must not include kValid). */
    void
    setFlag(i32 idx, u8 mask, bool on)
    {
        DOPP_ASSERT(!(mask & kValid));
        if (on)
            flagsV[slot(idx)] |= mask;
        else
            flagsV[slot(idx)] &= static_cast<u8>(~mask);
    }

    /** Set validity, keeping the incremental valid count exact. A
     * no-op when the state already matches (mirrors SetAssocArray). */
    void
    setValid(i32 idx, bool v)
    {
        u8 &f = flagsV[slot(idx)];
        if (static_cast<bool>(f & kValid) == v)
            return;
        if (v) {
            f |= kValid;
            ++numValid;
        } else {
            f &= static_cast<u8>(~kValid);
            --numValid;
        }
    }

    /**
     * Find the valid way in @p set whose key equals @p k: the batched
     * probe. The key run is contiguous, so the whole set compares in
     * one pass over `ways` consecutive u64s; does not touch
     * replacement state. @return way index, or -1.
     */
    int
    findWay(u32 set, u64 k) const
    {
        const size_t base = static_cast<size_t>(set) * numWays;
        const u64 *kp = keys.data() + base;
        const u8 *fp = flagsV.data() + base;
        for (u32 w = 0; w < numWays; ++w) {
            if ((fp[w] & kValid) && kp[w] == k)
                return static_cast<int>(w);
        }
        return -1;
    }

    /**
     * As findWay, but additionally requiring (flags & @p mask) ==
     * @p want — e.g. "valid and not precise" for MTag probes that
     * must skip precise entries sharing the set.
     */
    int
    findWayFlags(u32 set, u64 k, u8 mask, u8 want) const
    {
        const size_t base = static_cast<size_t>(set) * numWays;
        const u64 *kp = keys.data() + base;
        const u8 *fp = flagsV.data() + base;
        for (u32 w = 0; w < numWays; ++w) {
            if ((fp[w] & mask) == want && kp[w] == k)
                return static_cast<int>(w);
        }
        return -1;
    }

    /** Victim way in @p set: first invalid way, else per policy
     * (identical choice sequence to SetAssocArray::victimWay). */
    u32
    victimWay(u32 set)
    {
        const size_t base = static_cast<size_t>(set) * numWays;
        const u8 *fp = flagsV.data() + base;
        for (u32 w = 0; w < numWays; ++w) {
            if (!(fp[w] & kValid))
                return w;
        }
        if (policy == ReplPolicy::RANDOM)
            return static_cast<u32>(rng.below(numWays));
        u32 victim = 0;
        u64 best = stamps[base];
        for (u32 w = 1; w < numWays; ++w) {
            if (stamps[base + w] < best) {
                best = stamps[base + w];
                victim = w;
            }
        }
        return victim;
    }

    /** Record a use of (@p set, @p way); LRU only (FIFO ignores it). */
    void
    touch(u32 set, u32 way)
    {
        if (policy == ReplPolicy::LRU)
            stamps[static_cast<size_t>(set) * numWays + way] = ++clock;
    }

    /** Record an insertion at (@p set, @p way); updates all policies. */
    void
    touchInsert(u32 set, u32 way)
    {
        stamps[static_cast<size_t>(set) * numWays + way] = ++clock;
    }

    /** Invalidate every entry (flags, stamps and clock reset). */
    void
    invalidateAll()
    {
        for (auto &f : flagsV)
            f = 0;
        for (auto &st : stamps)
            st = 0;
        clock = 0;
        numValid = 0;
    }

    /** Count of valid entries (maintained incrementally; O(1)). */
    u64 validCount() const { return numValid; }

  private:
    size_t
    slot(i32 idx) const
    {
        DOPP_ASSERT(idx >= 0 &&
                    static_cast<size_t>(idx) < keys.size());
        return static_cast<size_t>(idx);
    }

    u32 numSets;
    u32 numWays;
    ReplPolicy policy;
    std::vector<u64> keys;
    std::vector<u8> flagsV;
    std::vector<u64> stamps;
    u64 clock = 0;
    u64 numValid = 0;
    Rng rng;
};

/**
 * Address-to-(set, tag) slicing for a block-grained structure with
 * @p numSets sets: set = addr[6 + log2(sets) - 1 : 6], tag = higher bits.
 */
struct AddrSlicer
{
    explicit AddrSlicer(u32 num_sets)
        : setBits(floorLog2(num_sets))
    {
        DOPP_ASSERT(isPowerOf2(num_sets));
    }

    u32
    set(Addr a) const
    {
        if (setBits == 0)
            return 0;
        return static_cast<u32>((a >> blockOffsetBits) & lowMask(setBits));
    }

    u64
    tag(Addr a) const
    {
        return a >> (blockOffsetBits + setBits);
    }

    /** Rebuild a block address from (set, tag). */
    Addr
    addr(u32 set_idx, u64 tag_val) const
    {
        return (tag_val << (blockOffsetBits + setBits)) |
            (static_cast<Addr>(set_idx) << blockOffsetBits);
    }

    unsigned setBits;
};

} // namespace dopp

#endif // DOPP_SIM_SET_ASSOC_HH
