#include "hierarchy.hh"

#include <cstring>

#include "util/logging.hh"

namespace dopp
{

HierCounters::HierCounters(StatGroup group)
    : accesses(group.counter("accesses", "core memory accesses")),
      loads(group.counter("loads", "core loads")),
      stores(group.counter("stores", "core stores")),
      l1Hits(group.counter("l1.hits", "L1 hits")),
      l1Misses(group.counter("l1.misses", "L1 misses")),
      l2Hits(group.counter("l2.hits", "L2 hits")),
      l2Misses(group.counter("l2.misses", "L2 misses")),
      upgrades(group.counter("upgrades",
                             "write hits needing ownership")),
      remoteFetches(group.counter(
          "remoteFetches", "blocks pulled out of a remote M copy")),
      invalidationsSent(group.counter("invalidationsSent",
                                      "coherence invalidations sent"))
{
    group.formula(
        "l2Mpka",
        [this] { return view().l2Mpka(); },
        "L2 misses per thousand core accesses");
}

HierarchyStats
HierCounters::view() const
{
    HierarchyStats s;
    s.accesses = accesses.value();
    s.loads = loads.value();
    s.stores = stores.value();
    s.l1Hits = l1Hits.value();
    s.l1Misses = l1Misses.value();
    s.l2Hits = l2Hits.value();
    s.l2Misses = l2Misses.value();
    s.upgrades = upgrades.value();
    s.remoteFetches = remoteFetches.value();
    s.invalidationsSent = invalidationsSent.value();
    return s;
}

void
HierCounters::reset()
{
    accesses.reset();
    loads.reset();
    stores.reset();
    l1Hits.reset();
    l1Misses.reset();
    l2Hits.reset();
    l2Misses.reset();
    upgrades.reset();
    remoteFetches.reset();
    invalidationsSent.reset();
}

MemorySystem::MemorySystem(const HierarchyConfig &config,
                           LastLevelCache &llc, MainMemory &memory,
                           StatRegistry *stat_registry,
                           const std::string &stat_group)
    : cfg(config), llcRef(llc), mem(memory),
      ownedStats(stat_registry ? nullptr
                               : std::make_unique<StatRegistry>())
{
    if (cfg.numCores == 0 || cfg.numCores > 8)
        fatal("unsupported core count %u", cfg.numCores);
    StatRegistry &reg =
        stat_registry ? *stat_registry : *ownedStats;
    StatGroup group = reg.group(stat_group);
    ctr = std::make_unique<HierCounters>(group);
    group.counterFn(
        "l1.accesses", [this] { return l1Accesses(); },
        "total L1 accesses across cores");
    group.counterFn(
        "l2.accesses", [this] { return l2Accesses(); },
        "total L2 accesses across cores");
    for (u32 c = 0; c < cfg.numCores; ++c) {
        l1.push_back(std::make_unique<PrivateCache>(cfg.l1Bytes,
                                                    cfg.l1Ways));
        l2.push_back(std::make_unique<PrivateCache>(cfg.l2Bytes,
                                                    cfg.l2Ways));
    }
    llcRef.setBackInvalidate(
        [this](Addr addr, u8 *data) { return backInvalidate(addr, data); });
}

void
MemorySystem::dirMaybeErase(Addr addr)
{
    auto it = directory.find(addr);
    if (it != directory.end() && it->second.sharers == 0 &&
        it->second.owner < 0) {
        directory.erase(it);
    }
}

bool
MemorySystem::invalidateOthers(Addr addr, int except, u8 *merged)
{
    auto it = directory.find(addr);
    if (it == directory.end())
        return false;
    DirEntry &de = it->second;

    bool dirty = false;
    for (u32 c = 0; c < cfg.numCores; ++c) {
        if (static_cast<int>(c) == except || !(de.sharers & (1u << c)))
            continue;
        PrivateCache::Line *l1line = l1[c]->find(addr);
        PrivateCache::Line *l2line = l2[c]->find(addr);
        // L1 data supersedes L2 data within a core.
        if (l1line && l1line->dirty) {
            std::memcpy(merged, l1line->data.data(), blockBytes);
            dirty = true;
        } else if (l2line && l2line->dirty) {
            std::memcpy(merged, l2line->data.data(), blockBytes);
            dirty = true;
        }
        if (l1line)
            l1line->valid = false;
        if (l2line)
            l2line->valid = false;
        de.sharers &= static_cast<u8>(~(1u << c));
        if (de.owner == static_cast<int>(c))
            de.owner = -1;
        ++ctr->invalidationsSent;
    }
    dirMaybeErase(addr);
    return dirty;
}

bool
MemorySystem::backInvalidate(Addr addr, u8 *data)
{
    bool dirty = false;
    for (u32 c = 0; c < cfg.numCores; ++c) {
        PrivateCache::Line *l1line = l1[c]->find(addr);
        PrivateCache::Line *l2line = l2[c]->find(addr);
        if (l1line && l1line->dirty) {
            std::memcpy(data, l1line->data.data(), blockBytes);
            dirty = true;
        } else if (l2line && l2line->dirty) {
            std::memcpy(data, l2line->data.data(), blockBytes);
            dirty = true;
        }
        if (l1line) {
            l1line->valid = false;
            ++ctr->invalidationsSent;
        }
        if (l2line) {
            l2line->valid = false;
            ++ctr->invalidationsSent;
        }
    }
    directory.erase(addr);
    return dirty;
}

void
MemorySystem::evictFromL2(CoreId core, Addr addr,
                          const PrivateCache::Line &line)
{
    // Maintain L2 ⊇ L1: the L1 copy must go too; its data is newest.
    BlockData newest = line.data;
    bool dirty = line.dirty;
    PrivateCache::Line *l1line = l1[core]->find(addr);
    if (l1line) {
        if (l1line->dirty) {
            newest = l1line->data;
            dirty = true;
        }
        l1line->valid = false;
    }
    if (dirty)
        llcRef.writeback(addr, newest.data());

    auto it = directory.find(addr);
    if (it != directory.end()) {
        it->second.sharers &= static_cast<u8>(~(1u << core));
        if (it->second.owner == static_cast<int>(core))
            it->second.owner = -1;
        dirMaybeErase(addr);
    }
}

PrivateCache::Line &
MemorySystem::fillPrivate(CoreId core, Addr addr, const u8 *bytes)
{
    // Fill L2 first so inclusion holds when L1 is filled.
    if (!l2[core]->find(addr)) {
        PrivateCache::Line &l2line = l2[core]->allocate(
            addr, [this, core](Addr victim, const PrivateCache::Line &v) {
                evictFromL2(core, victim, v);
            });
        std::memcpy(l2line.data.data(), bytes, blockBytes);
    }
    PrivateCache::Line *l1line = l1[core]->find(addr);
    if (!l1line) {
        l1line = &l1[core]->allocate(
            addr, [this, core](Addr victim, const PrivateCache::Line &v) {
                // L1 victim: fold dirty data into the L2 copy (L2 ⊇ L1).
                if (!v.dirty)
                    return;
                PrivateCache::Line *parent = l2[core]->find(victim);
                if (parent) {
                    parent->data = v.data;
                    parent->dirty = true;
                } else {
                    // Inclusion violated only via races we don't model;
                    // be safe and push straight to the LLC.
                    llcRef.writeback(victim, v.data.data());
                }
            });
        std::memcpy(l1line->data.data(), bytes, blockBytes);
    }
    return *l1line;
}

Tick
MemorySystem::fetchIntoPrivate(CoreId core, Addr addr, bool for_write)
{
    Tick lat = 0;

    // Resolve a remote modified copy first (Sec 3.6): write it back to
    // the LLC, which for Doppelgänger re-runs map generation.
    auto it = directory.find(addr);
    if (it != directory.end() && it->second.owner >= 0 &&
        it->second.owner != static_cast<int>(core)) {
        const CoreId owner = static_cast<CoreId>(it->second.owner);
        ++ctr->remoteFetches;
        lat += cfg.remotePenalty;

        PrivateCache::Line *l1o = l1[owner]->find(addr);
        PrivateCache::Line *l2o = l2[owner]->find(addr);
        const PrivateCache::Line *newest = l1o ? l1o : l2o;
        if (newest) {
            llcRef.writeback(addr, newest->data.data());
            // Downgrading to clean: the owner's L2 copy must match its
            // L1 copy, or a later silent L1 eviction would leave the
            // stale L2 line answering hits.
            if (l1o && l2o)
                l2o->data = l1o->data;
            if (l1o)
                l1o->dirty = false;
            if (l2o)
                l2o->dirty = false;
        }
        it->second.owner = -1;
    }

    BlockData buf;
    const auto result = llcRef.fetch(addr, buf.data());
    lat += result.latency;

    // invalidateOthers may erase the directory node, so the entry
    // reference must be (re-)taken only after it runs.
    if (for_write) {
        BlockData merged;
        if (invalidateOthers(addr, static_cast<int>(core), merged.data()))
            buf = merged;
    }
    DirEntry &de = dirEntry(addr);
    if (for_write)
        de.owner = static_cast<int>(core);
    de.sharers |= static_cast<u8>(1u << core);

    fillPrivate(core, addr, buf.data());
    return lat;
}

Tick
MemorySystem::access(CoreId core, Addr addr, bool is_write, unsigned size,
                     void *data)
{
    DOPP_ASSERT(core < cfg.numCores);
    DOPP_ASSERT(size > 0 && size <= blockBytes);
    DOPP_ASSERT(blockAlign(addr) == blockAlign(addr + size - 1));

    ++ctr->accesses;
    if (is_write)
        ++ctr->stores;
    else
        ++ctr->loads;

    const Addr baddr = blockAlign(addr);
    const unsigned off = blockOffset(addr);

    Tick lat = cfg.l1Latency;
    ++l1[core]->accesses;

    PrivateCache::Line *line = l1[core]->find(baddr);
    if (line) {
        ++ctr->l1Hits;
        l1[core]->touch(baddr);
    } else {
        ++l1[core]->misses;
        ++ctr->l1Misses;
        lat += cfg.l2Latency;
        ++l2[core]->accesses;

        PrivateCache::Line *l2line = l2[core]->find(baddr);
        if (l2line) {
            ++ctr->l2Hits;
            l2[core]->touch(baddr);
            line = &fillPrivate(core, baddr, l2line->data.data());
        } else {
            ++l2[core]->misses;
            ++ctr->l2Misses;
            lat += fetchIntoPrivate(core, baddr, is_write);
            line = l1[core]->find(baddr);
            DOPP_ASSERT(line);
        }
    }

    if (is_write) {
        DirEntry &de = dirEntry(baddr);
        de.sharers |= static_cast<u8>(1u << core);
        if (de.owner != static_cast<int>(core)) {
            // Upgrade: obtain ownership via the directory.
            ++ctr->upgrades;
            lat += cfg.remotePenalty;
            BlockData merged;
            if (invalidateOthers(baddr, static_cast<int>(core),
                                 merged.data())) {
                line->data = merged;
            }
            // invalidateOthers may have erased then re-created state;
            // re-establish our entry.
            DirEntry &de2 = dirEntry(baddr);
            de2.owner = static_cast<int>(core);
            de2.sharers |= static_cast<u8>(1u << core);
        }
        std::memcpy(line->data.data() + off, data, size);
        line->dirty = true;
    } else {
        std::memcpy(data, line->data.data() + off, size);
    }
    return lat;
}

void
MemorySystem::drain()
{
    for (u32 c = 0; c < cfg.numCores; ++c) {
        // Fold dirty L1 lines into L2 (or straight to the LLC).
        l1[c]->forEachLine([&](Addr addr, PrivateCache::Line &line) {
            if (!line.dirty)
                return;
            PrivateCache::Line *parent = l2[c]->find(addr);
            if (parent) {
                parent->data = line.data;
                parent->dirty = true;
            } else {
                llcRef.writeback(addr, line.data.data());
            }
        });
        l1[c]->invalidateAll();

        l2[c]->forEachLine([&](Addr addr, PrivateCache::Line &line) {
            if (line.dirty)
                llcRef.writeback(addr, line.data.data());
        });
        l2[c]->invalidateAll();
    }
    directory.clear();
    llcRef.flush();
}

u64
MemorySystem::l1Accesses() const
{
    u64 n = 0;
    for (const auto &cache : l1)
        n += cache->accesses;
    return n;
}

u64
MemorySystem::l2Accesses() const
{
    u64 n = 0;
    for (const auto &cache : l2)
        n += cache->accesses;
    return n;
}

} // namespace dopp
