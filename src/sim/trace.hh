/**
 * @file
 * Memory-access trace capture and replay.
 *
 * The paper drives its cache model from Pin-instrumented executions;
 * this module provides the equivalent artifact workflow: record every
 * simulated access of a workload run to a compact binary trace, then
 * replay the trace against any LLC organization without re-executing
 * the workload. Replay reproduces addresses, cores, sizes and write
 * payloads exactly, so timing/occupancy studies are decoupled from the
 * kernels (error studies still need execution, since approximate loads
 * feed back into control flow).
 *
 * Format (little-endian): 16-byte header ("DOPPTRC1" + u64 record
 * count), then fixed 24-byte records.
 */

#ifndef DOPP_SIM_TRACE_HH
#define DOPP_SIM_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/hierarchy.hh"
#include "util/types.hh"

namespace dopp
{

/** One recorded memory access. */
struct TraceRecord
{
    Addr addr = 0;       ///< byte address
    u64 payload = 0;     ///< write data (low `size` bytes); 0 for reads
    u8 core = 0;         ///< issuing core
    u8 size = 4;         ///< access size in bytes (1..8)
    u8 isWrite = 0;      ///< 1 = store
    u8 reserved[5] = {}; ///< pad to 24 bytes
};

static_assert(sizeof(TraceRecord) == 24, "trace record layout");

/** Streaming writer for .dopptrc files. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void append(const TraceRecord &record);

    /** Records written so far. */
    u64 count() const { return records; }

    /** Finalize the header and close; called by the destructor too. */
    void close();

  private:
    std::FILE *file = nullptr;
    u64 records = 0;
};

/**
 * Streaming reader for .dopptrc files.
 *
 * Hardened against malformed input: a missing/short/garbage header, a
 * file whose size disagrees with the promised record count (truncated
 * or with trailing bytes) and records with out-of-range fields are all
 * fatal, with the file name, byte offset / record index and reason in
 * the message — a corrupt trace can never be half-replayed silently.
 */
class TraceReader
{
  public:
    /** Open and validate @p path; fatal on any malformation. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Total records the header promises. */
    u64 count() const { return total; }

    /** Read and validate the next record. @return false at end. */
    bool next(TraceRecord &record);

    /** Rewind to the first record. */
    void rewind();

  private:
    std::string path_;
    std::FILE *file = nullptr;
    u64 total = 0;
    u64 consumed = 0;
};

/** Outcome of a trace replay. */
struct ReplayStats
{
    u64 accesses = 0;
    u64 reads = 0;
    u64 writes = 0;
    Tick totalLatency = 0; ///< sum of per-access stall cycles

    double
    avgLatency() const
    {
        return accesses ? static_cast<double>(totalLatency) /
            static_cast<double>(accesses) : 0.0;
    }
};

/**
 * Replay @p trace against @p system from its current (typically cold)
 * state. Write payloads are applied; read data is discarded.
 */
ReplayStats replayTrace(TraceReader &trace, MemorySystem &system);

/** The magic bytes at the start of every trace file. */
extern const char traceMagic[8];

/**
 * Multiprogramming support (paper Sec 4.1): interleave several
 * single-program traces into one, round-robin in chunks of @p chunk
 * records. Program i's addresses are offset by i × @p address_stride
 * (disjoint address spaces, as separate processes would have) and its
 * cores are remapped into an equal share of @p machine_cores. The
 * merged trace replays as a multiprogrammed workload sharing one LLC.
 *
 * @return the number of records written.
 */
u64 interleaveTraces(const std::vector<std::string> &inputs,
                     const std::string &output, u64 chunk = 64,
                     Addr address_stride = 1ULL << 33,
                     u32 machine_cores = 4);

} // namespace dopp

#endif // DOPP_SIM_TRACE_HH
