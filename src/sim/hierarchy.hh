/**
 * @file
 * Four-core memory hierarchy with MSI directory coherence.
 *
 * Models the system of Table 1: per-core private L1 (16 KB, 4-way,
 * 1-cycle) and L2 (128 KB, 8-way, 3-cycle), a shared inclusive LLC
 * behind them, and main memory (160-cycle). The LLC organization is
 * pluggable (conventional / split Doppelgänger / uniDoppelgänger /
 * dedup). The hierarchy is both *functional* — every line carries its
 * 64 bytes, so approximation applied at the LLC propagates to what the
 * cores read — and *timing*: access() returns the cycles the requesting
 * core stalls.
 *
 * Coherence follows the paper's Sec 3.6: a directory at the LLC tracks
 * sharers per block (full-map vector); requests for a block modified in
 * a remote private cache first write that copy back to the LLC (which,
 * for Doppelgänger, re-runs map generation per Sec 3.4).
 */

#ifndef DOPP_SIM_HIERARCHY_HH
#define DOPP_SIM_HIERARCHY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/llc.hh"
#include "sim/memory.hh"
#include "sim/private_cache.hh"
#include "util/types.hh"

namespace dopp
{

/** Timing and geometry of the private levels (defaults = Table 1). */
struct HierarchyConfig
{
    u32 numCores = 4;

    u64 l1Bytes = 16 * 1024;
    u32 l1Ways = 4;
    Tick l1Latency = 1;

    u64 l2Bytes = 128 * 1024;
    u32 l2Ways = 8;
    Tick l2Latency = 3;

    /** Extra cycles when a request must first retrieve a block that is
     * modified in another core's private cache. */
    Tick remotePenalty = 6;
};

/** Aggregate hierarchy counters (per run). */
struct HierarchyStats
{
    u64 accesses = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 l1Hits = 0;
    u64 l1Misses = 0;
    u64 l2Hits = 0;
    u64 l2Misses = 0;
    u64 upgrades = 0;        ///< write hits needing ownership
    u64 remoteFetches = 0;   ///< blocks pulled out of a remote M copy
    u64 invalidationsSent = 0;

    double
    l2Mpka() const
    {
        return accesses ? 1000.0 * static_cast<double>(l2Misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/** Registry-backed hierarchy counters (one instance per run). */
struct HierCounters
{
    explicit HierCounters(StatGroup group);

    Counter &accesses;
    Counter &loads;
    Counter &stores;
    Counter &l1Hits;
    Counter &l1Misses;
    Counter &l2Hits;
    Counter &l2Misses;
    Counter &upgrades;
    Counter &remoteFetches;
    Counter &invalidationsSent;

    /** Compatibility view: HierarchyStats snapshot of the counters. */
    HierarchyStats view() const;

    /** Zero every counter. */
    void reset();
};

/**
 * The memory system: cores call access(); the harness wires an LLC and
 * a MainMemory in.
 */
class MemorySystem
{
  public:
    /**
     * @param config private-level geometry and latencies
     * @param llc the shared LLC organization (not owned)
     * @param memory backing store (not owned)
     * @param stat_registry per-run registry the hierarchy registers
     *        its counters into; nullptr keeps a private registry
     * @param stat_group dotted group path for hierarchy counters
     */
    MemorySystem(const HierarchyConfig &config, LastLevelCache &llc,
                 MainMemory &memory,
                 StatRegistry *stat_registry = nullptr,
                 const std::string &stat_group = "hierarchy");

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /**
     * Perform one load or store of @p size bytes at @p addr for
     * @p core. For loads, @p data receives the bytes the core observes
     * (possibly a doppelgänger approximation); for stores, @p data
     * supplies the bytes written.
     *
     * @pre the access does not straddle a 64 B block boundary.
     * @return the number of cycles the core stalls for this access.
     */
    Tick access(CoreId core, Addr addr, bool is_write, unsigned size,
                void *data);

    /**
     * Write back every dirty private and LLC block to memory and
     * invalidate all levels. Used before reading workload outputs and
     * between experiment phases. Doppelgänger writeback semantics apply
     * (dirty tags write their *shared* data entry back).
     */
    void drain();

    /** Per-run statistics (compatibility view of the registry). */
    const HierarchyStats &
    stats() const
    {
        statsView = ctr->view();
        return statsView;
    }

    /** Zero hierarchy statistics (cache contents untouched). */
    void resetStats() { ctr->reset(); }

    /** Per-core private cache access counts, for hierarchy energy. */
    u64 l1Accesses() const;
    u64 l2Accesses() const;

    /** Underlying LLC, e.g. for snapshots. */
    LastLevelCache &llc() { return llcRef; }

    /** Private-cache introspection (tests, inclusion checks). */
    const PrivateCache &l1Cache(CoreId core) const { return *l1[core]; }
    const PrivateCache &l2Cache(CoreId core) const { return *l2[core]; }
    PrivateCache &l1Cache(CoreId core) { return *l1[core]; }
    PrivateCache &l2Cache(CoreId core) { return *l2[core]; }

    u32 numCores() const { return cfg.numCores; }

  private:
    /** Directory entry: which cores hold the block, who owns it in M. */
    struct DirEntry
    {
        u8 sharers = 0;  ///< bit per core
        int owner = -1;  ///< core with M, or -1
    };

    /** Invalidate private copies of @p addr in all cores but @p except;
     * dirty data (if any) is merged into @p merged. @return dirty? */
    bool invalidateOthers(Addr addr, int except, u8 *merged);

    /** The LLC's inclusive back-invalidation hook. */
    bool backInvalidate(Addr addr, u8 *data);

    /** L2 victim handler: maintains L2⊇L1 inclusion and writebacks. */
    void evictFromL2(CoreId core, Addr addr,
                     const PrivateCache::Line &line);

    /** Fill @p addr into core @p core's L2 and L1, with @p bytes. */
    PrivateCache::Line &fillPrivate(CoreId core, Addr addr,
                                    const u8 *bytes);

    /** Fetch @p addr into core's hierarchy from LLC, resolving any
     * remote M copy. @return extra latency. */
    Tick fetchIntoPrivate(CoreId core, Addr addr, bool for_write);

    DirEntry &dirEntry(Addr addr) { return directory[addr]; }
    void dirMaybeErase(Addr addr);

    HierarchyConfig cfg;
    LastLevelCache &llcRef;
    MainMemory &mem;
    std::vector<std::unique_ptr<PrivateCache>> l1;
    std::vector<std::unique_ptr<PrivateCache>> l2;
    std::unordered_map<Addr, DirEntry> directory;
    std::unique_ptr<StatRegistry> ownedStats; ///< when none is passed
    std::unique_ptr<HierCounters> ctr;
    mutable HierarchyStats statsView; ///< storage behind stats()
};

} // namespace dopp

#endif // DOPP_SIM_HIERARCHY_HH
