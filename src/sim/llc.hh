/**
 * @file
 * Last-level-cache interface shared by all LLC organizations.
 *
 * The memory hierarchy (hierarchy.hh) is LLC-agnostic: the baseline
 * conventional cache, the split precise+Doppelgänger LLC, the unified
 * uniDoppelgänger LLC and the dedup baseline all implement this
 * interface. The LLC owns its interaction with main memory (demand
 * fills, writebacks) and reports per-structure access counts that the
 * energy model converts to Joules.
 */

#ifndef DOPP_SIM_LLC_HH
#define DOPP_SIM_LLC_HH

#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "fault/fault_injector.hh"
#include "fault/qor_guardrail.hh"
#include "sim/approx.hh"
#include "sim/memory.hh"
#include "sim/set_assoc.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dopp
{

/** Read/write access counters for one SRAM structure. */
struct ArrayCounters
{
    u64 reads = 0;
    u64 writes = 0;

    u64 total() const { return reads + writes; }
};

/** Statistics exported by every LLC organization. */
struct LlcStats
{
    u64 fetches = 0;        ///< demand fetches from private L2 misses
    u64 fetchHits = 0;      ///< fetches that hit a (tag) entry
    u64 fetchMisses = 0;    ///< fetches that went to memory
    u64 writebacksIn = 0;   ///< dirty writebacks arriving from L2s

    u64 evictions = 0;          ///< tag entries evicted
    u64 dataEvictions = 0;      ///< data entries evicted (decoupled LLCs)
    u64 dirtyWritebacks = 0;    ///< blocks written back to memory
    u64 backInvalidations = 0;  ///< inclusive invalidations sent upward

    ArrayCounters tagArray;   ///< address tag array accesses
    ArrayCounters mtagArray;  ///< MTag array accesses (decoupled LLCs)
    ArrayCounters dataArray;  ///< data array accesses

    u64 mapGens = 0;          ///< map generations (168 pJ each, Sec 5.6)

    /// Sum/count of tags linked to a data entry at data-evict time,
    /// for the paper's "4.4 tags per data entry" statistic.
    u64 linkedTagsSum = 0;
    u64 linkedTagsSamples = 0;

    /** @name Fault-injection / QoR-guardrail counters (src/fault) */
    /// @{
    u64 faultsInjected = 0;   ///< bit flips applied to this LLC's arrays
    u64 faultsDetected = 0;   ///< metadata corruptions the self-check caught
    u64 faultsRepaired = 0;   ///< repair passes that restored invariants
    u64 repairTagsDropped = 0;    ///< tags invalidated to restore invariants
    u64 repairEntriesDropped = 0; ///< data entries orphaned and invalidated
    u64 degradedFills = 0;    ///< approx fills routed precise by the guardrail
    /// @}

    double
    avgLinkedTags() const
    {
        return linkedTagsSamples
            ? static_cast<double>(linkedTagsSum) /
                  static_cast<double>(linkedTagsSamples)
            : 0.0;
    }

    double
    missRate() const
    {
        return fetches ? static_cast<double>(fetchMisses) /
            static_cast<double>(fetches) : 0.0;
    }
};

/**
 * Name + accessors for one LlcStats counter. The canonical field list
 * (llcStatFields) is the single place that enumerates the struct, so
 * field-wise aggregation (split-LLC stats summing) and the registry
 * compatibility view can never silently miss a counter: a
 * static_assert in llc.cc ties the list length to sizeof(LlcStats).
 * Field names use the registry's dotted convention ("tagArray.reads"),
 * so a view registered under group "llc" exports as
 * "llc.tagArray.reads".
 */
struct LlcStatField
{
    const char *name;
    u64 (*get)(const LlcStats &); ///< const read of the field
    u64 &(*ref)(LlcStats &);      ///< mutable field reference

    u64 value(const LlcStats &s) const { return get(s); }
};

/** Every u64 counter of LlcStats, in declaration order. */
const std::vector<LlcStatField> &llcStatFields();

/** Read/write access counter handles for one SRAM structure. */
struct ArrayCounterRefs
{
    explicit ArrayCounterRefs(StatGroup g);

    Counter &reads;
    Counter &writes;
};

/**
 * Registry-backed counter handles mirroring LlcStats field-for-field:
 * one Counter per u64 in the struct, registered under one stat group
 * at construction. LLC hot paths bump these handles; LlcStats itself
 * is reduced to the *compatibility view* view() produces for
 * aggregation, reports and the energy model's struct-based overloads.
 * A unit test pins the registered names against llcStatFields(), so
 * the view and the registry schema cannot drift apart.
 */
struct LlcCounters
{
    explicit LlcCounters(StatGroup g);

    Counter &fetches;
    Counter &fetchHits;
    Counter &fetchMisses;
    Counter &writebacksIn;

    Counter &evictions;
    Counter &dataEvictions;
    Counter &dirtyWritebacks;
    Counter &backInvalidations;

    ArrayCounterRefs tagArray;
    ArrayCounterRefs mtagArray;
    ArrayCounterRefs dataArray;

    Counter &mapGens;

    Counter &linkedTagsSum;
    Counter &linkedTagsSamples;

    Counter &faultsInjected;
    Counter &faultsDetected;
    Counter &faultsRepaired;
    Counter &repairTagsDropped;
    Counter &repairEntriesDropped;
    Counter &degradedFills;

    /** Compatibility view: LlcStats snapshot of the counters. */
    LlcStats view() const;

    /** Zero every counter. */
    void reset();
};

/**
 * Register a derived LlcStats-shaped family under @p group: one
 * integral stat per llcStatFields() entry plus the missRate and
 * avgLinkedTags formulas, all computed from @p view at snapshot time.
 * Used for aggregate "llc.*" stats of organizations whose own
 * counters live in subgroups (split halves, uniDoppelgänger).
 */
void registerLlcStatsView(StatGroup group,
                          std::function<LlcStats()> view);

/** Register only the derived formulas (missRate, avgLinkedTags) of
 * @p view under @p group — for organizations whose counters already
 * live directly under @p group. */
void registerLlcFormulas(StatGroup group,
                         std::function<LlcStats()> view);

/**
 * Per-phase wall-clock breakdown of the LLC access path, accumulated
 * by organizations that support setHotPathProfile(). All figures are
 * nanoseconds of *simulator* time — they attribute where the model
 * itself spends its cycles (bench_perf's per-phase columns), not
 * modeled hardware latency. Instrumentation is only active while a
 * profile is attached; throughput runs detach it so the timing calls
 * cost one predicted-not-taken branch.
 */
struct HotPathProfile
{
    u64 tagProbeNs = 0;  ///< address-tag set probes
    u64 mtagProbeNs = 0; ///< MTag (map-indexed) set probes
    u64 listMaintNs = 0; ///< tag-list link/unlink, allocation, evicts
    u64 dataArrayNs = 0; ///< 64 B block copies
};

/** Monotonic nanosecond timestamp for HotPathProfile spans. */
u64 hotpathNowNs();

/** Snapshot of one logical block resident in the LLC. */
struct LlcBlockInfo
{
    Addr addr = 0;            ///< block address
    const u8 *data = nullptr; ///< the 64 B the LLC would serve
    bool dirty = false;       ///< per-tag dirty bit
    bool approx = false;      ///< address lies in an annotated region
    ElemType type = ElemType::F32; ///< element type if approximate
};

/**
 * Callback into the hierarchy used for inclusive back-invalidation:
 * invalidate all private copies of @p addr; if some private copy was
 * dirty, copy its 64 bytes into @p data and return true.
 */
using BackInvalidateFn = std::function<bool(Addr addr, u8 *data)>;

/** Abstract LLC. All addresses are block-aligned by callers. */
class LastLevelCache
{
  public:
    /** Outcome of a demand fetch. */
    struct FetchResult
    {
        bool hit = false;  ///< tag hit (no memory access needed)
        Tick latency = 0;  ///< cycles beyond the L2 (probe + memory)
    };

    /**
     * @param memory backing store
     * @param stat_registry per-run registry this LLC registers its
     *        counters into; nullptr makes the LLC own a private one
     *        (standalone/unit-test construction)
     * @param stat_group dotted group path for this LLC's counters
     */
    LastLevelCache(MainMemory &memory, StatRegistry *stat_registry,
                   std::string stat_group)
        : mem(memory),
          ownedStats(stat_registry ? nullptr
                                   : std::make_unique<StatRegistry>()),
          statsReg(stat_registry ? stat_registry : ownedStats.get()),
          statPath(std::move(stat_group))
    {
    }

    virtual ~LastLevelCache() = default;

    LastLevelCache(const LastLevelCache &) = delete;
    LastLevelCache &operator=(const LastLevelCache &) = delete;

    /**
     * Demand fetch of the block at @p addr (an L2 miss). Always
     * produces 64 bytes in @p data, going to memory on a miss.
     */
    virtual FetchResult fetch(Addr addr, u8 *data) = 0;

    /** Dirty writeback of @p data for block @p addr from a private L2. */
    virtual void writeback(Addr addr, const u8 *data) = 0;

    /** @return whether @p addr currently has a tag in the LLC. */
    virtual bool contains(Addr addr) const = 0;

    /** Visit every resident logical block (one visit per tag). */
    virtual void
    forEachBlock(const std::function<void(const LlcBlockInfo &)> &visit)
        const = 0;

    /** Write all dirty blocks to memory and invalidate everything. */
    virtual void flush() = 0;

    /** Organization name for reports. */
    virtual const char *name() const = 0;

    /** Register the hierarchy's inclusive back-invalidation hook. */
    virtual void
    setBackInvalidate(BackInvalidateFn fn)
    {
        backInvalidate = std::move(fn);
    }

    /**
     * Attach a fault injector: the LLC will consult it once per
     * operation and apply any bit flips it decides on to its own
     * arrays (approximate structures only; see DESIGN.md fault model).
     * nullptr (the default) disables injection. Not owned.
     */
    virtual void setFaultInjector(FaultInjector *fi) { faults = fi; }

    /**
     * Attach a QoR guardrail: the LLC reports substitution-error
     * events to it and honors degraded() for approximate fills.
     * nullptr (the default) disables the guardrail. Not owned.
     */
    virtual void setGuardrail(QorGuardrail *g) { guardrail = g; }

    /**
     * Attach a per-phase timing sink (see HotPathProfile). Default:
     * ignored — organizations without phase instrumentation simply
     * leave the profile untouched. nullptr detaches. Not owned.
     */
    virtual void setHotPathProfile(HotPathProfile *) {}

    /**
     * Accumulated statistics, as the LlcStats compatibility view of
     * this organization's registry counters. The reference stays
     * valid for the cache's lifetime and is refreshed on every call.
     */
    virtual const LlcStats &
    stats() const
    {
        if (ctr)
            statsView = ctr->view();
        return statsView;
    }

    /** Zero the statistics (cache contents untouched). */
    virtual void
    resetStats()
    {
        if (ctr)
            ctr->reset();
    }

    /** Registry this LLC's counters are registered in (the per-run
     * registry, or the private one of standalone construction). */
    StatRegistry &statRegistry() const { return *statsReg; }

    /** Dotted group path this LLC's counters live under. */
    const std::string &statGroupPath() const { return statPath; }

  protected:
    /**
     * Run the inclusive back-invalidation hook for @p addr.
     * @return true iff a private copy was dirty; @p data then holds it.
     */
    bool
    invalidateUpward(Addr addr, u8 *data)
    {
        ++ctr->backInvalidations;
        return backInvalidate ? backInvalidate(addr, data) : false;
    }

    /**
     * Create this organization's LlcCounters under the stat group.
     * Concrete organizations that count events call this exactly once
     * in their constructor; pure containers (split, dedup) skip it
     * and override stats()/resetStats() instead.
     */
    void
    initLlcCounters()
    {
        ctr = std::make_unique<LlcCounters>(statsReg->group(statPath));
    }

    /** Group handle under this LLC's stat path. */
    StatGroup statGroup() const { return statsReg->group(statPath); }

    MainMemory &mem;
    std::unique_ptr<LlcCounters> ctr; ///< set by initLlcCounters()
    FaultInjector *faults = nullptr;
    QorGuardrail *guardrail = nullptr;
    mutable LlcStats statsView; ///< storage behind stats()

  private:
    std::unique_ptr<StatRegistry> ownedStats;
    StatRegistry *statsReg;
    std::string statPath;
    BackInvalidateFn backInvalidate;
};

/**
 * Conventional set-associative writeback LLC: the paper's 2 MB, 16-way,
 * 6-cycle baseline (Table 1). Also instantiated at 1 MB as the precise
 * half of the split Doppelgänger organization.
 */
class ConventionalLlc : public LastLevelCache
{
  public:
    /**
     * @param memory backing store
     * @param size_bytes total data capacity
     * @param num_ways associativity
     * @param latency total hit latency in cycles
     * @param registry annotation registry (for snapshot labeling only);
     *                 may be nullptr
     * @param policy replacement policy
     * @param stat_registry per-run stat registry (nullptr: private)
     * @param stat_group group path for this cache's counters
     */
    ConventionalLlc(MainMemory &memory, u64 size_bytes, u32 num_ways,
                    Tick latency, const ApproxRegistry *registry,
                    ReplPolicy policy = ReplPolicy::LRU,
                    StatRegistry *stat_registry = nullptr,
                    const std::string &stat_group = "llc");

    FetchResult fetch(Addr addr, u8 *data) override;
    void writeback(Addr addr, const u8 *data) override;
    bool contains(Addr addr) const override;
    void forEachBlock(
        const std::function<void(const LlcBlockInfo &)> &visit)
        const override;
    void flush() override;
    const char *name() const override { return "conventional"; }

    void setHotPathProfile(HotPathProfile *p) override { prof = p; }

    /** Number of block entries. */
    u64 entries() const { return static_cast<u64>(array.sets()) *
        array.ways(); }

  private:
    /** Client flag bit of the directory's per-way flag byte. */
    static constexpr u8 LineDirty = 2;

    /** Evict the line at (set, way), honoring inclusion and dirtiness. */
    void evictLine(u32 set, u32 way);

    /**
     * Per-operation fault hook: with an injector attached, possibly
     * flip one data bit of a resident approximate block (conventional
     * tag metadata is assumed ECC-protected, so only data-array faults
     * apply here). Reports the introduced error to the guardrail.
     */
    void maybeInjectFault();

    /**
     * SoA tag directory plus a separate block arena: probes — the
     * dominant cost of the split organization's precise-half checks on
     * every approximate access — scan a contiguous key run instead of
     * striding over 80-byte line structs.
     */
    SetAssocDir array;
    std::vector<BlockData> blocks;
    AddrSlicer slicer;
    Tick hitLatency;
    const ApproxRegistry *registry;
    HotPathProfile *prof = nullptr;
};

} // namespace dopp

#endif // DOPP_SIM_LLC_HH
