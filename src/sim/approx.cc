#include "approx.hh"

#include <cmath>

#include "util/logging.hh"

namespace dopp
{

const char *
elemTypeName(ElemType type)
{
    switch (type) {
      case ElemType::U8: return "u8";
      case ElemType::I16: return "i16";
      case ElemType::I32: return "i32";
      case ElemType::F32: return "f32";
      case ElemType::F64: return "f64";
    }
    return "?";
}

void
ApproxRegistry::add(const ApproxRegion &region)
{
    if (region.size == 0)
        fatal("approx region '%s' has zero size", region.name.c_str());
    if (region.maxValue < region.minValue) {
        fatal("approx region '%s' has inverted range [%g, %g]",
              region.name.c_str(), region.minValue, region.maxValue);
    }
    for (const auto &other : sorted) {
        const bool disjoint = region.base + region.size <= other.base ||
            other.base + other.size <= region.base;
        if (!disjoint) {
            fatal("approx regions '%s' and '%s' overlap",
                  region.name.c_str(), other.name.c_str());
        }
    }
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), region,
        [](const ApproxRegion &a, const ApproxRegion &b) {
            return a.base < b.base;
        });
    sorted.insert(it, region);
    ++gen;
}

void
ApproxRegistry::clear()
{
    sorted.clear();
    ++gen;
}

const ApproxRegion *
ApproxRegistry::find(Addr a) const
{
    // First region with base > a, then step back one.
    auto it = std::upper_bound(
        sorted.begin(), sorted.end(), a,
        [](Addr addr, const ApproxRegion &r) { return addr < r.base; });
    if (it == sorted.begin())
        return nullptr;
    --it;
    return it->contains(a) ? &*it : nullptr;
}

double
blockElement(const u8 *block, ElemType type, unsigned idx)
{
    DOPP_ASSERT(idx < elemsPerBlock(type));
    const u8 *p = block + static_cast<size_t>(idx) * elemSize(type);
    switch (type) {
      case ElemType::U8:
        return static_cast<double>(*p);
      case ElemType::I16: {
        i16 v;
        std::memcpy(&v, p, sizeof(v));
        return static_cast<double>(v);
      }
      case ElemType::I32: {
        i32 v;
        std::memcpy(&v, p, sizeof(v));
        return static_cast<double>(v);
      }
      case ElemType::F32: {
        float v;
        std::memcpy(&v, p, sizeof(v));
        return static_cast<double>(v);
      }
      case ElemType::F64: {
        double v;
        std::memcpy(&v, p, sizeof(v));
        return v;
      }
    }
    return 0.0;
}

void
setBlockElement(u8 *block, ElemType type, unsigned idx, double value)
{
    DOPP_ASSERT(idx < elemsPerBlock(type));
    u8 *p = block + static_cast<size_t>(idx) * elemSize(type);
    switch (type) {
      case ElemType::U8: {
        double v = std::clamp(value, 0.0, 255.0);
        u8 b = static_cast<u8>(std::lround(v));
        *p = b;
        return;
      }
      case ElemType::I16: {
        double v = std::clamp(value, -32768.0, 32767.0);
        i16 b = static_cast<i16>(std::lround(v));
        std::memcpy(p, &b, sizeof(b));
        return;
      }
      case ElemType::I32: {
        double v = std::clamp(value, -2147483648.0, 2147483647.0);
        i32 b = static_cast<i32>(std::llround(v));
        std::memcpy(p, &b, sizeof(b));
        return;
      }
      case ElemType::F32: {
        float b = static_cast<float>(value);
        std::memcpy(p, &b, sizeof(b));
        return;
      }
      case ElemType::F64: {
        std::memcpy(p, &value, sizeof(value));
        return;
      }
    }
}

} // namespace dopp
