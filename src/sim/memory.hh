/**
 * @file
 * Sparse functional backing store standing in for off-chip DRAM.
 *
 * Blocks are materialized on first touch (zero-filled, as an OS would
 * hand out zeroed pages). Demand reads and writebacks are counted so the
 * harness can report off-chip traffic (paper Fig 12); poke/peek provide
 * traffic-free functional access for workload input setup and output
 * collection (the paper's inputs arrive via I/O, not the LLC).
 */

#ifndef DOPP_SIM_MEMORY_HH
#define DOPP_SIM_MEMORY_HH

#include <array>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "util/stats.hh"
#include "util/types.hh"

namespace dopp
{

/** One cache block worth of raw bytes. */
using BlockData = std::array<u8, blockBytes>;

/** Main-memory model: functional store plus traffic counters. */
class MainMemory
{
  public:
    /** Fixed access latency in cycles (Table 1: 160 cycles). */
    explicit MainMemory(Tick latency = 160) : latencyCycles(latency) {}

    /** Demand-read block at @p addr into @p data; counts traffic. */
    void
    readBlock(Addr addr, u8 *data)
    {
        ++demandReads;
        BlockData &b = blockAt(blockAlign(addr));
        if (faultHook)
            faultHook(blockAlign(addr), b.data());
        std::memcpy(data, b.data(), blockBytes);
    }

    /** Writeback block at @p addr from @p data; counts traffic. */
    void
    writeBlock(Addr addr, const u8 *data)
    {
        ++writebacks;
        BlockData &b = blockAt(blockAlign(addr));
        std::memcpy(b.data(), data, blockBytes);
    }

    /** Functional write without traffic accounting (input setup). */
    void
    poke(Addr addr, const void *src, u64 len)
    {
        const u8 *p = static_cast<const u8 *>(src);
        Addr a = addr;
        u64 left = len;
        while (left > 0) {
            BlockData &b = blockAt(blockAlign(a));
            const unsigned off = blockOffset(a);
            const u64 chunk = std::min<u64>(left, blockBytes - off);
            std::memcpy(b.data() + off, p, chunk);
            p += chunk;
            a += chunk;
            left -= chunk;
        }
    }

    /** Functional read without traffic accounting (output collection). */
    void
    peek(Addr addr, void *dst, u64 len) const
    {
        u8 *p = static_cast<u8 *>(dst);
        Addr a = addr;
        u64 left = len;
        static const BlockData zeros = {};
        while (left > 0) {
            auto it = store.find(blockAlign(a));
            const BlockData &b = it == store.end() ? zeros : it->second;
            const unsigned off = blockOffset(a);
            const u64 chunk = std::min<u64>(left, blockBytes - off);
            std::memcpy(p, b.data() + off, chunk);
            p += chunk;
            a += chunk;
            left -= chunk;
        }
    }

    /**
     * Optional fault hook, run on every demand read before the data
     * leaves memory. It receives the *stored* block and may corrupt it
     * in place, modeling bit flips that accumulate in approximate DRAM
     * partitions and materialize at the next read. The harness wires
     * this to a FaultInjector, filtered to annotated regions (precise
     * data lives in the reliable partition). Functional peek/poke
     * bypass the hook, so input setup and output collection stay exact.
     */
    std::function<void(Addr, u8 *)> faultHook;

    /** Access latency charged per demand miss that reaches memory. */
    Tick latency() const { return latencyCycles; }

    /** Demand block reads since the last resetStats(). */
    u64 reads() const { return demandReads; }

    /** Block writebacks since the last resetStats(). */
    u64 writes() const { return writebacks; }

    /** Total off-chip block transfers. */
    u64 traffic() const { return demandReads + writebacks; }

    /**
     * Expose the traffic counters under @p group (counter functions
     * over the existing members, so readBlock/writeBlock keep their
     * header-only hot path). The memory must outlive the registry's
     * snapshots.
     */
    void
    registerStats(StatGroup group)
    {
        group.counterFn(
            "reads", [this] { return reads(); },
            "demand block reads from memory");
        group.counterFn(
            "writes", [this] { return writes(); },
            "block writebacks to memory");
        group.counterFn(
            "traffic", [this] { return traffic(); },
            "total off-chip block transfers");
    }

    /** Zero the traffic counters (not the contents). */
    void
    resetStats()
    {
        demandReads = 0;
        writebacks = 0;
    }

  private:
    BlockData &
    blockAt(Addr aligned)
    {
        return store[aligned]; // zero-fills on first touch
    }

    std::unordered_map<Addr, BlockData> store;
    Tick latencyCycles;
    u64 demandReads = 0;
    u64 writebacks = 0;
};

} // namespace dopp

#endif // DOPP_SIM_MEMORY_HH
