/**
 * @file
 * Sparse functional backing store standing in for off-chip memory,
 * optionally partitioned into a tiered precise/approximate/NVM main
 * memory (sim/mem_tier.hh, DESIGN.md §13).
 *
 * Blocks are materialized on first touch (zero-filled, as an OS would
 * hand out zeroed pages). Demand reads and writebacks are counted so the
 * harness can report off-chip traffic (paper Fig 12); poke/peek provide
 * traffic-free functional access for workload input setup and output
 * collection (the paper's inputs arrive via I/O, not the LLC).
 *
 * Tiered mode (constructed from a non-empty MemTierConfig) adds:
 *  - page-granular routing: annotated approximate regions route
 *    round-robin across the non-precise partitions (routeApprox,
 *    called by SimRuntime::annotate); everything else pins to the
 *    precise partition. One functional store backs all partitions, so
 *    migration re-routes pages without copying data.
 *  - per-partition latencies: readBlock/writeBlock return the access
 *    latency of the partition they hit, which the LLC miss paths
 *    charge instead of a flat constant.
 *  - an NVM-style write buffer per partition: a non-full buffer
 *    absorbs a writeback at the cheap buffered latency; reads drain
 *    one entry each; a full buffer makes the blocked access wait one
 *    full writeLatency drain (counted in wbufStalls).
 *  - deterministic per-partition fault injection on demand reads
 *    (bitErrorRate) and on refresh-epoch boundaries (refreshFaultRate
 *    per elapsed epoch), drawn from the run's seeded FaultInjector and
 *    recorded in its trace with field = partition index. Only
 *    header-inline injector methods are used here, so dopp_sim keeps
 *    its no-link-dependency on dopp_fault.
 *  - cross-tier graceful degradation: migrateApproxToPrecise() pins
 *    every approx-routed page to the precise partition (the
 *    QorGuardrail's MIGRATED tier), restoreApproxRoutes() re-applies
 *    the recorded approximate routes when the error estimate recovers.
 */

#ifndef DOPP_SIM_MEMORY_HH
#define DOPP_SIM_MEMORY_HH

#include <array>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fault/fault_injector.hh"
#include "sim/mem_tier.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dopp
{

/** One cache block worth of raw bytes. */
using BlockData = std::array<u8, blockBytes>;

/** Main-memory model: functional store plus traffic counters, with
 * optional partitioned tiering. */
class MainMemory
{
  public:
    /** Legacy flat memory: one implicit precise partition with a
     * fixed access latency (Table 1: 160 cycles). */
    explicit MainMemory(Tick latency = 160)
    {
        MemPartitionProfile flat;
        flat.name = "flat-dram";
        flat.readLatency = latency;
        flat.writeLatency = latency;
        parts.push_back(PartitionState{flat});
    }

    /** Tiered memory per @p tier; an empty tier degenerates to the
     * legacy flat default above. */
    explicit MainMemory(const MemTierConfig &tier)
        : tiered(tier.enabled())
    {
        if (!tiered) {
            MemPartitionProfile flat;
            flat.name = "flat-dram";
            parts.push_back(PartitionState{flat});
            return;
        }
        parts.reserve(tier.partitions.size());
        for (const MemPartitionProfile &p : tier.partitions)
            parts.push_back(PartitionState{p});
        for (u32 i = 0; i < parts.size(); ++i) {
            if (parts[i].prof.kind == MemPartitionKind::PreciseDram) {
                precisePart = i;
                break;
            }
        }
        for (u32 i = 0; i < parts.size(); ++i) {
            if (parts[i].prof.kind != MemPartitionKind::PreciseDram)
                approxParts.push_back(i);
        }
    }

    /** Number of partitions (1 in legacy mode). */
    u32 partitionCount() const
    {
        return static_cast<u32>(parts.size());
    }

    /** Whether a non-empty MemTierConfig configured this memory. */
    bool isTiered() const { return tiered; }

    /** Partition index addr currently routes to. */
    u32
    partitionOf(Addr addr) const
    {
        if (approxParts.empty())
            return precisePart;
        const auto it = pageRoute.find(pageOf(addr));
        return it == pageRoute.end() ? precisePart : it->second;
    }

    const MemPartitionProfile &
    partitionProfile(u32 index) const
    {
        return parts[index].prof;
    }

    /**
     * Route the pages of an annotated approximate region to an
     * approximate partition (regions round-robin across the
     * non-precise partitions in registration order, so the assignment
     * is a pure function of the annotation sequence). No-op when the
     * tier has no approximate partition. Routes apply to future
     * accesses only; the functional store is shared, so no data moves.
     */
    void
    routeApprox(Addr base, u64 size)
    {
        if (approxParts.empty() || size == 0)
            return;
        const u32 part = approxParts[nextApproxRegion++ %
                                     approxParts.size()];
        const Addr firstPage = pageOf(base);
        const Addr lastPage = pageOf(base + size - 1);
        for (Addr p = firstPage; p <= lastPage; ++p)
            pageRoute[p] = part;
        approxSpans.push_back({firstPage, lastPage, part});
        if (migratedNow) // late annotation while migrated: stay precise
            for (Addr p = firstPage; p <= lastPage; ++p)
                pageRoute[p] = precisePart;
    }

    /**
     * Graceful degradation, tier 2: pin every approx-routed page to
     * the precise partition (QorGuardrail MIGRATED state). Idempotent;
     * returns the number of pages whose route changed.
     */
    u64
    migrateApproxToPrecise()
    {
        if (migratedNow)
            return 0;
        migratedNow = true;
        ++migrations_;
        u64 moved = 0;
        for (const RouteSpan &s : approxSpans) {
            for (Addr p = s.firstPage; p <= s.lastPage; ++p) {
                auto it = pageRoute.find(p);
                if (it != pageRoute.end() &&
                    it->second != precisePart) {
                    it->second = precisePart;
                    ++moved;
                }
            }
        }
        pagesMigrated_ += moved;
        return moved;
    }

    /** Undo migrateApproxToPrecise(): re-apply the recorded
     * approximate routes (hysteresis recovery). Idempotent. */
    void
    restoreApproxRoutes()
    {
        if (!migratedNow)
            return;
        migratedNow = false;
        for (const RouteSpan &s : approxSpans)
            for (Addr p = s.firstPage; p <= s.lastPage; ++p)
                pageRoute[p] = s.partition;
    }

    /** Whether approx routes are currently pinned precise. */
    bool migrated() const { return migratedNow; }

    /** Route migrations performed (MIGRATED entries). */
    u64 migrations() const { return migrations_; }

    /** Pages re-pinned to the precise partition across migrations. */
    u64 pagesMigrated() const { return pagesMigrated_; }

    /**
     * Attach the run's seeded fault source for per-partition
     * injection (tiered mode; the legacy flat path keeps using
     * faultHook). Must outlive the memory's accesses.
     */
    void setFaultInjector(FaultInjector *fi) { injector = fi; }

    /**
     * Observer run after every injected flip, with the stored block
     * already corrupted: (aligned block address, stored block, flipped
     * bit, partition index). The harness computes the element error
     * (flipping the bit back to recover the pre-fault value) and
     * feeds the QoR guardrail.
     */
    std::function<void(Addr, u8 *, u32, u32)> onBitFlip;

    /**
     * Demand-read block at @p addr into @p data; counts traffic.
     * @return the read latency of the partition hit, including any
     * stall behind a full write buffer.
     */
    Tick
    readBlock(Addr addr, u8 *data)
    {
        ++demandReads;
        const Addr aligned = blockAlign(addr);
        PartitionState &p = parts[partitionOf(aligned)];
        ++p.reads;
        ++p.accesses;
        StoredBlock &b = blockAt(aligned);

        injectReadFaults(p, aligned, b);
        if (faultHook)
            faultHook(aligned, b.bytes.data());

        Tick lat = p.prof.readLatency;
        if (p.prof.writeBufferDepth > 0 && p.wbufOccupancy > 0) {
            if (p.wbufOccupancy >= p.prof.writeBufferDepth) {
                // Full buffer: the read waits for one drain.
                lat += p.prof.writeLatency;
                ++p.wbufStalls;
            }
            --p.wbufOccupancy; // the read slot drains one entry
        }
        p.readCycles += lat;
        std::memcpy(data, b.bytes.data(), blockBytes);
        return lat;
    }

    /**
     * Writeback block at @p addr from @p data; counts traffic.
     * @return the write latency (buffered or full). Writebacks are
     * posted off the critical path, so the LLC does not charge this
     * to runtime; it is visible in writeCycles and the energy model.
     */
    Tick
    writeBlock(Addr addr, const u8 *data)
    {
        ++writebacks;
        const Addr aligned = blockAlign(addr);
        PartitionState &p = parts[partitionOf(aligned)];
        ++p.writes;
        ++p.accesses;
        StoredBlock &b = blockAt(aligned);
        std::memcpy(b.bytes.data(), data, blockBytes);
        b.epoch = currentEpoch(p); // a write rewrites (refreshes) the cells

        Tick lat;
        if (p.prof.writeBufferDepth > 0) {
            if (p.wbufOccupancy < p.prof.writeBufferDepth) {
                ++p.wbufOccupancy;
                ++p.wbufHits;
                lat = p.prof.bufferedWriteLatency;
            } else {
                ++p.wbufStalls; // full: wait one full drain
                lat = p.prof.writeLatency;
            }
        } else {
            lat = p.prof.writeLatency;
        }
        p.writeCycles += lat;
        return lat;
    }

    /** Functional write without traffic accounting (input setup). */
    void
    poke(Addr addr, const void *src, u64 len)
    {
        const u8 *p = static_cast<const u8 *>(src);
        Addr a = addr;
        u64 left = len;
        while (left > 0) {
            StoredBlock &b = blockAt(blockAlign(a));
            const unsigned off = blockOffset(a);
            const u64 chunk = std::min<u64>(left, blockBytes - off);
            std::memcpy(b.bytes.data() + off, p, chunk);
            p += chunk;
            a += chunk;
            left -= chunk;
        }
    }

    /** Functional read without traffic accounting (output collection). */
    void
    peek(Addr addr, void *dst, u64 len) const
    {
        u8 *p = static_cast<u8 *>(dst);
        Addr a = addr;
        u64 left = len;
        static const BlockData zeros = {};
        while (left > 0) {
            auto it = store.find(blockAlign(a));
            const BlockData &b =
                it == store.end() ? zeros : it->second.bytes;
            const unsigned off = blockOffset(a);
            const u64 chunk = std::min<u64>(left, blockBytes - off);
            std::memcpy(p, b.data() + off, chunk);
            p += chunk;
            a += chunk;
            left -= chunk;
        }
    }

    /**
     * Optional fault hook, run on every demand read before the data
     * leaves memory. It receives the *stored* block and may corrupt it
     * in place, modeling bit flips that accumulate in approximate DRAM
     * partitions and materialize at the next read. The harness wires
     * this to a FaultInjector, filtered to annotated regions (precise
     * data lives in the reliable partition) — the legacy flat-memory
     * fault path; tiered runs use setFaultInjector instead. Functional
     * peek/poke bypass the hook, so input setup and output collection
     * stay exact.
     */
    std::function<void(Addr, u8 *)> faultHook;

    /** Read latency of the precise (default-route) partition — the
     * legacy flat-latency view. */
    Tick latency() const
    {
        return parts[precisePart].prof.readLatency;
    }

    /** Demand block reads since the last resetStats(). */
    u64 reads() const { return demandReads; }

    /** Block writebacks since the last resetStats(). */
    u64 writes() const { return writebacks; }

    /** Total off-chip block transfers. */
    u64 traffic() const { return demandReads + writebacks; }

    /** Per-partition counters (index < partitionCount()). */
    struct PartitionCounters
    {
        u64 reads = 0;          ///< demand block reads
        u64 writes = 0;         ///< block writebacks
        u64 readCycles = 0;     ///< latency charged to reads
        u64 writeCycles = 0;    ///< latency charged to writes
        u64 bitFlips = 0;       ///< raw read-disturb flips injected
        u64 refreshFaults = 0;  ///< retention flips at epoch boundaries
        u64 wbufHits = 0;       ///< writes absorbed by the buffer
        u64 wbufStalls = 0;     ///< accesses stalled on a full buffer
    };

    PartitionCounters
    partitionCounters(u32 index) const
    {
        const PartitionState &p = parts[index];
        PartitionCounters c;
        c.reads = p.reads;
        c.writes = p.writes;
        c.readCycles = p.readCycles;
        c.writeCycles = p.writeCycles;
        c.bitFlips = p.bitFlips;
        c.refreshFaults = p.refreshFaults;
        c.wbufHits = p.wbufHits;
        c.wbufStalls = p.wbufStalls;
        return c;
    }

    /**
     * Expose the traffic counters under @p group (counter functions
     * over the existing members, so readBlock/writeBlock keep their
     * header-only hot path). Tiered memories additionally register
     * one subgroup per partition ("partition0", "partition1", ...)
     * plus the migration counters; the legacy flat layout is
     * unchanged, so pre-tier snapshots stay bit-identical. The memory
     * must outlive the registry's snapshots.
     */
    void
    registerStats(StatGroup group)
    {
        group.counterFn(
            "reads", [this] { return reads(); },
            "demand block reads from memory");
        group.counterFn(
            "writes", [this] { return writes(); },
            "block writebacks to memory");
        group.counterFn(
            "traffic", [this] { return traffic(); },
            "total off-chip block transfers");
        if (!tiered)
            return;
        group.counterFn(
            "migrations", [this] { return migrations_; },
            "approx-to-precise route migrations");
        group.counterFn(
            "pagesMigrated", [this] { return pagesMigrated_; },
            "pages re-pinned to the precise partition");
        group.counterFn(
            "migratedNow", [this] { return migratedNow ? 1 : 0; },
            "whether approx routes are currently pinned precise");
        for (u32 i = 0; i < parts.size(); ++i) {
            StatGroup pg =
                group.group("partition" + std::to_string(i));
            const std::string what =
                parts[i].prof.name + " (" +
                memPartitionKindName(parts[i].prof.kind) + ")";
            pg.counterFn(
                "reads", [this, i] { return parts[i].reads; },
                "demand block reads: " + what);
            pg.counterFn(
                "writes", [this, i] { return parts[i].writes; },
                "block writebacks: " + what);
            pg.counterFn(
                "readCycles",
                [this, i] { return parts[i].readCycles; },
                "latency charged to reads: " + what);
            pg.counterFn(
                "writeCycles",
                [this, i] { return parts[i].writeCycles; },
                "latency charged to writes: " + what);
            pg.counterFn(
                "bitFlips", [this, i] { return parts[i].bitFlips; },
                "read-disturb bit flips injected: " + what);
            pg.counterFn(
                "refreshFaults",
                [this, i] { return parts[i].refreshFaults; },
                "retention flips at refresh epochs: " + what);
            pg.counterFn(
                "wbufHits", [this, i] { return parts[i].wbufHits; },
                "writes absorbed by the write buffer: " + what);
            pg.counterFn(
                "wbufStalls",
                [this, i] { return parts[i].wbufStalls; },
                "accesses stalled on a full write buffer: " + what);
        }
    }

    /** Zero the traffic counters (not the contents or routes). */
    void
    resetStats()
    {
        demandReads = 0;
        writebacks = 0;
        for (PartitionState &p : parts) {
            const MemPartitionProfile prof = p.prof;
            p = PartitionState{prof};
        }
    }

  private:
    /** Stored block plus the refresh epoch it was last rewritten or
     * read (fault accumulation restarts from there). */
    struct StoredBlock
    {
        BlockData bytes = {};
        u64 epoch = 0;
    };

    struct PartitionState
    {
        MemPartitionProfile prof;
        u64 reads = 0;
        u64 writes = 0;
        u64 readCycles = 0;
        u64 writeCycles = 0;
        u64 bitFlips = 0;
        u64 refreshFaults = 0;
        u64 wbufHits = 0;
        u64 wbufStalls = 0;
        u64 accesses = 0;      ///< drives the refresh-epoch clock
        u32 wbufOccupancy = 0; ///< buffered writes outstanding
    };

    /** Page number of @p addr (4 KiB pages, matching the runtime's
     * page-aligned allocator). */
    static Addr pageOf(Addr addr) { return addr >> 12; }

    static u64
    currentEpoch(const PartitionState &p)
    {
        return p.prof.refreshIntervalAccesses
            ? p.accesses / p.prof.refreshIntervalAccesses
            : 0;
    }

    /**
     * Deterministic fault injection for one demand read: first the
     * retention draws (one per refresh epoch elapsed since the block
     * was last read or written, capped for boundedness), then one
     * read-disturb draw. Draw order is fixed so equal configs replay
     * the exact same fault trace (DESIGN.md §8).
     */
    void
    injectReadFaults(PartitionState &p, Addr aligned, StoredBlock &b)
    {
        if (!injector)
            return;
        const u32 partIdx = static_cast<u32>(&p - parts.data());
        if (p.prof.refreshFaultRate > 0.0 &&
            p.prof.refreshIntervalAccesses > 0) {
            const u64 epoch = currentEpoch(p);
            u64 elapsed = epoch > b.epoch ? epoch - b.epoch : 0;
            // One draw per missed refresh; cap so a long-idle block
            // costs bounded PRNG work (the tail rates are tiny).
            elapsed = std::min<u64>(elapsed, 16);
            for (u64 e = 0; e < elapsed; ++e) {
                if (injector->drawRate(p.prof.refreshFaultRate)) {
                    flipOne(aligned, b, partIdx);
                    ++p.refreshFaults;
                }
            }
            b.epoch = epoch; // the read scrubs accumulated epochs
        }
        if (p.prof.bitErrorRate > 0.0 &&
            injector->drawRate(p.prof.bitErrorRate)) {
            flipOne(aligned, b, partIdx);
            ++p.bitFlips;
        }
    }

    /** Flip one uniformly-picked bit of @p b, record it in the fault
     * trace (field = partition index), and notify the observer. */
    void
    flipOne(Addr aligned, StoredBlock &b, u32 part_idx)
    {
        const u32 bit =
            static_cast<u32>(injector->pick(blockBytes * 8));
        b.bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        injector->record(FaultDomain::MemoryData, aligned, part_idx,
                         bit);
        if (onBitFlip)
            onBitFlip(aligned, b.bytes.data(), bit, part_idx);
    }

    StoredBlock &
    blockAt(Addr aligned)
    {
        return store[aligned]; // zero-fills on first touch
    }

    struct RouteSpan
    {
        Addr firstPage;
        Addr lastPage;
        u32 partition;
    };

    std::unordered_map<Addr, StoredBlock> store;
    std::vector<PartitionState> parts;
    std::unordered_map<Addr, u32> pageRoute;
    std::vector<RouteSpan> approxSpans;
    std::vector<u32> approxParts;
    u32 precisePart = 0;
    u64 nextApproxRegion = 0;
    bool tiered = false;
    bool migratedNow = false;
    u64 migrations_ = 0;
    u64 pagesMigrated_ = 0;
    u64 demandReads = 0;
    u64 writebacks = 0;
    FaultInjector *injector = nullptr;
};

} // namespace dopp

#endif // DOPP_SIM_MEMORY_HH
