#include "llc.hh"

#include <cstring>

#include "util/logging.hh"

namespace dopp
{

ConventionalLlc::ConventionalLlc(MainMemory &memory, u64 size_bytes,
                                 u32 num_ways, Tick latency,
                                 const ApproxRegistry *registry,
                                 ReplPolicy policy)
    : LastLevelCache(memory),
      array(static_cast<u32>(size_bytes / blockBytes / num_ways),
            num_ways, policy),
      slicer(static_cast<u32>(size_bytes / blockBytes / num_ways)),
      hitLatency(latency),
      registry(registry)
{
    if (size_bytes % (static_cast<u64>(num_ways) * blockBytes) != 0)
        fatal("LLC size %llu not divisible by ways*blockBytes",
              static_cast<unsigned long long>(size_bytes));
}

void
ConventionalLlc::evictLine(u32 set, u32 way)
{
    Line &line = array.at(set, way);
    if (!line.valid)
        return;

    const Addr addr = slicer.addr(set, line.tag);
    ++llcStats.evictions;

    // Inclusive LLC: invalidate private copies; a dirty private copy
    // supersedes our data for the writeback.
    BlockData upward;
    const bool upwardDirty = invalidateUpward(addr, upward.data());
    if (upwardDirty) {
        mem.writeBlock(addr, upward.data());
        ++llcStats.dirtyWritebacks;
    } else if (line.dirty) {
        ++llcStats.dataArray.reads;
        mem.writeBlock(addr, line.data.data());
        ++llcStats.dirtyWritebacks;
    }
    line.valid = false;
}

LastLevelCache::FetchResult
ConventionalLlc::fetch(Addr addr, u8 *data)
{
    ++llcStats.fetches;
    ++llcStats.tagArray.reads;

    const u32 set = slicer.set(addr);
    const u64 tag = slicer.tag(addr);

    const int way = array.findWay(set, tag);
    if (way >= 0) {
        ++llcStats.fetchHits;
        ++llcStats.dataArray.reads;
        array.touch(set, static_cast<u32>(way));
        std::memcpy(data, array.at(set, static_cast<u32>(way)).data.data(),
                    blockBytes);
        return {true, hitLatency};
    }

    // Miss: fetch from memory and insert.
    ++llcStats.fetchMisses;
    const u32 victim = array.victimWay(set);
    evictLine(set, victim);

    Line &line = array.at(set, victim);
    mem.readBlock(addr, line.data.data());
    line.valid = true;
    line.tag = tag;
    line.dirty = false;
    array.touchInsert(set, victim);
    ++llcStats.tagArray.writes;
    ++llcStats.dataArray.writes;

    std::memcpy(data, line.data.data(), blockBytes);
    return {false, hitLatency + mem.latency()};
}

void
ConventionalLlc::writeback(Addr addr, const u8 *data)
{
    ++llcStats.writebacksIn;
    ++llcStats.tagArray.reads;

    const u32 set = slicer.set(addr);
    const u64 tag = slicer.tag(addr);

    const int way = array.findWay(set, tag);
    if (way >= 0) {
        Line &line = array.at(set, static_cast<u32>(way));
        std::memcpy(line.data.data(), data, blockBytes);
        line.dirty = true;
        array.touch(set, static_cast<u32>(way));
        ++llcStats.dataArray.writes;
        return;
    }

    // No tag (should not happen with strict inclusion); send straight
    // to memory rather than disturbing the set.
    mem.writeBlock(addr, data);
    ++llcStats.dirtyWritebacks;
}

bool
ConventionalLlc::contains(Addr addr) const
{
    return array.findWay(slicer.set(addr), slicer.tag(addr)) >= 0;
}

void
ConventionalLlc::forEachBlock(
    const std::function<void(const LlcBlockInfo &)> &visit) const
{
    for (u32 s = 0; s < array.sets(); ++s) {
        for (u32 w = 0; w < array.ways(); ++w) {
            const Line &line = array.at(s, w);
            if (!line.valid)
                continue;
            LlcBlockInfo info;
            info.addr = slicer.addr(s, line.tag);
            info.data = line.data.data();
            info.dirty = line.dirty;
            const ApproxRegion *region =
                registry ? registry->find(info.addr) : nullptr;
            info.approx = region != nullptr;
            info.type = region ? region->type : ElemType::F32;
            visit(info);
        }
    }
}

void
ConventionalLlc::flush()
{
    for (u32 s = 0; s < array.sets(); ++s)
        for (u32 w = 0; w < array.ways(); ++w)
            evictLine(s, w);
    array.invalidateAll();
}

} // namespace dopp
