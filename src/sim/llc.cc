#include "llc.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace dopp
{

u64
hotpathNowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace
{

#define DOPP_STAT_FIELD(member)                                         \
    LlcStatField{#member,                                               \
                 [](const LlcStats &s) -> u64 { return s.member; },     \
                 [](LlcStats &s) -> u64 & { return s.member; }}

constexpr std::array statFieldTable = {
    DOPP_STAT_FIELD(fetches),
    DOPP_STAT_FIELD(fetchHits),
    DOPP_STAT_FIELD(fetchMisses),
    DOPP_STAT_FIELD(writebacksIn),
    DOPP_STAT_FIELD(evictions),
    DOPP_STAT_FIELD(dataEvictions),
    DOPP_STAT_FIELD(dirtyWritebacks),
    DOPP_STAT_FIELD(backInvalidations),
    DOPP_STAT_FIELD(tagArray.reads),
    DOPP_STAT_FIELD(tagArray.writes),
    DOPP_STAT_FIELD(mtagArray.reads),
    DOPP_STAT_FIELD(mtagArray.writes),
    DOPP_STAT_FIELD(dataArray.reads),
    DOPP_STAT_FIELD(dataArray.writes),
    DOPP_STAT_FIELD(mapGens),
    DOPP_STAT_FIELD(linkedTagsSum),
    DOPP_STAT_FIELD(linkedTagsSamples),
    DOPP_STAT_FIELD(faultsInjected),
    DOPP_STAT_FIELD(faultsDetected),
    DOPP_STAT_FIELD(faultsRepaired),
    DOPP_STAT_FIELD(repairTagsDropped),
    DOPP_STAT_FIELD(repairEntriesDropped),
    DOPP_STAT_FIELD(degradedFills),
};

#undef DOPP_STAT_FIELD

// Every counter is a u64 and every counter must be in the table: a new
// LlcStats field that is not added above changes sizeof(LlcStats) and
// trips this assert, instead of silently vanishing from aggregated
// split-LLC statistics.
static_assert(sizeof(LlcStats) == statFieldTable.size() * sizeof(u64),
              "LlcStats and llcStatFields() are out of sync — add the "
              "new counter to statFieldTable in llc.cc");

} // namespace

const std::vector<LlcStatField> &
llcStatFields()
{
    static const std::vector<LlcStatField> fields(statFieldTable.begin(),
                                                  statFieldTable.end());
    return fields;
}

ArrayCounterRefs::ArrayCounterRefs(StatGroup g)
    : reads(g.counter("reads")), writes(g.counter("writes"))
{
}

LlcCounters::LlcCounters(StatGroup g)
    : fetches(g.counter("fetches",
                        "demand fetches from private L2 misses")),
      fetchHits(g.counter("fetchHits", "fetches that hit a tag entry")),
      fetchMisses(g.counter("fetchMisses",
                            "fetches that went to memory")),
      writebacksIn(g.counter("writebacksIn",
                             "dirty writebacks arriving from L2s")),
      evictions(g.counter("evictions", "tag entries evicted")),
      dataEvictions(g.counter("dataEvictions",
                              "data entries evicted (decoupled LLCs)")),
      dirtyWritebacks(g.counter("dirtyWritebacks",
                                "blocks written back to memory")),
      backInvalidations(g.counter(
          "backInvalidations", "inclusive invalidations sent upward")),
      tagArray(g.group("tagArray")),
      mtagArray(g.group("mtagArray")),
      dataArray(g.group("dataArray")),
      mapGens(g.counter("mapGens",
                        "map generations (168 pJ each, Sec 5.6)")),
      linkedTagsSum(g.counter("linkedTagsSum",
                              "sum of tags linked at data-evict time")),
      linkedTagsSamples(g.counter("linkedTagsSamples",
                                  "data evictions sampled for "
                                  "linked-tag stats")),
      faultsInjected(g.counter("faultsInjected",
                               "bit flips applied to this LLC")),
      faultsDetected(g.counter("faultsDetected",
                               "metadata corruptions self-check "
                               "caught")),
      faultsRepaired(g.counter("faultsRepaired",
                               "repair passes that restored "
                               "invariants")),
      repairTagsDropped(g.counter("repairTagsDropped",
                                  "tags invalidated to restore "
                                  "invariants")),
      repairEntriesDropped(g.counter("repairEntriesDropped",
                                     "data entries orphaned and "
                                     "invalidated")),
      degradedFills(g.counter("degradedFills",
                              "approx fills routed precise by the "
                              "guardrail"))
{
}

LlcStats
LlcCounters::view() const
{
    LlcStats s;
    s.fetches = fetches.value();
    s.fetchHits = fetchHits.value();
    s.fetchMisses = fetchMisses.value();
    s.writebacksIn = writebacksIn.value();
    s.evictions = evictions.value();
    s.dataEvictions = dataEvictions.value();
    s.dirtyWritebacks = dirtyWritebacks.value();
    s.backInvalidations = backInvalidations.value();
    s.tagArray.reads = tagArray.reads.value();
    s.tagArray.writes = tagArray.writes.value();
    s.mtagArray.reads = mtagArray.reads.value();
    s.mtagArray.writes = mtagArray.writes.value();
    s.dataArray.reads = dataArray.reads.value();
    s.dataArray.writes = dataArray.writes.value();
    s.mapGens = mapGens.value();
    s.linkedTagsSum = linkedTagsSum.value();
    s.linkedTagsSamples = linkedTagsSamples.value();
    s.faultsInjected = faultsInjected.value();
    s.faultsDetected = faultsDetected.value();
    s.faultsRepaired = faultsRepaired.value();
    s.repairTagsDropped = repairTagsDropped.value();
    s.repairEntriesDropped = repairEntriesDropped.value();
    s.degradedFills = degradedFills.value();
    return s;
}

void
LlcCounters::reset()
{
    fetches.reset();
    fetchHits.reset();
    fetchMisses.reset();
    writebacksIn.reset();
    evictions.reset();
    dataEvictions.reset();
    dirtyWritebacks.reset();
    backInvalidations.reset();
    tagArray.reads.reset();
    tagArray.writes.reset();
    mtagArray.reads.reset();
    mtagArray.writes.reset();
    dataArray.reads.reset();
    dataArray.writes.reset();
    mapGens.reset();
    linkedTagsSum.reset();
    linkedTagsSamples.reset();
    faultsInjected.reset();
    faultsDetected.reset();
    faultsRepaired.reset();
    repairTagsDropped.reset();
    repairEntriesDropped.reset();
    degradedFills.reset();
}

void
registerLlcStatsView(StatGroup group, std::function<LlcStats()> view)
{
    for (const LlcStatField &f : llcStatFields()) {
        group.counterFn(f.name,
                        [view, get = f.get] { return get(view()); });
    }
    registerLlcFormulas(group, std::move(view));
}

void
registerLlcFormulas(StatGroup group, std::function<LlcStats()> view)
{
    group.formula("missRate", [view] { return view().missRate(); },
                  "fetchMisses / fetches");
    group.formula("avgLinkedTags",
                  [view] { return view().avgLinkedTags(); },
                  "mean tags linked per evicted data entry");
}

ConventionalLlc::ConventionalLlc(MainMemory &memory, u64 size_bytes,
                                 u32 num_ways, Tick latency,
                                 const ApproxRegistry *registry,
                                 ReplPolicy policy,
                                 StatRegistry *stat_registry,
                                 const std::string &stat_group)
    : LastLevelCache(memory, stat_registry, stat_group),
      array(static_cast<u32>(size_bytes / blockBytes / num_ways),
            num_ways, policy),
      slicer(static_cast<u32>(size_bytes / blockBytes / num_ways)),
      hitLatency(latency),
      registry(registry)
{
    if (size_bytes % (static_cast<u64>(num_ways) * blockBytes) != 0)
        fatal("LLC size %llu not divisible by ways*blockBytes",
              static_cast<unsigned long long>(size_bytes));
    blocks.resize(static_cast<size_t>(array.sets()) * array.ways());
    initLlcCounters();
}

void
ConventionalLlc::evictLine(u32 set, u32 way)
{
    const i32 idx = array.index(set, way);
    if (!array.valid(idx))
        return;

    const Addr addr = slicer.addr(set, array.key(idx));
    ++ctr->evictions;

    // Inclusive LLC: invalidate private copies; a dirty private copy
    // supersedes our data for the writeback.
    BlockData upward;
    const bool upwardDirty = invalidateUpward(addr, upward.data());
    if (upwardDirty) {
        mem.writeBlock(addr, upward.data());
        ++ctr->dirtyWritebacks;
    } else if (array.flag(idx, LineDirty)) {
        ++ctr->dataArray.reads;
        mem.writeBlock(addr,
                       blocks[static_cast<size_t>(idx)].data());
        ++ctr->dirtyWritebacks;
    }
    array.setValid(idx, false);
}

void
ConventionalLlc::maybeInjectFault()
{
    if (!faults)
        return;
    faults->step();
    if (!faults->draw(FaultDomain::LlcData))
        return;

    // Pick a slot uniformly; an invalid or precise pick means the
    // flip landed in an unused/reliable cell and is a no-op. Precise
    // blocks are exempt: only approximate data is stored in the
    // fault-prone (voltage-scaled) portion of the array.
    const u64 total =
        static_cast<u64>(array.sets()) * array.ways();
    const u64 slot = faults->pick(total);
    const u32 bit = static_cast<u32>(faults->pick(blockBytes * 8));
    const i32 idx = static_cast<i32>(slot);
    if (!array.valid(idx))
        return;
    const Addr addr = slicer.addr(static_cast<u32>(slot) / array.ways(),
                                  array.key(idx));
    const ApproxRegion *region = registry ? registry->find(addr) : nullptr;
    if (!region)
        return;

    BlockData &block = blocks[static_cast<size_t>(idx)];
    const unsigned elem = bit / elemBits(region->type);
    const double before =
        blockElement(block.data(), region->type, elem);
    block[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    const double after =
        blockElement(block.data(), region->type, elem);

    faults->record(FaultDomain::LlcData, slot, 0, bit);
    ++ctr->faultsInjected;
    if (guardrail) {
        // The flipped element's own capped error (not the block mean):
        // its consumer sees the full deviation.
        const double err = std::min(
            1.0, std::abs(after - before) / region->span());
        guardrail->observeError(err);
    }
}

LastLevelCache::FetchResult
ConventionalLlc::fetch(Addr addr, u8 *data)
{
    maybeInjectFault();
    ++ctr->fetches;
    ++ctr->tagArray.reads;

    const u32 set = slicer.set(addr);
    const u64 tag = slicer.tag(addr);

    const u64 t0 = prof ? hotpathNowNs() : 0;
    const int way = array.findWay(set, tag);
    if (prof)
        prof->tagProbeNs += hotpathNowNs() - t0;
    if (way >= 0) {
        const i32 idx = array.index(set, static_cast<u32>(way));
        ++ctr->fetchHits;
        ++ctr->dataArray.reads;
        array.touch(set, static_cast<u32>(way));
        const u64 d0 = prof ? hotpathNowNs() : 0;
        std::memcpy(data, blocks[static_cast<size_t>(idx)].data(),
                    blockBytes);
        if (prof)
            prof->dataArrayNs += hotpathNowNs() - d0;
        return {true, hitLatency};
    }

    // Miss: fetch from memory and insert.
    ++ctr->fetchMisses;
    const u32 victim = array.victimWay(set);
    evictLine(set, victim);

    const i32 idx = array.index(set, victim);
    BlockData &block = blocks[static_cast<size_t>(idx)];
    const Tick memLat = mem.readBlock(addr, block.data());
    array.setValid(idx, true);
    array.setKey(idx, tag);
    array.setFlag(idx, LineDirty, false);
    array.touchInsert(set, victim);
    ++ctr->tagArray.writes;
    ++ctr->dataArray.writes;

    const u64 d0 = prof ? hotpathNowNs() : 0;
    std::memcpy(data, block.data(), blockBytes);
    if (prof)
        prof->dataArrayNs += hotpathNowNs() - d0;
    return {false, hitLatency + memLat};
}

void
ConventionalLlc::writeback(Addr addr, const u8 *data)
{
    maybeInjectFault();
    ++ctr->writebacksIn;
    ++ctr->tagArray.reads;

    const u32 set = slicer.set(addr);
    const u64 tag = slicer.tag(addr);

    const u64 t0 = prof ? hotpathNowNs() : 0;
    const int way = array.findWay(set, tag);
    if (prof)
        prof->tagProbeNs += hotpathNowNs() - t0;
    if (way >= 0) {
        const i32 idx = array.index(set, static_cast<u32>(way));
        const u64 d0 = prof ? hotpathNowNs() : 0;
        std::memcpy(blocks[static_cast<size_t>(idx)].data(), data,
                    blockBytes);
        if (prof)
            prof->dataArrayNs += hotpathNowNs() - d0;
        array.setFlag(idx, LineDirty, true);
        array.touch(set, static_cast<u32>(way));
        ++ctr->dataArray.writes;
        return;
    }

    // No tag (should not happen with strict inclusion); send straight
    // to memory rather than disturbing the set.
    mem.writeBlock(addr, data);
    ++ctr->dirtyWritebacks;
}

bool
ConventionalLlc::contains(Addr addr) const
{
    return array.findWay(slicer.set(addr), slicer.tag(addr)) >= 0;
}

void
ConventionalLlc::forEachBlock(
    const std::function<void(const LlcBlockInfo &)> &visit) const
{
    for (u32 s = 0; s < array.sets(); ++s) {
        for (u32 w = 0; w < array.ways(); ++w) {
            const i32 idx =
                static_cast<i32>(s * array.ways() + w);
            if (!array.valid(idx))
                continue;
            LlcBlockInfo info;
            info.addr = slicer.addr(s, array.key(idx));
            info.data = blocks[static_cast<size_t>(idx)].data();
            info.dirty = array.flag(idx, LineDirty);
            const ApproxRegion *region =
                registry ? registry->find(info.addr) : nullptr;
            info.approx = region != nullptr;
            info.type = region ? region->type : ElemType::F32;
            visit(info);
        }
    }
}

void
ConventionalLlc::flush()
{
    for (u32 s = 0; s < array.sets(); ++s)
        for (u32 w = 0; w < array.ways(); ++w)
            evictLine(s, w);
    array.invalidateAll();
}

} // namespace dopp
