#include "experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "harness/llc_factory.hh"
#include "sim/llc.hh"
#include "sim/trace.hh"
#include "sim/memory.hh"
#include "util/env.hh"
#include "util/fileio.hh"
#include "util/logging.hh"

namespace dopp
{

const char *
llcKindName(LlcKind kind)
{
    switch (kind) {
      case LlcKind::Baseline: return "baseline";
      case LlcKind::SplitDopp: return "split-doppelganger";
      case LlcKind::UniDopp: return "uniDoppelganger";
      case LlcKind::Dedup: return "dedup";
      case LlcKind::Bdi: return "bdi";
    }
    return "?";
}

LlcKind
llcKindFromName(const std::string &name)
{
    for (LlcKind kind : {LlcKind::Baseline, LlcKind::SplitDopp,
                         LlcKind::UniDopp, LlcKind::Dedup,
                         LlcKind::Bdi}) {
        if (name == llcKindName(kind))
            return kind;
    }
    fatal("unknown LLC organization name '%s'", name.c_str());
    return LlcKind::Baseline;
}

DoppConfig
doppConfigFor(const RunConfig &cfg, bool unified)
{
    DoppConfig d;
    // Table 1 tag-equivalents: the unified organization replaces the
    // whole baseline (32 K tags for 2 MB); the split's Doppelgänger
    // half replaces one half of it (16 K tags).
    d.tagEntries = static_cast<u32>(
        cfg.baselineBytes / (unified ? 1 : 2) / blockBytes);
    d.tagWays = cfg.llcWays;
    d.dataEntries = static_cast<u32>(
        static_cast<double>(d.tagEntries) * cfg.dataFraction);
    d.dataWays = cfg.llcWays;
    d.mapBits = cfg.mapBits;
    d.hashMode = cfg.hashMode;
    d.hashDataSetIndex = cfg.hashDataSetIndex;
    d.dataPolicy = cfg.dataPolicy;
    d.tagCountAwareData = cfg.tagCountAwareData;
    d.hitLatency = cfg.llcLatency;
    d.unified = unified;
    // Engine selection: per-run switch, or DOPP_REFERENCE_IMPL=1 to
    // flip a whole process (ci.sh uses it to diff bench output between
    // the reference and optimized engines without a rebuild).
    d.referenceImpl =
        cfg.doppReference || envFlag("DOPP_REFERENCE_IMPL", false);
    return d;
}

DoppConfig
splitDoppConfig(const RunConfig &cfg)
{
    return doppConfigFor(cfg, false);
}

DoppConfig
uniDoppConfig(const RunConfig &cfg)
{
    return doppConfigFor(cfg, true);
}

double
workloadScaleFromEnv()
{
    return envDouble("DOPP_WORKLOAD_SCALE", 1.0);
}

RunResult
runWorkload(const RunConfig &cfg)
{
    if (cfg.workloadName.empty())
        fatal("runWorkload(cfg): config has no workloadName");
    return runWorkload(cfg.workloadName, cfg);
}

namespace
{

/**
 * Append one JSON line for @p r to the DOPP_STATS_JSON path, if set.
 * The batch runner runs workloads from worker threads, so the append
 * is serialized process-wide; line order across runs is therefore
 * unspecified under DOPP_JOBS > 1. Each record is one O_APPEND
 * write(2) + fsync(2) (util/fileio.hh), so a crash mid-campaign loses
 * at most the record being written and never interleaves lines.
 */
void
maybeAppendStatsJson(const RunResult &r)
{
    const char *path = std::getenv("DOPP_STATS_JSON");
    if (!path || !*path)
        return;

    std::string record;
    record.reserve(256 + 16 * r.stats.size());
    record += "{\"workload\":\"";
    record += r.workload;
    record += "\",\"organization\":\"";
    record += r.organization;
    record += "\",\"stats\":";
    record += r.stats.json();
    record += "}\n";

    static std::mutex ioMutex;
    std::lock_guard<std::mutex> lock(ioMutex);
    static std::unique_ptr<AppendLog> log;
    if (!log || log->path() != path)
        log = std::make_unique<AppendLog>(path);
    log->append(record);
}

} // namespace

RunResult
runWorkload(const std::string &workload_name, const RunConfig &cfg)
{
    // One registry per run: every layer below registers its counters
    // here, and the end-of-run snapshot becomes RunResult::stats.
    StatRegistry statReg;

    MainMemory memory(cfg.memTier);
    memory.registerStats(statReg.group("mem"));
    ApproxRegistry registry;

    const std::string orgName =
        cfg.llcName.empty() ? llcKindName(cfg.kind) : cfg.llcName;
    LlcBuilt built =
        buildLlc(orgName, memory, registry, cfg, statReg);
    LastLevelCache *llc = built.llc.get();

    // Fault injection and QoR guardrail (attached independently: a
    // guardrail without faults budgets the baseline approximation
    // error; an injector without a guardrail measures raw resilience).
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<QorGuardrail> guard;
    if (cfg.fault.enabled() || cfg.memTier.anyFaultRate()) {
        injector = std::make_unique<FaultInjector>(cfg.fault);
        injector->registerStats(statReg.group("fault"));
    }
    if (cfg.qor.enabled()) {
        guard = std::make_unique<QorGuardrail>(cfg.qor);
        guard->registerStats(statReg.group("qor"));
    }

    if (injector && cfg.memTier.enabled()) {
        // Tiered memory: the per-partition fault models draw through
        // the run's injector, and every applied flip is scored against
        // the owning region's declared span so the guardrail sees
        // memory-tier error alongside LLC substitution error.
        memory.setFaultInjector(injector.get());
        QorGuardrail *g = guard.get();
        memory.onBitFlip = [g, &registry](Addr addr, u8 *block,
                                          u32 bit, u32 part) {
            (void)part;
            if (!g)
                return;
            const ApproxRegion *region = registry.find(addr);
            if (!region)
                return;
            const unsigned elem = bit / elemBits(region->type);
            const double after =
                blockElement(block, region->type, elem);
            // Un-flip to recover the pre-fault value of the element.
            block[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
            const double before =
                blockElement(block, region->type, elem);
            block[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
            double err = std::abs(after - before) /
                std::max(region->span(), 1e-30);
            if (!std::isfinite(err) || err > 1.0)
                err = 1.0;
            g->observeError(err);
        };
    }
    if (guard && cfg.memTier.enabled() && cfg.qor.migrateFactor > 0.0) {
        // Cross-tier escalation: MIGRATED pins the approximate
        // regions' pages to the precise partition; stepping back down
        // restores the approximate routes.
        MainMemory *m = &memory;
        guard->onMigrate = [m](bool migrate) {
            if (migrate)
                m->migrateApproxToPrecise();
            else
                m->restoreApproxRoutes();
        };
    }

    if (injector) {
        llc->setFaultInjector(injector.get());
        if (cfg.fault.memoryRate > 0.0 && !cfg.memTier.enabled()) {
            FaultInjector *fi = injector.get();
            QorGuardrail *g = guard.get();
            // Approximate-DRAM flips materialize at demand reads; only
            // annotated regions live in the relaxed-refresh partition.
            memory.faultHook = [fi, g, &registry](Addr addr,
                                                  u8 *block) {
                const ApproxRegion *region = registry.find(addr);
                if (!region || !fi->draw(FaultDomain::MemoryData))
                    return;
                const u32 bit =
                    static_cast<u32>(fi->pick(blockBytes * 8));
                const unsigned elem = bit / elemBits(region->type);
                const double before =
                    blockElement(block, region->type, elem);
                block[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
                const double after =
                    blockElement(block, region->type, elem);
                fi->record(FaultDomain::MemoryData, addr, 0, bit);
                if (g) {
                    // The flipped element's own error; see the data
                    // fault hooks in llc.cc / doppelganger_cache.cc.
                    double err = std::abs(after - before) /
                        std::max(region->span(), 1e-30);
                    if (!std::isfinite(err) || err > 1.0)
                        err = 1.0;
                    g->observeError(err);
                }
            };
        }
    }
    if (guard)
        llc->setGuardrail(guard.get());

    HierarchyConfig hc; // Table 1 defaults
    MemorySystem system(hc, *llc, memory, &statReg, "hierarchy");
    SimRuntime rt(system, memory, registry);
    rt.abortFlag = cfg.abortFlag; // watchdog unwind point
    if (cfg.abortPollAccesses)
        rt.setAbortPollInterval(cfg.abortPollAccesses);

    // Run-level derived stats, computed at snapshot time.
    const DoppEngine *doppView = built.dopp;
    StatGroup runGroup = statReg.group("run");
    runGroup.counterFn(
        "runtimeCycles", [&rt] { return rt.runtime(); },
        "slowest core's cycles");
    runGroup.formula(
        "tagsPerDataEntry",
        [doppView] {
            if (!doppView || doppView->dataCount() == 0)
                return 0.0;
            return static_cast<double>(doppView->tagCount()) /
                static_cast<double>(doppView->dataCount());
        },
        "end-of-run occupancy: tags per valid data entry");

    if (cfg.snapshotPeriod && cfg.onSnapshot) {
        rt.setPeriodicHook(cfg.snapshotPeriod, [&]() {
            cfg.onSnapshot(captureSnapshot(*llc, registry));
        });
    }

    std::unique_ptr<TraceWriter> tracer;
    if (!cfg.tracePath.empty()) {
        tracer = std::make_unique<TraceWriter>(cfg.tracePath);
        rt.accessHook = [&](Addr a, bool is_write, unsigned size,
                            u64 payload) {
            TraceRecord rec;
            rec.addr = a;
            rec.payload = payload;
            rec.core = static_cast<u8>(rt.core());
            rec.size = static_cast<u8>(size);
            rec.isWrite = is_write ? 1 : 0;
            tracer->append(rec);
        };
    }

    auto workload = makeWorkload(workload_name, cfg.workload);
    workload->run(rt);
    if (tracer)
        tracer->close();

    // Guarantee at least one snapshot per run, whatever the period.
    if (cfg.snapshotPeriod && cfg.onSnapshot)
        cfg.onSnapshot(captureSnapshot(*llc, registry));

    RunResult r;
    r.workload = workload_name;
    r.organization = orgName;
    r.runtime = rt.runtime();
    r.output = workload->output();
    r.stats = statReg.snapshot();
    r.llc = llc->stats();
    if (built.split) {
        r.preciseHalf = built.split->precise().stats();
        r.doppHalf = built.split->doppelganger().stats();
    } else if (doppView) {
        r.doppHalf = llc->stats();
    }
    r.hierarchy = system.stats();
    r.memReads = memory.reads();
    r.memWrites = memory.writes();
    r.doppConfig = built.doppConfig;
    if (injector) {
        r.fault = injector->stats();
        r.faultTrace = injector->events();
    }
    if (guard) {
        r.guardrailDegradations = guard->degradationCount();
        r.guardrailDegradedOps = guard->degradedOps();
        r.guardrailEstimate = guard->estimate();
        r.degradedIntervals = guard->intervals();
    }
    if (doppView && doppView->dataCount() > 0) {
        r.tagsPerDataEntry =
            static_cast<double>(doppView->tagCount()) /
            static_cast<double>(doppView->dataCount());
    }
    maybeAppendStatsJson(r);
    return r;
}

} // namespace dopp
