#include "experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "compress/bdi_llc.hh"
#include "compress/dedup.hh"
#include "sim/llc.hh"
#include "sim/trace.hh"
#include "sim/memory.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace dopp
{

const char *
llcKindName(LlcKind kind)
{
    switch (kind) {
      case LlcKind::Baseline: return "baseline";
      case LlcKind::SplitDopp: return "split-doppelganger";
      case LlcKind::UniDopp: return "uniDoppelganger";
      case LlcKind::Dedup: return "dedup";
      case LlcKind::Bdi: return "bdi";
    }
    return "?";
}

DoppConfig
splitDoppConfig(const RunConfig &cfg)
{
    DoppConfig d;
    // 1 MB tag-equivalent: 16 K tags (Table 1).
    d.tagEntries = static_cast<u32>(cfg.baselineBytes / 2 / blockBytes);
    d.tagWays = cfg.llcWays;
    d.dataEntries = static_cast<u32>(
        static_cast<double>(d.tagEntries) * cfg.dataFraction);
    d.dataWays = cfg.llcWays;
    d.mapBits = cfg.mapBits;
    d.hashMode = cfg.hashMode;
    d.hashDataSetIndex = cfg.hashDataSetIndex;
    d.dataPolicy = cfg.dataPolicy;
    d.tagCountAwareData = cfg.tagCountAwareData;
    d.hitLatency = cfg.llcLatency;
    d.unified = false;
    return d;
}

DoppConfig
uniDoppConfig(const RunConfig &cfg)
{
    DoppConfig d;
    // 2 MB tag-equivalent: 32 K tags (Table 1).
    d.tagEntries = static_cast<u32>(cfg.baselineBytes / blockBytes);
    d.tagWays = cfg.llcWays;
    d.dataEntries = static_cast<u32>(
        static_cast<double>(d.tagEntries) * cfg.dataFraction);
    d.dataWays = cfg.llcWays;
    d.mapBits = cfg.mapBits;
    d.hashMode = cfg.hashMode;
    d.hashDataSetIndex = cfg.hashDataSetIndex;
    d.dataPolicy = cfg.dataPolicy;
    d.tagCountAwareData = cfg.tagCountAwareData;
    d.hitLatency = cfg.llcLatency;
    d.unified = true;
    return d;
}

double
workloadScaleFromEnv()
{
    return envDouble("DOPP_WORKLOAD_SCALE", 1.0);
}

RunResult
runWorkload(const RunConfig &cfg)
{
    if (cfg.workloadName.empty())
        fatal("runWorkload(cfg): config has no workloadName");
    return runWorkload(cfg.workloadName, cfg);
}

RunResult
runWorkload(const std::string &workload_name, const RunConfig &cfg)
{
    MainMemory memory;
    ApproxRegistry registry;

    std::unique_ptr<LastLevelCache> llc;
    const SplitLlc *split = nullptr;
    const DoppelgangerCache *doppView = nullptr;
    DoppConfig doppCfg;

    switch (cfg.kind) {
      case LlcKind::Baseline:
        llc = std::make_unique<ConventionalLlc>(
            memory, cfg.baselineBytes, cfg.llcWays, cfg.llcLatency,
            &registry);
        break;
      case LlcKind::SplitDopp: {
        SplitLlcConfig sc;
        sc.preciseBytes = cfg.baselineBytes / 2;
        sc.preciseWays = cfg.llcWays;
        sc.preciseLatency = cfg.llcLatency;
        sc.dopp = splitDoppConfig(cfg);
        doppCfg = sc.dopp;
        auto ptr = std::make_unique<SplitLlc>(memory, sc, registry);
        split = ptr.get();
        doppView = &ptr->doppelganger();
        llc = std::move(ptr);
        break;
      }
      case LlcKind::UniDopp: {
        doppCfg = uniDoppConfig(cfg);
        auto ptr = std::make_unique<DoppelgangerCache>(memory, doppCfg,
                                                       &registry);
        doppView = ptr.get();
        llc = std::move(ptr);
        break;
      }
      case LlcKind::Bdi: {
        BdiLlcConfig bc;
        bc.sizeBytes = cfg.baselineBytes;
        bc.ways = cfg.llcWays;
        bc.hitLatency = cfg.llcLatency;
        llc = std::make_unique<BdiLlc>(memory, bc, &registry);
        break;
      }
      case LlcKind::Dedup: {
        DedupConfig dc;
        dc.tagEntries =
            static_cast<u32>(cfg.baselineBytes / blockBytes);
        dc.tagWays = cfg.llcWays;
        dc.dataEntries = static_cast<u32>(
            static_cast<double>(dc.tagEntries) * cfg.dataFraction);
        dc.dataWays = cfg.llcWays;
        dc.hitLatency = cfg.llcLatency;
        llc = std::make_unique<DedupLlc>(memory, dc);
        break;
      }
    }

    // Fault injection and QoR guardrail (attached independently: a
    // guardrail without faults budgets the baseline approximation
    // error; an injector without a guardrail measures raw resilience).
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<QorGuardrail> guard;
    if (cfg.fault.enabled())
        injector = std::make_unique<FaultInjector>(cfg.fault);
    if (cfg.qor.enabled())
        guard = std::make_unique<QorGuardrail>(cfg.qor);

    if (injector) {
        llc->setFaultInjector(injector.get());
        if (cfg.fault.memoryRate > 0.0) {
            FaultInjector *fi = injector.get();
            QorGuardrail *g = guard.get();
            // Approximate-DRAM flips materialize at demand reads; only
            // annotated regions live in the relaxed-refresh partition.
            memory.faultHook = [fi, g, &registry](Addr addr,
                                                  u8 *block) {
                const ApproxRegion *region = registry.find(addr);
                if (!region || !fi->draw(FaultDomain::MemoryData))
                    return;
                const u32 bit =
                    static_cast<u32>(fi->pick(blockBytes * 8));
                const unsigned elem = bit / elemBits(region->type);
                const double before =
                    blockElement(block, region->type, elem);
                block[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
                const double after =
                    blockElement(block, region->type, elem);
                fi->record(FaultDomain::MemoryData, addr, 0, bit);
                if (g) {
                    // The flipped element's own error; see the data
                    // fault hooks in llc.cc / doppelganger_cache.cc.
                    double err = std::abs(after - before) /
                        std::max(region->span(), 1e-30);
                    if (!std::isfinite(err) || err > 1.0)
                        err = 1.0;
                    g->observeError(err);
                }
            };
        }
    }
    if (guard)
        llc->setGuardrail(guard.get());

    HierarchyConfig hc; // Table 1 defaults
    MemorySystem system(hc, *llc, memory);
    SimRuntime rt(system, memory, registry);

    if (cfg.snapshotPeriod && cfg.onSnapshot) {
        rt.setPeriodicHook(cfg.snapshotPeriod, [&]() {
            cfg.onSnapshot(captureSnapshot(*llc, registry));
        });
    }

    std::unique_ptr<TraceWriter> tracer;
    if (!cfg.tracePath.empty()) {
        tracer = std::make_unique<TraceWriter>(cfg.tracePath);
        rt.accessHook = [&](Addr a, bool is_write, unsigned size,
                            u64 payload) {
            TraceRecord rec;
            rec.addr = a;
            rec.payload = payload;
            rec.core = static_cast<u8>(rt.core());
            rec.size = static_cast<u8>(size);
            rec.isWrite = is_write ? 1 : 0;
            tracer->append(rec);
        };
    }

    auto workload = makeWorkload(workload_name, cfg.workload);
    workload->run(rt);
    if (tracer)
        tracer->close();

    // Guarantee at least one snapshot per run, whatever the period.
    if (cfg.snapshotPeriod && cfg.onSnapshot)
        cfg.onSnapshot(captureSnapshot(*llc, registry));

    RunResult r;
    r.workload = workload_name;
    r.organization = llcKindName(cfg.kind);
    r.runtime = rt.runtime();
    r.output = workload->output();
    r.llc = llc->stats();
    if (split) {
        r.preciseHalf = split->precise().stats();
        r.doppHalf = split->doppelganger().stats();
    } else if (cfg.kind == LlcKind::UniDopp) {
        r.doppHalf = llc->stats();
    }
    r.hierarchy = system.stats();
    r.memReads = memory.reads();
    r.memWrites = memory.writes();
    r.doppConfig = doppCfg;
    if (injector) {
        r.fault = injector->stats();
        r.faultTrace = injector->events();
    }
    if (guard) {
        r.guardrailDegradations = guard->degradationCount();
        r.guardrailDegradedOps = guard->degradedOps();
        r.guardrailEstimate = guard->estimate();
        r.degradedIntervals = guard->intervals();
    }
    if (doppView && doppView->dataCount() > 0) {
        r.tagsPerDataEntry =
            static_cast<double>(doppView->tagCount()) /
            static_cast<double>(doppView->dataCount());
    }
    return r;
}

} // namespace dopp
