/**
 * @file
 * Builders of the five built-in LLC organizations. Each builder
 * constructs its organization against the run's StatRegistry:
 * organizations whose counters live directly under "llc" (baseline,
 * bdi, dedup) add the derived formulas there; organizations whose
 * counters live in subgroups (split, uniDoppelgänger) expose an
 * aggregate whole-LLC view under "llc" instead.
 */

#include "compress/bdi_llc.hh"
#include "compress/dedup.hh"
#include "harness/experiment.hh"
#include "harness/llc_factory.hh"

namespace dopp
{

namespace
{

LlcBuilt
buildBaseline(MainMemory &memory, const ApproxRegistry &registry,
              const RunConfig &cfg, StatRegistry &stats)
{
    LlcBuilt built;
    auto ptr = std::make_unique<ConventionalLlc>(
        memory, cfg.baselineBytes, cfg.llcWays, cfg.llcLatency,
        &registry, ReplPolicy::LRU, &stats, "llc");
    registerLlcFormulas(stats.group("llc"),
                        [llc = ptr.get()] { return llc->stats(); });
    built.llc = std::move(ptr);
    return built;
}

LlcBuilt
buildSplitDopp(MainMemory &memory, const ApproxRegistry &registry,
               const RunConfig &cfg, StatRegistry &stats)
{
    SplitLlcConfig sc;
    sc.preciseBytes = cfg.baselineBytes / 2;
    sc.preciseWays = cfg.llcWays;
    sc.preciseLatency = cfg.llcLatency;
    sc.dopp = splitDoppConfig(cfg);

    LlcBuilt built;
    built.doppConfig = sc.dopp;
    auto ptr =
        std::make_unique<SplitLlc>(memory, sc, registry, &stats, "llc");
    built.split = ptr.get();
    built.dopp = &ptr->doppelganger();
    built.llc = std::move(ptr);
    return built;
}

LlcBuilt
buildUniDopp(MainMemory &memory, const ApproxRegistry &registry,
             const RunConfig &cfg, StatRegistry &stats)
{
    LlcBuilt built;
    built.doppConfig = uniDoppConfig(cfg);
    auto ptr = makeDoppEngine(memory, built.doppConfig, &registry,
                              &stats, "llc.dopp");
    built.dopp = ptr.get();
    registerLlcStatsView(stats.group("llc"),
                         [llc = ptr.get()] { return llc->stats(); });
    built.llc = std::move(ptr);
    return built;
}

LlcBuilt
buildBdi(MainMemory &memory, const ApproxRegistry &registry,
         const RunConfig &cfg, StatRegistry &stats)
{
    BdiLlcConfig bc;
    bc.sizeBytes = cfg.baselineBytes;
    bc.ways = cfg.llcWays;
    bc.hitLatency = cfg.llcLatency;

    LlcBuilt built;
    auto ptr =
        std::make_unique<BdiLlc>(memory, bc, &registry, &stats, "llc");
    registerLlcFormulas(stats.group("llc"),
                        [llc = ptr.get()] { return llc->stats(); });
    built.llc = std::move(ptr);
    return built;
}

LlcBuilt
buildDedup(MainMemory &memory, const ApproxRegistry &,
           const RunConfig &cfg, StatRegistry &stats)
{
    DedupConfig dc;
    dc.tagEntries = static_cast<u32>(cfg.baselineBytes / blockBytes);
    dc.tagWays = cfg.llcWays;
    dc.dataEntries = static_cast<u32>(
        static_cast<double>(dc.tagEntries) * cfg.dataFraction);
    dc.dataWays = cfg.llcWays;
    dc.hitLatency = cfg.llcLatency;
    // Same engine-selection rule as the Doppelgänger organizations so
    // the differential suite can flip all five builders at once.
    dc.referenceImpl = splitDoppConfig(cfg).referenceImpl;

    LlcBuilt built;
    auto ptr = std::make_unique<DedupLlc>(memory, dc, &stats, "llc");
    registerLlcFormulas(stats.group("llc"),
                        [llc = ptr.get()] { return llc->stats(); });
    built.llc = std::move(ptr);
    return built;
}

} // namespace

void
registerBuiltinLlcs()
{
    static const bool once = [] {
        registerLlc(llcKindName(LlcKind::Baseline), buildBaseline);
        registerLlc(llcKindName(LlcKind::SplitDopp), buildSplitDopp);
        registerLlc(llcKindName(LlcKind::UniDopp), buildUniDopp);
        registerLlc(llcKindName(LlcKind::Dedup), buildDedup);
        registerLlc(llcKindName(LlcKind::Bdi), buildBdi);
        return true;
    }();
    (void)once;
}

} // namespace dopp
