#include "journal.hh"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "sim/hierarchy.hh"
#include "sim/llc.hh"
#include "util/logging.hh"

namespace dopp
{

namespace
{

// ---------------------------------------------------------------------
// Canonical formatting shared by the fingerprint and the writer
// ---------------------------------------------------------------------

/** Shortest-round-trip decimal form of @p x (std::to_chars), the same
 * formatting StatValue::str() uses — strtod() reproduces the exact
 * double, so journal round-trips are bit-exact. */
std::string
fmtDouble(double x)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), x);
    return std::string(buf, res.ptr);
}

std::string
fmtU64(u64 x)
{
    return std::to_string(x);
}

/** JSON string escaping for error messages and names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** 64-bit FNV-1a over @p s. */
u64
fnv1a64(const std::string &s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

// ---------------------------------------------------------------------
// Minimal JSON parser (journal records only)
// ---------------------------------------------------------------------

/**
 * Parsed JSON value. Numbers keep their raw token so integral stats
 * reload as exact u64s (a double round-trip would corrupt counters
 * above 2^53) and reals reload via the same strtod shortest-
 * round-trip guarantee the writer relies on.
 */
struct JsonValue
{
    enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string raw;  ///< number token
    std::string text; ///< string contents
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    bool
    asU64(u64 &out) const
    {
        if (kind != Kind::Number)
            return false;
        const char *b = raw.c_str();
        const char *e = b + raw.size();
        const auto res = std::from_chars(b, e, out);
        return res.ec == std::errc() && res.ptr == e;
    }

    bool
    asDouble(double &out) const
    {
        if (kind != Kind::Number)
            return false;
        const char *b = raw.c_str();
        char *end = nullptr;
        out = std::strtod(b, &end);
        return end == b + raw.size();
    }
};

/** Recursive-descent parser over one record line. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &s)
        : p(s.c_str()), end(s.c_str() + s.size())
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return p == end; // trailing junk is malformation
    }

  private:
    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' ||
                           *p == '\n')) {
            ++p;
        }
    }

    bool
    literal(const char *lit)
    {
        const char *q = p;
        while (*lit) {
            if (q >= end || *q != *lit)
                return false;
            ++q;
            ++lit;
        }
        p = q;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c == '\\') {
                if (p >= end)
                    return false;
                const char esc = *p++;
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                      if (end - p < 4)
                          return false;
                      unsigned code = 0;
                      for (int i = 0; i < 4; ++i) {
                          const char h = *p++;
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code |= static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code |= static_cast<unsigned>(
                                  h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code |= static_cast<unsigned>(
                                  h - 'A' + 10);
                          else
                              return false;
                      }
                      // The writer only emits \u00xx control escapes.
                      if (code > 0xff)
                          return false;
                      out += static_cast<char>(code);
                      break;
                  }
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        if (p >= end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = p;
        if (p < end && (*p == '-' || *p == '+'))
            ++p;
        bool digits = false;
        while (p < end &&
               ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
                *p == 'E' || *p == '-' || *p == '+')) {
            if (*p >= '0' && *p <= '9')
                digits = true;
            ++p;
        }
        if (!digits)
            return false;
        out.kind = JsonValue::Kind::Number;
        out.raw.assign(start, p);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (p >= end)
            return false;
        switch (*p) {
          case '{': {
              ++p;
              out.kind = JsonValue::Kind::Object;
              skipWs();
              if (p < end && *p == '}') {
                  ++p;
                  return true;
              }
              for (;;) {
                  skipWs();
                  std::string key;
                  if (!parseString(key))
                      return false;
                  skipWs();
                  if (p >= end || *p != ':')
                      return false;
                  ++p;
                  JsonValue v;
                  if (!parseValue(v))
                      return false;
                  out.object.emplace_back(std::move(key),
                                          std::move(v));
                  skipWs();
                  if (p < end && *p == ',') {
                      ++p;
                      continue;
                  }
                  if (p < end && *p == '}') {
                      ++p;
                      return true;
                  }
                  return false;
              }
          }
          case '[': {
              ++p;
              out.kind = JsonValue::Kind::Array;
              skipWs();
              if (p < end && *p == ']') {
                  ++p;
                  return true;
              }
              for (;;) {
                  JsonValue v;
                  if (!parseValue(v))
                      return false;
                  out.array.push_back(std::move(v));
                  skipWs();
                  if (p < end && *p == ',') {
                      ++p;
                      continue;
                  }
                  if (p < end && *p == ']') {
                      ++p;
                      return true;
                  }
                  return false;
              }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    const char *p;
    const char *end;
};

// ---------------------------------------------------------------------
// Compatibility-view reconstruction (snapshot -> typed RunResult)
// ---------------------------------------------------------------------

/** Optional counter read: @p fallback when @p name is absent. */
u64
snapCounter(const StatSnapshot &s, const std::string &name,
            u64 fallback = 0)
{
    for (const StatValue &v : s.values()) {
        if (v.name == name)
            return v.integral ? v.u : static_cast<u64>(v.d);
    }
    return fallback;
}

double
snapReal(const StatSnapshot &s, const std::string &name,
         double fallback = 0.0)
{
    for (const StatValue &v : s.values()) {
        if (v.name == name)
            return v.asDouble();
    }
    return fallback;
}

bool
snapHas(const StatSnapshot &s, const std::string &prefix)
{
    for (const StatValue &v : s.values()) {
        if (v.name.size() > prefix.size() &&
            v.name.compare(0, prefix.size(), prefix) == 0 &&
            v.name[prefix.size()] == '.') {
            return true;
        }
    }
    return false;
}

LlcStats
llcStatsFromSnapshot(const StatSnapshot &s, const std::string &prefix)
{
    LlcStats out;
    for (const LlcStatField &f : llcStatFields())
        f.ref(out) = snapCounter(s, prefix + "." + f.name);
    return out;
}

/**
 * Re-derive every typed compatibility view on @p r from the
 * authoritative snapshot, mirroring what runWorkload fills in at the
 * end of a live run (experiment.cc). Stats a custom organization
 * registered under other group names stay in the snapshot only.
 */
void
deriveCompatViews(RunResult &r)
{
    const StatSnapshot &s = r.stats;

    r.llc = llcStatsFromSnapshot(s, "llc");
    if (snapHas(s, "llc.precise"))
        r.preciseHalf = llcStatsFromSnapshot(s, "llc.precise");
    // uniDoppelgänger's own counters live under llc.dopp too, so this
    // covers both decoupled organizations (cf. runWorkload's
    // doppHalf assignment).
    if (snapHas(s, "llc.dopp"))
        r.doppHalf = llcStatsFromSnapshot(s, "llc.dopp");

    r.hierarchy.accesses = snapCounter(s, "hierarchy.accesses");
    r.hierarchy.loads = snapCounter(s, "hierarchy.loads");
    r.hierarchy.stores = snapCounter(s, "hierarchy.stores");
    r.hierarchy.l1Hits = snapCounter(s, "hierarchy.l1.hits");
    r.hierarchy.l1Misses = snapCounter(s, "hierarchy.l1.misses");
    r.hierarchy.l2Hits = snapCounter(s, "hierarchy.l2.hits");
    r.hierarchy.l2Misses = snapCounter(s, "hierarchy.l2.misses");
    r.hierarchy.upgrades = snapCounter(s, "hierarchy.upgrades");
    r.hierarchy.remoteFetches =
        snapCounter(s, "hierarchy.remoteFetches");
    r.hierarchy.invalidationsSent =
        snapCounter(s, "hierarchy.invalidationsSent");

    r.memReads = snapCounter(s, "mem.reads");
    r.memWrites = snapCounter(s, "mem.writes");

    for (unsigned d = 0; d < faultDomainCount; ++d) {
        r.fault.injected[d] = snapCounter(
            s, std::string("fault.injected.") +
                   faultDomainName(static_cast<FaultDomain>(d)));
    }
    r.fault.detected = snapCounter(s, "fault.detected");
    r.fault.repairs = snapCounter(s, "fault.repairs");
    r.fault.tagsDropped = snapCounter(s, "fault.tagsDropped");
    r.fault.entriesDropped = snapCounter(s, "fault.entriesDropped");

    r.guardrailDegradations = snapCounter(s, "qor.degradations");
    r.guardrailDegradedOps = snapCounter(s, "qor.degradedOps");
    r.guardrailEstimate = snapReal(s, "qor.estimate");

    r.runtime = snapCounter(s, "run.runtimeCycles");
    r.tagsPerDataEntry = snapReal(s, "run.tagsPerDataEntry");
}

constexpr u64 journalSchemaVersion = 1;

} // namespace

// ---------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------

std::string
configFingerprint(const RunConfig &cfg)
{
    const std::string org =
        cfg.llcName.empty() ? llcKindName(cfg.kind) : cfg.llcName;

    // Canonical key=value rendering of every result-affecting field;
    // extend this list whenever RunConfig grows one (DESIGN.md §11).
    std::string key;
    key.reserve(256);
    auto add = [&key](const char *name, const std::string &value) {
        key += name;
        key += '=';
        key += value;
        key += ';';
    };
    add("workload", cfg.workloadName);
    add("org", org);
    add("mapBits", fmtU64(cfg.mapBits));
    add("dataFraction", fmtDouble(cfg.dataFraction));
    add("hashMode", fmtU64(static_cast<u64>(cfg.hashMode)));
    add("hashDataSetIndex", fmtU64(cfg.hashDataSetIndex ? 1 : 0));
    add("dataPolicy", fmtU64(static_cast<u64>(cfg.dataPolicy)));
    add("tagCountAwareData", fmtU64(cfg.tagCountAwareData ? 1 : 0));
    add("scale", fmtDouble(cfg.workload.scale));
    add("seed", fmtU64(cfg.workload.seed));
    add("perUseRanges", fmtU64(cfg.workload.perUseRanges ? 1 : 0));
    add("baselineBytes", fmtU64(cfg.baselineBytes));
    add("llcWays", fmtU64(cfg.llcWays));
    add("llcLatency", fmtU64(cfg.llcLatency));
    add("fault.seed", fmtU64(cfg.fault.seed));
    add("fault.memoryRate", fmtDouble(cfg.fault.memoryRate));
    add("fault.dataRate", fmtDouble(cfg.fault.dataRate));
    add("fault.tagMetaRate", fmtDouble(cfg.fault.tagMetaRate));
    add("fault.mtagMetaRate", fmtDouble(cfg.fault.mtagMetaRate));
    add("qor.budget", fmtDouble(cfg.qor.budget));
    add("qor.reenableFraction", fmtDouble(cfg.qor.reenableFraction));
    add("qor.window", fmtU64(cfg.qor.window));
    add("qor.minDwell", fmtU64(cfg.qor.minDwell));
    add("qor.migrateFactor", fmtDouble(cfg.qor.migrateFactor));
    add("qor.migrateDwell", fmtU64(cfg.qor.migrateDwell));
    add("memTier.partitions",
        fmtU64(cfg.memTier.partitions.size()));
    for (size_t i = 0; i < cfg.memTier.partitions.size(); ++i) {
        const MemPartitionProfile &p = cfg.memTier.partitions[i];
        const std::string pre = "memTier.p" + fmtU64(i) + ".";
        auto addP = [&](const char *field, const std::string &value) {
            key += pre;
            key += field;
            key += '=';
            key += value;
            key += ';';
        };
        addP("kind", fmtU64(static_cast<u64>(p.kind)));
        addP("name", p.name);
        addP("bitErrorRate", fmtDouble(p.bitErrorRate));
        addP("refreshFaultRate", fmtDouble(p.refreshFaultRate));
        addP("refreshIntervalAccesses",
             fmtU64(p.refreshIntervalAccesses));
        addP("readLatency", fmtU64(p.readLatency));
        addP("writeLatency", fmtU64(p.writeLatency));
        addP("writeBufferDepth", fmtU64(p.writeBufferDepth));
        addP("bufferedWriteLatency", fmtU64(p.bufferedWriteLatency));
        addP("readEnergyPj", fmtDouble(p.readEnergyPj));
        addP("writeEnergyPj", fmtDouble(p.writeEnergyPj));
        addP("standbyPowerMw", fmtDouble(p.standbyPowerMw));
    }

    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return cfg.workloadName + "/" + org + "@" + hex;
}

bool
configResumable(const RunConfig &cfg)
{
    return !cfg.onSnapshot && cfg.tracePath.empty();
}

// ---------------------------------------------------------------------
// Record writer
// ---------------------------------------------------------------------

std::string
journalRecordJson(const std::string &fingerprint,
                  const RunResult &result)
{
    std::string out;
    out.reserve(512 + 24 * result.stats.size());
    out += "{\"v\":";
    out += fmtU64(journalSchemaVersion);
    out += ",\"fp\":\"";
    out += jsonEscape(fingerprint);
    out += "\",\"workload\":\"";
    out += jsonEscape(result.workload);
    out += "\",\"organization\":\"";
    out += jsonEscape(result.organization);
    out += "\",\"failed\":";
    out += result.failed ? "true" : "false";
    out += ",\"error\":\"";
    out += jsonEscape(result.error);
    out += "\",\"dopp\":{";
    const DoppConfig &d = result.doppConfig;
    out += "\"tagEntries\":" + fmtU64(d.tagEntries);
    out += ",\"tagWays\":" + fmtU64(d.tagWays);
    out += ",\"dataEntries\":" + fmtU64(d.dataEntries);
    out += ",\"dataWays\":" + fmtU64(d.dataWays);
    out += ",\"mapBits\":" + fmtU64(d.mapBits);
    out += ",\"hashMode\":" + fmtU64(static_cast<u64>(d.hashMode));
    out += ",\"hitLatency\":" + fmtU64(d.hitLatency);
    out += ",\"unified\":" + fmtU64(d.unified ? 1 : 0);
    out += ",\"hashDataSetIndex\":" +
        fmtU64(d.hashDataSetIndex ? 1 : 0);
    out += ",\"dataPolicy\":" + fmtU64(static_cast<u64>(d.dataPolicy));
    out += ",\"tagCountAwareData\":" +
        fmtU64(d.tagCountAwareData ? 1 : 0);
    out += "},\"output\":[";
    for (size_t i = 0; i < result.output.size(); ++i) {
        if (i)
            out += ',';
        out += fmtDouble(result.output[i]);
    }
    out += "],\"stats\":[";
    bool first = true;
    for (const StatValue &v : result.stats.values()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"n\":\"";
        out += jsonEscape(v.name);
        out += v.integral ? "\",\"u\":" : "\",\"d\":";
        out += v.integral ? fmtU64(v.u) : fmtDouble(v.d);
        out += '}';
    }
    out += "]}\n";
    return out;
}

// ---------------------------------------------------------------------
// Record reader
// ---------------------------------------------------------------------

namespace
{

bool
knownKeysOnly(const JsonValue &obj,
              std::initializer_list<const char *> known,
              std::string &why)
{
    for (const auto &[k, v] : obj.object) {
        (void)v;
        bool ok = false;
        for (const char *name : known)
            ok = ok || k == name;
        if (!ok) {
            why = "unknown schema column '" + k + "'";
            return false;
        }
    }
    return true;
}

} // namespace

bool
parseJournalRecord(const std::string &line, std::string &fingerprint,
                   RunResult &result, std::string &why)
{
    JsonValue root;
    if (!JsonParser(line).parse(root) ||
        root.kind != JsonValue::Kind::Object) {
        why = "not a complete JSON object (truncated line?)";
        return false;
    }
    if (!knownKeysOnly(root,
                       {"v", "fp", "workload", "organization",
                        "failed", "error", "dopp", "output", "stats"},
                       why)) {
        return false;
    }

    const JsonValue *v = root.find("v");
    u64 version = 0;
    if (!v || !v->asU64(version) || version != journalSchemaVersion) {
        why = "unknown schema version";
        return false;
    }

    const JsonValue *fp = root.find("fp");
    const JsonValue *workload = root.find("workload");
    const JsonValue *organization = root.find("organization");
    const JsonValue *failed = root.find("failed");
    const JsonValue *error = root.find("error");
    const JsonValue *dopp = root.find("dopp");
    const JsonValue *output = root.find("output");
    const JsonValue *stats = root.find("stats");
    if (!fp || fp->kind != JsonValue::Kind::String || !workload ||
        workload->kind != JsonValue::Kind::String || !organization ||
        organization->kind != JsonValue::Kind::String || !failed ||
        failed->kind != JsonValue::Kind::Bool || !error ||
        error->kind != JsonValue::Kind::String || !dopp ||
        dopp->kind != JsonValue::Kind::Object || !output ||
        output->kind != JsonValue::Kind::Array || !stats ||
        stats->kind != JsonValue::Kind::Array) {
        why = "missing or mistyped required field";
        return false;
    }

    RunResult r;
    fingerprint = fp->text;
    r.workload = workload->text;
    r.organization = organization->text;
    r.failed = failed->boolean;
    r.error = error->text;

    if (!knownKeysOnly(*dopp,
                       {"tagEntries", "tagWays", "dataEntries",
                        "dataWays", "mapBits", "hashMode",
                        "hitLatency", "unified", "hashDataSetIndex",
                        "dataPolicy", "tagCountAwareData"},
                       why)) {
        return false;
    }
    auto doppU64 = [&dopp](const char *key, u64 fallback) {
        const JsonValue *f = dopp->find(key);
        u64 value = 0;
        return f && f->asU64(value) ? value : fallback;
    };
    DoppConfig &dc = r.doppConfig;
    dc.tagEntries = static_cast<u32>(doppU64("tagEntries", 0));
    dc.tagWays = static_cast<u32>(doppU64("tagWays", 0));
    dc.dataEntries = static_cast<u32>(doppU64("dataEntries", 0));
    dc.dataWays = static_cast<u32>(doppU64("dataWays", 0));
    dc.mapBits = static_cast<unsigned>(doppU64("mapBits", 0));
    dc.hashMode = static_cast<MapHashMode>(doppU64("hashMode", 0));
    dc.hitLatency = doppU64("hitLatency", 0);
    dc.unified = doppU64("unified", 0) != 0;
    dc.hashDataSetIndex = doppU64("hashDataSetIndex", 1) != 0;
    dc.dataPolicy = static_cast<ReplPolicy>(doppU64("dataPolicy", 0));
    dc.tagCountAwareData = doppU64("tagCountAwareData", 0) != 0;

    r.output.reserve(output->array.size());
    for (const JsonValue &e : output->array) {
        double x = 0.0;
        if (!e.asDouble(x)) {
            why = "non-numeric output element";
            return false;
        }
        r.output.push_back(x);
    }

    // Rebuild the snapshot in record order; "u" carries an exact u64,
    // "d" a shortest-round-trip real.
    std::vector<StatValue> entries;
    entries.reserve(stats->array.size());
    for (const JsonValue &e : stats->array) {
        if (e.kind != JsonValue::Kind::Object ||
            !knownKeysOnly(e, {"n", "u", "d"}, why)) {
            if (why.empty())
                why = "malformed stat entry";
            return false;
        }
        const JsonValue *n = e.find("n");
        const JsonValue *u = e.find("u");
        const JsonValue *d = e.find("d");
        if (!n || n->kind != JsonValue::Kind::String ||
            (!u && !d) || (u && d)) {
            why = "malformed stat entry";
            return false;
        }
        StatValue sv;
        sv.name = n->text;
        if (u) {
            sv.integral = true;
            if (!u->asU64(sv.u)) {
                why = "stat '" + sv.name + "': bad counter value";
                return false;
            }
        } else {
            sv.integral = false;
            if (!d->asDouble(sv.d)) {
                why = "stat '" + sv.name + "': bad real value";
                return false;
            }
        }
        entries.push_back(std::move(sv));
    }
    r.stats = StatSnapshot::fromValues(std::move(entries));

    deriveCompatViews(r);
    result = std::move(r);
    return true;
}

LoadedJournal
loadJournal(const std::string &path)
{
    LoadedJournal out;
    out.bytes = fileSizeBytes(path);

    std::ifstream in(path);
    if (!in)
        return out; // missing journal: nothing completed yet

    std::string line;
    u64 lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::string fingerprint;
        RunResult r;
        std::string why;
        if (!parseJournalRecord(line, fingerprint, r, why)) {
            warn("journal '%s': line %llu: %s; the affected config "
                 "will re-run",
                 path.c_str(),
                 static_cast<unsigned long long>(lineNo),
                 why.c_str());
            ++out.recordsDiscarded;
            continue;
        }
        ++out.recordsLoaded;
        out.records[fingerprint] = std::move(r); // last record wins
    }
    return out;
}

} // namespace dopp
