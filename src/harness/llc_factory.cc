#include "llc_factory.hh"

#include <unordered_map>
#include <utility>

#include "util/logging.hh"

namespace dopp
{

namespace
{

struct Factory
{
    std::unordered_map<std::string, LlcBuilder> builders;
    std::vector<std::string> order; ///< registration order
};

/** Bare registration storage. registerLlc() writes here directly so
 * registerBuiltinLlcs() can run while a lookup is ensuring the
 * built-ins (no re-entrant static initialization). */
Factory &
storage()
{
    static Factory f;
    return f;
}

/** Lookups go through here: built-ins register on first use, so a
 * static-archive link cannot drop them as unreferenced objects. */
Factory &
factory()
{
    registerBuiltinLlcs();
    return storage();
}

} // namespace

void
registerLlc(const std::string &name, LlcBuilder builder)
{
    if (name.empty())
        fatal("llc factory: empty organization name");
    if (!builder)
        fatal("llc factory: null builder for '%s'", name.c_str());
    Factory &f = storage();
    auto [it, inserted] = f.builders.emplace(name, std::move(builder));
    if (!inserted) {
        fatal("llc factory: organization '%s' registered twice",
              name.c_str());
    }
    f.order.push_back(name);
}

bool
llcRegistered(const std::string &name)
{
    Factory &f = factory();
    return f.builders.find(name) != f.builders.end();
}

std::vector<std::string>
registeredLlcNames()
{
    return factory().order;
}

LlcBuilt
buildLlc(const std::string &name, MainMemory &memory,
         const ApproxRegistry &registry, const RunConfig &cfg,
         StatRegistry &stats)
{
    Factory &f = factory();
    auto it = f.builders.find(name);
    if (it == f.builders.end()) {
        std::string known;
        for (const std::string &n : f.order) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("llc factory: unknown organization '%s' (registered: %s)",
              name.c_str(), known.c_str());
    }
    LlcBuilt built = it->second(memory, registry, cfg, stats);
    if (!built.llc)
        fatal("llc factory: builder '%s' returned no LLC", name.c_str());
    return built;
}

} // namespace dopp
