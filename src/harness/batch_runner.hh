/**
 * @file
 * Parallel batch experiment runner: a fixed-size thread pool draining a
 * work queue of independent RunConfigs, plus the campaign resilience
 * layer (DESIGN.md §11) — journaled checkpoint/resume, per-run
 * watchdogs, retry with backoff, and graceful signal shutdown.
 *
 * Determinism contract (see DESIGN.md §9): every run is a pure function
 * of its own RunConfig — workload inputs are seeded from
 * cfg.workload.seed, the fault trace from cfg.fault.seed, and
 * runWorkload reads no environment or global mutable state — so the
 * per-config RunResults of a batch are bit-identical for any job count
 * (including the serial jobs=1 path) and any submission order. The
 * resilience layer leans on the same contract twice over: a journaled
 * result can replace a re-execution bit-for-bit, and a retried run is
 * re-seeded identically, so its outcome is still a pure function of the
 * config.
 *
 * Robustness: a run that throws is reported as a failed RunResult
 * (failed=true, error=what()) without disturbing the pool or the other
 * runs; fatal()/panic() remain process-fatal by design (configuration
 * errors and simulator bugs should kill a sweep loudly). Cancellation
 * is cooperative: runs already executing finish, queued runs are
 * marked failed with error "cancelled" and still reported through
 * onProgress.
 */

#ifndef DOPP_HARNESS_BATCH_RUNNER_HH
#define DOPP_HARNESS_BATCH_RUNNER_HH

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "util/stats.hh"

namespace dopp
{

/**
 * Progress report for one finished (cancelled, failed, resumed or
 * completed) run. Non-copyable on purpose: @ref result refers to the
 * runner's slot for this run and is only guaranteed valid for the
 * duration of the onProgress callback — copy the RunResult itself
 * (not the BatchProgress) if you need it afterwards.
 */
struct BatchProgress
{
    size_t index;     ///< submission index of the run
    size_t completed; ///< runs finished so far, this one included
    size_t total;     ///< batch size
    bool resumed;     ///< reused from the journal, not executed
    const RunResult &result;

    BatchProgress(size_t index, size_t completed, size_t total,
                  bool resumed, const RunResult &result)
        : index(index), completed(completed), total(total),
          resumed(resumed), result(result)
    {
    }

    BatchProgress(const BatchProgress &) = delete;
    BatchProgress &operator=(const BatchProgress &) = delete;
};

/** Batch execution options. */
struct BatchOptions
{
    /**
     * Worker threads. 0: DOPP_JOBS from the environment, defaulting to
     * the hardware concurrency. 1: run serially on the calling thread
     * (no pool), the exact code path of a hand-rolled loop.
     */
    unsigned jobs = 0;

    /**
     * Called once per run as it finishes, from whichever thread ran
     * it, serialized by an internal mutex (never concurrently with
     * itself). Resumed runs report from the calling thread before any
     * worker starts. Must not throw. See BatchProgress for the
     * lifetime of the result reference.
     */
    std::function<void(const BatchProgress &)> onProgress;

    /**
     * Optional cooperative cancellation flag (pair with
     * installBatchSignalHandler() for ^C handling). Checked before
     * each run starts and between retry backoff slices; once set,
     * remaining queued runs are marked failed with error "cancelled"
     * and the batch returns as soon as in-flight runs finish.
     */
    const std::atomic<bool> *cancel = nullptr;

    /**
     * Per-run watchdog in wall-clock milliseconds (0: none). A run
     * exceeding the deadline is aborted cooperatively — the watchdog
     * sets the run's abort flag, the access path throws RunAborted,
     * and the run is marked failed with error "timeout" — without
     * killing the worker or disturbing the rest of the pool. The
     * deadline covers one attempt; each retry gets a fresh one.
     */
    u64 runTimeoutMs = 0;

    /**
     * Abort-poll granularity in simulated accesses handed to each
     * run's SimRuntime (0: keep the 4096-access default). A tighter
     * interval shortens the latency between the watchdog setting the
     * abort flag and the run unwinding; it never affects a completed
     * run's results (excluded from the config fingerprint).
     */
    u64 abortPollAccesses = 0;

    /**
     * Retries per run after a retryable failure (timeout or an
     * exception; "cancelled" and empty-workloadName configs never
     * retry). Attempt n sleeps retryBackoffMs << (n-1) plus up to 50%
     * deterministic jitter derived from (fingerprint, attempt), then
     * re-executes from the identical config — by the determinism
     * contract the retried run is the same pure function of the
     * config.
     */
    unsigned maxRetries = 0;

    /** Base of the exponential retry backoff, in milliseconds. */
    u64 retryBackoffMs = 100;

    /**
     * Optional registry for campaign counters, registered under
     * "batch": runsExecuted, runsResumed, runsRetried, runsTimedOut,
     * runsFailed, journalBytes. Registration is fatal on duplicates,
     * so pass a fresh registry (or a fresh group path) per campaign.
     */
    StatRegistry *stats = nullptr;
};

/** Everything a resumable campaign reports beyond the results. */
struct BatchOutcome
{
    /** Per-config results in submission order (resumed or executed). */
    std::vector<RunResult> results;

    size_t runsResumed = 0;  ///< reused from the journal
    size_t runsExecuted = 0; ///< actually (re-)executed
    size_t runsRetried = 0;  ///< retry attempts performed
    size_t runsTimedOut = 0; ///< watchdog expirations (all attempts)
    size_t runsFailed = 0;   ///< results with failed=true

    /** Whether the cancel flag cut the campaign short; if so the
     * journal holds every completed run and re-running the same
     * command resumes the remainder. */
    bool interrupted = false;
};

/** Resolve an effective job count: @p jobs, or DOPP_JOBS, or all
 * hardware threads. Always at least 1; fatal on a garbage DOPP_JOBS. */
unsigned batchJobs(unsigned jobs = 0);

/**
 * Run every config in @p configs (each names its benchmark via
 * RunConfig::workloadName) and return the RunResults in submission
 * order. See the determinism contract above. Watchdog/retry options
 * apply; no journal is read or written.
 */
std::vector<RunResult> runBatch(const std::vector<RunConfig> &configs,
                                const BatchOptions &options = {});

/**
 * Resumable campaign: like runBatch, but checkpointed through the
 * JSONL journal at @p journal_path (harness/journal.hh).
 *
 * Before executing anything, the journal is loaded and every config
 * whose fingerprint matches a completed (non-failed) record — and
 * which carries no observation hooks (configResumable) — is resumed:
 * its recorded result is emitted through onProgress (resumed=true,
 * from the calling thread) and placed in the outcome without
 * re-execution. The remainder executes on the pool; each success is
 * appended to the journal (one fsync'd record) *before* its progress
 * callback, so any run the caller has seen complete is already
 * persisted. Failed and cancelled runs are never journaled — they
 * re-run on the next resume.
 *
 * By the determinism contract, a campaign killed at any point and
 * resumed with any job count produces bit-identical final results to
 * an uninterrupted jobs=1 execution. An empty @p journal_path is
 * fatal; pass runBatch for journal-less execution.
 */
BatchOutcome runBatchResumable(const std::vector<RunConfig> &configs,
                               const std::string &journal_path,
                               const BatchOptions &options = {});

/**
 * Install a SIGINT/SIGTERM handler that flips a process-wide cancel
 * flag (idempotent; first call wins). Pass the returned flag as
 * BatchOptions::cancel: the first signal lets in-flight runs finish
 * and the journal flush (and restores the default disposition), so a
 * second signal kills the process the normal way. Async-signal-safe.
 *
 * @return the cancel flag the handler sets.
 */
const std::atomic<bool> *installBatchSignalHandler();

} // namespace dopp

#endif // DOPP_HARNESS_BATCH_RUNNER_HH
