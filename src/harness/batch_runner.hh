/**
 * @file
 * Parallel batch experiment runner: a fixed-size thread pool draining a
 * work queue of independent RunConfigs.
 *
 * Determinism contract (see DESIGN.md §9): every run is a pure function
 * of its own RunConfig — workload inputs are seeded from
 * cfg.workload.seed, the fault trace from cfg.fault.seed, and
 * runWorkload reads no environment or global mutable state — so the
 * per-config RunResults of a batch are bit-identical for any job count
 * (including the serial jobs=1 path) and any submission order.
 *
 * Robustness: a run that throws is reported as a failed RunResult
 * (failed=true, error=what()) without disturbing the pool or the other
 * runs; fatal()/panic() remain process-fatal by design (configuration
 * errors and simulator bugs should kill a sweep loudly). Cancellation
 * is cooperative: runs already executing finish, queued runs are
 * marked failed with error "cancelled".
 */

#ifndef DOPP_HARNESS_BATCH_RUNNER_HH
#define DOPP_HARNESS_BATCH_RUNNER_HH

#include <atomic>
#include <functional>
#include <vector>

#include "harness/experiment.hh"

namespace dopp
{

/** Progress report for one finished (or cancelled) run. */
struct BatchProgress
{
    size_t index;     ///< submission index of the run
    size_t completed; ///< runs finished so far, this one included
    size_t total;     ///< batch size
    const RunResult &result;
};

/** Batch execution options. */
struct BatchOptions
{
    /**
     * Worker threads. 0: DOPP_JOBS from the environment, defaulting to
     * the hardware concurrency. 1: run serially on the calling thread
     * (no pool), the exact code path of a hand-rolled loop.
     */
    unsigned jobs = 0;

    /**
     * Called once per run as it finishes, from whichever thread ran
     * it, serialized by an internal mutex (never concurrently with
     * itself). Must not throw.
     */
    std::function<void(const BatchProgress &)> onProgress;

    /**
     * Optional cooperative cancellation flag. Checked before each run
     * starts; once set, remaining queued runs are marked failed with
     * error "cancelled" and runBatch returns as soon as in-flight runs
     * finish.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** Resolve an effective job count: @p jobs, or DOPP_JOBS, or all
 * hardware threads. Always at least 1; fatal on a garbage DOPP_JOBS. */
unsigned batchJobs(unsigned jobs = 0);

/**
 * Run every config in @p configs (each names its benchmark via
 * RunConfig::workloadName) and return the RunResults in submission
 * order. See the determinism contract above.
 */
std::vector<RunResult> runBatch(const std::vector<RunConfig> &configs,
                                const BatchOptions &options = {});

} // namespace dopp

#endif // DOPP_HARNESS_BATCH_RUNNER_HH
