/**
 * @file
 * Self-registering LLC factory: maps organization names (the
 * llcKindName() strings) to builder functions, replacing the
 * hard-coded switch the harness used to grow for every new
 * organization. The five built-in organizations register themselves
 * (llc_builders.cc); experiments and tests may add their own with
 * registerLlc() before calling runWorkload().
 */

#ifndef DOPP_HARNESS_LLC_FACTORY_HH
#define DOPP_HARNESS_LLC_FACTORY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dopp_engine.hh"
#include "core/split_llc.hh"
#include "sim/llc.hh"
#include "sim/memory.hh"
#include "util/stats.hh"

namespace dopp
{

struct RunConfig;

/** What a builder hands back to the harness. */
struct LlcBuilt
{
    std::unique_ptr<LastLevelCache> llc;

    /** Set when the organization is the split one (per-half stats). */
    const SplitLlc *split = nullptr;

    /** Set when a Doppelgänger engine is reachable (occupancy). */
    const DoppEngine *dopp = nullptr;

    /** Geometry actually used, for the energy model; defaulted for
     * organizations without a Doppelgänger engine. */
    DoppConfig doppConfig;
};

/**
 * Builds one LLC organization for a run. The builder registers the
 * organization's counters into @p stats (group "llc" by convention)
 * and may consult any RunConfig knob.
 */
using LlcBuilder = std::function<LlcBuilt(
    MainMemory &memory, const ApproxRegistry &registry,
    const RunConfig &cfg, StatRegistry &stats)>;

/**
 * Register @p builder under @p name. Registering a name twice is
 * fatal (catches accidental shadowing of a built-in organization).
 */
void registerLlc(const std::string &name, LlcBuilder builder);

/** Whether @p name has a registered builder. */
bool llcRegistered(const std::string &name);

/** Registered organization names, in registration order. */
std::vector<std::string> registeredLlcNames();

/**
 * Build the organization registered under @p name; fatal if @p name
 * is unknown (the message lists what is registered).
 */
LlcBuilt buildLlc(const std::string &name, MainMemory &memory,
                  const ApproxRegistry &registry, const RunConfig &cfg,
                  StatRegistry &stats);

/** Force registration of the five built-in organizations. Called by
 * the factory itself; callable from tests that enumerate names. */
void registerBuiltinLlcs();

} // namespace dopp

#endif // DOPP_HARNESS_LLC_FACTORY_HH
