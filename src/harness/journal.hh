/**
 * @file
 * Journaled checkpoint store for batch campaigns (DESIGN.md §11).
 *
 * Every finished run is appended to a JSONL journal as one
 * self-describing record keyed by a deterministic *config
 * fingerprint* — a hash over every result-affecting RunConfig field.
 * Records are written with a single O_APPEND write(2) + fsync(2)
 * (util/fileio.hh), so after a crash the journal is parseable up to,
 * at worst, one truncated final line. A resumed campaign
 * (runBatchResumable, harness/batch_runner.hh) loads the journal,
 * reuses the record of every fingerprint-matching completed run, and
 * re-executes only the remainder; the determinism contract (§9) makes
 * the reconstructed results bit-identical to a fresh execution.
 *
 * What a record carries: workload, organization, failure state, the
 * full ordered StatRegistry snapshot (exact u64 counters, shortest-
 * round-trip reals), the application output vector and the
 * Doppelgänger geometry. The typed compatibility views on RunResult
 * (LlcStats, HierarchyStats, fault tallies, guardrail scalars) are
 * re-derived from the snapshot on load. NOT persisted: the raw
 * fault-event trace and the guardrail's degradation intervals —
 * campaigns that analyse those re-run without a journal.
 *
 * Corruption tolerance (loadJournal): a truncated or otherwise
 * unparseable line, an unknown schema version or column, or a record
 * missing required fields is discarded with a warning — the affected
 * config simply re-runs. A duplicate fingerprint keeps the *last*
 * record (a later campaign's result supersedes an earlier one).
 */

#ifndef DOPP_HARNESS_JOURNAL_HH
#define DOPP_HARNESS_JOURNAL_HH

#include <mutex>
#include <string>
#include <unordered_map>

#include "harness/experiment.hh"
#include "util/fileio.hh"

namespace dopp
{

/**
 * Deterministic fingerprint of every result-affecting field of
 * @p cfg: workload name/sizing/seed, organization, geometry, map
 * knobs, fault and QoR configuration. Excluded on purpose:
 * observation hooks (onSnapshot, tracePath), snapshotPeriod and the
 * batch runner's abort flag — they never change a RunResult (configs
 * carrying hooks are re-executed on resume rather than reused; see
 * runBatchResumable). Format: "<workload>/<organization>@<16 hex>".
 */
std::string configFingerprint(const RunConfig &cfg);

/** Whether a journal record for @p cfg may be *reused* on resume:
 * false for configs carrying observation hooks (onSnapshot, trace
 * capture), whose side effects a journal cannot replay. */
bool configResumable(const RunConfig &cfg);

/** One journal record serialized as a single JSON line (with the
 * trailing newline). */
std::string journalRecordJson(const std::string &fingerprint,
                              const RunResult &result);

/**
 * Parse one journal line. On success fills @p fingerprint and
 * @p result (compatibility views re-derived from the snapshot) and
 * returns true; on any malformation fills @p why and returns false.
 */
bool parseJournalRecord(const std::string &line,
                        std::string &fingerprint, RunResult &result,
                        std::string &why);

/** Contents of a loaded journal. */
struct LoadedJournal
{
    /** Last valid record per fingerprint. */
    std::unordered_map<std::string, RunResult> records;

    size_t recordsLoaded = 0;    ///< valid records (incl. superseded)
    size_t recordsDiscarded = 0; ///< malformed/unknown-schema lines
    u64 bytes = 0;               ///< journal size on disk
};

/**
 * Load the journal at @p path. A missing file is an empty journal;
 * malformed lines are discarded with a warning naming the path, the
 * 1-based line number and the reason (see corruption tolerance
 * above). Never fatal on content: the worst corruption can do is
 * force a re-run.
 */
LoadedJournal loadJournal(const std::string &path);

/**
 * Append handle for one campaign's journal. Thread-safe: the batch
 * runner's workers append from whichever thread finished the run.
 */
class RunJournal
{
  public:
    /** Open (creating if needed) the journal at @p path. */
    explicit RunJournal(const std::string &path) : log(path) {}

    /** Append the record for @p result under @p fingerprint.
     * @return bytes appended. */
    u64
    append(const std::string &fingerprint, const RunResult &result)
    {
        const std::string record =
            journalRecordJson(fingerprint, result);
        std::lock_guard<std::mutex> lock(mutex);
        return log.append(record);
    }

    const std::string &path() const { return log.path(); }
    u64 bytesAppended() const { return log.bytesAppended(); }
    u64 openedAtBytes() const { return log.openedAtBytes(); }

  private:
    std::mutex mutex;
    AppendLog log;
};

} // namespace dopp

#endif // DOPP_HARNESS_JOURNAL_HH
