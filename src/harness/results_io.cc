#include "results_io.hh"

#include <cstdlib>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "util/fileio.hh"
#include "util/logging.hh"

namespace dopp
{

std::vector<std::string>
resultStatColumns(const std::vector<RunResult> &results)
{
    std::vector<std::string> columns;
    std::unordered_set<std::string> seen;
    for (const RunResult &r : results) {
        for (const StatValue &v : r.stats.values()) {
            if (seen.insert(v.name).second)
                columns.push_back(v.name);
        }
    }
    return columns;
}

std::string
runResultCsvHeader(const RunResult &result)
{
    std::string out = "workload,organization";
    for (const StatValue &v : result.stats.values()) {
        out += ',';
        out += v.name;
    }
    return out;
}

std::string
runResultCsvRow(const RunResult &result)
{
    std::string out = result.workload + ',' + result.organization;
    for (const StatValue &v : result.stats.values()) {
        out += ',';
        out += v.str();
    }
    return out;
}

void
writeResultsCsv(const std::string &path,
                const std::vector<RunResult> &results)
{
    // Build the whole file in memory, then write-to-temp + rename so
    // a crash never leaves a truncated CSV behind (util/fileio.hh).
    const std::vector<std::string> columns = resultStatColumns(results);
    std::string out = "workload,organization";
    for (const std::string &c : columns) {
        out += ',';
        out += c;
    }
    out += '\n';

    for (const RunResult &r : results) {
        std::unordered_map<std::string, const StatValue *> byName;
        byName.reserve(r.stats.size());
        for (const StatValue &v : r.stats.values())
            byName.emplace(v.name, &v);
        out += r.workload + ',' + r.organization;
        for (const std::string &c : columns) {
            out += ',';
            auto it = byName.find(c);
            out += it == byName.end() ? std::string("0")
                                      : it->second->str();
        }
        out += '\n';
    }
    atomicWriteFile(path, out);
}

std::string
runResultJson(const RunResult &result)
{
    std::string out = "{\"workload\":\"" + result.workload +
        "\",\"organization\":\"" + result.organization +
        "\",\"stats\":" + result.stats.json() + '}';
    return out;
}

void
writeResultsJson(const std::string &path,
                 const std::vector<RunResult> &results)
{
    std::string out = "[\n";
    for (size_t i = 0; i < results.size(); ++i) {
        out += "  ";
        out += runResultJson(results[i]);
        if (i + 1 < results.size())
            out += ',';
        out += '\n';
    }
    out += "]\n";
    atomicWriteFile(path, out); // crash-safe: temp + rename
}

double
LoadedRunRow::value(const std::string &name) const
{
    for (const auto &[col, v] : values) {
        if (col == name)
            return v;
    }
    fatal("results row for %s/%s has no column '%s'",
          workload.c_str(), organization.c_str(), name.c_str());
    return 0.0;
}

namespace
{

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    for (char c : line) {
        if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else if (c != '\r') {
            cell += c;
        }
    }
    cells.push_back(cell);
    return cells;
}

} // namespace

std::vector<LoadedRunRow>
loadResultsCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("results csv '%s': cannot open for reading",
              path.c_str());

    std::string line;
    if (!std::getline(in, line))
        fatal("results csv '%s': line 1: empty file, expected a "
              "header row", path.c_str());

    const std::vector<std::string> header = splitCsvLine(line);
    if (header.size() < 3 || header[0] != "workload" ||
        header[1] != "organization") {
        fatal("results csv '%s': line 1: malformed header, expected "
              "'workload,organization,...' but got '%s'",
              path.c_str(), line.c_str());
    }

    std::vector<LoadedRunRow> rows;
    u64 lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        const std::vector<std::string> cells = splitCsvLine(line);
        if (cells.size() != header.size()) {
            fatal("results csv '%s': line %llu: %zu cells but the "
                  "header declares %zu columns",
                  path.c_str(),
                  static_cast<unsigned long long>(lineNo),
                  cells.size(), header.size());
        }
        LoadedRunRow row;
        row.workload = cells[0];
        row.organization = cells[1];
        for (size_t i = 2; i < cells.size(); ++i) {
            const char *text = cells[i].c_str();
            char *end = nullptr;
            const double v = std::strtod(text, &end);
            if (end == text || *end != '\0') {
                fatal("results csv '%s': line %llu: column '%s': "
                      "'%s' is not a number",
                      path.c_str(),
                      static_cast<unsigned long long>(lineNo),
                      header[i].c_str(), cells[i].c_str());
            }
            row.values.emplace_back(header[i], v);
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace dopp
