#include "results_io.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace dopp
{

namespace
{

/** Fields serialized for every run, as (name, getter) pairs. */
struct Field
{
    const char *name;
    u64 (*get)(const RunResult &);
};

const Field numericFields[] = {
    {"runtime_cycles", [](const RunResult &r) { return r.runtime; }},
    {"accesses",
     [](const RunResult &r) { return r.hierarchy.accesses; }},
    {"loads", [](const RunResult &r) { return r.hierarchy.loads; }},
    {"stores", [](const RunResult &r) { return r.hierarchy.stores; }},
    {"l1_hits", [](const RunResult &r) { return r.hierarchy.l1Hits; }},
    {"l1_misses",
     [](const RunResult &r) { return r.hierarchy.l1Misses; }},
    {"l2_hits", [](const RunResult &r) { return r.hierarchy.l2Hits; }},
    {"l2_misses",
     [](const RunResult &r) { return r.hierarchy.l2Misses; }},
    {"llc_fetches", [](const RunResult &r) { return r.llc.fetches; }},
    {"llc_hits", [](const RunResult &r) { return r.llc.fetchHits; }},
    {"llc_misses",
     [](const RunResult &r) { return r.llc.fetchMisses; }},
    {"llc_writebacks_in",
     [](const RunResult &r) { return r.llc.writebacksIn; }},
    {"llc_evictions",
     [](const RunResult &r) { return r.llc.evictions; }},
    {"llc_data_evictions",
     [](const RunResult &r) { return r.llc.dataEvictions; }},
    {"llc_dirty_writebacks",
     [](const RunResult &r) { return r.llc.dirtyWritebacks; }},
    {"llc_back_invalidations",
     [](const RunResult &r) { return r.llc.backInvalidations; }},
    {"tag_reads", [](const RunResult &r) { return r.llc.tagArray.reads; }},
    {"tag_writes",
     [](const RunResult &r) { return r.llc.tagArray.writes; }},
    {"mtag_reads",
     [](const RunResult &r) { return r.llc.mtagArray.reads; }},
    {"mtag_writes",
     [](const RunResult &r) { return r.llc.mtagArray.writes; }},
    {"data_reads",
     [](const RunResult &r) { return r.llc.dataArray.reads; }},
    {"data_writes",
     [](const RunResult &r) { return r.llc.dataArray.writes; }},
    {"map_gens", [](const RunResult &r) { return r.llc.mapGens; }},
    {"mem_reads", [](const RunResult &r) { return r.memReads; }},
    {"mem_writes", [](const RunResult &r) { return r.memWrites; }},
};

} // namespace

std::string
runResultCsvHeader()
{
    std::string out = "workload,organization";
    for (const auto &f : numericFields) {
        out += ',';
        out += f.name;
    }
    out += ",tags_per_data_entry";
    return out;
}

std::string
runResultCsvRow(const RunResult &result)
{
    std::ostringstream out;
    out << result.workload << ',' << result.organization;
    for (const auto &f : numericFields)
        out << ',' << f.get(result);
    out << ',' << result.tagsPerDataEntry;
    return out.str();
}

void
writeResultsCsv(const std::string &path,
                const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(f, "%s\n", runResultCsvHeader().c_str());
    for (const auto &r : results)
        std::fprintf(f, "%s\n", runResultCsvRow(r).c_str());
    std::fclose(f);
}

std::string
runResultJson(const RunResult &result)
{
    std::ostringstream out;
    out << "{\"workload\":\"" << result.workload
        << "\",\"organization\":\"" << result.organization << '"';
    for (const auto &f : numericFields)
        out << ",\"" << f.name << "\":" << f.get(result);
    out << ",\"tags_per_data_entry\":" << result.tagsPerDataEntry
        << '}';
    return out.str();
}

void
writeResultsJson(const std::string &path,
                 const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f, "  %s%s\n", runResultJson(results[i]).c_str(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
}

} // namespace dopp
