#include "results_io.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace dopp
{

namespace
{

/** Fields serialized for every run, as (name, getter) pairs. */
struct Field
{
    const char *name;
    u64 (*get)(const RunResult &);
};

const Field numericFields[] = {
    {"runtime_cycles", [](const RunResult &r) { return r.runtime; }},
    {"accesses",
     [](const RunResult &r) { return r.hierarchy.accesses; }},
    {"loads", [](const RunResult &r) { return r.hierarchy.loads; }},
    {"stores", [](const RunResult &r) { return r.hierarchy.stores; }},
    {"l1_hits", [](const RunResult &r) { return r.hierarchy.l1Hits; }},
    {"l1_misses",
     [](const RunResult &r) { return r.hierarchy.l1Misses; }},
    {"l2_hits", [](const RunResult &r) { return r.hierarchy.l2Hits; }},
    {"l2_misses",
     [](const RunResult &r) { return r.hierarchy.l2Misses; }},
    {"llc_fetches", [](const RunResult &r) { return r.llc.fetches; }},
    {"llc_hits", [](const RunResult &r) { return r.llc.fetchHits; }},
    {"llc_misses",
     [](const RunResult &r) { return r.llc.fetchMisses; }},
    {"llc_writebacks_in",
     [](const RunResult &r) { return r.llc.writebacksIn; }},
    {"llc_evictions",
     [](const RunResult &r) { return r.llc.evictions; }},
    {"llc_data_evictions",
     [](const RunResult &r) { return r.llc.dataEvictions; }},
    {"llc_dirty_writebacks",
     [](const RunResult &r) { return r.llc.dirtyWritebacks; }},
    {"llc_back_invalidations",
     [](const RunResult &r) { return r.llc.backInvalidations; }},
    {"tag_reads", [](const RunResult &r) { return r.llc.tagArray.reads; }},
    {"tag_writes",
     [](const RunResult &r) { return r.llc.tagArray.writes; }},
    {"mtag_reads",
     [](const RunResult &r) { return r.llc.mtagArray.reads; }},
    {"mtag_writes",
     [](const RunResult &r) { return r.llc.mtagArray.writes; }},
    {"data_reads",
     [](const RunResult &r) { return r.llc.dataArray.reads; }},
    {"data_writes",
     [](const RunResult &r) { return r.llc.dataArray.writes; }},
    {"map_gens", [](const RunResult &r) { return r.llc.mapGens; }},
    {"mem_reads", [](const RunResult &r) { return r.memReads; }},
    {"mem_writes", [](const RunResult &r) { return r.memWrites; }},
    {"mem_faults",
     [](const RunResult &r) {
         return r.fault.injected[static_cast<size_t>(
             FaultDomain::MemoryData)];
     }},
    {"llc_faults_injected",
     [](const RunResult &r) { return r.llc.faultsInjected; }},
    {"faults_detected",
     [](const RunResult &r) { return r.llc.faultsDetected; }},
    {"faults_repaired",
     [](const RunResult &r) { return r.llc.faultsRepaired; }},
    {"repair_tags_dropped",
     [](const RunResult &r) { return r.llc.repairTagsDropped; }},
    {"repair_entries_dropped",
     [](const RunResult &r) { return r.llc.repairEntriesDropped; }},
    {"degraded_fills",
     [](const RunResult &r) { return r.llc.degradedFills; }},
    {"guardrail_degradations",
     [](const RunResult &r) { return r.guardrailDegradations; }},
    {"guardrail_degraded_ops",
     [](const RunResult &r) { return r.guardrailDegradedOps; }},
};

} // namespace

std::string
runResultCsvHeader()
{
    std::string out = "workload,organization";
    for (const auto &f : numericFields) {
        out += ',';
        out += f.name;
    }
    out += ",tags_per_data_entry,guardrail_estimate";
    return out;
}

std::string
runResultCsvRow(const RunResult &result)
{
    std::ostringstream out;
    out << result.workload << ',' << result.organization;
    for (const auto &f : numericFields)
        out << ',' << f.get(result);
    out << ',' << result.tagsPerDataEntry << ','
        << result.guardrailEstimate;
    return out.str();
}

void
writeResultsCsv(const std::string &path,
                const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(f, "%s\n", runResultCsvHeader().c_str());
    for (const auto &r : results)
        std::fprintf(f, "%s\n", runResultCsvRow(r).c_str());
    std::fclose(f);
}

std::string
runResultJson(const RunResult &result)
{
    std::ostringstream out;
    out << "{\"workload\":\"" << result.workload
        << "\",\"organization\":\"" << result.organization << '"';
    for (const auto &f : numericFields)
        out << ",\"" << f.name << "\":" << f.get(result);
    out << ",\"tags_per_data_entry\":" << result.tagsPerDataEntry
        << ",\"guardrail_estimate\":" << result.guardrailEstimate
        << '}';
    return out.str();
}

void
writeResultsJson(const std::string &path,
                 const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f, "  %s%s\n", runResultJson(results[i]).c_str(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
}

double
LoadedRunRow::value(const std::string &name) const
{
    for (const auto &[col, v] : values) {
        if (col == name)
            return v;
    }
    fatal("results row for %s/%s has no column '%s'",
          workload.c_str(), organization.c_str(), name.c_str());
    return 0.0;
}

namespace
{

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    for (char c : line) {
        if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else if (c != '\r') {
            cell += c;
        }
    }
    cells.push_back(cell);
    return cells;
}

} // namespace

std::vector<LoadedRunRow>
loadResultsCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("results csv '%s': cannot open for reading",
              path.c_str());

    std::string line;
    if (!std::getline(in, line))
        fatal("results csv '%s': line 1: empty file, expected a "
              "header row", path.c_str());

    const std::vector<std::string> header = splitCsvLine(line);
    if (header.size() < 3 || header[0] != "workload" ||
        header[1] != "organization") {
        fatal("results csv '%s': line 1: malformed header, expected "
              "'workload,organization,...' but got '%s'",
              path.c_str(), line.c_str());
    }

    std::vector<LoadedRunRow> rows;
    u64 lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        const std::vector<std::string> cells = splitCsvLine(line);
        if (cells.size() != header.size()) {
            fatal("results csv '%s': line %llu: %zu cells but the "
                  "header declares %zu columns",
                  path.c_str(),
                  static_cast<unsigned long long>(lineNo),
                  cells.size(), header.size());
        }
        LoadedRunRow row;
        row.workload = cells[0];
        row.organization = cells[1];
        for (size_t i = 2; i < cells.size(); ++i) {
            const char *text = cells[i].c_str();
            char *end = nullptr;
            const double v = std::strtod(text, &end);
            if (end == text || *end != '\0') {
                fatal("results csv '%s': line %llu: column '%s': "
                      "'%s' is not a number",
                      path.c_str(),
                      static_cast<unsigned long long>(lineNo),
                      header[i].c_str(), cells[i].c_str());
            }
            row.values.emplace_back(header[i], v);
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace dopp
