#include "report.hh"

#include <algorithm>
#include <cstdarg>

namespace dopp
{

std::string
strfmt(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

std::string
pct(double fraction, int decimals)
{
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

std::string
times(double ratio, int decimals)
{
    return strfmt("%.*fx", decimals, ratio);
}

void
TextTable::print(const std::string &title) const
{
    std::printf("\n=== %s ===\n", title.c_str());

    std::vector<size_t> widths(head.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(head);
    for (const auto &r : rows)
        widen(r);

    auto printRow = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            std::printf("%-*s", static_cast<int>(widths[i] + 2),
                        cells[i].c_str());
        }
        std::printf("\n");
    };
    printRow(head);
    for (size_t i = 0; i < head.size(); ++i)
        std::printf("%s", std::string(widths[i] + 2, '-').c_str());
    std::printf("\n");
    for (const auto &r : rows)
        printRow(r);
}

} // namespace dopp
