/**
 * @file
 * Plain-text table formatting for the per-figure bench binaries, so
 * each prints the same rows/series its paper figure reports.
 */

#ifndef DOPP_HARNESS_REPORT_HH
#define DOPP_HARNESS_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

namespace dopp
{

/** Column-aligned text table printed to stdout. */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        head = std::move(cells);
    }

    /** Append one row (must match the header's arity). */
    void
    row(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    /** Render to stdout with a title line. */
    void print(const std::string &title) const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** printf-style std::string helper. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a fraction as a percentage, e.g. 0.379 → "37.9%". */
std::string pct(double fraction, int decimals = 1);

/** Format a ratio with an '×' suffix, e.g. 2.55 → "2.55x". */
std::string times(double ratio, int decimals = 2);

} // namespace dopp

#endif // DOPP_HARNESS_REPORT_HH
