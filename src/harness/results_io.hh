/**
 * @file
 * Result export: write RunResults as CSV or JSON so figure data can be
 * post-processed outside the simulator (plots, spreadsheets, CI
 * dashboards). Columns cover everything RunResult carries, including
 * the per-structure access counters the energy model consumes.
 */

#ifndef DOPP_HARNESS_RESULTS_IO_HH
#define DOPP_HARNESS_RESULTS_IO_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace dopp
{

/** The CSV header row matching runResultCsvRow(). */
std::string runResultCsvHeader();

/** One RunResult as a CSV row (no trailing newline). */
std::string runResultCsvRow(const RunResult &result);

/** Write @p results (with header) to @p path. Fatal on I/O errors. */
void writeResultsCsv(const std::string &path,
                     const std::vector<RunResult> &results);

/** One RunResult as a JSON object string. */
std::string runResultJson(const RunResult &result);

/** Write @p results as a JSON array to @p path. */
void writeResultsJson(const std::string &path,
                      const std::vector<RunResult> &results);

} // namespace dopp

#endif // DOPP_HARNESS_RESULTS_IO_HH
