/**
 * @file
 * Result export: write RunResults as CSV or JSON so figure data can be
 * post-processed outside the simulator (plots, spreadsheets, CI
 * dashboards). Columns are derived from the run's StatRegistry schema
 * (RunResult::stats): every counter any layer registered appears under
 * its dotted name, so a new counter shows up in the export the moment
 * it is registered — there is no separate serialization table to keep
 * in sync.
 */

#ifndef DOPP_HARNESS_RESULTS_IO_HH
#define DOPP_HARNESS_RESULTS_IO_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace dopp
{

/**
 * Stat columns for @p results: the union of every result's snapshot
 * names, in first-seen order. Runs with different stat schemas (e.g.
 * a fault campaign next to a clean run) merge into one column set;
 * absent values serialize as 0.
 */
std::vector<std::string>
resultStatColumns(const std::vector<RunResult> &results);

/** The CSV header row for @p result's own schema. */
std::string runResultCsvHeader(const RunResult &result);

/** One RunResult as a CSV row against its own schema (matches
 * runResultCsvHeader(result); no trailing newline). */
std::string runResultCsvRow(const RunResult &result);

/** Write @p results (with a union-schema header) to @p path. Fatal on
 * I/O errors. */
void writeResultsCsv(const std::string &path,
                     const std::vector<RunResult> &results);

/** One RunResult as a JSON object string: workload, organization and
 * the hierarchical stats object (StatSnapshot::json()). */
std::string runResultJson(const RunResult &result);

/** Write @p results as a JSON array to @p path. */
void writeResultsJson(const std::string &path,
                      const std::vector<RunResult> &results);

/**
 * One row of a results CSV read back for post-processing (campaign
 * aggregation, regression checks). Numeric cells are paired with the
 * header's column names in file order.
 */
struct LoadedRunRow
{
    std::string workload;
    std::string organization;
    std::vector<std::pair<std::string, double>> values;

    /** Value of column @p name. Fatal if the column is absent. */
    double value(const std::string &name) const;
};

/**
 * Load a results CSV written by writeResultsCsv. Hardened against
 * malformed input: a missing file, an empty file, a header without the
 * leading workload/organization columns, a row whose cell count
 * disagrees with the header, or a non-numeric cell are all fatal with
 * the file name, the 1-based line number and the reason.
 */
std::vector<LoadedRunRow> loadResultsCsv(const std::string &path);

} // namespace dopp

#endif // DOPP_HARNESS_RESULTS_IO_HH
