/**
 * @file
 * Result export: write RunResults as CSV or JSON so figure data can be
 * post-processed outside the simulator (plots, spreadsheets, CI
 * dashboards). Columns cover everything RunResult carries, including
 * the per-structure access counters the energy model consumes.
 */

#ifndef DOPP_HARNESS_RESULTS_IO_HH
#define DOPP_HARNESS_RESULTS_IO_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace dopp
{

/** The CSV header row matching runResultCsvRow(). */
std::string runResultCsvHeader();

/** One RunResult as a CSV row (no trailing newline). */
std::string runResultCsvRow(const RunResult &result);

/** Write @p results (with header) to @p path. Fatal on I/O errors. */
void writeResultsCsv(const std::string &path,
                     const std::vector<RunResult> &results);

/** One RunResult as a JSON object string. */
std::string runResultJson(const RunResult &result);

/** Write @p results as a JSON array to @p path. */
void writeResultsJson(const std::string &path,
                      const std::vector<RunResult> &results);

/**
 * One row of a results CSV read back for post-processing (campaign
 * aggregation, regression checks). Numeric cells are paired with the
 * header's column names in file order.
 */
struct LoadedRunRow
{
    std::string workload;
    std::string organization;
    std::vector<std::pair<std::string, double>> values;

    /** Value of column @p name. Fatal if the column is absent. */
    double value(const std::string &name) const;
};

/**
 * Load a results CSV written by writeResultsCsv. Hardened against
 * malformed input: a missing file, an empty file, a header without the
 * leading workload/organization columns, a row whose cell count
 * disagrees with the header, or a non-numeric cell are all fatal with
 * the file name, the 1-based line number and the reason.
 */
std::vector<LoadedRunRow> loadResultsCsv(const std::string &path);

} // namespace dopp

#endif // DOPP_HARNESS_RESULTS_IO_HH
