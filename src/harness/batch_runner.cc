#include "batch_runner.hh"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include <unistd.h>

#include "harness/journal.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workloads/runtime.hh"

namespace dopp
{

unsigned
batchJobs(unsigned jobs)
{
    if (jobs)
        return jobs;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<unsigned>(envU64("DOPP_JOBS", hw));
}

namespace
{

/** 64-bit FNV-1a (retry-jitter seeding; journal.cc keeps its own). */
u64
fnv1a64(const std::string &s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * One monitor thread arming cooperative deadlines for in-flight runs.
 * On expiry the run's abort flag is set; the access path notices and
 * throws RunAborted (workloads/runtime.hh), so the worker thread — and
 * the rest of the pool — survives the timeout.
 */
class Watchdog
{
  public:
    Watchdog() = default;

    ~Watchdog()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        cv.notify_one();
        if (monitor.joinable())
            monitor.join();
    }

    /** Arm a deadline @p timeout_ms from now that sets @p flag.
     * @return a handle for disarm(). */
    u64
    arm(u64 timeout_ms, std::atomic<bool> *flag)
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (!monitor.joinable())
            monitor = std::thread([this] { loop(); });
        const u64 id = nextId++;
        entries[id] = {Clock::now() +
                           std::chrono::milliseconds(timeout_ms),
                       flag};
        lock.unlock();
        cv.notify_one();
        return id;
    }

    /** Cancel deadline @p id (no-op if it already fired). */
    void
    disarm(u64 id)
    {
        std::lock_guard<std::mutex> lock(mutex);
        entries.erase(id);
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Entry
    {
        Clock::time_point deadline;
        std::atomic<bool> *flag;
    };

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        while (!stopping) {
            if (entries.empty()) {
                cv.wait(lock);
                continue;
            }
            auto earliest = entries.begin();
            for (auto it = std::next(earliest); it != entries.end();
                 ++it) {
                if (it->second.deadline < earliest->second.deadline)
                    earliest = it;
            }
            // Re-scan after every wake: arm() may have added an
            // earlier deadline, disarm() may have removed this one.
            if (cv.wait_until(lock, earliest->second.deadline) !=
                std::cv_status::timeout) {
                continue;
            }
            const auto now = Clock::now();
            for (auto it = entries.begin(); it != entries.end();) {
                if (it->second.deadline <= now) {
                    it->second.flag->store(
                        true, std::memory_order_release);
                    it = entries.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }

    std::mutex mutex;
    std::condition_variable cv;
    std::unordered_map<u64, Entry> entries;
    u64 nextId = 1;
    bool stopping = false;
    std::thread monitor;
};

/** Campaign counters under "batch" (null when no registry given). */
struct BatchCounters
{
    Counter *executed = nullptr;
    Counter *resumed = nullptr;
    Counter *retried = nullptr;
    Counter *timedOut = nullptr;
    Counter *failed = nullptr;
    Counter *journalBytes = nullptr;

    void
    init(StatRegistry *reg)
    {
        if (!reg)
            return;
        StatGroup g = reg->group("batch");
        executed = &g.counter("runsExecuted",
                              "runs actually (re-)executed");
        resumed = &g.counter("runsResumed",
                             "runs reused from the journal");
        retried = &g.counter("runsRetried",
                             "retry attempts performed");
        timedOut = &g.counter("runsTimedOut",
                              "per-run watchdog expirations");
        failed = &g.counter("runsFailed",
                            "runs that finished failed");
        journalBytes = &g.counter("journalBytes",
                                  "bytes appended to the journal");
    }
};

/** Shared state of one batch call; workers claim queue slots from the
 * atomic cursor, so the queue needs no locking of its own. */
struct BatchState
{
    const std::vector<RunConfig> &configs;
    const BatchOptions &opt;
    std::vector<RunResult> &results;

    /** Submission indices still to execute (post-resume). */
    std::vector<size_t> queue;

    /** Journaling (null for plain runBatch). */
    RunJournal *journal = nullptr;
    std::vector<std::string> fingerprints; // parallel to configs

    std::atomic<size_t> next{0};
    std::mutex progressMutex;
    size_t completed = 0; // guarded by progressMutex

    std::mutex tallyMutex; // guards tallies + counters + journaled
    BatchOutcome tallies;
    BatchCounters counters;
    std::unordered_set<std::string> journaled; // appended this campaign

    Watchdog watchdog;

    BatchState(const std::vector<RunConfig> &c, const BatchOptions &o,
               std::vector<RunResult> &r)
        : configs(c), opt(o), results(r)
    {
        counters.init(o.stats);
    }

    bool
    cancelRequested() const
    {
        return opt.cancel &&
            opt.cancel->load(std::memory_order_acquire);
    }
};

/** Mark @p r failed without losing its identifying fields. */
void
markFailed(RunResult &r, const RunConfig &cfg, const std::string &why)
{
    r.workload = cfg.workloadName;
    r.organization =
        cfg.llcName.empty() ? llcKindName(cfg.kind) : cfg.llcName;
    r.failed = true;
    r.error = why;
}

/** Whether a failed run may be retried: timeouts and run-thrown
 * exceptions are (crash-adjacent and bounded by maxRetries);
 * cancellation and configs with no workload never are. */
bool
retryableError(const std::string &error)
{
    return error != "cancelled" &&
        error != "config has no workloadName";
}

/**
 * Sleep the exponential backoff before retry @p attempt (1-based) of
 * @p index: retryBackoffMs << (attempt-1), plus up to 50% jitter drawn
 * deterministically from (fingerprint, attempt) so a rerun of the
 * same campaign backs off identically. Sleeps in short slices so a
 * cancel request cuts the wait short.
 * @return false if cancelled during the sleep.
 */
bool
backoffSleep(BatchState &st, size_t index, unsigned attempt)
{
    const std::string fp = st.fingerprints.empty()
        ? configFingerprint(st.configs[index])
        : st.fingerprints[index];
    Rng jitter(fnv1a64(fp) ^ attempt);
    const double base = static_cast<double>(
        st.opt.retryBackoffMs << (attempt - 1));
    u64 totalMs =
        static_cast<u64>(base * (1.0 + 0.5 * jitter.uniform()));
    while (totalMs > 0) {
        if (st.cancelRequested())
            return false;
        const u64 slice = std::min<u64>(totalMs, 20);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        totalMs -= slice;
    }
    return !st.cancelRequested();
}

void
bump(Counter *c, u64 n = 1)
{
    if (c)
        *c += n;
}

/** Execute (with watchdog + retries), journal, and report one run. */
void
runOne(BatchState &st, size_t index)
{
    const RunConfig &cfg = st.configs[index];
    RunResult &r = st.results[index];

    if (st.cancelRequested()) {
        markFailed(r, cfg, "cancelled");
    } else if (cfg.workloadName.empty()) {
        markFailed(r, cfg, "config has no workloadName");
    } else {
        for (unsigned attempt = 0;; ++attempt) {
            if (attempt > 0) {
                if (!backoffSleep(st, index, attempt)) {
                    markFailed(r, cfg, "cancelled");
                    break;
                }
                std::lock_guard<std::mutex> lock(st.tallyMutex);
                ++st.tallies.runsRetried;
                bump(st.counters.retried);
            }

            r = RunResult(); // clear any failed previous attempt
            std::atomic<bool> abort{false};
            RunConfig attemptCfg = cfg; // re-seeded identically
            attemptCfg.abortFlag = &abort;
            if (st.opt.abortPollAccesses)
                attemptCfg.abortPollAccesses =
                    st.opt.abortPollAccesses;
            u64 deadline = 0;
            if (st.opt.runTimeoutMs)
                deadline = st.watchdog.arm(st.opt.runTimeoutMs,
                                           &abort);
            bool timedOut = false;
            try {
                r = runWorkload(attemptCfg.workloadName, attemptCfg);
            } catch (const RunAborted &) {
                markFailed(r, cfg, "timeout");
                timedOut = true;
            } catch (const std::exception &e) {
                markFailed(r, cfg, e.what());
            } catch (...) {
                markFailed(r, cfg, "unknown exception");
            }
            if (deadline)
                st.watchdog.disarm(deadline);

            {
                std::lock_guard<std::mutex> lock(st.tallyMutex);
                ++st.tallies.runsExecuted;
                bump(st.counters.executed);
                if (timedOut) {
                    ++st.tallies.runsTimedOut;
                    bump(st.counters.timedOut);
                }
            }

            if (!r.failed || !retryableError(r.error) ||
                attempt >= st.opt.maxRetries || st.cancelRequested()) {
                break;
            }
        }
    }

    // Persist before reporting: any run the caller has seen complete
    // is already in the journal. Failed runs are never journaled —
    // they re-run on the next resume.
    if (st.journal && !r.failed) {
        const std::string &fp = st.fingerprints[index];
        bool append = false;
        {
            std::lock_guard<std::mutex> lock(st.tallyMutex);
            append = st.journaled.insert(fp).second;
        }
        if (append) {
            const u64 bytes = st.journal->append(fp, r);
            std::lock_guard<std::mutex> lock(st.tallyMutex);
            bump(st.counters.journalBytes, bytes);
        }
    }

    if (r.failed) {
        std::lock_guard<std::mutex> lock(st.tallyMutex);
        ++st.tallies.runsFailed;
        bump(st.counters.failed);
    }

    std::lock_guard<std::mutex> lock(st.progressMutex);
    ++st.completed;
    if (st.opt.onProgress) {
        BatchProgress p{index, st.completed, st.configs.size(), false,
                        r};
        st.opt.onProgress(p);
    }
}

void
workerLoop(BatchState &st)
{
    const size_t total = st.queue.size();
    for (;;) {
        const size_t slot =
            st.next.fetch_add(1, std::memory_order_relaxed);
        if (slot >= total)
            return;
        runOne(st, st.queue[slot]);
    }
}

/** Drain st.queue on the pool (or the calling thread for jobs<=1). */
void
drainQueue(BatchState &st)
{
    if (st.queue.empty())
        return;

    const unsigned jobs = std::min<unsigned>(
        batchJobs(st.opt.jobs),
        static_cast<unsigned>(st.queue.size()));

    if (jobs <= 1) {
        workerLoop(st); // serial path: the caller's own thread
        return;
    }

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        pool.emplace_back([&st]() { workerLoop(st); });
    for (auto &t : pool)
        t.join();
}

} // namespace

std::vector<RunResult>
runBatch(const std::vector<RunConfig> &configs,
         const BatchOptions &options)
{
    std::vector<RunResult> results(configs.size());
    if (configs.empty())
        return results;

    BatchState st(configs, options, results);
    st.queue.resize(configs.size());
    for (size_t i = 0; i < configs.size(); ++i)
        st.queue[i] = i;
    drainQueue(st);
    return results;
}

BatchOutcome
runBatchResumable(const std::vector<RunConfig> &configs,
                  const std::string &journal_path,
                  const BatchOptions &options)
{
    if (journal_path.empty())
        fatal("runBatchResumable: empty journal path (use runBatch "
              "for journal-less execution)");

    BatchOutcome outcome;
    outcome.results.resize(configs.size());
    if (configs.empty())
        return outcome;

    const LoadedJournal loaded = loadJournal(journal_path);
    RunJournal journal(journal_path);

    BatchState st(configs, options, outcome.results);
    st.journal = &journal;
    st.fingerprints.reserve(configs.size());
    for (const RunConfig &cfg : configs)
        st.fingerprints.push_back(configFingerprint(cfg));

    // Resume pass: reuse every completed record whose config carries
    // no observation hooks; report them first, in submission order,
    // from the calling thread.
    for (size_t i = 0; i < configs.size(); ++i) {
        const auto it = loaded.records.find(st.fingerprints[i]);
        if (it == loaded.records.end() || it->second.failed ||
            !configResumable(configs[i])) {
            st.queue.push_back(i);
            continue;
        }
        outcome.results[i] = it->second;
        ++st.tallies.runsResumed;
        bump(st.counters.resumed);
        ++st.completed;
        if (options.onProgress) {
            BatchProgress p{i, st.completed, configs.size(), true,
                            outcome.results[i]};
            options.onProgress(p);
        }
    }

    drainQueue(st);

    st.tallies.results = std::move(outcome.results);
    outcome = std::move(st.tallies);
    outcome.interrupted = st.cancelRequested();
    return outcome;
}

namespace
{

std::atomic<bool> signalCancelFlag{false};

extern "C" void
batchSignalHandler(int sig)
{
    signalCancelFlag.store(true, std::memory_order_release);
    // Restore default disposition so a second signal kills the
    // process immediately instead of being swallowed.
    std::signal(sig, SIG_DFL);
    static const char msg[] =
        "\n[dopp] signal received: finishing in-flight runs and "
        "flushing the journal; send again to kill\n";
    const ssize_t rc = ::write(2, msg, sizeof(msg) - 1);
    (void)rc;
}

} // namespace

const std::atomic<bool> *
installBatchSignalHandler()
{
    static std::once_flag once;
    std::call_once(once, [] {
        std::signal(SIGINT, batchSignalHandler);
        std::signal(SIGTERM, batchSignalHandler);
    });
    return &signalCancelFlag;
}

} // namespace dopp
