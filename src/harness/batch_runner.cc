#include "batch_runner.hh"

#include <exception>
#include <mutex>
#include <thread>

#include "util/env.hh"
#include "util/logging.hh"

namespace dopp
{

unsigned
batchJobs(unsigned jobs)
{
    if (jobs)
        return jobs;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<unsigned>(envU64("DOPP_JOBS", hw));
}

namespace
{

/** Shared state of one runBatch call; workers claim indices from the
 * atomic cursor, so the queue needs no locking of its own. */
struct BatchState
{
    const std::vector<RunConfig> &configs;
    const BatchOptions &opt;
    std::vector<RunResult> &results;

    std::atomic<size_t> next{0};
    std::mutex progressMutex;
    size_t completed = 0; // guarded by progressMutex

    explicit BatchState(const std::vector<RunConfig> &c,
                        const BatchOptions &o, std::vector<RunResult> &r)
        : configs(c), opt(o), results(r)
    {}
};

/** Mark @p r failed without losing its identifying fields. */
void
markFailed(RunResult &r, const RunConfig &cfg, const std::string &why)
{
    r.workload = cfg.workloadName;
    r.organization = llcKindName(cfg.kind);
    r.failed = true;
    r.error = why;
}

void
runOne(BatchState &st, size_t index)
{
    const RunConfig &cfg = st.configs[index];
    RunResult &r = st.results[index];
    if (st.opt.cancel && st.opt.cancel->load(std::memory_order_acquire)) {
        markFailed(r, cfg, "cancelled");
    } else if (cfg.workloadName.empty()) {
        markFailed(r, cfg, "config has no workloadName");
    } else {
        try {
            r = runWorkload(cfg.workloadName, cfg);
        } catch (const std::exception &e) {
            markFailed(r, cfg, e.what());
        } catch (...) {
            markFailed(r, cfg, "unknown exception");
        }
    }

    std::lock_guard<std::mutex> lock(st.progressMutex);
    ++st.completed;
    if (st.opt.onProgress) {
        BatchProgress p{index, st.completed, st.configs.size(), r};
        st.opt.onProgress(p);
    }
}

void
workerLoop(BatchState &st)
{
    const size_t total = st.configs.size();
    for (;;) {
        const size_t index =
            st.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= total)
            return;
        runOne(st, index);
    }
}

} // namespace

std::vector<RunResult>
runBatch(const std::vector<RunConfig> &configs,
         const BatchOptions &options)
{
    std::vector<RunResult> results(configs.size());
    if (configs.empty())
        return results;

    BatchState st(configs, options, results);
    const unsigned jobs = std::min<unsigned>(
        batchJobs(options.jobs),
        static_cast<unsigned>(configs.size()));

    if (jobs <= 1) {
        workerLoop(st); // serial path: the caller's own thread
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        pool.emplace_back([&st]() { workerLoop(st); });
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace dopp
