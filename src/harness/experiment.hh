/**
 * @file
 * Experiment harness: builds the Table 1 system around a chosen LLC
 * organization, runs one benchmark on it, and collects everything the
 * evaluation needs (runtime, output, LLC/hierarchy stats, off-chip
 * traffic, periodic snapshots for the characterization figures).
 */

#ifndef DOPP_HARNESS_EXPERIMENT_HH
#define DOPP_HARNESS_EXPERIMENT_HH

#include <atomic>
#include <functional>
#include <string>

#include "analysis/similarity.hh"
#include "core/doppelganger_cache.hh"
#include "core/split_llc.hh"
#include "fault/fault_injector.hh"
#include "fault/qor_guardrail.hh"
#include "sim/hierarchy.hh"
#include "sim/mem_tier.hh"
#include "workloads/workload.hh"

namespace dopp
{

/** Which LLC organization to build. */
enum class LlcKind : u8
{
    Baseline,  ///< 2 MB conventional (Table 1 baseline)
    SplitDopp, ///< 1 MB precise + 1 MB-tag-equivalent Doppelgänger
    UniDopp,   ///< 2 MB-tag-equivalent uniDoppelgänger
    Dedup,     ///< exact-deduplication LLC baseline
    Bdi,       ///< B∆I-compressed conventional LLC baseline
};

/** Name of @p kind for reports. */
const char *llcKindName(LlcKind kind);

/** Exact inverse of llcKindName(); fatal on an unknown name. */
LlcKind llcKindFromName(const std::string &name);

/** One run's configuration. */
struct RunConfig
{
    /** Benchmark to run. runWorkload's name argument overrides it; the
     * batch runner (harness/batch_runner.hh) requires it. */
    std::string workloadName;

    LlcKind kind = LlcKind::Baseline;

    /** LLC factory organization name; overrides @ref kind when
     * non-empty. Must name a registered builder (llc_factory.hh) —
     * this is how experiments plug in custom organizations. */
    std::string llcName;

    /** Doppelgänger map-space size M (Table 1 default 14). */
    unsigned mapBits = 14;

    /** Data-array entries as a fraction of tag entries (Sec 5.2);
     * the paper's base configuration is 1/4. */
    double dataFraction = 0.25;

    /** Map hash selection (ablations; paper default AvgAndRange). */
    MapHashMode hashMode = MapHashMode::AvgAndRange;

    /** XOR-folded data-array set index (ablation; see DoppConfig). */
    bool hashDataSetIndex = true;

    /** Data-array replacement policy (ablation; paper uses LRU). */
    ReplPolicy dataPolicy = ReplPolicy::LRU;

    /** Tag-count-aware data victim selection (Sec 3.5 future work). */
    bool tagCountAwareData = false;

    /**
     * Build Doppelgänger engines as the reference (array-of-structs)
     * implementation instead of the optimized structure-of-arrays one
     * (see dopp_engine.hh). Results are bit-identical by contract —
     * the differential suite enforces it — so, like the observation
     * hooks below, this switch is excluded from the journal config
     * fingerprint (harness/journal.hh): it must never make two
     * otherwise-equal runs look different. The factory builders also
     * honor DOPP_REFERENCE_IMPL=1 from the environment.
     */
    bool doppReference = false;

    /** Workload sizing/seed. */
    WorkloadConfig workload;

    /** If non-empty, record every simulated access to this trace file
     * (sim/trace.hh) for later replay. */
    std::string tracePath;

    /** If non-zero, capture an LLC snapshot every N accesses and hand
     * it to onSnapshot. */
    u64 snapshotPeriod = 0;
    std::function<void(const Snapshot &)> onSnapshot;

    /** Baseline LLC geometry (Table 1). */
    u64 baselineBytes = 2 * 1024 * 1024;
    u32 llcWays = 16;
    Tick llcLatency = 6;

    /** Fault injection (all rates zero: no injector is attached). */
    FaultConfig fault;

    /** QoR guardrail (budget zero: no guardrail is attached). */
    QorConfig qor;

    /**
     * Partitioned main-memory tier (sim/mem_tier.hh). Empty partition
     * list: the legacy flat DRAM model, bit-identical to every
     * pre-tier run. Non-empty: annotated approximate regions route to
     * the approximate/NVM partitions, per-partition fault models draw
     * through the run's FaultInjector, and the guardrail (when
     * qor.migrateFactor > 0) can migrate regions back to the precise
     * partition.
     */
    MemTierConfig memTier;

    /**
     * Abort-poll granularity in accesses handed to SimRuntime
     * (0 = keep the 4096-access default). Purely an observation-
     * latency knob for the watchdog: like abortFlag it never affects
     * a completed run's results and is excluded from the config
     * fingerprint (harness/journal.hh).
     */
    u64 abortPollAccesses = 0;

    /**
     * Cooperative abort flag handed to SimRuntime (the batch runner's
     * per-run watchdog sets it on timeout). Never affects a completed
     * run's results — it is excluded from the config fingerprint
     * (harness/journal.hh) like the observation hooks above.
     */
    const std::atomic<bool> *abortFlag = nullptr;
};

/** Everything measured in one run. */
struct RunResult
{
    std::string workload;
    std::string organization;

    /** Set by the batch runner when the run threw or was cancelled
     * instead of completing; every other field is then meaningless. */
    bool failed = false;
    std::string error;

    Tick runtime = 0;               ///< slowest core's cycles
    std::vector<double> output;     ///< application final output

    /**
     * End-of-run snapshot of the run's full StatRegistry: every
     * counter any layer registered, under its dotted name ("llc.*",
     * "hierarchy.*", "mem.*", "fault.*", "qor.*", "run.*"). This is
     * the authoritative record; the typed fields below are
     * compatibility views derived from the same counters.
     */
    StatSnapshot stats;

    LlcStats llc;                   ///< aggregate LLC stats
    LlcStats preciseHalf;           ///< split only: precise half
    LlcStats doppHalf;              ///< split only: Doppelgänger half
    HierarchyStats hierarchy;
    u64 memReads = 0;               ///< off-chip demand reads (blocks)
    u64 memWrites = 0;              ///< off-chip writebacks (blocks)

    /** Geometry actually used (for the energy model). */
    DoppConfig doppConfig;

    /** End-of-run occupancy: tags per valid data entry. */
    double tagsPerDataEntry = 0.0;

    /** @name Fault-campaign results (zero/empty when not configured) */
    /// @{

    /** Injector tallies: per-domain injections, detections, repairs. */
    FaultStats fault;

    /** Full deterministic fault trace, in injection order. */
    std::vector<FaultEvent> faultTrace;

    u64 guardrailDegradations = 0; ///< times the guardrail tripped
    u64 guardrailDegradedOps = 0;  ///< observations spent degraded
    double guardrailEstimate = 0.0; ///< final EWMA error estimate

    /** Degradation intervals in guardrail-observation time. */
    std::vector<DegradedInterval> degradedIntervals;
    /// @}

    u64 offChipTraffic() const { return memReads + memWrites; }
};

/**
 * Build the DoppConfig for a Doppelgänger organization under @p cfg:
 * @p unified selects the 2 MB-tag-equivalent unified geometry, false
 * the 1 MB-tag-equivalent half of the split organization (Table 1).
 */
DoppConfig doppConfigFor(const RunConfig &cfg, bool unified);

/** Build the DoppConfig the split organization uses under @p cfg. */
DoppConfig splitDoppConfig(const RunConfig &cfg);

/** Build the DoppConfig the unified organization uses under @p cfg. */
DoppConfig uniDoppConfig(const RunConfig &cfg);

/**
 * Run benchmark @p workload_name on the system described by @p cfg.
 * Deterministic: equal configs give equal results.
 */
RunResult runWorkload(const std::string &workload_name,
                      const RunConfig &cfg);

/** As above, naming the benchmark via cfg.workloadName (fatal if
 * empty). */
RunResult runWorkload(const RunConfig &cfg);

/** Read DOPP_WORKLOAD_SCALE (default 1.0) for bench sizing; fatal on
 * a non-positive or non-numeric value. */
double workloadScaleFromEnv();

} // namespace dopp

#endif // DOPP_HARNESS_EXPERIMENT_HH
