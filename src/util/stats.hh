/**
 * @file
 * Lightweight statistics accumulators used by the simulator and harness.
 */

#ifndef DOPP_UTIL_STATS_HH
#define DOPP_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "types.hh"

namespace dopp
{

/**
 * Running mean / variance / extrema accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    sample(double x)
    {
        ++n;
        const double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
    }

    /** Number of samples seen. */
    u64 count() const { return n; }

    /** Sample mean (0 if empty). */
    double mean() const { return n ? meanVal : 0.0; }

    /** Population variance (0 if fewer than two samples). */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample (+inf if empty). */
    double min() const { return minVal; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxVal; }

    /** Reset to the empty state. */
    void
    reset()
    {
        n = 0;
        meanVal = 0.0;
        m2 = 0.0;
        minVal = std::numeric_limits<double>::infinity();
        maxVal = -std::numeric_limits<double>::infinity();
    }

  private:
    u64 n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
 * first/last bucket.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets)
        : lo(lo), hi(hi), counts(buckets, 0)
    {
    }

    /** Add one sample. */
    void
    sample(double x)
    {
        double t = (x - lo) / (hi - lo);
        t = std::clamp(t, 0.0, 1.0);
        auto idx = static_cast<size_t>(t * static_cast<double>(
            counts.size()));
        if (idx >= counts.size())
            idx = counts.size() - 1;
        ++counts[idx];
        ++total;
    }

    /** Count in bucket @p i. */
    u64 bucket(size_t i) const { return counts.at(i); }

    /** Number of buckets. */
    size_t buckets() const { return counts.size(); }

    /** Total samples. */
    u64 samples() const { return total; }

  private:
    double lo;
    double hi;
    std::vector<u64> counts;
    u64 total = 0;
};

/** Geometric mean of a vector of positive values (1.0 if empty). */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Arithmetic mean (0.0 if empty). */
inline double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

} // namespace dopp

#endif // DOPP_UTIL_STATS_HH
