/**
 * @file
 * Statistics infrastructure: lightweight accumulators plus the
 * hierarchical StatRegistry every simulated structure registers its
 * counters into.
 *
 * The registry is the single source of truth for *what* a run counts:
 * each LLC organization, the private-cache hierarchy, main memory and
 * the fault/QoR subsystems register named stats under dotted group
 * paths (naming convention `llc.dopp.tagArray.reads`). Export layers
 * (results_io CSV/JSON, the DOPP_STATS_JSON dump) enumerate the
 * registry instead of hand-listing struct fields, so a newly
 * registered counter can never silently miss export.
 *
 * Four stat kinds:
 *  - Counter       registry-owned u64; hot paths cache a `Counter &`
 *                  handle at construction and pay a pointer bump per
 *                  increment, never a map lookup.
 *  - Distribution  count/sum/min/max/mean of double samples.
 *  - counterFn     externally backed integral value, read at
 *                  snapshot time (for structures that keep their own
 *                  u64 tallies, e.g. MainMemory traffic).
 *  - Formula       derived double, evaluated at snapshot time
 *                  (miss rates, EWMA estimates, occupancy ratios).
 *
 * A StatSnapshot is an ordered, self-describing (name, value) list;
 * snapshots subtract (`delta`) for per-interval accounting and
 * serialize to hierarchical JSON. Registries are not thread-safe:
 * each run owns one (the batch runner gives every run its own), so
 * registration order — and therefore snapshot order — is
 * deterministic for a given configuration.
 */

#ifndef DOPP_UTIL_STATS_HH
#define DOPP_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "types.hh"

namespace dopp
{

/**
 * Running mean / variance / extrema accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    sample(double x)
    {
        ++n;
        const double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
    }

    /** Number of samples seen. */
    u64 count() const { return n; }

    /** Sample mean (0 if empty). */
    double mean() const { return n ? meanVal : 0.0; }

    /** Population variance (0 if fewer than two samples). */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample (+inf if empty). */
    double min() const { return minVal; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxVal; }

    /** Reset to the empty state. */
    void
    reset()
    {
        n = 0;
        meanVal = 0.0;
        m2 = 0.0;
        minVal = std::numeric_limits<double>::infinity();
        maxVal = -std::numeric_limits<double>::infinity();
    }

  private:
    u64 n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
 * first/last bucket.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets)
        : lo(lo), hi(hi), counts(buckets, 0)
    {
    }

    /** Add one sample. */
    void
    sample(double x)
    {
        double t = (x - lo) / (hi - lo);
        t = std::clamp(t, 0.0, 1.0);
        auto idx = static_cast<size_t>(t * static_cast<double>(
            counts.size()));
        if (idx >= counts.size())
            idx = counts.size() - 1;
        ++counts[idx];
        ++total;
    }

    /** Count in bucket @p i. */
    u64 bucket(size_t i) const { return counts.at(i); }

    /** Number of buckets. */
    size_t buckets() const { return counts.size(); }

    /** Total samples. */
    u64 samples() const { return total; }

  private:
    double lo;
    double hi;
    std::vector<u64> counts;
    u64 total = 0;
};

/** Geometric mean of a vector of positive values (1.0 if empty). */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Arithmetic mean (0.0 if empty). */
inline double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

// ---------------------------------------------------------------------
// StatRegistry
// ---------------------------------------------------------------------

class StatRegistry;

/**
 * Registry-owned u64 event counter. Structures cache a `Counter &`
 * at registration time; incrementing is a plain memory bump on the
 * registry's stable storage (no lookup, no indirection beyond the
 * cached handle).
 */
class Counter
{
  public:
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    Counter &operator++() { ++v; return *this; }
    void operator++(int) { ++v; }
    Counter &operator+=(u64 n) { v += n; return *this; }

    u64 value() const { return v; }
    void reset() { v = 0; }

  private:
    friend class StatRegistry;
    Counter() = default;

    u64 v = 0;
};

/**
 * Registry-owned sample accumulator: count, sum, extrema and mean of
 * double-valued samples. Snapshots expand it into `<name>.count`,
 * `<name>.mean`, `<name>.min`, `<name>.max` (min/max report 0 while
 * empty so exports stay finite).
 */
class Distribution
{
  public:
    Distribution(const Distribution &) = delete;
    Distribution &operator=(const Distribution &) = delete;

    void
    sample(double x)
    {
        ++n;
        total += x;
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
    }

    u64 count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? minVal : 0.0; }
    double max() const { return n ? maxVal : 0.0; }

    void
    reset()
    {
        n = 0;
        total = 0.0;
        minVal = std::numeric_limits<double>::infinity();
        maxVal = -std::numeric_limits<double>::infinity();
    }

  private:
    friend class StatRegistry;
    Distribution() = default;

    u64 n = 0;
    double total = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/** One exported stat value: a name plus an integral or real value. */
struct StatValue
{
    std::string name;
    bool integral = true;
    u64 u = 0;      ///< value when integral
    double d = 0.0; ///< value when !integral

    double
    asDouble() const
    {
        return integral ? static_cast<double>(u) : d;
    }

    /** Native textual form: decimal for counters, shortest
     * round-trippable decimal (std::to_chars) for reals. */
    std::string str() const;

    bool
    operator==(const StatValue &o) const
    {
        return name == o.name && integral == o.integral &&
            (integral ? u == o.u : d == o.d);
    }
    bool operator!=(const StatValue &o) const { return !(*this == o); }
};

/**
 * Ordered point-in-time copy of every stat in a registry. The order is
 * registration order, so equal configurations produce byte-identical
 * snapshots. Self-contained: survives the registry (and the run) that
 * produced it, which is how RunResult carries per-run stats.
 */
class StatSnapshot
{
  public:
    const std::vector<StatValue> &values() const { return entries; }
    bool empty() const { return entries.empty(); }
    size_t size() const { return entries.size(); }

    /** @return whether a stat named @p name exists. */
    bool has(const std::string &name) const;

    /** Value of @p name as a double. Fatal if absent. */
    double value(const std::string &name) const;

    /** Value of integral stat @p name. Fatal if absent or real. */
    u64 counter(const std::string &name) const;

    /**
     * Interval accounting: this snapshot minus @p earlier, name-wise.
     * Integral values subtract clamped at zero (a counter reset
     * mid-interval reads as zero progress, not a wrap); real values
     * subtract arithmetically. Names absent from @p earlier are kept
     * as-is (newly registered mid-interval).
     */
    StatSnapshot delta(const StatSnapshot &earlier) const;

    /**
     * Hierarchical JSON object: dotted names become nested objects
     * (`llc.tagArray.reads` → {"llc":{"tagArray":{"reads":N}}}),
     * nesting in first-appearance order. Reals are emitted with
     * shortest-round-trip formatting.
     */
    std::string json() const;

    bool
    operator==(const StatSnapshot &o) const
    {
        return entries == o.entries;
    }
    bool operator!=(const StatSnapshot &o) const { return !(*this == o); }

    /** Rebuild a snapshot from deserialized values (the run journal,
     * harness/journal.hh); order must be the serialized order. */
    static StatSnapshot
    fromValues(std::vector<StatValue> values)
    {
        StatSnapshot s;
        s.entries = std::move(values);
        return s;
    }

  private:
    friend class StatRegistry;

    std::vector<StatValue> entries;
};

/**
 * Handle to one group (dotted path prefix) of a registry; cheap to
 * copy and pass around. Created via StatRegistry::group() or nested
 * with StatGroup::group().
 */
class StatGroup
{
  public:
    /** Child group handle: `group("tagArray")` under "llc" names
     * "llc.tagArray". */
    StatGroup group(const std::string &name) const;

    /** Register an owned counter. Fatal on duplicate full names. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");

    /** Register an owned sample distribution. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "");

    /** Register an externally backed integral stat, read at snapshot
     * time. @p fn must outlive the registry's last snapshot. */
    void counterFn(const std::string &name, std::function<u64()> fn,
                   const std::string &desc = "");

    /** Register a derived real-valued stat, evaluated at snapshot
     * time. */
    void formula(const std::string &name, std::function<double()> fn,
                 const std::string &desc = "");

    const std::string &path() const { return prefix; }

  private:
    friend class StatRegistry;
    StatGroup(StatRegistry &r, std::string p)
        : reg(&r), prefix(std::move(p))
    {
    }

    std::string fullName(const std::string &name) const;

    StatRegistry *reg;
    std::string prefix;
};

/**
 * The per-run stat tree. Owns every registered stat; enumeration,
 * snapshotting and reset all walk registration order. Not thread-safe
 * (one registry per run).
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Root-level group handle ("" prefix → bare names). */
    StatGroup root() { return StatGroup(*this, ""); }

    /** Group handle for dotted @p path. */
    StatGroup group(const std::string &path)
    {
        return StatGroup(*this, path);
    }

    /** @name Registration by full dotted name (StatGroup calls these).
     * All are fatal on a duplicate name. */
    /// @{
    Counter &addCounter(const std::string &full_name,
                        const std::string &desc = "");
    Distribution &addDistribution(const std::string &full_name,
                                  const std::string &desc = "");
    void addCounterFn(const std::string &full_name,
                      std::function<u64()> fn,
                      const std::string &desc = "");
    void addFormula(const std::string &full_name,
                    std::function<double()> fn,
                    const std::string &desc = "");
    /// @}

    /** @return whether @p full_name is registered. */
    bool contains(const std::string &full_name) const;

    /** Registered stat count (Distributions count once here but
     * expand to four snapshot entries). */
    size_t statCount() const { return nodes.size(); }

    /** Every exported stat name, in snapshot order. */
    std::vector<std::string> names() const;

    /** Description registered for @p full_name ("" if none/unknown). */
    std::string description(const std::string &full_name) const;

    /** Point-in-time copy of every stat, in registration order. */
    StatSnapshot snapshot() const;

    /** Zero every owned Counter and Distribution whose full name
     * starts with @p prefix (all of them for ""). counterFn/Formula
     * stats read external state and are unaffected. */
    void reset(const std::string &prefix = "");

  private:
    friend class StatGroup;

    enum class Kind : u8 { Counter, Distribution, CounterFn, Formula };

    struct Node
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::Counter;
        Counter counter;
        Distribution dist;
        std::function<u64()> counterFn;
        std::function<double()> formula;
    };

    Node &addNode(const std::string &full_name, const std::string &desc,
                  Kind kind);

    std::deque<Node> nodes; ///< deque: stable addresses for handles
    std::unordered_map<std::string, size_t> byName;
};

} // namespace dopp

#endif // DOPP_UTIL_STATS_HH
