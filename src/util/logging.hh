/**
 * @file
 * Error and status reporting, following gem5's panic/fatal split.
 *
 * panic()  — internal invariant violated; a simulator bug. Aborts.
 * fatal()  — user/configuration error; the run cannot continue. Exits.
 * warn()   — something questionable happened but the run continues.
 * inform() — plain status output.
 */

#ifndef DOPP_UTIL_LOGGING_HH
#define DOPP_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace dopp
{

/** Abort with a formatted message; use for internal invariant failures. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (warnings always print). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verboseEnabled();

} // namespace dopp

/** Assert-like check that survives NDEBUG builds; panics on failure. */
#define DOPP_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::dopp::panic("assertion '%s' failed at %s:%d",             \
                          #cond, __FILE__, __LINE__);                   \
        }                                                               \
    } while (0)

#endif // DOPP_UTIL_LOGGING_HH
