#include "env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "logging.hh"

namespace dopp
{

u64
envU64(const char *name, u64 fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE || v[0] == '-' ||
        parsed == 0) {
        fatal("%s='%s' is not a positive integer", name, v);
    }
    return static_cast<u64>(parsed);
}

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || errno == ERANGE ||
        !std::isfinite(parsed) || parsed <= 0.0) {
        fatal("%s='%s' is not a positive number", name, v);
    }
    return parsed;
}

bool
envFlag(const char *name, bool fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    if (v[0] != '\0' && v[1] == '\0') {
        if (v[0] == '0')
            return false;
        if (v[0] == '1')
            return true;
    }
    fatal("%s='%s' is not a boolean flag (use 0 or 1)", name, v);
    return fallback;
}

} // namespace dopp
