#include "stats.hh"

#include <charconv>
#include <cstring>

#include "logging.hh"

namespace dopp
{

namespace
{

/** Shortest-round-trip decimal form of @p x (std::to_chars). */
std::string
formatDouble(double x)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), x);
    return std::string(buf, res.ptr);
}

/** Append @p value to @p out in its native formatting. */
void
appendValue(std::string &out, const StatValue &v)
{
    if (v.integral)
        out += std::to_string(v.u);
    else
        out += formatDouble(v.d);
}

} // namespace

std::string
StatValue::str() const
{
    return integral ? std::to_string(u) : formatDouble(d);
}

// ---------------------------------------------------------------------
// StatSnapshot
// ---------------------------------------------------------------------

bool
StatSnapshot::has(const std::string &name) const
{
    for (const StatValue &v : entries) {
        if (v.name == name)
            return true;
    }
    return false;
}

double
StatSnapshot::value(const std::string &name) const
{
    for (const StatValue &v : entries) {
        if (v.name == name)
            return v.asDouble();
    }
    fatal("stat snapshot has no entry named '%s'", name.c_str());
    return 0.0;
}

u64
StatSnapshot::counter(const std::string &name) const
{
    for (const StatValue &v : entries) {
        if (v.name == name) {
            if (!v.integral) {
                fatal("stat '%s' is real-valued, not a counter",
                      name.c_str());
            }
            return v.u;
        }
    }
    fatal("stat snapshot has no entry named '%s'", name.c_str());
    return 0;
}

StatSnapshot
StatSnapshot::delta(const StatSnapshot &earlier) const
{
    // Name-index the earlier snapshot once; intervals are typically
    // same-schema, but a mid-interval registration must not throw.
    std::unordered_map<std::string, const StatValue *> prev;
    prev.reserve(earlier.entries.size());
    for (const StatValue &v : earlier.entries)
        prev.emplace(v.name, &v);

    StatSnapshot out;
    out.entries.reserve(entries.size());
    for (const StatValue &v : entries) {
        StatValue d = v;
        auto it = prev.find(v.name);
        if (it != prev.end() && it->second->integral == v.integral) {
            if (v.integral) {
                const u64 before = it->second->u;
                d.u = v.u >= before ? v.u - before : 0;
            } else {
                d.d = v.d - it->second->d;
            }
        }
        out.entries.push_back(std::move(d));
    }
    return out;
}

std::string
StatSnapshot::json() const
{
    // Dotted names form a tree; emit nested objects in
    // first-appearance order without materializing a tree structure:
    // track the currently open path and close/open the difference at
    // each entry. Registration groups stats contiguously, so this
    // produces one object per group.
    std::string out = "{";
    std::vector<std::string> open; // currently open object path

    auto splitName = [](const std::string &name) {
        std::vector<std::string> parts;
        size_t start = 0;
        for (size_t i = 0; i <= name.size(); ++i) {
            if (i == name.size() || name[i] == '.') {
                parts.push_back(name.substr(start, i - start));
                start = i + 1;
            }
        }
        return parts;
    };

    bool first = true;
    for (const StatValue &v : entries) {
        std::vector<std::string> parts = splitName(v.name);
        // parts[0..n-2] are groups, parts[n-1] the leaf key.
        const size_t groups = parts.size() - 1;
        size_t common = 0;
        while (common < open.size() && common < groups &&
               open[common] == parts[common]) {
            ++common;
        }
        for (size_t i = open.size(); i > common; --i)
            out += '}';
        open.resize(common);
        if (!first)
            out += ',';
        first = false;
        for (size_t i = common; i < groups; ++i) {
            out += '"';
            out += parts[i];
            out += "\":{";
            open.push_back(parts[i]);
        }
        out += '"';
        out += parts.back();
        out += "\":";
        appendValue(out, v);
    }
    for (size_t i = open.size(); i > 0; --i)
        out += '}';
    out += '}';
    return out;
}

// ---------------------------------------------------------------------
// StatGroup
// ---------------------------------------------------------------------

std::string
StatGroup::fullName(const std::string &name) const
{
    if (name.empty())
        fatal("stat registered with an empty name under group '%s'",
              prefix.c_str());
    return prefix.empty() ? name : prefix + "." + name;
}

StatGroup
StatGroup::group(const std::string &name) const
{
    return StatGroup(*reg, fullName(name));
}

Counter &
StatGroup::counter(const std::string &name, const std::string &desc)
{
    return reg->addCounter(fullName(name), desc);
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc)
{
    return reg->addDistribution(fullName(name), desc);
}

void
StatGroup::counterFn(const std::string &name, std::function<u64()> fn,
                     const std::string &desc)
{
    reg->addCounterFn(fullName(name), std::move(fn), desc);
}

void
StatGroup::formula(const std::string &name, std::function<double()> fn,
                   const std::string &desc)
{
    reg->addFormula(fullName(name), std::move(fn), desc);
}

// ---------------------------------------------------------------------
// StatRegistry
// ---------------------------------------------------------------------

StatRegistry::Node &
StatRegistry::addNode(const std::string &full_name,
                      const std::string &desc, Kind kind)
{
    if (full_name.empty())
        fatal("stat registered with an empty name");
    auto [it, inserted] = byName.emplace(full_name, nodes.size());
    if (!inserted) {
        fatal("stat '%s' registered twice (group paths must be "
              "unique per run)", full_name.c_str());
    }
    nodes.emplace_back();
    Node &n = nodes.back();
    n.name = full_name;
    n.desc = desc;
    n.kind = kind;
    return n;
}

Counter &
StatRegistry::addCounter(const std::string &full_name,
                         const std::string &desc)
{
    return addNode(full_name, desc, Kind::Counter).counter;
}

Distribution &
StatRegistry::addDistribution(const std::string &full_name,
                              const std::string &desc)
{
    return addNode(full_name, desc, Kind::Distribution).dist;
}

void
StatRegistry::addCounterFn(const std::string &full_name,
                           std::function<u64()> fn,
                           const std::string &desc)
{
    if (!fn)
        fatal("stat '%s': null counterFn", full_name.c_str());
    addNode(full_name, desc, Kind::CounterFn).counterFn = std::move(fn);
}

void
StatRegistry::addFormula(const std::string &full_name,
                         std::function<double()> fn,
                         const std::string &desc)
{
    if (!fn)
        fatal("stat '%s': null formula", full_name.c_str());
    addNode(full_name, desc, Kind::Formula).formula = std::move(fn);
}

bool
StatRegistry::contains(const std::string &full_name) const
{
    return byName.find(full_name) != byName.end();
}

std::string
StatRegistry::description(const std::string &full_name) const
{
    auto it = byName.find(full_name);
    return it == byName.end() ? std::string() : nodes[it->second].desc;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(nodes.size());
    for (const Node &n : nodes) {
        if (n.kind == Kind::Distribution) {
            out.push_back(n.name + ".count");
            out.push_back(n.name + ".mean");
            out.push_back(n.name + ".min");
            out.push_back(n.name + ".max");
        } else {
            out.push_back(n.name);
        }
    }
    return out;
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    snap.entries.reserve(nodes.size());
    for (const Node &n : nodes) {
        switch (n.kind) {
          case Kind::Counter:
            snap.entries.push_back(
                {n.name, true, n.counter.value(), 0.0});
            break;
          case Kind::CounterFn:
            snap.entries.push_back({n.name, true, n.counterFn(), 0.0});
            break;
          case Kind::Formula:
            snap.entries.push_back({n.name, false, 0, n.formula()});
            break;
          case Kind::Distribution:
            snap.entries.push_back(
                {n.name + ".count", true, n.dist.count(), 0.0});
            snap.entries.push_back(
                {n.name + ".mean", false, 0, n.dist.mean()});
            snap.entries.push_back(
                {n.name + ".min", false, 0, n.dist.min()});
            snap.entries.push_back(
                {n.name + ".max", false, 0, n.dist.max()});
            break;
        }
    }
    return snap;
}

void
StatRegistry::reset(const std::string &prefix)
{
    for (Node &n : nodes) {
        if (!prefix.empty()) {
            // Prefix match on whole group components: "llc" resets
            // "llc.fetches" but not "llcx.fetches".
            if (n.name.size() < prefix.size() ||
                n.name.compare(0, prefix.size(), prefix) != 0) {
                continue;
            }
            if (n.name.size() > prefix.size() &&
                n.name[prefix.size()] != '.') {
                continue;
            }
        }
        if (n.kind == Kind::Counter)
            n.counter.reset();
        else if (n.kind == Kind::Distribution)
            n.dist.reset();
    }
}

} // namespace dopp
