#include "fileio.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "logging.hh"

namespace dopp
{

namespace
{

/** write(2) all of @p data to @p fd, retrying on EINTR/partial
 * writes. Fatal with @p path and errno on any unrecoverable error. */
void
writeAll(int fd, const std::string &path, const char *data, size_t n)
{
    size_t done = 0;
    while (done < n) {
        const ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            fatal("'%s': short write (%zu of %zu bytes): %s",
                  path.c_str(), done, n, std::strerror(errno));
        }
        done += static_cast<size_t>(w);
    }
}

void
fsyncOrDie(int fd, const std::string &path)
{
    if (::fsync(fd) != 0)
        fatal("'%s': fsync failed: %s", path.c_str(),
              std::strerror(errno));
}

} // namespace

void
atomicWriteFile(const std::string &path, const std::string &contents)
{
    // Same-directory temp so the final rename cannot cross devices.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        fatal("cannot open '%s' for writing: %s", tmp.c_str(),
              std::strerror(errno));
    writeAll(fd, tmp, contents.data(), contents.size());
    fsyncOrDie(fd, tmp);
    if (::close(fd) != 0)
        fatal("'%s': close failed: %s", tmp.c_str(),
              std::strerror(errno));
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename '%s' to '%s': %s", tmp.c_str(),
              path.c_str(), std::strerror(errno));
}

AppendLog::AppendLog(const std::string &path) : filePath(path)
{
    fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd < 0)
        fatal("cannot open '%s' for appending: %s", path.c_str(),
              std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) == 0)
        openedAt = static_cast<u64>(st.st_size);
}

AppendLog::~AppendLog()
{
    if (fd >= 0)
        ::close(fd);
}

u64
AppendLog::append(const std::string &record)
{
    writeAll(fd, filePath, record.data(), record.size());
    fsyncOrDie(fd, filePath);
    appended += record.size();
    return record.size();
}

u64
fileSizeBytes(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<u64>(st.st_size);
}

} // namespace dopp
