/**
 * @file
 * Bit-manipulation helpers used by address slicing and map generation.
 */

#ifndef DOPP_UTIL_BITFIELD_HH
#define DOPP_UTIL_BITFIELD_HH

#include "logging.hh"
#include "types.hh"

namespace dopp
{

/** @return true iff @p x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer floor(log2(x)). @pre x > 0. */
constexpr unsigned
floorLog2(u64 x)
{
    unsigned bits = 0;
    while (x > 1) {
        x >>= 1;
        ++bits;
    }
    return bits;
}

/** Integer ceil(log2(x)). @pre x > 0. */
constexpr unsigned
ceilLog2(u64 x)
{
    return isPowerOf2(x) ? floorLog2(x) : floorLog2(x) + 1;
}

/** Extract bits [hi:lo] (inclusive) of @p value. @pre hi >= lo, hi < 64. */
constexpr u64
bits(u64 value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const u64 mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (value >> lo) & mask;
}

/** Mask keeping the low @p n bits. */
constexpr u64
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

} // namespace dopp

#endif // DOPP_UTIL_BITFIELD_HH
