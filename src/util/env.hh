/**
 * @file
 * Strict environment-variable parsing for tuning knobs.
 *
 * An unset variable yields the fallback; a set variable must parse
 * completely as a positive value of the requested type, otherwise the
 * run dies with a fatal error naming the variable. Silently mapping
 * garbage (DOPP_JOBS=abc) or out-of-range values to the fallback hides
 * misconfigured sweeps, so we refuse instead.
 */

#ifndef DOPP_UTIL_ENV_HH
#define DOPP_UTIL_ENV_HH

#include "types.hh"

namespace dopp
{

/**
 * Read @p name as a positive integer. Unset: @p fallback. Set but not
 * a whole positive decimal number (garbage, negative, zero, trailing
 * junk, overflow): fatal, naming the variable and the bad value.
 */
u64 envU64(const char *name, u64 fallback);

/**
 * Read @p name as a positive double. Unset: @p fallback. Set but not
 * a finite number > 0: fatal, naming the variable and the bad value.
 */
double envDouble(const char *name, double fallback);

/**
 * Read @p name as a boolean flag. Unset: @p fallback. Set: must be
 * exactly "0" or "1" (a sweep exporting FLAG=yes or FLAG= should die,
 * not silently pick a default), otherwise fatal.
 */
bool envFlag(const char *name, bool fallback);

} // namespace dopp

#endif // DOPP_UTIL_ENV_HH
