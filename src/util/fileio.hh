/**
 * @file
 * Crash-safe file primitives for result persistence.
 *
 * Two patterns cover every writer in the tree:
 *
 *  - atomicWriteFile(): whole-file exports (CSV/JSON results) are
 *    written to a temporary sibling, fsync'd and renamed into place,
 *    so a reader never observes a half-written file — after a crash
 *    the path holds either the old contents or the new, never a
 *    truncated mix.
 *
 *  - AppendLog: record-at-a-time streams (the run journal, the
 *    DOPP_STATS_JSON dump) append each record with a single O_APPEND
 *    write(2) followed by fsync(2), so a crash can lose at most the
 *    one record being written — and leaves at worst one truncated
 *    final line, never interleaved or missing earlier records.
 *
 * Every failure mode (open, short write, fsync, rename) is fatal with
 * the path and errno: silently dropping campaign results is worse
 * than dying loudly.
 */

#ifndef DOPP_UTIL_FILEIO_HH
#define DOPP_UTIL_FILEIO_HH

#include <string>

#include "types.hh"

namespace dopp
{

/**
 * Atomically replace @p path with @p contents: write to a temporary
 * file in the same directory, fsync it, and rename(2) it over
 * @p path. Fatal with the path and errno on any failure, including a
 * short write.
 */
void atomicWriteFile(const std::string &path,
                     const std::string &contents);

/**
 * An append-only record log (O_APPEND | O_CREAT). Each append() is a
 * single write(2) of the whole record followed by fsync(2); a short
 * write is fatal with the path, the byte counts and errno. Callers
 * serialize their own concurrent appends (or rely on O_APPEND
 * atomicity for records under PIPE_BUF on local filesystems).
 */
class AppendLog
{
  public:
    /** Open @p path for appending, creating it if needed. Fatal with
     * errno if the file cannot be opened. */
    explicit AppendLog(const std::string &path);
    ~AppendLog();

    AppendLog(const AppendLog &) = delete;
    AppendLog &operator=(const AppendLog &) = delete;

    /**
     * Append @p record verbatim (callers include the trailing
     * newline) with one write(2) + fsync(2).
     * @return bytes written (record.size()).
     */
    u64 append(const std::string &record);

    /** Bytes appended through this handle so far. */
    u64 bytesAppended() const { return appended; }

    /** File size at open time (resume: what a prior campaign left). */
    u64 openedAtBytes() const { return openedAt; }

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
    int fd = -1;
    u64 appended = 0;
    u64 openedAt = 0;
};

/** Size of the file at @p path in bytes; 0 if it does not exist. */
u64 fileSizeBytes(const std::string &path);

} // namespace dopp

#endif // DOPP_UTIL_FILEIO_HH
