/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All workloads and synthetic inputs are seeded explicitly so every
 * experiment is exactly reproducible run-to-run; we never touch the host's
 * entropy sources. The generator is xoshiro256**, seeded via splitmix64.
 */

#ifndef DOPP_UTIL_RANDOM_HH
#define DOPP_UTIL_RANDOM_HH

#include <cmath>

#include "types.hh"

namespace dopp
{

/**
 * Deterministic 64-bit PRNG (xoshiro256**) with convenience draws.
 * Cheap to copy; each workload owns its own instance.
 */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from @p seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        for (auto &word : state)
            word = splitmix64(seed);
        gaussianValid = false;
    }

    /** Next raw 64-bit draw. */
    u64
    next()
    {
        const u64 result = rotl(state[1] * 5, 7) * 9;
        const u64 t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    u64
    below(u64 bound)
    {
        // Simple modulo; bias is negligible for bounds << 2^64 and
        // determinism is what matters here.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    i64
    range(i64 lo, i64 hi)
    {
        return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal draw (Box-Muller with caching). */
    double
    gaussian()
    {
        if (gaussianValid) {
            gaussianValid = false;
            return gaussianSpare;
        }
        double u1 = uniform();
        double u2 = uniform();
        // Avoid log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        gaussianSpare = r * std::sin(theta);
        gaussianValid = true;
        return r * std::cos(theta);
    }

    /** Normal draw with mean @p mu and standard deviation @p sigma. */
    double
    gaussian(double mu, double sigma)
    {
        return mu + sigma * gaussian();
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** splitmix64 step, used only for seeding. */
    static u64
    splitmix64(u64 &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        u64 z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    u64 state[4] = {};
    double gaussianSpare = 0.0;
    bool gaussianValid = false;
};

} // namespace dopp

#endif // DOPP_UTIL_RANDOM_HH
