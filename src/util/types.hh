/**
 * @file
 * Fundamental type aliases shared by all doppelganger libraries.
 *
 * The simulated machine follows the paper's methodology section: a 32-bit
 * physical address space, 64-byte cache blocks and a cycle-based notion of
 * time.
 */

#ifndef DOPP_UTIL_TYPES_HH
#define DOPP_UTIL_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace dopp
{

/** Physical address. The paper assumes a 32-bit address space (Sec 5.6);
 * we keep 64 bits of storage and mask where bit counts matter. */
using Addr = std::uint64_t;

/** Simulated time in core clock cycles (1 GHz cores per Table 1). */
using Tick = std::uint64_t;

/** Identifier of a processor core, 0 .. numCores-1. */
using CoreId = std::uint32_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Cache block size in bytes. Fixed at 64 B throughout the paper. */
constexpr unsigned blockBytes = 64;

/** log2 of the block size; used for address slicing. */
constexpr unsigned blockOffsetBits = 6;

/** Align an address down to its containing block. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockBytes - 1);
}

/** Byte offset of an address within its block. */
constexpr unsigned
blockOffset(Addr a)
{
    return static_cast<unsigned>(a & (blockBytes - 1));
}

} // namespace dopp

#endif // DOPP_UTIL_TYPES_HH
