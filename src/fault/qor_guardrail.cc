#include "qor_guardrail.hh"

#include <algorithm>
#include <cmath>

namespace dopp
{

double
blockSubstitutionError(const u8 *served, const u8 *exact,
                       ElemType elem_type, double span)
{
    const unsigned n = elemsPerBlock(elem_type);
    const double width = std::max(span, 1e-30);
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        const double a = blockElement(served, elem_type, i);
        const double p = blockElement(exact, elem_type, i);
        double err = std::abs(a - p) / width;
        if (!std::isfinite(err) || err > 1.0)
            err = 1.0; // cap: one wild element = one full-range miss
        sum += err;
    }
    return sum / static_cast<double>(n);
}

} // namespace dopp
