/**
 * @file
 * Deterministic fault injection for the approximate memory system.
 *
 * The paper assumes the only error source is the *intended* one —
 * doppelgänger substitution within programmer-declared ranges. Real
 * approximate-storage deployments add *unintended* error: bit flips in
 * approximate DRAM partitions (Akiyama-style refresh relaxation) and
 * soft errors in the SRAM arrays of the LLC itself. For a decoupled
 * tag/data organization the dangerous flips are the metadata ones —
 * map values, list pointers and state bits — because one flipped
 * pointer can corrupt a whole tag list, not just one value.
 *
 * The FaultInjector models all of these with independent per-component
 * Bernoulli rates driven by one seeded PRNG: equal seed + equal config
 * + equal operation sequence reproduce the exact same fault trace,
 * bit for bit. Clients (MainMemory via a hook, the LLC organizations
 * directly) ask the injector at well-defined operation points whether a
 * fault fires, apply the flip to their own structures, and record the
 * event; the cache is then responsible for surviving it (see
 * DoppelgangerCache::repairMetadata).
 */

#ifndef DOPP_FAULT_FAULT_INJECTOR_HH
#define DOPP_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <vector>

#include "util/random.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dopp
{

/** Where a fault landed. */
enum class FaultDomain : u8
{
    MemoryData, ///< a bit of a main-memory block (approximate DRAM)
    LlcData,    ///< a bit of an LLC data-array entry
    TagMeta,    ///< tag-array metadata: map bits, prev/next, dirty/precise
    MTagMeta,   ///< MTag/data-entry metadata: map tag, head pointer
};

constexpr unsigned faultDomainCount = 4;

/** Human-readable domain name. */
const char *faultDomainName(FaultDomain domain);

/** One injected fault, as recorded in the deterministic fault trace. */
struct FaultEvent
{
    u64 op = 0;        ///< injector operation counter at injection time
    FaultDomain domain = FaultDomain::MemoryData;
    u64 entry = 0;     ///< block address (memory) or entry index (LLC)
    u32 field = 0;     ///< domain-specific field selector
    u32 bit = 0;       ///< flipped bit within the field
};

/** Per-component fault rates; all zero disables injection entirely. */
struct FaultConfig
{
    /** PRNG seed; the whole fault trace is a pure function of it. */
    u64 seed = 0x5eedfa017ULL;

    /** Probability a demand-read memory block takes one bit flip. */
    double memoryRate = 0.0;

    /** Probability per LLC operation of one data-array bit flip. */
    double dataRate = 0.0;

    /** Probability per LLC operation of one tag-metadata bit flip. */
    double tagMetaRate = 0.0;

    /** Probability per LLC operation of one MTag-metadata bit flip. */
    double mtagMetaRate = 0.0;

    bool
    enabled() const
    {
        return memoryRate > 0.0 || dataRate > 0.0 ||
            tagMetaRate > 0.0 || mtagMetaRate > 0.0;
    }
};

/** Tallies the harness reports per run. */
struct FaultStats
{
    std::array<u64, faultDomainCount> injected = {}; ///< per domain

    u64 detected = 0;  ///< metadata faults caught by the self-check
    u64 repairs = 0;   ///< repair passes run after a detection
    u64 tagsDropped = 0;   ///< tags invalidated to restore invariants
    u64 entriesDropped = 0; ///< data entries invalidated by repair

    u64
    totalInjected() const
    {
        u64 sum = 0;
        for (u64 n : injected)
            sum += n;
        return sum;
    }
};

/**
 * Seeded Bernoulli fault source plus the trace of everything injected.
 *
 * The draw/pick split keeps injection deterministic without the
 * injector knowing any structure geometry: the client draws whether a
 * domain fires this operation, then uses pick() to choose entry, field
 * and bit within its own structures, and records the resulting event.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config)
        : cfg(config), rng(config.seed)
    {
    }

    const FaultConfig &config() const { return cfg; }

    /** Advance the operation counter (one client operation). */
    void step() { ++ops; }

    /** Operation counter (for event timestamps). */
    u64 opCount() const { return ops; }

    /**
     * Does a fault in @p domain fire this operation? Always consumes
     * one PRNG draw when the domain's rate is non-zero, so the stream
     * stays aligned whatever the outcomes are.
     */
    bool
    draw(FaultDomain domain)
    {
        const double rate = rateOf(domain);
        if (rate <= 0.0)
            return false;
        return rng.uniform() < rate;
    }

    /**
     * Does a fault with arbitrary @p rate fire this operation? The
     * per-partition memory-tier rates (sim/mem_tier.hh) draw through
     * this, sharing the one seeded stream with the domain draws.
     * Always consumes one PRNG draw when the rate is non-zero.
     */
    bool
    drawRate(double rate)
    {
        if (rate <= 0.0)
            return false;
        return rng.uniform() < rate;
    }

    /** Uniform integer in [0, bound) from the fault stream. */
    u64
    pick(u64 bound)
    {
        return bound > 1 ? rng.below(bound) : 0;
    }

    /** Record an applied fault in the trace and the per-domain tally. */
    void
    record(FaultDomain domain, u64 entry, u32 field, u32 bit)
    {
        FaultEvent e;
        e.op = ops;
        e.domain = domain;
        e.entry = entry;
        e.field = field;
        e.bit = bit;
        trace.push_back(e);
        ++stats_.injected[static_cast<size_t>(domain)];
    }

    /** Count a metadata corruption caught by a structural self-check. */
    void noteDetected() { ++stats_.detected; }

    /** Count one repair pass and what it had to drop. */
    void
    noteRepair(u64 tags_dropped, u64 entries_dropped)
    {
        ++stats_.repairs;
        stats_.tagsDropped += tags_dropped;
        stats_.entriesDropped += entries_dropped;
    }

    /** Every fault injected so far, in injection order. */
    const std::vector<FaultEvent> &events() const { return trace; }

    const FaultStats &stats() const { return stats_; }

    /**
     * Expose the fault tallies under @p group as counter functions
     * over the existing FaultStats members (one per domain plus the
     * detection/repair counters). The injector must outlive the
     * registry's snapshots.
     */
    void
    registerStats(StatGroup group)
    {
        StatGroup injected = group.group("injected");
        for (unsigned d = 0; d < faultDomainCount; ++d) {
            injected.counterFn(
                faultDomainName(static_cast<FaultDomain>(d)),
                [this, d] { return stats_.injected[d]; },
                "bit flips injected into this domain");
        }
        group.counterFn(
            "injected.total",
            [this] { return stats_.totalInjected(); },
            "bit flips injected across all domains");
        group.counterFn(
            "detected", [this] { return stats_.detected; },
            "metadata faults caught by the self-check");
        group.counterFn(
            "repairs", [this] { return stats_.repairs; },
            "repair passes run after a detection");
        group.counterFn(
            "tagsDropped", [this] { return stats_.tagsDropped; },
            "tags invalidated to restore invariants");
        group.counterFn(
            "entriesDropped", [this] { return stats_.entriesDropped; },
            "data entries invalidated by repair");
    }

  private:
    double
    rateOf(FaultDomain domain) const
    {
        switch (domain) {
          case FaultDomain::MemoryData: return cfg.memoryRate;
          case FaultDomain::LlcData: return cfg.dataRate;
          case FaultDomain::TagMeta: return cfg.tagMetaRate;
          case FaultDomain::MTagMeta: return cfg.mtagMetaRate;
        }
        return 0.0;
    }

    FaultConfig cfg;
    Rng rng;
    u64 ops = 0;
    std::vector<FaultEvent> trace;
    FaultStats stats_;
};

} // namespace dopp

#endif // DOPP_FAULT_FAULT_INJECTOR_HH
