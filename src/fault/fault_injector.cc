#include "fault_injector.hh"

namespace dopp
{

const char *
faultDomainName(FaultDomain domain)
{
    switch (domain) {
      case FaultDomain::MemoryData: return "memory-data";
      case FaultDomain::LlcData: return "llc-data";
      case FaultDomain::TagMeta: return "tag-meta";
      case FaultDomain::MTagMeta: return "mtag-meta";
    }
    return "?";
}

} // namespace dopp
