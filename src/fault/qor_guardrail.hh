/**
 * @file
 * Runtime quality-of-result guardrail with graceful precise-mode
 * degradation.
 *
 * The paper bounds application error statically: the programmer
 * declares value ranges and the map function guarantees any two blocks
 * sharing an entry agree to within one bin. Injected faults break that
 * guarantee — a flipped data bit or a mis-linked tag can serve values
 * arbitrarily far from the declared range. The guardrail closes the
 * loop at runtime: the LLC reports every *substitution event* whose
 * error is exactly measurable in place (an approximate fill joining an
 * existing entry, a writeback whose values are dropped, a data bit
 * flip), the guardrail folds the per-element normalized error into an
 * exponentially weighted estimate, and when the estimate exceeds the
 * per-workload budget the LLC *degrades*: subsequent approximate fills
 * take the precise path (split organization routes them to the precise
 * half; uniDoppelgänger inserts them as precise entries). Hysteresis —
 * a lower re-enable threshold plus a minimum dwell — keeps the state
 * machine from chattering when the estimate sits near the budget.
 *
 * Cross-tier extension (DESIGN.md §13): with a tiered main memory the
 * guardrail escalates in two steps. Degrading LLC fills to the precise
 * path only stops *new* approximation error; bit flips injected by an
 * approximate memory partition keep arriving on every demand read. So
 * when the estimate keeps climbing past budget × migrateFactor while
 * already degraded, the guardrail fires onMigrate(true) — the harness
 * wires it to MainMemory::migrateApproxToPrecise(), pinning the
 * approximate regions' pages to the precise partition — and when the
 * estimate recovers below the re-enable band it steps all the way back
 * down (onMigrate(false) restores the approximate routes). The same
 * dwell-based hysteresis guards every transition. migrateFactor <= 0
 * (the default) disables the third state entirely, preserving the
 * original two-state behavior bit-for-bit.
 *
 * State machine:
 *
 *      estimate > budget, dwell elapsed
 *   APPROX ────────────────────────────────► DEGRADED
 *      ◄────────────────────────────────         │
 *      estimate < budget × reenableFraction,     │ estimate > budget
 *      dwell elapsed (from DEGRADED or           │ × migrateFactor,
 *      MIGRATED; MIGRATED also restores          ▼ migrateDwell
 *      the approximate memory routes)        MIGRATED
 */

#ifndef DOPP_FAULT_QOR_GUARDRAIL_HH
#define DOPP_FAULT_QOR_GUARDRAIL_HH

#include <functional>
#include <vector>

#include "sim/approx.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dopp
{

/** Guardrail tuning; budget <= 0 disables the guardrail entirely. */
struct QorConfig
{
    /** Windowed mean normalized-error budget (e.g. 0.05 = 5%). */
    double budget = 0.0;

    /** Re-enable approximation when the estimate falls below
     * budget × reenableFraction (hysteresis band). */
    double reenableFraction = 0.5;

    /** EWMA horizon in observations: alpha = 1 / window. */
    u64 window = 512;

    /** Minimum observations between state flips (anti-chatter). */
    u64 minDwell = 128;

    /**
     * Cross-tier escalation threshold: while DEGRADED, an estimate
     * above budget × migrateFactor (after migrateDwell further
     * observations) escalates to MIGRATED — the approximate memory
     * regions are re-routed to a precise partition via onMigrate.
     * <= 0 disables the MIGRATED state (legacy two-state machine).
     */
    double migrateFactor = 0.0;

    /** Minimum observations spent DEGRADED before escalating. */
    u64 migrateDwell = 256;

    bool enabled() const { return budget > 0.0; }
};

/** One contiguous run of degraded (precise-mode) operation. */
struct DegradedInterval
{
    u64 beginOp = 0; ///< observation count when degradation engaged
    u64 endOp = 0;   ///< observation count when it lifted (or run end)
};

/**
 * EWMA error estimator + budget comparator + hysteresis state machine.
 * Purely deterministic: state is a function of the observation
 * sequence only.
 */
class QorGuardrail
{
  public:
    explicit QorGuardrail(const QorConfig &config) : cfg(config) {}

    const QorConfig &config() const { return cfg; }

    /**
     * Fold one substitution event into the estimate: @p mean_error is
     * the event's mean per-element error, already normalized to the
     * region's declared span (1.0 = a full-range substitution).
     */
    void
    observeError(double mean_error)
    {
        observe(mean_error < 0.0 ? 0.0 : mean_error);
    }

    /** Fold one error-free operation in (decays the estimate). */
    void observeClean() { observe(0.0); }

    /** Whether approximate fills should currently take the precise
     * path (true in both DEGRADED and MIGRATED). Always false when
     * the guardrail is disabled. */
    bool degraded() const { return degradedNow; }

    /** Whether the cross-tier MIGRATED state is active. */
    bool migrated() const { return migratedNow; }

    /** Current EWMA error estimate. */
    double estimate() const { return ewma; }

    /** Observations folded in so far. */
    u64 observations() const { return obs; }

    /** APPROX→DEGRADED transitions taken. */
    u64 degradationCount() const { return flips; }

    /** DEGRADED→MIGRATED escalations taken. */
    u64 migrationCount() const { return migrations_; }

    /**
     * Cross-tier escalation hook: called with true on
     * DEGRADED→MIGRATED (migrate the approximate regions to a precise
     * partition) and false when MIGRATED steps back down (restore the
     * approximate routes). Must be deterministic and must not call
     * back into the guardrail.
     */
    std::function<void(bool)> onMigrate;

    /**
     * Degradation intervals so far; an interval still open at call
     * time is reported with endOp == current observation count.
     */
    std::vector<DegradedInterval>
    intervals() const
    {
        std::vector<DegradedInterval> out = closed;
        if (degradedNow) {
            DegradedInterval open;
            open.beginOp = openBegin;
            open.endOp = obs;
            out.push_back(open);
        }
        return out;
    }

    /** Observations spent in the degraded state so far. */
    u64
    degradedOps() const
    {
        u64 sum = 0;
        for (const auto &iv : closed)
            sum += iv.endOp - iv.beginOp;
        if (degradedNow)
            sum += obs - openBegin;
        return sum;
    }

    /**
     * Expose guardrail state under @p group: counter functions over
     * the estimator state, the current estimate as a formula, and a
     * distribution of non-zero substitution errors sampled as they
     * are observed. The guardrail must outlive the registry's
     * snapshots.
     */
    void
    registerStats(StatGroup group)
    {
        group.counterFn(
            "observations", [this] { return obs; },
            "substitution events folded into the estimate");
        group.counterFn(
            "degradations", [this] { return flips; },
            "APPROX to DEGRADED transitions taken");
        group.counterFn(
            "degradedOps", [this] { return degradedOps(); },
            "observations spent in the degraded state");
        group.counterFn(
            "degradedNow", [this] { return degradedNow ? 1 : 0; },
            "whether approximation is currently degraded");
        group.counterFn(
            "migrations", [this] { return migrations_; },
            "DEGRADED to MIGRATED cross-tier escalations");
        group.counterFn(
            "migratedNow", [this] { return migratedNow ? 1 : 0; },
            "whether the cross-tier MIGRATED state is active");
        group.formula(
            "estimate", [this] { return ewma; },
            "EWMA normalized-error estimate");
        errorDist = &group.distribution(
            "substitutionError",
            "non-zero normalized substitution errors observed");
    }

  private:
    void
    observe(double sample)
    {
        if (errorDist && sample > 0.0)
            errorDist->sample(sample);
        if (!cfg.enabled())
            return;
        ++obs;
        const double alpha =
            1.0 / static_cast<double>(cfg.window ? cfg.window : 1);
        ewma += alpha * (sample - ewma);

        if (obs - lastFlip < cfg.minDwell)
            return;
        if (!degradedNow && ewma > cfg.budget) {
            degradedNow = true;
            openBegin = obs;
            lastFlip = obs;
            ++flips;
        } else if (degradedNow && !migratedNow &&
                   cfg.migrateFactor > 0.0 &&
                   ewma > cfg.budget * cfg.migrateFactor &&
                   obs - lastFlip >= cfg.migrateDwell) {
            // Still over the escalated threshold after a full dwell
            // in DEGRADED: precise-path fills alone cannot hold the
            // error (the memory tier keeps injecting), so migrate.
            migratedNow = true;
            ++migrations_;
            lastFlip = obs;
            if (onMigrate)
                onMigrate(true);
        } else if (degradedNow &&
                   ewma < cfg.budget * cfg.reenableFraction) {
            if (migratedNow) {
                migratedNow = false;
                if (onMigrate)
                    onMigrate(false);
            }
            degradedNow = false;
            DegradedInterval iv;
            iv.beginOp = openBegin;
            iv.endOp = obs;
            closed.push_back(iv);
            lastFlip = obs;
        }
    }

    QorConfig cfg;
    double ewma = 0.0;
    u64 obs = 0;
    u64 lastFlip = 0;
    u64 flips = 0;
    u64 migrations_ = 0;
    bool degradedNow = false;
    bool migratedNow = false;
    u64 openBegin = 0;
    std::vector<DegradedInterval> closed;
    Distribution *errorDist = nullptr; ///< set by registerStats()
};

/**
 * Mean per-element error between two 64 B blocks, normalized to
 * @p span (the region's declared max − min); each element's
 * contribution is capped at 1.0 so one wild element cannot report
 * more than a full-range substitution. Elements are interpreted per
 * @p type (sim/approx.hh).
 */
double blockSubstitutionError(const u8 *served, const u8 *exact,
                              ElemType elem_type, double span);

} // namespace dopp

#endif // DOPP_FAULT_QOR_GUARDRAIL_HH
