/**
 * @file
 * Application output-error metrics (paper Sec 4, 4.1).
 *
 * The paper takes each benchmark's error metric from prior work
 * [27, 32, 8]; all errors pertain to the application's *final output*,
 * never to individual memory accesses. These helpers implement the
 * common shapes: mean relative error (pricing/angle outputs),
 * normalized mean absolute error (pixels), misclassification rate
 * (jmeint), and top-K result-set difference (ferret's pessimistic
 * query metric).
 */

#ifndef DOPP_WORKLOADS_ERROR_METRICS_HH
#define DOPP_WORKLOADS_ERROR_METRICS_HH

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace dopp
{

/**
 * Mean of |a−p| / max(|p|, floor) over paired outputs, with each
 * element's contribution capped at 100%. The floor guards against
 * division blow-up when the true value is near zero; the cap keeps a
 * handful of tiny-denominator outputs from dominating the average
 * (standard practice in the approximate-computing error literature).
 */
inline double
meanRelativeError(const std::vector<double> &approx,
                  const std::vector<double> &precise, double floor = 1e-6)
{
    DOPP_ASSERT(approx.size() == precise.size());
    if (approx.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < approx.size(); ++i) {
        const double denom = std::max(std::abs(precise[i]), floor);
        sum += std::min(1.0, std::abs(approx[i] - precise[i]) / denom);
    }
    return sum / static_cast<double>(approx.size());
}

/** Mean |a−p| scaled by @p range (e.g. 255 for pixels). */
inline double
meanAbsErrorNormalized(const std::vector<double> &approx,
                       const std::vector<double> &precise, double range)
{
    DOPP_ASSERT(approx.size() == precise.size());
    DOPP_ASSERT(range > 0.0);
    if (approx.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < approx.size(); ++i)
        sum += std::abs(approx[i] - precise[i]);
    return sum / static_cast<double>(approx.size()) / range;
}

/** Fraction of paired outputs that disagree as booleans (≥0.5). */
inline double
misclassificationRate(const std::vector<double> &approx,
                      const std::vector<double> &precise)
{
    DOPP_ASSERT(approx.size() == precise.size());
    if (approx.empty())
        return 0.0;
    u64 wrong = 0;
    for (size_t i = 0; i < approx.size(); ++i)
        if ((approx[i] >= 0.5) != (precise[i] >= 0.5))
            ++wrong;
    return static_cast<double>(wrong) /
        static_cast<double>(approx.size());
}

/**
 * Outputs are flattened groups of @p k ids per query; a query counts as
 * wrong if its id *set* differs at all (the paper notes this is
 * pessimistic for ferret — other acceptable result sets exist).
 */
inline double
topkSetDifferenceRate(const std::vector<double> &approx,
                      const std::vector<double> &precise, unsigned k)
{
    DOPP_ASSERT(approx.size() == precise.size());
    DOPP_ASSERT(k > 0 && approx.size() % k == 0);
    if (approx.empty())
        return 0.0;
    const size_t queries = approx.size() / k;
    u64 wrong = 0;
    for (size_t q = 0; q < queries; ++q) {
        std::set<i64> sa;
        std::set<i64> sp;
        for (unsigned i = 0; i < k; ++i) {
            sa.insert(static_cast<i64>(approx[q * k + i]));
            sp.insert(static_cast<i64>(precise[q * k + i]));
        }
        if (sa != sp)
            ++wrong;
    }
    return static_cast<double>(wrong) / static_cast<double>(queries);
}

/** Single-value relative error (final aggregate outputs). */
inline double
scalarRelativeError(double approx, double precise, double floor = 1e-9)
{
    return std::abs(approx - precise) /
        std::max(std::abs(precise), floor);
}

} // namespace dopp

#endif // DOPP_WORKLOADS_ERROR_METRICS_HH
