/**
 * @file
 * jpeg: DCT-based image compression/decompression (AxBench).
 *
 * A synthetic grayscale image is encoded block-by-block (8×8 DCT and
 * quantization) and decoded back. Input pixels, quantized coefficients
 * and output pixels are all annotated approximate (Table 2: 98.4%
 * approximate footprint) — pixel data is the canonical example of
 * approximate similarity (Fig 1).
 *
 * Error metric: mean absolute output-pixel difference / 255 [8].
 */

#include <array>
#include <cmath>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

/** Standard JPEG luminance quantization table. */
constexpr int quantTable[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,
    12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,
    14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,
    24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
};

/** Precomputed DCT-II basis: c[u][x] = a(u) cos((2x+1)uπ/16). */
struct DctBasis
{
    double c[8][8];

    DctBasis()
    {
        for (int u = 0; u < 8; ++u) {
            const double a =
                u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
            for (int x = 0; x < 8; ++x) {
                c[u][x] = a * std::cos((2 * x + 1) * u *
                                       3.14159265358979323846 / 16.0);
            }
        }
    }
};

const DctBasis &
basis()
{
    static const DctBasis b;
    return b;
}

class Jpeg : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "jpeg"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 dim = scaled(512, 64) & ~static_cast<u64>(7);
        const u64 w = dim;
        const u64 h = dim;
        Rng rng(cfg.seed);

        SimArray<u8> image(rt, w * h, "image");
        SimArray<i16> coeff(rt, w * h, "coefficients");
        SimArray<u8> decoded(rt, w * h, "decoded");
        image.annotateApprox(0.0, 255.0, "jpeg.in");
        coeff.annotateApprox(-1024.0, 1023.0, "jpeg.coeff");
        decoded.annotateApprox(0.0, 255.0, "jpeg.out");

        // Synthetic photo-like input: smooth gradients, low-frequency
        // waves and a few soft blobs (plus mild sensor noise).
        struct Blob
        {
            double cx, cy, r, amp;
        };
        std::array<Blob, 12> blobs;
        for (auto &b : blobs) {
            b = {rng.uniform(0, static_cast<double>(w)),
                 rng.uniform(0, static_cast<double>(h)),
                 rng.uniform(20, 90), rng.uniform(-70, 70)};
        }
        for (u64 y = 0; y < h; ++y) {
            for (u64 x = 0; x < w; ++x) {
                double v = 110.0 +
                    60.0 * static_cast<double>(x) /
                        static_cast<double>(w) +
                    25.0 * std::sin(static_cast<double>(y) / 37.0);
                for (const auto &b : blobs) {
                    const double dx = static_cast<double>(x) - b.cx;
                    const double dy = static_cast<double>(y) - b.cy;
                    v += b.amp *
                        std::exp(-(dx * dx + dy * dy) / (b.r * b.r));
                }
                // Fine texture and sensor noise (real photographs are
                // not band-limited gradients).
                v += 20.0 * std::sin(static_cast<double>(x) / 2.1) *
                    std::cos(static_cast<double>(y) / 3.3);
                v += rng.uniform(-12.0, 12.0);
                image.poke(y * w + x,
                           static_cast<u8>(std::clamp(v, 0.0, 255.0)));
            }
        }

        const u64 blocksX = w / 8;
        const u64 blocksY = h / 8;

        // Pass 1: forward DCT + quantization.
        rt.parallelFor(0, blocksX * blocksY, 8, [&](u64 bi) {
            const u64 bx = (bi % blocksX) * 8;
            const u64 by = (bi / blocksX) * 8;
            double px[8][8];
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 8; ++x)
                    px[y][x] = static_cast<double>(
                        image.get((by + y) * w + bx + x)) - 128.0;
            for (int v = 0; v < 8; ++v) {
                for (int u = 0; u < 8; ++u) {
                    double s = 0.0;
                    for (int y = 0; y < 8; ++y)
                        for (int x = 0; x < 8; ++x)
                            s += px[y][x] * basis().c[u][x] *
                                basis().c[v][y];
                    const int q = quantTable[v * 8 + u];
                    const double c = std::round(s / q);
                    coeff.set((by + v) * w + bx + u,
                              static_cast<i16>(
                                  std::clamp(c, -1024.0, 1023.0)));
                }
            }
            rt.addWork(700); // 2-D DCT arithmetic
        });

        // Pass 2: dequantization + inverse DCT.
        rt.parallelFor(0, blocksX * blocksY, 8, [&](u64 bi) {
            const u64 bx = (bi % blocksX) * 8;
            const u64 by = (bi / blocksX) * 8;
            double cf[8][8];
            for (int v = 0; v < 8; ++v)
                for (int u = 0; u < 8; ++u)
                    cf[v][u] = static_cast<double>(coeff.get(
                        (by + v) * w + bx + u)) * quantTable[v * 8 + u];
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    double s = 0.0;
                    for (int v = 0; v < 8; ++v)
                        for (int u = 0; u < 8; ++u)
                            s += cf[v][u] * basis().c[u][x] *
                                basis().c[v][y];
                    decoded.set((by + y) * w + bx + x,
                                static_cast<u8>(std::clamp(
                                    s + 128.0, 0.0, 255.0)));
                }
            }
            rt.addWork(700);
        });

        // Output: a deterministic sample of decoded pixels.
        out.clear();
        for (u64 i = 0; i < w * h; i += 16)
            out.push_back(decoded.get(i));
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        return meanAbsErrorNormalized(approx, precise, 255.0);
    }
};

} // namespace

std::unique_ptr<Workload>
makeJpeg(const WorkloadConfig &config)
{
    return std::make_unique<Jpeg>(config);
}

} // namespace dopp
