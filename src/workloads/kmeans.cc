/**
 * @file
 * kmeans: k-means clustering of RGB points (the AxBench image
 * segmentation kernel).
 *
 * Pixels (RGB triplets, u8) are clustered into k centroids by Lloyd
 * iterations. The pixel data and the centroid table are annotated
 * approximate (Table 2: 59.6% approximate footprint); labels and
 * bookkeeping are precise.
 *
 * Error metric: mean absolute final-centroid error / 255, plus the
 * relative clustering-cost error folded into the output vector [8].
 */

#include <cmath>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

class Kmeans : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "kmeans"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 n = scaled(150000, 512);
        constexpr unsigned k = 12;
        constexpr unsigned iters = 3;
        Rng rng(cfg.seed);

        SimArray<u8> pixels(rt, n * 3, "pixels");
        SimArray<float> centroids(rt, k * 3, "centroids");
        pixels.annotateApprox(0.0, 255.0, "kmeans.pixels");
        centroids.annotateApprox(0.0, 255.0, "kmeans.centroids");
        SimArray<i16> labels(rt, n, "labels"); // precise

        // Pixels drawn from k ground-truth color clusters.
        double truth[k][3];
        for (auto &c : truth)
            for (double &ch : c)
                ch = rng.uniform(20.0, 235.0);
        // Pixels arrive in spatially coherent segments (image regions
        // belong to one color cluster for a stretch), not i.i.d.
        unsigned segCluster = 0;
        for (u64 i = 0; i < n; ++i) {
            if (i % 48 == 0)
                segCluster = static_cast<unsigned>(rng.below(k));
            const auto &c = truth[segCluster];
            for (unsigned ch = 0; ch < 3; ++ch) {
                const double v = c[ch] + rng.gaussian(0.0, 26.0);
                pixels.poke(i * 3 + ch, static_cast<u8>(
                    std::clamp(v, 0.0, 255.0)));
            }
        }
        // Deterministic centroid seeding from the first points.
        for (unsigned c = 0; c < k; ++c)
            for (unsigned ch = 0; ch < 3; ++ch)
                centroids.poke(c * 3 + ch, static_cast<float>(
                    pixels.peek((c * 9973 % n) * 3 + ch)));

        double cost = 0.0;
        for (unsigned it = 0; it < iters; ++it) {
            // Read the centroid table once per iteration (it is tiny
            // and would be L1-resident in the real code).
            double cent[k][3];
            for (unsigned c = 0; c < k; ++c)
                for (unsigned ch = 0; ch < 3; ++ch)
                    cent[c][ch] = centroids.get(c * 3 + ch);

            double acc[k][3] = {};
            u64 cnt[k] = {};
            cost = 0.0;
            rt.parallelFor(0, n, 128, [&](u64 i) {
                double p[3];
                for (unsigned ch = 0; ch < 3; ++ch)
                    p[ch] = pixels.get(i * 3 + ch);
                unsigned best = 0;
                double bestD = 1e30;
                for (unsigned c = 0; c < k; ++c) {
                    double d = 0.0;
                    for (unsigned ch = 0; ch < 3; ++ch) {
                        const double diff = p[ch] - cent[c][ch];
                        d += diff * diff;
                    }
                    if (d < bestD) {
                        bestD = d;
                        best = c;
                    }
                }
                labels.set(i, static_cast<i16>(best));
                for (unsigned ch = 0; ch < 3; ++ch)
                    acc[best][ch] += p[ch];
                ++cnt[best];
                cost += bestD;
                rt.addWork(10 + 8 * k);
            });

            rt.setCore(0);
            for (unsigned c = 0; c < k; ++c) {
                if (!cnt[c])
                    continue;
                for (unsigned ch = 0; ch < 3; ++ch) {
                    centroids.set(c * 3 + ch, static_cast<float>(
                        acc[c][ch] / static_cast<double>(cnt[c])));
                }
            }
        }

        out.clear();
        for (unsigned c = 0; c < k; ++c)
            for (unsigned ch = 0; ch < 3; ++ch)
                out.push_back(centroids.get(c * 3 + ch));
        out.push_back(cost / static_cast<double>(n) / (255.0 * 255.0));
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        // Final centroid positions, scaled to the color range.
        std::vector<double> a(approx.begin(), approx.end() - 1);
        std::vector<double> p(precise.begin(), precise.end() - 1);
        return meanAbsErrorNormalized(a, p, 255.0);
    }
};

} // namespace

std::unique_ptr<Workload>
makeKmeans(const WorkloadConfig &config)
{
    return std::make_unique<Kmeans>(config);
}

} // namespace dopp
