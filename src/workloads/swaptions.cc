/**
 * @file
 * swaptions: Monte-Carlo swaption pricing (PARSEC, HJM framework).
 *
 * Each swaption is priced by simulating short-rate paths and averaging
 * discounted payoffs. Only the swaption *input parameters* are
 * annotated approximate, like the paper's annotation (Table 2: 1.5%
 * approximate footprint — the lowest of the suite); the large path
 * workspace stays precise. Because a single expected range is shared
 * by every f32 element (Sec 4.1), small-magnitude elements such as
 * interest rates are coarsely binned — the exact effect the paper
 * blames for swaptions' elevated error (Sec 5.2).
 *
 * With WorkloadConfig::perUseRanges the future-work variant is used
 * instead: rate-scale and year-scale parameters live in separate
 * regions with their own declared ranges, which restores most of the
 * lost precision (the paper's "other similarity functions ... account
 * for different ranges or different uses of the same data type").
 *
 * Error metric: mean relative error of the swaption prices [32].
 */

#include <cmath>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

constexpr unsigned pathSteps = 16;

/** AoS record layout (the paper-style shared-range mode). */
enum SwField : unsigned
{
    fStrike = 0,
    fMaturity = 1,
    fTenor = 2,
    fVol = 3,
    fR0 = 4,
    fLevel = 5,
    fSpeed = 6,
    fPad = 7,
    fCurve0 = 8, // 24 forward-curve points: 8..31
};

class Swaptions : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "swaptions"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 swaptions = 64;
        const u64 trials = scaled(360, 16);
        Rng rng(cfg.seed);

        // Approximate inputs. Default: one AoS record array under one
        // shared f32 range [0, 10] covering years *and* rates (the
        // paper's Sec 4.1 simplification). Per-use variant: separate
        // year-scale and rate-scale arrays with tight ranges.
        SimArray<float> recs(rt, swaptions * 32, "params");
        SimArray<float> years(rt, swaptions * 2, "paramsYears");
        SimArray<float> rates(rt, swaptions * 32, "paramsRates");
        if (!cfg.perUseRanges) {
            recs.annotateApprox(0.0, 10.0, "swaptions.params");
        } else {
            years.annotateApprox(0.0, 10.0, "swaptions.years");
            rates.annotateApprox(0.0, 0.5, "swaptions.rates");
        }

        // Accessors routing to whichever layout is active.
        auto putYear = [&](u64 s, unsigned which, float v) {
            if (cfg.perUseRanges)
                years.poke(s * 2 + which, v);
            else
                recs.poke(s * 32 + (which ? fTenor : fMaturity), v);
        };
        auto getYear = [&](u64 s, unsigned which) {
            return cfg.perUseRanges
                ? years.get(s * 2 + which)
                : recs.get(s * 32 + (which ? fTenor : fMaturity));
        };
        // Rate-scale fields are indexed 0..31 (block-aligned records):
        // 0=strike, 1=vol, 2=r0, 3=level, 4=speed, 5.. = curve.
        auto putRate = [&](u64 s, unsigned idx, float v) {
            if (cfg.perUseRanges) {
                rates.poke(s * 32 + idx, v);
            } else {
                const unsigned field =
                    idx == 0 ? fStrike
                    : idx == 1 ? fVol
                    : idx == 2 ? fR0
                    : idx == 3 ? fLevel
                    : idx == 4 ? fSpeed
                               : fCurve0 + (idx - 5);
                recs.poke(s * 32 + field, v);
            }
        };
        auto getRate = [&](u64 s, unsigned idx) {
            if (cfg.perUseRanges)
                return rates.get(s * 32 + idx);
            const unsigned field =
                idx == 0 ? fStrike
                : idx == 1 ? fVol
                : idx == 2 ? fR0
                : idx == 3 ? fLevel
                : idx == 4 ? fSpeed
                           : fCurve0 + (idx - 5);
            return recs.get(s * 32 + field);
        };

        // Precise Monte-Carlo workspace: a ring of path slots, as the
        // real benchmark keeps per-trial HJM path matrices. swaptions
        // is compute-bound with a modest working set (it fits the
        // precise LLC), matching its near-baseline traffic and runtime.
        const u64 ringSize =
            (scaled(1 << 17, 1 << 14) / pathSteps) * pathSteps;
        SimArray<float> paths(rt, ringSize, "paths");
        SimArray<float> discounts(rt, ringSize / 2, "discounts");

        for (u64 s = 0; s < swaptions; ++s) {
            putRate(s, 0, static_cast<float>(
                0.02 + 0.005 * static_cast<double>(rng.below(10))));
            // Standard market maturities/tenors (few distinct values,
            // as real swaption books quote).
            static constexpr double maturities[5] = {1, 3, 5, 7, 10};
            static constexpr double tenors[2] = {1, 5};
            putYear(s, 0, static_cast<float>(
                maturities[rng.below(5)]));
            putYear(s, 1, static_cast<float>(tenors[rng.below(2)]));
            // Quoted vols/short rates carry basis-point noise around
            // the grid points (market quotes are not exact ticks).
            putRate(s, 1, static_cast<float>(
                0.10 + 0.02 * static_cast<double>(rng.below(10)) +
                rng.uniform(-0.001, 0.001)));
            putRate(s, 2, static_cast<float>(
                0.01 + 0.005 * static_cast<double>(rng.below(10)) +
                rng.uniform(-0.001, 0.001)));
            putRate(s, 3, 0.015f); // mean-reversion level
            putRate(s, 4, 0.2f);   // mean-reversion speed
            // Forward-curve points: drawn from the same few market
            // rates for every swaption, exactly the "common interest
            // rates" redundancy the paper observes (Sec 2).
            for (unsigned p = 5; p < 29; ++p) {
                putRate(s, p, static_cast<float>(
                    0.01 + 0.005 * static_cast<double>((p * 3) % 10)));
            }
            // Pad the per-use record's tail so each spans exactly two
            // blocks (the AoS record has only 24 curve slots).
            if (cfg.perUseRanges) {
                for (unsigned p = 29; p < 32; ++p)
                    rates.poke(s * 32 + p, 0.01f);
            }
        }

        out.assign(swaptions, 0.0);
        u64 ringCursor = 0;

        rt.parallelFor(0, swaptions * trials, 8, [&](u64 job) {
            const u64 s = job / trials;
            // Load the swaption's (approximate) parameters.
            const double strike = getRate(s, 0);
            const double maturity =
                std::max<double>(getYear(s, 0), 0.25);
            const double tenor = std::max<double>(getYear(s, 1), 0.25);
            const double vol = std::max<double>(getRate(s, 1), 1e-3);
            const double r0 = std::max<double>(getRate(s, 2), 1e-4);
            const double level =
                std::max<double>(getRate(s, 3), 1e-4);
            const double speed =
                std::max<double>(getRate(s, 4), 1e-3);
            // Average a slice of the forward curve into the drift.
            double curve = 0.0;
            for (unsigned p = 0; p < 4; ++p)
                curve += getRate(s, 5 + (job + p) % 24);
            const double drift = curve / 4.0;

            // Simulate a Vasicek-style short-rate path to maturity,
            // storing it in the precise workspace.
            const double dt = maturity / pathSteps;
            const u64 slot = (ringCursor * pathSteps) % ringSize;
            ringCursor++;
            double r = r0;
            for (unsigned t = 0; t < pathSteps; ++t) {
                r += speed * (level + 0.2 * drift - r) * dt +
                    vol * std::sqrt(dt) * rng.gaussian() * 0.1;
                r = std::max(r, 1e-5);
                paths.set(slot + t, static_cast<float>(r));
            }
            // Re-read the path to discount and price the swap.
            double discount = 1.0;
            double lastR = r0;
            for (unsigned t = 0; t < pathSteps; ++t) {
                lastR = paths.get(slot + t);
                discount *= std::exp(-lastR * dt);
                if ((slot + t) / 2 < discounts.size() && t % 4 == 0) {
                    discounts.set((slot + t) / 2,
                                  static_cast<float>(discount));
                }
            }
            // Payer-swaption payoff on the terminal rate.
            const double swapValue =
                (lastR - strike) * tenor / (1.0 + lastR * tenor);
            const double payoff = std::max(swapValue, 0.0);
            out[s] += discount * payoff /
                static_cast<double>(trials);
            rt.addWork(20 * pathSteps);
        });
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        return meanRelativeError(approx, precise, 1e-3);
    }
};

} // namespace

std::unique_ptr<Workload>
makeSwaptions(const WorkloadConfig &config)
{
    return std::make_unique<Swaptions>(config);
}

} // namespace dopp
