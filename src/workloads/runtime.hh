/**
 * @file
 * The workload runtime: our stand-in for the paper's Pin-based
 * instrumentation (Sec 4).
 *
 * Workloads allocate arrays in a simulated physical address space,
 * annotate the approximate ones (type + expected range, the EnerJ-style
 * contract), and perform every load/store through the simulated memory
 * hierarchy. Values read back may therefore be doppelgänger
 * approximations, so application output error is measured end-to-end,
 * exactly like the paper's full-application Pin runs.
 *
 * Parallelism: the paper runs 4-thread PARSEC/AxBench benchmarks on a
 * 4-core CMP. We execute deterministically, attributing loop chunks to
 * cores round-robin (parallelFor), which preserves 4-core cache
 * sharing/coherence traffic and per-core cycle accounting without host
 * nondeterminism.
 */

#ifndef DOPP_WORKLOADS_RUNTIME_HH
#define DOPP_WORKLOADS_RUNTIME_HH

#include <atomic>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/approx.hh"
#include "sim/hierarchy.hh"
#include "sim/memory.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace dopp
{

/**
 * Thrown out of a simulated access when the run's abort flag is set
 * (the batch runner's per-run watchdog, harness/batch_runner.hh).
 * Unwinds the workload cooperatively — the worker thread survives and
 * the batch runner converts the exception into a failed RunResult.
 */
class RunAborted : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Maps C++ element types to the annotation ElemType. */
template <typename T> struct ElemTypeOf;
template <> struct ElemTypeOf<u8>
{
    static constexpr ElemType value = ElemType::U8;
};
template <> struct ElemTypeOf<i16>
{
    static constexpr ElemType value = ElemType::I16;
};
template <> struct ElemTypeOf<i32>
{
    static constexpr ElemType value = ElemType::I32;
};
template <> struct ElemTypeOf<float>
{
    static constexpr ElemType value = ElemType::F32;
};
template <> struct ElemTypeOf<double>
{
    static constexpr ElemType value = ElemType::F64;
};

/**
 * Execution context binding a workload to a memory system: address
 * allocation, per-core cycle accounting, and the access funnel.
 */
class SimRuntime
{
  public:
    /**
     * @param system the coherent hierarchy to drive
     * @param memory its backing store (for traffic-free init/readout)
     * @param registry annotation registry shared with the LLC
     */
    SimRuntime(MemorySystem &system, MainMemory &memory,
               ApproxRegistry &registry)
        : sys(system), mem(memory), reg(registry),
          cycles(system.numCores(), 0)
    {
    }

    /** Allocate @p bytes of simulated address space (page-aligned). */
    Addr
    allocate(u64 bytes, const std::string &name)
    {
        (void)name;
        const Addr base = nextAddr;
        nextAddr += (bytes + 4095) & ~static_cast<Addr>(4095);
        return base;
    }

    /** Register an approximate region (programmer annotation, Sec 4). */
    void
    annotate(Addr base, u64 bytes, ElemType type, double min_value,
             double max_value, const std::string &name)
    {
        ApproxRegion r;
        r.base = base;
        r.size = bytes;
        r.type = type;
        r.minValue = min_value;
        r.maxValue = max_value;
        r.name = name;
        reg.add(r);
        mem.routeApprox(base, bytes);
    }

    /** Select the core issuing subsequent accesses. */
    void
    setCore(CoreId core)
    {
        DOPP_ASSERT(core < cycles.size());
        currentCore = core;
    }

    CoreId core() const { return currentCore; }

    /** Simulated load of a T at @p addr, through the hierarchy. */
    template <typename T>
    T
    load(Addr addr)
    {
        T value{};
        const Tick lat =
            sys.access(currentCore, addr, false, sizeof(T), &value);
        cycles[currentCore] += charge(lat) + workPerAccess;
        if (accessHook)
            accessHook(addr, false, sizeof(T), 0);
        tickHook();
        return value;
    }

    /** Simulated store of a T at @p addr, through the hierarchy. */
    template <typename T>
    void
    store(Addr addr, T value)
    {
        const Tick lat =
            sys.access(currentCore, addr, true, sizeof(T), &value);
        cycles[currentCore] += charge(lat) + workPerAccess;
        if (accessHook) {
            u64 payload = 0;
            std::memcpy(&payload, &value, sizeof(T));
            accessHook(addr, true, sizeof(T), payload);
        }
        tickHook();
    }

    /** Charge @p n compute cycles to the current core (non-memory
     * instructions of the kernel). */
    void
    addWork(u64 n)
    {
        cycles[currentCore] += n;
    }

    /**
     * Run @p body for each index in [begin, end), attributing chunks of
     * @p chunk consecutive indices to cores 0..N-1 round-robin.
     */
    void
    parallelFor(u64 begin, u64 end, u64 chunk,
                const std::function<void(u64)> &body)
    {
        DOPP_ASSERT(chunk > 0);
        const u32 n = sys.numCores();
        u64 i = begin;
        u64 c = 0;
        while (i < end) {
            setCore(static_cast<CoreId>(c % n));
            const u64 stop = std::min(end, i + chunk);
            for (; i < stop; ++i)
                body(i);
            ++c;
        }
        setCore(0);
    }

    /** Workload runtime in cycles: the slowest core's total. */
    Tick
    runtime() const
    {
        Tick worst = 0;
        for (Tick t : cycles)
            worst = std::max(worst, t);
        return worst;
    }

    /** Sum of all cores' cycles (for averages). */
    Tick
    totalCycles() const
    {
        Tick sum = 0;
        for (Tick t : cycles)
            sum += t;
        return sum;
    }

    /** Install a hook run every @p every_n accesses (LLC snapshots). */
    void
    setPeriodicHook(u64 every_n, std::function<void()> hook)
    {
        hookPeriod = every_n;
        periodicHook = std::move(hook);
    }

    /** Total simulated accesses so far. */
    u64 accesses() const { return accessCount; }

    /**
     * Optional per-access recorder (addr, is_write, size, payload),
     * invoked after every simulated load/store — the hook behind trace
     * capture (sim/trace.hh). Payload carries a store's raw bits.
     */
    std::function<void(Addr, bool, unsigned, u64)> accessHook;

    MemorySystem &system() { return sys; }
    MainMemory &memory() { return mem; }
    ApproxRegistry &registry() { return reg; }

    /**
     * Optional cooperative abort flag, polled every
     * setAbortPollInterval() accesses (default 4096) on the access
     * path (cheap: one relaxed load per poll). When it reads true the
     * current access throws RunAborted, unwinding the workload without
     * touching the owning thread. The flag must outlive the run.
     */
    const std::atomic<bool> *abortFlag = nullptr;

    /**
     * Set how many accesses elapse between abort-flag polls. @p every
     * is rounded up to the next power of two (the poll predicate is a
     * mask test); 0 restores the 4096-access default. A tighter
     * interval shortens the latency between the watchdog raising the
     * flag and the run actually unwinding, at the cost of one extra
     * relaxed atomic load per poll.
     */
    void
    setAbortPollInterval(u64 every)
    {
        if (every == 0) {
            abortPollMask = 0xFFF;
            return;
        }
        u64 pow2 = 1;
        while (pow2 < every && pow2 < (u64{1} << 62))
            pow2 <<= 1;
        abortPollMask = pow2 - 1;
    }

    /** Current abort-poll interval in accesses (a power of two). */
    u64 abortPollInterval() const { return abortPollMask + 1; }

    /** Compute cycles charged alongside every access (a simple stand-in
     * for the surrounding ALU work of a 4-wide OoO core). */
    u64 workPerAccess = 2;

    /**
     * Fraction of beyond-L2 stall cycles actually exposed to the core.
     * The paper's 4-wide, 80-entry-ROB OoO cores overlap much of a
     * miss's latency with independent work and other misses (MLP); an
     * in-order accounting that charged the full 166 cycles per miss
     * would exaggerate every LLC-miss-rate difference. The factor is
     * applied identically to every LLC organization, so it rescales —
     * never reorders — normalized-runtime comparisons.
     */
    double memStallFactor = 0.35;

  private:
    /** Exposed stall for a raw hierarchy latency (see memStallFactor):
     * the private-level portion (≤ L1+L2) is always charged in full. */
    Tick
    charge(Tick lat) const
    {
        constexpr Tick privateLat = 4; // L1 (1) + L2 (3)
        if (lat <= privateLat)
            return lat;
        return privateLat + static_cast<Tick>(
            static_cast<double>(lat - privateLat) * memStallFactor);
    }

    void
    tickHook()
    {
        ++accessCount;
        if (abortFlag && (accessCount & abortPollMask) == 0 &&
            abortFlag->load(std::memory_order_relaxed)) {
            throw RunAborted("run aborted");
        }
        if (periodicHook && hookPeriod && accessCount % hookPeriod == 0)
            periodicHook();
    }

    MemorySystem &sys;
    MainMemory &mem;
    ApproxRegistry &reg;
    std::vector<Tick> cycles;
    CoreId currentCore = 0;
    Addr nextAddr = 0x10000000;
    u64 accessCount = 0;
    u64 abortPollMask = 0xFFF; ///< poll when (count & mask) == 0
    u64 hookPeriod = 0;
    std::function<void()> periodicHook;
};

/**
 * A typed array living in the simulated address space. get()/set() go
 * through the hierarchy (and are what the annotation makes lossy);
 * poke()/peek() bypass it for input setup and final readout.
 */
template <typename T>
class SimArray
{
  public:
    SimArray(SimRuntime &rt, u64 count, const std::string &name)
        : rt(&rt), base(rt.allocate(count * sizeof(T), name)), n(count)
    {
    }

    /** Annotate the whole array approximate with the given range. */
    void
    annotateApprox(double min_value, double max_value,
                   const std::string &name)
    {
        rt->annotate(base, n * sizeof(T), ElemTypeOf<T>::value,
                     min_value, max_value, name);
    }

    /** Simulated read of element @p i. */
    T
    get(u64 i) const
    {
        DOPP_ASSERT(i < n);
        return rt->load<T>(base + i * sizeof(T));
    }

    /** Simulated write of element @p i. */
    void
    set(u64 i, T v)
    {
        DOPP_ASSERT(i < n);
        rt->store<T>(base + i * sizeof(T), v);
    }

    /** Traffic-free initialization write. */
    void
    poke(u64 i, T v)
    {
        DOPP_ASSERT(i < n);
        rt->memory().poke(base + i * sizeof(T), &v, sizeof(T));
    }

    /** Traffic-free read of backing memory (drain the hierarchy before
     * trusting this for post-run values). */
    T
    peek(u64 i) const
    {
        DOPP_ASSERT(i < n);
        T v{};
        rt->memory().peek(base + i * sizeof(T), &v, sizeof(T));
        return v;
    }

    u64 size() const { return n; }
    Addr addrOf(u64 i) const { return base + i * sizeof(T); }
    Addr baseAddr() const { return base; }
    u64 bytes() const { return n * sizeof(T); }

  private:
    SimRuntime *rt;
    Addr base;
    u64 n;
};

} // namespace dopp

#endif // DOPP_WORKLOADS_RUNTIME_HH
