/**
 * @file
 * blackscholes: Black-Scholes closed-form option pricing (PARSEC).
 *
 * A portfolio of European options is priced from an array-of-structs
 * option table, as in the PARSEC code: each record packs spot, strike,
 * rate, volatility, maturity and the output price. The whole table is
 * annotated approximate (Table 2: 61.8% approximate LLC footprint).
 * The PARSEC input famously replicates a small set of distinct options
 * many times over, which is the source of the exact block-level
 * redundancy the paper observes (Sec 2) — record-granular duplication
 * also keeps the small-magnitude fields (rates) safe inside otherwise
 * identical blocks.
 *
 * Error metric: mean relative error of the option prices [27].
 */

#include <cmath>
#include <vector>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

/** Cumulative normal distribution via std::erf. */
double
cndf(double x)
{
    return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
}

/** Black-Scholes European option price. */
double
bsPrice(double s, double k, double r, double v, double t, bool call)
{
    const double sq = v * std::sqrt(t);
    const double d1 = (std::log(s / k) + (r + 0.5 * v * v) * t) / sq;
    const double d2 = d1 - sq;
    if (call)
        return s * cndf(d1) - k * std::exp(-r * t) * cndf(d2);
    return k * std::exp(-r * t) * cndf(-d2) - s * cndf(-d1);
}

/** Field offsets within one 8-float option record. */
enum OptField : unsigned
{
    fSpot = 0,
    fStrike = 1,
    fRate = 2,
    fVol = 3,
    fTime = 4,
    fPrice = 5,
    fDividend = 6,
    fPad = 7,
};

class Blackscholes : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "blackscholes"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 n = scaled(28000, 256);
        Rng rng(cfg.seed);

        // The option table: AoS records of 8 f32 fields, all
        // approximate under one shared range (Sec 4.1).
        SimArray<float> opt(rt, n * 8, "options");
        opt.annotateApprox(0.0, 250.0, "bs.options");

        // Precise bookkeeping: option type and portfolio weights.
        SimArray<i32> otype(rt, n, "otype");
        SimArray<float> weight(rt, n, "weight");

        // A modest set of distinct options (round strikes, few
        // distinct rates/vols) replicated across the table, as the
        // PARSEC input does.
        const u64 distinct = std::max<u64>(n / 16, 64);
        struct Opt
        {
            float s, k, r, v, t;
            i32 call;
        };
        std::vector<Opt> base(distinct);
        for (auto &o : base) {
            const double k =
                20.0 + 10.0 * static_cast<double>(rng.below(19));
            o.k = static_cast<float>(k);
            o.s = static_cast<float>(k * rng.uniform(0.85, 1.15));
            o.r = static_cast<float>(
                0.02 + 0.005 * static_cast<double>(rng.below(12)));
            o.v = static_cast<float>(
                0.10 + 0.05 * static_cast<double>(rng.below(9)));
            o.t = static_cast<float>(
                0.25 * static_cast<double>(1 + rng.below(8)));
            o.call = rng.below(2) ? 1 : 0;
        }
        for (u64 i = 0; i < n; ++i) {
            const Opt &o = base[i % distinct];
            opt.poke(i * 8 + fSpot, o.s);
            opt.poke(i * 8 + fStrike, o.k);
            opt.poke(i * 8 + fRate, o.r);
            opt.poke(i * 8 + fVol, o.v);
            opt.poke(i * 8 + fTime, o.t);
            opt.poke(i * 8 + fPrice, 0.0f);
            opt.poke(i * 8 + fDividend, 0.0f);
            opt.poke(i * 8 + fPad, 0.0f);
            otype.poke(i, o.call);
            weight.poke(i, static_cast<float>(rng.uniform(0.5, 1.5)));
        }

        // Phase 1: price every option.
        rt.parallelFor(0, n, 64, [&](u64 i) {
            const double s = opt.get(i * 8 + fSpot);
            const double k = opt.get(i * 8 + fStrike);
            const double r = opt.get(i * 8 + fRate);
            const double v = opt.get(i * 8 + fVol);
            const double t = opt.get(i * 8 + fTime);
            const bool call = otype.get(i) != 0;
            const double p =
                bsPrice(std::max(s, 1e-3), std::max(k, 1e-3),
                        std::max(r, 1e-4), std::max(v, 1e-3),
                        std::max(t, 1e-3), call);
            opt.set(i * 8 + fPrice, static_cast<float>(p));
            rt.addWork(48); // transcendental-heavy pricing math
        });

        // Phase 2: portfolio aggregation re-reads the prices.
        double portfolio = 0.0;
        rt.parallelFor(0, n, 64, [&](u64 i) {
            portfolio += static_cast<double>(opt.get(i * 8 + fPrice)) *
                static_cast<double>(weight.get(i));
            rt.addWork(4);
        });

        out.clear();
        out.reserve(n + 1);
        for (u64 i = 0; i < n; ++i)
            out.push_back(opt.get(i * 8 + fPrice));
        out.push_back(portfolio);
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        // Floor at $0.50 so deep out-of-the-money near-zero prices do
        // not dominate the relative-error average.
        return meanRelativeError(approx, precise, 0.5);
    }
};

} // namespace

std::unique_ptr<Workload>
makeBlackscholes(const WorkloadConfig &config)
{
    return std::make_unique<Blackscholes>(config);
}

} // namespace dopp
