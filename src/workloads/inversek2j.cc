/**
 * @file
 * inversek2j: 2-joint arm inverse kinematics (AxBench).
 *
 * For a stream of target end-effector coordinates, compute the two
 * joint angles of a planar 2-link arm. Inputs and outputs are all
 * annotated approximate — the paper reports a 99.7% approximate LLC
 * footprint, the highest of the suite.
 *
 * Error metric: mean relative error of the joint angles [8].
 */

#include <cmath>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

constexpr double armL1 = 0.5;
constexpr double armL2 = 0.5;

class Inversek2j : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "inversek2j"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 n = scaled(240000, 256);
        Rng rng(cfg.seed);

        SimArray<float> tx(rt, n, "targetX");
        SimArray<float> ty(rt, n, "targetY");
        SimArray<float> th1(rt, n, "theta1");
        SimArray<float> th2(rt, n, "theta2");
        // One shared f32 range covering both coordinates (≤ 1.0 in
        // magnitude) and angles (≤ π).
        const double fmin = -3.2;
        const double fmax = 3.2;
        tx.annotateApprox(fmin, fmax, "ik.tx");
        ty.annotateApprox(fmin, fmax, "ik.ty");
        th1.annotateApprox(fmin, fmax, "ik.th1");
        th2.annotateApprox(fmin, fmax, "ik.th2");

        // Targets sweep smooth trajectories (robot paths), giving the
        // spatial value smoothness the benchmark is known for.
        double cx = 0.0;
        double cy = 0.5;
        for (u64 i = 0; i < n; ++i) {
            cx += rng.uniform(-0.01, 0.01);
            cy += rng.uniform(-0.01, 0.01);
            const double norm = std::hypot(cx, cy);
            const double reach = armL1 + armL2 - 1e-3;
            if (norm > reach) {
                cx *= reach / norm;
                cy *= reach / norm;
            }
            if (norm < 0.05) {
                cy += 0.1;
            }
            tx.poke(i, static_cast<float>(cx));
            ty.poke(i, static_cast<float>(cy));
        }

        rt.parallelFor(0, n, 64, [&](u64 i) {
            const double x = tx.get(i);
            const double y = ty.get(i);
            const double d2 = x * x + y * y;
            double c2 = (d2 - armL1 * armL1 - armL2 * armL2) /
                (2.0 * armL1 * armL2);
            c2 = std::clamp(c2, -1.0, 1.0);
            const double t2 = std::acos(c2);
            const double t1 = std::atan2(y, x) -
                std::atan2(armL2 * std::sin(t2),
                           armL1 + armL2 * std::cos(t2));
            th1.set(i, static_cast<float>(t1));
            th2.set(i, static_cast<float>(t2));
            rt.addWork(24);
        });

        // Output: the computed angles of a deterministic sample.
        out.clear();
        for (u64 i = 0; i < n; i += 4) {
            out.push_back(th1.get(i));
            out.push_back(th2.get(i));
        }
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        // Relative error with a floor of 0.1 rad, as tiny angles would
        // otherwise blow up the average.
        return meanRelativeError(approx, precise, 0.1);
    }
};

} // namespace

std::unique_ptr<Workload>
makeInversek2j(const WorkloadConfig &config)
{
    return std::make_unique<Inversek2j>(config);
}

} // namespace dopp
