/**
 * @file
 * fluidanimate: smoothed-particle-hydrodynamics fluid step (PARSEC).
 *
 * Particles in a box interact through SPH density and pressure forces
 * found via a uniform cell grid. Only the density field is annotated
 * approximate — the paper annotates just a small slice of this
 * benchmark's data (Table 2: 3.6% approximate footprint), leaving
 * positions, velocities, forces and the cell index precise.
 *
 * Error metric: mean particle position error relative to the domain
 * size [32].
 */

#include <cmath>
#include <vector>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

constexpr double boxSize = 1.0;
constexpr double smoothing = 0.035;   ///< SPH kernel radius
constexpr double restDensity = 1000.0;
constexpr double stiffness = 2.5;
constexpr double particleMass = 0.0006;
constexpr double timeStep = 0.002;

class Fluidanimate : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "fluidanimate"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 n = scaled(22000, 256);
        const unsigned steps = 2;
        Rng rng(cfg.seed);

        // Precise particle state.
        SimArray<float> px(rt, n, "posX");
        SimArray<float> py(rt, n, "posY");
        SimArray<float> pz(rt, n, "posZ");
        SimArray<float> vx(rt, n, "velX");
        SimArray<float> vy(rt, n, "velY");
        SimArray<float> vz(rt, n, "velZ");
        // The annotated approximate slice: densities.
        SimArray<float> density(rt, n, "density");
        density.annotateApprox(0.0, 4000.0, "fluid.density");

        // Dense block of fluid in the lower half of the box.
        for (u64 i = 0; i < n; ++i) {
            px.poke(i, static_cast<float>(rng.uniform(0.05, 0.95)));
            py.poke(i, static_cast<float>(rng.uniform(0.05, 0.5)));
            pz.poke(i, static_cast<float>(rng.uniform(0.05, 0.95)));
            vx.poke(i, 0.0f);
            vy.poke(i, 0.0f);
            vz.poke(i, 0.0f);
        }

        const unsigned cells = static_cast<unsigned>(boxSize / smoothing);
        const double h2 = smoothing * smoothing;

        auto cellOf = [&](double x) {
            const auto c = static_cast<int>(x / smoothing);
            return std::clamp(c, 0, static_cast<int>(cells) - 1);
        };

        for (unsigned step = 0; step < steps; ++step) {
            // Build the cell index from positions (native structure;
            // the precise arrays were just read through the caches).
            std::vector<std::vector<u32>> grid(
                static_cast<size_t>(cells) * cells * cells);
            std::vector<double> hx(n), hy(n), hz(n);
            rt.parallelFor(0, n, 256, [&](u64 i) {
                hx[i] = px.get(i);
                hy[i] = py.get(i);
                hz[i] = pz.get(i);
            });
            for (u64 i = 0; i < n; ++i) {
                const size_t c =
                    (static_cast<size_t>(cellOf(hx[i])) * cells +
                     cellOf(hy[i])) * cells + cellOf(hz[i]);
                grid[c].push_back(static_cast<u32>(i));
            }

            auto forEachNeighbor = [&](u64 i, auto &&fn) {
                const int cx = cellOf(hx[i]);
                const int cy = cellOf(hy[i]);
                const int cz = cellOf(hz[i]);
                for (int dx = -1; dx <= 1; ++dx)
                    for (int dy = -1; dy <= 1; ++dy)
                        for (int dz = -1; dz <= 1; ++dz) {
                            const int nx = cx + dx;
                            const int ny = cy + dy;
                            const int nz = cz + dz;
                            if (nx < 0 || ny < 0 || nz < 0 ||
                                nx >= static_cast<int>(cells) ||
                                ny >= static_cast<int>(cells) ||
                                nz >= static_cast<int>(cells))
                                continue;
                            const size_t c =
                                (static_cast<size_t>(nx) * cells + ny) *
                                    cells + nz;
                            for (u32 j : grid[c])
                                fn(j);
                        }
            };

            // Density pass: writes the approximate density field.
            // Poly6 kernel: W(r) = 315/(64π h⁹) (h² − r²)³.
            const double poly6 = 315.0 /
                (64.0 * 3.14159265358979323846 *
                 std::pow(smoothing, 9.0));
            rt.parallelFor(0, n, 64, [&](u64 i) {
                double rho = 0.0;
                forEachNeighbor(i, [&](u32 j) {
                    const double dx = hx[i] - hx[j];
                    const double dy = hy[i] - hy[j];
                    const double dz = hz[i] - hz[j];
                    const double r2 = dx * dx + dy * dy + dz * dz;
                    if (r2 < h2) {
                        const double w = h2 - r2;
                        rho += particleMass * poly6 * w * w * w;
                    }
                });
                density.set(i, static_cast<float>(rho));
                rt.addWork(40);
            });

            // Force + integrate pass: reads the approximate densities.
            rt.parallelFor(0, n, 64, [&](u64 i) {
                const double di = density.get(i);
                double fx = 0.0;
                double fy = -9.8 * particleMass; // gravity
                double fz = 0.0;
                forEachNeighbor(i, [&](u32 j) {
                    if (j == i)
                        return;
                    const double dx = hx[i] - hx[j];
                    const double dy = hy[i] - hy[j];
                    const double dz = hz[i] - hz[j];
                    const double r2 = dx * dx + dy * dy + dz * dz;
                    if (r2 >= h2 || r2 < 1e-12)
                        return;
                    const double dj = density.get(j);
                    const double r = std::sqrt(r2);
                    const double pi = stiffness * (di - restDensity);
                    const double pj = stiffness * (dj - restDensity);
                    const double scale = particleMass *
                        (pi + pj) / (2.0 * std::max(dj, 1.0)) *
                        (smoothing - r) / std::max(r, 1e-6) * 1e-4;
                    fx += dx * scale;
                    fy += dy * scale;
                    fz += dz * scale;
                });
                double nvx = vx.get(i) + timeStep * fx / particleMass;
                double nvy = vy.get(i) + timeStep * fy / particleMass;
                double nvz = vz.get(i) + timeStep * fz / particleMass;
                double nx = hx[i] + timeStep * nvx;
                double ny = hy[i] + timeStep * nvy;
                double nz = hz[i] + timeStep * nvz;
                // Reflecting walls.
                auto bounce = [](double &p, double &v) {
                    if (p < 0.0) {
                        p = -p;
                        v = -v * 0.5;
                    } else if (p > boxSize) {
                        p = 2.0 * boxSize - p;
                        v = -v * 0.5;
                    }
                };
                bounce(nx, nvx);
                bounce(ny, nvy);
                bounce(nz, nvz);
                vx.set(i, static_cast<float>(nvx));
                vy.set(i, static_cast<float>(nvy));
                vz.set(i, static_cast<float>(nvz));
                px.set(i, static_cast<float>(nx));
                py.set(i, static_cast<float>(ny));
                pz.set(i, static_cast<float>(nz));
                rt.addWork(60);
            });
        }

        // Output: sampled final particle positions.
        out.clear();
        for (u64 i = 0; i < n; i += 8) {
            out.push_back(px.get(i));
            out.push_back(py.get(i));
            out.push_back(pz.get(i));
        }
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        return meanAbsErrorNormalized(approx, precise, boxSize);
    }
};

} // namespace

std::unique_ptr<Workload>
makeFluidanimate(const WorkloadConfig &config)
{
    return std::make_unique<Fluidanimate>(config);
}

} // namespace dopp
