/**
 * @file
 * canneal: simulated-annealing netlist placement (PARSEC).
 *
 * Netlist elements are placed on a 2-D grid; annealing swaps element
 * pairs to minimize total half-perimeter wirelength. Element
 * coordinates are annotated approximate integers (Table 2: 38.0%
 * approximate footprint); the netlist topology is precise. The random
 * element selection gives canneal its hallmark random LLC access
 * pattern (the paper's most miss-sensitive workload, Sec 5.2).
 *
 * Error metric: relative error of the final routing cost [32].
 */

#include <cmath>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

constexpr i32 gridMax = 4095;
constexpr unsigned fanout = 3; ///< nets touched per element

class Canneal : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "canneal"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 n = scaled(48000, 1024); // elements
        const u64 attempts = scaled(12000, 512);
        Rng rng(cfg.seed);

        SimArray<i32> posX(rt, n, "posX");
        SimArray<i32> posY(rt, n, "posY");
        // The declared range is the architecture's full 16-bit
        // coordinate space (a conservative estimate per Sec 4.1), not
        // this netlist's particular grid.
        posX.annotateApprox(0.0, 65535.0, "canneal.x");
        posY.annotateApprox(0.0, 65535.0, "canneal.y");
        // Precise netlist: each element connects to `fanout` others,
        // mostly local with a long-range tail (Rent's rule flavour).
        SimArray<i32> nets(rt, n * fanout, "netlist");

        // Initial placement is row-major on a coarse grid, as placement
        // tools seed: element coordinates in one cache block are then
        // consecutive (x) or identical (y), the block-level structure
        // that gives canneal its LLC value similarity (Fig 7).
        const u64 gridW = 256;
        for (u64 i = 0; i < n; ++i) {
            const i64 gx = static_cast<i64>((i % gridW) * 16);
            const i64 gy = static_cast<i64>((i / gridW) * 16);
            posX.poke(i, static_cast<i32>(
                std::min<i64>(gx, gridMax)));
            posY.poke(i, static_cast<i32>(
                std::min<i64>(gy, gridMax)));
            for (unsigned f = 0; f < fanout; ++f) {
                u64 peer;
                if (rng.below(100) < 70) {
                    const i64 d = rng.range(-64, 64);
                    peer = static_cast<u64>(
                        (static_cast<i64>(i) + d +
                         static_cast<i64>(n)) % static_cast<i64>(n));
                } else {
                    peer = rng.below(n);
                }
                nets.poke(i * fanout + f, static_cast<i32>(peer));
            }
        }

        // Wirelength contribution of one element (simulated reads).
        auto elementCost = [&](u64 e) {
            const double ex = posX.get(e);
            const double ey = posY.get(e);
            double c = 0.0;
            for (unsigned f = 0; f < fanout; ++f) {
                const u64 peer = static_cast<u64>(
                    nets.get(e * fanout + f));
                c += std::abs(ex - static_cast<double>(posX.get(peer))) +
                    std::abs(ey - static_cast<double>(posY.get(peer)));
            }
            return c;
        };

        // Annealing: each chunk of attempts runs on a different core,
        // as canneal's threads work on independent random pairs.
        double temperature = 800.0;
        rt.parallelFor(0, attempts, 32, [&](u64 a) {
            (void)a;
            const u64 e1 = rng.below(n);
            // Most swap partners are nearby in element order (real
            // annealers bias moves by locality as they cool); a tail
            // of fully random partners keeps the global mixing.
            u64 e2;
            if (rng.below(100) < 70) {
                const i64 d = rng.range(-512, 512);
                e2 = static_cast<u64>(
                    (static_cast<i64>(e1) + d + static_cast<i64>(n)) %
                    static_cast<i64>(n));
            } else {
                e2 = rng.below(n);
            }
            if (e1 == e2)
                return;
            const double before = elementCost(e1) + elementCost(e2);
            // Swap the two elements' positions.
            const i32 x1 = posX.get(e1);
            const i32 y1 = posY.get(e1);
            const i32 x2 = posX.get(e2);
            const i32 y2 = posY.get(e2);
            posX.set(e1, x2);
            posY.set(e1, y2);
            posX.set(e2, x1);
            posY.set(e2, y1);
            const double after = elementCost(e1) + elementCost(e2);
            const double delta = after - before;
            const bool accept = delta < 0.0 ||
                rng.uniform() < std::exp(-delta / temperature);
            if (!accept) {
                posX.set(e1, x1);
                posY.set(e1, y1);
                posX.set(e2, x2);
                posY.set(e2, y2);
            }
            temperature *= 0.99995;
            rt.addWork(30);
        });

        // Final routing cost over a deterministic element sample.
        double cost = 0.0;
        rt.setCore(0);
        const u64 stride = std::max<u64>(1, n / 30000);
        for (u64 e = 0; e < n; e += stride)
            cost += elementCost(e);

        out.clear();
        out.push_back(cost);
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        return scalarRelativeError(approx.at(0), precise.at(0));
    }
};

} // namespace

std::unique_ptr<Workload>
makeCanneal(const WorkloadConfig &config)
{
    return std::make_unique<Canneal>(config);
}

} // namespace dopp
