#include "workload.hh"

#include "util/logging.hh"

namespace dopp
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "blackscholes", "canneal",  "ferret",
        "fluidanimate", "inversek2j", "jmeint",
        "jpeg",         "kmeans",   "swaptions",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadConfig &config)
{
    if (name == "blackscholes")
        return makeBlackscholes(config);
    if (name == "canneal")
        return makeCanneal(config);
    if (name == "ferret")
        return makeFerret(config);
    if (name == "fluidanimate")
        return makeFluidanimate(config);
    if (name == "inversek2j")
        return makeInversek2j(config);
    if (name == "jmeint")
        return makeJmeint(config);
    if (name == "jpeg")
        return makeJpeg(config);
    if (name == "kmeans")
        return makeKmeans(config);
    if (name == "swaptions")
        return makeSwaptions(config);
    fatal("unknown workload '%s'", name.c_str());
}

double
workloadOutputError(const std::string &name,
                    const std::vector<double> &approx,
                    const std::vector<double> &precise)
{
    WorkloadConfig cfg;
    return makeWorkload(name, cfg)->outputError(approx, precise);
}

} // namespace dopp
