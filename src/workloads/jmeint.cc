/**
 * @file
 * jmeint: triangle-triangle intersection testing (AxBench, from the
 * jMonkeyEngine collision kernel).
 *
 * A stream of 3-D triangle pairs is classified as intersecting or not
 * using Möller's interval-overlap test. The vertex coordinates are
 * annotated approximate (Table 2: 94.7% approximate footprint); the
 * paper notes element-wise similarity is hard to find here — a single
 * element over threshold disqualifies a block pair — yet block-granular
 * maps still extract similarity (Sec 5.1).
 *
 * Error metric: misclassification rate [8].
 */

#include <cmath>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

struct Vec3
{
    double x = 0;
    double y = 0;
    double z = 0;
};

Vec3
operator-(const Vec3 &a, const Vec3 &b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

double
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Compute the parametric interval of triangle/plane intersection. */
bool
computeInterval(double proj0, double proj1, double proj2, double d0,
                double d1, double d2, double &t0, double &t1)
{
    // Group the vertex on one side of the plane apart from the others.
    if (d0 * d1 > 0.0) {
        // d2 on the other side.
        t0 = proj2 + (proj0 - proj2) * d2 / (d2 - d0);
        t1 = proj2 + (proj1 - proj2) * d2 / (d2 - d1);
    } else if (d0 * d2 > 0.0) {
        t0 = proj1 + (proj0 - proj1) * d1 / (d1 - d0);
        t1 = proj1 + (proj2 - proj1) * d1 / (d1 - d2);
    } else if (d1 * d2 > 0.0 || d0 != 0.0) {
        t0 = proj0 + (proj1 - proj0) * d0 / (d0 - d1);
        t1 = proj0 + (proj2 - proj0) * d0 / (d0 - d2);
    } else if (d1 != 0.0) {
        t0 = proj1 + (proj0 - proj1) * d1 / (d1 - d0);
        t1 = proj1 + (proj2 - proj1) * d1 / (d1 - d2);
    } else if (d2 != 0.0) {
        t0 = proj2 + (proj0 - proj2) * d2 / (d2 - d0);
        t1 = proj2 + (proj1 - proj2) * d2 / (d2 - d1);
    } else {
        return false; // coplanar
    }
    return true;
}

/** Möller's interval-overlap triangle-triangle intersection test.
 * Coplanar pairs are reported as non-intersecting (measure-zero for
 * our randomized inputs). */
bool
triTriIntersect(const Vec3 t1[3], const Vec3 t2[3])
{
    // Plane of triangle 2.
    const Vec3 n2 = cross(t2[1] - t2[0], t2[2] - t2[0]);
    const double d2c = -dot(n2, t2[0]);
    double du[3];
    for (int i = 0; i < 3; ++i)
        du[i] = dot(n2, t1[i]) + d2c;
    constexpr double eps = 1e-12;
    for (double &d : du)
        if (std::abs(d) < eps)
            d = 0.0;
    if (du[0] * du[1] > 0.0 && du[0] * du[2] > 0.0)
        return false; // triangle 1 entirely on one side

    // Plane of triangle 1.
    const Vec3 n1 = cross(t1[1] - t1[0], t1[2] - t1[0]);
    const double d1c = -dot(n1, t1[0]);
    double dv[3];
    for (int i = 0; i < 3; ++i)
        dv[i] = dot(n1, t2[i]) + d1c;
    for (double &d : dv)
        if (std::abs(d) < eps)
            d = 0.0;
    if (dv[0] * dv[1] > 0.0 && dv[0] * dv[2] > 0.0)
        return false;

    // Direction of the intersection line; project on dominant axis.
    const Vec3 dir = cross(n1, n2);
    const double ax = std::abs(dir.x);
    const double ay = std::abs(dir.y);
    const double az = std::abs(dir.z);
    auto proj = [&](const Vec3 &v) {
        if (ax >= ay && ax >= az)
            return v.x;
        return ay >= az ? v.y : v.z;
    };

    double a0, a1, b0, b1;
    if (!computeInterval(proj(t1[0]), proj(t1[1]), proj(t1[2]), du[0],
                         du[1], du[2], a0, a1)) {
        return false;
    }
    if (!computeInterval(proj(t2[0]), proj(t2[1]), proj(t2[2]), dv[0],
                         dv[1], dv[2], b0, b1)) {
        return false;
    }
    if (a0 > a1)
        std::swap(a0, a1);
    if (b0 > b1)
        std::swap(b0, b1);
    return a1 >= b0 && b1 >= a0;
}

class Jmeint : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "jmeint"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 n = scaled(52000, 64); // triangle pairs
        Rng rng(cfg.seed);

        // 18 coordinates per pair, annotated approximate. The declared
        // range is the *model's* conservative bounding volume (Sec 4.1:
        // "a conservative estimate of the range"), much wider than the
        // scene chunk these queries cover — which is what lets block
        // maps alias despite poor element-wise similarity.
        SimArray<float> coords(rt, n * 18, "triangles");
        coords.annotateApprox(-4.0, 4.0, "jmeint.coords");
        SimArray<u8> result(rt, n, "results"); // precise output flags

        // Collision queries come from a 3-D scene: triangle pairs
        // cluster in spatial cells (a mesh's triangles are not
        // uniformly random), and coordinates carry the limited
        // precision of model data. Both properties give jmeint its
        // block-granular value similarity despite poor element-wise
        // similarity (Sec 5.1).
        constexpr unsigned sceneCells = 12;
        auto quant = [](double v) {
            return std::round(v * 512.0) / 512.0; // model precision
        };
        for (u64 i = 0; i < n; ++i) {
            const double cellX =
                static_cast<double>(rng.below(sceneCells)) /
                sceneCells;
            const double cellY =
                static_cast<double>(rng.below(sceneCells)) /
                sceneCells;
            const double cellZ =
                static_cast<double>(rng.below(sceneCells)) /
                sceneCells;
            const double cell[3] = {cellX, cellY, cellZ};
            double base[9];
            for (unsigned j = 0; j < 9; ++j)
                base[j] = cell[j % 3] + rng.uniform(0.0, 1.0 /
                                                    sceneCells);
            const double off = rng.uniform(-0.03, 0.03);
            for (unsigned j = 0; j < 9; ++j)
                coords.poke(i * 18 + j,
                            static_cast<float>(quant(base[j])));
            for (unsigned j = 0; j < 9; ++j) {
                const double c = base[j] + off +
                    rng.uniform(-0.02, 0.02);
                coords.poke(i * 18 + 9 + j,
                            static_cast<float>(quant(c)));
            }
        }

        auto classify = [&](u64 i) {
            Vec3 t1[3];
            Vec3 t2[3];
            double v[18];
            for (unsigned j = 0; j < 18; ++j)
                v[j] = coords.get(i * 18 + j);
            for (int k = 0; k < 3; ++k) {
                t1[k] = {v[k * 3], v[k * 3 + 1], v[k * 3 + 2]};
                t2[k] = {v[9 + k * 3], v[9 + k * 3 + 1],
                         v[9 + k * 3 + 2]};
            }
            rt.addWork(60);
            return triTriIntersect(t1, t2);
        };

        // Frame 1: classify every pair. A pair's first classification
        // uses the exact fetched values (Doppelgänger forwards miss
        // data before placement, Sec 3.3).
        out.assign(n + n / 4, 0.0);
        rt.parallelFor(0, n, 32, [&](u64 i) {
            const bool hit = classify(i);
            result.set(i, hit ? 1 : 0);
            out[i] = hit ? 1.0 : 0.0;
        });

        // Frame 2: the collision loop re-tests a quarter of the pairs
        // (the scene barely moved); these re-reads observe the
        // doppelgänger values the LLC now serves.
        rt.parallelFor(0, n / 4, 32, [&](u64 q) {
            const u64 i = q * 4;
            out[n + q] = classify(i) ? 1.0 : 0.0;
        });
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        return misclassificationRate(approx, precise);
    }
};

} // namespace

std::unique_ptr<Workload>
makeJmeint(const WorkloadConfig &config)
{
    return std::make_unique<Jmeint>(config);
}

} // namespace dopp
