/**
 * @file
 * ferret: content-based image similarity search (PARSEC).
 *
 * A database of image feature vectors is queried for the top-K most
 * similar entries per query image. Feature vectors are annotated
 * approximate (Table 2: 45.9% approximate footprint); image metadata
 * is precise. Candidate sets per query are deterministic, standing in
 * for ferret's index-based candidate generation.
 *
 * Error metric: fraction of queries whose top-K result *set* differs
 * from the precise run — the pessimistic metric the paper discusses
 * (other acceptable result images exist in the database) [27].
 */

#include <algorithm>
#include <array>
#include <cmath>

#include "util/random.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

constexpr unsigned featDim = 32;
constexpr unsigned topK = 4;

class Ferret : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "ferret"; }

    void
    run(SimRuntime &rt) override
    {
        const u64 dbSize = scaled(16384, 512);
        const u64 queries = scaled(288, 16);
        const u64 candidates = 192;
        Rng rng(cfg.seed);

        SimArray<float> db(rt, dbSize * featDim, "database");
        SimArray<float> qf(rt, queries * featDim, "queryFeatures");
        db.annotateApprox(0.0, 1.0, "ferret.db");
        qf.annotateApprox(0.0, 1.0, "ferret.query");
        // Precise per-image metadata touched alongside each candidate
        // (ids, sizes, offsets — ferret's rich per-entry records).
        SimArray<i32> meta(rt, dbSize * 40, "metadata");

        // Database vectors cluster around a modest number of visual
        // "topics", like real image descriptors.
        constexpr unsigned topics = 48;
        double topic[topics][featDim];
        for (auto &t : topic)
            for (double &f : t)
                f = rng.uniform(0.1, 0.9);
        // Descriptors are quantized histograms (real feature pipelines
        // bin their values), which is where ferret's block-level value
        // similarity comes from.
        auto quant = [](double v) {
            return std::round(std::clamp(v, 0.0, 1.0) * 128.0) / 128.0;
        };
        for (u64 i = 0; i < dbSize; ++i) {
            const auto &t = topic[rng.below(topics)];
            for (unsigned d = 0; d < featDim; ++d) {
                const double v = t[d] + rng.gaussian(0.0, 0.02);
                db.poke(i * featDim + d, static_cast<float>(quant(v)));
            }
            for (unsigned m = 0; m < 40; ++m)
                meta.poke(i * 40 + m, static_cast<i32>(rng.below(1000)));
        }
        // Queries are perturbed database entries, so each has
        // meaningful near neighbors.
        std::vector<u64> queryOrigin(queries);
        for (u64 q = 0; q < queries; ++q) {
            queryOrigin[q] = rng.below(dbSize);
            for (unsigned d = 0; d < featDim; ++d) {
                const double v =
                    db.peek(queryOrigin[q] * featDim + d) +
                    rng.gaussian(0.0, 0.02);
                qf.poke(q * featDim + d, static_cast<float>(
                    std::clamp(v, 0.0, 1.0)));
            }
        }

        out.clear();
        out.reserve(queries * topK);
        rt.parallelFor(0, queries, 4, [&](u64 q) {
            double feat[featDim];
            for (unsigned d = 0; d < featDim; ++d)
                feat[d] = qf.get(q * featDim + d);

            // Deterministic candidate set: a strided probe of the
            // database that always includes the query's origin.
            std::array<std::pair<double, u64>, topK> best;
            best.fill({1e30, dbSize});
            for (u64 j = 0; j < candidates; ++j) {
                const u64 cand = j == 0
                    ? queryOrigin[q]
                    : (q * 7919 + j * 104729) % dbSize;
                double dist = 0.0;
                for (unsigned d = 0; d < featDim; ++d) {
                    const double diff =
                        feat[d] - db.get(cand * featDim + d);
                    dist += diff * diff;
                }
                // Touch the candidate's precise metadata record.
                meta.get(cand * 40 + (j % 40));
                if (dist < best.back().first) {
                    best.back() = {dist, cand};
                    std::sort(best.begin(), best.end());
                }
                rt.addWork(2 * featDim);
            }
            for (const auto &[dist, id] : best)
                out.push_back(static_cast<double>(id));
        });
    }

    double
    outputError(const std::vector<double> &approx,
                const std::vector<double> &precise) const override
    {
        return topkSetDifferenceRate(approx, precise, topK);
    }
};

} // namespace

std::unique_ptr<Workload>
makeFerret(const WorkloadConfig &config)
{
    return std::make_unique<Ferret>(config);
}

} // namespace dopp
