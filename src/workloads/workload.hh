/**
 * @file
 * Workload interface and factory for the nine benchmarks of Sec 4.1.
 *
 * Each benchmark is a self-contained, deterministic kernel that mirrors
 * the algorithm of its PARSEC/AxBench namesake (see DESIGN.md for the
 * substitution argument). Workloads allocate and annotate their data
 * through a SimRuntime, run to completion, and expose a final-output
 * vector; application error is obtained by comparing the output of a
 * run on an approximate LLC to that of a run on the precise baseline.
 */

#ifndef DOPP_WORKLOADS_WORKLOAD_HH
#define DOPP_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/runtime.hh"

namespace dopp
{

/** Sizing knobs shared by all workloads. */
struct WorkloadConfig
{
    /** Linear input-size scale; 1.0 is the default evaluation size. */
    double scale = 1.0;

    /** Input-generation seed; equal seeds give identical inputs. */
    u64 seed = 12345;

    /**
     * Per-use range annotations: instead of one declared range for all
     * elements of a data type (the paper's Sec 4.1 simplification),
     * regions holding small-magnitude values (swaptions' rates) are
     * annotated with their own tight range. This is the "other
     * similarity functions that account for different ranges or
     * different uses of the same data type" the paper leaves as future
     * work (Sec 5.2). Currently honored by swaptions.
     */
    bool perUseRanges = false;
};

/** Abstract benchmark. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &config) : cfg(config) {}
    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** Benchmark name (Table 2 spelling). */
    virtual const char *name() const = 0;

    /** Execute the kernel against @p rt, filling the output vector. */
    virtual void run(SimRuntime &rt) = 0;

    /**
     * Application output error of an approximate run's output against
     * a precise baseline's, using the benchmark's own metric. Pure:
     * usable on a freshly constructed instance.
     */
    virtual double outputError(
        const std::vector<double> &approx_output,
        const std::vector<double> &precise_output) const = 0;

    /** Final output vector (filled by run()). */
    const std::vector<double> &output() const { return out; }

  protected:
    /** Scale helper: N × scale, at least @p min_n. */
    u64
    scaled(u64 n, u64 min_n = 1) const
    {
        const double v = static_cast<double>(n) * cfg.scale;
        return std::max<u64>(static_cast<u64>(v), min_n);
    }

    WorkloadConfig cfg;
    std::vector<double> out;
};

/** All nine benchmark names, in Table 2 order. */
const std::vector<std::string> &workloadNames();

/** Construct the named benchmark. Fatal on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadConfig &config);

/** Score @p approx against @p precise with @p name's error metric. */
double workloadOutputError(const std::string &name,
                           const std::vector<double> &approx,
                           const std::vector<double> &precise);

/** @name Individual factories */
/// @{
std::unique_ptr<Workload> makeBlackscholes(const WorkloadConfig &);
std::unique_ptr<Workload> makeCanneal(const WorkloadConfig &);
std::unique_ptr<Workload> makeFerret(const WorkloadConfig &);
std::unique_ptr<Workload> makeFluidanimate(const WorkloadConfig &);
std::unique_ptr<Workload> makeInversek2j(const WorkloadConfig &);
std::unique_ptr<Workload> makeJmeint(const WorkloadConfig &);
std::unique_ptr<Workload> makeJpeg(const WorkloadConfig &);
std::unique_ptr<Workload> makeKmeans(const WorkloadConfig &);
std::unique_ptr<Workload> makeSwaptions(const WorkloadConfig &);
/// @}

} // namespace dopp

#endif // DOPP_WORKLOADS_WORKLOAD_HH
