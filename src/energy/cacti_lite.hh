/**
 * @file
 * CactiLite: an analytical SRAM area/latency/energy model at 32 nm.
 *
 * The paper uses CACTI 5.1 [35]; we do not have it, so we substitute a
 * small analytical model *calibrated to the very CACTI numbers the
 * paper publishes* (Table 3): per-category power-law fits
 * (cost = a · capacityKB^b) are least-squares fitted in log-log space
 * to the Table 3 anchor points at construction time. Structures are
 * costed as a tag-like part (wide comparators, small rows) plus a
 * data-like part (512-bit rows), the same decomposition Table 3
 * reports. Leakage power is modeled as proportional to storage
 * capacity, which reproduces the paper's 1.41× LLC leakage reduction;
 * its absolute scale (mW/KB) is a documented constant since the paper
 * only reports ratios.
 */

#ifndef DOPP_ENERGY_CACTI_LITE_HH
#define DOPP_ENERGY_CACTI_LITE_HH

#include <vector>

#include "util/types.hh"

namespace dopp
{

/** A fitted power law cost(KB) = a · KB^b. */
struct PowerLaw
{
    double a = 0.0;
    double b = 1.0;

    double eval(double kb) const;
};

/** Fit a power law to (capacityKB, cost) anchors in log-log space. */
PowerLaw fitPowerLaw(const std::vector<std::pair<double, double>> &pts);

/** Cost figures for one SRAM subarray. */
struct SramCost
{
    double sizeKb = 0.0;
    double areaMm2 = 0.0;
    double latencyNs = 0.0;
    double readEnergyPj = 0.0;
    double writeEnergyPj = 0.0;
    double leakageMw = 0.0;
};

/**
 * The calibrated model. One instance is cheap; construct and query.
 */
class CactiLite
{
  public:
    CactiLite();

    /** Cost a tag-like subarray of @p bits total storage. */
    SramCost tagArray(double bits) const;

    /** Cost a data-like subarray (512-bit rows) of @p bits storage. */
    SramCost dataArray(double bits) const;

    /** Leakage power scale in mW per KB of SRAM (documented constant;
     * the paper reports only leakage *ratios*, which are scale-free). */
    static constexpr double leakageMwPerKb = 0.3;

    /** Write energy premium over reads (CACTI reports writes within a
     * few percent of reads for these geometries). */
    static constexpr double writeEnergyFactor = 1.05;

  private:
    SramCost cost(double bits, const PowerLaw &area, const PowerLaw &lat,
                  const PowerLaw &energy) const;

    PowerLaw tagAreaFit;
    PowerLaw tagLatFit;
    PowerLaw tagEnergyFit;
    PowerLaw dataAreaFit;
    PowerLaw dataLatFit;
    PowerLaw dataEnergyFit;
};

} // namespace dopp

#endif // DOPP_ENERGY_CACTI_LITE_HH
