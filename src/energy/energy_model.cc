#include "energy_model.hh"

namespace dopp
{

double
EnergyModel::arrayPj(const SramCost &cost, const ArrayCounters &c)
{
    return cost.readEnergyPj * static_cast<double>(c.reads) +
        cost.writeEnergyPj * static_cast<double>(c.writes);
}

double
EnergyModel::leakagePj(const LlcCost &llc, Tick cycles)
{
    // 1 GHz: one cycle is 1 ns; P[mW] × t[ns] = E[pJ].
    return llc.leakageMw * static_cast<double>(cycles);
}

EnergyResult
EnergyModel::baseline(const LlcStats &stats, Tick cycles, u64 entries,
                      u32 ways) const
{
    const LlcCost llc = baselineLlcCost(model, entries, ways);
    const StructureCost &s = llc.structures.front();

    EnergyResult r;
    r.dynamicPj = arrayPj(s.tagPart, stats.tagArray) +
        arrayPj(s.dataPart, stats.dataArray);
    r.leakagePj = leakagePj(llc, cycles);
    return r;
}

EnergyResult
EnergyModel::split(const LlcStats &precise, const LlcStats &dopp,
                   const DoppConfig &cfg, Tick cycles, u64 precise_entries,
                   u32 precise_ways) const
{
    const LlcCost llc =
        splitLlcCost(model, precise_entries, precise_ways, cfg);
    const StructureCost &pc = llc.structures[0];
    const StructureCost &tag = llc.structures[1];
    const StructureCost &dat = llc.structures[2];

    EnergyResult r;
    r.dynamicPj = arrayPj(pc.tagPart, precise.tagArray) +
        arrayPj(pc.dataPart, precise.dataArray) +
        arrayPj(tag.tagPart, dopp.tagArray) +
        arrayPj(dat.tagPart, dopp.mtagArray) +
        arrayPj(dat.dataPart, dopp.dataArray);
    r.mapGenPj = mapGenEnergyPj * static_cast<double>(dopp.mapGens);
    r.dynamicPj += r.mapGenPj;
    r.leakagePj = leakagePj(llc, cycles);
    return r;
}

EnergyResult
EnergyModel::unified(const LlcStats &stats, const DoppConfig &cfg,
                     Tick cycles) const
{
    const LlcCost llc = uniLlcCost(model, cfg);
    const StructureCost &tag = llc.structures[0];
    const StructureCost &dat = llc.structures[1];

    EnergyResult r;
    r.dynamicPj = arrayPj(tag.tagPart, stats.tagArray) +
        arrayPj(dat.tagPart, stats.mtagArray) +
        arrayPj(dat.dataPart, stats.dataArray);
    r.mapGenPj = mapGenEnergyPj * static_cast<double>(stats.mapGens);
    r.dynamicPj += r.mapGenPj;
    r.leakagePj = leakagePj(llc, cycles);
    return r;
}

} // namespace dopp
