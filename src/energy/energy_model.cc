#include "energy_model.hh"

namespace dopp
{

double
EnergyModel::arrayPj(const SramCost &cost, const ArrayCounters &c)
{
    return cost.readEnergyPj * static_cast<double>(c.reads) +
        cost.writeEnergyPj * static_cast<double>(c.writes);
}

double
EnergyModel::leakagePj(const LlcCost &llc, Tick cycles)
{
    // 1 GHz: one cycle is 1 ns; P[mW] × t[ns] = E[pJ].
    return llc.leakageMw * static_cast<double>(cycles);
}

EnergyResult
EnergyModel::baseline(const LlcStats &stats, Tick cycles, u64 entries,
                      u32 ways) const
{
    const LlcCost llc = baselineLlcCost(model, entries, ways);
    const StructureCost &s = llc.structures.front();

    EnergyResult r;
    r.dynamicPj = arrayPj(s.tagPart, stats.tagArray) +
        arrayPj(s.dataPart, stats.dataArray);
    r.leakagePj = leakagePj(llc, cycles);
    return r;
}

EnergyResult
EnergyModel::split(const LlcStats &precise, const LlcStats &dopp,
                   const DoppConfig &cfg, Tick cycles, u64 precise_entries,
                   u32 precise_ways) const
{
    const LlcCost llc =
        splitLlcCost(model, precise_entries, precise_ways, cfg);
    const StructureCost &pc = llc.structures[0];
    const StructureCost &tag = llc.structures[1];
    const StructureCost &dat = llc.structures[2];

    EnergyResult r;
    r.dynamicPj = arrayPj(pc.tagPart, precise.tagArray) +
        arrayPj(pc.dataPart, precise.dataArray) +
        arrayPj(tag.tagPart, dopp.tagArray) +
        arrayPj(dat.tagPart, dopp.mtagArray) +
        arrayPj(dat.dataPart, dopp.dataArray);
    r.mapGenPj = mapGenEnergyPj * static_cast<double>(dopp.mapGens);
    r.dynamicPj += r.mapGenPj;
    r.leakagePj = leakagePj(llc, cycles);
    return r;
}

EnergyResult
EnergyModel::unified(const LlcStats &stats, const DoppConfig &cfg,
                     Tick cycles) const
{
    const LlcCost llc = uniLlcCost(model, cfg);
    const StructureCost &tag = llc.structures[0];
    const StructureCost &dat = llc.structures[1];

    EnergyResult r;
    r.dynamicPj = arrayPj(tag.tagPart, stats.tagArray) +
        arrayPj(dat.tagPart, stats.mtagArray) +
        arrayPj(dat.dataPart, stats.dataArray);
    r.mapGenPj = mapGenEnergyPj * static_cast<double>(stats.mapGens);
    r.dynamicPj += r.mapGenPj;
    r.leakagePj = leakagePj(llc, cycles);
    return r;
}

namespace
{

/** Read/write counters of array @p prefix from a registry snapshot. */
ArrayCounters
arrayFromSnapshot(const StatSnapshot &snap, const std::string &prefix)
{
    ArrayCounters c;
    c.reads = snap.counter(prefix + ".reads");
    c.writes = snap.counter(prefix + ".writes");
    return c;
}

/** The LlcStats fields the energy model consumes, from a snapshot. */
LlcStats
energyStatsFromSnapshot(const StatSnapshot &snap,
                        const std::string &group)
{
    LlcStats s;
    s.tagArray = arrayFromSnapshot(snap, group + ".tagArray");
    s.mtagArray = arrayFromSnapshot(snap, group + ".mtagArray");
    s.dataArray = arrayFromSnapshot(snap, group + ".dataArray");
    s.mapGens = snap.counter(group + ".mapGens");
    return s;
}

Tick
runtimeFromSnapshot(const StatSnapshot &snap)
{
    return snap.counter("run.runtimeCycles");
}

} // namespace

EnergyResult
EnergyModel::baseline(const StatSnapshot &snap, const std::string &group,
                      u64 entries, u32 ways) const
{
    return baseline(energyStatsFromSnapshot(snap, group),
                    runtimeFromSnapshot(snap), entries, ways);
}

EnergyResult
EnergyModel::split(const StatSnapshot &snap,
                   const std::string &precise_group,
                   const std::string &dopp_group, const DoppConfig &cfg,
                   u64 precise_entries, u32 precise_ways) const
{
    return split(energyStatsFromSnapshot(snap, precise_group),
                 energyStatsFromSnapshot(snap, dopp_group), cfg,
                 runtimeFromSnapshot(snap), precise_entries,
                 precise_ways);
}

EnergyResult
EnergyModel::unified(const StatSnapshot &snap, const std::string &group,
                     const DoppConfig &cfg) const
{
    return unified(energyStatsFromSnapshot(snap, group), cfg,
                   runtimeFromSnapshot(snap));
}

MemTierEnergy
memTierEnergy(const MemTierConfig &tier, const StatSnapshot &snap)
{
    const Tick cycles = runtimeFromSnapshot(snap);

    MemTierEnergy out;
    out.partitions.reserve(tier.partitions.size());
    for (size_t i = 0; i < tier.partitions.size(); ++i) {
        const MemPartitionProfile &prof = tier.partitions[i];
        const std::string prefix =
            "mem.partition" + std::to_string(i) + ".";

        MemPartitionEnergy e;
        e.name = prof.name;
        const std::string readsName = prefix + "reads";
        const std::string writesName = prefix + "writes";
        if (snap.has(readsName)) {
            e.dynamicPj = prof.readEnergyPj *
                    static_cast<double>(snap.counter(readsName)) +
                prof.writeEnergyPj *
                    static_cast<double>(snap.counter(writesName));
            // 1 GHz: one cycle is 1 ns; P[mW] × t[ns] = E[pJ].
            e.standbyPj =
                prof.standbyPowerMw * static_cast<double>(cycles);
        }
        out.partitions.push_back(std::move(e));
    }
    return out;
}

} // namespace dopp
