#include "hardware_cost.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace dopp
{

namespace
{

/** Address-tag width of a block-grained structure with @p sets sets. */
unsigned
addrTagBits(u64 sets, const CostParams &params)
{
    return params.addrBits - blockOffsetBits - floorLog2(sets);
}

/** Total combined map width (Sec 3.7: M bits average + ⌈M/2⌉ range). */
unsigned
mapFieldBits(unsigned map_bits)
{
    return map_bits + (map_bits + 1) / 2;
}

/** Fill the aggregate fields of @p llc from its structure list. */
void
finalize(LlcCost &llc)
{
    llc.totalAreaMm2 = llc.fpuAreaMm2;
    llc.totalKb = 0.0;
    llc.leakageMw = 0.0;
    for (const auto &s : llc.structures) {
        llc.totalAreaMm2 += s.areaMm2;
        llc.totalKb += s.totalKb;
        llc.leakageMw += s.tagPart.leakageMw + s.dataPart.leakageMw;
    }
}

} // namespace

StructureCost
conventionalCost(const CactiLite &cacti, const std::string &name,
                 u64 entries, u32 ways, const CostParams &params)
{
    StructureCost c;
    c.name = name;
    c.entries = entries;
    const u64 sets = entries / ways;
    // Table 3 baseline: tag 15 + coherence 4 + full-map 4 + repl 4.
    c.tagEntryBits = addrTagBits(sets, params) + params.coherenceBits +
        params.cores + floorLog2(ways);
    c.dataEntryBits = blockBytes * 8;
    c.tagPart = cacti.tagArray(
        static_cast<double>(entries) * c.tagEntryBits);
    c.dataPart = cacti.dataArray(
        static_cast<double>(entries) * c.dataEntryBits);
    c.totalKb = c.tagPart.sizeKb + c.dataPart.sizeKb;
    c.areaMm2 = c.tagPart.areaMm2 + c.dataPart.areaMm2;
    return c;
}

StructureCost
doppTagCost(const CactiLite &cacti, const std::string &name,
            const DoppConfig &cfg, const CostParams &params)
{
    StructureCost c;
    c.name = name;
    c.entries = cfg.tagEntries;
    const u64 sets = cfg.tagEntries / cfg.tagWays;
    // Table 3: tag + coherence + full-map + repl + 2 tag pointers +
    // map field (+ precise/approximate bit when unified).
    c.tagEntryBits = addrTagBits(sets, params) + params.coherenceBits +
        params.cores + floorLog2(cfg.tagWays) +
        2 * ceilLog2(cfg.tagEntries) + mapFieldBits(cfg.mapBits) +
        (cfg.unified ? 1 : 0);
    c.dataEntryBits = 0;
    c.tagPart = cacti.tagArray(
        static_cast<double>(cfg.tagEntries) * c.tagEntryBits);
    c.totalKb = c.tagPart.sizeKb;
    c.areaMm2 = c.tagPart.areaMm2;
    return c;
}

StructureCost
doppDataCost(const CactiLite &cacti, const std::string &name,
             const DoppConfig &cfg, const CostParams &params)
{
    (void)params;
    StructureCost c;
    c.name = name;
    c.entries = cfg.dataEntries;
    const u64 sets = cfg.dataEntries / cfg.dataWays;
    const unsigned setBits = floorLog2(sets);
    // MTag entry per Table 3: a map tag sized so that the average map's
    // non-index bits plus the full range map are stored (reproducing
    // the published 20-/18-bit tag fields), plus replacement bits and
    // the tag pointer to the list head (+ precise bit when unified).
    const unsigned avgTagBits =
        cfg.mapBits > setBits ? cfg.mapBits - setBits : 0;
    c.tagEntryBits = avgTagBits + cfg.mapBits + floorLog2(cfg.dataWays) +
        ceilLog2(cfg.tagEntries) + (cfg.unified ? 1 : 0);
    c.dataEntryBits = blockBytes * 8;
    c.tagPart = cacti.tagArray(
        static_cast<double>(cfg.dataEntries) * c.tagEntryBits);
    c.dataPart = cacti.dataArray(
        static_cast<double>(cfg.dataEntries) * c.dataEntryBits);
    c.totalKb = c.tagPart.sizeKb + c.dataPart.sizeKb;
    c.areaMm2 = c.tagPart.areaMm2 + c.dataPart.areaMm2;
    return c;
}

LlcCost
baselineLlcCost(const CactiLite &cacti, u64 entries, u32 ways,
                const CostParams &params)
{
    LlcCost llc;
    llc.name = "baseline";
    llc.structures.push_back(
        conventionalCost(cacti, "baseline LLC", entries, ways, params));
    finalize(llc);
    return llc;
}

LlcCost
splitLlcCost(const CactiLite &cacti, u64 precise_entries, u32 precise_ways,
             const DoppConfig &dopp, const CostParams &params)
{
    LlcCost llc;
    llc.name = "split-doppelganger";
    llc.structures.push_back(conventionalCost(
        cacti, "precise cache", precise_entries, precise_ways, params));
    llc.structures.push_back(
        doppTagCost(cacti, "doppelganger tag array", dopp, params));
    llc.structures.push_back(
        doppDataCost(cacti, "doppelganger data array", dopp, params));
    llc.fpuAreaMm2 = mapGenFpuCount * mapGenFpuAreaMm2;
    finalize(llc);
    return llc;
}

LlcCost
uniLlcCost(const CactiLite &cacti, const DoppConfig &uni,
           const CostParams &params)
{
    DOPP_ASSERT(uni.unified);
    LlcCost llc;
    llc.name = "uniDoppelganger";
    llc.structures.push_back(
        doppTagCost(cacti, "uniDoppelganger tag array", uni, params));
    llc.structures.push_back(
        doppDataCost(cacti, "uniDoppelganger data array", uni, params));
    llc.fpuAreaMm2 = mapGenFpuCount * mapGenFpuAreaMm2;
    finalize(llc);
    return llc;
}

} // namespace dopp
