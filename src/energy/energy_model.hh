/**
 * @file
 * LLC energy accounting (paper Sec 5.3, 5.6): per-structure access
 * counts from the simulation × CactiLite per-access energies, plus the
 * 168 pJ map-generation cost, plus leakage power × runtime.
 */

#ifndef DOPP_ENERGY_ENERGY_MODEL_HH
#define DOPP_ENERGY_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "core/doppelganger_cache.hh"
#include "energy/hardware_cost.hh"
#include "sim/llc.hh"
#include "sim/mem_tier.hh"

namespace dopp
{

/** Energy of one run of one LLC organization. */
struct EnergyResult
{
    double dynamicPj = 0.0;  ///< total switching energy
    double leakagePj = 0.0;  ///< leakage over the measured runtime
    double mapGenPj = 0.0;   ///< portion of dynamicPj spent hashing

    double totalPj() const { return dynamicPj + leakagePj; }
};

/** Energy of one main-memory partition over one run. */
struct MemPartitionEnergy
{
    std::string name;        ///< profile name ("dram", "nvm-bank", …)
    double dynamicPj = 0.0;  ///< reads/writes × per-access energies
    double standbyPj = 0.0;  ///< standby/refresh power × runtime

    double totalPj() const { return dynamicPj + standbyPj; }
};

/** Per-partition + total memory-tier energy of one run. */
struct MemTierEnergy
{
    std::vector<MemPartitionEnergy> partitions;

    double
    totalPj() const
    {
        double sum = 0.0;
        for (const auto &p : partitions)
            sum += p.totalPj();
        return sum;
    }
};

/**
 * Memory-tier energy from a run's registry snapshot: partition i's
 * access counts are read from "mem.partitionI.reads"/".writes"
 * (MainMemory::registerStats) and multiplied by @p tier's per-access
 * energies; standby power integrates over "run.runtimeCycles" (1 GHz:
 * cycles = ns, so pJ = mW × cycles). Partitions whose counters are
 * absent from the snapshot (legacy flat-memory runs) contribute zero.
 */
MemTierEnergy memTierEnergy(const MemTierConfig &tier,
                            const StatSnapshot &snap);

/**
 * Converts LLC statistics into energy for the three organizations the
 * paper evaluates. Core clock is 1 GHz (Table 1), so cycles = ns.
 */
class EnergyModel
{
  public:
    EnergyModel() = default;

    /** Baseline conventional LLC energy. */
    EnergyResult baseline(const LlcStats &stats, Tick cycles,
                          u64 entries = 32 * 1024, u32 ways = 16) const;

    /**
     * Split organization energy: @p precise and @p dopp are the two
     * halves' stats, @p cfg the Doppelgänger geometry.
     */
    EnergyResult split(const LlcStats &precise, const LlcStats &dopp,
                       const DoppConfig &cfg, Tick cycles,
                       u64 precise_entries = 16 * 1024,
                       u32 precise_ways = 16) const;

    /** uniDoppelgänger energy. */
    EnergyResult unified(const LlcStats &stats, const DoppConfig &cfg,
                         Tick cycles) const;

    /**
     * @name Snapshot-based overloads
     * Pull the per-structure access counts out of a run's registry
     * snapshot (RunResult::stats) by dotted structure name instead of
     * a typed LlcStats: @p group names the group the organization's
     * counters live under ("llc", "llc.precise", "llc.dopp"), and the
     * runtime comes from "run.runtimeCycles". Fatal if a needed
     * counter is missing from the snapshot.
     */
    /// @{
    EnergyResult baseline(const StatSnapshot &snap,
                          const std::string &group,
                          u64 entries = 32 * 1024,
                          u32 ways = 16) const;

    EnergyResult split(const StatSnapshot &snap,
                       const std::string &precise_group,
                       const std::string &dopp_group,
                       const DoppConfig &cfg,
                       u64 precise_entries = 16 * 1024,
                       u32 precise_ways = 16) const;

    EnergyResult unified(const StatSnapshot &snap,
                         const std::string &group,
                         const DoppConfig &cfg) const;
    /// @}

    const CactiLite &cacti() const { return model; }

  private:
    /** read/write counters × a subarray's per-access energies. */
    static double arrayPj(const SramCost &cost, const ArrayCounters &c);

    /** leakage of @p llc over @p cycles ns. */
    static double leakagePj(const LlcCost &llc, Tick cycles);

    CactiLite model;
};

} // namespace dopp

#endif // DOPP_ENERGY_ENERGY_MODEL_HH
