/**
 * @file
 * Hardware cost accounting (paper Sec 5.6, Table 3): per-structure
 * entry bit widths computed from first principles, total storage, and
 * CactiLite-derived area/latency/energy. Also aggregates whole-LLC
 * organizations for the Fig 13 area comparison and the energy model.
 */

#ifndef DOPP_ENERGY_HARDWARE_COST_HH
#define DOPP_ENERGY_HARDWARE_COST_HH

#include <string>
#include <vector>

#include "core/doppelganger_cache.hh"
#include "energy/cacti_lite.hh"
#include "util/types.hh"

namespace dopp
{

/** System-level constants entering metadata widths. */
struct CostParams
{
    unsigned addrBits = 32;  ///< physical address bits (Sec 5.6)
    u32 cores = 4;           ///< full-map directory vector width
    unsigned coherenceBits = 4; ///< per-tag coherence state (Table 3)
};

/** Cost summary of one structure (a Table 3 column). */
struct StructureCost
{
    std::string name;
    u64 entries = 0;
    unsigned tagEntryBits = 0;  ///< metadata bits per entry
    unsigned dataEntryBits = 0; ///< 512 for data-bearing structures
    double totalKb = 0.0;
    double areaMm2 = 0.0;
    SramCost tagPart;  ///< metadata subarray (or MTag array)
    SramCost dataPart; ///< 512-bit-row subarray (zeroed if none)
};

/** Cost of a conventional cache (baseline LLC / precise half). */
StructureCost conventionalCost(const CactiLite &cacti,
                               const std::string &name, u64 entries,
                               u32 ways, const CostParams &params = {});

/** Cost of the Doppelgänger tag array. */
StructureCost doppTagCost(const CactiLite &cacti, const std::string &name,
                          const DoppConfig &cfg,
                          const CostParams &params = {});

/** Cost of the Doppelgänger approximate data array (incl. MTag). */
StructureCost doppDataCost(const CactiLite &cacti,
                           const std::string &name, const DoppConfig &cfg,
                           const CostParams &params = {});

/** Whole-LLC organization aggregate. */
struct LlcCost
{
    std::string name;
    std::vector<StructureCost> structures;
    double fpuAreaMm2 = 0.0; ///< map-generation FPUs (8 × 0.01 mm²)
    double totalAreaMm2 = 0.0;
    double totalKb = 0.0;
    double leakageMw = 0.0;
};

/** Number and unit area of the map-generation FPUs (Sec 4). */
constexpr unsigned mapGenFpuCount = 8;
constexpr double mapGenFpuAreaMm2 = 0.01;

/** The 2 MB conventional baseline (Table 1). */
LlcCost baselineLlcCost(const CactiLite &cacti, u64 entries = 32 * 1024,
                        u32 ways = 16, const CostParams &params = {});

/** The split organization: precise cache + Doppelgänger cache. */
LlcCost splitLlcCost(const CactiLite &cacti, u64 precise_entries,
                     u32 precise_ways, const DoppConfig &dopp,
                     const CostParams &params = {});

/** The unified uniDoppelgänger organization. */
LlcCost uniLlcCost(const CactiLite &cacti, const DoppConfig &uni,
                   const CostParams &params = {});

} // namespace dopp

#endif // DOPP_ENERGY_HARDWARE_COST_HH
