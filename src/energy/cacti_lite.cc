#include "cacti_lite.hh"

#include <cmath>

#include "util/logging.hh"

namespace dopp
{

double
PowerLaw::eval(double kb) const
{
    if (kb <= 0.0)
        return 0.0;
    return a * std::pow(kb, b);
}

PowerLaw
fitPowerLaw(const std::vector<std::pair<double, double>> &pts)
{
    DOPP_ASSERT(pts.size() >= 2);
    // Ordinary least squares on (ln x, ln y).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = static_cast<double>(pts.size());
    for (const auto &[x, y] : pts) {
        DOPP_ASSERT(x > 0 && y > 0);
        const double lx = std::log(x);
        const double ly = std::log(y);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    PowerLaw law;
    law.b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    law.a = std::exp((sy - law.b * sx) / n);
    return law;
}

namespace
{

// Table 3 anchor points as (capacity KB, value). Tag-like structures:
// the four cache tag arrays plus the two standalone tag arrays; the
// area of data-bearing structures is decomposed by subtracting the
// fitted tag-part area (see DESIGN.md).
const std::vector<std::pair<double, double>> tagLatAnchors = {
    {19, 0.30}, {56, 0.45}, {76, 0.51}, {108, 0.61}, {154, 0.48},
    {316, 0.74},
};
const std::vector<std::pair<double, double>> tagEnergyAnchors = {
    {19, 6.3}, {56, 13.5}, {76, 18.7}, {108, 24.8}, {154, 30.8},
    {316, 61.3},
};
const std::vector<std::pair<double, double>> tagAreaAnchors = {
    {154, 0.19}, {316, 0.40},
};
const std::vector<std::pair<double, double>> dataLatAnchors = {
    {256, 0.67}, {1024, 1.07}, {2048, 1.27},
};
const std::vector<std::pair<double, double>> dataEnergyAnchors = {
    {256, 80.3}, {1024, 322.7}, {2048, 667.4},
};
// Data-part areas after subtracting the fitted tag-part area from the
// Table 3 totals (4.12, 1.91, 0.47, 1.95 mm^2).
const std::vector<std::pair<double, double>> dataAreaAnchors = {
    {256, 0.448}, {1024, 1.843}, {1024, 1.858}, {2048, 3.988},
};

} // namespace

CactiLite::CactiLite()
{
    tagAreaFit = fitPowerLaw(tagAreaAnchors);
    tagLatFit = fitPowerLaw(tagLatAnchors);
    tagEnergyFit = fitPowerLaw(tagEnergyAnchors);
    dataAreaFit = fitPowerLaw(dataAreaAnchors);
    dataLatFit = fitPowerLaw(dataLatAnchors);
    dataEnergyFit = fitPowerLaw(dataEnergyAnchors);
}

SramCost
CactiLite::cost(double bits, const PowerLaw &area, const PowerLaw &lat,
                const PowerLaw &energy) const
{
    SramCost c;
    c.sizeKb = bits / 8.0 / 1024.0;
    c.areaMm2 = area.eval(c.sizeKb);
    c.latencyNs = lat.eval(c.sizeKb);
    c.readEnergyPj = energy.eval(c.sizeKb);
    c.writeEnergyPj = c.readEnergyPj * writeEnergyFactor;
    c.leakageMw = leakageMwPerKb * c.sizeKb;
    return c;
}

SramCost
CactiLite::tagArray(double bits) const
{
    return cost(bits, tagAreaFit, tagLatFit, tagEnergyFit);
}

SramCost
CactiLite::dataArray(double bits) const
{
    return cost(bits, dataAreaFit, dataLatFit, dataEnergyFit);
}

} // namespace dopp
