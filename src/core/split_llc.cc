#include "split_llc.hh"

namespace dopp
{

LlcStats
addStats(const LlcStats &a, const LlcStats &b)
{
    // Field-wise over the canonical counter list: a counter added to
    // LlcStats but missing from llcStatFields() trips the size
    // static_assert in llc.cc, so nothing can silently vanish from
    // the aggregated sum (and nothing is ever double-counted).
    LlcStats s;
    for (const LlcStatField &f : llcStatFields())
        f.ref(s) = f.value(a) + f.value(b);
    return s;
}

SplitLlc::SplitLlc(MainMemory &memory, const SplitLlcConfig &config,
                   const ApproxRegistry &registry,
                   StatRegistry *stat_registry,
                   const std::string &stat_group)
    : LastLevelCache(memory, stat_registry, stat_group),
      registry(registry),
      preciseHalf(std::make_unique<ConventionalLlc>(
          memory, config.preciseBytes, config.preciseWays,
          config.preciseLatency, &registry, ReplPolicy::LRU,
          &statRegistry(),
          statGroupPath() + ".precise")),
      doppHalf(makeDoppEngine(memory, config.dopp, &registry,
                              &statRegistry(),
                              statGroupPath() + ".dopp")),
      degradedFillsCtr(statGroup().group("route").counter(
          "degradedFills",
          "approximate fills routed precise while degraded"))
{
    // Aggregate view: every canonical LlcStats field plus the derived
    // formulas, computed over the sum of both halves and the split's
    // own routing counters.
    registerLlcStatsView(statGroup(), [this] { return stats(); });
}

void
SplitLlc::setBackInvalidate(BackInvalidateFn fn)
{
    preciseHalf->setBackInvalidate(fn);
    doppHalf->setBackInvalidate(fn);
}

LastLevelCache::FetchResult
SplitLlc::fetch(Addr addr, u8 *data)
{
    if (registry.isApprox(addr)) {
        // Blocks the guardrail routed precise stay coherent: serve
        // them from the precise half until it evicts them.
        if (preciseHalf->contains(addr))
            return preciseHalf->fetch(addr, data);
        if (guardrail && guardrail->degraded() &&
            !doppHalf->contains(addr)) {
            // Degraded: new approximate fills go to the precise half
            // (exact storage) until the error estimate recovers.
            // Doppelgänger-resident blocks keep hitting there.
            ++degradedFillsCtr;
            return preciseHalf->fetch(addr, data);
        }
        return doppHalf->fetch(addr, data);
    }
    return preciseHalf->fetch(addr, data);
}

void
SplitLlc::writeback(Addr addr, const u8 *data)
{
    if (registry.isApprox(addr) && !preciseHalf->contains(addr))
        doppHalf->writeback(addr, data);
    else
        preciseHalf->writeback(addr, data);
}

bool
SplitLlc::contains(Addr addr) const
{
    if (registry.isApprox(addr)) {
        return doppHalf->contains(addr) ||
            preciseHalf->contains(addr);
    }
    return preciseHalf->contains(addr);
}

void
SplitLlc::forEachBlock(
    const std::function<void(const LlcBlockInfo &)> &visit) const
{
    preciseHalf->forEachBlock(visit);
    doppHalf->forEachBlock(visit);
}

void
SplitLlc::flush()
{
    preciseHalf->flush();
    doppHalf->flush();
}

void
SplitLlc::setFaultInjector(FaultInjector *fi)
{
    // Only the approximate structures take faults: the precise half
    // models a conventional ECC-protected cache. The split's own
    // llcStats never counts injections, so the aggregate counts each
    // fault exactly once (in the Doppelgänger half).
    doppHalf->setFaultInjector(fi);
}

void
SplitLlc::setHotPathProfile(HotPathProfile *p)
{
    // Both halves accumulate into one profile: a split approximate
    // access pays the precise-half probe (containment check) plus the
    // Doppelgänger path, and the breakdown should show both.
    preciseHalf->setHotPathProfile(p);
    doppHalf->setHotPathProfile(p);
}

void
SplitLlc::setGuardrail(QorGuardrail *g)
{
    // The split consults degraded() for routing; the Doppelgänger half
    // feeds the error estimate. degradedFills is counted only here.
    guardrail = g;
    doppHalf->setGuardrail(g);
}

const LlcStats &
SplitLlc::stats() const
{
    // Sum of both halves plus the split's own routing counters
    // (degradedFills); each event is counted in exactly one of the
    // three blocks.
    combined = addStats(preciseHalf->stats(), doppHalf->stats());
    combined.degradedFills += degradedFillsCtr.value();
    return combined;
}

void
SplitLlc::resetStats()
{
    preciseHalf->resetStats();
    doppHalf->resetStats();
    degradedFillsCtr.reset();
}

} // namespace dopp
