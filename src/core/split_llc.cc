#include "split_llc.hh"

namespace dopp
{

LlcStats
addStats(const LlcStats &a, const LlcStats &b)
{
    LlcStats s;
    s.fetches = a.fetches + b.fetches;
    s.fetchHits = a.fetchHits + b.fetchHits;
    s.fetchMisses = a.fetchMisses + b.fetchMisses;
    s.writebacksIn = a.writebacksIn + b.writebacksIn;
    s.evictions = a.evictions + b.evictions;
    s.dataEvictions = a.dataEvictions + b.dataEvictions;
    s.dirtyWritebacks = a.dirtyWritebacks + b.dirtyWritebacks;
    s.backInvalidations = a.backInvalidations + b.backInvalidations;
    s.tagArray.reads = a.tagArray.reads + b.tagArray.reads;
    s.tagArray.writes = a.tagArray.writes + b.tagArray.writes;
    s.mtagArray.reads = a.mtagArray.reads + b.mtagArray.reads;
    s.mtagArray.writes = a.mtagArray.writes + b.mtagArray.writes;
    s.dataArray.reads = a.dataArray.reads + b.dataArray.reads;
    s.dataArray.writes = a.dataArray.writes + b.dataArray.writes;
    s.mapGens = a.mapGens + b.mapGens;
    s.linkedTagsSum = a.linkedTagsSum + b.linkedTagsSum;
    s.linkedTagsSamples = a.linkedTagsSamples + b.linkedTagsSamples;
    return s;
}

SplitLlc::SplitLlc(MainMemory &memory, const SplitLlcConfig &config,
                   const ApproxRegistry &registry)
    : LastLevelCache(memory), registry(registry)
{
    preciseHalf = std::make_unique<ConventionalLlc>(
        memory, config.preciseBytes, config.preciseWays,
        config.preciseLatency, &registry);
    doppHalf = std::make_unique<DoppelgangerCache>(memory, config.dopp,
                                                   &registry);
}

void
SplitLlc::setBackInvalidate(BackInvalidateFn fn)
{
    preciseHalf->setBackInvalidate(fn);
    doppHalf->setBackInvalidate(fn);
}

LastLevelCache::FetchResult
SplitLlc::fetch(Addr addr, u8 *data)
{
    if (registry.isApprox(addr))
        return doppHalf->fetch(addr, data);
    return preciseHalf->fetch(addr, data);
}

void
SplitLlc::writeback(Addr addr, const u8 *data)
{
    if (registry.isApprox(addr))
        doppHalf->writeback(addr, data);
    else
        preciseHalf->writeback(addr, data);
}

bool
SplitLlc::contains(Addr addr) const
{
    return registry.isApprox(addr) ? doppHalf->contains(addr)
                                   : preciseHalf->contains(addr);
}

void
SplitLlc::forEachBlock(
    const std::function<void(const LlcBlockInfo &)> &visit) const
{
    preciseHalf->forEachBlock(visit);
    doppHalf->forEachBlock(visit);
}

void
SplitLlc::flush()
{
    preciseHalf->flush();
    doppHalf->flush();
}

const LlcStats &
SplitLlc::stats() const
{
    combined = addStats(preciseHalf->stats(), doppHalf->stats());
    return combined;
}

void
SplitLlc::resetStats()
{
    preciseHalf->resetStats();
    doppHalf->resetStats();
}

} // namespace dopp
