/**
 * @file
 * Shared contract of the two Doppelgänger-engine implementations.
 *
 * The repository carries the decoupled tag/data engine twice:
 *
 *  - DoppelgangerCache (doppelganger_cache.hh) — the *optimized*
 *    hot path: structure-of-arrays set directories (SetAssocDir),
 *    index-pooled intrusive tag lists in flat per-field arenas, and
 *    no std::function on the per-access path.
 *  - RefDoppelgangerCache (doppelganger_ref.hh) — the *reference*
 *    implementation: the original array-of-structs layout, kept
 *    bit-for-bit as the behavioural oracle.
 *
 * Both produce bit-identical StatRegistry snapshots, final contents
 * and fault traces for any access sequence; the differential harness
 * (tests/test_hotpath_diff.cc) and a ci.sh bench-stdout diff enforce
 * that. `DoppConfig::referenceImpl` (or DOPP_REFERENCE_IMPL=1 through
 * the factory builders) selects the engine via makeDoppEngine().
 *
 * This header also hosts the pieces both engines share: DoppConfig,
 * the map-parameter region cache, and the map-function dispatch
 * (a plain function pointer — the std::function hop the optimized
 * path eliminated lives on in neither engine).
 */

#ifndef DOPP_CORE_DOPP_ENGINE_HH
#define DOPP_CORE_DOPP_ENGINE_HH

#include <optional>
#include <vector>

#include "core/map_function.hh"
#include "sim/llc.hh"
#include "util/types.hh"

namespace dopp
{

/**
 * Optional replacement for the map function: called instead of
 * computeMap() when non-null. A plain function pointer (capture-less
 * lambdas convert implicitly) so the per-access dispatch is one
 * predictable indirect call — the exact-deduplication baseline plugs
 * a 64-bit content hash in here to share entries only between
 * byte-identical blocks.
 */
using MapOverrideFn = u64 (*)(const u8 *block, const MapParams &);

/** Configuration of a Doppelgänger (or uniDoppelgänger) cache. */
struct DoppConfig
{
    /** Tag-array entries; 16 K = "1 MB tag-equivalent" (Table 1). */
    u32 tagEntries = 16 * 1024;
    u32 tagWays = 16;

    /** Data-array entries; 4 K = the paper's base 1/4 data array. */
    u32 dataEntries = 4 * 1024;
    u32 dataWays = 16;

    /** Map-space size M (Table 1 default: 14-bit). */
    unsigned mapBits = 14;

    /** Hash-function selection (ablation; paper uses AvgAndRange). */
    MapHashMode hashMode = MapHashMode::AvgAndRange;

    /** Map-function override; see MapOverrideFn. */
    MapOverrideFn mapOverride = nullptr;

    /** Total hit latency in cycles (Table 1: 6). */
    Tick hitLatency = 6;

    /** uniDoppelgänger mode: precise blocks may reside here too. */
    bool unified = false;

    /**
     * XOR-fold the whole map into the data-array set index instead of
     * using the raw low map bits (the paper's Fig 4 uses the latter).
     * Structured integer data can land every map on a few low-bit
     * residues, leaving most sets idle; folding — standard practice for
     * hashed cache indexing — restores set balance without changing
     * which blocks share an entry. Ablate with bench_ablations.
     */
    bool hashDataSetIndex = true;

    /** Annotation fallback for addresses without a registered region
     * (standalone/unit-test use; split routing guarantees a region). */
    ElemType defaultType = ElemType::F32;
    double defaultMin = 0.0;
    double defaultMax = 1.0;

    ReplPolicy tagPolicy = ReplPolicy::LRU;
    ReplPolicy dataPolicy = ReplPolicy::LRU;

    /**
     * Tag-count-aware data replacement: evict the data entry with the
     * fewest linked tags (fewest back-invalidations and writebacks),
     * breaking ties by the base policy's choice. The paper suggests
     * exactly this as future work (Sec 3.5: "a more specialized
     * replacement algorithm could take into account ... the number of
     * tags associated to a data entry"). Ablate with bench_ablations.
     */
    bool tagCountAwareData = false;

    /**
     * Build the reference (array-of-structs) engine instead of the
     * optimized structure-of-arrays one. Results are bit-identical by
     * contract, so the switch is excluded from journal fingerprints —
     * it only trades simulator speed for the behavioural oracle.
     * Honored by makeDoppEngine() and the factory builders.
     */
    bool referenceImpl = false;
};

/**
 * Abstract Doppelgänger engine: the LastLevelCache surface plus the
 * introspection API tests, stats views and the fault subsystem use.
 * Holds the configuration, the per-region MapParams cache and the
 * map-function dispatch shared by both implementations.
 */
class DoppEngine : public LastLevelCache
{
  public:
    DoppEngine(MainMemory &memory, const DoppConfig &config,
               const ApproxRegistry *registry,
               StatRegistry *stat_registry,
               const std::string &stat_group);

    const char *
    name() const override
    {
        return cfg.unified ? "uniDoppelganger" : "doppelganger";
    }

    const DoppConfig &config() const { return cfg; }

    /** @name Introspection (tests, stats, examples) */
    /// @{

    /** Number of valid tag entries. */
    virtual u64 tagCount() const = 0;

    /** Number of valid data entries. */
    virtual u64 dataCount() const = 0;

    /** Tags currently linked to @p addr's data entry (0 if absent). */
    virtual unsigned tagsSharingWith(Addr addr) const = 0;

    /** Whether two resident blocks share one data entry. */
    virtual bool sameDataEntry(Addr a, Addr b) const = 0;

    /** The 64 B the cache would serve for @p addr (nullptr if absent). */
    virtual const u8 *peekBlock(Addr addr) const = 0;

    /** Map value stored for @p addr's tag (nullopt if absent/precise). */
    virtual std::optional<u64> mapOf(Addr addr) const = 0;

    /**
     * Exhaustive structural invariant check (tests, fault repair):
     *  - every valid tag's map resolves to a valid data entry;
     *  - walking each data entry's list visits exactly the valid tags
     *    whose map points at it, with consistent prev/next links;
     *  - every valid approximate data entry has a non-empty list;
     *  - precise tags (unified mode) have null prev/next and own their
     *    entry exclusively.
     * Hardened against corrupted metadata: out-of-range pointers and
     * cycles are reported as violations, never dereferenced.
     * @param why receives a description of the first violation.
     * @return true iff all invariants hold.
     */
    virtual bool checkInvariants(std::string *why = nullptr) const = 0;

    /**
     * Self-check-and-repair path for injected metadata faults: runs
     * checkInvariants and, on a violation, rebuilds every tag list
     * from the surviving tag metadata — tags whose map no longer
     * resolves to a data entry are back-invalidated and dropped
     * (rescuing dirty private copies to memory), orphaned data entries
     * are freed, and all prev/next links are regenerated. Counted in
     * stats() as faultsDetected / faultsRepaired / repairTagsDropped /
     * repairEntriesDropped. Panics if invariants still fail after the
     * rebuild (repair is by construction exhaustive, so that would be
     * a simulator bug).
     *
     * @return true if a corruption was detected (and repaired).
     */
    virtual bool selfCheckAndRepair() = 0;
    /// @}

  protected:
    /**
     * Map parameters (type/range/M) for a block address, served from
     * the per-region cache. The cache is built lazily on the first
     * call (the LLC is constructed before workloads annotate their
     * regions); after that the registry must stay untouched — mirrors
     * the paper's start-of-application range transfer (Sec 4.1) and
     * is asserted via ApproxRegistry::generation().
     */
    MapParams paramsFor(Addr addr) const;

    /** Snapshot the registry into paramCache (see paramsFor). */
    void buildParamCache() const;

    /** Compute the map of @p bytes at @p addr, honoring mapOverride. */
    u64
    mapFor(Addr addr, const u8 *bytes) const
    {
        const MapParams p = paramsFor(addr);
        if (hasMapOverride)
            return cfg.mapOverride(bytes, p);
        return computeMap(bytes, p, cfg.hashMode);
    }

    DoppConfig cfg;
    const ApproxRegistry *registry;

    /** True iff cfg.mapOverride is installed; cached so the hot path
     * tests one byte instead of a pointer load every access. */
    bool hasMapOverride;

    /** One cached [base, end) → MapParams translation. */
    struct CachedRegion
    {
        Addr base = 0;
        Addr end = 0;
        MapParams params;
    };

    /** Per-region MapParams, sorted by base; see paramsFor(). Mutable
     * because the build is lazily triggered from const lookups. */
    mutable std::vector<CachedRegion> paramCache;
    /** Most recently hit cache slot (index into paramCache), or -1.
     * Accesses stream through one region at a time, so this memo
     * short-circuits the binary search almost always. */
    mutable i32 hotParam = -1;
    /** Registry generation paramCache was built against. */
    mutable u64 paramGen = 0;
    mutable bool paramsCached = false;

    /** Fallback for addresses outside every region. */
    MapParams defaultParams;
};

/**
 * Construct the engine @p config selects: the optimized
 * DoppelgangerCache, or RefDoppelgangerCache when
 * `config.referenceImpl` is set.
 */
std::unique_ptr<DoppEngine>
makeDoppEngine(MainMemory &memory, const DoppConfig &config,
               const ApproxRegistry *registry,
               StatRegistry *stat_registry = nullptr,
               const std::string &stat_group = "llc.dopp");

} // namespace dopp

#endif // DOPP_CORE_DOPP_ENGINE_HH
