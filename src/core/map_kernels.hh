/**
 * @file
 * Monomorphized hot-path kernels for map generation (paper Sec 3.7).
 *
 * The map function runs on every LLC fill and writeback, making the
 * per-block element reduction the simulator's hottest loop. The
 * generic path pays an out-of-line blockElement() call — and its
 * per-element ElemType switch — for each of the 16–64 lanes of a
 * block. The kernels here are monomorphized per element type: one
 * switch per *block* selects a fully inlined single-pass
 * clamp/sum/min/max loop over raw typed lanes.
 *
 * Semantics contract: each kernel performs bit-for-bit the same
 * arithmetic as the generic per-element path (same widening to
 * double, same NaN-to-minimum rule, same clamp, same left-to-right
 * summation order), so map values — and therefore every downstream
 * run statistic — are identical. tests/test_map_function.cc pins
 * kernel-vs-generic equality per type/mode, and
 * tests/test_doppelganger.cc pins full StatRegistry snapshot equality
 * on a mixed-type workload.
 */

#ifndef DOPP_CORE_MAP_KERNELS_HH
#define DOPP_CORE_MAP_KERNELS_HH

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "sim/approx.hh"
#include "util/types.hh"

namespace dopp
{

/** Single-pass reduction of one 64 B block: clamped lane sum and
 * extrema, widened to double. */
struct BlockSummary
{
    double sum = 0.0; ///< sum of clamped lanes
    double min = 0.0; ///< smallest clamped lane
    double max = 0.0; ///< largest clamped lane
};

namespace detail
{

/** Widen one lane to double and clamp it into [lo, hi]; NaNs read as
 * the minimum (Sec 4.1), exactly like the generic clampValue(). */
template <typename Lane>
inline double
clampLane(Lane raw, double lo, double hi)
{
    const double v = static_cast<double>(raw);
    if constexpr (std::is_floating_point_v<Lane>) {
        if (std::isnan(v))
            return lo;
    }
    return std::clamp(v, lo, hi);
}

} // namespace detail

/**
 * Monomorphized reduction kernel: clamp every @p Lane of the block
 * into [@p lo, @p hi] and accumulate sum/min/max in one pass. The
 * lanes are copied out with a single memcpy (alias- and
 * alignment-safe), and the loop body inlines completely.
 */
template <typename Lane>
inline BlockSummary
summarizeBlockLanes(const u8 *block, double lo, double hi)
{
    constexpr unsigned n = blockBytes / sizeof(Lane);
    Lane lanes[n];
    std::memcpy(lanes, block, blockBytes);

    BlockSummary s;
    s.min = detail::clampLane(lanes[0], lo, hi);
    s.max = s.min;
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        const double v = detail::clampLane(lanes[i], lo, hi);
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.sum = sum;
    return s;
}

/** Tagged dispatch to the matching kernel: one switch per block. */
inline BlockSummary
summarizeBlock(const u8 *block, ElemType type, double lo, double hi)
{
    switch (type) {
      case ElemType::U8:
        return summarizeBlockLanes<u8>(block, lo, hi);
      case ElemType::I16:
        return summarizeBlockLanes<i16>(block, lo, hi);
      case ElemType::I32:
        return summarizeBlockLanes<i32>(block, lo, hi);
      case ElemType::F32:
        return summarizeBlockLanes<float>(block, lo, hi);
      case ElemType::F64:
        return summarizeBlockLanes<double>(block, lo, hi);
    }
    return {};
}

} // namespace dopp

#endif // DOPP_CORE_MAP_KERNELS_HH
