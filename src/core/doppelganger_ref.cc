#include "doppelganger_ref.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace dopp
{

RefDoppelgangerCache::RefDoppelgangerCache(
    MainMemory &memory, const DoppConfig &config,
    const ApproxRegistry *registry, StatRegistry *stat_registry,
    const std::string &stat_group)
    : DoppEngine(memory, config, registry, stat_registry, stat_group),
      tags(config.tagEntries / config.tagWays, config.tagWays,
           config.tagPolicy),
      tagSlicer(config.tagEntries / config.tagWays),
      data(config.dataEntries / config.dataWays, config.dataWays,
           config.dataPolicy)
{
    initLlcCounters();
}

i32
RefDoppelgangerCache::tagIndex(u32 set, u32 way) const
{
    return static_cast<i32>(set * cfg.tagWays + way);
}

RefDoppelgangerCache::TagEntry &
RefDoppelgangerCache::tagAt(i32 idx)
{
    return tags.at(static_cast<u32>(idx) / cfg.tagWays,
                   static_cast<u32>(idx) % cfg.tagWays);
}

const RefDoppelgangerCache::TagEntry &
RefDoppelgangerCache::tagAt(i32 idx) const
{
    return tags.at(static_cast<u32>(idx) / cfg.tagWays,
                   static_cast<u32>(idx) % cfg.tagWays);
}

Addr
RefDoppelgangerCache::tagAddr(i32 idx) const
{
    const u32 set = static_cast<u32>(idx) / cfg.tagWays;
    return tagSlicer.addr(set, tagAt(idx).tag);
}

i32
RefDoppelgangerCache::findTag(Addr addr) const
{
    const u32 set = tagSlicer.set(addr);
    const int way = tags.findWay(set, tagSlicer.tag(addr));
    return way < 0 ? -1 : tagIndex(set, static_cast<u32>(way));
}

u32
RefDoppelgangerCache::dataSetOfMap(u64 map) const
{
    if (!cfg.hashDataSetIndex) {
        // Paper-faithful indexing (Fig 4): the lower portion of the
        // map selects the set. (Generalized to modulo so fractional
        // data arrays — e.g. uniDoppelgänger's 3/4 — work; identical
        // to the low bits for power-of-two set counts.)
        return static_cast<u32>(map % data.sets());
    }
    // Hashed indexing (our default): a multiplicative mix spreads
    // structured data (e.g. grid coordinates) across all sets. Entry
    // identity is unchanged — entries always match on the full map.
    u64 x = map;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<u32>(x % data.sets());
}

i32
RefDoppelgangerCache::findDataByMap(u64 map) const
{
    const u32 set = dataSetOfMap(map);
    for (u32 w = 0; w < cfg.dataWays; ++w) {
        const DataEntry &e = data.at(set, w);
        if (e.valid && !e.precise && e.tag == map)
            return static_cast<i32>(set * cfg.dataWays + w);
    }
    return -1;
}

RefDoppelgangerCache::DataEntry &
RefDoppelgangerCache::dataAt(i32 idx)
{
    return data.at(static_cast<u32>(idx) / cfg.dataWays,
                   static_cast<u32>(idx) % cfg.dataWays);
}

const RefDoppelgangerCache::DataEntry &
RefDoppelgangerCache::dataAt(i32 idx) const
{
    return data.at(static_cast<u32>(idx) / cfg.dataWays,
                   static_cast<u32>(idx) % cfg.dataWays);
}

i32
RefDoppelgangerCache::dataIndexOfTag(const TagEntry &t) const
{
    DOPP_ASSERT(t.valid);
    if (t.precise)
        return static_cast<i32>(t.map);
    const i32 idx = findDataByMap(t.map);
    if (idx < 0)
        panic("doppelganger invariant broken: tag's map %llu has no "
              "data entry", static_cast<unsigned long long>(t.map));
    return idx;
}

void
RefDoppelgangerCache::linkHead(i32 tag_idx, i32 data_idx)
{
    DataEntry &d = dataAt(data_idx);
    TagEntry &t = tagAt(tag_idx);
    t.prev = -1;
    t.next = d.head;
    if (d.head >= 0)
        tagAt(d.head).prev = tag_idx;
    d.head = tag_idx;
}

bool
RefDoppelgangerCache::unlink(i32 tag_idx, i32 data_idx)
{
    TagEntry &t = tagAt(tag_idx);
    if (t.prev >= 0)
        tagAt(t.prev).next = t.next;
    else
        dataAt(data_idx).head = t.next;
    if (t.next >= 0)
        tagAt(t.next).prev = t.prev;
    t.prev = -1;
    t.next = -1;
    return dataAt(data_idx).head < 0;
}

void
RefDoppelgangerCache::writebackTag(i32 tag_idx, const DataEntry &entry)
{
    const TagEntry &t = tagAt(tag_idx);
    const Addr addr = tagAddr(tag_idx);

    // Inclusive LLC: drop private copies; a dirty private copy is the
    // newest version and supersedes the shared data entry.
    BlockData upward;
    const bool upwardDirty = invalidateUpward(addr, upward.data());
    if (upwardDirty) {
        mem.writeBlock(addr, upward.data());
        ++ctr->dirtyWritebacks;
    } else if (t.dirty) {
        ++ctr->dataArray.reads;
        mem.writeBlock(addr, entry.data.data());
        ++ctr->dirtyWritebacks;
    }
}

void
RefDoppelgangerCache::evictDataEntry(i32 data_idx)
{
    DataEntry &d = dataAt(data_idx);
    DOPP_ASSERT(d.valid);

    // Evict every tag associated with this block; each may require a
    // back-invalidation and a writeback (Sec 3.5).
    u64 count = 0;
    i32 cur = d.head;
    while (cur >= 0) {
        TagEntry &t = tagAt(cur);
        const i32 next = t.next;
        writebackTag(cur, d);
        setTagValid(cur, false);
        t.prev = -1;
        t.next = -1;
        ++ctr->evictions;
        ++count;
        cur = next;
    }
    d.head = -1;
    setDataValid(data_idx, false);
    ++ctr->dataEvictions;
    ctr->linkedTagsSum += count;
    ++ctr->linkedTagsSamples;
}

void
RefDoppelgangerCache::evictTagEntry(i32 tag_idx)
{
    TagEntry &t = tagAt(tag_idx);
    DOPP_ASSERT(t.valid);

    const i32 data_idx = dataIndexOfTag(t);
    DataEntry &d = dataAt(data_idx);

    writebackTag(tag_idx, d);
    const bool empty = unlink(tag_idx, data_idx);
    setTagValid(tag_idx, false);
    ++ctr->evictions;

    if (empty) {
        // Sole tag: its data entry goes too (Sec 3.5).
        setDataValid(data_idx, false);
        ++ctr->dataEvictions;
        ctr->linkedTagsSum += 1;
        ++ctr->linkedTagsSamples;
    }
}

u64
RefDoppelgangerCache::linkedTagCount(i32 data_idx, u64 cap) const
{
    u64 n = 0;
    for (i32 cur = dataAt(data_idx).head; cur >= 0 && n < cap;
         cur = tagAt(cur).next) {
        ++n;
    }
    return n;
}

i32
RefDoppelgangerCache::allocateDataEntry(u32 set)
{
    u32 way = data.victimWay(set);
    i32 idx = static_cast<i32>(set * cfg.dataWays + way);

    if (cfg.tagCountAwareData && dataAt(idx).valid) {
        // The set is full: prefer the way with the fewest linked tags
        // (cheapest eviction); the base policy's pick breaks ties.
        // Count up to the whole tag array: the stats-path saturation
        // cap (64) would make every heavily shared entry tie.
        u64 best = linkedTagCount(idx, cfg.tagEntries);
        for (u32 w = 0; w < cfg.dataWays && best > 1; ++w) {
            const i32 cand = static_cast<i32>(set * cfg.dataWays + w);
            const u64 count = linkedTagCount(cand, best);
            if (count < best) {
                best = count;
                way = w;
                idx = cand;
            }
        }
    }

    if (dataAt(idx).valid)
        evictDataEntry(idx);
    return idx;
}

void
RefDoppelgangerCache::insertBlock(Addr addr, const u8 *bytes)
{
    // Allocate a tag entry (evicting the LRU tag if needed).
    const u32 tset = tagSlicer.set(addr);
    const u32 tway = tags.victimWay(tset);
    const i32 tidx = tagIndex(tset, tway);
    if (tagAt(tidx).valid)
        evictTagEntry(tidx);

    TagEntry &t = tagAt(tidx);
    setTagValid(tidx, true);
    t.tag = tagSlicer.tag(addr);
    t.dirty = false;
    t.prev = -1;
    t.next = -1;
    tags.touchInsert(tset, tway);
    ++ctr->tagArray.writes;

    const ApproxRegion *region = registry ? registry->find(addr) : nullptr;
    bool approx = cfg.unified ? region != nullptr : true;
    if (approx && cfg.unified && guardrail && guardrail->degraded()) {
        // QoR guardrail tripped: degrade gracefully by storing
        // would-be-approximate fills precisely (exact data, exclusive
        // entry) until the error estimate recovers.
        approx = false;
        ++ctr->degradedFills;
    }

    if (!approx) {
        // uniDoppelgänger precise path (Sec 3.8): an exclusive data
        // entry addressed by a direct pointer; no hash computation.
        t.precise = true;
        const u32 dset = dataSetOfMap(addr >> blockOffsetBits);
        const i32 didx = allocateDataEntry(dset);
        DataEntry &d = dataAt(didx);
        setDataValid(didx, true);
        d.precise = true;
        d.tag = blockAlign(addr);
        d.head = tidx;
        std::memcpy(d.data.data(), bytes, blockBytes);
        data.touchInsert(dset, static_cast<u32>(didx) % cfg.dataWays);
        t.map = static_cast<u64>(didx);
        ++ctr->mtagArray.writes;
        ++ctr->dataArray.writes;
        observeClean();
        return;
    }

    t.precise = false;
    const u64 map = mapFor(addr, bytes);
    ++ctr->mapGens;
    ++ctr->mtagArray.reads;

    const i32 existing = findDataByMap(map);
    if (existing >= 0) {
        // A similar block exists: share its entry, drop the fetched
        // data (Sec 3.3 "Similar Data Block Exists"). Future reads
        // serve the doppelgänger — report the substitution error.
        linkHead(tidx, existing);
        t.map = map;
        data.touch(static_cast<u32>(existing) / cfg.dataWays,
                   static_cast<u32>(existing) % cfg.dataWays);
        observeSubstitution(addr, bytes, dataAt(existing));
        return;
    }

    // No similar block: allocate (evicting a victim and all its tags).
    const u32 dset = dataSetOfMap(map);
    const i32 didx = allocateDataEntry(dset);
    DataEntry &d = dataAt(didx);
    setDataValid(didx, true);
    d.precise = false;
    d.tag = map;
    d.head = -1;
    std::memcpy(d.data.data(), bytes, blockBytes);
    data.touchInsert(dset, static_cast<u32>(didx) % cfg.dataWays);
    linkHead(tidx, didx);
    t.map = map;
    ++ctr->mtagArray.writes;
    ++ctr->dataArray.writes;
    observeClean();
}

LastLevelCache::FetchResult
RefDoppelgangerCache::fetch(Addr addr, u8 *out)
{
    injectFaults();
    ++ctr->fetches;
    ++ctr->tagArray.reads;

    const i32 tidx = findTag(addr);
    if (tidx >= 0) {
        ++ctr->fetchHits;
        TagEntry &t = tagAt(tidx);
        tags.touch(static_cast<u32>(tidx) / cfg.tagWays,
                   static_cast<u32>(tidx) % cfg.tagWays);

        // Second sequential lookup: the MTag array (Sec 3.2 step 2).
        ++ctr->mtagArray.reads;
        const i32 didx = dataIndexOfTag(t);
        DataEntry &d = dataAt(didx);
        ++ctr->dataArray.reads;
        data.touch(static_cast<u32>(didx) / cfg.dataWays,
                   static_cast<u32>(didx) % cfg.dataWays);
        std::memcpy(out, d.data.data(), blockBytes);
        observeClean();
        return {true, cfg.hitLatency};
    }

    // Miss: the requester gets the fetched (exact) values immediately;
    // placement happens off the critical path (Sec 3.3).
    ++ctr->fetchMisses;
    const Tick memLat = mem.readBlock(addr, out);
    insertBlock(addr, out);
    return {false, cfg.hitLatency + memLat};
}

void
RefDoppelgangerCache::writeback(Addr addr, const u8 *bytes)
{
    injectFaults();
    ++ctr->writebacksIn;
    ++ctr->tagArray.reads;

    const i32 tidx = findTag(addr);
    if (tidx < 0) {
        // Not resident (inclusion is maintained by the hierarchy, so
        // this only happens for orphan drains); go straight to memory.
        mem.writeBlock(addr, bytes);
        ++ctr->dirtyWritebacks;
        observeClean();
        return;
    }

    TagEntry &t = tagAt(tidx);
    tags.touch(static_cast<u32>(tidx) / cfg.tagWays,
               static_cast<u32>(tidx) % cfg.tagWays);

    if (t.precise) {
        DataEntry &d = dataAt(static_cast<i32>(t.map));
        std::memcpy(d.data.data(), bytes, blockBytes);
        t.dirty = true;
        ++ctr->dataArray.writes;
        observeClean();
        return;
    }

    // Recompute the map with the new values (Sec 3.4).
    const u64 newMap = mapFor(addr, bytes);
    ++ctr->mapGens;

    if (newMap == t.map) {
        // Silent or similarity-preserving store: dirty bit only; the
        // written values are dropped in favor of the shared entry.
        t.dirty = true;
        if (guardrail)
            observeSubstitution(addr, bytes, dataAt(dataIndexOfTag(t)));
        return;
    }

    // The map changed: move this tag to the new map's list.
    ++ctr->mtagArray.reads;
    const i32 oldIdx = dataIndexOfTag(t);
    if (unlink(tidx, oldIdx)) {
        // This tag was the sole user; the entry's data is superseded
        // by this very write, so it is freed without a writeback.
        setDataValid(oldIdx, false);
        ++ctr->dataEvictions;
    }

    const i32 existing = findDataByMap(newMap);
    if (existing >= 0) {
        // A block with the new map exists: the written values are
        // effectively ignored; this write made the block similar to
        // one already cached (Sec 3.4).
        linkHead(tidx, existing);
        t.map = newMap;
        t.dirty = true;
        data.touch(static_cast<u32>(existing) / cfg.dataWays,
                   static_cast<u32>(existing) % cfg.dataWays);
        observeSubstitution(addr, bytes, dataAt(existing));
        return;
    }

    const u32 dset = dataSetOfMap(newMap);
    const i32 didx = allocateDataEntry(dset);
    DataEntry &d = dataAt(didx);
    setDataValid(didx, true);
    d.precise = false;
    d.tag = newMap;
    d.head = -1;
    std::memcpy(d.data.data(), bytes, blockBytes);
    data.touchInsert(dset, static_cast<u32>(didx) % cfg.dataWays);
    linkHead(tidx, didx);
    t.map = newMap;
    t.dirty = true;
    ++ctr->mtagArray.writes;
    ++ctr->dataArray.writes;
    observeClean();
}

bool
RefDoppelgangerCache::contains(Addr addr) const
{
    return findTag(addr) >= 0;
}

void
RefDoppelgangerCache::forEachBlock(
    const std::function<void(const LlcBlockInfo &)> &visit) const
{
    for (u32 s = 0; s < tags.sets(); ++s) {
        for (u32 w = 0; w < cfg.tagWays; ++w) {
            const TagEntry &t = tags.at(s, w);
            if (!t.valid)
                continue;
            const i32 tidx = tagIndex(s, w);
            LlcBlockInfo info;
            info.addr = tagAddr(tidx);
            info.data = dataAt(dataIndexOfTag(t)).data.data();
            info.dirty = t.dirty;
            info.approx = !t.precise;
            const ApproxRegion *region =
                registry ? registry->find(info.addr) : nullptr;
            info.type = region ? region->type : cfg.defaultType;
            visit(info);
        }
    }
}

void
RefDoppelgangerCache::flush()
{
    for (u32 s = 0; s < tags.sets(); ++s) {
        for (u32 w = 0; w < cfg.tagWays; ++w) {
            const i32 tidx = tagIndex(s, w);
            if (tagAt(tidx).valid)
                evictTagEntry(tidx);
        }
    }
    tags.invalidateAll();
    data.invalidateAll();
}

unsigned
RefDoppelgangerCache::tagsSharingWith(Addr addr) const
{
    const i32 tidx = findTag(addr);
    if (tidx < 0)
        return 0;
    const i32 didx = dataIndexOfTag(tagAt(tidx));
    unsigned count = 0;
    for (i32 cur = dataAt(didx).head; cur >= 0; cur = tagAt(cur).next)
        ++count;
    return count;
}

bool
RefDoppelgangerCache::sameDataEntry(Addr a, Addr b) const
{
    const i32 ta = findTag(a);
    const i32 tb = findTag(b);
    if (ta < 0 || tb < 0)
        return false;
    return dataIndexOfTag(tagAt(ta)) == dataIndexOfTag(tagAt(tb));
}

const u8 *
RefDoppelgangerCache::peekBlock(Addr addr) const
{
    const i32 tidx = findTag(addr);
    if (tidx < 0)
        return nullptr;
    return dataAt(dataIndexOfTag(tagAt(tidx))).data.data();
}

bool
RefDoppelgangerCache::checkInvariants(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    const u64 totalTags =
        static_cast<u64>(tags.sets()) * cfg.tagWays;
    const u64 totalData =
        static_cast<u64>(data.sets()) * cfg.dataWays;

    // Pass 1: every valid tag resolves; count tags per data entry.
    std::vector<u64> expected(totalData, 0);
    for (u64 i = 0; i < totalTags; ++i) {
        const TagEntry &t = tagAt(static_cast<i32>(i));
        if (!t.valid)
            continue;
        i32 didx;
        if (t.precise) {
            didx = static_cast<i32>(t.map);
            if (didx < 0 || static_cast<u64>(didx) >= totalData)
                return fail("precise tag points out of range");
            if (!dataAt(didx).valid || !dataAt(didx).precise)
                return fail("precise tag points at invalid entry");
            if (t.prev != -1 || t.next != -1)
                return fail("precise tag has list links");
            if (dataAt(didx).head != static_cast<i32>(i))
                return fail("precise entry head mismatch");
        } else {
            didx = findDataByMap(t.map);
            if (didx < 0)
                return fail("tag's map has no data entry");
        }
        ++expected[static_cast<u64>(didx)];
    }

    // Pass 2: each data entry's list is consistent and complete.
    for (u64 d = 0; d < totalData; ++d) {
        const DataEntry &e = dataAt(static_cast<i32>(d));
        if (!e.valid) {
            if (expected[d] != 0)
                return fail("tags point at an invalid data entry");
            continue;
        }
        if (e.head < 0)
            return fail("valid data entry with empty tag list");
        u64 walked = 0;
        i32 prev = -1;
        i32 cur = e.head;
        while (cur >= 0) {
            // Corrupted pointers must be reported, never dereferenced.
            if (static_cast<u64>(cur) >= totalTags)
                return fail("list pointer out of range");
            const TagEntry &t = tagAt(cur);
            if (!t.valid)
                return fail("list contains an invalid tag");
            if (t.prev != prev)
                return fail("prev pointer inconsistent");
            if (!e.precise &&
                findDataByMap(t.map) != static_cast<i32>(d)) {
                return fail("listed tag maps elsewhere");
            }
            prev = cur;
            cur = t.next;
            if (++walked > totalTags)
                return fail("tag list cycle");
        }
        if (walked != expected[d])
            return fail("list length disagrees with pointing tags");
    }
    return true;
}

std::optional<u64>
RefDoppelgangerCache::mapOf(Addr addr) const
{
    const i32 tidx = findTag(addr);
    if (tidx < 0 || tagAt(tidx).precise)
        return std::nullopt;
    return tagAt(tidx).map;
}

void
RefDoppelgangerCache::injectFaults()
{
    if (!faults)
        return;
    faults->step();
    if (faults->draw(FaultDomain::LlcData))
        injectDataFault();
    bool structural = false;
    if (faults->draw(FaultDomain::TagMeta))
        structural |= injectTagMetaFault();
    if (faults->draw(FaultDomain::MTagMeta))
        structural |= injectMTagMetaFault();
    // Repair immediately so every normal operation path below always
    // runs on structurally consistent metadata.
    if (structural)
        selfCheckAndRepair();
}

void
RefDoppelgangerCache::injectDataFault()
{
    const u64 total = static_cast<u64>(data.sets()) * cfg.dataWays;
    const u64 slot = faults->pick(total);
    const u32 bit = static_cast<u32>(faults->pick(blockBytes * 8));
    DataEntry &d = dataAt(static_cast<i32>(slot));
    // An invalid pick lands in an unused cell; precise entries live in
    // the reliable (non-voltage-scaled) part of the array.
    if (!d.valid || d.precise)
        return;

    // The flip is served to every tag sharing this entry; quantify it
    // with the head tag's region parameters.
    const MapParams p =
        d.head >= 0 ? paramsFor(tagAddr(d.head)) : paramsFor(0);
    const unsigned elem = bit / elemBits(p.type);
    const double before = blockElement(d.data.data(), p.type, elem);
    d.data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    const double after = blockElement(d.data.data(), p.type, elem);

    faults->record(FaultDomain::LlcData, slot, 0, bit);
    ++ctr->faultsInjected;
    if (guardrail) {
        // The flipped element's own normalized error, not the block
        // mean: a consumer of that element sees the full deviation, and
        // averaging a single corrupt value over 16 clean neighbours
        // would hide exactly the rare catastrophic flips (sign or
        // exponent bits) the guardrail exists to catch.
        const double span = std::max(p.maxValue - p.minValue, 1e-30);
        double err = std::abs(after - before) / span;
        if (!std::isfinite(err) || err > 1.0)
            err = 1.0;
        guardrail->observeError(err);
    }
}

bool
RefDoppelgangerCache::injectTagMetaFault()
{
    const u64 totalTags = static_cast<u64>(tags.sets()) * cfg.tagWays;
    const u64 totalData = static_cast<u64>(data.sets()) * cfg.dataWays;
    const i32 idx = static_cast<i32>(faults->pick(totalTags));
    // Fields: 0 = map value, 1 = prev, 2 = next, 3 = dirty bit,
    // 4 = precise bit (unified mode only).
    const u32 field =
        static_cast<u32>(faults->pick(cfg.unified ? 5 : 4));
    TagEntry &t = tagAt(idx);
    if (!t.valid)
        return false; // flip in a dead cell: unobservable

    switch (field) {
      case 0: {
        // Map value — or the direct data-entry pointer when precise.
        unsigned width;
        if (t.precise)
            width = ceilLog2(std::max<u64>(totalData, 2)) + 1;
        else if (hasMapOverride)
            width = 64; // content-hash override stores full 64-bit maps
        else
            width = mapWidth(paramsFor(tagAddr(idx)), cfg.hashMode);
        const u32 bit = static_cast<u32>(faults->pick(width));
        t.map ^= 1ULL << bit;
        faults->record(FaultDomain::TagMeta, static_cast<u64>(idx),
                       field, bit);
        ++ctr->faultsInjected;
        return true;
      }
      case 1:
      case 2: {
        // List pointer: flip within the stored index width plus one
        // spare bit, so null (-1) can corrupt into garbage too.
        const unsigned width =
            ceilLog2(std::max<u64>(totalTags, 2)) + 1;
        const u32 bit = static_cast<u32>(faults->pick(width));
        i32 &ptr = field == 1 ? t.prev : t.next;
        ptr = static_cast<i32>(static_cast<u32>(ptr) ^ (1u << bit));
        faults->record(FaultDomain::TagMeta, static_cast<u64>(idx),
                       field, bit);
        ++ctr->faultsInjected;
        return true;
      }
      case 3:
        // Dirty bit: undetectable by structural checks. A spurious set
        // costs one extra writeback; a cleared one loses an update.
        t.dirty = !t.dirty;
        faults->record(FaultDomain::TagMeta, static_cast<u64>(idx),
                       field, 0);
        ++ctr->faultsInjected;
        return false;
      default:
        t.precise = !t.precise;
        faults->record(FaultDomain::TagMeta, static_cast<u64>(idx),
                       field, 0);
        ++ctr->faultsInjected;
        return true;
    }
}

bool
RefDoppelgangerCache::injectMTagMetaFault()
{
    const u64 totalTags = static_cast<u64>(tags.sets()) * cfg.tagWays;
    const u64 totalData = static_cast<u64>(data.sets()) * cfg.dataWays;
    const i32 idx = static_cast<i32>(faults->pick(totalData));
    // Fields: 0 = map tag, 1 = head pointer, 2 = precise bit (unified).
    const u32 field =
        static_cast<u32>(faults->pick(cfg.unified ? 3 : 2));
    DataEntry &d = dataAt(idx);
    if (!d.valid)
        return false;

    switch (field) {
      case 0: {
        // Stored map tag (the block address for precise entries).
        unsigned width;
        if (d.precise)
            width = 32; // block-address tag
        else if (hasMapOverride)
            width = 64;
        else if (d.head >= 0 &&
                 static_cast<u64>(d.head) < totalTags)
            width = mapWidth(paramsFor(tagAddr(d.head)), cfg.hashMode);
        else
            width = cfg.mapBits;
        const u32 bit = static_cast<u32>(faults->pick(width));
        d.tag ^= 1ULL << bit;
        faults->record(FaultDomain::MTagMeta, static_cast<u64>(idx),
                       field, bit);
        ++ctr->faultsInjected;
        return true;
      }
      case 1: {
        const unsigned width =
            ceilLog2(std::max<u64>(totalTags, 2)) + 1;
        const u32 bit = static_cast<u32>(faults->pick(width));
        d.head =
            static_cast<i32>(static_cast<u32>(d.head) ^ (1u << bit));
        faults->record(FaultDomain::MTagMeta, static_cast<u64>(idx),
                       field, bit);
        ++ctr->faultsInjected;
        return true;
      }
      default:
        d.precise = !d.precise;
        faults->record(FaultDomain::MTagMeta, static_cast<u64>(idx),
                       field, 0);
        ++ctr->faultsInjected;
        return true;
    }
}

bool
RefDoppelgangerCache::selfCheckAndRepair()
{
    std::string why;
    if (checkInvariants(&why))
        return false; // the flip was structurally silent

    ++ctr->faultsDetected;
    if (faults)
        faults->noteDetected();

    const auto [tagsDropped, entriesDropped] = repairMetadata();
    ++ctr->faultsRepaired;
    ctr->repairTagsDropped += tagsDropped;
    ctr->repairEntriesDropped += entriesDropped;
    if (faults)
        faults->noteRepair(tagsDropped, entriesDropped);

    std::string after;
    if (!checkInvariants(&after)) {
        panic("doppelganger repair failed to restore invariants: %s "
              "(detected: %s)", after.c_str(), why.c_str());
    }
    return true;
}

std::pair<u64, u64>
RefDoppelgangerCache::repairMetadata()
{
    const u64 totalTags = static_cast<u64>(tags.sets()) * cfg.tagWays;
    const u64 totalData = static_cast<u64>(data.sets()) * cfg.dataWays;
    u64 tagsDropped = 0;
    u64 entriesDropped = 0;

    // Phase 1: forget every list. The surviving per-tag metadata (map
    // values, valid bits) is the ground truth lists are rebuilt from.
    for (u64 i = 0; i < totalData; ++i) {
        DataEntry &d = dataAt(static_cast<i32>(i));
        if (d.valid)
            d.head = -1;
    }

    // Phase 2: relink every valid tag from its own map field. A tag
    // whose map no longer resolves has lost its shared data for good,
    // but a dirty private copy upstream still holds exact values: drop
    // the tag, rescuing that copy to memory (inclusion demands the
    // back-invalidation either way).
    for (u64 i = 0; i < totalTags; ++i) {
        const i32 tidx = static_cast<i32>(i);
        TagEntry &t = tagAt(tidx);
        if (!t.valid)
            continue;
        bool resolved;
        if (t.precise) {
            const i32 didx = static_cast<i32>(t.map);
            resolved =
                didx >= 0 && static_cast<u64>(didx) < totalData;
            if (resolved) {
                DataEntry &d = dataAt(didx);
                // Only the rightful, exclusive owner may reclaim a
                // precise entry.
                resolved = d.valid && d.precise && d.head < 0 &&
                    d.tag == blockAlign(tagAddr(tidx));
                if (resolved) {
                    d.head = tidx;
                    t.prev = -1;
                    t.next = -1;
                }
            }
        } else {
            const i32 didx = findDataByMap(t.map);
            resolved = didx >= 0;
            if (resolved)
                linkHead(tidx, didx);
        }
        if (!resolved) {
            BlockData upward;
            if (invalidateUpward(tagAddr(tidx), upward.data())) {
                mem.writeBlock(tagAddr(tidx), upward.data());
                ++ctr->dirtyWritebacks;
            }
            setTagValid(tidx, false);
            t.prev = -1;
            t.next = -1;
            ++tagsDropped;
        }
    }

    // Phase 3: free the entries no surviving tag claims.
    for (u64 i = 0; i < totalData; ++i) {
        DataEntry &d = dataAt(static_cast<i32>(i));
        if (d.valid && d.head < 0) {
            setDataValid(static_cast<i32>(i), false);
            ++entriesDropped;
        }
    }
    return {tagsDropped, entriesDropped};
}

void
RefDoppelgangerCache::observeSubstitution(Addr addr, const u8 *exact,
                                       const DataEntry &d)
{
    if (!guardrail)
        return;
    const MapParams p = paramsFor(addr);
    guardrail->observeError(blockSubstitutionError(
        d.data.data(), exact, p.type, p.maxValue - p.minValue));
}

void
RefDoppelgangerCache::observeClean()
{
    if (guardrail)
        guardrail->observeClean();
}

} // namespace dopp
