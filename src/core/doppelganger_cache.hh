/**
 * @file
 * The Doppelgänger cache (paper Sec 3): a last-level cache with
 * decoupled tag and approximate data arrays in which tags of
 * approximately similar blocks share a single data entry.
 *
 * Organization (Fig 4):
 *  - *Tag array*: indexed by physical address like a conventional tag
 *    array. Each entry holds the address tag, state/dirty bits, a map
 *    value, and prev/next tag pointers forming a doubly-linked list of
 *    all tags that share one data entry (Fig 5).
 *  - *Approximate data array with MTag array*: indexed by the *map*
 *    value — the low map bits select a set, the high bits are matched
 *    against the stored map tags. Each data entry holds the map tag, a
 *    pointer to the head of its tag list, and the 64 B data block.
 *
 * This is the *optimized* engine (see dopp_engine.hh for the contract
 * and the reference twin). The simulator-side layout differs from the
 * figures while modeling the same hardware:
 *
 *  - Both lookup structures are SetAssocDir structure-of-arrays
 *    directories: a whole set's address tags (or MTags) occupy one
 *    contiguous run of u64 keys plus a flag byte per way, so a 16-way
 *    probe is a single batched pass over two cache lines instead of a
 *    stride over interleaved entry structs.
 *  - The per-tag fields (map value, prev/next list links) and the
 *    per-entry fields (list head, 64 B block) live in flat per-field
 *    arenas indexed by the same flattened `set * ways + way` slot —
 *    intrusive index pools, pre-allocated per set, so list maintenance
 *    touches exactly the fields it needs and the doubly-linked
 *    shared-data lists (Fig 5) chain arena indices, not pointers.
 *  - No std::function on the access path: the map override is a plain
 *    function pointer (MapOverrideFn) and block iteration is a
 *    monomorphized template (visitBlocks) behind the virtual
 *    forEachBlock wrapper.
 *
 * The same class also implements the unified uniDoppelgänger variant
 * (Sec 3.8) when configured with `unified = true`: precise blocks get
 * an exclusive data entry addressed through a direct pointer in the
 * tag's map field, with prev/next permanently null.
 */

#ifndef DOPP_CORE_DOPPELGANGER_CACHE_HH
#define DOPP_CORE_DOPPELGANGER_CACHE_HH

#include <optional>

#include "core/dopp_engine.hh"
#include "sim/set_assoc.hh"
#include "util/types.hh"

namespace dopp
{

/**
 * Optimized Doppelgänger LLC implementation (structure-of-arrays).
 *
 * Faithfully implements the paper's operational semantics:
 *  - Lookups (Sec 3.2): sequential tag-array then MTag-array probe; a
 *    tag hit guarantees an MTag hit.
 *  - Insertions (Sec 3.3): data is forwarded to the upper levels
 *    immediately (the requester sees the *fetched* values); map
 *    generation and data-array placement happen off the critical path.
 *    If a similar block exists the new tag joins its list and the
 *    fetched data is dropped; otherwise a data victim is evicted along
 *    with every tag linked to it.
 *  - Writes (Sec 3.4): writebacks recompute the map. An unchanged map
 *    only sets the tag's dirty bit; a changed map moves the tag to the
 *    new map's list (the written values are dropped if a similar block
 *    already exists there).
 *  - Replacements (Sec 3.5): per-tag dirty bits; evicting a data entry
 *    evicts and writes back all linked tags; a sole tag's eviction
 *    frees its data entry. LRU in both arrays by default.
 *
 * Every observable — StatRegistry snapshots, final contents, fault
 * draw/record traces, replacement decisions — is bit-identical to
 * RefDoppelgangerCache by contract (tests/test_hotpath_diff.cc).
 */
class DoppelgangerCache : public DoppEngine
{
  public:
    /**
     * @param memory backing store
     * @param config geometry and behaviour knobs
     * @param registry annotation registry for element types/ranges;
     *                 may be nullptr (defaults apply to every block)
     * @param stat_registry registry to expose counters in; nullptr
     *                      gives the cache a private registry
     * @param stat_group dotted group path for this cache's counters
     */
    DoppelgangerCache(MainMemory &memory, const DoppConfig &config,
                      const ApproxRegistry *registry,
                      StatRegistry *stat_registry = nullptr,
                      const std::string &stat_group = "llc.dopp");

    FetchResult fetch(Addr addr, u8 *data) override;
    void writeback(Addr addr, const u8 *data) override;
    bool contains(Addr addr) const override;
    void forEachBlock(
        const std::function<void(const LlcBlockInfo &)> &visit)
        const override;
    void flush() override;

    void setHotPathProfile(HotPathProfile *p) override { prof = p; }

    u64 tagCount() const override { return tagDir.validCount(); }
    u64 dataCount() const override { return dataDir.validCount(); }
    unsigned tagsSharingWith(Addr addr) const override;
    bool sameDataEntry(Addr a, Addr b) const override;
    const u8 *peekBlock(Addr addr) const override;
    std::optional<u64> mapOf(Addr addr) const override;
    bool checkInvariants(std::string *why = nullptr) const override;
    bool selfCheckAndRepair() override;

  private:
    /** @name Client flag bits (SetAssocDir bit 0 is the valid bit) */
    /// @{
    static constexpr u8 TagDirty = 2;   ///< per-tag dirty bit (Sec 3.4)
    static constexpr u8 TagPrecise = 4; ///< uniDoppelgänger precise tag
    static constexpr u8 DataPrecise = 2; ///< exclusive precise entry
    /// @}

    /** Flattened tag-slot index: set * ways + way. */
    i32 tagIndex(u32 set, u32 way) const;
    Addr tagAddr(i32 idx) const;

    /** Locate @p addr's tag slot (batched set probe). @return index
     * or -1. */
    i32 findTag(Addr addr) const;

    /** Data-array set a map value indexes. */
    u32 dataSetOfMap(u64 map) const;

    /** Locate the approximate data entry matching @p map (batched
     * MTag probe skipping precise entries). @return flattened index
     * (set * ways + way) or -1. */
    i32 findDataByMap(u64 map) const;

    /** Data entry a (valid) tag at @p tag_idx currently points at. */
    i32 dataIndexOfTag(i32 tag_idx) const;

    /** Insert @p tag_idx at the head of data entry @p data_idx's list. */
    void linkHead(i32 tag_idx, i32 data_idx);

    /** Remove @p tag_idx from its list. @return true iff the list is
     * now empty (caller decides the data entry's fate). */
    bool unlink(i32 tag_idx, i32 data_idx);

    /** Evict the data entry at @p data_idx: write back and invalidate
     * every linked tag (Sec 3.5). */
    void evictDataEntry(i32 data_idx);

    /** Evict a single tag entry, freeing its data entry if sole. */
    void evictTagEntry(i32 tag_idx);

    /** Write @p tag_idx's block back to memory if needed (on evict).
     * Private dirty copies supersede the shared data entry. */
    void writebackTag(i32 tag_idx, i32 data_idx);

    /** Number of tags on the list of data entry @p data_idx, counting
     * at most @p cap (enough to compare victims cheaply). */
    u64 linkedTagCount(i32 data_idx, u64 cap = 64) const;

    /** Allocate (evicting as needed) a data entry in @p set. */
    i32 allocateDataEntry(u32 set);

    /** Handle the off-critical-path part of a fetch miss (Sec 3.3). */
    void insertBlock(Addr addr, const u8 *bytes);

    /** Monomorphized block iteration; forEachBlock wraps this with a
     * std::function for the virtual interface, internal callers pay
     * no type-erasure hop. */
    template <typename Visitor>
    void visitBlocks(Visitor &&visit) const;

    /** @name Fault injection and QoR reporting (src/fault) */
    /// @{

    /** Per-operation injector hook, run at every fetch/writeback:
     * draws data/metadata faults, applies them, and self-checks after
     * any structural mutation. */
    void injectFaults();

    /** Flip one bit of a (valid, approximate) data entry's 64 B. */
    void injectDataFault();

    /** Flip one tag-metadata bit (map, prev/next, dirty, precise),
     * targeting the arena-resident index fields directly.
     * @return whether the flip can break structural invariants. */
    bool injectTagMetaFault();

    /** Flip one MTag-metadata bit (map tag, head, precise).
     * @return whether the flip can break structural invariants. */
    bool injectMTagMetaFault();

    /** Rebuild all tag lists from surviving metadata (see
     * selfCheckAndRepair). @return {tags dropped, entries dropped}. */
    std::pair<u64, u64> repairMetadata();

    /** Report a fill/writeback substitution error to the guardrail:
     * the requester's exact @p exact bytes were replaced by data entry
     * @p data_idx's stored doppelgänger. */
    void observeSubstitution(Addr addr, const u8 *exact, i32 data_idx);

    /** Report an error-free operation to the guardrail. */
    void observeClean();
    /// @}

    /**
     * Address-tag directory (SoA): key = address tag; client flags
     * TagDirty / TagPrecise.
     */
    SetAssocDir tagDir;
    AddrSlicer tagSlicer;

    /**
     * MTag directory (SoA): key = full map value (block address for
     * precise entries); client flag DataPrecise.
     */
    SetAssocDir dataDir;

    /** @name Per-field arenas (intrusive index pools)
     * One slot per directory way, indexed by the flattened slot index;
     * "free" slots are simply the directory-invalid ones, so there is
     * no separate free list to maintain or corrupt. */
    /// @{
    std::vector<u64> tagMapV;  ///< map value / direct index if precise
    std::vector<i32> tagPrevV; ///< previous tag in the shared-data list
    std::vector<i32> tagNextV; ///< next tag in the shared-data list
    std::vector<i32> dataHeadV; ///< head of each entry's tag list
    std::vector<BlockData> blocks; ///< 64 B payloads, separated from
                                   ///< the probed metadata
    /// @}

    /** Per-phase wall-clock sink (bench-only; null in normal runs). */
    HotPathProfile *prof = nullptr;
};

} // namespace dopp

#endif // DOPP_CORE_DOPPELGANGER_CACHE_HH
