/**
 * @file
 * The Doppelgänger cache (paper Sec 3): a last-level cache with
 * decoupled tag and approximate data arrays in which tags of
 * approximately similar blocks share a single data entry.
 *
 * Organization (Fig 4):
 *  - *Tag array*: indexed by physical address like a conventional tag
 *    array. Each entry holds the address tag, state/dirty bits, a map
 *    value, and prev/next tag pointers forming a doubly-linked list of
 *    all tags that share one data entry (Fig 5).
 *  - *Approximate data array with MTag array*: indexed by the *map*
 *    value — the low map bits select a set, the high bits are matched
 *    against the stored map tags. Each data entry holds the map tag, a
 *    pointer to the head of its tag list, and the 64 B data block.
 *
 * The same class also implements the unified uniDoppelgänger variant
 * (Sec 3.8) when configured with `unified = true`: precise blocks get
 * an exclusive data entry addressed through a direct pointer in the
 * tag's map field, with prev/next permanently null.
 */

#ifndef DOPP_CORE_DOPPELGANGER_CACHE_HH
#define DOPP_CORE_DOPPELGANGER_CACHE_HH

#include <functional>
#include <optional>

#include "core/map_function.hh"
#include "sim/llc.hh"
#include "sim/set_assoc.hh"
#include "util/types.hh"

namespace dopp
{

/** Configuration of a Doppelgänger (or uniDoppelgänger) cache. */
struct DoppConfig
{
    /** Tag-array entries; 16 K = "1 MB tag-equivalent" (Table 1). */
    u32 tagEntries = 16 * 1024;
    u32 tagWays = 16;

    /** Data-array entries; 4 K = the paper's base 1/4 data array. */
    u32 dataEntries = 4 * 1024;
    u32 dataWays = 16;

    /** Map-space size M (Table 1 default: 14-bit). */
    unsigned mapBits = 14;

    /** Hash-function selection (ablation; paper uses AvgAndRange). */
    MapHashMode hashMode = MapHashMode::AvgAndRange;

    /**
     * Optional replacement for the map function. When set, it is used
     * instead of computeMap(); the exact-deduplication baseline plugs a
     * 64-bit content hash in here to share entries only between
     * byte-identical blocks.
     */
    std::function<u64(const u8 *block, const MapParams &)> mapOverride;

    /** Total hit latency in cycles (Table 1: 6). */
    Tick hitLatency = 6;

    /** uniDoppelgänger mode: precise blocks may reside here too. */
    bool unified = false;

    /**
     * XOR-fold the whole map into the data-array set index instead of
     * using the raw low map bits (the paper's Fig 4 uses the latter).
     * Structured integer data can land every map on a few low-bit
     * residues, leaving most sets idle; folding — standard practice for
     * hashed cache indexing — restores set balance without changing
     * which blocks share an entry. Ablate with bench_ablations.
     */
    bool hashDataSetIndex = true;

    /** Annotation fallback for addresses without a registered region
     * (standalone/unit-test use; split routing guarantees a region). */
    ElemType defaultType = ElemType::F32;
    double defaultMin = 0.0;
    double defaultMax = 1.0;

    ReplPolicy tagPolicy = ReplPolicy::LRU;
    ReplPolicy dataPolicy = ReplPolicy::LRU;

    /**
     * Tag-count-aware data replacement: evict the data entry with the
     * fewest linked tags (fewest back-invalidations and writebacks),
     * breaking ties by the base policy's choice. The paper suggests
     * exactly this as future work (Sec 3.5: "a more specialized
     * replacement algorithm could take into account ... the number of
     * tags associated to a data entry"). Ablate with bench_ablations.
     */
    bool tagCountAwareData = false;
};

/**
 * Doppelgänger LLC implementation.
 *
 * Faithfully implements the paper's operational semantics:
 *  - Lookups (Sec 3.2): sequential tag-array then MTag-array probe; a
 *    tag hit guarantees an MTag hit.
 *  - Insertions (Sec 3.3): data is forwarded to the upper levels
 *    immediately (the requester sees the *fetched* values); map
 *    generation and data-array placement happen off the critical path.
 *    If a similar block exists the new tag joins its list and the
 *    fetched data is dropped; otherwise a data victim is evicted along
 *    with every tag linked to it.
 *  - Writes (Sec 3.4): writebacks recompute the map. An unchanged map
 *    only sets the tag's dirty bit; a changed map moves the tag to the
 *    new map's list (the written values are dropped if a similar block
 *    already exists there).
 *  - Replacements (Sec 3.5): per-tag dirty bits; evicting a data entry
 *    evicts and writes back all linked tags; a sole tag's eviction
 *    frees its data entry. LRU in both arrays by default.
 */
class DoppelgangerCache : public LastLevelCache
{
  public:
    /**
     * @param memory backing store
     * @param config geometry and behaviour knobs
     * @param registry annotation registry for element types/ranges;
     *                 may be nullptr (defaults apply to every block)
     * @param stat_registry registry to expose counters in; nullptr
     *                      gives the cache a private registry
     * @param stat_group dotted group path for this cache's counters
     */
    DoppelgangerCache(MainMemory &memory, const DoppConfig &config,
                      const ApproxRegistry *registry,
                      StatRegistry *stat_registry = nullptr,
                      const std::string &stat_group = "llc.dopp");

    FetchResult fetch(Addr addr, u8 *data) override;
    void writeback(Addr addr, const u8 *data) override;
    bool contains(Addr addr) const override;
    void forEachBlock(
        const std::function<void(const LlcBlockInfo &)> &visit)
        const override;
    void flush() override;

    const char *
    name() const override
    {
        return cfg.unified ? "uniDoppelganger" : "doppelganger";
    }

    /** @name Introspection (tests, stats, examples) */
    /// @{

    /** Number of valid tag entries. */
    u64 tagCount() const { return tags.validCount(); }

    /** Number of valid data entries. */
    u64 dataCount() const { return data.validCount(); }

    /** Tags currently linked to @p addr's data entry (0 if absent). */
    unsigned tagsSharingWith(Addr addr) const;

    /** Whether two resident blocks share one data entry. */
    bool sameDataEntry(Addr a, Addr b) const;

    /** The 64 B the cache would serve for @p addr (nullptr if absent). */
    const u8 *peekBlock(Addr addr) const;

    /** Map value stored for @p addr's tag (nullopt if absent/precise). */
    std::optional<u64> mapOf(Addr addr) const;

    const DoppConfig &config() const { return cfg; }

    /**
     * Exhaustive structural invariant check (tests, fault repair):
     *  - every valid tag's map resolves to a valid data entry;
     *  - walking each data entry's list visits exactly the valid tags
     *    whose map points at it, with consistent prev/next links;
     *  - every valid approximate data entry has a non-empty list;
     *  - precise tags (unified mode) have null prev/next and own their
     *    entry exclusively.
     * Hardened against corrupted metadata: out-of-range pointers and
     * cycles are reported as violations, never dereferenced.
     * @param why receives a description of the first violation.
     * @return true iff all invariants hold.
     */
    bool checkInvariants(std::string *why = nullptr) const;

    /**
     * Self-check-and-repair path for injected metadata faults: runs
     * checkInvariants and, on a violation, rebuilds every tag list
     * from the surviving tag metadata — tags whose map no longer
     * resolves to a data entry are back-invalidated and dropped
     * (rescuing dirty private copies to memory), orphaned data entries
     * are freed, and all prev/next links are regenerated. Counted in
     * stats() as faultsDetected / faultsRepaired / repairTagsDropped /
     * repairEntriesDropped. Panics if invariants still fail after the
     * rebuild (repair is by construction exhaustive, so that would be
     * a simulator bug).
     *
     * @return true if a corruption was detected (and repaired).
     */
    bool selfCheckAndRepair();
    /// @}

  private:
    /** Tag-array entry (77 bits in hardware, Table 3). */
    struct TagEntry
    {
        bool valid = false;
        u64 tag = 0;        ///< address tag
        bool dirty = false; ///< per-tag dirty bit (Sec 3.4)
        bool precise = false; ///< uniDoppelgänger precise/approx bit
        u64 map = 0;        ///< map value, or direct index if precise
        i32 prev = -1;      ///< previous tag in the shared-data list
        i32 next = -1;      ///< next tag in the shared-data list
    };

    /** Data-array entry with its MTag fields (Fig 4 right side). */
    struct DataEntry
    {
        bool valid = false;
        u64 tag = 0;        ///< full map value (block address if precise)
        bool precise = false;
        i32 head = -1;      ///< tag pointer to the list head
        BlockData data = {};
    };

    /** Flattened tag-entry index: set * ways + way. */
    i32 tagIndex(u32 set, u32 way) const;
    TagEntry &tagAt(i32 idx);
    const TagEntry &tagAt(i32 idx) const;
    Addr tagAddr(i32 idx) const;

    /** Locate @p addr's tag entry. @return index or -1. */
    i32 findTag(Addr addr) const;

    /** Data-array set a map value indexes. */
    u32 dataSetOfMap(u64 map) const;

    /** Locate the data entry matching @p map. @return flattened index
     * (set * ways + way) or -1. */
    i32 findDataByMap(u64 map) const;
    DataEntry &dataAt(i32 idx);
    const DataEntry &dataAt(i32 idx) const;

    /** Data entry a (valid) tag currently points at. */
    i32 dataIndexOfTag(const TagEntry &t) const;

    /**
     * Map parameters (type/range/M) for a block address, served from
     * the per-region cache. The cache is built lazily on the first
     * call (the LLC is constructed before workloads annotate their
     * regions); after that the registry must stay untouched — mirrors
     * the paper's start-of-application range transfer (Sec 4.1) and
     * is asserted via ApproxRegistry::generation().
     */
    MapParams paramsFor(Addr addr) const;

    /** Snapshot the registry into paramCache (see paramsFor). */
    void buildParamCache() const;

    /** Compute the map of @p bytes at @p addr, honoring mapOverride. */
    u64 mapFor(Addr addr, const u8 *bytes) const;

    /** Insert @p tag_idx at the head of data entry @p data_idx's list. */
    void linkHead(i32 tag_idx, i32 data_idx);

    /** Remove @p tag_idx from its list. @return true iff the list is
     * now empty (caller decides the data entry's fate). */
    bool unlink(i32 tag_idx, i32 data_idx);

    /** Evict the data entry at @p data_idx: write back and invalidate
     * every linked tag (Sec 3.5). */
    void evictDataEntry(i32 data_idx);

    /** Evict a single tag entry, freeing its data entry if sole. */
    void evictTagEntry(i32 tag_idx);

    /** Write @p tag_idx's block back to memory if needed (on evict).
     * Private dirty copies supersede the shared data entry. */
    void writebackTag(i32 tag_idx, const DataEntry &entry);

    /** Number of tags on the list of data entry @p data_idx, counting
     * at most @p cap (enough to compare victims cheaply). */
    u64 linkedTagCount(i32 data_idx, u64 cap = 64) const;

    /** Allocate (evicting as needed) a data entry in @p set. */
    i32 allocateDataEntry(u32 set);

    /** Handle the off-critical-path part of a fetch miss (Sec 3.3). */
    void insertBlock(Addr addr, const u8 *bytes);

    /** @name Fault injection and QoR reporting (src/fault) */
    /// @{

    /** Per-operation injector hook, run at every fetch/writeback:
     * draws data/metadata faults, applies them, and self-checks after
     * any structural mutation. */
    void injectFaults();

    /** Flip one bit of a (valid, approximate) data entry's 64 B. */
    void injectDataFault();

    /** Flip one tag-metadata bit (map, prev/next, dirty, precise).
     * @return whether the flip can break structural invariants. */
    bool injectTagMetaFault();

    /** Flip one MTag-metadata bit (map tag, head, precise).
     * @return whether the flip can break structural invariants. */
    bool injectMTagMetaFault();

    /** Rebuild all tag lists from surviving metadata (see
     * selfCheckAndRepair). @return {tags dropped, entries dropped}. */
    std::pair<u64, u64> repairMetadata();

    /** Report a fill/writeback substitution error to the guardrail:
     * the requester's exact @p exact bytes were replaced by entry
     * @p d's stored doppelgänger. */
    void observeSubstitution(Addr addr, const u8 *exact,
                             const DataEntry &d);

    /** Report an error-free operation to the guardrail. */
    void observeClean();
    /// @}

    /** Set a tag entry's validity by flattened index, keeping the
     * array's incremental valid count exact. */
    void
    setTagValid(i32 idx, bool v)
    {
        tags.setValid(static_cast<u32>(idx) / cfg.tagWays,
                      static_cast<u32>(idx) % cfg.tagWays, v);
    }

    /** Set a data entry's validity by flattened index. */
    void
    setDataValid(i32 idx, bool v)
    {
        data.setValid(static_cast<u32>(idx) / cfg.dataWays,
                      static_cast<u32>(idx) % cfg.dataWays, v);
    }

    DoppConfig cfg;
    const ApproxRegistry *registry;

    /** True iff cfg.mapOverride is installed; cached so the hot path
     * tests one byte instead of a std::function every access. */
    bool hasMapOverride;

    /** One cached [base, end) → MapParams translation. */
    struct CachedRegion
    {
        Addr base = 0;
        Addr end = 0;
        MapParams params;
    };

    /** Per-region MapParams, sorted by base; see paramsFor(). Mutable
     * because the build is lazily triggered from const lookups. */
    mutable std::vector<CachedRegion> paramCache;
    /** Most recently hit cache slot (index into paramCache), or -1.
     * Accesses stream through one region at a time, so this memo
     * short-circuits the binary search almost always. */
    mutable i32 hotParam = -1;
    /** Registry generation paramCache was built against. */
    mutable u64 paramGen = 0;
    mutable bool paramsCached = false;

    /** Fallback for addresses outside every region. */
    MapParams defaultParams;

    SetAssocArray<TagEntry> tags;
    AddrSlicer tagSlicer;

    SetAssocArray<DataEntry> data;
};

} // namespace dopp

#endif // DOPP_CORE_DOPPELGANGER_CACHE_HH
