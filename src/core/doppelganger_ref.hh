/**
 * @file
 * Reference Doppelgänger engine: the original array-of-structs
 * implementation, preserved verbatim as the behavioural oracle for
 * the optimized hot path (doppelganger_cache.hh).
 *
 * Organization (paper Fig 4):
 *  - *Tag array*: a SetAssocArray of TagEntry structs — address tag,
 *    state/dirty bits, map value and prev/next tag pointers forming a
 *    doubly-linked list of all tags sharing one data entry (Fig 5).
 *  - *Approximate data array with MTag array*: a SetAssocArray of
 *    DataEntry structs — map tag, list-head pointer and the 64 B data
 *    block, interleaved per entry.
 *
 * Every probe here strides whole entries (the layout the paper's
 * figures draw), which is exactly the pointer-chasing cost the
 * optimized engine removes. Keep this file frozen: the differential
 * suite (tests/test_hotpath_diff.cc) and the ci.sh reference-vs-
 * optimized bench diff derive their authority from it staying the
 * original code.
 */

#ifndef DOPP_CORE_DOPPELGANGER_REF_HH
#define DOPP_CORE_DOPPELGANGER_REF_HH

#include <optional>

#include "core/dopp_engine.hh"
#include "sim/set_assoc.hh"
#include "util/types.hh"

namespace dopp
{

/**
 * Reference Doppelgänger LLC implementation (array-of-structs).
 *
 * Faithfully implements the paper's operational semantics:
 *  - Lookups (Sec 3.2): sequential tag-array then MTag-array probe; a
 *    tag hit guarantees an MTag hit.
 *  - Insertions (Sec 3.3): data is forwarded to the upper levels
 *    immediately (the requester sees the *fetched* values); map
 *    generation and data-array placement happen off the critical path.
 *    If a similar block exists the new tag joins its list and the
 *    fetched data is dropped; otherwise a data victim is evicted along
 *    with every tag linked to it.
 *  - Writes (Sec 3.4): writebacks recompute the map. An unchanged map
 *    only sets the tag's dirty bit; a changed map moves the tag to the
 *    new map's list (the written values are dropped if a similar block
 *    already exists there).
 *  - Replacements (Sec 3.5): per-tag dirty bits; evicting a data entry
 *    evicts and writes back all linked tags; a sole tag's eviction
 *    frees its data entry. LRU in both arrays by default.
 */
class RefDoppelgangerCache : public DoppEngine
{
  public:
    RefDoppelgangerCache(MainMemory &memory, const DoppConfig &config,
                         const ApproxRegistry *registry,
                         StatRegistry *stat_registry = nullptr,
                         const std::string &stat_group = "llc.dopp");

    FetchResult fetch(Addr addr, u8 *data) override;
    void writeback(Addr addr, const u8 *data) override;
    bool contains(Addr addr) const override;
    void forEachBlock(
        const std::function<void(const LlcBlockInfo &)> &visit)
        const override;
    void flush() override;

    u64 tagCount() const override { return tags.validCount(); }
    u64 dataCount() const override { return data.validCount(); }
    unsigned tagsSharingWith(Addr addr) const override;
    bool sameDataEntry(Addr a, Addr b) const override;
    const u8 *peekBlock(Addr addr) const override;
    std::optional<u64> mapOf(Addr addr) const override;
    bool checkInvariants(std::string *why = nullptr) const override;
    bool selfCheckAndRepair() override;

  private:
    /** Tag-array entry (77 bits in hardware, Table 3). */
    struct TagEntry
    {
        bool valid = false;
        u64 tag = 0;        ///< address tag
        bool dirty = false; ///< per-tag dirty bit (Sec 3.4)
        bool precise = false; ///< uniDoppelgänger precise/approx bit
        u64 map = 0;        ///< map value, or direct index if precise
        i32 prev = -1;      ///< previous tag in the shared-data list
        i32 next = -1;      ///< next tag in the shared-data list
    };

    /** Data-array entry with its MTag fields (Fig 4 right side). */
    struct DataEntry
    {
        bool valid = false;
        u64 tag = 0;        ///< full map value (block address if precise)
        bool precise = false;
        i32 head = -1;      ///< tag pointer to the list head
        BlockData data = {};
    };

    /** Flattened tag-entry index: set * ways + way. */
    i32 tagIndex(u32 set, u32 way) const;
    TagEntry &tagAt(i32 idx);
    const TagEntry &tagAt(i32 idx) const;
    Addr tagAddr(i32 idx) const;

    /** Locate @p addr's tag entry. @return index or -1. */
    i32 findTag(Addr addr) const;

    /** Data-array set a map value indexes. */
    u32 dataSetOfMap(u64 map) const;

    /** Locate the data entry matching @p map. @return flattened index
     * (set * ways + way) or -1. */
    i32 findDataByMap(u64 map) const;
    DataEntry &dataAt(i32 idx);
    const DataEntry &dataAt(i32 idx) const;

    /** Data entry a (valid) tag currently points at. */
    i32 dataIndexOfTag(const TagEntry &t) const;

    /** Insert @p tag_idx at the head of data entry @p data_idx's list. */
    void linkHead(i32 tag_idx, i32 data_idx);

    /** Remove @p tag_idx from its list. @return true iff the list is
     * now empty (caller decides the data entry's fate). */
    bool unlink(i32 tag_idx, i32 data_idx);

    /** Evict the data entry at @p data_idx: write back and invalidate
     * every linked tag (Sec 3.5). */
    void evictDataEntry(i32 data_idx);

    /** Evict a single tag entry, freeing its data entry if sole. */
    void evictTagEntry(i32 tag_idx);

    /** Write @p tag_idx's block back to memory if needed (on evict).
     * Private dirty copies supersede the shared data entry. */
    void writebackTag(i32 tag_idx, const DataEntry &entry);

    /** Number of tags on the list of data entry @p data_idx, counting
     * at most @p cap (enough to compare victims cheaply). */
    u64 linkedTagCount(i32 data_idx, u64 cap = 64) const;

    /** Allocate (evicting as needed) a data entry in @p set. */
    i32 allocateDataEntry(u32 set);

    /** Handle the off-critical-path part of a fetch miss (Sec 3.3). */
    void insertBlock(Addr addr, const u8 *bytes);

    /** @name Fault injection and QoR reporting (src/fault) */
    /// @{

    /** Per-operation injector hook, run at every fetch/writeback:
     * draws data/metadata faults, applies them, and self-checks after
     * any structural mutation. */
    void injectFaults();

    /** Flip one bit of a (valid, approximate) data entry's 64 B. */
    void injectDataFault();

    /** Flip one tag-metadata bit (map, prev/next, dirty, precise).
     * @return whether the flip can break structural invariants. */
    bool injectTagMetaFault();

    /** Flip one MTag-metadata bit (map tag, head, precise).
     * @return whether the flip can break structural invariants. */
    bool injectMTagMetaFault();

    /** Rebuild all tag lists from surviving metadata (see
     * selfCheckAndRepair). @return {tags dropped, entries dropped}. */
    std::pair<u64, u64> repairMetadata();

    /** Report a fill/writeback substitution error to the guardrail:
     * the requester's exact @p exact bytes were replaced by entry
     * @p d's stored doppelgänger. */
    void observeSubstitution(Addr addr, const u8 *exact,
                             const DataEntry &d);

    /** Report an error-free operation to the guardrail. */
    void observeClean();
    /// @}

    /** Set a tag entry's validity by flattened index, keeping the
     * array's incremental valid count exact. */
    void
    setTagValid(i32 idx, bool v)
    {
        tags.setValid(static_cast<u32>(idx) / cfg.tagWays,
                      static_cast<u32>(idx) % cfg.tagWays, v);
    }

    /** Set a data entry's validity by flattened index. */
    void
    setDataValid(i32 idx, bool v)
    {
        data.setValid(static_cast<u32>(idx) / cfg.dataWays,
                      static_cast<u32>(idx) % cfg.dataWays, v);
    }

    SetAssocArray<TagEntry> tags;
    AddrSlicer tagSlicer;

    SetAssocArray<DataEntry> data;
};

} // namespace dopp

#endif // DOPP_CORE_DOPPELGANGER_REF_HH
