/**
 * @file
 * The paper's split LLC organization (Sec 3, Table 1): a conventional
 * *precise* cache (1 MB, 16-way) alongside a Doppelgänger cache (1 MB
 * tag-equivalent, reduced data array). ISA-tagged approximate requests
 * are directed to the Doppelgänger half, everything else to the precise
 * half; we model the ISA tag with an ApproxRegistry address lookup.
 */

#ifndef DOPP_CORE_SPLIT_LLC_HH
#define DOPP_CORE_SPLIT_LLC_HH

#include <memory>

#include "core/dopp_engine.hh"
#include "sim/llc.hh"

namespace dopp
{

/** Configuration of the split organization. */
struct SplitLlcConfig
{
    /** Precise half (Table 1: 1 MB, 16-way, 6-cycle). */
    u64 preciseBytes = 1024 * 1024;
    u32 preciseWays = 16;
    Tick preciseLatency = 6;

    /** Doppelgänger half. */
    DoppConfig dopp;
};

/**
 * Split precise + Doppelgänger LLC. Stats are reported as the sum of
 * both halves; per-half breakdowns are available for the energy model.
 */
class SplitLlc : public LastLevelCache
{
  public:
    /**
     * @param stat_registry run-wide registry; the halves register
     *        under @p stat_group ".precise" / ".dopp", the split's
     *        routing counters under ".route", and an aggregate
     *        whole-LLC view directly under @p stat_group
     */
    SplitLlc(MainMemory &memory, const SplitLlcConfig &config,
             const ApproxRegistry &registry,
             StatRegistry *stat_registry = nullptr,
             const std::string &stat_group = "llc");

    FetchResult fetch(Addr addr, u8 *data) override;
    void writeback(Addr addr, const u8 *data) override;
    bool contains(Addr addr) const override;
    void forEachBlock(
        const std::function<void(const LlcBlockInfo &)> &visit)
        const override;
    void flush() override;
    const char *name() const override { return "split-doppelganger"; }

    void setBackInvalidate(BackInvalidateFn fn) override;
    void setFaultInjector(FaultInjector *fi) override;
    void setGuardrail(QorGuardrail *g) override;
    void setHotPathProfile(HotPathProfile *p) override;
    const LlcStats &stats() const override;
    void resetStats() override;

    /** The precise half, for per-structure energy accounting. */
    const ConventionalLlc &precise() const { return *preciseHalf; }

    /** The Doppelgänger half (optimized or reference engine, per
     * DoppConfig::referenceImpl). */
    const DoppEngine &doppelganger() const { return *doppHalf; }

    /** Non-const access for tests. */
    DoppEngine &doppelganger() { return *doppHalf; }

  private:
    const ApproxRegistry &registry;
    std::unique_ptr<ConventionalLlc> preciseHalf;
    std::unique_ptr<DoppEngine> doppHalf;
    Counter &degradedFillsCtr; ///< fills routed precise while degraded
    mutable LlcStats combined;
};

/** Sum two stats blocks field-wise (used by split/unified reporting). */
LlcStats addStats(const LlcStats &a, const LlcStats &b);

} // namespace dopp

#endif // DOPP_CORE_SPLIT_LLC_HH
