#include "dopp_engine.hh"

#include <algorithm>

#include "core/doppelganger_cache.hh"
#include "core/doppelganger_ref.hh"
#include "util/logging.hh"

namespace dopp
{

DoppEngine::DoppEngine(MainMemory &memory, const DoppConfig &config,
                       const ApproxRegistry *registry,
                       StatRegistry *stat_registry,
                       const std::string &stat_group)
    : LastLevelCache(memory, stat_registry, stat_group), cfg(config),
      registry(registry),
      hasMapOverride(config.mapOverride != nullptr)
{
    if (config.tagEntries % config.tagWays != 0 ||
        config.dataEntries % config.dataWays != 0) {
        fatal("doppelganger: entries must be a multiple of ways");
    }
    defaultParams.mapBits = cfg.mapBits;
    defaultParams.type = cfg.defaultType;
    defaultParams.minValue = cfg.defaultMin;
    defaultParams.maxValue = cfg.defaultMax;
    if (config.dataEntries > config.tagEntries)
        warn("doppelganger: data array larger than tag array");
}

void
DoppEngine::buildParamCache() const
{
    paramCache.clear();
    for (const ApproxRegion &r : registry->regions()) {
        CachedRegion c;
        c.base = r.base;
        c.end = r.base + r.size;
        c.params.mapBits = cfg.mapBits;
        c.params.type = r.type;
        c.params.minValue = r.minValue;
        c.params.maxValue = r.maxValue;
        paramCache.push_back(c);
    }
    hotParam = -1;
    paramGen = registry->generation();
    paramsCached = true;
}

MapParams
DoppEngine::paramsFor(Addr addr) const
{
    if (!registry)
        return defaultParams;
    if (!paramsCached) {
        // Lazy: the LLC is built before workloads annotate their
        // regions, so the first access — not construction — sees the
        // final registry.
        buildParamCache();
    } else {
        DOPP_ASSERT(paramGen == registry->generation() &&
                    "approx registry mutated after run start");
    }

    if (hotParam >= 0) {
        const CachedRegion &hot =
            paramCache[static_cast<size_t>(hotParam)];
        if (addr >= hot.base && addr < hot.end)
            return hot.params;
    }

    // Binary search mirroring ApproxRegistry::find: last region whose
    // base is <= addr, if it spans addr.
    const auto it = std::upper_bound(
        paramCache.begin(), paramCache.end(), addr,
        [](Addr a, const CachedRegion &c) { return a < c.base; });
    if (it != paramCache.begin()) {
        const auto cand = std::prev(it);
        if (addr >= cand->base && addr < cand->end) {
            hotParam = static_cast<i32>(cand - paramCache.begin());
            return cand->params;
        }
    }
    return defaultParams;
}

std::unique_ptr<DoppEngine>
makeDoppEngine(MainMemory &memory, const DoppConfig &config,
               const ApproxRegistry *registry,
               StatRegistry *stat_registry,
               const std::string &stat_group)
{
    if (config.referenceImpl) {
        return std::make_unique<RefDoppelgangerCache>(
            memory, config, registry, stat_registry, stat_group);
    }
    return std::make_unique<DoppelgangerCache>(
        memory, config, registry, stat_registry, stat_group);
}

} // namespace dopp
