#include "map_function.hh"

#include <algorithm>
#include <cmath>

#include "core/map_kernels.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace dopp
{

namespace
{

/**
 * Linear binning of Sec 3.7 step 2: divide [lo, hi] into 2^bits
 * equally-spaced bins; lo maps to 0 and hi to 2^bits − 1.
 */
u64
binHash(double hash, double lo, double hi, unsigned bits)
{
    const double span = std::max(hi - lo, 1e-30);
    double t = (hash - lo) / span;
    t = std::clamp(t, 0.0, 1.0);
    const double scaled = t * static_cast<double>(1ULL << bits);
    u64 bin = static_cast<u64>(scaled);
    const u64 maxBin = (1ULL << bits) - 1;
    return std::min(bin, maxBin);
}

/** Clamp a runtime value into the declared range (Sec 4.1); NaNs are
 * treated as the minimum. */
double
clampValue(double v, double lo, double hi)
{
    if (std::isnan(v))
        return lo;
    return std::clamp(v, lo, hi);
}

/**
 * Shared mapping tail (Sec 3.7 step 2): bin the two hashes and
 * assemble the combined map. Both the monomorphized kernel path and
 * the generic reference path funnel through here, so the two can only
 * differ in the element reduction itself.
 */
MapComponents
finishMapComponents(const BlockSummary &s, const MapParams &params,
                    MapHashMode mode)
{
    const unsigned n = elemsPerBlock(params.type);
    const double lo = params.minValue;
    const double hi = params.maxValue;

    MapComponents out;
    out.avgHash = s.sum / static_cast<double>(n);
    out.rangeHash = s.max - s.min;

    const unsigned M = params.mapBits;
    // Sec 3.7: if M exceeds the element width, binning would leave the
    // low map bits always zero; skip the mapping and use the hash.
    const bool bypass = M > elemBits(params.type);
    const unsigned fullBits = bypass ? elemBits(params.type) : M;

    u64 avgMap;
    u64 rangeFull;
    if (bypass) {
        // Integer hash used directly (truncated toward zero). Clamp in
        // the double domain before converting: rounding of the
        // clamped-lane sum can leave avgHash a hair below lo, and a
        // huge declared range can push the difference past 2^64 —
        // either double-to-u64 cast would be undefined behaviour
        // (UBSan float-cast-overflow).
        const u64 cap = lowMask(fullBits);
        const double capD = static_cast<double>(cap);
        avgMap = static_cast<u64>(
            std::clamp(out.avgHash - lo, 0.0, capD));
        rangeFull =
            static_cast<u64>(std::clamp(out.rangeHash, 0.0, capD));
    } else {
        avgMap = binHash(out.avgHash, lo, hi, fullBits);
        rangeFull = binHash(out.rangeHash, 0.0, hi - lo, fullBits);
    }

    // Keep only the upper ⌈M/2⌉ bits of the range map (footnote 4).
    const unsigned rangeKeep = std::min((M + 1) / 2, fullBits);
    const u64 rangeMap = rangeFull >> (fullBits - rangeKeep);

    switch (mode) {
      case MapHashMode::AvgAndRange:
        out.avgMap = avgMap;
        out.rangeMap = rangeMap;
        out.avgBits = fullBits;
        out.rangeBits = rangeKeep;
        out.combined = (rangeMap << fullBits) | avgMap;
        break;
      case MapHashMode::AvgOnly:
        out.avgMap = avgMap;
        out.rangeMap = 0;
        out.avgBits = fullBits;
        out.rangeBits = 0;
        out.combined = avgMap;
        break;
      case MapHashMode::RangeOnly:
        out.avgMap = 0;
        out.rangeMap = rangeMap;
        out.avgBits = 0;
        out.rangeBits = rangeKeep;
        out.combined = rangeMap;
        break;
    }
    return out;
}

} // namespace

MapComponents
computeMapComponents(const u8 *block, const MapParams &params,
                     MapHashMode mode)
{
    DOPP_ASSERT(params.mapBits >= 1 && params.mapBits <= 30);
    return finishMapComponents(
        summarizeBlock(block, params.type, params.minValue,
                       params.maxValue),
        params, mode);
}

MapComponents
computeMapComponentsGeneric(const u8 *block, const MapParams &params,
                            MapHashMode mode)
{
    DOPP_ASSERT(params.mapBits >= 1 && params.mapBits <= 30);

    const unsigned n = elemsPerBlock(params.type);
    const double lo = params.minValue;
    const double hi = params.maxValue;

    BlockSummary s;
    s.min = clampValue(blockElement(block, params.type, 0), lo, hi);
    s.max = s.min;
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        const double v =
            clampValue(blockElement(block, params.type, i), lo, hi);
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.sum = sum;
    return finishMapComponents(s, params, mode);
}

u64
computeMap(const u8 *block, const MapParams &params, MapHashMode mode)
{
    return computeMapComponents(block, params, mode).combined;
}

unsigned
mapWidth(const MapParams &params, MapHashMode mode)
{
    const unsigned M = params.mapBits;
    const bool bypass = M > elemBits(params.type);
    const unsigned fullBits = bypass ? elemBits(params.type) : M;
    const unsigned rangeKeep = std::min((M + 1) / 2, fullBits);
    switch (mode) {
      case MapHashMode::AvgAndRange:
        return fullBits + rangeKeep;
      case MapHashMode::AvgOnly:
        return fullBits;
      case MapHashMode::RangeOnly:
        return rangeKeep;
    }
    return fullBits + rangeKeep;
}

} // namespace dopp
