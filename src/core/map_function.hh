/**
 * @file
 * Approximate-similarity map generation (paper Sec 3.7).
 *
 * A map value identifies approximately similar blocks: blocks with equal
 * maps share one data-array entry. Generation is a two-step process:
 *
 *  1. *Hash*: two hash functions over the block's elements — the
 *     element average and the element range (max − min). Values are
 *     first clamped to the programmer-declared [min, max].
 *  2. *Mapping*: each hash is linearly mapped from its value range into
 *     an M-bit integer (min → 0, max → 2^M − 1), i.e. the hash space is
 *     divided into 2^M equally-spaced bins. If M exceeds the element's
 *     bit width the mapping is skipped and the hash is used directly.
 *
 * The final map concatenates the M-bit average map (low bits) with the
 * upper ⌈M/2⌉ bits of the range map (high bits); for M = 14 and
 * floating-point data this is the paper's 21-bit map field (Table 3).
 */

#ifndef DOPP_CORE_MAP_FUNCTION_HH
#define DOPP_CORE_MAP_FUNCTION_HH

#include "sim/approx.hh"
#include "util/types.hh"

namespace dopp
{

/** Parameters of one map computation. */
struct MapParams
{
    unsigned mapBits = 14;          ///< M, the map-space size knob
    ElemType type = ElemType::F32;  ///< annotated element type
    double minValue = 0.0;          ///< declared range minimum
    double maxValue = 1.0;          ///< declared range maximum
};

/** Which hash functions contribute to the map (ablation knob). */
enum class MapHashMode : u8
{
    AvgAndRange, ///< the paper's design: average low bits, range high
    AvgOnly,     ///< only the average hash
    RangeOnly,   ///< only the range hash
};

/** Intermediate and final values of one map computation, for tests
 * and characterization. */
struct MapComponents
{
    double avgHash = 0.0;    ///< average of clamped elements
    double rangeHash = 0.0;  ///< max − min of clamped elements
    u64 avgMap = 0;          ///< binned average
    u64 rangeMap = 0;        ///< binned range, already truncated
    unsigned avgBits = 0;    ///< width of avgMap in the combined map
    unsigned rangeBits = 0;  ///< width of rangeMap in the combined map
    u64 combined = 0;        ///< (rangeMap << avgBits) | avgMap
};

/**
 * Compute the full component breakdown of the map of a 64 B block.
 * @param block the 64 raw bytes
 * @param params map-space and annotation parameters
 * @param mode hash-function selection (default: the paper's design)
 */
MapComponents computeMapComponents(
    const u8 *block, const MapParams &params,
    MapHashMode mode = MapHashMode::AvgAndRange);

/**
 * Reference implementation of computeMapComponents() using the
 * per-element blockElement() extraction instead of the monomorphized
 * kernels (core/map_kernels.hh). Kept for the kernel-equality tests
 * and the bench_micro_ops speedup comparison; results are bit-for-bit
 * identical to computeMapComponents().
 */
MapComponents computeMapComponentsGeneric(
    const u8 *block, const MapParams &params,
    MapHashMode mode = MapHashMode::AvgAndRange);

/** Compute just the final map value of a 64 B block. */
u64 computeMap(const u8 *block, const MapParams &params,
               MapHashMode mode = MapHashMode::AvgAndRange);

/** Total bit width of maps produced under @p params and @p mode. */
unsigned mapWidth(const MapParams &params,
                  MapHashMode mode = MapHashMode::AvgAndRange);

/**
 * Number of multiply-add operations charged per map generation for the
 * energy model: the paper conservatively assumes 21 FP ops per 64 B
 * block (Sec 5.6) at 8 pJ each.
 */
constexpr unsigned mapGenFlops = 21;

/** Energy per map generation in pJ (Sec 5.6: 21 ops × 8 pJ = 168 pJ). */
constexpr double mapGenEnergyPj = mapGenFlops * 8.0;

} // namespace dopp

#endif // DOPP_CORE_MAP_FUNCTION_HH
