#include "similarity.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "compress/bdi.hh"
#include "compress/fpc.hh"
#include "compress/dedup.hh"
#include "util/logging.hh"

namespace dopp
{

Snapshot
captureSnapshot(const LastLevelCache &llc, const ApproxRegistry &reg)
{
    Snapshot snap;
    llc.forEachBlock([&](const LlcBlockInfo &info) {
        SnapshotBlock b;
        b.addr = info.addr;
        std::memcpy(b.data.data(), info.data, blockBytes);
        const ApproxRegion *region = reg.find(info.addr);
        b.approx = region != nullptr;
        if (region) {
            b.type = region->type;
            b.minValue = region->minValue;
            b.maxValue = region->maxValue;
        }
        snap.push_back(b);
    });
    return snap;
}

namespace
{

/** Mean of a block's (clamped) elements, the 1-D sort key. */
double
blockAverage(const SnapshotBlock &b)
{
    const unsigned n = elemsPerBlock(b.type);
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        double v = blockElement(b.data.data(), b.type, i);
        if (std::isnan(v))
            v = b.minValue;
        sum += std::clamp(v, b.minValue, b.maxValue);
    }
    return sum / static_cast<double>(n);
}

/** Sec 2 definition: every element pair within @p tol (absolute). */
bool
elementsSimilar(const SnapshotBlock &a, const SnapshotBlock &b,
                double tol)
{
    if (a.type != b.type)
        return false;
    const unsigned n = elemsPerBlock(a.type);
    for (unsigned i = 0; i < n; ++i) {
        double va = blockElement(a.data.data(), a.type, i);
        double vb = blockElement(b.data.data(), b.type, i);
        if (std::isnan(va))
            va = a.minValue;
        if (std::isnan(vb))
            vb = b.minValue;
        va = std::clamp(va, a.minValue, a.maxValue);
        vb = std::clamp(vb, b.minValue, b.maxValue);
        if (std::abs(va - vb) > tol)
            return false;
    }
    return true;
}

std::vector<const SnapshotBlock *>
approxBlocks(const Snapshot &snap)
{
    std::vector<const SnapshotBlock *> out;
    for (const auto &b : snap)
        if (b.approx)
            out.push_back(&b);
    return out;
}

struct BytesHash
{
    size_t
    operator()(const BlockData &d) const
    {
        return static_cast<size_t>(fnv1a64(d.data(), blockBytes));
    }
};

} // namespace

double
thresholdSavings(const Snapshot &snap, double threshold,
                 size_t max_candidates)
{
    auto blocks = approxBlocks(snap);
    if (blocks.empty())
        return 0.0;

    if (threshold <= 0.0) {
        // T = 0%: similarity degenerates to exact equality.
        return dedupSavings(snap);
    }

    // Sort by element average: similar blocks must have averages within
    // the tolerance, so candidates lie in a contiguous window.
    std::vector<std::pair<double, const SnapshotBlock *>> keyed;
    keyed.reserve(blocks.size());
    for (const auto *b : blocks)
        keyed.emplace_back(blockAverage(*b), b);
    std::sort(keyed.begin(), keyed.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    // Greedy first-fit clustering against prior representatives.
    std::vector<std::pair<double, const SnapshotBlock *>> reps;
    for (const auto &[avg, blk] : keyed) {
        const double tol = threshold * (blk->maxValue - blk->minValue);
        bool placed = false;
        size_t scanned = 0;
        for (auto it = reps.rbegin();
             it != reps.rend() && scanned < max_candidates;
             ++it, ++scanned) {
            if (avg - it->first > tol)
                break; // representatives are sorted by average
            if (elementsSimilar(*blk, *it->second, tol)) {
                placed = true;
                break;
            }
        }
        if (!placed)
            reps.emplace_back(avg, blk);
    }

    return 1.0 - static_cast<double>(reps.size()) /
        static_cast<double>(blocks.size());
}

double
mapSavings(const Snapshot &snap, unsigned map_bits, MapHashMode mode)
{
    auto blocks = approxBlocks(snap);
    if (blocks.empty())
        return 0.0;

    std::unordered_set<u64> maps;
    for (const auto *b : blocks) {
        MapParams p;
        p.mapBits = map_bits;
        p.type = b->type;
        p.minValue = b->minValue;
        p.maxValue = b->maxValue;
        maps.insert(computeMap(b->data.data(), p, mode));
    }
    return 1.0 - static_cast<double>(maps.size()) /
        static_cast<double>(blocks.size());
}

double
dedupSavings(const Snapshot &snap)
{
    auto blocks = approxBlocks(snap);
    if (blocks.empty())
        return 0.0;

    std::unordered_set<BlockData, BytesHash> unique;
    for (const auto *b : blocks)
        unique.insert(b->data);
    return 1.0 - static_cast<double>(unique.size()) /
        static_cast<double>(blocks.size());
}

double
bdiSavings(const Snapshot &snap)
{
    auto blocks = approxBlocks(snap);
    if (blocks.empty())
        return 0.0;

    u64 compressed = 0;
    for (const auto *b : blocks)
        compressed += bdiCompressedSize(b->data.data());
    const u64 raw = static_cast<u64>(blocks.size()) * blockBytes;
    return 1.0 - static_cast<double>(compressed) /
        static_cast<double>(raw);
}

double
fpcSavings(const Snapshot &snap)
{
    auto blocks = approxBlocks(snap);
    if (blocks.empty())
        return 0.0;

    u64 compressed = 0;
    for (const auto *b : blocks)
        compressed += fpcCompressedSize(b->data.data());
    const u64 raw = static_cast<u64>(blocks.size()) * blockBytes;
    return 1.0 - static_cast<double>(compressed) /
        static_cast<double>(raw);
}

double
doppBdiSavings(const Snapshot &snap, unsigned map_bits)
{
    auto blocks = approxBlocks(snap);
    if (blocks.empty())
        return 0.0;

    // One stored block per unique map; B∆I shrinks the stored blocks.
    std::unordered_map<u64, const SnapshotBlock *> reps;
    for (const auto *b : blocks) {
        MapParams p;
        p.mapBits = map_bits;
        p.type = b->type;
        p.minValue = b->minValue;
        p.maxValue = b->maxValue;
        reps.emplace(computeMap(b->data.data(), p), b);
    }
    u64 stored = 0;
    for (const auto &[map, b] : reps)
        stored += bdiCompressedSize(b->data.data());
    const u64 raw = static_cast<u64>(blocks.size()) * blockBytes;
    return 1.0 - static_cast<double>(stored) / static_cast<double>(raw);
}

double
approxFraction(const Snapshot &snap)
{
    if (snap.empty())
        return 0.0;
    u64 approx = 0;
    for (const auto &b : snap)
        if (b.approx)
            ++approx;
    return static_cast<double>(approx) / static_cast<double>(snap.size());
}

} // namespace dopp
