/**
 * @file
 * LLC-content similarity analyses (paper Sec 2 and Sec 5.1).
 *
 * The paper instruments applications with Pin and periodically examines
 * the blocks resident in a baseline 2 MB LLC, reporting the *average
 * fraction of approximate data storage* that could be saved if similar
 * blocks shared one data entry. We reproduce the same measurement by
 * snapshotting our simulated baseline LLC during workload execution and
 * running these analyses over the snapshots:
 *
 *  - thresholdSavings: element-wise similarity at threshold T (Fig 2)
 *  - mapSavings:       map-space clustering at M bits (Fig 7)
 *  - dedupSavings:     exact byte-identical deduplication (Fig 8)
 *  - bdiSavings:       B∆I intra-block compression (Fig 8)
 *  - doppBdiSavings:   map clustering + B∆I on the survivors (Fig 8)
 */

#ifndef DOPP_ANALYSIS_SIMILARITY_HH
#define DOPP_ANALYSIS_SIMILARITY_HH

#include <vector>

#include "core/map_function.hh"
#include "sim/llc.hh"
#include "sim/memory.hh"

namespace dopp
{

/** One LLC-resident block captured for offline analysis. */
struct SnapshotBlock
{
    Addr addr = 0;
    BlockData data = {};
    bool approx = false;
    ElemType type = ElemType::F32;
    double minValue = 0.0;
    double maxValue = 1.0;
};

/** A point-in-time capture of LLC contents. */
using Snapshot = std::vector<SnapshotBlock>;

/** Capture the LLC's resident blocks, annotating each from @p reg. */
Snapshot captureSnapshot(const LastLevelCache &llc,
                         const ApproxRegistry &reg);

/**
 * Fig 2: fraction of approximate data storage saved when blocks that
 * are pair-wise element-similar at threshold @p threshold share one
 * entry. @p threshold is a fraction of the declared value range (e.g.
 * 0.01 for "1%"). Two blocks are similar iff *every* element pair
 * differs by at most threshold × range (Sec 2).
 *
 * Clustering is greedy first-fit over blocks sorted by element average;
 * @p max_candidates bounds the per-block representative scan to keep
 * the analysis linear-ish (a documented approximation that only
 * *under*-counts savings).
 */
double thresholdSavings(const Snapshot &snap, double threshold,
                        size_t max_candidates = 512);

/** Fig 7: savings when blocks with equal M-bit maps share an entry. */
double mapSavings(const Snapshot &snap, unsigned map_bits,
                  MapHashMode mode = MapHashMode::AvgAndRange);

/** Fig 8: savings from exact (byte-identical) deduplication. */
double dedupSavings(const Snapshot &snap);

/** Fig 8: savings from B∆I compression of every approximate block. */
double bdiSavings(const Snapshot &snap);

/** Savings from FPC compression of every approximate block (the other
 * compression scheme the paper cites; not in Fig 8 itself). */
double fpcSavings(const Snapshot &snap);

/** Fig 8: Doppelgänger map sharing, then B∆I on the unique blocks. */
double doppBdiSavings(const Snapshot &snap, unsigned map_bits);

/** Table 2: fraction of resident blocks that are approximate. */
double approxFraction(const Snapshot &snap);

/**
 * Averages per-snapshot metrics across periodic snapshots of a run,
 * reproducing the paper's "average fraction of blocks residing in the
 * LLC" methodology.
 */
class SnapshotAverager
{
  public:
    /** Record one snapshot's worth of metrics. */
    void
    sample(double value)
    {
        sum += value;
        ++n;
    }

    double
    mean() const
    {
        return n ? sum / static_cast<double>(n) : 0.0;
    }

    u64 count() const { return n; }

  private:
    double sum = 0.0;
    u64 n = 0;
};

} // namespace dopp

#endif // DOPP_ANALYSIS_SIMILARITY_HH
