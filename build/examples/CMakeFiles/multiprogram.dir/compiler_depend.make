# Empty compiler generated dependencies file for multiprogram.
# This may be replaced when dependencies are built.
