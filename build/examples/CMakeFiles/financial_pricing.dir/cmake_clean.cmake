file(REMOVE_RECURSE
  "CMakeFiles/financial_pricing.dir/financial_pricing.cpp.o"
  "CMakeFiles/financial_pricing.dir/financial_pricing.cpp.o.d"
  "financial_pricing"
  "financial_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
