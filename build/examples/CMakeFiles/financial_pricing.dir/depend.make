# Empty dependencies file for financial_pricing.
# This may be replaced when dependencies are built.
