# Empty dependencies file for similarity_explorer.
# This may be replaced when dependencies are built.
