file(REMOVE_RECURSE
  "CMakeFiles/similarity_explorer.dir/similarity_explorer.cpp.o"
  "CMakeFiles/similarity_explorer.dir/similarity_explorer.cpp.o.d"
  "similarity_explorer"
  "similarity_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
