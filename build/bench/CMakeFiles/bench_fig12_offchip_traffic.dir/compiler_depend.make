# Empty compiler generated dependencies file for bench_fig12_offchip_traffic.
# This may be replaced when dependencies are built.
