file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_unidopp.dir/bench_fig14_unidopp.cc.o"
  "CMakeFiles/bench_fig14_unidopp.dir/bench_fig14_unidopp.cc.o.d"
  "bench_fig14_unidopp"
  "bench_fig14_unidopp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_unidopp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
