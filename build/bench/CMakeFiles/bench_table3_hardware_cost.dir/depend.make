# Empty dependencies file for bench_table3_hardware_cost.
# This may be replaced when dependencies are built.
