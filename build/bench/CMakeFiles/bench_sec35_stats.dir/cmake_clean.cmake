file(REMOVE_RECURSE
  "CMakeFiles/bench_sec35_stats.dir/bench_sec35_stats.cc.o"
  "CMakeFiles/bench_sec35_stats.dir/bench_sec35_stats.cc.o.d"
  "bench_sec35_stats"
  "bench_sec35_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec35_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
