# Empty dependencies file for bench_sec35_stats.
# This may be replaced when dependencies are built.
