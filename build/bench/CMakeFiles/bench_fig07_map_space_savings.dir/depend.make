# Empty dependencies file for bench_fig07_map_space_savings.
# This may be replaced when dependencies are built.
