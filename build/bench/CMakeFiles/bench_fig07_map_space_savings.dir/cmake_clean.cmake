file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_map_space_savings.dir/bench_fig07_map_space_savings.cc.o"
  "CMakeFiles/bench_fig07_map_space_savings.dir/bench_fig07_map_space_savings.cc.o.d"
  "bench_fig07_map_space_savings"
  "bench_fig07_map_space_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_map_space_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
