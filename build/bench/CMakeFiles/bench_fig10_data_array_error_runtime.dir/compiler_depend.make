# Empty compiler generated dependencies file for bench_fig10_data_array_error_runtime.
# This may be replaced when dependencies are built.
