file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_data_array_error_runtime.dir/bench_fig10_data_array_error_runtime.cc.o"
  "CMakeFiles/bench_fig10_data_array_error_runtime.dir/bench_fig10_data_array_error_runtime.cc.o.d"
  "bench_fig10_data_array_error_runtime"
  "bench_fig10_data_array_error_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_data_array_error_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
