file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_threshold_similarity.dir/bench_fig02_threshold_similarity.cc.o"
  "CMakeFiles/bench_fig02_threshold_similarity.dir/bench_fig02_threshold_similarity.cc.o.d"
  "bench_fig02_threshold_similarity"
  "bench_fig02_threshold_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_threshold_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
