# Empty compiler generated dependencies file for bench_fig02_threshold_similarity.
# This may be replaced when dependencies are built.
