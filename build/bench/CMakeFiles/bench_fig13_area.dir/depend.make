# Empty dependencies file for bench_fig13_area.
# This may be replaced when dependencies are built.
