# Empty dependencies file for bench_fig08_compression_comparison.
# This may be replaced when dependencies are built.
