file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_approx_footprint.dir/bench_table2_approx_footprint.cc.o"
  "CMakeFiles/bench_table2_approx_footprint.dir/bench_table2_approx_footprint.cc.o.d"
  "bench_table2_approx_footprint"
  "bench_table2_approx_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_approx_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
