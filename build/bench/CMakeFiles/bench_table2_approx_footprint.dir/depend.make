# Empty dependencies file for bench_table2_approx_footprint.
# This may be replaced when dependencies are built.
