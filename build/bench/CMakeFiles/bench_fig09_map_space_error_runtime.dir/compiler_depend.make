# Empty compiler generated dependencies file for bench_fig09_map_space_error_runtime.
# This may be replaced when dependencies are built.
