
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/cacti_lite.cc" "src/energy/CMakeFiles/dopp_energy.dir/cacti_lite.cc.o" "gcc" "src/energy/CMakeFiles/dopp_energy.dir/cacti_lite.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/energy/CMakeFiles/dopp_energy.dir/energy_model.cc.o" "gcc" "src/energy/CMakeFiles/dopp_energy.dir/energy_model.cc.o.d"
  "/root/repo/src/energy/hardware_cost.cc" "src/energy/CMakeFiles/dopp_energy.dir/hardware_cost.cc.o" "gcc" "src/energy/CMakeFiles/dopp_energy.dir/hardware_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dopp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dopp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dopp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
