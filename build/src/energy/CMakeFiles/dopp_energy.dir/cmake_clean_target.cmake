file(REMOVE_RECURSE
  "libdopp_energy.a"
)
