# Empty compiler generated dependencies file for dopp_energy.
# This may be replaced when dependencies are built.
