file(REMOVE_RECURSE
  "CMakeFiles/dopp_energy.dir/cacti_lite.cc.o"
  "CMakeFiles/dopp_energy.dir/cacti_lite.cc.o.d"
  "CMakeFiles/dopp_energy.dir/energy_model.cc.o"
  "CMakeFiles/dopp_energy.dir/energy_model.cc.o.d"
  "CMakeFiles/dopp_energy.dir/hardware_cost.cc.o"
  "CMakeFiles/dopp_energy.dir/hardware_cost.cc.o.d"
  "libdopp_energy.a"
  "libdopp_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
