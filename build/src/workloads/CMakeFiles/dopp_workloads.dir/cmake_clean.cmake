file(REMOVE_RECURSE
  "CMakeFiles/dopp_workloads.dir/blackscholes.cc.o"
  "CMakeFiles/dopp_workloads.dir/blackscholes.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/canneal.cc.o"
  "CMakeFiles/dopp_workloads.dir/canneal.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/ferret.cc.o"
  "CMakeFiles/dopp_workloads.dir/ferret.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/fluidanimate.cc.o"
  "CMakeFiles/dopp_workloads.dir/fluidanimate.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/inversek2j.cc.o"
  "CMakeFiles/dopp_workloads.dir/inversek2j.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/jmeint.cc.o"
  "CMakeFiles/dopp_workloads.dir/jmeint.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/jpeg.cc.o"
  "CMakeFiles/dopp_workloads.dir/jpeg.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/kmeans.cc.o"
  "CMakeFiles/dopp_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/swaptions.cc.o"
  "CMakeFiles/dopp_workloads.dir/swaptions.cc.o.d"
  "CMakeFiles/dopp_workloads.dir/workload.cc.o"
  "CMakeFiles/dopp_workloads.dir/workload.cc.o.d"
  "libdopp_workloads.a"
  "libdopp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
