
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/blackscholes.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/blackscholes.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/blackscholes.cc.o.d"
  "/root/repo/src/workloads/canneal.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/canneal.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/canneal.cc.o.d"
  "/root/repo/src/workloads/ferret.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/ferret.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/ferret.cc.o.d"
  "/root/repo/src/workloads/fluidanimate.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/fluidanimate.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/fluidanimate.cc.o.d"
  "/root/repo/src/workloads/inversek2j.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/inversek2j.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/inversek2j.cc.o.d"
  "/root/repo/src/workloads/jmeint.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/jmeint.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/jmeint.cc.o.d"
  "/root/repo/src/workloads/jpeg.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/jpeg.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/jpeg.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/swaptions.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/swaptions.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/swaptions.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/dopp_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/dopp_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dopp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dopp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
