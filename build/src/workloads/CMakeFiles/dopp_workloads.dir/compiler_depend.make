# Empty compiler generated dependencies file for dopp_workloads.
# This may be replaced when dependencies are built.
