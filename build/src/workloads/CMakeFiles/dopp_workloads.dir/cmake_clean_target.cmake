file(REMOVE_RECURSE
  "libdopp_workloads.a"
)
