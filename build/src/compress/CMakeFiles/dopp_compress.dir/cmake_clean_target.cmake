file(REMOVE_RECURSE
  "libdopp_compress.a"
)
