file(REMOVE_RECURSE
  "CMakeFiles/dopp_compress.dir/bdi.cc.o"
  "CMakeFiles/dopp_compress.dir/bdi.cc.o.d"
  "CMakeFiles/dopp_compress.dir/bdi_llc.cc.o"
  "CMakeFiles/dopp_compress.dir/bdi_llc.cc.o.d"
  "CMakeFiles/dopp_compress.dir/dedup.cc.o"
  "CMakeFiles/dopp_compress.dir/dedup.cc.o.d"
  "CMakeFiles/dopp_compress.dir/fpc.cc.o"
  "CMakeFiles/dopp_compress.dir/fpc.cc.o.d"
  "libdopp_compress.a"
  "libdopp_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
