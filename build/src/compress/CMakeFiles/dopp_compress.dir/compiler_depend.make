# Empty compiler generated dependencies file for dopp_compress.
# This may be replaced when dependencies are built.
