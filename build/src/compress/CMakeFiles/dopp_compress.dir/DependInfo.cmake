
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bdi.cc" "src/compress/CMakeFiles/dopp_compress.dir/bdi.cc.o" "gcc" "src/compress/CMakeFiles/dopp_compress.dir/bdi.cc.o.d"
  "/root/repo/src/compress/bdi_llc.cc" "src/compress/CMakeFiles/dopp_compress.dir/bdi_llc.cc.o" "gcc" "src/compress/CMakeFiles/dopp_compress.dir/bdi_llc.cc.o.d"
  "/root/repo/src/compress/dedup.cc" "src/compress/CMakeFiles/dopp_compress.dir/dedup.cc.o" "gcc" "src/compress/CMakeFiles/dopp_compress.dir/dedup.cc.o.d"
  "/root/repo/src/compress/fpc.cc" "src/compress/CMakeFiles/dopp_compress.dir/fpc.cc.o" "gcc" "src/compress/CMakeFiles/dopp_compress.dir/fpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dopp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dopp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dopp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
