file(REMOVE_RECURSE
  "CMakeFiles/dopp_sim.dir/approx.cc.o"
  "CMakeFiles/dopp_sim.dir/approx.cc.o.d"
  "CMakeFiles/dopp_sim.dir/hierarchy.cc.o"
  "CMakeFiles/dopp_sim.dir/hierarchy.cc.o.d"
  "CMakeFiles/dopp_sim.dir/llc.cc.o"
  "CMakeFiles/dopp_sim.dir/llc.cc.o.d"
  "CMakeFiles/dopp_sim.dir/trace.cc.o"
  "CMakeFiles/dopp_sim.dir/trace.cc.o.d"
  "libdopp_sim.a"
  "libdopp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
