file(REMOVE_RECURSE
  "libdopp_sim.a"
)
