# Empty compiler generated dependencies file for dopp_sim.
# This may be replaced when dependencies are built.
