file(REMOVE_RECURSE
  "CMakeFiles/dopp_harness.dir/experiment.cc.o"
  "CMakeFiles/dopp_harness.dir/experiment.cc.o.d"
  "CMakeFiles/dopp_harness.dir/report.cc.o"
  "CMakeFiles/dopp_harness.dir/report.cc.o.d"
  "CMakeFiles/dopp_harness.dir/results_io.cc.o"
  "CMakeFiles/dopp_harness.dir/results_io.cc.o.d"
  "libdopp_harness.a"
  "libdopp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
