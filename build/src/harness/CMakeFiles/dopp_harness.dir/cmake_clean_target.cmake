file(REMOVE_RECURSE
  "libdopp_harness.a"
)
