# Empty dependencies file for dopp_harness.
# This may be replaced when dependencies are built.
