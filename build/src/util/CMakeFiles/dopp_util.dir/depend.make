# Empty dependencies file for dopp_util.
# This may be replaced when dependencies are built.
