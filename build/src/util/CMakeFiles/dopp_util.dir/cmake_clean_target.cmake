file(REMOVE_RECURSE
  "libdopp_util.a"
)
