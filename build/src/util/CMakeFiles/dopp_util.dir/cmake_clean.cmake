file(REMOVE_RECURSE
  "CMakeFiles/dopp_util.dir/logging.cc.o"
  "CMakeFiles/dopp_util.dir/logging.cc.o.d"
  "libdopp_util.a"
  "libdopp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
