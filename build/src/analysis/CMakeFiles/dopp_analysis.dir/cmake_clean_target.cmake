file(REMOVE_RECURSE
  "libdopp_analysis.a"
)
