# Empty dependencies file for dopp_analysis.
# This may be replaced when dependencies are built.
