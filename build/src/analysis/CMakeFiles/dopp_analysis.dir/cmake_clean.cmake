file(REMOVE_RECURSE
  "CMakeFiles/dopp_analysis.dir/similarity.cc.o"
  "CMakeFiles/dopp_analysis.dir/similarity.cc.o.d"
  "libdopp_analysis.a"
  "libdopp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
