
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/similarity.cc" "src/analysis/CMakeFiles/dopp_analysis.dir/similarity.cc.o" "gcc" "src/analysis/CMakeFiles/dopp_analysis.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dopp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/dopp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dopp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dopp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
