
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/doppelganger_cache.cc" "src/core/CMakeFiles/dopp_core.dir/doppelganger_cache.cc.o" "gcc" "src/core/CMakeFiles/dopp_core.dir/doppelganger_cache.cc.o.d"
  "/root/repo/src/core/map_function.cc" "src/core/CMakeFiles/dopp_core.dir/map_function.cc.o" "gcc" "src/core/CMakeFiles/dopp_core.dir/map_function.cc.o.d"
  "/root/repo/src/core/split_llc.cc" "src/core/CMakeFiles/dopp_core.dir/split_llc.cc.o" "gcc" "src/core/CMakeFiles/dopp_core.dir/split_llc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dopp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dopp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
