file(REMOVE_RECURSE
  "CMakeFiles/dopp_core.dir/doppelganger_cache.cc.o"
  "CMakeFiles/dopp_core.dir/doppelganger_cache.cc.o.d"
  "CMakeFiles/dopp_core.dir/map_function.cc.o"
  "CMakeFiles/dopp_core.dir/map_function.cc.o.d"
  "CMakeFiles/dopp_core.dir/split_llc.cc.o"
  "CMakeFiles/dopp_core.dir/split_llc.cc.o.d"
  "libdopp_core.a"
  "libdopp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dopp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
