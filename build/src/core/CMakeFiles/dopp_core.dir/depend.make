# Empty dependencies file for dopp_core.
# This may be replaced when dependencies are built.
