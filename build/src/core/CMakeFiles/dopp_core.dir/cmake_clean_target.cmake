file(REMOVE_RECURSE
  "libdopp_core.a"
)
