# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_approx[1]_include.cmake")
include("/root/repo/build/tests/test_set_assoc[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_map_function[1]_include.cmake")
include("/root/repo/build/tests/test_doppelganger[1]_include.cmake")
include("/root/repo/build/tests/test_conventional_llc[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_bdi[1]_include.cmake")
include("/root/repo/build/tests/test_dedup[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_split_llc[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_workload_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_bdi_llc[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_fpc[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_uni_doppelganger[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
