# Empty dependencies file for test_conventional_llc.
# This may be replaced when dependencies are built.
