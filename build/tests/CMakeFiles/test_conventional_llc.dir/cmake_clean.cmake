file(REMOVE_RECURSE
  "CMakeFiles/test_conventional_llc.dir/test_conventional_llc.cc.o"
  "CMakeFiles/test_conventional_llc.dir/test_conventional_llc.cc.o.d"
  "test_conventional_llc"
  "test_conventional_llc.pdb"
  "test_conventional_llc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conventional_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
