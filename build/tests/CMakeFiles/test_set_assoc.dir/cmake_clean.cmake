file(REMOVE_RECURSE
  "CMakeFiles/test_set_assoc.dir/test_set_assoc.cc.o"
  "CMakeFiles/test_set_assoc.dir/test_set_assoc.cc.o.d"
  "test_set_assoc"
  "test_set_assoc.pdb"
  "test_set_assoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
