file(REMOVE_RECURSE
  "CMakeFiles/test_bdi_llc.dir/test_bdi_llc.cc.o"
  "CMakeFiles/test_bdi_llc.dir/test_bdi_llc.cc.o.d"
  "test_bdi_llc"
  "test_bdi_llc.pdb"
  "test_bdi_llc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdi_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
