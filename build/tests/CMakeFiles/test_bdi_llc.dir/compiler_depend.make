# Empty compiler generated dependencies file for test_bdi_llc.
# This may be replaced when dependencies are built.
