# Empty dependencies file for test_map_function.
# This may be replaced when dependencies are built.
