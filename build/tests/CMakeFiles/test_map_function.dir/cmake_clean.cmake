file(REMOVE_RECURSE
  "CMakeFiles/test_map_function.dir/test_map_function.cc.o"
  "CMakeFiles/test_map_function.dir/test_map_function.cc.o.d"
  "test_map_function"
  "test_map_function.pdb"
  "test_map_function[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_map_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
