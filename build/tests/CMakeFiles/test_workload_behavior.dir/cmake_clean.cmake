file(REMOVE_RECURSE
  "CMakeFiles/test_workload_behavior.dir/test_workload_behavior.cc.o"
  "CMakeFiles/test_workload_behavior.dir/test_workload_behavior.cc.o.d"
  "test_workload_behavior"
  "test_workload_behavior.pdb"
  "test_workload_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
