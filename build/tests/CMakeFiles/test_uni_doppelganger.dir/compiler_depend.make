# Empty compiler generated dependencies file for test_uni_doppelganger.
# This may be replaced when dependencies are built.
