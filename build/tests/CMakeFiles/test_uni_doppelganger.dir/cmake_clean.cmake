file(REMOVE_RECURSE
  "CMakeFiles/test_uni_doppelganger.dir/test_uni_doppelganger.cc.o"
  "CMakeFiles/test_uni_doppelganger.dir/test_uni_doppelganger.cc.o.d"
  "test_uni_doppelganger"
  "test_uni_doppelganger.pdb"
  "test_uni_doppelganger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uni_doppelganger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
