# Empty dependencies file for test_split_llc.
# This may be replaced when dependencies are built.
