file(REMOVE_RECURSE
  "CMakeFiles/test_split_llc.dir/test_split_llc.cc.o"
  "CMakeFiles/test_split_llc.dir/test_split_llc.cc.o.d"
  "test_split_llc"
  "test_split_llc.pdb"
  "test_split_llc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
