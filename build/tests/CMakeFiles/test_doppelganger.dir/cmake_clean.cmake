file(REMOVE_RECURSE
  "CMakeFiles/test_doppelganger.dir/test_doppelganger.cc.o"
  "CMakeFiles/test_doppelganger.dir/test_doppelganger.cc.o.d"
  "test_doppelganger"
  "test_doppelganger.pdb"
  "test_doppelganger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doppelganger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
