/**
 * @file
 * Financial-pricing example: the paper's other workload family.
 * Prices an option portfolio (blackscholes) and a swaption book
 * (swaptions) on every LLC organization, showing the two ends of
 * Table 2's spectrum side by side:
 *
 *  - blackscholes: 60%+ approximate footprint with heavy exact
 *    redundancy — Doppelgänger and even exact dedup both shine;
 *  - swaptions: a ~1.5% approximate footprint whose shared f32 range
 *    coarsens interest rates — the paper's cautionary tale (Sec 5.2).
 *
 * Usage: financial_pricing [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "energy/energy_model.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace dopp;

namespace
{

void
runFamily(const char *workload, double scale)
{
    RunConfig base;
    base.kind = LlcKind::Baseline;
    base.workload.scale = scale;
    const RunResult baseline = runWorkload(workload, base);
    const EnergyModel energy;
    const EnergyResult baseE =
        energy.baseline(baseline.llc, baseline.runtime);

    TextTable table;
    table.header({"organization", "price error", "runtime",
                  "LLC dyn energy", "approx sharing"});
    table.row({"baseline (precise)", "0.00%", "1.000", "1.000x", "-"});

    for (LlcKind kind : {LlcKind::Dedup, LlcKind::SplitDopp,
                         LlcKind::UniDopp}) {
        RunConfig cfg = base;
        cfg.kind = kind;
        if (kind == LlcKind::UniDopp)
            cfg.dataFraction = 0.5;
        const RunResult r = runWorkload(workload, cfg);
        const double err =
            workloadOutputError(workload, r.output, baseline.output);

        double dynReduction = 1.0;
        if (kind == LlcKind::SplitDopp) {
            dynReduction = baseE.dynamicPj /
                energy.split(r.preciseHalf, r.doppHalf, r.doppConfig,
                             r.runtime).dynamicPj;
        } else if (kind == LlcKind::UniDopp) {
            dynReduction = baseE.dynamicPj /
                energy.unified(r.llc, r.doppConfig, r.runtime)
                    .dynamicPj;
        }
        table.row({
            llcKindName(kind),
            pct(err, 2),
            strfmt("%.3f", static_cast<double>(r.runtime) /
                               static_cast<double>(baseline.runtime)),
            kind == LlcKind::Dedup ? "-" : times(dynReduction),
            r.tagsPerDataEntry > 0.0
                ? strfmt("%.2f tags/entry", r.tagsPerDataEntry)
                : "-",
        });
    }
    table.print(std::string(workload) + " pricing across LLC designs");
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    runFamily("blackscholes", scale);
    runFamily("swaptions", scale);
    std::printf("\nNote how blackscholes tolerates approximation (and "
                "even deduplicates\nexactly), while swaptions' error "
                "concentrates in its coarsely-binned\nrates — the "
                "paper's Sec 5.2 discussion reproduced end to end.\n");
    return 0;
}
