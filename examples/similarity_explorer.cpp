/**
 * @file
 * Similarity explorer: run the paper's Sec 2 / Sec 5.1 characterization
 * on *your own data*. Reads any file, interprets it as 64 B cache
 * blocks of a chosen element type and declared value range, and
 * reports the storage savings every technique in the repository would
 * extract: element-wise threshold similarity (Fig 2), Doppelgänger map
 * spaces (Fig 7), exact dedup, B∆I, FPC, and Dopp+B∆I (Fig 8).
 *
 * Usage: similarity_explorer <file> [type] [min] [max]
 *   type: u8 | i16 | i32 | f32 | f64   (default u8)
 *   min/max: declared element range    (default 0 255)
 *
 * With no file argument, a built-in synthetic image demonstrates the
 * output.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/similarity.hh"
#include "harness/report.hh"
#include "util/random.hh"

using namespace dopp;

namespace
{

ElemType
parseType(const std::string &s)
{
    if (s == "u8")
        return ElemType::U8;
    if (s == "i16")
        return ElemType::I16;
    if (s == "i32")
        return ElemType::I32;
    if (s == "f32")
        return ElemType::F32;
    if (s == "f64")
        return ElemType::F64;
    std::fprintf(stderr, "unknown type '%s', using u8\n", s.c_str());
    return ElemType::U8;
}

std::vector<u8>
syntheticImage()
{
    // A smooth gradient with soft blobs, like the Fig 1 photograph.
    Rng rng(7);
    const unsigned w = 256;
    const unsigned h = 256;
    std::vector<u8> img(static_cast<size_t>(w) * h);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            double v = 90.0 + 0.3 * x + 0.1 * y +
                rng.uniform(-4.0, 4.0);
            img[y * w + x] = static_cast<u8>(
                std::clamp(v, 0.0, 255.0));
        }
    }
    return img;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<u8> bytes;
    ElemType type = ElemType::U8;
    double lo = 0.0;
    double hi = 255.0;

    if (argc > 1) {
        std::ifstream in(argv[1], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
        if (argc > 2)
            type = parseType(argv[2]);
        if (argc > 4) {
            lo = std::atof(argv[3]);
            hi = std::atof(argv[4]);
        }
        std::printf("analysing %s: %zu bytes as %s in [%g, %g]\n",
                    argv[1], bytes.size(), elemTypeName(type), lo, hi);
    } else {
        bytes = syntheticImage();
        std::printf("no file given; analysing a synthetic 256x256 "
                    "image (u8 pixels)\n");
    }

    const size_t blocks = bytes.size() / blockBytes;
    if (blocks < 2) {
        std::fprintf(stderr, "need at least two blocks of data\n");
        return 1;
    }

    Snapshot snap;
    snap.reserve(blocks);
    for (size_t i = 0; i < blocks; ++i) {
        SnapshotBlock b;
        b.addr = i * blockBytes;
        std::memcpy(b.data.data(), bytes.data() + i * blockBytes,
                    blockBytes);
        b.approx = true;
        b.type = type;
        b.minValue = lo;
        b.maxValue = hi;
        snap.push_back(b);
    }
    std::printf("%zu blocks\n", blocks);

    TextTable thresh;
    thresh.header({"T (of range)", "storage savings"});
    for (double t : {0.0, 0.0001, 0.001, 0.01, 0.1})
        thresh.row({pct(t, 2), pct(thresholdSavings(snap, t))});
    thresh.print("element-wise similarity (paper Fig 2)");

    TextTable maps;
    maps.header({"map space", "storage savings"});
    for (unsigned m : {10u, 12u, 13u, 14u, 16u})
        maps.row({strfmt("%u-bit", m), pct(mapSavings(snap, m))});
    maps.print("Doppelganger map clustering (paper Fig 7)");

    TextTable others;
    others.header({"technique", "storage savings"});
    others.row({"exact dedup", pct(dedupSavings(snap))});
    others.row({"BdI compression", pct(bdiSavings(snap))});
    others.row({"FPC compression", pct(fpcSavings(snap))});
    others.row({"14-bit Dopp + BdI", pct(doppBdiSavings(snap, 14))});
    others.print("lossless baselines (paper Fig 8)");
    return 0;
}
