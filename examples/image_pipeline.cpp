/**
 * @file
 * Image-pipeline example: the paper's motivating scenario (Fig 1) as a
 * runnable program. A synthetic photograph flows through a JPEG-style
 * encode/decode pipeline twice — once on a precise baseline LLC and
 * once on a split Doppelgänger LLC — and the example reports pixel
 * error, how many image blocks shared a data entry, and the storage
 * the approximate data array actually used.
 *
 * Usage: image_pipeline [map_bits] [data_fraction]
 *   map_bits:      Doppelgänger map-space size (default 14)
 *   data_fraction: data entries / tag entries (default 0.25)
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace dopp;

int
main(int argc, char **argv)
{
    const unsigned mapBits =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 14;
    const double fraction = argc > 2 ? std::atof(argv[2]) : 0.25;

    std::printf("JPEG pipeline on the baseline 2 MB LLC...\n");
    RunConfig base;
    base.kind = LlcKind::Baseline;
    base.workload.scale = 1.0;
    const RunResult precise = runWorkload("jpeg", base);

    std::printf("JPEG pipeline on the split Doppelgänger LLC "
                "(M=%u, %g data array)...\n",
                mapBits, fraction);
    RunConfig cfg = base;
    cfg.kind = LlcKind::SplitDopp;
    cfg.mapBits = mapBits;
    cfg.dataFraction = fraction;

    // Snapshot the approximate contents midway to measure sharing.
    double bestSharing = 0.0;
    cfg.snapshotPeriod = 200000;
    cfg.onSnapshot = [&](const Snapshot &snap) {
        u64 approx = 0;
        for (const auto &b : snap)
            approx += b.approx ? 1 : 0;
        (void)approx;
    };
    const RunResult dopp = runWorkload("jpeg", cfg);

    const double error =
        workloadOutputError("jpeg", dopp.output, precise.output);

    std::printf("\n-- results --\n");
    std::printf("mean pixel error:            %s\n",
                pct(error, 2).c_str());
    std::printf("normalized runtime:          %.3f\n",
                static_cast<double>(dopp.runtime) /
                    static_cast<double>(precise.runtime));
    std::printf("tags per shared data entry:  %.2f (paper avg: 4.4)\n",
                dopp.tagsPerDataEntry);
    std::printf("avg tags on evicted entries: %.2f\n",
                dopp.doppHalf.avgLinkedTags());
    std::printf("LLC misses baseline/dopp:    %llu / %llu\n",
                static_cast<unsigned long long>(
                    precise.llc.fetchMisses),
                static_cast<unsigned long long>(dopp.llc.fetchMisses));
    std::printf("map generations:             %llu (x168 pJ)\n",
                static_cast<unsigned long long>(dopp.doppHalf.mapGens));
    std::printf("\nAn output error of a few percent for a pipeline "
                "whose pixels, DCT\ncoefficients and output all lived "
                "in a %gx smaller data array is the\npaper's "
                "headline trade (Sec 5.7).\n",
                1.0 / fraction);
    (void)bestSharing;
    return 0;
}
