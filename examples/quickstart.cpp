/**
 * @file
 * Quickstart: the Doppelgänger cache in a nutshell.
 *
 * Demonstrates the library's core objects directly:
 *  1. map generation — similar blocks hash to the same map value;
 *  2. a standalone DoppelgangerCache sharing one data entry between
 *     approximately similar blocks;
 *  3. a full Table 1 system (4 cores, L1/L2, split LLC) running a few
 *     annotated array accesses end-to-end.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/doppelganger_cache.hh"
#include "core/map_function.hh"
#include "core/split_llc.hh"
#include "sim/hierarchy.hh"
#include "workloads/runtime.hh"

using namespace dopp;

int
main()
{
    std::printf("== 1. Map generation (Sec 3.7) ==\n");
    // The paper's Fig 1 example: two pixel blocks that look alike and
    // one that does not (RGB values, range 0-255). Blocks hold pixel
    // data end to end, so we tile the sample pixels across all 64 B.
    const u8 px1[6] = {92, 131, 183, 91, 132, 186};
    const u8 px2[6] = {90, 131, 185, 93, 133, 184};
    const u8 px3[6] = {35, 31, 29, 43, 38, 37};
    u8 block1[blockBytes];
    u8 block2[blockBytes];
    u8 block3[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i) {
        block1[i] = px1[i % 6];
        block2[i] = px2[i % 6];
        block3[i] = px3[i % 6];
    }

    MapParams params;
    params.mapBits = 14;
    params.type = ElemType::U8;
    params.minValue = 0.0;
    params.maxValue = 255.0;

    // Only the first six bytes differ; the rest are zero in all three.
    const u64 m1 = computeMap(block1, params);
    const u64 m2 = computeMap(block2, params);
    const u64 m3 = computeMap(block3, params);
    std::printf("map(block1)=%llu map(block2)=%llu map(block3)=%llu\n",
                static_cast<unsigned long long>(m1),
                static_cast<unsigned long long>(m2),
                static_cast<unsigned long long>(m3));
    std::printf("block1 %s block2, block1 %s block3\n\n",
                m1 == m2 ? "~=" : "!=", m1 == m3 ? "~=" : "!=");

    std::printf("== 2. A standalone Doppelgänger cache ==\n");
    MainMemory memory;
    ApproxRegistry registry;

    // Annotate one region of pixel data.
    const Addr base = 0x100000;
    ApproxRegion region;
    region.base = base;
    region.size = 1 << 20;
    region.type = ElemType::U8;
    region.minValue = 0.0;
    region.maxValue = 255.0;
    region.name = "pixels";
    registry.add(region);

    DoppConfig cfg; // Table 1 defaults: 16 K tags, 4 K data, M = 14
    DoppelgangerCache dopp(memory, cfg, &registry);

    // Two similar blocks at different addresses.
    memory.poke(base, block1, blockBytes);
    memory.poke(base + 4096, block2, blockBytes);
    u8 buf[blockBytes];
    dopp.fetch(base, buf);
    dopp.fetch(base + 4096, buf);
    std::printf("tags resident: %llu, data entries: %llu\n",
                static_cast<unsigned long long>(dopp.tagCount()),
                static_cast<unsigned long long>(dopp.dataCount()));
    std::printf("blocks share one data entry: %s\n\n",
                dopp.sameDataEntry(base, base + 4096) ? "yes" : "no");

    std::printf("== 3. Full system (Table 1) with a split LLC ==\n");
    MainMemory mem2;
    ApproxRegistry reg2;
    SplitLlcConfig sc; // 1 MB precise + Doppelgänger (1/4 data array)
    SplitLlc llc(mem2, sc, reg2);
    HierarchyConfig hc;
    MemorySystem system(hc, llc, mem2);
    SimRuntime rt(system, mem2, reg2);

    SimArray<float> temps(rt, 4096, "temperatures");
    temps.annotateApprox(25.0, 45.0, "body-temps"); // the Sec 3.7 example
    for (u64 i = 0; i < temps.size(); ++i)
        temps.poke(i, 36.5f + 0.01f * static_cast<float>(i % 100));

    double sum = 0.0;
    rt.parallelFor(0, temps.size(), 64,
                   [&](u64 i) { sum += temps.get(i); });
    std::printf("mean temperature read through the hierarchy: %.3f C\n",
                sum / static_cast<double>(temps.size()));
    std::printf("runtime: %llu cycles, LLC misses: %llu, "
                "off-chip blocks: %llu\n",
                static_cast<unsigned long long>(rt.runtime()),
                static_cast<unsigned long long>(llc.stats().fetchMisses),
                static_cast<unsigned long long>(mem2.traffic()));
    return 0;
}
