/**
 * @file
 * Trace workflow example: the Pin-style record-once/replay-many
 * methodology. Records a canneal run's memory accesses to a trace
 * file, then replays the identical access stream against several LLC
 * organizations and sizes, comparing miss rates and average latency —
 * no workload re-execution needed.
 *
 * Usage: trace_workflow [workload] [scale] [trace_path]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "compress/bdi_llc.hh"
#include "compress/dedup.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/trace.hh"

using namespace dopp;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "canneal";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/doppelganger-example.dopptrc";

    std::printf("recording a %s run (scale %.2f) to %s ...\n",
                workload.c_str(), scale, path.c_str());
    RunConfig cfg;
    cfg.kind = LlcKind::Baseline;
    cfg.workload.scale = scale;
    cfg.tracePath = path;
    const RunResult original = runWorkload(workload, cfg);
    std::printf("recorded %llu accesses (runtime %llu cycles)\n\n",
                static_cast<unsigned long long>(
                    original.hierarchy.accesses),
                static_cast<unsigned long long>(original.runtime));

    TextTable table;
    table.header({"replayed on", "LLC miss rate", "avg access latency",
                  "off-chip blocks"});

    auto replay = [&](const std::string &label,
                      LastLevelCache &llc, MainMemory &mem) {
        MemorySystem sys(HierarchyConfig{}, llc, mem);
        TraceReader rd(path);
        const ReplayStats stats = replayTrace(rd, sys);
        table.row({label, pct(llc.stats().missRate()),
                   strfmt("%.2f cycles", stats.avgLatency()),
                   strfmt("%llu", static_cast<unsigned long long>(
                       mem.traffic()))});
    };

    {
        MainMemory mem;
        ApproxRegistry reg;
        ConventionalLlc llc(mem, 2 * 1024 * 1024, 16, 6, &reg);
        replay("conventional 2MB", llc, mem);
    }
    {
        MainMemory mem;
        ApproxRegistry reg;
        ConventionalLlc llc(mem, 1024 * 1024, 16, 6, &reg);
        replay("conventional 1MB", llc, mem);
    }
    {
        MainMemory mem;
        BdiLlcConfig bc;
        BdiLlc llc(mem, bc, nullptr);
        replay("BdI-compressed 2MB", llc, mem);
    }
    {
        MainMemory mem;
        DedupConfig dc;
        DedupLlc llc(mem, dc);
        replay("dedup 2MB-tag / 1MB-data", llc, mem);
    }
    {
        // Note: replay carries addresses but no annotation registry,
        // so the Doppelgänger cache treats all data under its default
        // range — useful for occupancy studies, not error studies.
        MainMemory mem;
        DoppConfig dc;
        dc.unified = true;
        dc.tagEntries = 32 * 1024;
        dc.dataEntries = 8 * 1024;
        DoppelgangerCache llc(mem, dc, nullptr);
        replay("uniDoppelganger 1/4 (default range)", llc, mem);
    }

    table.print("trace replay: one access stream, five LLCs");
    std::printf("\nThe trace file decouples workload execution from "
                "cache studies,\nthe same way the paper's Pin traces "
                "feed its cache model.\n");
    return 0;
}
