/**
 * @file
 * Multiprogrammed-workload example (paper Sec 4.1: "Doppelgänger can
 * be used with multiprogrammed workloads by storing this information
 * per application"). Two benchmarks are recorded separately, their
 * traces interleaved into one multiprogrammed access stream with
 * disjoint address spaces and split cores, and the stream replayed on
 * a shared LLC — measuring the cache interference between programs
 * under the baseline and uniDoppelgänger organizations.
 *
 * Usage: multiprogram [workloadA] [workloadB] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/doppelganger_cache.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/trace.hh"

using namespace dopp;

namespace
{

std::string
record(const std::string &workload, double scale, const char *path)
{
    RunConfig cfg;
    cfg.kind = LlcKind::Baseline;
    cfg.workload.scale = scale;
    cfg.tracePath = path;
    const RunResult r = runWorkload(workload, cfg);
    std::printf("recorded %s: %llu accesses\n", workload.c_str(),
                static_cast<unsigned long long>(
                    r.hierarchy.accesses));
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string a = argc > 1 ? argv[1] : "kmeans";
    const std::string b = argc > 2 ? argv[2] : "canneal";
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.5;

    const std::string ta = record(a, scale, "/tmp/dopp-mp-a.dopptrc");
    const std::string tb = record(b, scale, "/tmp/dopp-mp-b.dopptrc");
    const std::string merged = "/tmp/dopp-mp-merged.dopptrc";
    const u64 total = interleaveTraces({ta, tb}, merged);
    std::printf("merged multiprogram trace: %llu accesses\n\n",
                static_cast<unsigned long long>(total));

    TextTable table;
    table.header({"system", "LLC miss rate", "avg latency",
                  "off-chip blocks"});

    auto replayOn = [&](const std::string &label,
                        const std::string &trace, bool uniDopp) {
        MainMemory mem;
        ApproxRegistry reg;
        std::unique_ptr<LastLevelCache> llc;
        if (uniDopp) {
            DoppConfig dc;
            dc.unified = true;
            dc.tagEntries = 32 * 1024;
            dc.dataEntries = 8 * 1024;
            llc = std::make_unique<DoppelgangerCache>(mem, dc, &reg);
        } else {
            llc = std::make_unique<ConventionalLlc>(
                mem, 2 * 1024 * 1024, 16, 6, &reg);
        }
        MemorySystem sys(HierarchyConfig{}, *llc, mem);
        TraceReader rd(trace);
        const ReplayStats stats = replayTrace(rd, sys);
        table.row({label, pct(llc->stats().missRate()),
                   strfmt("%.2f cycles", stats.avgLatency()),
                   strfmt("%llu", static_cast<unsigned long long>(
                       mem.traffic()))});
    };

    replayOn(a + " alone (baseline LLC)", ta, false);
    replayOn(b + " alone (baseline LLC)", tb, false);
    replayOn(a + "+" + b + " shared (baseline LLC)", merged, false);
    replayOn(a + "+" + b + " shared (uniDopp 1/4)", merged, true);

    table.print("multiprogrammed LLC sharing");
    std::printf("\nThe merged rows show the interference two programs "
                "inflict on one\nshared LLC; per-application range "
                "registration (the registry) is what\nthe paper says "
                "makes Doppelgänger multiprogramming-ready.\n");
    std::remove(ta.c_str());
    std::remove(tb.c_str());
    std::remove(merged.c_str());
    return 0;
}
