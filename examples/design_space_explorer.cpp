/**
 * @file
 * Design-space explorer: run one benchmark across LLC organizations
 * and map-space/data-array configurations, printing runtime, output
 * error, off-chip traffic and energy — the paper's whole evaluation in
 * one command for a single workload.
 *
 * Usage: design_space_explorer [workload] [scale]
 *   workload: one of the nine benchmark names (default: jpeg)
 *   scale:    input-size multiplier (default: 0.5)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "energy/energy_model.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace dopp;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "jpeg";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    RunConfig base;
    base.kind = LlcKind::Baseline;
    base.workload.scale = scale;

    std::printf("running '%s' (scale %.2f) on the baseline 2 MB LLC...\n",
                workload.c_str(), scale);
    const RunResult baseline = runWorkload(workload, base);
    const EnergyModel energy;
    const EnergyResult baseE =
        energy.baseline(baseline.llc, baseline.runtime);

    TextTable table;
    table.header({"organization", "config", "runtime", "error",
                  "LLC miss%", "off-chip blks", "dyn energy", "leakage"});
    table.row({"baseline 2MB", "-", "1.000", "0.000%",
               pct(baseline.llc.missRate()),
               strfmt("%llu", static_cast<unsigned long long>(
                   baseline.offChipTraffic())),
               "1.000", "1.000"});

    struct Point
    {
        LlcKind kind;
        unsigned mapBits;
        double fraction;
    };
    const Point points[] = {
        {LlcKind::SplitDopp, 12, 0.25}, {LlcKind::SplitDopp, 14, 0.50},
        {LlcKind::SplitDopp, 14, 0.25}, {LlcKind::SplitDopp, 14, 0.125},
        {LlcKind::UniDopp, 14, 0.50},   {LlcKind::UniDopp, 14, 0.25},
    };

    for (const auto &p : points) {
        RunConfig cfg = base;
        cfg.kind = p.kind;
        cfg.mapBits = p.mapBits;
        cfg.dataFraction = p.fraction;
        const RunResult r = runWorkload(workload, cfg);

        EnergyResult e;
        if (p.kind == LlcKind::SplitDopp) {
            e = energy.split(r.preciseHalf, r.doppHalf, r.doppConfig,
                             r.runtime);
        } else {
            e = energy.unified(r.llc, r.doppConfig, r.runtime);
        }

        const double error =
            workloadOutputError(workload, r.output, baseline.output);

        table.row({
            std::string(llcKindName(p.kind)),
            strfmt("M=%u, %g data", p.mapBits, p.fraction),
            strfmt("%.3f", static_cast<double>(r.runtime) /
                               static_cast<double>(baseline.runtime)),
            pct(error, 2),
            pct(r.llc.missRate()),
            strfmt("%llu",
                   static_cast<unsigned long long>(r.offChipTraffic())),
            strfmt("%.3f", e.dynamicPj / baseE.dynamicPj),
            strfmt("%.3f", e.leakagePj / baseE.leakagePj),
        });
    }
    table.print("design space for " + workload);
    return 0;
}
