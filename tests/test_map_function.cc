/**
 * @file
 * Unit and property tests for map generation (paper Sec 3.7): the
 * average+range hash pair, linear binning, the bypass rule for narrow
 * element types, range-map truncation, clamping, and the Fig 1 worked
 * example.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/map_function.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

/** Build a block of f32 elements from an initializer. */
void
fillF32(u8 *block, const std::vector<float> &values)
{
    for (unsigned i = 0; i < elemsPerBlock(ElemType::F32); ++i) {
        setBlockElement(block, ElemType::F32, i,
                        values[i % values.size()]);
    }
}

MapParams
f32Params(unsigned map_bits = 14, double lo = 0.0, double hi = 1.0)
{
    MapParams p;
    p.mapBits = map_bits;
    p.type = ElemType::F32;
    p.minValue = lo;
    p.maxValue = hi;
    return p;
}

} // namespace

TEST(MapFunction, Fig1WorkedExample)
{
    // Blocks 1 and 2 of Fig 1b tiled across the block are similar
    // (equal average 135..136 and range 95); block 3 differs.
    MapParams p;
    p.mapBits = 14;
    p.type = ElemType::U8;
    p.minValue = 0.0;
    p.maxValue = 255.0;

    u8 b1[blockBytes];
    u8 b2[blockBytes];
    u8 b3[blockBytes];
    const u8 px1[6] = {92, 131, 183, 91, 132, 186};
    const u8 px2[6] = {90, 131, 185, 93, 133, 184};
    const u8 px3[6] = {35, 31, 29, 43, 38, 37};
    for (unsigned i = 0; i < blockBytes; ++i) {
        b1[i] = px1[i % 6];
        b2[i] = px2[i % 6];
        b3[i] = px3[i % 6];
    }
    EXPECT_EQ(computeMap(b1, p), computeMap(b2, p));
    EXPECT_NE(computeMap(b1, p), computeMap(b3, p));
}

TEST(MapFunction, AvgAndRangeHashesComputed)
{
    u8 block[blockBytes];
    fillF32(block, {0.25f, 0.75f});
    const MapComponents c =
        computeMapComponents(block, f32Params());
    EXPECT_NEAR(c.avgHash, 0.5, 1e-6);
    EXPECT_NEAR(c.rangeHash, 0.5, 1e-6);
}

TEST(MapFunction, ConstantBlockHasZeroRange)
{
    u8 block[blockBytes];
    fillF32(block, {0.4f});
    const MapComponents c =
        computeMapComponents(block, f32Params());
    EXPECT_NEAR(c.rangeHash, 0.0, 1e-9);
    EXPECT_EQ(c.rangeMap, 0u);
}

TEST(MapFunction, MinMapsToZeroAndMaxToTop)
{
    u8 lo[blockBytes];
    u8 hi[blockBytes];
    fillF32(lo, {0.0f});
    fillF32(hi, {1.0f});
    const MapComponents clo = computeMapComponents(lo, f32Params());
    const MapComponents chi = computeMapComponents(hi, f32Params());
    EXPECT_EQ(clo.avgMap, 0u);
    EXPECT_EQ(chi.avgMap, (1u << 14) - 1);
}

TEST(MapFunction, CombinedLayoutAvgLowRangeHigh)
{
    u8 block[blockBytes];
    fillF32(block, {0.25f, 0.75f});
    const MapComponents c =
        computeMapComponents(block, f32Params());
    EXPECT_EQ(c.avgBits, 14u);
    EXPECT_EQ(c.rangeBits, 7u); // ceil(14/2), footnote 4
    EXPECT_EQ(c.combined, (c.rangeMap << 14) | c.avgMap);
}

TEST(MapFunction, MapWidthMatchesTable3)
{
    // 14-bit map on f32: 14 + 7 = 21 bits, the Table 3 map field.
    EXPECT_EQ(mapWidth(f32Params(14)), 21u);
    EXPECT_EQ(mapWidth(f32Params(12)), 18u);
    EXPECT_EQ(mapWidth(f32Params(13)), 20u);
}

TEST(MapFunction, BypassForNarrowTypes)
{
    // M = 14 > 8 bits of u8: mapping skipped, hash used directly.
    MapParams p;
    p.mapBits = 14;
    p.type = ElemType::U8;
    p.minValue = 0.0;
    p.maxValue = 255.0;
    u8 block[blockBytes];
    for (auto &b : block)
        b = 100;
    const MapComponents c = computeMapComponents(block, p);
    EXPECT_EQ(c.avgBits, 8u);
    EXPECT_EQ(c.avgMap, 100u);
    EXPECT_EQ(mapWidth(p), 8u + 7u);
}

TEST(MapFunction, NoBypassWhenMapFitsType)
{
    MapParams p;
    p.mapBits = 8;
    p.type = ElemType::U8;
    p.minValue = 0.0;
    p.maxValue = 255.0;
    u8 block[blockBytes];
    for (auto &b : block)
        b = 255;
    const MapComponents c = computeMapComponents(block, p);
    EXPECT_EQ(c.avgBits, 8u);
    EXPECT_EQ(c.avgMap, 255u);
}

TEST(MapFunction, OutOfRangeValuesClamped)
{
    // Sec 4.1: runtime values outside the declared range are clamped.
    u8 inRange[blockBytes];
    u8 outRange[blockBytes];
    fillF32(inRange, {1.0f});
    fillF32(outRange, {50.0f});
    EXPECT_EQ(computeMap(inRange, f32Params()),
              computeMap(outRange, f32Params()));
}

TEST(MapFunction, NanTreatedAsMinimum)
{
    u8 nanBlock[blockBytes];
    u8 minBlock[blockBytes];
    fillF32(nanBlock, {std::nanf("")});
    fillF32(minBlock, {0.0f});
    EXPECT_EQ(computeMap(nanBlock, f32Params()),
              computeMap(minBlock, f32Params()));
}

TEST(MapFunction, CloseValuesSameMap)
{
    // Values within a small fraction of one bin must collide.
    u8 a[blockBytes];
    u8 b[blockBytes];
    fillF32(a, {0.500000f});
    fillF32(b, {0.500005f});
    EXPECT_EQ(computeMap(a, f32Params()), computeMap(b, f32Params()));
}

TEST(MapFunction, DistantValuesDifferentMap)
{
    u8 a[blockBytes];
    u8 b[blockBytes];
    fillF32(a, {0.2f});
    fillF32(b, {0.8f});
    EXPECT_NE(computeMap(a, f32Params()), computeMap(b, f32Params()));
}

TEST(MapFunction, AvgOnlyIgnoresRange)
{
    // Same average, very different spread.
    // Exactly representable values whose average is bin-interior.
    u8 tight[blockBytes];
    u8 wide[blockBytes];
    fillF32(tight, {0.25f});
    fillF32(wide, {0.0f, 0.5f});
    EXPECT_EQ(computeMap(tight, f32Params(), MapHashMode::AvgOnly),
              computeMap(wide, f32Params(), MapHashMode::AvgOnly));
    EXPECT_NE(computeMap(tight, f32Params(), MapHashMode::AvgAndRange),
              computeMap(wide, f32Params(), MapHashMode::AvgAndRange));
}

TEST(MapFunction, RangeOnlyIgnoresAverage)
{
    u8 low[blockBytes];
    u8 high[blockBytes];
    fillF32(low, {0.1f, 0.2f});
    fillF32(high, {0.8f, 0.9f});
    EXPECT_EQ(computeMap(low, f32Params(), MapHashMode::RangeOnly),
              computeMap(high, f32Params(), MapHashMode::RangeOnly));
    EXPECT_NE(computeMap(low, f32Params()), computeMap(high,
                                                       f32Params()));
}

TEST(MapFunction, MapGenEnergyConstant)
{
    EXPECT_EQ(mapGenFlops, 21u);
    EXPECT_DOUBLE_EQ(mapGenEnergyPj, 168.0); // Sec 5.6
}

/** Property sweep: map values always fit in mapWidth bits, binning is
 * monotonic in the average, and bigger map spaces refine smaller ones. */
class MapSpaceSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MapSpaceSweep, MapsFitDeclaredWidth)
{
    const unsigned m = GetParam();
    Rng rng(m);
    u8 block[blockBytes];
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<float> vals(4);
        for (auto &v : vals)
            v = static_cast<float>(rng.uniform());
        fillF32(block, vals);
        const u64 map = computeMap(block, f32Params(m));
        EXPECT_LT(map, 1ULL << mapWidth(f32Params(m)));
    }
}

TEST_P(MapSpaceSweep, AvgBinningMonotonic)
{
    const unsigned m = GetParam();
    u8 block[blockBytes];
    u64 prev = 0;
    for (int i = 0; i <= 100; ++i) {
        fillF32(block, {static_cast<float>(i) / 100.0f});
        const MapComponents c =
            computeMapComponents(block, f32Params(m));
        EXPECT_GE(c.avgMap, prev);
        prev = c.avgMap;
    }
}

TEST_P(MapSpaceSweep, SmallerMapSpaceCoarsens)
{
    // If two blocks collide at M bits they must collide at M-1 bits
    // on the average hash (bins nest by construction).
    const unsigned m = GetParam();
    if (m < 2)
        return;
    Rng rng(m * 77);
    u8 a[blockBytes];
    u8 b[blockBytes];
    for (int trial = 0; trial < 200; ++trial) {
        const float va = static_cast<float>(rng.uniform());
        const float vb = static_cast<float>(rng.uniform());
        fillF32(a, {va});
        fillF32(b, {vb});
        const MapComponents ca = computeMapComponents(a, f32Params(m));
        const MapComponents cb = computeMapComponents(b, f32Params(m));
        if (ca.avgMap == cb.avgMap) {
            const MapComponents da =
                computeMapComponents(a, f32Params(m - 1));
            const MapComponents db =
                computeMapComponents(b, f32Params(m - 1));
            EXPECT_EQ(da.avgMap, db.avgMap);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(MapBits, MapSpaceSweep,
                         ::testing::Values(8u, 10u, 12u, 13u, 14u, 16u,
                                           20u));

/** Property sweep over element types: determinism and bin stability. */
class MapTypeSweep : public ::testing::TestWithParam<ElemType>
{
};

TEST_P(MapTypeSweep, Deterministic)
{
    const ElemType type = GetParam();
    Rng rng(99);
    u8 block[blockBytes];
    for (auto &b : block)
        b = static_cast<u8>(rng.below(256));
    MapParams p;
    p.mapBits = 14;
    p.type = type;
    p.minValue = -1000.0;
    p.maxValue = 1000.0;
    EXPECT_EQ(computeMap(block, p), computeMap(block, p));
}

TEST_P(MapTypeSweep, IdenticalBlocksAlwaysCollide)
{
    const ElemType type = GetParam();
    Rng rng(7);
    u8 a[blockBytes];
    for (auto &b : a)
        b = static_cast<u8>(rng.below(256));
    u8 b[blockBytes];
    std::memcpy(b, a, blockBytes);
    MapParams p;
    p.mapBits = 12;
    p.type = type;
    p.minValue = -1e6;
    p.maxValue = 1e6;
    EXPECT_EQ(computeMap(a, p), computeMap(b, p));
}

INSTANTIATE_TEST_SUITE_P(AllTypes, MapTypeSweep,
                         ::testing::Values(ElemType::U8, ElemType::I16,
                                           ElemType::I32, ElemType::F32,
                                           ElemType::F64));

/**
 * Bypass-path edge cases (Sec 3.7's skip-the-mapping rule): the
 * double-to-u64 conversions must be clamped into [0, 2^fullBits − 1]
 * *before* the cast. Two hazards: (a) summing N copies of a clamped
 * minimum can round the average a hair below `lo`, making
 * `avgHash − lo` a tiny negative; (b) a huge declared `lo` pushes the
 * difference past 2^64, which is undefined behaviour on conversion
 * (UBSan float-cast-overflow catches the pre-fix code).
 */
TEST(MapEdgeCases, BypassTinyNegativeAverageDiffMapsToZero)
{
    // 32 lanes of lo = 0.7 sum to 22.399999...; avg − lo = −3.3e−16.
    MapParams p;
    p.mapBits = 20; // > 16 bits of i16: bypass
    p.type = ElemType::I16;
    p.minValue = 0.7;
    p.maxValue = 1e6;
    u8 block[blockBytes] = {}; // all-zero lanes clamp to exactly lo
    const MapComponents c = computeMapComponents(block, p);
    EXPECT_LT(c.avgHash - p.minValue, 0.0); // the hazard is real
    EXPECT_EQ(c.avgMap, 0u);
    EXPECT_EQ(c.combined, computeMapComponentsGeneric(block, p).combined);
}

TEST(MapEdgeCases, BypassHugeLoSaturatesAtCap)
{
    // avgHash − lo ≈ 1e20 ≥ 2^64: pre-clamp this cast was UB.
    MapParams p;
    p.mapBits = 20;
    p.type = ElemType::I16;
    p.minValue = -1e20;
    p.maxValue = 1e20;
    u8 block[blockBytes] = {};
    const MapComponents c = computeMapComponents(block, p);
    EXPECT_EQ(c.avgBits, 16u);
    EXPECT_EQ(c.avgMap, (1ULL << 16) - 1); // saturated, not UB garbage
    EXPECT_LT(c.combined, 1ULL << mapWidth(p));
}

TEST(MapEdgeCases, DegenerateRangeLoEqualsHi)
{
    // Binned path: span collapses, everything lands in bin 0.
    u8 block[blockBytes];
    fillF32(block, {0.5f});
    const MapComponents c =
        computeMapComponents(block, f32Params(14, 0.5, 0.5));
    EXPECT_EQ(c.avgMap, 0u);
    EXPECT_EQ(c.rangeMap, 0u);
    EXPECT_EQ(c.combined, 0u);

    // Bypass path: avgHash − lo is exactly zero.
    MapParams p;
    p.mapBits = 20;
    p.type = ElemType::U8;
    p.minValue = 3.0;
    p.maxValue = 3.0;
    u8 ints[blockBytes];
    std::memset(ints, 200, blockBytes);
    const MapComponents ci = computeMapComponents(ints, p);
    EXPECT_EQ(ci.avgMap, 0u);
    EXPECT_EQ(ci.combined, 0u);
}

TEST(MapEdgeCases, AllNanBlockEqualsAllMinimumBlock)
{
    u8 nan32[blockBytes];
    u8 min32[blockBytes];
    fillF32(nan32, {std::nanf("")});
    fillF32(min32, {0.2f});
    const MapParams p32 = f32Params(14, 0.2, 0.9);
    EXPECT_EQ(computeMap(nan32, p32), computeMap(min32, p32));
    const MapComponents c32 = computeMapComponents(nan32, p32);
    EXPECT_EQ(c32.avgMap, 0u);
    EXPECT_EQ(c32.rangeMap, 0u);

    MapParams p64 = p32;
    p64.type = ElemType::F64;
    u8 nan64[blockBytes];
    u8 min64[blockBytes];
    for (unsigned i = 0; i < elemsPerBlock(ElemType::F64); ++i) {
        setBlockElement(nan64, ElemType::F64, i, std::nan(""));
        setBlockElement(min64, ElemType::F64, i, 0.2);
    }
    EXPECT_EQ(computeMap(nan64, p64), computeMap(min64, p64));
    EXPECT_EQ(computeMapComponents(nan64, p64).combined, 0u);
}

/**
 * Degenerate map-space widths (M = 1 produces rangeKeep = 1 and
 * single-bin hashes; M = 30 is the assert ceiling and bypasses every
 * narrow type): no mode/type combination may shift by fullBits or
 * produce a combined map outside its declared width.
 */
class MapBitsExtremes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MapBitsExtremes, CombinedFitsWidthInEveryMode)
{
    const unsigned m = GetParam();
    const ElemType types[] = {ElemType::U8, ElemType::I16,
                              ElemType::I32, ElemType::F32,
                              ElemType::F64};
    const MapHashMode modes[] = {MapHashMode::AvgAndRange,
                                 MapHashMode::AvgOnly,
                                 MapHashMode::RangeOnly};
    Rng rng(m * 1337);
    u8 block[blockBytes];
    for (ElemType type : types) {
        MapParams p;
        p.mapBits = m;
        p.type = type;
        p.minValue = -500.0;
        p.maxValue = 500.0;
        for (int trial = 0; trial < 64; ++trial) {
            for (auto &b : block)
                b = static_cast<u8>(rng.below(256));
            for (MapHashMode mode : modes) {
                const MapComponents c =
                    computeMapComponents(block, p, mode);
                const unsigned width = mapWidth(p, mode);
                EXPECT_GE(width, 1u);
                EXPECT_LT(c.combined, 1ULL << width)
                    << "M=" << m << " type=" << elemTypeName(type);
                EXPECT_EQ(c.avgBits + c.rangeBits, width);
                if (mode == MapHashMode::AvgAndRange) {
                    EXPECT_EQ(c.combined,
                              (c.rangeMap << c.avgBits) | c.avgMap);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ExtremeBits, MapBitsExtremes,
                         ::testing::Values(1u, 2u, 30u));

/**
 * The monomorphized kernels (core/map_kernels.hh) promise bit-for-bit
 * identical arithmetic to the generic blockElement() path: same
 * widening, same NaN rule, same clamp, same summation order. Pin full
 * component equality — exact double compares intended — across types,
 * modes, map widths, and adversarial blocks.
 */
TEST(KernelMatchesGeneric, AllTypesModesAndSpecialBlocks)
{
    const ElemType types[] = {ElemType::U8, ElemType::I16,
                              ElemType::I32, ElemType::F32,
                              ElemType::F64};
    const MapHashMode modes[] = {MapHashMode::AvgAndRange,
                                 MapHashMode::AvgOnly,
                                 MapHashMode::RangeOnly};
    const unsigned widths[] = {1, 8, 14, 20, 30};
    struct Range
    {
        double lo, hi;
    };
    const Range ranges[] = {
        {0.0, 1.0}, {-1000.0, 1000.0}, {0.7, 1e6}, {-1e20, 1e20},
        {0.5, 0.5}};

    Rng rng(0xCAFE);
    u8 block[blockBytes];
    for (int trial = 0; trial < 48; ++trial) {
        switch (trial % 4) {
          case 0: // random bytes (includes NaN bit patterns)
            for (auto &b : block)
                b = static_cast<u8>(rng.below(256));
            break;
          case 1:
            std::memset(block, 0x00, blockBytes);
            break;
          case 2:
            std::memset(block, 0xFF, blockBytes); // f32/f64 NaNs
            break;
          default:
            fillF32(block, {std::nanf(""), 0.25f, 123456.0f});
            break;
        }
        for (ElemType type : types) {
            for (const Range &r : ranges) {
                for (unsigned m : widths) {
                    MapParams p;
                    p.mapBits = m;
                    p.type = type;
                    p.minValue = r.lo;
                    p.maxValue = r.hi;
                    for (MapHashMode mode : modes) {
                        const MapComponents k =
                            computeMapComponents(block, p, mode);
                        const MapComponents g =
                            computeMapComponentsGeneric(block, p, mode);
                        EXPECT_EQ(k.avgHash, g.avgHash);
                        EXPECT_EQ(k.rangeHash, g.rangeHash);
                        EXPECT_EQ(k.avgMap, g.avgMap);
                        EXPECT_EQ(k.rangeMap, g.rangeMap);
                        EXPECT_EQ(k.avgBits, g.avgBits);
                        EXPECT_EQ(k.rangeBits, g.rangeBits);
                        EXPECT_EQ(k.combined, g.combined);
                    }
                }
            }
        }
    }
}

} // namespace dopp
