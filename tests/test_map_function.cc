/**
 * @file
 * Unit and property tests for map generation (paper Sec 3.7): the
 * average+range hash pair, linear binning, the bypass rule for narrow
 * element types, range-map truncation, clamping, and the Fig 1 worked
 * example.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/map_function.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

/** Build a block of f32 elements from an initializer. */
void
fillF32(u8 *block, const std::vector<float> &values)
{
    for (unsigned i = 0; i < elemsPerBlock(ElemType::F32); ++i) {
        setBlockElement(block, ElemType::F32, i,
                        values[i % values.size()]);
    }
}

MapParams
f32Params(unsigned map_bits = 14, double lo = 0.0, double hi = 1.0)
{
    MapParams p;
    p.mapBits = map_bits;
    p.type = ElemType::F32;
    p.minValue = lo;
    p.maxValue = hi;
    return p;
}

} // namespace

TEST(MapFunction, Fig1WorkedExample)
{
    // Blocks 1 and 2 of Fig 1b tiled across the block are similar
    // (equal average 135..136 and range 95); block 3 differs.
    MapParams p;
    p.mapBits = 14;
    p.type = ElemType::U8;
    p.minValue = 0.0;
    p.maxValue = 255.0;

    u8 b1[blockBytes];
    u8 b2[blockBytes];
    u8 b3[blockBytes];
    const u8 px1[6] = {92, 131, 183, 91, 132, 186};
    const u8 px2[6] = {90, 131, 185, 93, 133, 184};
    const u8 px3[6] = {35, 31, 29, 43, 38, 37};
    for (unsigned i = 0; i < blockBytes; ++i) {
        b1[i] = px1[i % 6];
        b2[i] = px2[i % 6];
        b3[i] = px3[i % 6];
    }
    EXPECT_EQ(computeMap(b1, p), computeMap(b2, p));
    EXPECT_NE(computeMap(b1, p), computeMap(b3, p));
}

TEST(MapFunction, AvgAndRangeHashesComputed)
{
    u8 block[blockBytes];
    fillF32(block, {0.25f, 0.75f});
    const MapComponents c =
        computeMapComponents(block, f32Params());
    EXPECT_NEAR(c.avgHash, 0.5, 1e-6);
    EXPECT_NEAR(c.rangeHash, 0.5, 1e-6);
}

TEST(MapFunction, ConstantBlockHasZeroRange)
{
    u8 block[blockBytes];
    fillF32(block, {0.4f});
    const MapComponents c =
        computeMapComponents(block, f32Params());
    EXPECT_NEAR(c.rangeHash, 0.0, 1e-9);
    EXPECT_EQ(c.rangeMap, 0u);
}

TEST(MapFunction, MinMapsToZeroAndMaxToTop)
{
    u8 lo[blockBytes];
    u8 hi[blockBytes];
    fillF32(lo, {0.0f});
    fillF32(hi, {1.0f});
    const MapComponents clo = computeMapComponents(lo, f32Params());
    const MapComponents chi = computeMapComponents(hi, f32Params());
    EXPECT_EQ(clo.avgMap, 0u);
    EXPECT_EQ(chi.avgMap, (1u << 14) - 1);
}

TEST(MapFunction, CombinedLayoutAvgLowRangeHigh)
{
    u8 block[blockBytes];
    fillF32(block, {0.25f, 0.75f});
    const MapComponents c =
        computeMapComponents(block, f32Params());
    EXPECT_EQ(c.avgBits, 14u);
    EXPECT_EQ(c.rangeBits, 7u); // ceil(14/2), footnote 4
    EXPECT_EQ(c.combined, (c.rangeMap << 14) | c.avgMap);
}

TEST(MapFunction, MapWidthMatchesTable3)
{
    // 14-bit map on f32: 14 + 7 = 21 bits, the Table 3 map field.
    EXPECT_EQ(mapWidth(f32Params(14)), 21u);
    EXPECT_EQ(mapWidth(f32Params(12)), 18u);
    EXPECT_EQ(mapWidth(f32Params(13)), 20u);
}

TEST(MapFunction, BypassForNarrowTypes)
{
    // M = 14 > 8 bits of u8: mapping skipped, hash used directly.
    MapParams p;
    p.mapBits = 14;
    p.type = ElemType::U8;
    p.minValue = 0.0;
    p.maxValue = 255.0;
    u8 block[blockBytes];
    for (auto &b : block)
        b = 100;
    const MapComponents c = computeMapComponents(block, p);
    EXPECT_EQ(c.avgBits, 8u);
    EXPECT_EQ(c.avgMap, 100u);
    EXPECT_EQ(mapWidth(p), 8u + 7u);
}

TEST(MapFunction, NoBypassWhenMapFitsType)
{
    MapParams p;
    p.mapBits = 8;
    p.type = ElemType::U8;
    p.minValue = 0.0;
    p.maxValue = 255.0;
    u8 block[blockBytes];
    for (auto &b : block)
        b = 255;
    const MapComponents c = computeMapComponents(block, p);
    EXPECT_EQ(c.avgBits, 8u);
    EXPECT_EQ(c.avgMap, 255u);
}

TEST(MapFunction, OutOfRangeValuesClamped)
{
    // Sec 4.1: runtime values outside the declared range are clamped.
    u8 inRange[blockBytes];
    u8 outRange[blockBytes];
    fillF32(inRange, {1.0f});
    fillF32(outRange, {50.0f});
    EXPECT_EQ(computeMap(inRange, f32Params()),
              computeMap(outRange, f32Params()));
}

TEST(MapFunction, NanTreatedAsMinimum)
{
    u8 nanBlock[blockBytes];
    u8 minBlock[blockBytes];
    fillF32(nanBlock, {std::nanf("")});
    fillF32(minBlock, {0.0f});
    EXPECT_EQ(computeMap(nanBlock, f32Params()),
              computeMap(minBlock, f32Params()));
}

TEST(MapFunction, CloseValuesSameMap)
{
    // Values within a small fraction of one bin must collide.
    u8 a[blockBytes];
    u8 b[blockBytes];
    fillF32(a, {0.500000f});
    fillF32(b, {0.500005f});
    EXPECT_EQ(computeMap(a, f32Params()), computeMap(b, f32Params()));
}

TEST(MapFunction, DistantValuesDifferentMap)
{
    u8 a[blockBytes];
    u8 b[blockBytes];
    fillF32(a, {0.2f});
    fillF32(b, {0.8f});
    EXPECT_NE(computeMap(a, f32Params()), computeMap(b, f32Params()));
}

TEST(MapFunction, AvgOnlyIgnoresRange)
{
    // Same average, very different spread.
    // Exactly representable values whose average is bin-interior.
    u8 tight[blockBytes];
    u8 wide[blockBytes];
    fillF32(tight, {0.25f});
    fillF32(wide, {0.0f, 0.5f});
    EXPECT_EQ(computeMap(tight, f32Params(), MapHashMode::AvgOnly),
              computeMap(wide, f32Params(), MapHashMode::AvgOnly));
    EXPECT_NE(computeMap(tight, f32Params(), MapHashMode::AvgAndRange),
              computeMap(wide, f32Params(), MapHashMode::AvgAndRange));
}

TEST(MapFunction, RangeOnlyIgnoresAverage)
{
    u8 low[blockBytes];
    u8 high[blockBytes];
    fillF32(low, {0.1f, 0.2f});
    fillF32(high, {0.8f, 0.9f});
    EXPECT_EQ(computeMap(low, f32Params(), MapHashMode::RangeOnly),
              computeMap(high, f32Params(), MapHashMode::RangeOnly));
    EXPECT_NE(computeMap(low, f32Params()), computeMap(high,
                                                       f32Params()));
}

TEST(MapFunction, MapGenEnergyConstant)
{
    EXPECT_EQ(mapGenFlops, 21u);
    EXPECT_DOUBLE_EQ(mapGenEnergyPj, 168.0); // Sec 5.6
}

/** Property sweep: map values always fit in mapWidth bits, binning is
 * monotonic in the average, and bigger map spaces refine smaller ones. */
class MapSpaceSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MapSpaceSweep, MapsFitDeclaredWidth)
{
    const unsigned m = GetParam();
    Rng rng(m);
    u8 block[blockBytes];
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<float> vals(4);
        for (auto &v : vals)
            v = static_cast<float>(rng.uniform());
        fillF32(block, vals);
        const u64 map = computeMap(block, f32Params(m));
        EXPECT_LT(map, 1ULL << mapWidth(f32Params(m)));
    }
}

TEST_P(MapSpaceSweep, AvgBinningMonotonic)
{
    const unsigned m = GetParam();
    u8 block[blockBytes];
    u64 prev = 0;
    for (int i = 0; i <= 100; ++i) {
        fillF32(block, {static_cast<float>(i) / 100.0f});
        const MapComponents c =
            computeMapComponents(block, f32Params(m));
        EXPECT_GE(c.avgMap, prev);
        prev = c.avgMap;
    }
}

TEST_P(MapSpaceSweep, SmallerMapSpaceCoarsens)
{
    // If two blocks collide at M bits they must collide at M-1 bits
    // on the average hash (bins nest by construction).
    const unsigned m = GetParam();
    if (m < 2)
        return;
    Rng rng(m * 77);
    u8 a[blockBytes];
    u8 b[blockBytes];
    for (int trial = 0; trial < 200; ++trial) {
        const float va = static_cast<float>(rng.uniform());
        const float vb = static_cast<float>(rng.uniform());
        fillF32(a, {va});
        fillF32(b, {vb});
        const MapComponents ca = computeMapComponents(a, f32Params(m));
        const MapComponents cb = computeMapComponents(b, f32Params(m));
        if (ca.avgMap == cb.avgMap) {
            const MapComponents da =
                computeMapComponents(a, f32Params(m - 1));
            const MapComponents db =
                computeMapComponents(b, f32Params(m - 1));
            EXPECT_EQ(da.avgMap, db.avgMap);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(MapBits, MapSpaceSweep,
                         ::testing::Values(8u, 10u, 12u, 13u, 14u, 16u,
                                           20u));

/** Property sweep over element types: determinism and bin stability. */
class MapTypeSweep : public ::testing::TestWithParam<ElemType>
{
};

TEST_P(MapTypeSweep, Deterministic)
{
    const ElemType type = GetParam();
    Rng rng(99);
    u8 block[blockBytes];
    for (auto &b : block)
        b = static_cast<u8>(rng.below(256));
    MapParams p;
    p.mapBits = 14;
    p.type = type;
    p.minValue = -1000.0;
    p.maxValue = 1000.0;
    EXPECT_EQ(computeMap(block, p), computeMap(block, p));
}

TEST_P(MapTypeSweep, IdenticalBlocksAlwaysCollide)
{
    const ElemType type = GetParam();
    Rng rng(7);
    u8 a[blockBytes];
    for (auto &b : a)
        b = static_cast<u8>(rng.below(256));
    u8 b[blockBytes];
    std::memcpy(b, a, blockBytes);
    MapParams p;
    p.mapBits = 12;
    p.type = type;
    p.minValue = -1e6;
    p.maxValue = 1e6;
    EXPECT_EQ(computeMap(a, p), computeMap(b, p));
}

INSTANTIATE_TEST_SUITE_P(AllTypes, MapTypeSweep,
                         ::testing::Values(ElemType::U8, ElemType::I16,
                                           ElemType::I32, ElemType::F32,
                                           ElemType::F64));

} // namespace dopp
