/**
 * @file
 * Unit tests for the util library: RNG determinism and distribution,
 * bit-manipulation helpers, statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <cstdlib>

#include "util/bitfield.hh"
#include "util/env.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dopp
{

TEST(Types, BlockAlignRoundsDown)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(65), 64u);
    EXPECT_EQ(blockAlign(0xABCDEF), 0xABCDEFULL & ~63ULL);
}

TEST(Types, BlockOffset)
{
    EXPECT_EQ(blockOffset(0), 0u);
    EXPECT_EQ(blockOffset(63), 63u);
    EXPECT_EQ(blockOffset(64), 0u);
    EXPECT_EQ(blockOffset(100), 36u);
}

TEST(Types, BlockConstantsConsistent)
{
    EXPECT_EQ(1u << blockOffsetBits, blockBytes);
}

TEST(Bitfield, IsPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1024));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(1536));
}

TEST(Bitfield, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1536), 10u);
}

TEST(Bitfield, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1536), 11u);
    EXPECT_EQ(ceilLog2(16 * 1024), 14u);
    EXPECT_EQ(ceilLog2(32 * 1024), 15u);
}

TEST(Bitfield, BitsExtraction)
{
    EXPECT_EQ(bits(0xFF00, 15, 8), 0xFFu);
    EXPECT_EQ(bits(0xFF00, 7, 0), 0x00u);
    EXPECT_EQ(bits(0xA5, 3, 0), 0x5u);
    EXPECT_EQ(bits(0xA5, 7, 4), 0xAu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(Bitfield, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(64), ~0ULL);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const u64 first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(10);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        const i64 v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(12);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(13);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.sample(r.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(14);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.sample(r.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng r(15);
    RunningStat s;
    for (int i = 0; i < 50000; ++i)
        s.sample(r.gaussian(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, Reset)
{
    RunningStat s;
    s.sample(42.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);   // bucket 0
    h.sample(9.5);   // bucket 9
    h.sample(-5.0);  // clamps to bucket 0
    h.sample(50.0);  // clamps to bucket 9
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(9), 2u);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.buckets(), 10u);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Amean)
{
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
}

// ---------------------------------------------------------------------
// Strict environment parsing (util/env.hh).
// ---------------------------------------------------------------------

TEST(Env, UnsetGivesFallback)
{
    unsetenv("DOPP_TEST_KNOB");
    EXPECT_EQ(envU64("DOPP_TEST_KNOB", 42), 42u);
    EXPECT_DOUBLE_EQ(envDouble("DOPP_TEST_KNOB", 1.5), 1.5);
}

TEST(Env, ValidValuesParse)
{
    setenv("DOPP_TEST_KNOB", "123", 1);
    EXPECT_EQ(envU64("DOPP_TEST_KNOB", 42), 123u);
    setenv("DOPP_TEST_KNOB", "0.25", 1);
    EXPECT_DOUBLE_EQ(envDouble("DOPP_TEST_KNOB", 1.0), 0.25);
    unsetenv("DOPP_TEST_KNOB");
}

TEST(EnvDeathTest, GarbageU64IsFatalAndNamesTheVariable)
{
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "abc", 1);
            envU64("DOPP_TEST_KNOB", 1);
        },
        ::testing::ExitedWithCode(1),
        "DOPP_TEST_KNOB='abc' is not a positive integer");
}

TEST(EnvDeathTest, NegativeZeroAndTrailingJunkU64AreFatal)
{
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "-7", 1);
            envU64("DOPP_TEST_KNOB", 1);
        },
        ::testing::ExitedWithCode(1), "not a positive integer");
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "0", 1);
            envU64("DOPP_TEST_KNOB", 1);
        },
        ::testing::ExitedWithCode(1), "not a positive integer");
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "12x", 1);
            envU64("DOPP_TEST_KNOB", 1);
        },
        ::testing::ExitedWithCode(1), "not a positive integer");
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "", 1);
            envU64("DOPP_TEST_KNOB", 1);
        },
        ::testing::ExitedWithCode(1), "not a positive integer");
}

TEST(EnvDeathTest, GarbageDoubleIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "fast", 1);
            envDouble("DOPP_TEST_KNOB", 1.0);
        },
        ::testing::ExitedWithCode(1),
        "DOPP_TEST_KNOB='fast' is not a positive number");
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "-0.5", 1);
            envDouble("DOPP_TEST_KNOB", 1.0);
        },
        ::testing::ExitedWithCode(1), "not a positive number");
    EXPECT_EXIT(
        {
            setenv("DOPP_TEST_KNOB", "nan", 1);
            envDouble("DOPP_TEST_KNOB", 1.0);
        },
        ::testing::ExitedWithCode(1), "not a positive number");
}

} // namespace dopp
