/**
 * @file
 * Batch-runner tests: serial/parallel/shuffled equivalence of a mixed
 * batch, pool robustness (throwing runs, cancellation, a 200-config
 * stress batch), concurrent self-determinism, and the DOPP_JOBS knob.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "harness/batch_runner.hh"
#include "harness/results_io.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

RunConfig
tinyConfig(const std::string &workload, LlcKind kind,
           double scale = 0.03)
{
    RunConfig cfg;
    cfg.workloadName = workload;
    cfg.kind = kind;
    cfg.workload.scale = scale;
    return cfg;
}

/**
 * The mixed batch of the equivalence suite: every LLC organization,
 * two small workloads each, plus one faulted + guardrailed run so the
 * fault-injector and guardrail state are covered by the contract.
 */
std::vector<RunConfig>
mixedBatch()
{
    const LlcKind kinds[] = {LlcKind::Baseline, LlcKind::SplitDopp,
                             LlcKind::UniDopp, LlcKind::Dedup,
                             LlcKind::Bdi};
    std::vector<RunConfig> configs;
    for (LlcKind kind : kinds) {
        configs.push_back(tinyConfig("kmeans", kind));
        configs.push_back(tinyConfig("jpeg", kind));
    }
    RunConfig faulted = tinyConfig("blackscholes", LlcKind::SplitDopp);
    faulted.fault.dataRate = 0.01;
    faulted.fault.tagMetaRate = 0.01;
    faulted.qor.budget = 0.001;
    faulted.qor.window = 16;
    faulted.qor.minDwell = 8;
    configs.push_back(std::move(faulted));
    return configs;
}

/** Assert two results of the same config are bit-identical. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    ASSERT_FALSE(a.failed) << a.error;
    ASSERT_FALSE(b.failed) << b.error;
    // The CSV row covers every exported stat field verbatim.
    EXPECT_EQ(runResultCsvRow(a), runResultCsvRow(b));
    ASSERT_EQ(a.output.size(), b.output.size());
    for (size_t i = 0; i < a.output.size(); ++i)
        EXPECT_EQ(a.output[i], b.output[i]) << "output element " << i;
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.tagsPerDataEntry, b.tagsPerDataEntry);
    EXPECT_EQ(a.guardrailDegradations, b.guardrailDegradations);
    EXPECT_EQ(a.guardrailDegradedOps, b.guardrailDegradedOps);
    EXPECT_EQ(a.guardrailEstimate, b.guardrailEstimate);
    ASSERT_EQ(a.faultTrace.size(), b.faultTrace.size());
    for (size_t i = 0; i < a.faultTrace.size(); ++i) {
        EXPECT_EQ(a.faultTrace[i].op, b.faultTrace[i].op);
        EXPECT_EQ(a.faultTrace[i].domain, b.faultTrace[i].domain);
        EXPECT_EQ(a.faultTrace[i].entry, b.faultTrace[i].entry);
        EXPECT_EQ(a.faultTrace[i].field, b.faultTrace[i].field);
        EXPECT_EQ(a.faultTrace[i].bit, b.faultTrace[i].bit);
    }
}

} // namespace

TEST(BatchRunner, EmptyBatch)
{
    EXPECT_TRUE(runBatch({}).empty());
}

TEST(BatchRunner, SerialParallelShuffledEquivalence)
{
    const std::vector<RunConfig> configs = mixedBatch();
    const size_t n = configs.size();

    BatchOptions serial;
    serial.jobs = 1;
    const std::vector<RunResult> atOne = runBatch(configs, serial);

    BatchOptions parallel;
    parallel.jobs = 4;
    const std::vector<RunResult> atFour = runBatch(configs, parallel);

    // Shuffled submission order: run the same configs permuted, then
    // un-permute the results before comparing.
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), size_t{0});
    Rng rng(2024);
    for (size_t i = n - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    std::vector<RunConfig> shuffled;
    for (size_t i : perm)
        shuffled.push_back(configs[i]);
    const std::vector<RunResult> shuffledResults =
        runBatch(shuffled, parallel);

    ASSERT_EQ(atOne.size(), n);
    ASSERT_EQ(atFour.size(), n);
    ASSERT_EQ(shuffledResults.size(), n);
    for (size_t i = 0; i < n; ++i) {
        SCOPED_TRACE(configs[i].workloadName + " on " +
                     llcKindName(configs[i].kind));
        expectIdentical(atOne[i], atFour[i]);
        // shuffledResults[j] ran configs[perm[j]].
        const size_t j = static_cast<size_t>(
            std::find(perm.begin(), perm.end(), i) - perm.begin());
        expectIdentical(atOne[i], shuffledResults[j]);
    }
}

TEST(BatchRunner, MatchesDirectRunWorkload)
{
    const RunConfig cfg = tinyConfig("kmeans", LlcKind::UniDopp);
    const RunResult direct = runWorkload(cfg);
    BatchOptions opt;
    opt.jobs = 2;
    const std::vector<RunResult> batch = runBatch({cfg, cfg}, opt);
    expectIdentical(direct, batch[0]);
    expectIdentical(direct, batch[1]);
}

TEST(BatchRunner, ConcurrentSelfDeterminism)
{
    // The same RunConfig racing itself on every worker must stay
    // independent: any shared mutable state in the workloads, the
    // fault injector or the guardrail would show up here.
    RunConfig cfg = tinyConfig("jmeint", LlcKind::SplitDopp);
    cfg.fault.dataRate = 0.02;
    cfg.fault.mtagMetaRate = 0.02;
    cfg.qor.budget = 0.001;
    const std::vector<RunConfig> configs(4, cfg);
    BatchOptions opt;
    opt.jobs = 4;
    const std::vector<RunResult> results = runBatch(configs, opt);
    for (size_t i = 1; i < results.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(results[0], results[i]);
    }
}

TEST(BatchRunner, ThrowingRunFailsWithoutKillingPool)
{
    std::vector<RunConfig> configs;
    configs.push_back(tinyConfig("kmeans", LlcKind::Baseline));
    RunConfig bad = tinyConfig("kmeans", LlcKind::SplitDopp);
    bad.snapshotPeriod = 1000; // at least one snapshot is guaranteed
    bad.onSnapshot = [](const Snapshot &) {
        throw std::runtime_error("snapshot hook exploded");
    };
    configs.push_back(std::move(bad));
    configs.push_back(tinyConfig("jpeg", LlcKind::UniDopp));

    BatchOptions opt;
    opt.jobs = 3;
    const std::vector<RunResult> results = runBatch(configs, opt);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_GT(results[0].runtime, 0u);
    EXPECT_TRUE(results[1].failed);
    EXPECT_EQ(results[1].error, "snapshot hook exploded");
    EXPECT_EQ(results[1].workload, "kmeans");
    EXPECT_EQ(results[1].organization, "split-doppelganger");
    EXPECT_FALSE(results[2].failed);
    EXPECT_GT(results[2].runtime, 0u);
}

TEST(BatchRunner, MissingWorkloadNameFailsThatRunOnly)
{
    std::vector<RunConfig> configs;
    configs.push_back(RunConfig{}); // no workloadName
    configs.push_back(tinyConfig("kmeans", LlcKind::Baseline));
    const std::vector<RunResult> results = runBatch(configs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].failed);
    EXPECT_NE(results[0].error.find("workloadName"), std::string::npos);
    EXPECT_FALSE(results[1].failed);
}

TEST(BatchRunner, CancelledBeforeStartCancelsEverything)
{
    const std::vector<RunConfig> configs(
        8, tinyConfig("kmeans", LlcKind::Baseline));
    std::atomic<bool> cancel{true};
    BatchOptions opt;
    opt.jobs = 4;
    opt.cancel = &cancel;
    const std::vector<RunResult> results = runBatch(configs, opt);
    for (const RunResult &r : results) {
        EXPECT_TRUE(r.failed);
        EXPECT_EQ(r.error, "cancelled");
        EXPECT_EQ(r.workload, "kmeans");
    }
}

TEST(BatchRunner, MidBatchCancellationSkipsQueuedRuns)
{
    // Serial pool: the first run trips the cancel flag from inside its
    // snapshot hook, so every queued run after it must be cancelled —
    // deterministically, since jobs=1 executes in submission order.
    std::atomic<bool> cancel{false};
    std::vector<RunConfig> configs;
    RunConfig first = tinyConfig("kmeans", LlcKind::Baseline);
    first.snapshotPeriod = 1000;
    first.onSnapshot = [&cancel](const Snapshot &) {
        cancel.store(true, std::memory_order_release);
    };
    configs.push_back(std::move(first));
    for (int i = 0; i < 5; ++i)
        configs.push_back(tinyConfig("kmeans", LlcKind::Baseline));

    BatchOptions opt;
    opt.jobs = 1;
    opt.cancel = &cancel;
    const std::vector<RunResult> results = runBatch(configs, opt);
    ASSERT_EQ(results.size(), 6u);
    EXPECT_FALSE(results[0].failed); // in-flight run completes
    for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].failed) << i;
        EXPECT_EQ(results[i].error, "cancelled");
    }
}

TEST(BatchRunner, ThreadedCancellationPartitionsCleanly)
{
    std::atomic<bool> cancel{false};
    std::vector<RunConfig> configs;
    RunConfig first = tinyConfig("kmeans", LlcKind::Baseline);
    first.snapshotPeriod = 1000;
    first.onSnapshot = [&cancel](const Snapshot &) {
        cancel.store(true, std::memory_order_release);
    };
    configs.push_back(std::move(first));
    for (int i = 0; i < 19; ++i)
        configs.push_back(tinyConfig("kmeans", LlcKind::Baseline));

    BatchOptions opt;
    opt.jobs = 2;
    opt.cancel = &cancel;
    const std::vector<RunResult> results = runBatch(configs, opt);
    size_t ok = 0;
    for (const RunResult &r : results) {
        if (r.failed) {
            EXPECT_EQ(r.error, "cancelled");
        } else {
            EXPECT_GT(r.runtime, 0u);
            ++ok;
        }
    }
    EXPECT_GE(ok, 1u); // the triggering run itself completes
}

TEST(BatchRunner, StressManyTinyRuns)
{
    // 200 concurrent tiny runs through the env-resolved pool width;
    // scripts/sanitize_check.sh re-runs this under ASan/UBSan with
    // DOPP_JOBS=4. Identical configs must keep producing identical
    // rows no matter which worker they land on.
    const RunConfig variants[] = {
        tinyConfig("kmeans", LlcKind::Baseline, 0.01),
        tinyConfig("kmeans", LlcKind::SplitDopp, 0.01),
        tinyConfig("blackscholes", LlcKind::UniDopp, 0.01),
        tinyConfig("inversek2j", LlcKind::Bdi, 0.01),
    };
    std::vector<RunConfig> configs;
    for (int i = 0; i < 200; ++i)
        configs.push_back(variants[i % 4]);

    std::vector<size_t> seenCompleted;
    std::vector<size_t> seenIndices;
    BatchOptions opt; // jobs=0: DOPP_JOBS or hardware concurrency
    opt.onProgress = [&](const BatchProgress &p) {
        seenCompleted.push_back(p.completed);
        seenIndices.push_back(p.index);
        EXPECT_EQ(p.total, 200u);
    };
    const std::vector<RunResult> results = runBatch(configs, opt);

    ASSERT_EQ(results.size(), 200u);
    for (int i = 0; i < 200; ++i) {
        ASSERT_FALSE(results[i].failed) << results[i].error;
        EXPECT_EQ(runResultCsvRow(results[i]),
                  runResultCsvRow(results[i % 4]));
    }
    // The progress callback is serialized: completed counts 1..200,
    // each index reported exactly once.
    ASSERT_EQ(seenCompleted.size(), 200u);
    for (size_t i = 0; i < 200; ++i)
        EXPECT_EQ(seenCompleted[i], i + 1);
    std::sort(seenIndices.begin(), seenIndices.end());
    for (size_t i = 0; i < 200; ++i)
        EXPECT_EQ(seenIndices[i], i);
}

TEST(BatchRunner, BatchJobsResolution)
{
    EXPECT_EQ(batchJobs(7), 7u);
    unsetenv("DOPP_JOBS");
    EXPECT_GE(batchJobs(0), 1u); // hardware concurrency fallback
    setenv("DOPP_JOBS", "3", 1);
    EXPECT_EQ(batchJobs(0), 3u);
    EXPECT_EQ(batchJobs(2), 2u); // explicit option beats the env
    unsetenv("DOPP_JOBS");
}

TEST(BatchRunnerDeathTest, GarbageJobsEnvIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("DOPP_JOBS", "abc", 1);
            batchJobs(0);
        },
        ::testing::ExitedWithCode(1), "DOPP_JOBS='abc'");
    EXPECT_EXIT(
        {
            setenv("DOPP_JOBS", "-4", 1);
            batchJobs(0);
        },
        ::testing::ExitedWithCode(1), "not a positive integer");
}

} // namespace dopp
