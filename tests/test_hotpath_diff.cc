/**
 * @file
 * Differential hot-path harness: the optimized structure-of-arrays
 * Doppelgänger engine (core/doppelganger_cache.hh) must be
 * bit-identical to the frozen reference implementation
 * (core/doppelganger_ref.hh) — same StatRegistry snapshot, same final
 * cache contents, same fault trace — for any access sequence. Every
 * test here drives both engines with the same seeded randomized
 * operation stream and asserts exact equality, including under fault
 * injection and an active QoR guardrail.
 *
 * Also hosts the property-based invariant fuzzer for the index-pooled
 * tag lists (TagPool*): checkInvariants() after every mutation, with
 * and without metadata fault injection, plus the targeted
 * flipped-index-bit detect-and-repair test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/doppelganger_cache.hh"
#include "core/doppelganger_ref.hh"
#include "fault/fault_injector.hh"
#include "fault/qor_guardrail.hh"
#include "harness/experiment.hh"
#include "harness/llc_factory.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

/** Shape of one differential run. */
struct DiffOpts
{
    u64 ops = 100000;          ///< operations in the access stream
    u64 seed = 0xD1FF5EED;     ///< op-stream seed
    u64 baselineBytes = 256 * 1024; ///< LLC geometry (Table 1 knob)
    u64 footprintBlocks = 4096;    ///< addresses the stream touches
    FaultConfig fault;         ///< all-zero: no injector attached
    QorConfig qor;             ///< budget zero: no guardrail attached
};

/**
 * Stateless back-invalidate hook: a pure function of the address, so
 * both engines observe the exact same private-cache behaviour. Every
 * third block reports a dirty private copy whose bytes are derived
 * from the address alone.
 */
bool
statelessBackInvalidate(Addr addr, u8 *data)
{
    const u64 blk = addr / blockBytes;
    if (blk % 3 != 0)
        return false;
    u64 h = blk * 0x9E3779B97F4A7C15ULL + 1;
    for (unsigned i = 0; i < blockBytes; ++i) {
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDULL;
        data[i] = static_cast<u8>(h >> 56);
    }
    return true;
}

/** Deterministically seed @p mem with in-range F32 blocks. */
void
seedMemory(MainMemory &mem, u64 footprint_blocks)
{
    Rng rng(0xBEEF5EED);
    BlockData block;
    for (u64 b = 0; b < footprint_blocks; ++b) {
        for (unsigned e = 0; e < elemsPerBlock(ElemType::F32); ++e) {
            setBlockElement(block.data(), ElemType::F32, e,
                            rng.below(1000) / 1000.0);
        }
        mem.writeBlock(b * blockBytes, block.data());
    }
}

/**
 * Serialize the LLC's full contents, sorted by address: every byte of
 * every resident block plus its dirty/approx annotations. Equality of
 * two dumps is final-contents bit-identity.
 */
std::string
dumpContents(const LastLevelCache &llc)
{
    std::vector<LlcBlockInfo> infos;
    std::vector<BlockData> bytes;
    llc.forEachBlock([&](const LlcBlockInfo &info) {
        infos.push_back(info);
        BlockData copy;
        std::memcpy(copy.data(), info.data, blockBytes);
        bytes.push_back(copy);
    });

    std::vector<size_t> order(infos.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return infos[a].addr < infos[b].addr;
    });

    std::string out;
    out.reserve(infos.size() * (blockBytes * 2 + 32));
    char buf[32];
    for (size_t i : order) {
        const LlcBlockInfo &info = infos[i];
        std::snprintf(buf, sizeof(buf), "%llx d%d a%d t%d:",
                      static_cast<unsigned long long>(info.addr),
                      info.dirty ? 1 : 0, info.approx ? 1 : 0,
                      static_cast<int>(info.type));
        out += buf;
        for (u8 byte : bytes[i]) {
            std::snprintf(buf, sizeof(buf), "%02x", byte);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

/** One engine's observable outcome for a run. */
struct DiffResult
{
    StatSnapshot stats;
    std::string contents;
    std::vector<FaultEvent> faultTrace;
    bool invariantsOk = true;
    std::string invariantsWhy;
};

/**
 * Build organization @p org with the engine @p reference selects and
 * drive it with the DiffOpts-seeded randomized stream: a fetch/
 * writeback/contains mix with occasional full flushes, over a
 * footprint whose lower half is an annotated F32 region (upper half
 * takes the precise paths).
 */
DiffResult
runOne(const std::string &org, bool reference, const DiffOpts &opt)
{
    MainMemory mem;
    seedMemory(mem, opt.footprintBlocks);

    ApproxRegistry registry;
    ApproxRegion region;
    region.base = 0;
    region.size = (opt.footprintBlocks / 2) * blockBytes;
    region.type = ElemType::F32;
    region.minValue = 0.0;
    region.maxValue = 1.0;
    region.name = "diff";
    registry.add(region);

    RunConfig cfg;
    cfg.workloadName = "hotpath-diff";
    cfg.baselineBytes = opt.baselineBytes;
    cfg.doppReference = reference;

    StatRegistry statReg;
    registerBuiltinLlcs();
    LlcBuilt built = buildLlc(org, mem, registry, cfg, statReg);
    LastLevelCache *llc = built.llc.get();
    llc->setBackInvalidate(statelessBackInvalidate);

    FaultInjector injector(opt.fault);
    if (opt.fault.enabled()) {
        injector.registerStats(statReg.group("fault"));
        llc->setFaultInjector(&injector);
    }
    QorGuardrail guard(opt.qor);
    if (opt.qor.enabled()) {
        guard.registerStats(statReg.group("qor"));
        llc->setGuardrail(&guard);
    }

    Rng rng(opt.seed);
    BlockData buf = {};
    for (u64 n = 0; n < opt.ops; ++n) {
        const Addr addr =
            rng.below(opt.footprintBlocks) * blockBytes;
        const u64 roll = rng.below(1000);
        if (roll < 550) {
            llc->fetch(addr, buf.data());
        } else if (roll < 900) {
            setBlockElement(buf.data(), ElemType::F32,
                            static_cast<unsigned>(n % 16),
                            rng.below(1000) / 1000.0);
            llc->writeback(addr, buf.data());
        } else if (roll < 998) {
            (void)llc->contains(addr);
        } else {
            llc->flush();
        }
    }

    DiffResult r;
    r.stats = statReg.snapshot();
    r.contents = dumpContents(*llc);
    if (opt.fault.enabled())
        r.faultTrace = injector.events();
    if (built.dopp)
        r.invariantsOk = built.dopp->checkInvariants(&r.invariantsWhy);
    return r;
}

/** Assert reference and optimized outcomes are bit-identical. */
void
expectIdentical(const std::string &org, const DiffOpts &opt)
{
    SCOPED_TRACE(org);
    const DiffResult ref = runOne(org, true, opt);
    const DiffResult fast = runOne(org, false, opt);

    EXPECT_TRUE(ref.invariantsOk) << ref.invariantsWhy;
    EXPECT_TRUE(fast.invariantsOk) << fast.invariantsWhy;
    EXPECT_TRUE(ref.stats == fast.stats)
        << "reference snapshot:\n" << ref.stats.json()
        << "\noptimized snapshot:\n" << fast.stats.json();
    EXPECT_EQ(ref.contents, fast.contents);

    ASSERT_EQ(ref.faultTrace.size(), fast.faultTrace.size());
    for (size_t i = 0; i < ref.faultTrace.size(); ++i) {
        const FaultEvent &a = ref.faultTrace[i];
        const FaultEvent &b = fast.faultTrace[i];
        EXPECT_EQ(a.op, b.op) << "fault event " << i;
        EXPECT_EQ(a.domain, b.domain) << "fault event " << i;
        EXPECT_EQ(a.entry, b.entry) << "fault event " << i;
        EXPECT_EQ(a.field, b.field) << "fault event " << i;
        EXPECT_EQ(a.bit, b.bit) << "fault event " << i;
    }
}

/** All five registered organizations, in registration order. */
std::vector<std::string>
allOrgs()
{
    registerBuiltinLlcs();
    return registeredLlcNames();
}

/** Small engine geometry for the pool fuzzer (64 tags, 16 data). */
DoppConfig
fuzzConfig(bool unified)
{
    DoppConfig cfg;
    cfg.tagEntries = 64;
    cfg.tagWays = 16;
    cfg.dataEntries = 16;
    cfg.dataWays = 4;
    cfg.mapBits = 8; // tiny map space: heavy entry sharing
    cfg.unified = unified;
    cfg.defaultType = ElemType::F32;
    cfg.defaultMin = 0.0;
    cfg.defaultMax = 1.0;
    return cfg;
}

/** Fault rates that hammer the tag/MTag metadata. */
FaultConfig
metaFaults(u64 seed, double rate)
{
    FaultConfig fc;
    fc.seed = seed;
    fc.tagMetaRate = rate;
    fc.mtagMetaRate = rate / 2;
    fc.dataRate = rate / 4;
    return fc;
}

/**
 * Drive @p engine with @p ops random operations, asserting the full
 * structural invariants after every single mutation (this is the
 * property-based fuzzer for the index-pooled tag lists: any stale
 * link, dangling index or desynced valid count fails immediately,
 * naming the violation).
 */
void
fuzzPools(DoppEngine &engine, u64 ops, u64 seed)
{
    Rng rng(seed);
    BlockData buf = {};
    std::string why;
    for (u64 n = 0; n < ops; ++n) {
        const Addr addr = rng.below(256) * blockBytes;
        const u64 roll = rng.below(100);
        if (roll < 50) {
            engine.fetch(addr, buf.data());
        } else if (roll < 90) {
            setBlockElement(buf.data(), ElemType::F32,
                            static_cast<unsigned>(n % 16),
                            rng.below(1000) / 1000.0);
            engine.writeback(addr, buf.data());
        } else if (roll < 99) {
            (void)engine.contains(addr);
        } else {
            engine.flush();
        }
        ASSERT_TRUE(engine.checkInvariants(&why))
            << "after op " << n << ": " << why;
    }
}

} // namespace

// ---------------------------------------------------------------------
// Differential suite: reference vs optimized engine, all organizations.
// ---------------------------------------------------------------------

TEST(HotpathDiff, AllOrganizationsBitIdentical)
{
    // >= 100k randomized ops per organization; snapshot, final
    // contents and invariants must match exactly.
    DiffOpts opt;
    opt.ops = 100000;
    for (const std::string &org : allOrgs())
        expectIdentical(org, opt);
}

TEST(HotpathDiff, SecondSeedStaysIdentical)
{
    // A different stream seed (different mix, different flush points)
    // catches order-of-update bugs the first seed happens to miss.
    DiffOpts opt;
    opt.ops = 40000;
    opt.seed = 0xA5A5F00D;
    for (const std::string &org : allOrgs())
        expectIdentical(org, opt);
}

TEST(HotpathDiff, FaultInjectionBitIdentical)
{
    // Metadata + data fault injection: the draw/pick/record sequences,
    // the detection counters and every repair decision must line up
    // event-for-event between the engines. Small geometry keeps the
    // O(tags) self-check per injection cheap.
    DiffOpts opt;
    opt.ops = 20000;
    opt.baselineBytes = 64 * 1024;
    opt.footprintBlocks = 1024;
    opt.fault = metaFaults(0xFA017D1F, 0.002);
    for (const std::string &org : allOrgs())
        expectIdentical(org, opt);

    // The run must actually have exercised the repair path.
    const DiffResult check =
        runOne("split-doppelganger", false, opt);
    EXPECT_FALSE(check.faultTrace.empty());
}

TEST(HotpathDiff, GuardrailBitIdentical)
{
    // Active QoR guardrail on top of fault injection: substitution
    // errors, degraded intervals and re-enable edges must agree.
    DiffOpts opt;
    opt.ops = 20000;
    opt.baselineBytes = 64 * 1024;
    opt.footprintBlocks = 1024;
    opt.fault = metaFaults(0x9A4D, 0.001);
    opt.qor.budget = 0.02;
    opt.qor.window = 128;
    opt.qor.minDwell = 32;
    for (const std::string &org : allOrgs())
        expectIdentical(org, opt);
}

TEST(HotpathDiff, ReferenceSwitchSelectsEngine)
{
    MainMemory mem;
    DoppConfig cfg = fuzzConfig(false);

    cfg.referenceImpl = false;
    auto fast = makeDoppEngine(mem, cfg, nullptr);
    EXPECT_NE(dynamic_cast<DoppelgangerCache *>(fast.get()), nullptr);
    EXPECT_EQ(dynamic_cast<RefDoppelgangerCache *>(fast.get()),
              nullptr);

    cfg.referenceImpl = true;
    auto ref = makeDoppEngine(mem, cfg, nullptr);
    EXPECT_NE(dynamic_cast<RefDoppelgangerCache *>(ref.get()),
              nullptr);
    EXPECT_EQ(dynamic_cast<DoppelgangerCache *>(ref.get()), nullptr);
}

// ---------------------------------------------------------------------
// Property-based fuzzer for the index-pooled tag lists.
// ---------------------------------------------------------------------

TEST(TagPoolFuzz, InvariantsHoldAfterEveryMutation)
{
    MainMemory mem;
    auto engine = makeDoppEngine(mem, fuzzConfig(false), nullptr);
    fuzzPools(*engine, 5000, 0xF0021);
}

TEST(TagPoolFuzz, UnifiedInvariantsHoldAfterEveryMutation)
{
    MainMemory mem;
    ApproxRegistry registry;
    ApproxRegion region;
    region.base = 0;
    region.size = 128 * blockBytes; // half the fuzz address pool
    registry.add(region);

    DoppConfig cfg = fuzzConfig(true);
    auto engine = makeDoppEngine(mem, cfg, &registry);
    fuzzPools(*engine, 5000, 0xF0022);
}

TEST(TagPoolFuzz, InvariantsHoldUnderMetadataFaults)
{
    // With the injector attached every operation may corrupt the
    // index pools; the internal self-check must restore the
    // invariants before the operation returns, every time.
    MainMemory mem;
    auto engine = makeDoppEngine(mem, fuzzConfig(false), nullptr);
    FaultInjector fi(metaFaults(0xFA57, 0.05));
    engine->setFaultInjector(&fi);
    fuzzPools(*engine, 3000, 0xF0023);
    EXPECT_GT(fi.stats().totalInjected(), 50u);
    EXPECT_EQ(fi.stats().detected, fi.stats().repairs);
}

TEST(TagPoolFuzz, FlippedIndexBitIsDetectedAndRepaired)
{
    // Targeted check for the index-based prev/next fields: with only
    // the tag-metadata domain enabled at rate 1.0, every operation
    // flips one bit of one tag's map/prev/next/state fields. A
    // corrupted index must be caught by the self-check and repaired
    // (never dereferenced out of range), and every detection must be
    // followed by a completed repair.
    MainMemory mem;
    auto engine = makeDoppEngine(mem, fuzzConfig(false), nullptr);
    FaultConfig fc;
    fc.seed = 0x1DBEEF;
    fc.tagMetaRate = 1.0;
    FaultInjector fi(fc);
    engine->setFaultInjector(&fi);

    Rng rng(0xF0024);
    BlockData buf = {};
    std::string why;
    for (u64 n = 0; n < 400; ++n) {
        const Addr addr = rng.below(64) * blockBytes;
        if (n % 4 == 3)
            engine->writeback(addr, buf.data());
        else
            engine->fetch(addr, buf.data());
        ASSERT_TRUE(engine->checkInvariants(&why))
            << "after op " << n << ": " << why;
    }

    EXPECT_GT(fi.stats().injected[2], 0u); // TagMeta domain
    EXPECT_GT(fi.stats().detected, 0u);
    EXPECT_EQ(fi.stats().detected, fi.stats().repairs);
    EXPECT_EQ(engine->stats().faultsDetected, fi.stats().detected);
    EXPECT_EQ(engine->stats().faultsRepaired, fi.stats().repairs);
}

TEST(TagPoolFuzz, ReferenceAndOptimizedAgreeUnderFuzz)
{
    // The fuzzer itself is differential: the same seeded stream on
    // both engines must leave identical stats and contents.
    auto run = [](bool reference) {
        MainMemory mem;
        DoppConfig cfg = fuzzConfig(false);
        cfg.referenceImpl = reference;
        auto engine = makeDoppEngine(mem, cfg, nullptr);
        fuzzPools(*engine, 4000, 0xF0025);
        LlcStats s = engine->stats();
        return std::make_pair(s.fetchHits + 3 * s.fetchMisses +
                                  5 * s.writebacksIn + 7 * s.mapGens +
                                  11 * s.evictions +
                                  13 * s.dataEvictions,
                              dumpContents(*engine));
    };
    const auto ref = run(true);
    const auto fast = run(false);
    EXPECT_EQ(ref.first, fast.first);
    EXPECT_EQ(ref.second, fast.second);
}

} // namespace dopp
