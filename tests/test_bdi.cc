/**
 * @file
 * Tests for the B∆I codec: encoding selection, published sizes,
 * lossless round-trips (including randomized property sweeps).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "compress/bdi.hh"
#include "sim/memory.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

BlockData
zeros()
{
    return BlockData{};
}

/** Block of k-byte words = base + small per-word delta. */
BlockData
baseDelta(u64 base, unsigned k, const std::vector<i64> &deltas)
{
    BlockData b = {};
    for (unsigned i = 0; i < blockBytes / k; ++i) {
        const u64 w = base + static_cast<u64>(
            deltas[i % deltas.size()]);
        for (unsigned j = 0; j < k; ++j)
            b[i * k + j] = static_cast<u8>(w >> (8 * j));
    }
    return b;
}

void
expectRoundTrip(const BlockData &block)
{
    const BdiCompressed c = bdiCompress(block.data());
    BlockData out = {};
    ASSERT_TRUE(bdiDecompress(c, out.data()))
        << bdiEncodingName(c.encoding);
    EXPECT_EQ(block, out) << bdiEncodingName(c.encoding);
}

} // namespace

TEST(Bdi, ZerosDetected)
{
    const BlockData b = zeros();
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::Zeros);
    EXPECT_EQ(c.size, 1u);
    expectRoundTrip(b);
}

TEST(Bdi, RepeatedValueDetected)
{
    BlockData b;
    for (unsigned i = 0; i < blockBytes; ++i)
        b[i] = static_cast<u8>(0xA0 + (i % 8));
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::Rep8);
    EXPECT_EQ(c.size, 8u);
    expectRoundTrip(b);
}

TEST(Bdi, B8D1Selected)
{
    const BlockData b =
        baseDelta(0x123456789ABCDEFULL, 8, {0, 3, -5, 100, 7});
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::B8D1);
    EXPECT_EQ(c.size, 17u);
    expectRoundTrip(b);
}

TEST(Bdi, B8D2Selected)
{
    const BlockData b =
        baseDelta(0x123456789ABCDEFULL, 8, {0, 3000, -5000, 10000});
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::B8D2);
    EXPECT_EQ(c.size, 25u);
    expectRoundTrip(b);
}

TEST(Bdi, B8D4Selected)
{
    const BlockData b = baseDelta(0x123456789ABCDEFULL, 8,
                                  {0, 3000000, -5000000});
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::B8D4);
    EXPECT_EQ(c.size, 41u);
    expectRoundTrip(b);
}

TEST(Bdi, B4D1Selected)
{
    const BlockData b = baseDelta(0x12345678ULL, 4, {0, 3, -7, 50});
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::B4D1);
    EXPECT_EQ(c.size, 22u);
    expectRoundTrip(b);
}

TEST(Bdi, B4D2Selected)
{
    const BlockData b = baseDelta(0x12345678ULL, 4, {0, 3000, -7000});
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::B4D2);
    EXPECT_EQ(c.size, 38u);
    expectRoundTrip(b);
}

TEST(Bdi, B2D1Selected)
{
    const BlockData b = baseDelta(0x4321ULL, 2, {0, 60, -60});
    const BdiCompressed c = bdiCompress(b.data());
    // B2D1 and B4D2 both have size 38; B4D2 is checked first, so
    // either may win — but the chosen encoding must round-trip and
    // beat 64 B.
    EXPECT_LT(c.size, blockBytes);
    expectRoundTrip(b);
}

TEST(Bdi, IncompressibleStaysRaw)
{
    Rng rng(1);
    BlockData b;
    for (auto &byte : b)
        byte = static_cast<u8>(rng.below(256));
    const BdiCompressed c = bdiCompress(b.data());
    EXPECT_EQ(c.encoding, BdiEncoding::Uncompressed);
    EXPECT_EQ(c.size, blockBytes);
    expectRoundTrip(b);
}

TEST(Bdi, ImmediateFormMixesWithBase)
{
    // Words near zero use the immediate (base-0) form alongside a
    // large base — the "I" in B∆I.
    const BlockData b = baseDelta(0, 8, {0, 1, 2});
    BlockData mixed = b;
    // Overwrite half the words with big-base values.
    for (unsigned i = 0; i < 4; ++i) {
        const u64 w = 0x99887766554433ULL + i;
        for (unsigned j = 0; j < 8; ++j)
            mixed[i * 8 + j] = static_cast<u8>(w >> (8 * j));
    }
    const BdiCompressed c = bdiCompress(mixed.data());
    EXPECT_EQ(c.encoding, BdiEncoding::B8D1);
    expectRoundTrip(mixed);
}

TEST(Bdi, SizeOnlyMatchesFullCompress)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        BlockData b = {};
        const unsigned k = 1u << (2 + rng.below(2)); // 4 or 8
        const u64 base = rng.next();
        for (unsigned i = 0; i < blockBytes / k; ++i) {
            const u64 w = base + rng.below(200);
            for (unsigned j = 0; j < k; ++j)
                b[i * k + j] = static_cast<u8>(w >> (8 * j));
        }
        EXPECT_EQ(bdiCompressedSize(b.data()),
                  bdiCompress(b.data()).size);
    }
}

TEST(Bdi, EncodingSizesPublished)
{
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::Zeros), 1u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::Rep8), 8u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::B8D1), 17u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::B8D2), 25u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::B8D4), 41u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::B4D1), 22u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::B4D2), 38u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::B2D1), 38u);
    EXPECT_EQ(bdiEncodingSize(BdiEncoding::Uncompressed), 64u);
}

TEST(Bdi, EncodingNames)
{
    EXPECT_STREQ(bdiEncodingName(BdiEncoding::Zeros), "zeros");
    EXPECT_STREQ(bdiEncodingName(BdiEncoding::B8D1), "b8d1");
    EXPECT_STREQ(bdiEncodingName(BdiEncoding::Uncompressed),
                 "uncompressed");
}

/** Property: every block round-trips losslessly, whatever the input. */
class BdiRoundTripSweep : public ::testing::TestWithParam<u64>
{
};

TEST_P(BdiRoundTripSweep, RandomBlocksLossless)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 500; ++trial) {
        BlockData b;
        // Mix of patterns: raw random, word-patterned, sparse.
        const int mode = static_cast<int>(rng.below(4));
        if (mode == 0) {
            for (auto &byte : b)
                byte = static_cast<u8>(rng.below(256));
        } else if (mode == 1) {
            b = baseDelta(rng.next(), 8,
                          {0, static_cast<i64>(rng.below(1000)),
                           -static_cast<i64>(rng.below(1000))});
        } else if (mode == 2) {
            b = baseDelta(rng.next() & 0xFFFFFFFF, 4,
                          {0, static_cast<i64>(rng.below(100))});
        } else {
            b = {};
            b[rng.below(blockBytes)] = static_cast<u8>(rng.below(256));
        }
        const BdiCompressed c = bdiCompress(b.data());
        BlockData out = {};
        ASSERT_TRUE(bdiDecompress(c, out.data()));
        ASSERT_EQ(b, out)
            << "lossy " << bdiEncodingName(c.encoding) << " seed "
            << GetParam() << " trial " << trial;
        ASSERT_LE(c.size, static_cast<unsigned>(blockBytes));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdiRoundTripSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(Bdi, DecompressRejectsTruncatedPayload)
{
    BdiCompressed c;
    c.encoding = BdiEncoding::B8D1;
    c.size = 17;
    c.payload = {1, 2, 3}; // too short
    BlockData out;
    EXPECT_FALSE(bdiDecompress(c, out.data()));
}

TEST(Bdi, FloatDataRarelyCompresses)
{
    // The paper notes B∆I is weak on floating-point values: distinct
    // floats rarely share high-order bytes in a delta-friendly way.
    Rng rng(7);
    unsigned compressed = 0;
    for (int trial = 0; trial < 100; ++trial) {
        BlockData b;
        for (unsigned i = 0; i < 16; ++i) {
            const float f = static_cast<float>(rng.uniform(0.0, 100.0));
            std::memcpy(b.data() + i * 4, &f, 4);
        }
        if (bdiCompressedSize(b.data()) < blockBytes)
            ++compressed;
    }
    EXPECT_LT(compressed, 30u);
}

} // namespace dopp
