/**
 * @file
 * Behavioural tests of the nine kernels *as algorithms*: each runs on
 * a precise system and must satisfy domain-level sanity properties
 * (option prices above intrinsic value, IK angles that reconstruct the
 * target, k-means cost decreasing, particles staying in the box, ...).
 * These pin down that the kernels compute what their PARSEC/AxBench
 * namesakes compute, independent of any approximation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/llc.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

/** Run @p name precisely at @p scale and return its output. */
std::vector<double>
runPrecise(const std::string &name, double scale, u64 seed = 12345)
{
    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc(mem, 2 * 1024 * 1024, 16, 6, &reg);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    SimRuntime rt(sys, mem, reg);
    WorkloadConfig cfg;
    cfg.scale = scale;
    cfg.seed = seed;
    auto w = makeWorkload(name, cfg);
    w->run(rt);
    return w->output();
}

} // namespace

TEST(BlackscholesBehavior, PricesAreFiniteAndNonNegative)
{
    const auto out = runPrecise("blackscholes", 0.1);
    ASSERT_GT(out.size(), 1u);
    for (size_t i = 0; i + 1 < out.size(); ++i) { // last is portfolio
        EXPECT_TRUE(std::isfinite(out[i]));
        EXPECT_GE(out[i], -1e-9);
    }
}

TEST(BlackscholesBehavior, PricesBelowSpotPlusStrike)
{
    // A European option is never worth more than spot + strike
    // (spot bounds calls, discounted strike bounds puts).
    const auto out = runPrecise("blackscholes", 0.1);
    for (size_t i = 0; i + 1 < out.size(); ++i)
        EXPECT_LT(out[i], 250.0 * 2);
}

TEST(BlackscholesBehavior, PortfolioIsWeightedSumMagnitude)
{
    const auto out = runPrecise("blackscholes", 0.1);
    const double portfolio = out.back();
    double sum = 0.0;
    for (size_t i = 0; i + 1 < out.size(); ++i)
        sum += out[i];
    // Weights are in [0.5, 1.5]: the portfolio must sit inside the
    // corresponding envelope of the plain sum.
    EXPECT_GE(portfolio, 0.5 * sum - 1e-6);
    EXPECT_LE(portfolio, 1.5 * sum + 1e-6);
}

TEST(InversekBehavior, ForwardKinematicsRecoversTarget)
{
    // θ1, θ2 of each sample must place the 2-link arm's end effector
    // close to a reachable point (|fk| ≤ L1 + L2) and the angles must
    // be finite; spot-check the FK identity on the first samples.
    const auto out = runPrecise("inversek2j", 0.05);
    ASSERT_GE(out.size(), 8u);
    for (size_t i = 0; i + 1 < out.size(); i += 2) {
        const double t1 = out[i];
        const double t2 = out[i + 1];
        ASSERT_TRUE(std::isfinite(t1));
        ASSERT_TRUE(std::isfinite(t2));
        const double x =
            0.5 * std::cos(t1) + 0.5 * std::cos(t1 + t2);
        const double y =
            0.5 * std::sin(t1) + 0.5 * std::sin(t1 + t2);
        EXPECT_LE(std::hypot(x, y), 1.0 + 1e-6);
    }
}

TEST(JmeintBehavior, BalancedClassification)
{
    // The generator aims for a mixed workload: both outcomes must be
    // well represented (no degenerate always-true/false classifier).
    const auto out = runPrecise("jmeint", 0.1);
    const double hits =
        std::count_if(out.begin(), out.end(),
                      [](double v) { return v >= 0.5; });
    const double rate = hits / static_cast<double>(out.size());
    EXPECT_GT(rate, 0.10);
    EXPECT_LT(rate, 0.90);
}

TEST(JmeintBehavior, RetestAgreesWithFirstPassPrecisely)
{
    // On a precise system the frame-2 re-test must reproduce the
    // frame-1 classification for the re-tested pairs (indices 4q).
    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc(mem, 2 * 1024 * 1024, 16, 6, &reg);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    SimRuntime rt(sys, mem, reg);
    WorkloadConfig cfg;
    cfg.scale = 0.05;
    auto w = makeWorkload("jmeint", cfg);
    w->run(rt);
    const auto &out = w->output();
    const size_t n = out.size() * 4 / 5; // first-frame entries
    const size_t retests = out.size() - n;
    for (size_t q = 0; q < retests; ++q)
        EXPECT_EQ(out[n + q], out[q * 4]) << q;
}

TEST(JpegBehavior, DecodedPixelsInRange)
{
    const auto out = runPrecise("jpeg", 0.25);
    for (double v : out) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 255.0);
    }
}

TEST(JpegBehavior, CodecPreservesImageApproximately)
{
    // JPEG is lossy, but at the standard luminance table the decoded
    // sample must correlate strongly with a fresh encode of the same
    // seed — proxied by two runs agreeing exactly (determinism) and
    // the output having non-trivial dynamic range (not washed out).
    const auto out = runPrecise("jpeg", 0.25);
    const double mn = *std::min_element(out.begin(), out.end());
    const double mx = *std::max_element(out.begin(), out.end());
    EXPECT_GT(mx - mn, 60.0);
}

TEST(KmeansBehavior, CentroidsWithinColorCube)
{
    const auto out = runPrecise("kmeans", 0.1);
    ASSERT_GT(out.size(), 1u);
    for (size_t i = 0; i + 1 < out.size(); ++i) {
        EXPECT_GE(out[i], 0.0);
        EXPECT_LE(out[i], 255.0);
    }
}

TEST(KmeansBehavior, ClusteringCostIsReasonable)
{
    // Final normalized within-cluster cost (last element) must be far
    // below the cost of a single global cluster (~variance of the
    // pixel distribution).
    const auto out = runPrecise("kmeans", 0.1);
    const double cost = out.back();
    EXPECT_GT(cost, 0.0);
    EXPECT_LT(cost, 0.1); // well-separated clusters: tiny normalized cost
}

TEST(FluidanimateBehavior, ParticlesStayInBox)
{
    const auto out = runPrecise("fluidanimate", 0.1);
    for (double v : out) {
        EXPECT_GE(v, -1e-6);
        EXPECT_LE(v, 1.0 + 1e-6);
    }
}

TEST(FluidanimateBehavior, GravityPullsFluidDown)
{
    // After the simulated steps, mean y-velocity must be negative
    // (gravity acts): proxied by mean y-position not increasing vs
    // the initial distribution mean (0.275).
    const auto out = runPrecise("fluidanimate", 0.1);
    double ySum = 0.0;
    u64 n = 0;
    for (size_t i = 1; i < out.size(); i += 3) {
        ySum += out[i];
        ++n;
    }
    EXPECT_LT(ySum / static_cast<double>(n), 0.35);
}

TEST(CannealBehavior, CostPositiveAndBounded)
{
    const auto out = runPrecise("canneal", 0.2);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GT(out[0], 0.0);
    // Upper bound: every sampled element contributes at most
    // fanout × 2 × gridMax.
    EXPECT_LT(out[0], 30000.0 * 3 * 2 * 65536.0);
}

TEST(FerretBehavior, QueriesFindTheirOrigin)
{
    // Each query is a perturbed database vector and the candidate set
    // always includes the origin: precisely executed, the origin must
    // be the top match for the overwhelming majority of queries.
    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc(mem, 2 * 1024 * 1024, 16, 6, &reg);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    SimRuntime rt(sys, mem, reg);
    WorkloadConfig cfg;
    cfg.scale = 0.1;
    auto w = makeWorkload("ferret", cfg);
    w->run(rt);
    const auto &out = w->output();
    ASSERT_EQ(out.size() % 4, 0u);
    // The top-4 lists are sorted by distance; out[q*4] is the best.
    // We cannot recover queryOrigin here, but the best distance match
    // being stable and ids being in range is checkable.
    const size_t queries = out.size() / 4;
    for (size_t q = 0; q < queries; ++q)
        for (unsigned k = 0; k < 4; ++k)
            EXPECT_GE(out[q * 4 + k], 0.0);
}

TEST(SwaptionsBehavior, PricesNonNegativeAndSmall)
{
    const auto out = runPrecise("swaptions", 0.2);
    for (double v : out) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0); // payer swaption on rates ≪ notional 1
    }
}

TEST(SwaptionsBehavior, SomeSwaptionsInTheMoney)
{
    const auto out = runPrecise("swaptions", 0.2);
    const double positive =
        std::count_if(out.begin(), out.end(),
                      [](double v) { return v > 1e-6; });
    EXPECT_GT(positive / static_cast<double>(out.size()), 0.3);
}

TEST(WorkloadBehavior, ScaleChangesFootprintNotSemantics)
{
    // Different scales give different-sized outputs but the same
    // qualitative behaviour (finite, in-range).
    for (double scale : {0.05, 0.15}) {
        const auto out = runPrecise("jpeg", scale);
        EXPECT_FALSE(out.empty());
        for (double v : out)
            ASSERT_TRUE(std::isfinite(v));
    }
}

TEST(WorkloadBehavior, PerUseRangesOnlyChangesAnnotation)
{
    // On a precise system, the swaptions per-use variant computes the
    // same prices as the default (layout differs, values identical).
    MainMemory m1, m2;
    ApproxRegistry r1, r2;
    ConventionalLlc l1(m1, 2 * 1024 * 1024, 16, 6, &r1);
    ConventionalLlc l2(m2, 2 * 1024 * 1024, 16, 6, &r2);
    MemorySystem s1(HierarchyConfig{}, l1, m1);
    MemorySystem s2(HierarchyConfig{}, l2, m2);
    SimRuntime rt1(s1, m1, r1);
    SimRuntime rt2(s2, m2, r2);
    WorkloadConfig a;
    a.scale = 0.1;
    WorkloadConfig b = a;
    b.perUseRanges = true;
    auto w1 = makeWorkload("swaptions", a);
    auto w2 = makeWorkload("swaptions", b);
    w1->run(rt1);
    w2->run(rt2);
    ASSERT_EQ(w1->output().size(), w2->output().size());
    for (size_t i = 0; i < w1->output().size(); ++i)
        EXPECT_NEAR(w1->output()[i], w2->output()[i], 1e-9) << i;
}

} // namespace dopp
