/**
 * @file
 * Unit and integration tests for the partitioned main-memory tier
 * (sim/mem_tier.hh, sim/memory.hh) and its cross-tier QoR guardrail
 * escalation (fault/qor_guardrail.hh, DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include <string>

#include "energy/energy_model.hh"
#include "fault/fault_injector.hh"
#include "fault/qor_guardrail.hh"
#include "harness/experiment.hh"
#include "sim/mem_tier.hh"
#include "sim/memory.hh"
#include "util/stats.hh"

namespace dopp
{

namespace
{

/** Two approximate partitions after a precise one, for routing tests. */
MemTierConfig
twoApproxTier()
{
    MemTierConfig tier;
    tier.partitions.push_back(preciseDramProfile());
    tier.partitions.push_back(approxDramProfile(0.0, 0.0, 0));
    tier.partitions.push_back(nvmProfile(0.0));
    return tier;
}

} // namespace

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

TEST(MemTier, LegacyConstructionIsFlat)
{
    MainMemory legacy;
    EXPECT_FALSE(legacy.isTiered());
    EXPECT_EQ(legacy.partitionCount(), 1u);
    EXPECT_EQ(legacy.latency(), 160u);

    MemTierConfig empty;
    MainMemory fromEmpty(empty);
    EXPECT_FALSE(fromEmpty.isTiered());
    EXPECT_EQ(fromEmpty.partitionCount(), 1u);
}

TEST(MemTier, DefaultRouteIsPrecisePartition)
{
    MainMemory mem(twoApproxTier());
    EXPECT_TRUE(mem.isTiered());
    EXPECT_EQ(mem.partitionCount(), 3u);
    // No routes registered: everything hits the precise partition.
    EXPECT_EQ(mem.partitionOf(0x10000000), 0u);
    EXPECT_EQ(mem.partitionOf(0xdeadbeef), 0u);
}

TEST(MemTier, ApproxRegionsRoundRobinAcrossApproxPartitions)
{
    MainMemory mem(twoApproxTier());
    mem.routeApprox(0x10000000, 0x2000); // region A: pages 0x10000-01
    mem.routeApprox(0x20000000, 0x1000); // region B: page  0x20000

    // Region A -> first approx partition (index 1), whole region.
    EXPECT_EQ(mem.partitionOf(0x10000000), 1u);
    EXPECT_EQ(mem.partitionOf(0x10001fff), 1u);
    // Region B -> second approx partition (index 2).
    EXPECT_EQ(mem.partitionOf(0x20000000), 2u);
    // Unannotated data stays precise.
    EXPECT_EQ(mem.partitionOf(0x30000000), 0u);
}

TEST(MemTier, PartitionLatenciesReachTheCaller)
{
    MainMemory mem(twoApproxTier());
    mem.routeApprox(0x20000000, 64); // -> approx partition 1
    BlockData b = {};
    EXPECT_EQ(mem.readBlock(0x10000000, b.data()), 160u); // precise
    EXPECT_EQ(mem.readBlock(0x20000000, b.data()), 160u); // approx dram
    mem.routeApprox(0x30000000, 64); // -> nvm partition 2
    EXPECT_EQ(mem.readBlock(0x30000000, b.data()), 192u); // nvm read
}

// ---------------------------------------------------------------------
// NVM write buffer
// ---------------------------------------------------------------------

TEST(MemTier, WriteBufferAbsorbsThenStalls)
{
    MemTierConfig tier;
    tier.partitions.push_back(preciseDramProfile());
    MemPartitionProfile nvm = nvmProfile(0.0, 2); // depth 2
    tier.partitions.push_back(nvm);
    MainMemory mem(tier);
    mem.routeApprox(0x40000000, 0x1000);

    BlockData b = {};
    // Two writes fit the buffer at the cheap latency.
    EXPECT_EQ(mem.writeBlock(0x40000000, b.data()),
              nvm.bufferedWriteLatency);
    EXPECT_EQ(mem.writeBlock(0x40000040, b.data()),
              nvm.bufferedWriteLatency);
    // Third write finds it full: full write latency.
    EXPECT_EQ(mem.writeBlock(0x40000080, b.data()), nvm.writeLatency);
    // A read behind the full buffer stalls one drain, then drains one.
    EXPECT_EQ(mem.readBlock(0x40000000, b.data()),
              nvm.readLatency + nvm.writeLatency);
    // Buffer now has one free slot again.
    EXPECT_EQ(mem.writeBlock(0x400000c0, b.data()),
              nvm.bufferedWriteLatency);

    const MainMemory::PartitionCounters c = mem.partitionCounters(1);
    EXPECT_EQ(c.wbufHits, 3u);
    EXPECT_EQ(c.wbufStalls, 2u); // one write, one read
}

// ---------------------------------------------------------------------
// Per-partition fault models
// ---------------------------------------------------------------------

TEST(MemTier, BitErrorRateFlipsOnlyApproxReads)
{
    MemTierConfig tier;
    tier.partitions.push_back(preciseDramProfile());
    tier.partitions.push_back(approxDramProfile(1.0, 0.0, 0));
    MainMemory mem(tier);
    FaultConfig fc;
    FaultInjector fi(fc);
    mem.setFaultInjector(&fi);
    mem.routeApprox(0x20000000, 0x1000);

    BlockData b = {};
    mem.readBlock(0x10000000, b.data()); // precise: never flips
    EXPECT_EQ(fi.stats().totalInjected(), 0u);

    mem.readBlock(0x20000000, b.data()); // rate 1.0: always flips
    EXPECT_EQ(fi.stats().totalInjected(), 1u);
    ASSERT_EQ(fi.events().size(), 1u);
    EXPECT_EQ(fi.events()[0].domain, FaultDomain::MemoryData);
    EXPECT_EQ(fi.events()[0].field, 1u); // partition index
    EXPECT_EQ(mem.partitionCounters(1).bitFlips, 1u);

    // The corrupted block differs from zero in exactly one bit.
    unsigned ones = 0;
    for (u8 byte : b)
        ones += static_cast<unsigned>(__builtin_popcount(byte));
    EXPECT_EQ(ones, 1u);
}

TEST(MemTier, RefreshEpochsAccumulateRetentionDraws)
{
    MemTierConfig tier;
    tier.partitions.push_back(preciseDramProfile());
    // Every elapsed epoch flips (rate 1.0); epoch every 4 accesses.
    tier.partitions.push_back(approxDramProfile(0.0, 1.0, 4));
    MainMemory mem(tier);
    FaultConfig fc;
    FaultInjector fi(fc);
    mem.setFaultInjector(&fi);
    mem.routeApprox(0x20000000, 0x10000);

    BlockData b = {};
    // Write block X at epoch 0, then age the partition past two epochs
    // with reads of other blocks (each read scrubs its own block).
    mem.writeBlock(0x20000000, b.data());
    for (int i = 0; i < 8; ++i)
        mem.readBlock(0x20001000 + 64u * static_cast<u32>(i),
                      b.data());
    const u64 before = mem.partitionCounters(1).refreshFaults;
    // 9 accesses so far -> epoch 2; block X last refreshed at epoch 0:
    // exactly 2 retention draws, both firing at rate 1.0.
    mem.readBlock(0x20000000, b.data());
    const u64 after = mem.partitionCounters(1).refreshFaults;
    EXPECT_EQ(after - before, 2u);

    // The read scrubbed the block: an immediate re-read draws for at
    // most the epochs elapsed since (0 or 1, not 2).
    mem.readBlock(0x20000000, b.data());
    EXPECT_LE(mem.partitionCounters(1).refreshFaults - after, 1u);
}

TEST(MemTier, FaultSequenceIsDeterministic)
{
    auto runOnce = [] {
        MainMemory mem(defaultMemTier(0.2, 0.1));
        FaultConfig fc;
        fc.seed = 0x1234;
        FaultInjector fi(fc);
        mem.setFaultInjector(&fi);
        mem.routeApprox(0x20000000, 0x4000);
        BlockData b = {};
        for (int i = 0; i < 500; ++i) {
            mem.readBlock(0x20000000 + 64u * static_cast<u32>(i % 64),
                          b.data());
            if (i % 3 == 0)
                mem.writeBlock(0x20000000 +
                                   64u * static_cast<u32>(i % 64),
                               b.data());
        }
        return fi.events();
    };
    const auto a = runOnce();
    const auto b = runOnce();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 0u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].entry, b[i].entry);
        EXPECT_EQ(a[i].field, b[i].field);
        EXPECT_EQ(a[i].bit, b[i].bit);
    }
}

// ---------------------------------------------------------------------
// Migration (tier-2 graceful degradation)
// ---------------------------------------------------------------------

TEST(MemTier, MigrateAndRestoreRoutes)
{
    MainMemory mem(twoApproxTier());
    mem.routeApprox(0x10000000, 0x2000); // 2 pages -> partition 1
    mem.routeApprox(0x20000000, 0x1000); // 1 page  -> partition 2

    EXPECT_FALSE(mem.migrated());
    EXPECT_EQ(mem.migrateApproxToPrecise(), 3u);
    EXPECT_TRUE(mem.migrated());
    EXPECT_EQ(mem.partitionOf(0x10000000), 0u);
    EXPECT_EQ(mem.partitionOf(0x20000000), 0u);
    // Idempotent.
    EXPECT_EQ(mem.migrateApproxToPrecise(), 0u);
    EXPECT_EQ(mem.migrations(), 1u);
    EXPECT_EQ(mem.pagesMigrated(), 3u);

    // A region annotated while migrated stays pinned precise.
    mem.routeApprox(0x30000000, 0x1000);
    EXPECT_EQ(mem.partitionOf(0x30000000), 0u);

    mem.restoreApproxRoutes();
    EXPECT_FALSE(mem.migrated());
    EXPECT_EQ(mem.partitionOf(0x10000000), 1u);
    EXPECT_EQ(mem.partitionOf(0x20000000), 2u);
    // The late region's recorded route reappears too.
    EXPECT_EQ(mem.partitionOf(0x30000000), 1u);
}

TEST(MemTier, GuardrailEscalatesToMigratedAndRecovers)
{
    QorConfig qc;
    qc.budget = 0.1;
    qc.window = 4;
    qc.minDwell = 2;
    qc.migrateFactor = 1.0;
    qc.migrateDwell = 4;
    QorGuardrail guard(qc);

    MainMemory mem(twoApproxTier());
    mem.routeApprox(0x10000000, 0x1000);
    guard.onMigrate = [&mem](bool migrate) {
        if (migrate)
            mem.migrateApproxToPrecise();
        else
            mem.restoreApproxRoutes();
    };

    // Sustained full-range error: degrade, then escalate.
    for (int i = 0; i < 64 && !guard.migrated(); ++i)
        guard.observeError(1.0);
    EXPECT_TRUE(guard.degraded());
    EXPECT_TRUE(guard.migrated());
    EXPECT_EQ(guard.migrationCount(), 1u);
    EXPECT_TRUE(mem.migrated());
    EXPECT_EQ(mem.partitionOf(0x10000000), 0u);

    // Clean observations decay the estimate: step all the way down.
    for (int i = 0; i < 256 && guard.degraded(); ++i)
        guard.observeClean();
    EXPECT_FALSE(guard.degraded());
    EXPECT_FALSE(guard.migrated());
    EXPECT_FALSE(mem.migrated());
    EXPECT_EQ(mem.partitionOf(0x10000000), 1u);
}

TEST(MemTier, MigrateFactorZeroKeepsTwoStateMachine)
{
    QorConfig qc;
    qc.budget = 0.1;
    qc.window = 4;
    qc.minDwell = 2;
    // migrateFactor left at the 0.0 default.
    QorGuardrail guard(qc);
    for (int i = 0; i < 512; ++i)
        guard.observeError(1.0);
    EXPECT_TRUE(guard.degraded());
    EXPECT_FALSE(guard.migrated());
    EXPECT_EQ(guard.migrationCount(), 0u);
}

// ---------------------------------------------------------------------
// Full-hierarchy integration (the dedicated cross-tier test)
// ---------------------------------------------------------------------

TEST(MemTierRun, CrossTierGuardrailMigratesRegionToPrecise)
{
    RunConfig cfg;
    cfg.workloadName = "kmeans";
    cfg.kind = LlcKind::Baseline;
    cfg.workload.scale = 0.05;
    // A brutally unreliable approximate partition...
    cfg.memTier = defaultMemTier(0.9, 0.5);
    // ...and a tight budget with cross-tier escalation armed.
    cfg.qor.budget = 1e-4;
    cfg.qor.window = 16;
    cfg.qor.minDwell = 4;
    cfg.qor.migrateFactor = 1.0;
    cfg.qor.migrateDwell = 8;

    const RunResult r = runWorkload(cfg);
    // The guardrail degraded, escalated, and the memory recorded the
    // route migration in its own stats.
    EXPECT_GT(r.guardrailDegradations, 0u);
    EXPECT_GT(r.stats.counter("qor.migrations"), 0u);
    EXPECT_GT(r.stats.counter("mem.migrations"), 0u);
    EXPECT_GT(r.stats.counter("mem.pagesMigrated"), 0u);
    // Post-migration reads land in the precise partition.
    EXPECT_GT(r.stats.counter("mem.partition0.reads"), 0u);
    // The approximate partitions injected the faults that tripped it.
    EXPECT_GT(r.stats.counter("mem.partition1.bitFlips") +
                  r.stats.counter("mem.partition1.refreshFaults") +
                  r.stats.counter("mem.partition2.bitFlips"),
              0u);
}

TEST(MemTierRun, TieredRunIsDeterministic)
{
    RunConfig cfg;
    cfg.workloadName = "blackscholes";
    cfg.kind = LlcKind::SplitDopp;
    cfg.workload.scale = 0.05;
    cfg.memTier = defaultMemTier(1e-3, 1e-3);
    cfg.qor.budget = 0.05;
    cfg.qor.migrateFactor = 2.0;

    const RunResult a = runWorkload(cfg);
    const RunResult b = runWorkload(cfg);
    EXPECT_EQ(a.runtime, b.runtime);
    ASSERT_EQ(a.output.size(), b.output.size());
    for (size_t i = 0; i < a.output.size(); ++i)
        EXPECT_EQ(a.output[i], b.output[i]);
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (size_t i = 0; i < a.stats.size(); ++i) {
        EXPECT_EQ(a.stats.values()[i].name, b.stats.values()[i].name);
        EXPECT_EQ(a.stats.values()[i].u, b.stats.values()[i].u);
        EXPECT_EQ(a.stats.values()[i].d, b.stats.values()[i].d);
    }
}

TEST(MemTierRun, LegacyConfigSnapshotLayoutUnchanged)
{
    RunConfig cfg;
    cfg.workloadName = "blackscholes";
    cfg.workload.scale = 0.05;
    const RunResult r = runWorkload(cfg);
    // Flat-memory runs must not grow partition or migration counters
    // (pre-tier journals replay bit-identically).
    EXPECT_TRUE(r.stats.has("mem.reads"));
    EXPECT_FALSE(r.stats.has("mem.migrations"));
    EXPECT_FALSE(r.stats.has("mem.partition0.reads"));
}

TEST(MemTierRun, PerPartitionStatsAndEnergyFlow)
{
    RunConfig cfg;
    cfg.workloadName = "kmeans";
    cfg.workload.scale = 0.05;
    cfg.memTier = defaultMemTier(0.0, 0.0); // faultless tier
    const RunResult r = runWorkload(cfg);

    const u64 partReads = r.stats.counter("mem.partition0.reads") +
        r.stats.counter("mem.partition1.reads") +
        r.stats.counter("mem.partition2.reads");
    EXPECT_EQ(partReads, r.memReads);
    // Approximate regions actually routed off the precise partition.
    EXPECT_GT(r.stats.counter("mem.partition1.reads") +
                  r.stats.counter("mem.partition2.reads"),
              0u);

    const MemTierEnergy e = memTierEnergy(cfg.memTier, r.stats);
    ASSERT_EQ(e.partitions.size(), 3u);
    EXPECT_GT(e.partitions[0].dynamicPj, 0.0);
    EXPECT_GT(e.totalPj(), 0.0);
    // Standby integrates runtime for every partition.
    for (const MemPartitionEnergy &p : e.partitions)
        EXPECT_GT(p.standbyPj, 0.0);
}

} // namespace dopp
