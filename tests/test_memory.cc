/**
 * @file
 * Unit tests for the main-memory model: functional storage, zero-fill
 * semantics, traffic accounting, cross-block poke/peek.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/memory.hh"

namespace dopp
{

TEST(MainMemory, ZeroFilledOnFirstTouch)
{
    MainMemory mem;
    BlockData buf;
    buf.fill(0xAB);
    mem.readBlock(0x1000, buf.data());
    for (u8 b : buf)
        EXPECT_EQ(b, 0);
}

TEST(MainMemory, WriteThenReadBack)
{
    MainMemory mem;
    BlockData w;
    for (unsigned i = 0; i < blockBytes; ++i)
        w[i] = static_cast<u8>(i);
    mem.writeBlock(0x2000, w.data());
    BlockData r = {};
    mem.readBlock(0x2000, r.data());
    EXPECT_EQ(w, r);
}

TEST(MainMemory, UnalignedAddressesAlias)
{
    MainMemory mem;
    BlockData w = {};
    w[0] = 7;
    mem.writeBlock(0x2000, w.data());
    BlockData r = {};
    mem.readBlock(0x2007, r.data()); // same block
    EXPECT_EQ(r[0], 7);
}

TEST(MainMemory, TrafficCounters)
{
    MainMemory mem;
    BlockData b = {};
    mem.readBlock(0, b.data());
    mem.readBlock(64, b.data());
    mem.writeBlock(0, b.data());
    EXPECT_EQ(mem.reads(), 2u);
    EXPECT_EQ(mem.writes(), 1u);
    EXPECT_EQ(mem.traffic(), 3u);
}

TEST(MainMemory, PokePeekNoTraffic)
{
    MainMemory mem;
    const u32 v = 0xDEADBEEF;
    mem.poke(0x123, &v, sizeof(v));
    u32 r = 0;
    mem.peek(0x123, &r, sizeof(r));
    EXPECT_EQ(r, v);
    EXPECT_EQ(mem.traffic(), 0u);
}

TEST(MainMemory, PokeCrossesBlockBoundary)
{
    MainMemory mem;
    u8 data[128];
    for (unsigned i = 0; i < 128; ++i)
        data[i] = static_cast<u8>(i ^ 0x5A);
    mem.poke(0x1020, data, sizeof(data)); // spans three blocks
    u8 back[128] = {};
    mem.peek(0x1020, back, sizeof(back));
    EXPECT_EQ(std::memcmp(data, back, sizeof(data)), 0);
}

TEST(MainMemory, PeekUntouchedIsZero)
{
    MainMemory mem;
    u64 v = 123;
    mem.peek(0x9999999, &v, sizeof(v));
    EXPECT_EQ(v, 0u);
}

TEST(MainMemory, PokeVisibleToReadBlock)
{
    MainMemory mem;
    const float f = 3.25f;
    mem.poke(0x4004, &f, sizeof(f));
    BlockData b = {};
    mem.readBlock(0x4000, b.data());
    float r;
    std::memcpy(&r, b.data() + 4, sizeof(r));
    EXPECT_EQ(r, f);
}

TEST(MainMemory, ResetStatsKeepsContents)
{
    MainMemory mem;
    BlockData w = {};
    w[0] = 9;
    mem.writeBlock(0, w.data());
    mem.resetStats();
    EXPECT_EQ(mem.traffic(), 0u);
    BlockData r = {};
    mem.readBlock(0, r.data());
    EXPECT_EQ(r[0], 9);
    EXPECT_EQ(mem.reads(), 1u);
}

TEST(MainMemory, ConfigurableLatency)
{
    MainMemory fast(10);
    MainMemory table1;
    EXPECT_EQ(fast.latency(), 10u);
    EXPECT_EQ(table1.latency(), 160u); // Table 1 default
}

} // namespace dopp
