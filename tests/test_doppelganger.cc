/**
 * @file
 * Unit, behavioural and property tests for the Doppelgänger cache —
 * the operational semantics of paper Sections 3.2-3.5 and the
 * uniDoppelgänger variant of Sec 3.8.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>

#include "core/doppelganger_cache.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

/** Small test geometry: 64 tags (4 sets x 16), 16 data entries. */
DoppConfig
smallConfig()
{
    DoppConfig cfg;
    cfg.tagEntries = 64;
    cfg.tagWays = 16;
    cfg.dataEntries = 16;
    cfg.dataWays = 4;
    cfg.mapBits = 14;
    cfg.defaultType = ElemType::F32;
    cfg.defaultMin = 0.0;
    cfg.defaultMax = 1.0;
    return cfg;
}

/** Write a block of identical f32 values into memory at addr. */
void
seedBlock(MainMemory &mem, Addr addr, float value)
{
    BlockData b;
    for (unsigned i = 0; i < elemsPerBlock(ElemType::F32); ++i)
        setBlockElement(b.data(), ElemType::F32, i,
                        static_cast<double>(value));
    mem.poke(addr, b.data(), blockBytes);
}

BlockData
makeBlock(float value)
{
    BlockData b;
    for (unsigned i = 0; i < elemsPerBlock(ElemType::F32); ++i)
        setBlockElement(b.data(), ElemType::F32, i,
                        static_cast<double>(value));
    return b;
}

class DoppTest : public ::testing::Test
{
  protected:
    DoppTest() : cache(mem, smallConfig(), nullptr) {}

    void
    expectInvariants()
    {
        std::string why;
        EXPECT_TRUE(cache.checkInvariants(&why)) << why;
    }

    MainMemory mem;
    DoppelgangerCache cache;
    BlockData buf;
};

} // namespace

TEST_F(DoppTest, MissFetchesFromMemory)
{
    seedBlock(mem, 0x1000, 0.5f);
    const auto r = cache.fetch(0x1000, buf.data());
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, cache.config().hitLatency + mem.latency());
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(buf.data(), ElemType::F32, 0)),
        0.5f);
    EXPECT_EQ(mem.reads(), 1u);
}

TEST_F(DoppTest, SecondFetchHits)
{
    seedBlock(mem, 0x1000, 0.5f);
    cache.fetch(0x1000, buf.data());
    const auto r = cache.fetch(0x1000, buf.data());
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, cache.config().hitLatency);
    EXPECT_EQ(mem.reads(), 1u);
}

TEST_F(DoppTest, SimilarBlocksShareOneDataEntry)
{
    seedBlock(mem, 0x1000, 0.5f);
    seedBlock(mem, 0x2000, 0.5f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    EXPECT_EQ(cache.tagCount(), 2u);
    EXPECT_EQ(cache.dataCount(), 1u);
    EXPECT_TRUE(cache.sameDataEntry(0x1000, 0x2000));
    EXPECT_EQ(cache.tagsSharingWith(0x1000), 2u);
    expectInvariants();
}

TEST_F(DoppTest, DissimilarBlocksGetOwnEntries)
{
    seedBlock(mem, 0x1000, 0.1f);
    seedBlock(mem, 0x2000, 0.9f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    EXPECT_EQ(cache.tagCount(), 2u);
    EXPECT_EQ(cache.dataCount(), 2u);
    EXPECT_FALSE(cache.sameDataEntry(0x1000, 0x2000));
    expectInvariants();
}

TEST_F(DoppTest, MissForwardsExactDataButStoresDoppelganger)
{
    // Sec 3.3: the requester gets the fetched values; the stored block
    // is the first-arrived similar one.
    seedBlock(mem, 0x1000, 0.5000f);
    seedBlock(mem, 0x2000, 0.500005f); // within one 14-bit bin
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    // The miss response carries the exact value...
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(buf.data(), ElemType::F32, 0)),
        0.500005f);
    ASSERT_TRUE(cache.sameDataEntry(0x1000, 0x2000));
    // ...but a subsequent hit serves the doppelgänger (block 1's data).
    cache.fetch(0x2000, buf.data());
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(buf.data(), ElemType::F32, 0)),
        0.5000f);
}

TEST_F(DoppTest, MapValueStoredInTag)
{
    seedBlock(mem, 0x1000, 0.5f);
    cache.fetch(0x1000, buf.data());
    const auto map = cache.mapOf(0x1000);
    ASSERT_TRUE(map.has_value());
    MapParams p;
    p.mapBits = 14;
    p.type = ElemType::F32;
    p.minValue = 0.0;
    p.maxValue = 1.0;
    EXPECT_EQ(*map, computeMap(makeBlock(0.5f).data(), p));
}

TEST_F(DoppTest, WritebackSameMapSetsDirtyOnly)
{
    seedBlock(mem, 0x1000, 0.5f);
    seedBlock(mem, 0x2000, 0.5f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());

    // A write that barely changes the values: map unchanged, data
    // entry untouched (Sec 3.4 "silent store").
    const BlockData nearly = makeBlock(0.50001f);
    cache.writeback(0x1000, nearly.data());
    EXPECT_EQ(cache.dataCount(), 1u);
    ASSERT_NE(cache.peekBlock(0x1000), nullptr);
    EXPECT_FLOAT_EQ(static_cast<float>(blockElement(
                        cache.peekBlock(0x1000), ElemType::F32, 0)),
                    0.5f);
    expectInvariants();
}

TEST_F(DoppTest, WritebackNewMapMovesToExistingEntry)
{
    seedBlock(mem, 0x1000, 0.2f);
    seedBlock(mem, 0x2000, 0.8f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    ASSERT_EQ(cache.dataCount(), 2u);

    // Rewrite block 1 with values similar to block 2: its tag moves to
    // block 2's list and the written values are dropped (Sec 3.4).
    const BlockData newData = makeBlock(0.80001f);
    cache.writeback(0x1000, newData.data());
    EXPECT_TRUE(cache.sameDataEntry(0x1000, 0x2000));
    EXPECT_EQ(cache.dataCount(), 1u); // old sole-tag entry freed
    EXPECT_FLOAT_EQ(static_cast<float>(blockElement(
                        cache.peekBlock(0x1000), ElemType::F32, 0)),
                    0.8f);
    expectInvariants();
}

TEST_F(DoppTest, WritebackNewMapAllocatesWhenNoSimilar)
{
    seedBlock(mem, 0x1000, 0.2f);
    cache.fetch(0x1000, buf.data());
    const BlockData newData = makeBlock(0.6f);
    cache.writeback(0x1000, newData.data());
    EXPECT_EQ(cache.dataCount(), 1u);
    EXPECT_FLOAT_EQ(static_cast<float>(blockElement(
                        cache.peekBlock(0x1000), ElemType::F32, 0)),
                    0.6f);
    expectInvariants();
}

TEST_F(DoppTest, WritebackKeepsSharedEntryWhenOthersRemain)
{
    seedBlock(mem, 0x1000, 0.2f);
    seedBlock(mem, 0x2000, 0.2f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    ASSERT_EQ(cache.dataCount(), 1u);

    const BlockData moved = makeBlock(0.9f);
    cache.writeback(0x1000, moved.data());
    // 0x2000 still uses the old entry; 0x1000 got a new one.
    EXPECT_EQ(cache.dataCount(), 2u);
    EXPECT_FALSE(cache.sameDataEntry(0x1000, 0x2000));
    EXPECT_FLOAT_EQ(static_cast<float>(blockElement(
                        cache.peekBlock(0x2000), ElemType::F32, 0)),
                    0.2f);
    expectInvariants();
}

TEST_F(DoppTest, DirtyTagWritesSharedDataToMemoryOnEvict)
{
    seedBlock(mem, 0x1000, 0.3f);
    cache.fetch(0x1000, buf.data());
    const BlockData dirty = makeBlock(0.7f);
    cache.writeback(0x1000, dirty.data());
    cache.flush();
    // Memory now holds the data-entry value for 0x1000.
    BlockData back;
    mem.peek(0x1000, back.data(), blockBytes);
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(back.data(), ElemType::F32, 0)),
        0.7f);
    expectInvariants();
}

TEST_F(DoppTest, CleanEvictionDoesNotWriteMemory)
{
    seedBlock(mem, 0x1000, 0.3f);
    cache.fetch(0x1000, buf.data());
    mem.resetStats();
    cache.flush();
    EXPECT_EQ(mem.writes(), 0u);
}

TEST_F(DoppTest, DirtySharedEntryWritesBackEveryDirtyTagAddress)
{
    // Two tags share one entry; only one is dirty. Evicting the data
    // entry writes back exactly the dirty tag's address (Sec 3.5).
    seedBlock(mem, 0x1000, 0.4f);
    seedBlock(mem, 0x2000, 0.4f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    cache.writeback(0x2000, makeBlock(0.40002f).data()); // dirty, same map
    mem.resetStats();
    cache.flush();
    EXPECT_EQ(mem.writes(), 1u);
    BlockData back;
    mem.peek(0x2000, back.data(), blockBytes);
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(back.data(), ElemType::F32, 0)),
        0.4f); // the shared entry's value, not the dropped write
}

TEST(DoppTagEviction, SoleTagEvictionFreesDataEntry)
{
    // Fill one tag set (16 ways) plus one more mapping to it: the LRU
    // tag is evicted; each block here is dissimilar so each owns its
    // data entry. The data array is sized large enough that no data-
    // side pressure interferes. Tag set count is 4 -> addresses
    // 0x40 * (4*k) share set 0.
    MainMemory mem;
    DoppConfig cfg = smallConfig();
    cfg.dataEntries = 64;
    cfg.dataWays = 4;
    DoppelgangerCache cache(mem, cfg, nullptr);
    BlockData buf;

    const unsigned sets = 4;
    for (unsigned k = 0; k <= 16; ++k) {
        const Addr a = static_cast<Addr>(k) * sets * blockBytes;
        seedBlock(mem, a, 0.05f + 0.055f * static_cast<float>(k));
        cache.fetch(a, buf.data());
    }
    EXPECT_EQ(cache.tagCount(), 16u);
    EXPECT_FALSE(cache.contains(0x0)); // LRU victim gone
    EXPECT_EQ(cache.dataCount(), cache.tagCount());
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
}

TEST(DoppTagEviction, SharedEntrySurvivesOneTagEviction)
{
    // 0x0 and an address in a different tag set share a data entry;
    // evicting 0x0's tag must keep the entry alive for the other.
    MainMemory mem;
    DoppConfig cfg = smallConfig();
    cfg.dataEntries = 64;
    cfg.dataWays = 4;
    DoppelgangerCache cache(mem, cfg, nullptr);
    BlockData buf;

    const unsigned sets = 4;
    seedBlock(mem, 0x0, 0.5f);
    seedBlock(mem, blockBytes, 0.5f); // tag set 1, same map
    cache.fetch(0x0, buf.data());
    cache.fetch(blockBytes, buf.data());
    ASSERT_EQ(cache.dataCount(), 1u);

    // Thrash tag set 0 with dissimilar blocks to evict 0x0.
    for (unsigned k = 1; k <= 16; ++k) {
        const Addr a = static_cast<Addr>(k) * sets * blockBytes;
        seedBlock(mem, a, 0.02f + 0.009f * static_cast<float>(k));
        cache.fetch(a, buf.data());
    }
    EXPECT_FALSE(cache.contains(0x0));
    EXPECT_TRUE(cache.contains(blockBytes));
    EXPECT_EQ(cache.tagsSharingWith(blockBytes), 1u);
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
}

TEST_F(DoppTest, DataEvictionInvalidatesAllLinkedTags)
{
    // Fill a data set (4 ways) with dissimilar values whose maps land
    // in the same data set is hard to force with hashing; instead fill
    // the whole data array (16 entries) and keep inserting: some data
    // eviction must invalidate its linked tags.
    for (unsigned k = 0; k < 40; ++k) {
        const Addr a = static_cast<Addr>(k + 1) * blockBytes;
        seedBlock(mem, a, 0.012f * static_cast<float>(k));
        cache.fetch(a, buf.data());
        expectInvariants();
    }
    EXPECT_LE(cache.dataCount(), 16u);
    EXPECT_GT(cache.stats().dataEvictions, 0u);
    // Every surviving tag must resolve (checked by invariants).
}

TEST_F(DoppTest, StatsCountFetchesAndMapGens)
{
    seedBlock(mem, 0x1000, 0.5f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x1000, buf.data());
    cache.writeback(0x1000, makeBlock(0.5f).data());
    const LlcStats &s = cache.stats();
    EXPECT_EQ(s.fetches, 2u);
    EXPECT_EQ(s.fetchHits, 1u);
    EXPECT_EQ(s.fetchMisses, 1u);
    EXPECT_EQ(s.writebacksIn, 1u);
    EXPECT_EQ(s.mapGens, 2u); // one on insert, one on writeback
}

TEST_F(DoppTest, BackInvalidationSupersedesSharedData)
{
    seedBlock(mem, 0x1000, 0.3f);
    cache.fetch(0x1000, buf.data());
    cache.writeback(0x1000, makeBlock(0.30001f).data()); // dirty

    // Hierarchy hook reports a dirty private copy with newer data.
    const BlockData privateCopy = makeBlock(0.99f);
    cache.setBackInvalidate([&](Addr addr, u8 *data) {
        EXPECT_EQ(addr, 0x1000u);
        std::memcpy(data, privateCopy.data(), blockBytes);
        return true;
    });
    cache.flush();
    BlockData back;
    mem.peek(0x1000, back.data(), blockBytes);
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(back.data(), ElemType::F32, 0)),
        0.99f);
}

TEST_F(DoppTest, ContainsAndPeek)
{
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_EQ(cache.peekBlock(0x1000), nullptr);
    seedBlock(mem, 0x1000, 0.5f);
    cache.fetch(0x1000, buf.data());
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_NE(cache.peekBlock(0x1000), nullptr);
}

TEST_F(DoppTest, ForEachBlockVisitsEveryTag)
{
    seedBlock(mem, 0x1000, 0.5f);
    seedBlock(mem, 0x2000, 0.5f);
    seedBlock(mem, 0x3000, 0.9f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    cache.fetch(0x3000, buf.data());
    unsigned visited = 0;
    cache.forEachBlock([&](const LlcBlockInfo &info) {
        ++visited;
        EXPECT_TRUE(info.approx);
        EXPECT_NE(info.data, nullptr);
    });
    EXPECT_EQ(visited, 3u);
}

TEST_F(DoppTest, FlushEmptiesEverything)
{
    seedBlock(mem, 0x1000, 0.5f);
    cache.fetch(0x1000, buf.data());
    cache.flush();
    EXPECT_EQ(cache.tagCount(), 0u);
    EXPECT_EQ(cache.dataCount(), 0u);
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST_F(DoppTest, RegistryDrivesMapParameters)
{
    // Same bytes, different declared ranges via a registry: coarse
    // range merges, tight range separates.
    ApproxRegistry reg;
    ApproxRegion wide;
    wide.base = 0x10000;
    wide.size = 0x2000; // covers both 0x10000 and 0x11000
    wide.type = ElemType::F32;
    wide.minValue = -1000.0;
    wide.maxValue = 1000.0;
    wide.name = "wide";
    reg.add(wide);

    DoppelgangerCache c2(mem, smallConfig(), &reg);
    seedBlock(mem, 0x10000, 0.2f);
    seedBlock(mem, 0x11000, 0.21f); // within one wide-range bin
    c2.fetch(0x10000, buf.data());
    c2.fetch(0x11000, buf.data());
    EXPECT_TRUE(c2.sameDataEntry(0x10000, 0x11000));

    // Under the tight default range, these would be distinct.
    seedBlock(mem, 0x1000, 0.2f);
    seedBlock(mem, 0x2000, 0.21f);
    cache.fetch(0x1000, buf.data());
    cache.fetch(0x2000, buf.data());
    EXPECT_FALSE(cache.sameDataEntry(0x1000, 0x2000));
}

// ---------------------------------------------------------------------
// uniDoppelgänger (Sec 3.8)
// ---------------------------------------------------------------------

namespace
{

class UniDoppTest : public ::testing::Test
{
  protected:
    UniDoppTest()
    {
        ApproxRegion r;
        r.base = approxBase;
        r.size = 1 << 20;
        r.type = ElemType::F32;
        r.minValue = 0.0;
        r.maxValue = 1.0;
        r.name = "approx";
        reg.add(r);

        DoppConfig cfg = smallConfig();
        cfg.unified = true;
        cache = std::make_unique<DoppelgangerCache>(mem, cfg, &reg);
    }

    static constexpr Addr approxBase = 0x100000;
    static constexpr Addr preciseBase = 0x500000;

    MainMemory mem;
    ApproxRegistry reg;
    std::unique_ptr<DoppelgangerCache> cache;
    BlockData buf;
};

} // namespace

TEST_F(UniDoppTest, PreciseBlocksNeverShare)
{
    seedBlock(mem, preciseBase, 0.5f);
    seedBlock(mem, preciseBase + 0x1000, 0.5f);
    cache->fetch(preciseBase, buf.data());
    cache->fetch(preciseBase + 0x1000, buf.data());
    EXPECT_EQ(cache->tagCount(), 2u);
    EXPECT_EQ(cache->dataCount(), 2u);
    EXPECT_FALSE(cache->sameDataEntry(preciseBase,
                                      preciseBase + 0x1000));
    std::string why;
    EXPECT_TRUE(cache->checkInvariants(&why)) << why;
}

TEST_F(UniDoppTest, ApproxBlocksStillShare)
{
    seedBlock(mem, approxBase, 0.5f);
    seedBlock(mem, approxBase + 0x1000, 0.5f);
    cache->fetch(approxBase, buf.data());
    cache->fetch(approxBase + 0x1000, buf.data());
    EXPECT_EQ(cache->dataCount(), 1u);
    EXPECT_TRUE(
        cache->sameDataEntry(approxBase, approxBase + 0x1000));
}

TEST_F(UniDoppTest, PreciseWritebackUpdatesDataExactly)
{
    seedBlock(mem, preciseBase, 0.5f);
    cache->fetch(preciseBase, buf.data());
    cache->writeback(preciseBase, makeBlock(0.123f).data());
    cache->fetch(preciseBase, buf.data());
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(buf.data(), ElemType::F32, 0)),
        0.123f);
    EXPECT_EQ(cache->stats().mapGens, 0u); // Sec 3.8: no hashing
}

TEST_F(UniDoppTest, PreciseHasNoMapValue)
{
    seedBlock(mem, preciseBase, 0.5f);
    cache->fetch(preciseBase, buf.data());
    EXPECT_FALSE(cache->mapOf(preciseBase).has_value());
    seedBlock(mem, approxBase, 0.5f);
    cache->fetch(approxBase, buf.data());
    EXPECT_TRUE(cache->mapOf(approxBase).has_value());
}

TEST_F(UniDoppTest, MixedChurnKeepsInvariants)
{
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const bool approx = rng.below(2) == 0;
        const Addr base = approx ? approxBase : preciseBase;
        const Addr a = base + rng.below(64) * blockBytes;
        if (rng.below(4) == 0) {
            cache->writeback(
                a, makeBlock(static_cast<float>(rng.uniform())).data());
        } else {
            cache->fetch(a, buf.data());
        }
    }
    std::string why;
    EXPECT_TRUE(cache->checkInvariants(&why)) << why;
}

TEST_F(UniDoppTest, PreciseDirtyEvictionWritesExactData)
{
    seedBlock(mem, preciseBase, 0.5f);
    cache->fetch(preciseBase, buf.data());
    cache->writeback(preciseBase, makeBlock(0.321f).data());
    cache->flush();
    BlockData back;
    mem.peek(preciseBase, back.data(), blockBytes);
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(back.data(), ElemType::F32, 0)),
        0.321f);
}

// ---------------------------------------------------------------------
// Randomized property test: functional consistency + invariants under
// heavy churn, for both indexing modes and several geometries.
// ---------------------------------------------------------------------

namespace
{

struct ChurnParams
{
    u32 tagEntries;
    u32 dataEntries;
    bool hashedIndex;
    unsigned mapBits;
};

class DoppChurnTest : public ::testing::TestWithParam<ChurnParams>
{
};

} // namespace

TEST_P(DoppChurnTest, InvariantsHoldUnderRandomChurn)
{
    const ChurnParams param = GetParam();
    MainMemory mem;
    DoppConfig cfg;
    cfg.tagEntries = param.tagEntries;
    cfg.tagWays = 16;
    cfg.dataEntries = param.dataEntries;
    cfg.dataWays = 4;
    cfg.mapBits = param.mapBits;
    cfg.hashDataSetIndex = param.hashedIndex;
    DoppelgangerCache cache(mem, cfg, nullptr);

    Rng rng(param.tagEntries * 31 + param.mapBits);
    BlockData buf;
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(256) * blockBytes;
        const int op = static_cast<int>(rng.below(10));
        if (op < 6) {
            cache.fetch(a, buf.data());
        } else if (op < 9) {
            BlockData w;
            for (unsigned e = 0; e < 16; ++e)
                setBlockElement(w.data(), ElemType::F32, e,
                                rng.uniform());
            cache.writeback(a, w.data());
        } else {
            cache.flush();
        }
        if (i % 100 == 0) {
            std::string why;
            ASSERT_TRUE(cache.checkInvariants(&why))
                << why << " at op " << i;
        }
    }
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
    // Data entries never outnumber tags.
    EXPECT_LE(cache.dataCount(), cache.tagCount());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DoppChurnTest,
    ::testing::Values(ChurnParams{64, 16, true, 14},
                      ChurnParams{64, 16, false, 14},
                      ChurnParams{128, 32, true, 12},
                      ChurnParams{128, 32, false, 12},
                      ChurnParams{64, 48, true, 8},
                      ChurnParams{256, 64, true, 16}));

// ---------------------------------------------------------------------
// The defining property: two resident blocks share one data entry
// exactly when their maps are equal (Sec 3.7).
// ---------------------------------------------------------------------

TEST(DoppProperty, SharingIffMapsEqual)
{
    MapParams params;
    params.mapBits = 14;
    params.type = ElemType::F32;
    params.minValue = 0.0;
    params.maxValue = 1.0;

    Rng rng(2718);
    for (int trial = 0; trial < 200; ++trial) {
        MainMemory mem;
        DoppConfig cfg = smallConfig();
        cfg.dataEntries = 64; // no capacity pressure
        cfg.dataWays = 4;
        DoppelgangerCache cache(mem, cfg, nullptr);

        // Two blocks whose values are near each other often enough to
        // exercise both outcomes.
        const float base = static_cast<float>(rng.uniform());
        const float other = static_cast<float>(
            base + rng.uniform(-2e-4, 2e-4));
        BlockData a = makeBlock(base);
        BlockData b = makeBlock(std::clamp(other, 0.0f, 1.0f));
        mem.poke(0x1000, a.data(), blockBytes);
        mem.poke(0x2000, b.data(), blockBytes);

        BlockData buf;
        cache.fetch(0x1000, buf.data());
        cache.fetch(0x2000, buf.data());

        const bool mapsEqual = computeMap(a.data(), params) ==
            computeMap(b.data(), params);
        EXPECT_EQ(cache.sameDataEntry(0x1000, 0x2000), mapsEqual)
            << "trial " << trial << " base " << base << " other "
            << other;
    }
}

// ---------------------------------------------------------------------
// Tag-count-aware data replacement (Sec 3.5 future work).
// ---------------------------------------------------------------------

TEST(DoppTagCountAware, PrefersSparselySharedVictims)
{
    // Build a full data set containing one heavily shared entry and
    // several sole-tag entries; the tag-count-aware policy must evict
    // a sole-tag entry even when the shared one is the LRU.
    MainMemory mem;
    DoppConfig cfg = smallConfig();
    cfg.dataEntries = 4; // a single 4-way data set
    cfg.dataWays = 4;
    cfg.tagCountAwareData = true;
    DoppelgangerCache cache(mem, cfg, nullptr);
    BlockData buf;

    // Three tags share the first entry (inserted first => LRU).
    for (Addr a : {0x0ULL, 0x1000ULL, 0x2000ULL}) {
        seedBlock(mem, a, 0.5f);
        cache.fetch(a, buf.data());
    }
    ASSERT_EQ(cache.tagsSharingWith(0x0), 3u);
    // Three sole-tag entries fill the rest of the set.
    const float singles[3] = {0.1f, 0.3f, 0.9f};
    for (int i = 0; i < 3; ++i) {
        seedBlock(mem, 0x4000 + i * 0x1000,
                  singles[static_cast<size_t>(i)]);
        cache.fetch(0x4000 + static_cast<Addr>(i) * 0x1000,
                    buf.data());
    }
    ASSERT_EQ(cache.dataCount(), 4u);

    // A new dissimilar block forces a data eviction.
    seedBlock(mem, 0x8000, 0.7f);
    cache.fetch(0x8000, buf.data());

    // The shared entry (and its three tags) must have survived.
    EXPECT_TRUE(cache.contains(0x0));
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_TRUE(cache.contains(0x2000));
    EXPECT_EQ(cache.tagsSharingWith(0x0), 3u);
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
}

TEST(DoppTagCountAware, LruEvictsSharedEntryInstead)
{
    // Identical setup without the policy: plain LRU evicts the shared
    // entry and all three tags go with it.
    MainMemory mem;
    DoppConfig cfg = smallConfig();
    cfg.dataEntries = 4;
    cfg.dataWays = 4;
    cfg.tagCountAwareData = false;
    DoppelgangerCache cache(mem, cfg, nullptr);
    BlockData buf;

    for (Addr a : {0x0ULL, 0x1000ULL, 0x2000ULL}) {
        seedBlock(mem, a, 0.5f);
        cache.fetch(a, buf.data());
    }
    for (int i = 0; i < 3; ++i) {
        seedBlock(mem, 0x4000 + i * 0x1000,
                  0.1f + 0.3f * static_cast<float>(i));
        cache.fetch(0x4000 + static_cast<Addr>(i) * 0x1000,
                    buf.data());
    }
    seedBlock(mem, 0x8000, 0.75f);
    cache.fetch(0x8000, buf.data());

    EXPECT_FALSE(cache.contains(0x0));
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(DoppTagCountAware, CountsAboveStatsCapForHeavilySharedEntries)
{
    // Regression: linkedTagCount used to saturate at 64 even for
    // victim selection, so two entries with 100 and 70 linked tags
    // compared equal and LRU broke the "tie" — evicting the costlier
    // entry. The policy must count up to tagEntries.
    MainMemory mem;
    DoppConfig cfg;
    cfg.tagEntries = 512;
    cfg.tagWays = 16;
    cfg.dataEntries = 2; // a single 2-way data set
    cfg.dataWays = 2;
    cfg.tagCountAwareData = true;
    DoppelgangerCache cache(mem, cfg, nullptr);
    BlockData buf;

    // 100 tags share entry A (inserted first => LRU victim), then 70
    // share entry B. Both are far beyond the 64-entry stats cap.
    Addr next = 0;
    for (int i = 0; i < 100; ++i, next += blockBytes) {
        seedBlock(mem, next, 0.5f);
        cache.fetch(next, buf.data());
    }
    const Addr firstB = next;
    for (int i = 0; i < 70; ++i, next += blockBytes) {
        seedBlock(mem, next, 0.3f);
        cache.fetch(next, buf.data());
    }
    ASSERT_EQ(cache.dataCount(), 2u);
    ASSERT_EQ(cache.tagsSharingWith(0x0), 100u);
    ASSERT_EQ(cache.tagsSharingWith(firstB), 70u);

    // A third dissimilar block forces a data eviction: the 70-tag
    // entry must go, not the LRU 100-tag one.
    seedBlock(mem, next, 0.8f);
    cache.fetch(next, buf.data());

    EXPECT_TRUE(cache.contains(0x0));
    EXPECT_EQ(cache.tagsSharingWith(0x0), 100u);
    EXPECT_FALSE(cache.contains(firstB));
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
}

TEST(DoppTagCountAware, InvariantsUnderChurn)
{
    MainMemory mem;
    DoppConfig cfg = smallConfig();
    cfg.tagCountAwareData = true;
    DoppelgangerCache cache(mem, cfg, nullptr);
    Rng rng(91);
    BlockData buf;
    for (int i = 0; i < 1500; ++i) {
        const Addr a = rng.below(200) * blockBytes;
        if (rng.below(4) == 0) {
            cache.writeback(
                a, makeBlock(static_cast<float>(rng.uniform())).data());
        } else {
            cache.fetch(a, buf.data());
        }
    }
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
}


/**
 * ISSUE acceptance: 10k operations of fetch/writeback/flush churn with
 * metadata faults injected at aggressive rates. checkInvariants must
 * hold after every single operation (selfCheckAndRepair runs inside the
 * injection hook, so any operation that leaves the structure broken
 * fails immediately), and every detected corruption must be repaired.
 */
TEST(DoppFaultStress, TenThousandOpsWithMetadataFaults)
{
    MainMemory mem;
    DoppelgangerCache cache(mem, smallConfig(), nullptr);
    FaultConfig fc;
    fc.seed = 0x10c0de;
    fc.dataRate = 0.02;
    fc.tagMetaRate = 0.05;
    fc.mtagMetaRate = 0.05;
    FaultInjector fi(fc);
    cache.setFaultInjector(&fi);

    Rng rng(314159);
    BlockData buf;
    std::string why;
    for (int i = 0; i < 10000; ++i) {
        const Addr a = (rng.below(300) + 1) * blockBytes;
        switch (rng.below(16)) {
          case 0:
            cache.flush();
            break;
          case 1:
          case 2:
          case 3:
            cache.writeback(
                a, makeBlock(static_cast<float>(rng.uniform())).data());
            break;
          default:
            seedBlock(mem, a, static_cast<float>(rng.uniform()));
            cache.fetch(a, buf.data());
            break;
        }
        ASSERT_TRUE(cache.checkInvariants(&why)) << "op " << i << ": "
                                                 << why;
    }

    EXPECT_GT(fi.stats().totalInjected(), 200u);
    EXPECT_GT(fi.stats().detected, 0u);
    EXPECT_EQ(fi.stats().detected, fi.stats().repairs);
    EXPECT_EQ(cache.stats().faultsDetected, fi.stats().detected);
    EXPECT_EQ(cache.stats().faultsRepaired, fi.stats().repairs);
}

// ---------------------------------------------------------------------
// MapParams caching and kernel determinism.
// ---------------------------------------------------------------------

TEST(DoppParamCacheDeathTest, RegistryMutationAfterRunStartPanics)
{
    // The per-region MapParams cache snapshots the registry at the
    // first access (the paper's start-of-application range transfer,
    // Sec 4.1); annotating afterwards is a harness bug and must trip
    // the generation assert rather than serve stale parameters.
    MainMemory mem;
    ApproxRegistry reg;
    ApproxRegion r;
    r.base = 0x0;
    r.size = 0x10000;
    r.type = ElemType::F32;
    r.minValue = 0.0;
    r.maxValue = 1.0;
    r.name = "a";
    reg.add(r);

    DoppelgangerCache cache(mem, smallConfig(), &reg);
    BlockData buf;
    cache.fetch(0x1000, buf.data()); // builds the cache

    ApproxRegion late = r;
    late.base = 0x100000;
    late.name = "late";
    reg.add(late);
    EXPECT_DEATH(cache.fetch(0x2000, buf.data()), "mutated");
}

TEST(DoppKernelDeterminism, SnapshotEqualityKernelVsGenericMixedTypes)
{
    // Full StatRegistry snapshot equality — not just hit counts —
    // between the monomorphized kernel path and the generic
    // blockElement() path on a mixed F32/I16/F64 access stream. Any
    // arithmetic divergence would change a map somewhere, shift
    // sharing, and show up in evictions/writebacks/mapGens.
    const auto run = [](bool generic) {
        MainMemory mem;
        ApproxRegistry reg;
        const struct
        {
            Addr base;
            ElemType type;
            double lo, hi;
        } regions[] = {
            {0x000000, ElemType::F32, 0.0, 1.0},
            {0x100000, ElemType::I16, -1000.0, 1000.0},
            {0x200000, ElemType::F64, -1.0, 1.0},
        };
        for (const auto &rr : regions) {
            ApproxRegion r;
            r.base = rr.base;
            r.size = 0x10000;
            r.type = rr.type;
            r.minValue = rr.lo;
            r.maxValue = rr.hi;
            r.name = elemTypeName(rr.type);
            reg.add(r);
        }

        DoppConfig cfg = smallConfig();
        if (generic) {
            cfg.mapOverride = [](const u8 *block, const MapParams &p) {
                return computeMapComponentsGeneric(block, p).combined;
            };
        }
        StatRegistry stats;
        DoppelgangerCache cache(mem, cfg, &reg, &stats, "llc");

        Rng rng(0xD1CE);
        BlockData buf;
        for (int i = 0; i < 6000; ++i) {
            const auto &rr = regions[rng.below(3)];
            const Addr addr =
                rr.base + rng.below(256) * blockBytes;
            if (rng.below(4) == 0) {
                for (auto &byte : buf)
                    byte = static_cast<u8>(rng.below(256));
                cache.writeback(addr, buf.data());
            } else {
                cache.fetch(addr, buf.data());
            }
        }
        std::string why;
        EXPECT_TRUE(cache.checkInvariants(&why)) << why;
        return stats.snapshot();
    };

    const StatSnapshot kernel = run(false);
    const StatSnapshot generic = run(true);
    ASSERT_FALSE(kernel.empty());
    EXPECT_GT(kernel.counter("llc.mapGens"), 0u);
    EXPECT_TRUE(kernel == generic)
        << "kernel:\n" << kernel.json() << "\ngeneric:\n"
        << generic.json();
}

} // namespace dopp
