/**
 * @file
 * Tests for the SimRuntime timing model: the stall-exposure factor,
 * per-core cycle accounting, work charging, core attribution of
 * parallelFor, and the access hook used by trace capture.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/llc.hh"
#include "workloads/runtime.hh"

namespace dopp
{

namespace
{

struct Rig
{
    Rig() : llc(mem, 2 * 1024 * 1024, 16, 6, &reg),
            sys(HierarchyConfig{}, llc, mem), rt(sys, mem, reg)
    {
    }

    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc;
    MemorySystem sys;
    SimRuntime rt;
};

} // namespace

TEST(SimRuntimeTiming, L1HitChargedInFull)
{
    Rig rig;
    const Addr a = rig.rt.allocate(64, "x");
    rig.rt.load<u32>(a); // cold miss
    const Tick before = rig.rt.runtime();
    rig.rt.load<u32>(a); // L1 hit: latency 1 (≤ private level)
    EXPECT_EQ(rig.rt.runtime() - before,
              1 + rig.rt.workPerAccess);
}

TEST(SimRuntimeTiming, MissStallIsDiscountedByExposureFactor)
{
    Rig rig;
    const Addr a = rig.rt.allocate(64, "x");
    const Tick before = rig.rt.runtime();
    rig.rt.load<u32>(a); // cold miss: raw 1+3+6+160 = 170 cycles
    const Tick charged = rig.rt.runtime() - before -
        rig.rt.workPerAccess;
    // charge = 4 + 0.35 x (170 - 4) = 62 (integer truncation).
    EXPECT_EQ(charged, 4u + static_cast<Tick>(166 * 0.35));
    EXPECT_LT(charged, 170u); // definitely not the raw latency
}

TEST(SimRuntimeTiming, ExposureFactorIsTunable)
{
    Rig full;
    full.rt.memStallFactor = 1.0;
    const Addr a = full.rt.allocate(64, "x");
    const Tick before = full.rt.runtime();
    full.rt.load<u32>(a);
    EXPECT_EQ(full.rt.runtime() - before - full.rt.workPerAccess,
              170u); // full exposure = raw latency
}

TEST(SimRuntimeTiming, PerCoreCyclesIndependent)
{
    Rig rig;
    const Addr a = rig.rt.allocate(4096, "x");
    rig.rt.setCore(2);
    rig.rt.load<u32>(a);
    rig.rt.setCore(0);
    // runtime() is the max over cores — core 2 carries the cycles.
    const Tick t = rig.rt.runtime();
    EXPECT_GT(t, 0u);
    rig.rt.addWork(5); // charged to core 0, smaller than core 2's bill
    EXPECT_EQ(rig.rt.runtime(), t);
    EXPECT_EQ(rig.rt.totalCycles(), t + 5);
}

TEST(SimRuntimeTiming, ParallelForSpreadsCycles)
{
    Rig rig;
    const Addr a = rig.rt.allocate(64 * 1024, "x");
    rig.rt.parallelFor(0, 1024, 16, [&](u64 i) {
        rig.rt.load<u8>(a + i * 64);
    });
    // Perfectly balanced chunks: total ≈ 4 x max.
    EXPECT_NEAR(static_cast<double>(rig.rt.totalCycles()),
                4.0 * static_cast<double>(rig.rt.runtime()),
                0.25 * static_cast<double>(rig.rt.totalCycles()));
}

TEST(SimRuntimeTiming, WorkPerAccessCharged)
{
    Rig rig;
    rig.rt.workPerAccess = 10;
    const Addr a = rig.rt.allocate(64, "x");
    rig.rt.load<u32>(a);
    const Tick before = rig.rt.runtime();
    rig.rt.load<u32>(a);
    EXPECT_EQ(rig.rt.runtime() - before, 1u + 10u);
}

TEST(SimRuntimeHook, AccessHookSeesEveryAccess)
{
    Rig rig;
    const Addr a = rig.rt.allocate(256, "x");
    std::vector<std::tuple<Addr, bool, unsigned, u64>> seen;
    rig.rt.accessHook = [&](Addr addr, bool is_write, unsigned size,
                            u64 payload) {
        seen.emplace_back(addr, is_write, size, payload);
    };
    rig.rt.store<u16>(a + 2, 0x1234);
    rig.rt.load<float>(a + 4);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(std::get<0>(seen[0]), a + 2);
    EXPECT_TRUE(std::get<1>(seen[0]));
    EXPECT_EQ(std::get<2>(seen[0]), 2u);
    EXPECT_EQ(std::get<3>(seen[0]), 0x1234u);
    EXPECT_FALSE(std::get<1>(seen[1]));
    EXPECT_EQ(std::get<2>(seen[1]), 4u);
}

TEST(SimRuntimeHook, HookPayloadCarriesFloatBits)
{
    Rig rig;
    const Addr a = rig.rt.allocate(64, "x");
    u64 payload = 0;
    rig.rt.accessHook = [&](Addr, bool, unsigned, u64 p) {
        payload = p;
    };
    rig.rt.store<float>(a, 1.5f);
    float back;
    std::memcpy(&back, &payload, sizeof(back));
    EXPECT_EQ(back, 1.5f);
}

TEST(SimRuntimeTiming, AccessCountIndependentOfCore)
{
    Rig rig;
    const Addr a = rig.rt.allocate(4096, "x");
    for (u32 i = 0; i < 10; ++i) {
        rig.rt.setCore(i % 4);
        rig.rt.load<u8>(a + i);
    }
    EXPECT_EQ(rig.rt.accesses(), 10u);
}

TEST(SimRuntimeTiming, DefaultExposureMatchesDocumentedValue)
{
    Rig rig;
    EXPECT_DOUBLE_EQ(rig.rt.memStallFactor, 0.35);
    EXPECT_EQ(rig.rt.workPerAccess, 2u);
}

namespace
{

/** Accesses survived before RunAborted with a pre-set abort flag. */
u64
accessesUntilAbort(u64 poll_interval)
{
    Rig rig;
    std::atomic<bool> abort{true}; // raised before the run starts
    rig.rt.abortFlag = &abort;
    if (poll_interval)
        rig.rt.setAbortPollInterval(poll_interval);
    const Addr a = rig.rt.allocate(64 * 1024, "x");
    try {
        for (u64 i = 0; i < 100000; ++i)
            rig.rt.load<u8>(a + (i % 1024));
    } catch (const RunAborted &) {
        return rig.rt.accesses();
    }
    return 0; // never aborted: the test will fail on this
}

} // namespace

TEST(SimRuntimeAbort, PollIntervalDefaultsTo4096)
{
    Rig rig;
    EXPECT_EQ(rig.rt.abortPollInterval(), 4096u);
    EXPECT_EQ(accessesUntilAbort(0), 4096u);
}

TEST(SimRuntimeAbort, TighterPollShortensObservedAbortLatency)
{
    // The flag is raised from access 0, so the unwind happens at the
    // first poll: a tighter interval is observed proportionally
    // sooner (satellite: configurable watchdog granularity).
    const u64 tight = accessesUntilAbort(16);
    const u64 loose = accessesUntilAbort(4096);
    EXPECT_EQ(tight, 16u);
    EXPECT_EQ(loose, 4096u);
    EXPECT_LT(tight, loose);
}

TEST(SimRuntimeAbort, PollIntervalRoundsUpToPowerOfTwo)
{
    Rig rig;
    rig.rt.setAbortPollInterval(100);
    EXPECT_EQ(rig.rt.abortPollInterval(), 128u);
    rig.rt.setAbortPollInterval(1);
    EXPECT_EQ(rig.rt.abortPollInterval(), 1u);
    rig.rt.setAbortPollInterval(0); // restore default
    EXPECT_EQ(rig.rt.abortPollInterval(), 4096u);
}

} // namespace dopp
