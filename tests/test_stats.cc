/**
 * @file
 * StatRegistry observability layer: registry/snapshot semantics, the
 * LlcStats compatibility view staying in sync with the registered
 * counter names, the LLC factory, and the schema-drift guard tying
 * every registered counter to the CSV/JSON exports.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harness/batch_runner.hh"
#include "harness/experiment.hh"
#include "harness/llc_factory.hh"
#include "harness/results_io.hh"
#include "sim/llc.hh"
#include "util/stats.hh"

namespace dopp
{
namespace
{

RunConfig
tinyRun(LlcKind kind, const std::string &workload = "kmeans")
{
    RunConfig cfg;
    cfg.kind = kind;
    cfg.workloadName = workload;
    cfg.workload.scale = 0.05;
    return cfg;
}

constexpr LlcKind allKinds[] = {
    LlcKind::Baseline, LlcKind::SplitDopp, LlcKind::UniDopp,
    LlcKind::Dedup,    LlcKind::Bdi,
};

} // namespace

// ---------------------------------------------------------------------
// StatRegistry core.
// ---------------------------------------------------------------------

TEST(StatRegistry, CounterIncrementAndSnapshot)
{
    StatRegistry reg;
    Counter &hits = reg.group("llc").counter("hits", "tag hits");
    EXPECT_EQ(hits.value(), 0u);
    ++hits;
    hits += 41;
    EXPECT_EQ(hits.value(), 42u);

    const StatSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.has("llc.hits"));
    EXPECT_EQ(snap.counter("llc.hits"), 42u);
    EXPECT_EQ(snap.value("llc.hits"), 42.0);
}

TEST(StatRegistry, NestedGroupsComposeDottedNames)
{
    StatRegistry reg;
    StatGroup tag = reg.group("llc").group("dopp").group("tagArray");
    ++tag.counter("reads");
    EXPECT_TRUE(reg.contains("llc.dopp.tagArray.reads"));
    EXPECT_EQ(reg.snapshot().counter("llc.dopp.tagArray.reads"), 1u);
}

TEST(StatRegistry, DistributionExpandsToFourEntries)
{
    StatRegistry reg;
    Distribution &d =
        reg.group("qor").distribution("err", "observed errors");
    d.sample(0.5);
    d.sample(1.5);

    const StatSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("qor.err.count"), 2u);
    EXPECT_EQ(snap.value("qor.err.mean"), 1.0);
    EXPECT_EQ(snap.value("qor.err.min"), 0.5);
    EXPECT_EQ(snap.value("qor.err.max"), 1.5);
    EXPECT_EQ(snap.size(), 4u);
}

TEST(StatRegistry, CounterFnAndFormulaEvaluateAtSnapshotTime)
{
    StatRegistry reg;
    u64 external = 7;
    reg.group("mem").counterFn("reads", [&] { return external; });
    reg.group("llc").formula(
        "ratio", [&] { return static_cast<double>(external) / 2.0; });

    external = 10;
    const StatSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("mem.reads"), 10u);
    EXPECT_EQ(snap.value("llc.ratio"), 5.0);
}

TEST(StatRegistry, NamesAndDescriptionsAreRecorded)
{
    StatRegistry reg;
    reg.group("a").counter("x", "the x counter");
    reg.group("a").distribution("d");
    const std::vector<std::string> names = reg.names();
    const std::vector<std::string> expect = {"a.x", "a.d.count",
                                             "a.d.mean", "a.d.min",
                                             "a.d.max"};
    EXPECT_EQ(names, expect);
    EXPECT_EQ(reg.description("a.x"), "the x counter");
    EXPECT_TRUE(reg.description("a.unknown").empty());
    EXPECT_EQ(reg.statCount(), 2u);
}

TEST(StatRegistry, ResetPrefixRespectsDotBoundary)
{
    StatRegistry reg;
    Counter &a = reg.group("llc").counter("fetches");
    Counter &b = reg.group("llcx").counter("fetches");
    a += 5;
    b += 7;
    reg.reset("llc");
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 7u); // "llcx" is not under "llc"
    reg.reset();
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatRegistryDeathTest, DuplicateNameIsFatal)
{
    StatRegistry reg;
    reg.group("llc").counter("fetches");
    EXPECT_EXIT(reg.group("llc").counter("fetches"),
                ::testing::ExitedWithCode(1), "registered twice");
}

TEST(StatRegistryDeathTest, MissingSnapshotNameIsFatal)
{
    StatRegistry reg;
    reg.group("llc").counter("fetches");
    const StatSnapshot snap = reg.snapshot();
    EXPECT_EXIT(snap.counter("llc.nope"),
                ::testing::ExitedWithCode(1), "no entry named");
}

// ---------------------------------------------------------------------
// Snapshot delta / json / equality.
// ---------------------------------------------------------------------

TEST(StatSnapshot, DeltaSubtractsAndClampsAtZero)
{
    StatRegistry reg;
    Counter &c = reg.group("llc").counter("fetches");
    c += 10;
    const StatSnapshot before = reg.snapshot();
    c += 5;
    const StatSnapshot after = reg.snapshot();
    EXPECT_EQ(after.delta(before).counter("llc.fetches"), 5u);

    // A counter reset mid-interval reads as zero progress, not a wrap.
    reg.reset();
    c += 3;
    const StatSnapshot wrapped = reg.snapshot();
    EXPECT_EQ(wrapped.delta(after).counter("llc.fetches"), 0u);
}

TEST(StatSnapshot, DeltaSubtractsFormulasArithmetically)
{
    StatRegistry reg;
    double v = 1.5;
    reg.group("run").formula("f", [&] { return v; });
    const StatSnapshot a = reg.snapshot();
    v = 4.0;
    const StatSnapshot b = reg.snapshot();
    EXPECT_EQ(b.delta(a).value("run.f"), 2.5);
}

TEST(StatSnapshot, JsonNestsDottedNames)
{
    StatRegistry reg;
    reg.group("llc").counter("fetches") += 2;
    reg.group("llc").group("tagArray").counter("reads") += 3;
    reg.group("mem").counter("reads") += 4;
    EXPECT_EQ(reg.snapshot().json(),
              "{\"llc\":{\"fetches\":2,\"tagArray\":{\"reads\":3}},"
              "\"mem\":{\"reads\":4}}");
}

TEST(StatSnapshot, EqualityComparesNamesAndValues)
{
    StatRegistry a, b;
    a.group("llc").counter("fetches") += 2;
    b.group("llc").counter("fetches") += 2;
    EXPECT_EQ(a.snapshot(), b.snapshot());
    b.group("llc").counter("hits");
    EXPECT_NE(a.snapshot(), b.snapshot());
}

// ---------------------------------------------------------------------
// LlcCounters ↔ llcStatFields sync (the compatibility view).
// ---------------------------------------------------------------------

TEST(LlcCounters, EveryCanonicalFieldIsRegistered)
{
    StatRegistry reg;
    LlcCounters ctr(reg.group("llc"));
    for (const LlcStatField &f : llcStatFields()) {
        EXPECT_TRUE(reg.contains(std::string("llc.") + f.name))
            << "llcStatFields() entry '" << f.name
            << "' has no registered counter — keep LlcCounters and "
               "statFieldTable in sync";
    }
    EXPECT_EQ(reg.statCount(), llcStatFields().size());
}

TEST(LlcCounters, ViewMirrorsCounterValues)
{
    StatRegistry reg;
    LlcCounters ctr(reg.group("llc"));
    ctr.fetches += 9;
    ctr.tagArray.reads += 4;
    ctr.degradedFills += 2;

    const LlcStats s = ctr.view();
    EXPECT_EQ(s.fetches, 9u);
    EXPECT_EQ(s.tagArray.reads, 4u);
    EXPECT_EQ(s.degradedFills, 2u);

    ctr.reset();
    EXPECT_EQ(ctr.view().fetches, 0u);
    EXPECT_EQ(reg.snapshot().counter("llc.tagArray.reads"), 0u);
}

TEST(LlcCounters, RegisteredViewMatchesDirectRegistration)
{
    // An aggregate view registered under "llc" must use the exact
    // names direct registration uses, so split/uniDopp exports line
    // up with baseline exports column-for-column.
    StatRegistry direct, viewed;
    LlcCounters ctr(direct.group("llc"));
    LlcStats fixed = ctr.view();
    registerLlcStatsView(viewed.group("llc"), [fixed] { return fixed; });

    std::vector<std::string> directNames = direct.names();
    std::vector<std::string> viewedNames = viewed.names();
    // The view adds the derived formulas on top of the counters.
    for (const std::string &n : directNames) {
        EXPECT_NE(std::find(viewedNames.begin(), viewedNames.end(), n),
                  viewedNames.end())
            << "view is missing '" << n << "'";
    }
    EXPECT_TRUE(viewed.contains("llc.missRate"));
    EXPECT_TRUE(viewed.contains("llc.avgLinkedTags"));
}

// ---------------------------------------------------------------------
// LLC factory.
// ---------------------------------------------------------------------

TEST(LlcFactory, BuiltinsAreRegistered)
{
    for (LlcKind kind : allKinds)
        EXPECT_TRUE(llcRegistered(llcKindName(kind)));
    EXPECT_FALSE(llcRegistered("no-such-organization"));
    EXPECT_GE(registeredLlcNames().size(), 5u);
}

TEST(LlcFactory, KindNameRoundTripsForAllFiveKinds)
{
    for (LlcKind kind : allKinds)
        EXPECT_EQ(llcKindFromName(llcKindName(kind)), kind);
}

TEST(LlcFactoryDeathTest, UnknownKindNameIsFatal)
{
    EXPECT_EXIT(llcKindFromName("conventional"),
                ::testing::ExitedWithCode(1),
                "unknown LLC organization name");
}

TEST(LlcFactoryDeathTest, UnknownOrganizationBuildIsFatal)
{
    RunConfig cfg = tinyRun(LlcKind::Baseline);
    cfg.llcName = "no-such-organization";
    EXPECT_EXIT(runWorkload(cfg), ::testing::ExitedWithCode(1),
                "unknown organization 'no-such-organization'");
}

TEST(LlcFactory, CustomOrganizationPlugsIntoRunWorkload)
{
    static bool registered = false;
    if (!registered) {
        registered = true;
        registerLlc("test-tiny-conventional",
                    [](MainMemory &memory, const ApproxRegistry &reg,
                       const RunConfig &cfg, StatRegistry &stats) {
                        LlcBuilt built;
                        built.llc = std::make_unique<ConventionalLlc>(
                            memory, cfg.baselineBytes / 4, cfg.llcWays,
                            cfg.llcLatency, &reg, ReplPolicy::LRU,
                            &stats, "llc");
                        registerLlcFormulas(
                            stats.group("llc"),
                            [llc = built.llc.get()] {
                                return llc->stats();
                            });
                        return built;
                    });
    }
    RunConfig cfg = tinyRun(LlcKind::Baseline);
    cfg.llcName = "test-tiny-conventional";
    const RunResult r = runWorkload(cfg);
    EXPECT_EQ(r.organization, "test-tiny-conventional");
    EXPECT_GT(r.stats.counter("llc.fetches"), 0u);
    EXPECT_TRUE(r.stats.has("llc.missRate"));
}

// ---------------------------------------------------------------------
// Schema-drift guard: every registered counter reaches the exports.
// ---------------------------------------------------------------------

TEST(SchemaDrift, EveryRegisteredStatExportsAndRoundTrips)
{
    for (LlcKind kind : allKinds) {
        const RunResult r = runWorkload(tinyRun(kind));

        // CSV header carries every snapshot name, in order.
        const std::string header = runResultCsvHeader(r);
        for (const StatValue &v : r.stats.values()) {
            EXPECT_NE(header.find(v.name), std::string::npos)
                << llcKindName(kind) << ": column '" << v.name
                << "' missing from the CSV header";
        }

        // JSON export carries every leaf key.
        const std::string json = runResultJson(r);
        for (const StatValue &v : r.stats.values()) {
            const std::string leaf =
                v.name.substr(v.name.rfind('.') + 1);
            EXPECT_NE(json.find("\"" + leaf + "\":"),
                      std::string::npos)
                << llcKindName(kind) << ": leaf '" << leaf
                << "' missing from the JSON export";
        }

        // write → loadResultsCsv round-trips every value exactly.
        char buf[] = "/tmp/dopp-schema-XXXXXX";
        const int fd = mkstemp(buf);
        ASSERT_GE(fd, 0);
        ::close(fd);
        writeResultsCsv(buf, {r});
        const std::vector<LoadedRunRow> rows = loadResultsCsv(buf);
        std::remove(buf);
        ASSERT_EQ(rows.size(), 1u);
        EXPECT_EQ(rows[0].values.size(), r.stats.size());
        for (const StatValue &v : r.stats.values()) {
            EXPECT_EQ(rows[0].value(v.name), v.asDouble())
                << llcKindName(kind) << ": column '" << v.name
                << "' did not round-trip through the CSV";
        }
    }
}

TEST(SchemaDrift, CoreGroupsArePresentForEveryOrganization)
{
    for (LlcKind kind : allKinds) {
        const RunResult r = runWorkload(tinyRun(kind));
        EXPECT_TRUE(r.stats.has("llc.fetches")) << llcKindName(kind);
        EXPECT_TRUE(r.stats.has("llc.missRate")) << llcKindName(kind);
        EXPECT_TRUE(r.stats.has("hierarchy.accesses"))
            << llcKindName(kind);
        EXPECT_TRUE(r.stats.has("mem.reads")) << llcKindName(kind);
        EXPECT_TRUE(r.stats.has("mem.writes")) << llcKindName(kind);
        EXPECT_TRUE(r.stats.has("run.runtimeCycles"))
            << llcKindName(kind);
        // The compatibility views read the same counters the
        // snapshot records.
        EXPECT_EQ(r.stats.counter("llc.fetches"), r.llc.fetches)
            << llcKindName(kind);
        EXPECT_EQ(r.stats.counter("hierarchy.accesses"),
                  r.hierarchy.accesses)
            << llcKindName(kind);
        EXPECT_EQ(r.stats.counter("mem.reads"), r.memReads)
            << llcKindName(kind);
        EXPECT_EQ(r.stats.counter("run.runtimeCycles"), r.runtime)
            << llcKindName(kind);
    }
}

TEST(SchemaDrift, SplitRegistersHalvesAndAggregate)
{
    const RunResult r = runWorkload(tinyRun(LlcKind::SplitDopp));
    EXPECT_TRUE(r.stats.has("llc.precise.fetches"));
    EXPECT_TRUE(r.stats.has("llc.dopp.fetches"));
    EXPECT_TRUE(r.stats.has("llc.route.degradedFills"));
    EXPECT_EQ(r.stats.counter("llc.fetches"),
              r.stats.counter("llc.precise.fetches") +
                  r.stats.counter("llc.dopp.fetches"));
    EXPECT_EQ(r.stats.counter("llc.precise.fetches"),
              r.preciseHalf.fetches);
    EXPECT_EQ(r.stats.counter("llc.dopp.fetches"), r.doppHalf.fetches);
}

TEST(SchemaDrift, MixedSchemasMergeIntoUnionColumns)
{
    const RunResult base = runWorkload(tinyRun(LlcKind::Baseline));
    const RunResult split = runWorkload(tinyRun(LlcKind::SplitDopp));
    const std::vector<std::string> cols =
        resultStatColumns({base, split});
    const auto hasCol = [&](const std::string &n) {
        return std::find(cols.begin(), cols.end(), n) != cols.end();
    };
    EXPECT_TRUE(hasCol("llc.fetches"));
    EXPECT_TRUE(hasCol("llc.precise.fetches"));

    // A baseline row backfills split-only columns with 0.
    char buf[] = "/tmp/dopp-union-XXXXXX";
    const int fd = mkstemp(buf);
    ASSERT_GE(fd, 0);
    ::close(fd);
    writeResultsCsv(buf, {base, split});
    const std::vector<LoadedRunRow> rows = loadResultsCsv(buf);
    std::remove(buf);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].value("llc.precise.fetches"), 0.0);
    EXPECT_GT(rows[1].value("llc.precise.fetches"), 0.0);
}

TEST(SchemaDrift, FaultAndQorGroupsExportWhenConfigured)
{
    RunConfig cfg = tinyRun(LlcKind::SplitDopp, "blackscholes");
    cfg.fault.dataRate = 0.01;
    cfg.fault.tagMetaRate = 0.01;
    cfg.fault.memoryRate = 0.001;
    cfg.qor.budget = 0.05;
    const RunResult r = runWorkload(cfg);
    EXPECT_TRUE(r.stats.has("fault.injected.total"));
    EXPECT_TRUE(r.stats.has("fault.injected.memory-data"));
    EXPECT_TRUE(r.stats.has("fault.detected"));
    EXPECT_TRUE(r.stats.has("fault.repairs"));
    EXPECT_TRUE(r.stats.has("qor.observations"));
    EXPECT_TRUE(r.stats.has("qor.estimate"));
    EXPECT_TRUE(r.stats.has("qor.substitutionError.count"));
    EXPECT_EQ(r.stats.counter("fault.injected.total"),
              r.fault.totalInjected());
    EXPECT_EQ(r.stats.counter("qor.degradations"),
              r.guardrailDegradations);

    // Clean runs carry no fault/qor groups at all.
    const RunResult clean = runWorkload(tinyRun(LlcKind::SplitDopp));
    EXPECT_FALSE(clean.stats.has("fault.injected.total"));
    EXPECT_FALSE(clean.stats.has("qor.observations"));
}

// ---------------------------------------------------------------------
// Determinism: registry dumps are identical for any job count.
// ---------------------------------------------------------------------

TEST(SchemaDrift, RegistryDumpsIdenticalAcrossJobCounts)
{
    std::vector<RunConfig> configs;
    configs.push_back(tinyRun(LlcKind::Baseline, "kmeans"));
    configs.push_back(tinyRun(LlcKind::SplitDopp, "jmeint"));
    configs.push_back(tinyRun(LlcKind::UniDopp, "jpeg"));
    configs.push_back(tinyRun(LlcKind::Bdi, "blackscholes"));

    BatchOptions serial;
    serial.jobs = 1;
    BatchOptions wide;
    wide.jobs = 4;
    const std::vector<RunResult> a = runBatch(configs, serial);
    const std::vector<RunResult> b = runBatch(configs, wide);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stats, b[i].stats) << "config " << i;
        EXPECT_EQ(a[i].stats.json(), b[i].stats.json());
        EXPECT_EQ(runResultCsvRow(a[i]), runResultCsvRow(b[i]));
    }
}

// ---------------------------------------------------------------------
// DOPP_STATS_JSON: per-run JSONL dump.
// ---------------------------------------------------------------------

TEST(StatsJsonl, EveryRunAppendsOneLine)
{
    char buf[] = "/tmp/dopp-jsonl-XXXXXX";
    const int fd = mkstemp(buf);
    ASSERT_GE(fd, 0);
    ::close(fd);
    std::remove(buf); // runWorkload appends; start from nothing

    ASSERT_EQ(setenv("DOPP_STATS_JSON", buf, 1), 0);
    runWorkload(tinyRun(LlcKind::Baseline));
    runWorkload(tinyRun(LlcKind::UniDopp, "jpeg"));
    ASSERT_EQ(unsetenv("DOPP_STATS_JSON"), 0);

    std::ifstream in(buf);
    ASSERT_TRUE(in.good());
    std::string line;
    u64 lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"stats\":{"), std::string::npos);
    }
    std::remove(buf);
    EXPECT_EQ(lines, 2u);
}

} // namespace dopp
