/**
 * @file
 * Integration tests: whole-system behaviours the paper's evaluation
 * depends on, at reduced scale — error trends across map spaces,
 * baseline exactness, storage sharing under real workloads, and
 * consistency between organizations.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "harness/experiment.hh"

namespace dopp
{

namespace
{

RunConfig
mkConfig(LlcKind kind, double scale = 0.2, unsigned map_bits = 14,
         double fraction = 0.25)
{
    RunConfig cfg;
    cfg.kind = kind;
    cfg.workload.scale = scale;
    cfg.mapBits = map_bits;
    cfg.dataFraction = fraction;
    return cfg;
}

} // namespace

TEST(Integration, BaselineRunsAreExact)
{
    // Two baseline runs of the same workload agree bit-for-bit, and a
    // dedup (lossless) run agrees with the baseline's output.
    const RunResult base =
        runWorkload("jpeg", mkConfig(LlcKind::Baseline));
    const RunResult dedup =
        runWorkload("jpeg", mkConfig(LlcKind::Dedup));
    EXPECT_EQ(base.output, dedup.output);
    EXPECT_DOUBLE_EQ(
        workloadOutputError("jpeg", dedup.output, base.output), 0.0);
}

TEST(Integration, DoppelgangerIntroducesBoundedError)
{
    const RunResult base =
        runWorkload("jpeg", mkConfig(LlcKind::Baseline));
    const RunResult dopp =
        runWorkload("jpeg", mkConfig(LlcKind::SplitDopp));
    const double err =
        workloadOutputError("jpeg", dopp.output, base.output);
    EXPECT_GT(err, 0.0);  // approximation is happening
    EXPECT_LT(err, 0.15); // and it is tolerable (paper: ~10% bar)
}

TEST(Integration, SmallerMapSpaceMoreError)
{
    const RunResult base =
        runWorkload("kmeans", mkConfig(LlcKind::Baseline));
    const RunResult m10 =
        runWorkload("kmeans", mkConfig(LlcKind::SplitDopp, 0.2, 10));
    const RunResult m14 =
        runWorkload("kmeans", mkConfig(LlcKind::SplitDopp, 0.2, 14));
    const double e10 =
        workloadOutputError("kmeans", m10.output, base.output);
    const double e14 =
        workloadOutputError("kmeans", m14.output, base.output);
    EXPECT_GE(e10, e14); // Fig 9a trend
}

TEST(Integration, DoppStoresFewerDataBlocksThanTags)
{
    const RunResult r =
        runWorkload("jpeg", mkConfig(LlcKind::SplitDopp));
    // Approximate similarity: multiple tags per data entry on average
    // (the paper reports 4.4 on its mix).
    EXPECT_GT(r.tagsPerDataEntry, 1.05);
}

TEST(Integration, SplitEnergyBelowBaseline)
{
    const EnergyModel em;
    const RunResult base =
        runWorkload("jpeg", mkConfig(LlcKind::Baseline));
    const RunResult dopp =
        runWorkload("jpeg", mkConfig(LlcKind::SplitDopp));
    const EnergyResult be = em.baseline(base.llc, base.runtime);
    const EnergyResult de = em.split(dopp.preciseHalf, dopp.doppHalf,
                                     dopp.doppConfig, dopp.runtime);
    EXPECT_GT(be.dynamicPj / de.dynamicPj, 1.5);
    EXPECT_GT(be.leakagePj / de.leakagePj, 1.1);
}

TEST(Integration, RuntimeNearBaselineAtQuarterArray)
{
    const RunResult base =
        runWorkload("blackscholes", mkConfig(LlcKind::Baseline));
    const RunResult dopp =
        runWorkload("blackscholes", mkConfig(LlcKind::SplitDopp));
    const double norm = static_cast<double>(dopp.runtime) /
        static_cast<double>(base.runtime);
    EXPECT_LT(norm, 1.25);
    EXPECT_GT(norm, 0.8);
}

TEST(Integration, UniDoppHandlesMixedFootprints)
{
    // swaptions is ~all-precise; uniDopp must still run correctly and
    // its output must match the baseline closely (params are the only
    // approximate data).
    const RunResult base =
        runWorkload("swaptions", mkConfig(LlcKind::Baseline));
    const RunResult uni =
        runWorkload("swaptions", mkConfig(LlcKind::UniDopp, 0.2, 14,
                                          0.5));
    EXPECT_EQ(base.output.size(), uni.output.size());
    const double err =
        workloadOutputError("swaptions", uni.output, base.output);
    EXPECT_LT(err, 0.5);
}

TEST(Integration, OffChipTrafficComparableToBaseline)
{
    const RunResult base =
        runWorkload("ferret", mkConfig(LlcKind::Baseline));
    const RunResult dopp =
        runWorkload("ferret", mkConfig(LlcKind::SplitDopp));
    const double norm = static_cast<double>(dopp.offChipTraffic()) /
        static_cast<double>(base.offChipTraffic());
    EXPECT_LT(norm, 1.5); // Fig 12: minimal impact
}

TEST(Integration, EvictionStatsPopulated)
{
    // A deliberately tiny data array (1/32) forces data evictions even
    // at reduced workload scale.
    const RunResult r = runWorkload(
        "canneal", mkConfig(LlcKind::SplitDopp, 0.2, 14, 0.03125));
    EXPECT_GT(r.doppHalf.evictions + r.doppHalf.dataEvictions, 0u);
    EXPECT_GT(r.doppHalf.mapGens, 0u);
    // The paper's avg-linked-tags statistic is measurable.
    EXPECT_GT(r.doppHalf.avgLinkedTags(), 0.0);
}

TEST(Integration, HigherScaleMoreAccesses)
{
    const RunResult small =
        runWorkload("kmeans", mkConfig(LlcKind::Baseline, 0.1));
    const RunResult big =
        runWorkload("kmeans", mkConfig(LlcKind::Baseline, 0.3));
    EXPECT_GT(big.hierarchy.accesses, small.hierarchy.accesses);
}

TEST(Integration, AllWorkloadsRunOnAllOrganizations)
{
    for (const auto &name : workloadNames()) {
        for (LlcKind kind : {LlcKind::Baseline, LlcKind::SplitDopp,
                             LlcKind::UniDopp, LlcKind::Dedup}) {
            const RunResult r =
                runWorkload(name, mkConfig(kind, 0.05));
            EXPECT_FALSE(r.output.empty())
                << name << " on " << llcKindName(kind);
            EXPECT_GT(r.runtime, 0u);
        }
    }
}

} // namespace dopp
