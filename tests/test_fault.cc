/**
 * @file
 * Tests for the fault-injection and QoR-guardrail subsystem: injector
 * determinism, the guardrail state machine, substitution-error math,
 * metadata-fault survival (self-check-and-repair) under randomized
 * stress, split-LLC degradation routing, and end-to-end campaign
 * reproducibility through the harness.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/doppelganger_cache.hh"
#include "core/split_llc.hh"
#include "fault/fault_injector.hh"
#include "fault/qor_guardrail.hh"
#include "harness/experiment.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

/** Small test geometry: 64 tags (4 sets x 16), 16 data entries. */
DoppConfig
smallConfig()
{
    DoppConfig cfg;
    cfg.tagEntries = 64;
    cfg.tagWays = 16;
    cfg.dataEntries = 16;
    cfg.dataWays = 4;
    cfg.mapBits = 14;
    return cfg;
}

BlockData
makeBlock(float value)
{
    BlockData b;
    for (unsigned i = 0; i < elemsPerBlock(ElemType::F32); ++i)
        setBlockElement(b.data(), ElemType::F32, i,
                        static_cast<double>(value));
    return b;
}

void
seedBlock(MainMemory &mem, Addr addr, float value)
{
    const BlockData b = makeBlock(value);
    mem.poke(addr, b.data(), blockBytes);
}

FaultConfig
metaFaultConfig(u64 seed)
{
    FaultConfig f;
    f.seed = seed;
    f.dataRate = 0.05;
    f.tagMetaRate = 0.10;
    f.mtagMetaRate = 0.10;
    return f;
}

/**
 * Drive @p cache with @p ops interleaved fetches, writebacks and
 * periodic flushes over a small address pool, checking the structural
 * invariants after every single operation (so the repair path must
 * leave the cache consistent every time it runs).
 */
void
stressCache(DoppelgangerCache &cache, MainMemory &mem, u64 ops,
            u64 rng_seed)
{
    Rng rng(rng_seed);
    BlockData buf;
    std::string why;
    for (u64 i = 0; i < ops; ++i) {
        const Addr addr = (rng.below(256) + 1) * 0x40;
        const float value =
            static_cast<float>(rng.uniform());
        switch (rng.below(8)) {
          case 0:
            if (i % 512 == 511) {
                cache.flush();
                break;
            }
            [[fallthrough]];
          case 1:
          case 2:
            cache.writeback(addr, makeBlock(value).data());
            break;
          default:
            seedBlock(mem, addr, value);
            cache.fetch(addr, buf.data());
            break;
        }
        ASSERT_TRUE(cache.checkInvariants(&why))
            << "op " << i << ": " << why;
    }
}

} // namespace

TEST(FaultInjector, DeterministicStreams)
{
    FaultConfig cfg = metaFaultConfig(42);
    FaultInjector a(cfg);
    FaultInjector b(cfg);
    for (int i = 0; i < 2000; ++i) {
        a.step();
        b.step();
        ASSERT_EQ(a.draw(FaultDomain::TagMeta),
                  b.draw(FaultDomain::TagMeta));
        ASSERT_EQ(a.pick(64), b.pick(64));
        ASSERT_EQ(a.draw(FaultDomain::LlcData),
                  b.draw(FaultDomain::LlcData));
    }
}

TEST(FaultInjector, ZeroRatesNeverFire)
{
    FaultInjector fi(FaultConfig{});
    EXPECT_FALSE(fi.config().enabled());
    for (int i = 0; i < 1000; ++i) {
        fi.step();
        EXPECT_FALSE(fi.draw(FaultDomain::MemoryData));
        EXPECT_FALSE(fi.draw(FaultDomain::TagMeta));
    }
    EXPECT_EQ(fi.stats().totalInjected(), 0u);
}

TEST(FaultInjector, RecordsTallyPerDomain)
{
    FaultInjector fi(metaFaultConfig(7));
    fi.record(FaultDomain::TagMeta, 3, 1, 0);
    fi.record(FaultDomain::TagMeta, 5, 0, 2);
    fi.record(FaultDomain::MemoryData, 0x1000, 0, 17);
    EXPECT_EQ(fi.stats().injected[static_cast<size_t>(
                  FaultDomain::TagMeta)], 2u);
    EXPECT_EQ(fi.stats().injected[static_cast<size_t>(
                  FaultDomain::MemoryData)], 1u);
    EXPECT_EQ(fi.stats().totalInjected(), 3u);
    ASSERT_EQ(fi.events().size(), 3u);
    EXPECT_EQ(fi.events()[1].entry, 5u);
    EXPECT_EQ(fi.events()[2].bit, 17u);
}

TEST(QorGuardrail, TripsDegradesAndRecovers)
{
    QorConfig qc;
    qc.budget = 0.1;
    qc.window = 4;
    qc.minDwell = 4;
    qc.reenableFraction = 0.5;
    QorGuardrail g(qc);

    // Saturate the estimate with full-range substitutions.
    for (int i = 0; i < 16; ++i)
        g.observeError(1.0);
    EXPECT_TRUE(g.degraded());
    EXPECT_EQ(g.degradationCount(), 1u);
    EXPECT_GT(g.estimate(), qc.budget);

    // Clean operation decays the estimate below the hysteresis
    // threshold and lifts the degradation after the dwell.
    for (int i = 0; i < 64; ++i)
        g.observeClean();
    EXPECT_FALSE(g.degraded());
    EXPECT_LT(g.estimate(), qc.budget * qc.reenableFraction);

    const auto ivs = g.intervals();
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_GT(ivs[0].endOp, ivs[0].beginOp);
    EXPECT_EQ(g.degradedOps(), ivs[0].endOp - ivs[0].beginOp);
}

TEST(QorGuardrail, MinDwellPreventsChatter)
{
    QorConfig qc;
    qc.budget = 0.1;
    qc.window = 1; // estimate == last sample: maximally chatter-prone
    qc.minDwell = 10;
    QorGuardrail g(qc);

    // Alternate wildly; flips must respect the dwell.
    for (int i = 0; i < 100; ++i)
        g.observeError(i % 2 ? 1.0 : 0.0);
    u64 maxFlips = 100 / qc.minDwell + 1;
    EXPECT_LE(g.degradationCount(), maxFlips);
    EXPECT_GE(g.degradationCount(), 1u);
}

TEST(QorGuardrail, DisabledNeverDegrades)
{
    QorGuardrail g(QorConfig{});
    for (int i = 0; i < 1000; ++i)
        g.observeError(1.0);
    EXPECT_FALSE(g.degraded());
    EXPECT_EQ(g.observations(), 0u);
    EXPECT_EQ(g.degradedOps(), 0u);
}

TEST(QorGuardrail, ReenableEdgeIsExclusive)
{
    // Re-enable requires the estimate strictly *below* the hysteresis
    // threshold; decaying to exactly the threshold must keep the
    // guardrail degraded. Power-of-two budget/samples keep the window=1
    // EWMA updates exact, so the edge is hit bit-precisely.
    QorConfig qc;
    qc.budget = 0.25;
    qc.reenableFraction = 0.5; // threshold: exactly 0.125
    qc.window = 1;             // estimate == last sample
    qc.minDwell = 1;
    QorGuardrail g(qc);

    g.observeError(1.0);
    ASSERT_TRUE(g.degraded());
    ASSERT_EQ(g.degradationCount(), 1u);

    g.observeError(0.125); // exactly budget × reenableFraction
    EXPECT_EQ(g.estimate(), 0.125);
    EXPECT_TRUE(g.degraded()) << "re-enabled at the threshold itself";

    g.observeError(0.0625); // strictly below: now it lifts
    EXPECT_FALSE(g.degraded());
    const auto ivs = g.intervals();
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].beginOp, 1u);
    EXPECT_EQ(ivs[0].endOp, 3u);
}

TEST(QorGuardrail, BudgetZeroIsInertEwma)
{
    // budget == 0 disables the guardrail entirely: the EWMA must not
    // accumulate, and no intervals may ever open.
    QorConfig qc;
    qc.budget = 0.0;
    qc.window = 4;
    QorGuardrail g(qc);
    for (int i = 0; i < 256; ++i)
        g.observeError(0.7);
    EXPECT_EQ(g.estimate(), 0.0);
    EXPECT_EQ(g.observations(), 0u);
    EXPECT_FALSE(g.degraded());
    EXPECT_TRUE(g.intervals().empty());
    EXPECT_EQ(g.degradationCount(), 0u);
}

TEST(QorGuardrail, ZeroWindowActsAsLastSample)
{
    // window == 0 must not divide by zero; it clamps to alpha = 1, so
    // the estimate tracks the most recent observation exactly.
    QorConfig qc;
    qc.budget = 0.1;
    qc.window = 0;
    qc.minDwell = 1;
    QorGuardrail g(qc);
    g.observeError(0.75);
    EXPECT_EQ(g.estimate(), 0.75);
    EXPECT_TRUE(g.degraded());
    g.observeClean();
    EXPECT_EQ(g.estimate(), 0.0);
    EXPECT_FALSE(g.degraded());
}

TEST(BlockSubstitutionError, IdenticalBlocksAreClean)
{
    const BlockData a = makeBlock(0.7f);
    EXPECT_DOUBLE_EQ(blockSubstitutionError(a.data(), a.data(),
                                            ElemType::F32, 1.0),
                     0.0);
}

TEST(BlockSubstitutionError, NormalizedToSpanAndCapped)
{
    BlockData served = makeBlock(0.0f);
    BlockData exact = makeBlock(0.0f);
    // One element off by the full span: mean error = 1/elems.
    setBlockElement(served.data(), ElemType::F32, 0, 1.0);
    const unsigned elems = elemsPerBlock(ElemType::F32);
    EXPECT_NEAR(blockSubstitutionError(served.data(), exact.data(),
                                       ElemType::F32, 1.0),
                1.0 / elems, 1e-9);
    // A wild element (1000 spans off) is capped at one full-range
    // substitution, and a degenerate span cannot divide by zero.
    setBlockElement(served.data(), ElemType::F32, 0, 1000.0);
    EXPECT_NEAR(blockSubstitutionError(served.data(), exact.data(),
                                       ElemType::F32, 1.0),
                1.0 / elems, 1e-9);
    EXPECT_LE(blockSubstitutionError(served.data(), exact.data(),
                                     ElemType::F32, 0.0),
              1.0);
}

TEST(FaultStress, DoppelgangerSurvivesMetadataFaults)
{
    MainMemory mem;
    DoppelgangerCache cache(mem, smallConfig(), nullptr);
    FaultInjector fi(metaFaultConfig(0xfa017));
    cache.setFaultInjector(&fi);

    stressCache(cache, mem, 3000, 99);

    // The rates guarantee plenty of injections; every detected
    // corruption must have been repaired.
    EXPECT_GT(fi.stats().totalInjected(), 100u);
    EXPECT_GT(fi.stats().detected, 0u);
    EXPECT_EQ(fi.stats().detected, fi.stats().repairs);
    EXPECT_EQ(cache.stats().faultsDetected, fi.stats().detected);
    EXPECT_EQ(cache.stats().faultsRepaired, fi.stats().repairs);
    EXPECT_EQ(cache.stats().repairTagsDropped,
              fi.stats().tagsDropped);
    EXPECT_EQ(cache.stats().repairEntriesDropped,
              fi.stats().entriesDropped);
}

TEST(FaultStress, UnifiedSurvivesMetadataFaults)
{
    MainMemory mem;
    ApproxRegistry registry;
    ApproxRegion region;
    region.base = 0x0;
    region.size = 128 * 0x40; // half the stress address pool
    registry.add(region);

    DoppConfig cfg = smallConfig();
    cfg.unified = true;
    DoppelgangerCache cache(mem, cfg, &registry);
    FaultInjector fi(metaFaultConfig(0xdecaf));
    cache.setFaultInjector(&fi);

    stressCache(cache, mem, 3000, 123);

    EXPECT_GT(fi.stats().totalInjected(), 100u);
    EXPECT_GT(fi.stats().detected, 0u);
    EXPECT_EQ(fi.stats().detected, fi.stats().repairs);
}

TEST(FaultStress, SameSeedSameFaultTrace)
{
    auto run = [](std::vector<FaultEvent> &events, LlcStats &stats) {
        MainMemory mem;
        DoppelgangerCache cache(mem, smallConfig(), nullptr);
        FaultInjector fi(metaFaultConfig(0x5eed));
        cache.setFaultInjector(&fi);
        stressCache(cache, mem, 1500, 7);
        events = fi.events();
        stats = cache.stats();
    };

    std::vector<FaultEvent> ea;
    std::vector<FaultEvent> eb;
    LlcStats sa;
    LlcStats sb;
    run(ea, sa);
    run(eb, sb);

    ASSERT_EQ(ea.size(), eb.size());
    ASSERT_GT(ea.size(), 0u);
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].op, eb[i].op);
        EXPECT_EQ(ea[i].domain, eb[i].domain);
        EXPECT_EQ(ea[i].entry, eb[i].entry);
        EXPECT_EQ(ea[i].field, eb[i].field);
        EXPECT_EQ(ea[i].bit, eb[i].bit);
    }
    for (const LlcStatField &f : llcStatFields())
        EXPECT_EQ(f.value(sa), f.value(sb)) << f.name;
}

TEST(FaultStress, ConventionalLlcFlipsOnlyApproxData)
{
    MainMemory mem;
    ApproxRegistry registry;
    ApproxRegion region;
    region.base = 0x10000;
    region.size = 64 * 0x40;
    registry.add(region);

    ConventionalLlc llc(mem, 64 * blockBytes, 4, 6, &registry);
    FaultConfig fc;
    fc.dataRate = 1.0; // every operation tries to flip a bit
    FaultInjector fi(fc);
    QorConfig qc;
    qc.budget = 1.0; // never trips; only the estimate matters here
    QorGuardrail g(qc);
    llc.setFaultInjector(&fi);
    llc.setGuardrail(&g);

    BlockData buf;
    // Fill with approximate blocks only: flips must land.
    for (u32 i = 0; i < 64; ++i) {
        seedBlock(mem, region.base + i * 0x40, 0.5f);
        llc.fetch(region.base + i * 0x40, buf.data());
    }
    for (int round = 0; round < 4; ++round)
        for (u32 i = 0; i < 64; ++i)
            llc.fetch(region.base + i * 0x40, buf.data());

    EXPECT_GT(llc.stats().faultsInjected, 0u);
    EXPECT_EQ(llc.stats().faultsInjected,
              fi.stats().injected[static_cast<size_t>(
                  FaultDomain::LlcData)]);
    EXPECT_GT(g.observations(), 0u);

    // Precise-only traffic: the same rate must never flip anything.
    ConventionalLlc preciseLlc(mem, 64 * blockBytes, 4, 6, &registry);
    FaultInjector fi2(fc);
    preciseLlc.setFaultInjector(&fi2);
    for (u32 i = 0; i < 256; ++i) {
        seedBlock(mem, 0x400000 + i * 0x40, 0.5f);
        preciseLlc.fetch(0x400000 + i * 0x40, buf.data());
    }
    EXPECT_EQ(preciseLlc.stats().faultsInjected, 0u);
}

TEST(FaultStress, SplitGuardrailDegradesToPrecise)
{
    MainMemory mem;
    ApproxRegistry registry;
    ApproxRegion region;
    region.base = 0x0;
    region.size = 1024 * 0x40;
    registry.add(region);

    SplitLlcConfig sc;
    sc.preciseBytes = 64 * blockBytes;
    sc.preciseWays = 4;
    sc.dopp = smallConfig();
    sc.dopp.mapBits = 4; // coarse bins: joins substitute large errors
    SplitLlc llc(mem, sc, registry);

    QorConfig qc;
    qc.budget = 0.001; // trip almost immediately
    qc.window = 8;
    qc.minDwell = 4;
    QorGuardrail g(qc);
    llc.setGuardrail(&g);

    // Dissimilar values per block: every join substitutes real error.
    Rng rng(5);
    BlockData buf;
    for (u64 i = 0; i < 2000; ++i) {
        const Addr addr = (rng.below(512)) * 0x40;
        seedBlock(mem, addr, static_cast<float>(rng.uniform()));
        llc.fetch(addr, buf.data());
    }

    EXPECT_TRUE(g.degradationCount() > 0);
    EXPECT_GT(llc.stats().degradedFills, 0u);

    // Exactly-once aggregation: the split's own counter is the only
    // source of degradedFills, and stats() is idempotent.
    EXPECT_EQ(llc.precise().stats().degradedFills, 0u);
    EXPECT_EQ(llc.doppelganger().stats().degradedFills, 0u);
    const u64 firstRead = llc.stats().degradedFills;
    EXPECT_EQ(llc.stats().degradedFills, firstRead);
}

TEST(FaultStress, UnifiedGuardrailInsertsPrecise)
{
    MainMemory mem;
    ApproxRegistry registry;
    ApproxRegion region;
    region.base = 0x0;
    region.size = 1024 * 0x40;
    registry.add(region);

    DoppConfig cfg = smallConfig();
    cfg.unified = true;
    cfg.mapBits = 4; // coarse bins: joins substitute large errors
    DoppelgangerCache cache(mem, cfg, &registry);

    QorConfig qc;
    qc.budget = 0.001;
    qc.window = 8;
    qc.minDwell = 4;
    QorGuardrail g(qc);
    cache.setGuardrail(&g);

    Rng rng(6);
    BlockData buf;
    std::string why;
    for (u64 i = 0; i < 2000; ++i) {
        const Addr addr = rng.below(512) * 0x40;
        seedBlock(mem, addr, static_cast<float>(rng.uniform()));
        cache.fetch(addr, buf.data());
    }
    EXPECT_GT(g.degradationCount(), 0u);
    EXPECT_GT(cache.stats().degradedFills, 0u);
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
}

TEST(FaultHarness, CampaignIsDeterministic)
{
    RunConfig cfg;
    cfg.kind = LlcKind::SplitDopp;
    cfg.workload.scale = 0.05;
    cfg.fault.seed = 0xcafe;
    cfg.fault.memoryRate = 1e-2;
    cfg.fault.dataRate = 1e-2;
    cfg.fault.tagMetaRate = 1e-2;
    cfg.fault.mtagMetaRate = 1e-2;
    cfg.qor.budget = 0.05;

    const RunResult a = runWorkload("blackscholes", cfg);
    const RunResult b = runWorkload("blackscholes", cfg);

    EXPECT_GT(a.fault.totalInjected(), 0u);
    ASSERT_EQ(a.faultTrace.size(), b.faultTrace.size());
    for (size_t i = 0; i < a.faultTrace.size(); ++i) {
        EXPECT_EQ(a.faultTrace[i].op, b.faultTrace[i].op);
        EXPECT_EQ(a.faultTrace[i].domain, b.faultTrace[i].domain);
        EXPECT_EQ(a.faultTrace[i].entry, b.faultTrace[i].entry);
        EXPECT_EQ(a.faultTrace[i].bit, b.faultTrace[i].bit);
    }
    ASSERT_EQ(a.output.size(), b.output.size());
    for (size_t i = 0; i < a.output.size(); ++i)
        EXPECT_DOUBLE_EQ(a.output[i], b.output[i]);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.guardrailDegradations, b.guardrailDegradations);
    for (const LlcStatField &f : llcStatFields())
        EXPECT_EQ(f.value(a.llc), f.value(b.llc)) << f.name;
}

TEST(FaultHarness, GuardrailReportsDegradationIntervals)
{
    RunConfig cfg;
    cfg.kind = LlcKind::UniDopp;
    cfg.workload.scale = 0.05;
    cfg.fault.dataRate = 0.05;
    cfg.fault.tagMetaRate = 0.01;
    cfg.fault.mtagMetaRate = 0.01;
    cfg.qor.budget = 0.0005;
    cfg.qor.window = 16;
    cfg.qor.minDwell = 8;

    const RunResult r = runWorkload("kmeans", cfg);
    EXPECT_GT(r.fault.totalInjected(), 0u);
    EXPECT_GT(r.guardrailDegradations, 0u);
    EXPECT_GT(r.llc.degradedFills, 0u);
    EXPECT_EQ(r.degradedIntervals.empty(),
              r.guardrailDegradations == 0);
    u64 sum = 0;
    for (const auto &iv : r.degradedIntervals) {
        EXPECT_GE(iv.endOp, iv.beginOp);
        sum += iv.endOp - iv.beginOp;
    }
    EXPECT_EQ(sum, r.guardrailDegradedOps);
}

} // namespace dopp
