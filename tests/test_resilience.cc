/**
 * @file
 * Campaign resilience tests (DESIGN.md §11): journal record round-trip
 * and corruption tolerance, config fingerprints, checkpoint/resume
 * equivalence (a campaign killed after any number of completed runs
 * and resumed at any job count must produce bit-identical final
 * results to an uninterrupted jobs=1 execution), per-run watchdog
 * timeouts, retry with backoff, and the graceful-shutdown signal
 * handler.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/batch_runner.hh"
#include "harness/journal.hh"
#include "harness/results_io.hh"
#include "util/fileio.hh"

namespace dopp
{

namespace
{

RunConfig
tinyConfig(const std::string &workload, LlcKind kind,
           double scale = 0.03)
{
    RunConfig cfg;
    cfg.workloadName = workload;
    cfg.kind = kind;
    cfg.workload.scale = scale;
    return cfg;
}

/** A fresh temp path that is deleted when the holder dies. */
struct TempPath
{
    std::string path;

    TempPath()
    {
        char buf[] = "/tmp/doppjournal-XXXXXX";
        const int fd = mkstemp(buf);
        EXPECT_GE(fd, 0);
        ::close(fd);
        path = buf;
    }

    ~TempPath() { std::remove(path.c_str()); }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** The 200-config campaign of the resume-equivalence suite: four
 * workload/organization variants, each instance with its own seed so
 * every fingerprint is distinct. */
std::vector<RunConfig>
campaign200()
{
    const RunConfig variants[] = {
        tinyConfig("kmeans", LlcKind::Baseline, 0.01),
        tinyConfig("kmeans", LlcKind::SplitDopp, 0.01),
        tinyConfig("blackscholes", LlcKind::UniDopp, 0.01),
        tinyConfig("inversek2j", LlcKind::Bdi, 0.01),
    };
    std::vector<RunConfig> configs;
    configs.reserve(200);
    for (u64 i = 0; i < 200; ++i) {
        RunConfig cfg = variants[i % 4];
        cfg.workload.seed = 1000 + i;
        configs.push_back(std::move(cfg));
    }
    return configs;
}

} // namespace

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

TEST(Journal, FingerprintIsDeterministicAndDiscriminating)
{
    const RunConfig base = tinyConfig("kmeans", LlcKind::SplitDopp);
    const std::string fp = configFingerprint(base);

    // Format: "<workload>/<organization>@<16 hex>".
    EXPECT_EQ(fp.rfind("kmeans/split-doppelganger@", 0), 0u);
    EXPECT_EQ(fp.size(),
              std::string("kmeans/split-doppelganger@").size() + 16);

    // Same config, same fingerprint.
    EXPECT_EQ(configFingerprint(base), fp);

    // Every result-affecting field moves the fingerprint.
    RunConfig c = base;
    c.workload.seed += 1;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.mapBits = 10;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.dataFraction = 0.5;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.fault.dataRate = 0.01;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.qor.budget = 0.001;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.kind = LlcKind::UniDopp;
    EXPECT_NE(configFingerprint(c), fp);

    // Observation hooks and the abort flag never affect results, so
    // they must not move the fingerprint (hook-carrying configs are
    // re-executed by policy, not by fingerprint mismatch).
    c = base;
    c.snapshotPeriod = 1000;
    c.onSnapshot = [](const Snapshot &) {};
    c.tracePath = "/tmp/some-trace";
    std::atomic<bool> flag{false};
    c.abortFlag = &flag;
    EXPECT_EQ(configFingerprint(c), fp);
    EXPECT_FALSE(configResumable(c));
    EXPECT_TRUE(configResumable(base));
}

TEST(Journal, FingerprintDistinguishesMemoryTierFields)
{
    RunConfig base = tinyConfig("kmeans", LlcKind::Baseline);
    base.memTier = defaultMemTier();
    const std::string fp = configFingerprint(base);
    EXPECT_EQ(configFingerprint(base), fp);

    // A flat-memory config fingerprints differently from a tiered one.
    RunConfig c = tinyConfig("kmeans", LlcKind::Baseline);
    EXPECT_NE(configFingerprint(c), fp);

    // Every per-partition field moves the fingerprint.
    c = base;
    c.memTier.partitions[1].bitErrorRate *= 10.0;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[1].refreshFaultRate *= 10.0;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[1].refreshIntervalAccesses = 128;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[2].readLatency += 1;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[2].writeLatency += 1;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[2].writeBufferDepth += 1;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[2].bufferedWriteLatency += 1;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[0].readEnergyPj += 1.0;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[0].writeEnergyPj += 1.0;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[0].standbyPowerMw += 1.0;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[0].kind = MemPartitionKind::Nvm;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions[0].name = "renamed";
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.memTier.partitions.pop_back();
    EXPECT_NE(configFingerprint(c), fp);

    // The cross-tier guardrail knobs are result-affecting too.
    c = base;
    c.qor.migrateFactor = 1.5;
    EXPECT_NE(configFingerprint(c), fp);
    c = base;
    c.qor.migrateDwell = 99;
    EXPECT_NE(configFingerprint(c), fp);

    // The abort-poll granularity is observation-only: excluded.
    c = base;
    c.abortPollAccesses = 64;
    EXPECT_EQ(configFingerprint(c), fp);
}

// ---------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------

TEST(Journal, RecordRoundTripsBitExactly)
{
    // A faulted + guardrailed split run exercises every compat view.
    RunConfig cfg = tinyConfig("blackscholes", LlcKind::SplitDopp);
    cfg.fault.dataRate = 0.01;
    cfg.fault.tagMetaRate = 0.01;
    cfg.qor.budget = 0.001;
    cfg.qor.window = 16;
    cfg.qor.minDwell = 8;
    const RunResult live = runWorkload(cfg);
    const std::string fp = configFingerprint(cfg);

    const std::string line = journalRecordJson(fp, live);
    std::string fpBack;
    RunResult back;
    std::string why;
    ASSERT_TRUE(parseJournalRecord(line, fpBack, back, why)) << why;

    EXPECT_EQ(fpBack, fp);
    EXPECT_FALSE(back.failed);
    EXPECT_EQ(back.workload, live.workload);
    EXPECT_EQ(back.organization, live.organization);

    // The authoritative snapshot survives exactly — so the CSV row
    // (built purely from it) is byte-identical.
    EXPECT_EQ(back.stats, live.stats);
    EXPECT_EQ(runResultCsvRow(back), runResultCsvRow(live));

    // Output vector and the typed compatibility views.
    EXPECT_EQ(back.output, live.output);
    EXPECT_EQ(back.runtime, live.runtime);
    EXPECT_EQ(back.tagsPerDataEntry, live.tagsPerDataEntry);
    EXPECT_EQ(back.memReads, live.memReads);
    EXPECT_EQ(back.memWrites, live.memWrites);
    for (const LlcStatField &f : llcStatFields()) {
        SCOPED_TRACE(f.name);
        EXPECT_EQ(f.get(back.llc), f.get(live.llc));
        EXPECT_EQ(f.get(back.preciseHalf), f.get(live.preciseHalf));
        EXPECT_EQ(f.get(back.doppHalf), f.get(live.doppHalf));
    }
    EXPECT_EQ(back.hierarchy.accesses, live.hierarchy.accesses);
    EXPECT_EQ(back.hierarchy.l1Hits, live.hierarchy.l1Hits);
    EXPECT_EQ(back.hierarchy.l2Misses, live.hierarchy.l2Misses);
    for (unsigned d = 0; d < faultDomainCount; ++d)
        EXPECT_EQ(back.fault.injected[d], live.fault.injected[d]);
    EXPECT_EQ(back.fault.detected, live.fault.detected);
    EXPECT_EQ(back.guardrailDegradations, live.guardrailDegradations);
    EXPECT_EQ(back.guardrailDegradedOps, live.guardrailDegradedOps);
    EXPECT_EQ(back.guardrailEstimate, live.guardrailEstimate);
    EXPECT_EQ(back.doppConfig.tagEntries, live.doppConfig.tagEntries);
    EXPECT_EQ(back.doppConfig.dataEntries,
              live.doppConfig.dataEntries);
    EXPECT_EQ(back.doppConfig.mapBits, live.doppConfig.mapBits);
    EXPECT_EQ(back.doppConfig.unified, live.doppConfig.unified);
}

TEST(Journal, MissingFileLoadsEmpty)
{
    const LoadedJournal j =
        loadJournal("/tmp/dopp-definitely-not-a-journal.jsonl");
    EXPECT_TRUE(j.records.empty());
    EXPECT_EQ(j.recordsLoaded, 0u);
    EXPECT_EQ(j.recordsDiscarded, 0u);
    EXPECT_EQ(j.bytes, 0u);
}

TEST(Journal, TruncatedLastLineIsDiscarded)
{
    const RunConfig cfg = tinyConfig("kmeans", LlcKind::Baseline);
    const RunResult r = runWorkload(cfg);
    const std::string a =
        journalRecordJson(configFingerprint(cfg), r);

    RunConfig cfg2 = cfg;
    cfg2.workload.seed = 777;
    const std::string b =
        journalRecordJson(configFingerprint(cfg2), runWorkload(cfg2));

    TempPath tmp;
    {
        std::ofstream out(tmp.path, std::ios::binary);
        out << a;
        out << b.substr(0, b.size() / 2); // crash mid-write
    }
    const LoadedJournal j = loadJournal(tmp.path);
    EXPECT_EQ(j.recordsLoaded, 1u);
    EXPECT_EQ(j.recordsDiscarded, 1u);
    ASSERT_EQ(j.records.size(), 1u);
    EXPECT_EQ(j.records.count(configFingerprint(cfg)), 1u);
}

TEST(Journal, UnknownSchemaIsDiscarded)
{
    const RunConfig cfg = tinyConfig("kmeans", LlcKind::Baseline);
    const std::string fp = configFingerprint(cfg);
    const std::string good = journalRecordJson(fp, runWorkload(cfg));

    // An unknown top-level column: a future schema we must not guess
    // our way through.
    std::string extraColumn = good;
    extraColumn.insert(extraColumn.find(",\"fp\""),
                       ",\"futureField\":42");
    // An unknown schema version.
    std::string badVersion = good;
    badVersion.replace(badVersion.find("{\"v\":1"), 6, "{\"v\":9");

    TempPath tmp;
    {
        std::ofstream out(tmp.path, std::ios::binary);
        out << extraColumn << badVersion << good;
    }
    const LoadedJournal j = loadJournal(tmp.path);
    EXPECT_EQ(j.recordsLoaded, 1u);
    EXPECT_EQ(j.recordsDiscarded, 2u);
    EXPECT_EQ(j.records.count(fp), 1u);
}

TEST(Journal, DuplicateFingerprintKeepsLastRecord)
{
    const RunConfig cfg = tinyConfig("kmeans", LlcKind::Baseline);
    const std::string fp = configFingerprint(cfg);
    RunResult r = runWorkload(cfg);
    const std::string first = journalRecordJson(fp, r);
    r.output.push_back(123.5); // distinguishable later record
    const std::string second = journalRecordJson(fp, r);

    TempPath tmp;
    {
        std::ofstream out(tmp.path, std::ios::binary);
        out << first << second;
    }
    const LoadedJournal j = loadJournal(tmp.path);
    EXPECT_EQ(j.recordsLoaded, 2u);
    EXPECT_EQ(j.recordsDiscarded, 0u);
    ASSERT_EQ(j.records.size(), 1u);
    EXPECT_EQ(j.records.at(fp).output.back(), 123.5);
}

// ---------------------------------------------------------------------
// Checkpoint/resume
// ---------------------------------------------------------------------

TEST(Resilience, SecondCampaignResumesEverything)
{
    const std::vector<RunConfig> configs = {
        tinyConfig("kmeans", LlcKind::Baseline),
        tinyConfig("jpeg", LlcKind::UniDopp),
    };
    TempPath journal;

    BatchOptions opt;
    opt.jobs = 1;
    const BatchOutcome first =
        runBatchResumable(configs, journal.path, opt);
    EXPECT_EQ(first.runsExecuted, 2u);
    EXPECT_EQ(first.runsResumed, 0u);
    EXPECT_EQ(first.runsFailed, 0u);

    size_t resumedSeen = 0;
    BatchOptions opt2;
    opt2.jobs = 1;
    opt2.onProgress = [&](const BatchProgress &p) {
        EXPECT_TRUE(p.resumed);
        EXPECT_FALSE(p.result.failed);
        ++resumedSeen;
    };
    const BatchOutcome second =
        runBatchResumable(configs, journal.path, opt2);
    EXPECT_EQ(second.runsExecuted, 0u);
    EXPECT_EQ(second.runsResumed, 2u);
    EXPECT_EQ(resumedSeen, 2u);
    for (size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(runResultCsvRow(first.results[i]),
                  runResultCsvRow(second.results[i]));
        EXPECT_EQ(first.results[i].output, second.results[i].output);
    }
}

TEST(Resilience, ResumeEquivalenceAtEveryCutPoint)
{
    // The acceptance bar: a 200-config campaign killed after
    // N ∈ {0, 1, half, all} completed runs and resumed at jobs=4
    // must produce a final CSV byte-identical to an uninterrupted
    // jobs=1 execution.
    const std::vector<RunConfig> configs = campaign200();

    BatchOptions serial;
    serial.jobs = 1;
    const std::vector<RunResult> reference =
        runBatch(configs, serial);
    TempPath referenceCsv;
    writeResultsCsv(referenceCsv.path, reference);
    const std::string referenceBytes = readFile(referenceCsv.path);

    for (size_t cut : {size_t{0}, size_t{1}, size_t{100},
                       size_t{200}}) {
        SCOPED_TRACE("cut after " + std::to_string(cut) + " runs");
        TempPath journal;

        // Phase 1: the campaign dies after `cut` completed runs —
        // the cancel flag stands in for the kill, since both leave
        // the same on-disk state: a journal holding exactly the
        // completed runs.
        std::atomic<bool> cancel{cut == 0};
        BatchOptions interrupted;
        interrupted.jobs = 1;
        interrupted.cancel = &cancel;
        interrupted.onProgress = [&](const BatchProgress &p) {
            if (!p.result.failed && p.completed >= cut)
                cancel.store(true, std::memory_order_release);
        };
        const BatchOutcome partial =
            runBatchResumable(configs, journal.path, interrupted);
        if (cut < configs.size()) {
            EXPECT_TRUE(partial.interrupted);
        }
        EXPECT_EQ(partial.runsExecuted,
                  std::min(cut, configs.size()));

        // Phase 2: resume with a wider pool.
        BatchOptions resumed;
        resumed.jobs = 4;
        const BatchOutcome full =
            runBatchResumable(configs, journal.path, resumed);
        EXPECT_EQ(full.runsResumed, cut);
        EXPECT_EQ(full.runsExecuted, configs.size() - cut);
        EXPECT_EQ(full.runsFailed, 0u);
        EXPECT_FALSE(full.interrupted);

        TempPath resumedCsv;
        writeResultsCsv(resumedCsv.path, full.results);
        EXPECT_EQ(readFile(resumedCsv.path), referenceBytes);
    }
}

TEST(Resilience, DuplicateConfigsShareOneJournalRecord)
{
    const std::vector<RunConfig> configs(
        4, tinyConfig("kmeans", LlcKind::Baseline));
    TempPath journal;
    BatchOptions opt;
    opt.jobs = 2;
    const BatchOutcome first =
        runBatchResumable(configs, journal.path, opt);
    EXPECT_EQ(first.runsExecuted, 4u);

    // All four runs share a fingerprint, so the journal holds one
    // record — and by the determinism contract it stands in for any
    // of them.
    const LoadedJournal j = loadJournal(journal.path);
    EXPECT_EQ(j.recordsLoaded, 1u);

    const BatchOutcome second =
        runBatchResumable(configs, journal.path, opt);
    EXPECT_EQ(second.runsResumed, 4u);
    EXPECT_EQ(second.runsExecuted, 0u);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(runResultCsvRow(second.results[i]),
                  runResultCsvRow(first.results[i]));
    }
}

TEST(Resilience, CorruptedJournalRecordsReRun)
{
    const std::vector<RunConfig> configs = {
        tinyConfig("kmeans", LlcKind::Baseline),
        tinyConfig("jpeg", LlcKind::UniDopp),
        tinyConfig("blackscholes", LlcKind::SplitDopp),
    };
    TempPath journal;
    BatchOptions opt;
    opt.jobs = 1;
    const BatchOutcome clean =
        runBatchResumable(configs, journal.path, opt);
    EXPECT_EQ(clean.runsExecuted, 3u);

    // Truncate the final record mid-line: the crash-window case.
    std::string contents = readFile(journal.path);
    const size_t lastLine =
        contents.rfind('\n', contents.size() - 2) + 1;
    contents.resize(lastLine + (contents.size() - lastLine) / 2);
    {
        std::ofstream out(journal.path,
                          std::ios::binary | std::ios::trunc);
        out << contents;
    }

    const BatchOutcome recovered =
        runBatchResumable(configs, journal.path, opt);
    EXPECT_EQ(recovered.runsResumed, 2u);
    EXPECT_EQ(recovered.runsExecuted, 1u); // the corrupted one
    EXPECT_EQ(recovered.runsFailed, 0u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(runResultCsvRow(recovered.results[i]),
                  runResultCsvRow(clean.results[i]));
    }
}

TEST(Resilience, HookConfigsReExecuteButStillJournal)
{
    // Figure benches build their output from snapshot hooks, which a
    // journal cannot replay: hook-carrying configs must re-execute on
    // every campaign. Their records are still written, so the same
    // config *without* hooks can resume from them.
    RunConfig hooked = tinyConfig("kmeans", LlcKind::SplitDopp);
    hooked.snapshotPeriod = 1000;
    std::atomic<u64> snapshots{0};
    hooked.onSnapshot = [&](const Snapshot &) { ++snapshots; };

    TempPath journal;
    BatchOptions opt;
    opt.jobs = 1;
    const BatchOutcome first =
        runBatchResumable({hooked}, journal.path, opt);
    EXPECT_EQ(first.runsExecuted, 1u);
    const u64 firstSnapshots = snapshots.load();
    EXPECT_GT(firstSnapshots, 0u);

    const BatchOutcome second =
        runBatchResumable({hooked}, journal.path, opt);
    EXPECT_EQ(second.runsResumed, 0u);
    EXPECT_EQ(second.runsExecuted, 1u);
    EXPECT_EQ(snapshots.load(), 2 * firstSnapshots) <<
        "hook did not re-fire on resume";

    RunConfig bare = tinyConfig("kmeans", LlcKind::SplitDopp);
    const BatchOutcome third =
        runBatchResumable({bare}, journal.path, opt);
    EXPECT_EQ(third.runsResumed, 1u);
    EXPECT_EQ(third.runsExecuted, 0u);
    EXPECT_EQ(runResultCsvRow(third.results[0]),
              runResultCsvRow(first.results[0]));
}

TEST(Resilience, CancelledRunsAreReportedAndNotJournaled)
{
    const std::vector<RunConfig> configs(
        3, tinyConfig("kmeans", LlcKind::Baseline));
    std::atomic<bool> cancel{true};
    TempPath journal;

    size_t reported = 0;
    BatchOptions opt;
    opt.jobs = 1;
    opt.cancel = &cancel;
    opt.onProgress = [&](const BatchProgress &p) {
        EXPECT_TRUE(p.result.failed);
        EXPECT_EQ(p.result.error, "cancelled");
        EXPECT_FALSE(p.resumed);
        ++reported;
    };
    const BatchOutcome out =
        runBatchResumable(configs, journal.path, opt);
    EXPECT_EQ(reported, 3u); // cancelled runs still report progress
    EXPECT_EQ(out.runsFailed, 3u);
    EXPECT_TRUE(out.interrupted);
    EXPECT_EQ(loadJournal(journal.path).recordsLoaded, 0u);
}

// ---------------------------------------------------------------------
// Watchdog and retry
// ---------------------------------------------------------------------

TEST(Resilience, WatchdogTimesOutWedgedRunWithoutKillingPool)
{
    // The wedged run sleeps 600 ms of wall time in its first snapshot
    // hook, so it always overruns the 500 ms deadline regardless of
    // how fast (or how loaded) the host is; the abort lands at the
    // next cooperative poll after the hook returns.  The pool-mate is
    // a ~10 ms run with a 50x margin against the shared deadline, so
    // it must complete undisturbed even on a heavily loaded machine.
    std::vector<RunConfig> configs;
    configs.push_back(tinyConfig("kmeans", LlcKind::Baseline, 0.05));
    configs[0].snapshotPeriod = 64;
    bool slept = false;
    configs[0].onSnapshot = [&slept](const Snapshot &) {
        if (!slept) {
            slept = true;
            std::this_thread::sleep_for(std::chrono::milliseconds(600));
        }
    };
    configs.push_back(tinyConfig("kmeans", LlcKind::Baseline, 0.01));

    StatRegistry reg;
    BatchOptions opt;
    opt.jobs = 2;
    opt.runTimeoutMs = 500;
    opt.stats = &reg;
    const std::vector<RunResult> results = runBatch(configs, opt);

    ASSERT_TRUE(results[0].failed);
    EXPECT_EQ(results[0].error, "timeout");
    EXPECT_EQ(results[0].workload, "kmeans");
    ASSERT_FALSE(results[1].failed) << results[1].error;
    EXPECT_GT(results[1].runtime, 0u);

    const StatSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("batch.runsTimedOut"), 1u);
    EXPECT_EQ(snap.counter("batch.runsExecuted"), 2u);
    EXPECT_EQ(snap.counter("batch.runsFailed"), 1u);
    EXPECT_EQ(snap.counter("batch.runsRetried"), 0u);
}

TEST(Resilience, TimeoutRetriesWithBackoffThenFails)
{
    std::vector<RunConfig> configs;
    configs.push_back(tinyConfig("kmeans", LlcKind::Baseline, 0.5));

    StatRegistry reg;
    BatchOptions opt;
    opt.jobs = 1;
    opt.runTimeoutMs = 1;
    opt.maxRetries = 2;
    opt.retryBackoffMs = 1;
    opt.stats = &reg;
    const std::vector<RunResult> results = runBatch(configs, opt);

    ASSERT_TRUE(results[0].failed);
    EXPECT_EQ(results[0].error, "timeout");
    const StatSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("batch.runsExecuted"), 3u); // 1 + 2 retries
    EXPECT_EQ(snap.counter("batch.runsRetried"), 2u);
    EXPECT_EQ(snap.counter("batch.runsTimedOut"), 3u);
}

TEST(Resilience, TransientFailureRetriesToSuccess)
{
    // A hook that throws exactly once models a transient failure; the
    // retry re-executes from the identical config and succeeds.
    std::atomic<u64> attempts{0};
    RunConfig flaky = tinyConfig("kmeans", LlcKind::Baseline);
    flaky.snapshotPeriod = 1000;
    flaky.onSnapshot = [&](const Snapshot &) {
        if (attempts.fetch_add(1) == 0)
            throw std::runtime_error("transient I/O hiccup");
    };

    StatRegistry reg;
    BatchOptions opt;
    opt.jobs = 1;
    opt.maxRetries = 1;
    opt.retryBackoffMs = 1;
    opt.stats = &reg;
    const std::vector<RunResult> results = runBatch({flaky}, opt);

    ASSERT_FALSE(results[0].failed) << results[0].error;
    EXPECT_GT(results[0].runtime, 0u);
    const StatSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("batch.runsRetried"), 1u);
    EXPECT_EQ(snap.counter("batch.runsExecuted"), 2u);
    EXPECT_EQ(snap.counter("batch.runsFailed"), 0u);
}

TEST(Resilience, CancelledAndUnnamedConfigsNeverRetry)
{
    std::vector<RunConfig> configs;
    configs.push_back(RunConfig{}); // no workloadName

    StatRegistry reg;
    BatchOptions opt;
    opt.jobs = 1;
    opt.maxRetries = 5;
    opt.retryBackoffMs = 1;
    opt.stats = &reg;
    const std::vector<RunResult> results = runBatch(configs, opt);
    EXPECT_TRUE(results[0].failed);
    EXPECT_EQ(reg.snapshot().counter("batch.runsRetried"), 0u);
}

TEST(Resilience, MemTierCampaignResumesBitIdentically)
{
    // Memory-tier runs (per-partition faults + cross-tier guardrail)
    // must journal and resume exactly like any other config: a
    // jobs=2 resume of a partially-journaled campaign reproduces the
    // uninterrupted jobs=1 CSV byte for byte.
    std::vector<RunConfig> configs;
    for (u64 i = 0; i < 6; ++i) {
        RunConfig cfg = tinyConfig(
            i % 2 ? "blackscholes" : "kmeans",
            i % 2 ? LlcKind::SplitDopp : LlcKind::Baseline, 0.02);
        cfg.workload.seed = 7000 + i;
        cfg.memTier = defaultMemTier(1e-3, 1e-3);
        cfg.qor.budget = 0.01;
        cfg.qor.migrateFactor = 1.5;
        cfg.qor.migrateDwell = 32;
        configs.push_back(std::move(cfg));
    }

    BatchOptions serial;
    serial.jobs = 1;
    const std::vector<RunResult> reference =
        runBatch(configs, serial);
    TempPath referenceCsv;
    writeResultsCsv(referenceCsv.path, reference);
    const std::string referenceBytes = readFile(referenceCsv.path);

    TempPath journal;
    std::atomic<bool> cancel{false};
    BatchOptions interrupted;
    interrupted.jobs = 1;
    interrupted.cancel = &cancel;
    interrupted.onProgress = [&](const BatchProgress &p) {
        if (!p.result.failed && p.completed >= 3)
            cancel.store(true, std::memory_order_release);
    };
    const BatchOutcome partial =
        runBatchResumable(configs, journal.path, interrupted);
    EXPECT_EQ(partial.runsExecuted, 3u);

    BatchOptions resumed;
    resumed.jobs = 2;
    const BatchOutcome full =
        runBatchResumable(configs, journal.path, resumed);
    EXPECT_EQ(full.runsResumed, 3u);
    EXPECT_EQ(full.runsExecuted, 3u);
    EXPECT_EQ(full.runsFailed, 0u);

    TempPath resumedCsv;
    writeResultsCsv(resumedCsv.path, full.results);
    EXPECT_EQ(readFile(resumedCsv.path), referenceBytes);
}

TEST(Resilience, BatchAbortPollIntervalIsPlumbedToRuns)
{
    // With a 1 ms deadline the watchdog raises the flag almost
    // immediately; a run that would finish well under the default
    // 4096-access poll granularity still aborts when the batch
    // tightens the poll to every 16 accesses, and the same run
    // completes when the poll interval is loosened beyond the run's
    // access count (the flag is simply never observed).
    RunConfig cfg = tinyConfig("kmeans", LlcKind::Baseline, 0.5);

    StatRegistry tightReg;
    BatchOptions tight;
    tight.jobs = 1;
    tight.runTimeoutMs = 1;
    tight.abortPollAccesses = 16;
    tight.stats = &tightReg;
    const std::vector<RunResult> aborted = runBatch({cfg}, tight);
    ASSERT_TRUE(aborted[0].failed);
    EXPECT_EQ(aborted[0].error, "timeout");
    EXPECT_EQ(tightReg.snapshot().counter("batch.runsTimedOut"), 1u);

    BatchOptions loose;
    loose.jobs = 1;
    loose.runTimeoutMs = 1;
    loose.abortPollAccesses = u64{1} << 40; // far past the run's end
    const std::vector<RunResult> finished =
        runBatch({tinyConfig("kmeans", LlcKind::Baseline, 0.02)},
                 loose);
    EXPECT_FALSE(finished[0].failed) << finished[0].error;
}

TEST(Resilience, JournalBytesCounterTracksAppends)
{
    const std::vector<RunConfig> configs = {
        tinyConfig("kmeans", LlcKind::Baseline),
        tinyConfig("jpeg", LlcKind::UniDopp),
    };
    TempPath journal;
    StatRegistry reg;
    BatchOptions opt;
    opt.jobs = 1;
    opt.stats = &reg;
    runBatchResumable(configs, journal.path, opt);

    const u64 counted = reg.snapshot().counter("batch.journalBytes");
    EXPECT_GT(counted, 0u);
    EXPECT_EQ(counted, fileSizeBytes(journal.path));
}

// ---------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------

TEST(ResilienceDeathTest, EmptyJournalPathIsFatal)
{
    EXPECT_EXIT(
        runBatchResumable({tinyConfig("kmeans", LlcKind::Baseline)},
                          "", {}),
        ::testing::ExitedWithCode(1), "empty journal path");
}

TEST(ResilienceDeathTest, SignalHandlerFlipsFlagThenRestoresDefault)
{
    // In the child: the first SIGTERM is caught (flag set, default
    // disposition restored), the second kills the process — exactly
    // the graceful-then-forceful contract.
    EXPECT_EXIT(
        {
            const std::atomic<bool> *flag =
                installBatchSignalHandler();
            std::raise(SIGTERM);
            if (!flag->load())
                _exit(3); // handler did not run
            std::raise(SIGTERM);
            _exit(4); // second signal should have killed us
        },
        ::testing::KilledBySignal(SIGTERM), "");
}

} // namespace dopp

