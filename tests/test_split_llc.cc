/**
 * @file
 * Tests for the split precise + Doppelgänger LLC organization:
 * registry-driven routing, stat aggregation, hook propagation.
 */

#include <gtest/gtest.h>

#include "core/split_llc.hh"

namespace dopp
{

namespace
{

class SplitLlcTest : public ::testing::Test
{
  protected:
    SplitLlcTest()
    {
        ApproxRegion r;
        r.base = approxBase;
        r.size = 1 << 20;
        r.type = ElemType::F32;
        r.minValue = 0.0;
        r.maxValue = 1.0;
        r.name = "approx";
        reg.add(r);

        SplitLlcConfig cfg;
        cfg.preciseBytes = 64 * 1024;
        cfg.dopp.tagEntries = 256;
        cfg.dopp.dataEntries = 64;
        cfg.dopp.dataWays = 4;
        llc = std::make_unique<SplitLlc>(mem, cfg, reg);
    }

    void
    seedBlock(Addr addr, float value)
    {
        BlockData b;
        for (unsigned i = 0; i < 16; ++i)
            setBlockElement(b.data(), ElemType::F32, i,
                            static_cast<double>(value));
        mem.poke(addr, b.data(), blockBytes);
    }

    static constexpr Addr approxBase = 0x100000;
    static constexpr Addr preciseBase = 0x800000;

    MainMemory mem;
    ApproxRegistry reg;
    std::unique_ptr<SplitLlc> llc;
    BlockData buf;
};

} // namespace

TEST_F(SplitLlcTest, ApproxRequestsGoToDoppelganger)
{
    seedBlock(approxBase, 0.5f);
    llc->fetch(approxBase, buf.data());
    EXPECT_EQ(llc->doppelganger().stats().fetches, 1u);
    EXPECT_EQ(llc->precise().stats().fetches, 0u);
    EXPECT_TRUE(llc->doppelganger().contains(approxBase));
}

TEST_F(SplitLlcTest, PreciseRequestsGoToConventional)
{
    seedBlock(preciseBase, 0.5f);
    llc->fetch(preciseBase, buf.data());
    EXPECT_EQ(llc->precise().stats().fetches, 1u);
    EXPECT_EQ(llc->doppelganger().stats().fetches, 0u);
}

TEST_F(SplitLlcTest, PreciseDataIsExact)
{
    seedBlock(preciseBase, 0.123456f);
    llc->fetch(preciseBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(buf.data(), ElemType::F32, 0)),
        0.123456f);
}

TEST_F(SplitLlcTest, ApproxBlocksShareViaDopp)
{
    seedBlock(approxBase, 0.5f);
    seedBlock(approxBase + 0x1000, 0.5f);
    llc->fetch(approxBase, buf.data());
    llc->fetch(approxBase + 0x1000, buf.data());
    EXPECT_TRUE(llc->doppelganger().sameDataEntry(
        approxBase, approxBase + 0x1000));
}

TEST_F(SplitLlcTest, StatsAreAggregated)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    const LlcStats &s = llc->stats();
    EXPECT_EQ(s.fetches, 2u);
    EXPECT_EQ(s.fetchMisses, 2u);
}

TEST_F(SplitLlcTest, WritebackRoutes)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    BlockData w = {};
    llc->writeback(approxBase, w.data());
    llc->writeback(preciseBase, w.data());
    EXPECT_EQ(llc->doppelganger().stats().writebacksIn, 1u);
    EXPECT_EQ(llc->precise().stats().writebacksIn, 1u);
}

TEST_F(SplitLlcTest, ContainsChecksTheRightHalf)
{
    llc->fetch(approxBase, buf.data());
    EXPECT_TRUE(llc->contains(approxBase));
    EXPECT_FALSE(llc->contains(preciseBase));
}

TEST_F(SplitLlcTest, BackInvalidatePropagatesToBothHalves)
{
    unsigned calls = 0;
    llc->setBackInvalidate([&](Addr, u8 *) {
        ++calls;
        return false;
    });
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    llc->flush(); // evictions in both halves fire the hook
    EXPECT_GE(calls, 2u);
}

TEST_F(SplitLlcTest, ForEachBlockCoversBothHalves)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    unsigned approx = 0;
    unsigned precise = 0;
    llc->forEachBlock([&](const LlcBlockInfo &info) {
        (info.approx ? approx : precise) += 1;
    });
    EXPECT_EQ(approx, 1u);
    EXPECT_EQ(precise, 1u);
}

TEST_F(SplitLlcTest, ResetStatsClearsBothHalves)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    llc->resetStats();
    EXPECT_EQ(llc->stats().fetches, 0u);
}

TEST_F(SplitLlcTest, AddStatsSumsFieldwise)
{
    LlcStats a;
    a.fetches = 1;
    a.tagArray.reads = 2;
    a.mapGens = 3;
    LlcStats b;
    b.fetches = 10;
    b.tagArray.reads = 20;
    b.mapGens = 30;
    const LlcStats s = addStats(a, b);
    EXPECT_EQ(s.fetches, 11u);
    EXPECT_EQ(s.tagArray.reads, 22u);
    EXPECT_EQ(s.mapGens, 33u);
}

TEST_F(SplitLlcTest, NameReported)
{
    EXPECT_STREQ(llc->name(), "split-doppelganger");
}


TEST_F(SplitLlcTest, AddStatsCoversEveryCounterExactlyOnce)
{
    // Regression: addStats used to enumerate fields by hand, so a new
    // counter could be silently dropped from the split aggregate. The
    // canonical field table must cover the whole struct (the
    // static_assert in llc.cc ties its length to sizeof(LlcStats)) and
    // addStats must add each field exactly once.
    LlcStats a;
    LlcStats b;
    u64 v = 1;
    for (const LlcStatField &f : llcStatFields()) {
        f.ref(a) = v;
        f.ref(b) = 10 * v;
        ++v;
    }
    const LlcStats s = addStats(a, b);
    v = 1;
    for (const LlcStatField &f : llcStatFields()) {
        EXPECT_EQ(f.value(s), 11 * v) << f.name;
        ++v;
    }
}

TEST_F(SplitLlcTest, RepairAndDegradationCountersAggregateOnce)
{
    // Fault/guardrail counters live in exactly one half (injection and
    // repair in the Doppelgänger half, degraded fills in the split's
    // own stats), so the aggregate equals the sum without double
    // counting, and reading stats() twice must not change it.
    FaultConfig fc;
    fc.dataRate = 0.2;
    fc.tagMetaRate = 0.2;
    fc.mtagMetaRate = 0.2;
    FaultInjector fi(fc);
    llc->setFaultInjector(&fi);
    QorConfig qc;
    qc.budget = 1e-6;
    qc.window = 4;
    qc.minDwell = 2;
    QorGuardrail guard(qc);
    llc->setGuardrail(&guard);

    for (u64 i = 0; i < 600; ++i) {
        const Addr a = approxBase + (i % 200) * blockBytes;
        seedBlock(a, static_cast<float>(i % 7) / 7.0f);
        llc->fetch(a, buf.data());
    }

    const LlcStats once = llc->stats();
    const LlcStats twice = llc->stats();
    for (const LlcStatField &f : llcStatFields())
        EXPECT_EQ(f.value(once), f.value(twice)) << f.name;

    EXPECT_GT(once.faultsInjected, 0u);
    EXPECT_EQ(once.faultsInjected,
              llc->doppelganger().stats().faultsInjected);
    EXPECT_EQ(once.faultsDetected,
              llc->doppelganger().stats().faultsDetected);
    EXPECT_EQ(once.faultsRepaired,
              llc->doppelganger().stats().faultsRepaired);
    EXPECT_EQ(llc->precise().stats().faultsInjected, 0u);
    EXPECT_EQ(llc->precise().stats().degradedFills, 0u);
    EXPECT_EQ(llc->doppelganger().stats().degradedFills, 0u);
}

} // namespace dopp

