/**
 * @file
 * Tests for the split precise + Doppelgänger LLC organization:
 * registry-driven routing, stat aggregation, hook propagation.
 */

#include <gtest/gtest.h>

#include "core/split_llc.hh"

namespace dopp
{

namespace
{

class SplitLlcTest : public ::testing::Test
{
  protected:
    SplitLlcTest()
    {
        ApproxRegion r;
        r.base = approxBase;
        r.size = 1 << 20;
        r.type = ElemType::F32;
        r.minValue = 0.0;
        r.maxValue = 1.0;
        r.name = "approx";
        reg.add(r);

        SplitLlcConfig cfg;
        cfg.preciseBytes = 64 * 1024;
        cfg.dopp.tagEntries = 256;
        cfg.dopp.dataEntries = 64;
        cfg.dopp.dataWays = 4;
        llc = std::make_unique<SplitLlc>(mem, cfg, reg);
    }

    void
    seedBlock(Addr addr, float value)
    {
        BlockData b;
        for (unsigned i = 0; i < 16; ++i)
            setBlockElement(b.data(), ElemType::F32, i,
                            static_cast<double>(value));
        mem.poke(addr, b.data(), blockBytes);
    }

    static constexpr Addr approxBase = 0x100000;
    static constexpr Addr preciseBase = 0x800000;

    MainMemory mem;
    ApproxRegistry reg;
    std::unique_ptr<SplitLlc> llc;
    BlockData buf;
};

} // namespace

TEST_F(SplitLlcTest, ApproxRequestsGoToDoppelganger)
{
    seedBlock(approxBase, 0.5f);
    llc->fetch(approxBase, buf.data());
    EXPECT_EQ(llc->doppelganger().stats().fetches, 1u);
    EXPECT_EQ(llc->precise().stats().fetches, 0u);
    EXPECT_TRUE(llc->doppelganger().contains(approxBase));
}

TEST_F(SplitLlcTest, PreciseRequestsGoToConventional)
{
    seedBlock(preciseBase, 0.5f);
    llc->fetch(preciseBase, buf.data());
    EXPECT_EQ(llc->precise().stats().fetches, 1u);
    EXPECT_EQ(llc->doppelganger().stats().fetches, 0u);
}

TEST_F(SplitLlcTest, PreciseDataIsExact)
{
    seedBlock(preciseBase, 0.123456f);
    llc->fetch(preciseBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    EXPECT_FLOAT_EQ(
        static_cast<float>(blockElement(buf.data(), ElemType::F32, 0)),
        0.123456f);
}

TEST_F(SplitLlcTest, ApproxBlocksShareViaDopp)
{
    seedBlock(approxBase, 0.5f);
    seedBlock(approxBase + 0x1000, 0.5f);
    llc->fetch(approxBase, buf.data());
    llc->fetch(approxBase + 0x1000, buf.data());
    EXPECT_TRUE(llc->doppelganger().sameDataEntry(
        approxBase, approxBase + 0x1000));
}

TEST_F(SplitLlcTest, StatsAreAggregated)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    const LlcStats &s = llc->stats();
    EXPECT_EQ(s.fetches, 2u);
    EXPECT_EQ(s.fetchMisses, 2u);
}

TEST_F(SplitLlcTest, WritebackRoutes)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    BlockData w = {};
    llc->writeback(approxBase, w.data());
    llc->writeback(preciseBase, w.data());
    EXPECT_EQ(llc->doppelganger().stats().writebacksIn, 1u);
    EXPECT_EQ(llc->precise().stats().writebacksIn, 1u);
}

TEST_F(SplitLlcTest, ContainsChecksTheRightHalf)
{
    llc->fetch(approxBase, buf.data());
    EXPECT_TRUE(llc->contains(approxBase));
    EXPECT_FALSE(llc->contains(preciseBase));
}

TEST_F(SplitLlcTest, BackInvalidatePropagatesToBothHalves)
{
    unsigned calls = 0;
    llc->setBackInvalidate([&](Addr, u8 *) {
        ++calls;
        return false;
    });
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    llc->flush(); // evictions in both halves fire the hook
    EXPECT_GE(calls, 2u);
}

TEST_F(SplitLlcTest, ForEachBlockCoversBothHalves)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    unsigned approx = 0;
    unsigned precise = 0;
    llc->forEachBlock([&](const LlcBlockInfo &info) {
        (info.approx ? approx : precise) += 1;
    });
    EXPECT_EQ(approx, 1u);
    EXPECT_EQ(precise, 1u);
}

TEST_F(SplitLlcTest, ResetStatsClearsBothHalves)
{
    llc->fetch(approxBase, buf.data());
    llc->fetch(preciseBase, buf.data());
    llc->resetStats();
    EXPECT_EQ(llc->stats().fetches, 0u);
}

TEST_F(SplitLlcTest, AddStatsSumsFieldwise)
{
    LlcStats a;
    a.fetches = 1;
    a.tagArray.reads = 2;
    a.mapGens = 3;
    LlcStats b;
    b.fetches = 10;
    b.tagArray.reads = 20;
    b.mapGens = 30;
    const LlcStats s = addStats(a, b);
    EXPECT_EQ(s.fetches, 11u);
    EXPECT_EQ(s.tagArray.reads, 22u);
    EXPECT_EQ(s.mapGens, 33u);
}

TEST_F(SplitLlcTest, NameReported)
{
    EXPECT_STREQ(llc->name(), "split-doppelganger");
}

} // namespace dopp
