/**
 * @file
 * Tests for the experiment harness: configuration builders, the
 * runWorkload glue, and report formatting helpers.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/results_io.hh"

namespace dopp
{

TEST(Report, Strfmt)
{
    EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strfmt("%.2f", 1.234), "1.23");
}

TEST(Report, Pct)
{
    EXPECT_EQ(pct(0.379), "37.9%");
    EXPECT_EQ(pct(0.5, 0), "50%");
    EXPECT_EQ(pct(1.0), "100.0%");
}

TEST(Report, Times)
{
    EXPECT_EQ(times(2.55), "2.55x");
    EXPECT_EQ(times(1.407, 1), "1.4x");
}

TEST(Harness, LlcKindNames)
{
    EXPECT_STREQ(llcKindName(LlcKind::Baseline), "baseline");
    EXPECT_STREQ(llcKindName(LlcKind::SplitDopp), "split-doppelganger");
    EXPECT_STREQ(llcKindName(LlcKind::UniDopp), "uniDoppelganger");
    EXPECT_STREQ(llcKindName(LlcKind::Dedup), "dedup");
}

TEST(Harness, SplitDoppConfigMatchesTable1)
{
    RunConfig cfg;
    const DoppConfig d = splitDoppConfig(cfg);
    EXPECT_EQ(d.tagEntries, 16u * 1024); // 1 MB tag-equivalent
    EXPECT_EQ(d.tagWays, 16u);
    EXPECT_EQ(d.dataEntries, 4u * 1024); // 1/4 of the tags
    EXPECT_EQ(d.mapBits, 14u);
    EXPECT_FALSE(d.unified);
}

TEST(Harness, UniDoppConfigMatchesTable1)
{
    RunConfig cfg;
    cfg.dataFraction = 0.5;
    const DoppConfig d = uniDoppConfig(cfg);
    EXPECT_EQ(d.tagEntries, 32u * 1024); // 2 MB tag-equivalent
    EXPECT_EQ(d.dataEntries, 16u * 1024); // 1 MB data array
    EXPECT_TRUE(d.unified);
}

TEST(Harness, ConfigKnobsPropagate)
{
    RunConfig cfg;
    cfg.mapBits = 12;
    cfg.hashMode = MapHashMode::AvgOnly;
    cfg.hashDataSetIndex = false;
    cfg.dataPolicy = ReplPolicy::RANDOM;
    const DoppConfig d = splitDoppConfig(cfg);
    EXPECT_EQ(d.mapBits, 12u);
    EXPECT_EQ(d.hashMode, MapHashMode::AvgOnly);
    EXPECT_FALSE(d.hashDataSetIndex);
    EXPECT_EQ(d.dataPolicy, ReplPolicy::RANDOM);
}

namespace
{

RunConfig
tinyRun(LlcKind kind)
{
    RunConfig cfg;
    cfg.kind = kind;
    cfg.workload.scale = 0.05;
    return cfg;
}

} // namespace

TEST(Harness, BaselineRunProducesStats)
{
    const RunResult r = runWorkload("kmeans", tinyRun(LlcKind::Baseline));
    EXPECT_EQ(r.workload, "kmeans");
    EXPECT_EQ(r.organization, "baseline");
    EXPECT_GT(r.runtime, 0u);
    EXPECT_FALSE(r.output.empty());
    EXPECT_GT(r.llc.fetches, 0u);
    EXPECT_GT(r.hierarchy.accesses, 0u);
    EXPECT_GT(r.offChipTraffic(), 0u);
}

TEST(Harness, RunIsDeterministic)
{
    const RunResult a = runWorkload("jmeint", tinyRun(LlcKind::SplitDopp));
    const RunResult b = runWorkload("jmeint", tinyRun(LlcKind::SplitDopp));
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.llc.fetchMisses, b.llc.fetchMisses);
}

TEST(Harness, SplitRunSeparatesHalves)
{
    const RunResult r =
        runWorkload("jpeg", tinyRun(LlcKind::SplitDopp));
    EXPECT_GT(r.doppHalf.fetches, 0u); // jpeg is ~all approximate
    EXPECT_EQ(r.llc.fetches,
              r.doppHalf.fetches + r.preciseHalf.fetches);
    EXPECT_GT(r.doppHalf.mapGens, 0u);
    EXPECT_GT(r.tagsPerDataEntry, 0.0);
}

TEST(Harness, UniRunReportsDoppConfig)
{
    RunConfig cfg = tinyRun(LlcKind::UniDopp);
    cfg.dataFraction = 0.5;
    const RunResult r = runWorkload("kmeans", cfg);
    EXPECT_TRUE(r.doppConfig.unified);
    EXPECT_EQ(r.doppConfig.dataEntries, 16u * 1024);
}

TEST(Harness, DedupRunWorks)
{
    const RunResult r =
        runWorkload("blackscholes", tinyRun(LlcKind::Dedup));
    EXPECT_EQ(r.organization, "dedup");
    EXPECT_GT(r.llc.fetches, 0u);
}

TEST(Harness, SnapshotHookDelivers)
{
    RunConfig cfg = tinyRun(LlcKind::Baseline);
    cfg.workload.scale = 0.2;
    cfg.snapshotPeriod = 5000;
    unsigned snaps = 0;
    u64 blocks = 0;
    cfg.onSnapshot = [&](const Snapshot &s) {
        ++snaps;
        blocks += s.size();
    };
    runWorkload("jpeg", cfg);
    EXPECT_GT(snaps, 0u);
    EXPECT_GT(blocks, 0u);
}

TEST(Harness, ScaleFromEnvDefaultsToOne)
{
    // (Environment not set in the test harness.)
    EXPECT_GT(workloadScaleFromEnv(), 0.0);
}

// ---------------------------------------------------------------------
// Result export (results_io).
// ---------------------------------------------------------------------

TEST(ResultsIo, CsvRowMatchesHeaderArity)
{
    const RunResult r = runWorkload("kmeans", tinyRun(LlcKind::Baseline));
    const std::string header = runResultCsvHeader(r);
    const std::string row = runResultCsvRow(r);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_NE(row.find("kmeans,baseline"), std::string::npos);
}

TEST(ResultsIo, CsvContainsKeyCounters)
{
    const RunResult r =
        runWorkload("jpeg", tinyRun(LlcKind::SplitDopp));
    const std::string row = runResultCsvRow(r);
    std::ostringstream expect;
    expect << r.runtime;
    EXPECT_NE(row.find(expect.str()), std::string::npos);
    EXPECT_NE(runResultCsvHeader(r).find("llc.dopp.mapGens"),
              std::string::npos);
}

TEST(ResultsIo, WriteCsvFile)
{
    const RunResult r = runWorkload("kmeans", tinyRun(LlcKind::Baseline));
    const std::string path = "/tmp/dopp-results-test.csv";
    writeResultsCsv(path, {r, r});
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    u64 lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 3u); // header + 2 rows
    std::remove(path.c_str());
}

TEST(ResultsIo, JsonIsWellFormedEnough)
{
    const RunResult r = runWorkload("kmeans", tinyRun(LlcKind::Baseline));
    const std::string json = runResultJson(r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"workload\":\"kmeans\""), std::string::npos);
    EXPECT_NE(json.find("\"fetchMisses\":"), std::string::npos);
    // Balanced quotes.
    EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(ResultsIo, WriteJsonFile)
{
    const RunResult r = runWorkload("kmeans", tinyRun(LlcKind::Baseline));
    const std::string path = "/tmp/dopp-results-test.json";
    writeResultsJson(path, {r});
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string all = ss.str();
    EXPECT_EQ(all.front(), '[');
    std::remove(path.c_str());
}

namespace
{

/** Write @p text verbatim to a fresh temp file and return its path. */
std::string
writeTempCsv(const std::string &text)
{
    char buf[] = "/tmp/doppcsv-XXXXXX";
    const int fd = mkstemp(buf);
    EXPECT_GE(fd, 0);
    ::close(fd);
    std::ofstream out(buf);
    out << text;
    return buf;
}

} // namespace

TEST(ResultsIo, LoadCsvRoundTrips)
{
    RunConfig cfg = tinyRun(LlcKind::SplitDopp);
    cfg.fault.dataRate = 0.01;
    cfg.fault.tagMetaRate = 0.01;
    RunResult r = runWorkload("blackscholes", cfg);

    char buf[] = "/tmp/doppcsv-XXXXXX";
    const int fd = mkstemp(buf);
    ASSERT_GE(fd, 0);
    ::close(fd);
    writeResultsCsv(buf, {r});

    const std::vector<LoadedRunRow> rows = loadResultsCsv(buf);
    std::remove(buf);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].workload, "blackscholes");
    EXPECT_EQ(rows[0].organization, r.organization);
    EXPECT_EQ(rows[0].value("run.runtimeCycles"),
              static_cast<double>(r.runtime));
    EXPECT_EQ(rows[0].value("llc.fetches"),
              static_cast<double>(r.llc.fetches));
    EXPECT_EQ(rows[0].value("llc.faultsInjected"),
              static_cast<double>(r.llc.faultsInjected));
    EXPECT_EQ(rows[0].value("llc.faultsRepaired"),
              static_cast<double>(r.llc.faultsRepaired));
}

TEST(ResultsIoDeathTest, LoadMissingFileIsFatal)
{
    EXPECT_EXIT(loadResultsCsv("/tmp/definitely-not-there.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ResultsIoDeathTest, LoadEmptyFileIsFatal)
{
    const std::string path = writeTempCsv("");
    EXPECT_EXIT(loadResultsCsv(path), ::testing::ExitedWithCode(1),
                "line 1: empty file, expected a header row");
    std::remove(path.c_str());
}

TEST(ResultsIoDeathTest, LoadForeignHeaderIsFatal)
{
    const std::string path =
        writeTempCsv("alpha,beta,gamma\n1,2,3\n");
    EXPECT_EXIT(loadResultsCsv(path), ::testing::ExitedWithCode(1),
                "header");
    std::remove(path.c_str());
}

TEST(ResultsIoDeathTest, LoadRowWithMissingCellsIsFatal)
{
    const std::string path = writeTempCsv(
        "workload,organization,runtime_cycles,llc_fetches\n"
        "kmeans,baseline,123\n");
    EXPECT_EXIT(loadResultsCsv(path), ::testing::ExitedWithCode(1),
                "line 2: 3 cells but the header declares 4 columns");
    std::remove(path.c_str());
}

TEST(ResultsIoDeathTest, LoadNonNumericCellIsFatal)
{
    const std::string path = writeTempCsv(
        "workload,organization,runtime_cycles\n"
        "kmeans,baseline,fast\n");
    EXPECT_EXIT(loadResultsCsv(path), ::testing::ExitedWithCode(1),
                "column 'runtime_cycles': 'fast' is not a number");
    std::remove(path.c_str());
}

TEST(ResultsIoDeathTest, MissingColumnLookupIsFatal)
{
    const std::string path = writeTempCsv(
        "workload,organization,runtime_cycles\n"
        "kmeans,baseline,123\n");
    const std::vector<LoadedRunRow> rows = loadResultsCsv(path);
    std::remove(path.c_str());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EXIT(rows[0].value("no_such_column"),
                ::testing::ExitedWithCode(1), "no_such_column");
}

TEST(Harness, FaultCountersReachRunResult)
{
    RunConfig cfg = tinyRun(LlcKind::UniDopp);
    cfg.fault.dataRate = 0.05;
    cfg.fault.tagMetaRate = 0.02;
    cfg.fault.mtagMetaRate = 0.02;
    cfg.qor.budget = 0.001;
    cfg.qor.window = 16;
    cfg.qor.minDwell = 8;
    const RunResult r = runWorkload("kmeans", cfg);

    EXPECT_GT(r.fault.totalInjected(), 0u);
    EXPECT_EQ(r.faultTrace.size(), r.fault.totalInjected());
    EXPECT_EQ(r.llc.faultsDetected, r.fault.detected);
    EXPECT_EQ(r.llc.faultsRepaired, r.fault.repairs);
    EXPECT_EQ(r.llc.repairTagsDropped, r.fault.tagsDropped);
    EXPECT_EQ(r.llc.repairEntriesDropped, r.fault.entriesDropped);
}

} // namespace dopp
