/**
 * @file
 * Tests for the exact-deduplication LLC baseline and the FNV hash.
 */

#include <gtest/gtest.h>

#include "compress/dedup.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

void
seedPattern(MainMemory &mem, Addr addr, u8 first, u8 rest)
{
    BlockData b;
    b.fill(rest);
    b[0] = first;
    mem.poke(addr, b.data(), blockBytes);
}

DedupConfig
smallDedup()
{
    DedupConfig cfg;
    cfg.tagEntries = 64;
    cfg.tagWays = 16;
    cfg.dataEntries = 32;
    cfg.dataWays = 4;
    return cfg;
}

} // namespace

TEST(Fnv, DeterministicAndSensitive)
{
    const u8 a[4] = {1, 2, 3, 4};
    const u8 b[4] = {1, 2, 3, 5};
    EXPECT_EQ(fnv1a64(a, 4), fnv1a64(a, 4));
    EXPECT_NE(fnv1a64(a, 4), fnv1a64(b, 4));
    EXPECT_NE(fnv1a64(a, 4), fnv1a64(a, 3));
}

TEST(DedupLlc, IdenticalBlocksShareOneEntry)
{
    MainMemory mem;
    DedupLlc llc(mem, smallDedup());
    seedPattern(mem, 0x1000, 7, 7);
    seedPattern(mem, 0x2000, 7, 7);
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x2000, buf.data());
    EXPECT_EQ(llc.inner().tagCount(), 2u);
    EXPECT_EQ(llc.inner().dataCount(), 1u);
    EXPECT_TRUE(llc.inner().sameDataEntry(0x1000, 0x2000));
}

TEST(DedupLlc, OneByteDifferencePreventsSharing)
{
    MainMemory mem;
    DedupLlc llc(mem, smallDedup());
    seedPattern(mem, 0x1000, 7, 7);
    seedPattern(mem, 0x2000, 8, 7); // differs in one byte
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x2000, buf.data());
    EXPECT_EQ(llc.inner().dataCount(), 2u);
    EXPECT_FALSE(llc.inner().sameDataEntry(0x1000, 0x2000));
}

TEST(DedupLlc, ReadsAreLossless)
{
    // Dedup never corrupts data: reads return exactly what was stored.
    MainMemory mem;
    DedupLlc llc(mem, smallDedup());
    Rng rng(4);
    BlockData blocks[8];
    for (unsigned k = 0; k < 8; ++k) {
        for (auto &b : blocks[k])
            b = static_cast<u8>(rng.below(4)); // some duplicates likely
        mem.poke(0x1000 + k * blockBytes, blocks[k].data(), blockBytes);
    }
    BlockData buf;
    for (unsigned k = 0; k < 8; ++k)
        llc.fetch(0x1000 + k * blockBytes, buf.data());
    for (unsigned k = 0; k < 8; ++k) {
        llc.fetch(0x1000 + k * blockBytes, buf.data());
        EXPECT_EQ(buf, blocks[k]) << "block " << k;
    }
}

TEST(DedupLlc, WriteUnshares)
{
    MainMemory mem;
    DedupLlc llc(mem, smallDedup());
    seedPattern(mem, 0x1000, 7, 7);
    seedPattern(mem, 0x2000, 7, 7);
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x2000, buf.data());
    ASSERT_TRUE(llc.inner().sameDataEntry(0x1000, 0x2000));

    BlockData w;
    w.fill(9);
    llc.writeback(0x1000, w.data());
    EXPECT_FALSE(llc.inner().sameDataEntry(0x1000, 0x2000));
    llc.fetch(0x1000, buf.data());
    EXPECT_EQ(buf[0], 9);
    llc.fetch(0x2000, buf.data());
    EXPECT_EQ(buf[0], 7);
}

TEST(DedupLlc, FlushWritesDirtyDataExactly)
{
    MainMemory mem;
    DedupLlc llc(mem, smallDedup());
    seedPattern(mem, 0x1000, 1, 1);
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    BlockData w;
    w.fill(0x42);
    llc.writeback(0x1000, w.data());
    llc.flush();
    BlockData back;
    mem.peek(0x1000, back.data(), blockBytes);
    EXPECT_EQ(back, w);
}

TEST(DedupLlc, InvariantsUnderChurn)
{
    MainMemory mem;
    DedupLlc llc(mem, smallDedup());
    Rng rng(6);
    BlockData buf;
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(128) * blockBytes;
        if (rng.below(3) == 0) {
            BlockData w;
            w.fill(static_cast<u8>(rng.below(16)));
            llc.writeback(a, w.data());
        } else {
            llc.fetch(a, buf.data());
        }
    }
    std::string why;
    EXPECT_TRUE(llc.inner().checkInvariants(&why)) << why;
}

TEST(DedupLlc, NameAndStats)
{
    MainMemory mem;
    DedupLlc llc(mem, smallDedup());
    EXPECT_STREQ(llc.name(), "dedup");
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    EXPECT_EQ(llc.stats().fetches, 1u);
    llc.resetStats();
    EXPECT_EQ(llc.stats().fetches, 0u);
}

} // namespace dopp
