/**
 * @file
 * Tests for the B∆I-compressed LLC organization: capacity-in-bytes
 * semantics, lossless service, compression-dependent effective
 * capacity, and eviction/writeback correctness.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>

#include "compress/bdi_llc.hh"
#include "harness/experiment.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

BdiLlcConfig
smallBdi()
{
    BdiLlcConfig cfg;
    cfg.sizeBytes = 16 * 1024; // 4 sets x 4 ways worth of bytes...
    cfg.ways = 4;
    cfg.tagFactor = 2;
    return cfg;
}

/** Block of i32 = base + tiny deltas: compresses to B4D1 (22 B). */
void
seedCompressible(MainMemory &mem, Addr addr, i32 base)
{
    BlockData b;
    for (unsigned i = 0; i < 16; ++i) {
        const i32 v = base + static_cast<i32>(i % 4);
        std::memcpy(b.data() + i * 4, &v, 4);
    }
    mem.poke(addr, b.data(), blockBytes);
}

/** Random incompressible block. */
void
seedRandom(MainMemory &mem, Addr addr, u64 seed)
{
    Rng rng(seed);
    BlockData b;
    for (auto &byte : b)
        byte = static_cast<u8>(rng.below(256));
    mem.poke(addr, b.data(), blockBytes);
}

} // namespace

TEST(BdiLlc, ServesDataLosslessly)
{
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    seedCompressible(mem, 0x1000, 1000000);
    BlockData expect;
    mem.peek(0x1000, expect.data(), blockBytes);

    BlockData buf;
    llc.fetch(0x1000, buf.data());
    EXPECT_EQ(buf, expect);
    llc.fetch(0x1000, buf.data()); // hit path
    EXPECT_EQ(buf, expect);
    EXPECT_EQ(llc.stats().fetchHits, 1u);
}

TEST(BdiLlc, HitPaysDecompressionLatency)
{
    MainMemory mem;
    BdiLlcConfig cfg = smallBdi();
    cfg.hitLatency = 6;
    cfg.decompressLatency = 1;
    BdiLlc llc(mem, cfg, nullptr);
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    const auto r = llc.fetch(0x1000, buf.data());
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 7u);
}

TEST(BdiLlc, CompressibleBlocksExceedNominalWays)
{
    // One set's byte budget is 4 x 64 = 256 B; compressible blocks at
    // ~22 B each allow up to tagFactor x ways = 8 residents.
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    BlockData buf;
    const u32 sets = static_cast<u32>(
        smallBdi().sizeBytes / blockBytes / smallBdi().ways);
    const Addr stride = static_cast<Addr>(sets) * blockBytes;
    for (unsigned k = 0; k < 8; ++k) {
        seedCompressible(mem, k * stride, 5000 + 100 * k);
        llc.fetch(k * stride, buf.data());
    }
    for (unsigned k = 0; k < 8; ++k)
        EXPECT_TRUE(llc.contains(k * stride)) << k;
    EXPECT_GT(llc.compressionRatio(), 2.0);
}

TEST(BdiLlc, IncompressibleBlocksLimitedToWays)
{
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    BlockData buf;
    const u32 sets = static_cast<u32>(
        smallBdi().sizeBytes / blockBytes / smallBdi().ways);
    const Addr stride = static_cast<Addr>(sets) * blockBytes;
    for (unsigned k = 0; k < 8; ++k) {
        seedRandom(mem, k * stride, 77 + k);
        llc.fetch(k * stride, buf.data());
    }
    u64 resident = 0;
    for (unsigned k = 0; k < 8; ++k)
        resident += llc.contains(k * stride) ? 1 : 0;
    EXPECT_EQ(resident, 4u); // byte budget = exactly 4 raw blocks
    EXPECT_NEAR(llc.compressionRatio(), 1.0, 1e-9);
}

TEST(BdiLlc, WritebackGrowsBlockAndEvictsToFit)
{
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    BlockData buf;
    const u32 sets = static_cast<u32>(
        smallBdi().sizeBytes / blockBytes / smallBdi().ways);
    const Addr stride = static_cast<Addr>(sets) * blockBytes;
    // Fill with 8 compressible blocks, then rewrite one incompressible.
    for (unsigned k = 0; k < 8; ++k) {
        seedCompressible(mem, k * stride, 9000 + 10 * k);
        llc.fetch(k * stride, buf.data());
    }
    // Rewriting two blocks incompressible (8 x 22 = 176 B resident;
    // 176 - 2x22 + 2x64 = 260 B > the 256 B budget) must evict.
    Rng rng(5);
    BlockData noisy;
    for (auto &b : noisy)
        b = static_cast<u8>(rng.below(256));
    llc.writeback(6 * stride, noisy.data());
    llc.writeback(7 * stride, noisy.data());

    // The written blocks survive with their new contents; capacity
    // pressure evicted some older residents.
    ASSERT_TRUE(llc.contains(7 * stride));
    llc.fetch(7 * stride, buf.data());
    EXPECT_EQ(buf, noisy);
    u64 resident = 0;
    for (unsigned k = 0; k < 8; ++k)
        resident += llc.contains(k * stride) ? 1 : 0;
    EXPECT_LT(resident, 8u);
}

TEST(BdiLlc, DirtyEvictionReachesMemory)
{
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    BlockData buf;
    llc.fetch(0x2000, buf.data());
    BlockData w;
    w.fill(0x3C);
    llc.writeback(0x2000, w.data());
    llc.flush();
    BlockData back;
    mem.peek(0x2000, back.data(), blockBytes);
    EXPECT_EQ(back, w);
    EXPECT_FALSE(llc.contains(0x2000));
    EXPECT_EQ(llc.blockCount(), 0u);
    EXPECT_EQ(llc.compressedBytes(), 0u);
}

TEST(BdiLlc, BackInvalidationHookFires)
{
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    unsigned calls = 0;
    llc.setBackInvalidate([&](Addr, u8 *) {
        ++calls;
        return false;
    });
    BlockData buf;
    llc.fetch(0x2000, buf.data());
    llc.flush();
    EXPECT_EQ(calls, 1u);
}

TEST(BdiLlc, ForEachBlockAndStats)
{
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x2000, buf.data());
    unsigned visited = 0;
    llc.forEachBlock([&](const LlcBlockInfo &) { ++visited; });
    EXPECT_EQ(visited, 2u);
    EXPECT_EQ(llc.stats().fetches, 2u);
    EXPECT_EQ(llc.blockCount(), 2u);
    EXPECT_STREQ(llc.name(), "bdi");
}

TEST(BdiLlc, RandomChurnStaysConsistent)
{
    // Functional property: reads always reflect the latest write.
    MainMemory mem;
    BdiLlc llc(mem, smallBdi(), nullptr);
    Rng rng(11);
    std::unordered_map<Addr, BlockData> reference;
    BlockData buf;
    for (int i = 0; i < 3000; ++i) {
        const Addr a = rng.below(64) * blockBytes;
        if (rng.below(3) == 0) {
            BlockData w;
            // Mix compressible and incompressible writes.
            if (rng.below(2) == 0) {
                w.fill(static_cast<u8>(rng.below(256)));
            } else {
                for (auto &b : w)
                    b = static_cast<u8>(rng.below(256));
            }
            // Writebacks only make sense for resident blocks in a real
            // hierarchy; emulate by fetching first.
            llc.fetch(a, buf.data());
            llc.writeback(a, w.data());
            reference[a] = w;
        } else {
            llc.fetch(a, buf.data());
            const auto it = reference.find(a);
            if (it != reference.end()) {
                ASSERT_EQ(buf, it->second) << "op " << i;
            }
        }
    }
}

TEST(BdiLlc, HarnessIntegration)
{
    // The Bdi organization runs a real workload losslessly.
    RunConfig cfg;
    cfg.kind = LlcKind::Bdi;
    cfg.workload.scale = 0.05;
    const RunResult bdi = runWorkload("jpeg", cfg);
    cfg.kind = LlcKind::Baseline;
    const RunResult base = runWorkload("jpeg", cfg);
    EXPECT_EQ(bdi.output, base.output);
    EXPECT_EQ(bdi.organization, "bdi");
}

} // namespace dopp
