/**
 * @file
 * Unit tests for the annotation model: element types, region registry,
 * typed block element access (Sec 4 of the paper).
 */

#include <gtest/gtest.h>

#include "sim/approx.hh"
#include "util/types.hh"

namespace dopp
{

TEST(ElemType, Sizes)
{
    EXPECT_EQ(elemSize(ElemType::U8), 1u);
    EXPECT_EQ(elemSize(ElemType::I16), 2u);
    EXPECT_EQ(elemSize(ElemType::I32), 4u);
    EXPECT_EQ(elemSize(ElemType::F32), 4u);
    EXPECT_EQ(elemSize(ElemType::F64), 8u);
}

TEST(ElemType, ElemsPerBlock)
{
    EXPECT_EQ(elemsPerBlock(ElemType::U8), 64u);
    EXPECT_EQ(elemsPerBlock(ElemType::I16), 32u);
    EXPECT_EQ(elemsPerBlock(ElemType::I32), 16u);
    EXPECT_EQ(elemsPerBlock(ElemType::F32), 16u);
    EXPECT_EQ(elemsPerBlock(ElemType::F64), 8u);
}

TEST(ElemType, Bits)
{
    EXPECT_EQ(elemBits(ElemType::U8), 8u);
    EXPECT_EQ(elemBits(ElemType::F32), 32u);
}

TEST(ElemType, Names)
{
    EXPECT_STREQ(elemTypeName(ElemType::U8), "u8");
    EXPECT_STREQ(elemTypeName(ElemType::F64), "f64");
}

class BlockElementTest : public ::testing::TestWithParam<ElemType>
{
};

TEST_P(BlockElementTest, RoundTripInRange)
{
    const ElemType type = GetParam();
    u8 block[blockBytes] = {};
    const unsigned n = elemsPerBlock(type);
    for (unsigned i = 0; i < n; ++i) {
        const double v = static_cast<double>(i % 100);
        setBlockElement(block, type, i, v);
        EXPECT_DOUBLE_EQ(blockElement(block, type, i), v)
            << elemTypeName(type) << " idx " << i;
    }
}

TEST_P(BlockElementTest, LastElementDoesNotOverflowBlock)
{
    const ElemType type = GetParam();
    u8 block[blockBytes + 8] = {};
    block[blockBytes] = 0xAA;
    setBlockElement(block, type, elemsPerBlock(type) - 1, 1.0);
    EXPECT_EQ(block[blockBytes], 0xAA);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, BlockElementTest,
                         ::testing::Values(ElemType::U8, ElemType::I16,
                                           ElemType::I32, ElemType::F32,
                                           ElemType::F64));

TEST(BlockElement, U8Clamping)
{
    u8 block[blockBytes] = {};
    setBlockElement(block, ElemType::U8, 0, 300.0);
    EXPECT_DOUBLE_EQ(blockElement(block, ElemType::U8, 0), 255.0);
    setBlockElement(block, ElemType::U8, 0, -5.0);
    EXPECT_DOUBLE_EQ(blockElement(block, ElemType::U8, 0), 0.0);
}

TEST(BlockElement, I16Clamping)
{
    u8 block[blockBytes] = {};
    setBlockElement(block, ElemType::I16, 0, 1e9);
    EXPECT_DOUBLE_EQ(blockElement(block, ElemType::I16, 0), 32767.0);
    setBlockElement(block, ElemType::I16, 0, -1e9);
    EXPECT_DOUBLE_EQ(blockElement(block, ElemType::I16, 0), -32768.0);
}

TEST(BlockElement, F32PreservesFraction)
{
    u8 block[blockBytes] = {};
    setBlockElement(block, ElemType::F32, 3, 1.5);
    EXPECT_DOUBLE_EQ(blockElement(block, ElemType::F32, 3), 1.5);
}

TEST(BlockElement, NegativeIntegers)
{
    u8 block[blockBytes] = {};
    setBlockElement(block, ElemType::I32, 5, -12345.0);
    EXPECT_DOUBLE_EQ(blockElement(block, ElemType::I32, 5), -12345.0);
}

TEST(ApproxRegion, Contains)
{
    ApproxRegion r;
    r.base = 100;
    r.size = 50;
    EXPECT_TRUE(r.contains(100));
    EXPECT_TRUE(r.contains(149));
    EXPECT_FALSE(r.contains(99));
    EXPECT_FALSE(r.contains(150));
}

TEST(ApproxRegion, SpanNeverZero)
{
    ApproxRegion r;
    r.minValue = 5.0;
    r.maxValue = 5.0;
    EXPECT_GT(r.span(), 0.0);
}

namespace
{

ApproxRegion
makeRegion(Addr base, u64 size, const char *name)
{
    ApproxRegion r;
    r.base = base;
    r.size = size;
    r.type = ElemType::F32;
    r.minValue = 0.0;
    r.maxValue = 1.0;
    r.name = name;
    return r;
}

} // namespace

TEST(ApproxRegistry, FindInRegisteredRegion)
{
    ApproxRegistry reg;
    reg.add(makeRegion(0x1000, 0x100, "a"));
    ASSERT_NE(reg.find(0x1000), nullptr);
    ASSERT_NE(reg.find(0x10FF), nullptr);
    EXPECT_EQ(reg.find(0x0FFF), nullptr);
    EXPECT_EQ(reg.find(0x1100), nullptr);
}

TEST(ApproxRegistry, MultipleRegionsSorted)
{
    ApproxRegistry reg;
    reg.add(makeRegion(0x3000, 0x100, "c"));
    reg.add(makeRegion(0x1000, 0x100, "a"));
    reg.add(makeRegion(0x2000, 0x100, "b"));
    EXPECT_EQ(reg.find(0x1010)->name, "a");
    EXPECT_EQ(reg.find(0x2010)->name, "b");
    EXPECT_EQ(reg.find(0x3010)->name, "c");
    EXPECT_EQ(reg.find(0x1800), nullptr);
    EXPECT_EQ(reg.regions().size(), 3u);
}

TEST(ApproxRegistry, IsApprox)
{
    ApproxRegistry reg;
    reg.add(makeRegion(0x1000, 0x40, "a"));
    EXPECT_TRUE(reg.isApprox(0x1000));
    EXPECT_FALSE(reg.isApprox(0x2000));
}

TEST(ApproxRegistry, Clear)
{
    ApproxRegistry reg;
    reg.add(makeRegion(0x1000, 0x40, "a"));
    reg.clear();
    EXPECT_FALSE(reg.isApprox(0x1000));
    EXPECT_TRUE(reg.regions().empty());
}

TEST(ApproxRegistryDeathTest, OverlapIsFatal)
{
    ApproxRegistry reg;
    reg.add(makeRegion(0x1000, 0x100, "a"));
    EXPECT_EXIT(reg.add(makeRegion(0x1080, 0x100, "b")),
                ::testing::ExitedWithCode(1), "overlap");
}

TEST(ApproxRegistryDeathTest, ZeroSizeIsFatal)
{
    ApproxRegistry reg;
    EXPECT_EXIT(reg.add(makeRegion(0x1000, 0, "z")),
                ::testing::ExitedWithCode(1), "zero size");
}

TEST(ApproxRegistryDeathTest, InvertedRangeIsFatal)
{
    ApproxRegistry reg;
    ApproxRegion r = makeRegion(0x1000, 0x40, "r");
    r.minValue = 2.0;
    r.maxValue = 1.0;
    EXPECT_EXIT(reg.add(r), ::testing::ExitedWithCode(1), "inverted");
}

TEST(ApproxRegistry, AdjacentRegionsAllowed)
{
    ApproxRegistry reg;
    reg.add(makeRegion(0x1000, 0x100, "a"));
    reg.add(makeRegion(0x1100, 0x100, "b"));
    EXPECT_EQ(reg.find(0x10FF)->name, "a");
    EXPECT_EQ(reg.find(0x1100)->name, "b");
}

} // namespace dopp
