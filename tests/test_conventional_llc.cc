/**
 * @file
 * Unit tests for the conventional baseline LLC and the private cache
 * building block.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/llc.hh"
#include "sim/private_cache.hh"

namespace dopp
{

namespace
{

void
seed(MainMemory &mem, Addr addr, u8 value)
{
    BlockData b;
    b.fill(value);
    mem.poke(addr, b.data(), blockBytes);
}

} // namespace

class ConventionalLlcTest : public ::testing::Test
{
  protected:
    ConventionalLlcTest()
        : llc(mem, 64 * 1024, 16, 6, nullptr) // 1024 blocks, 64 sets
    {
    }

    MainMemory mem;
    ConventionalLlc llc;
    BlockData buf;
};

TEST_F(ConventionalLlcTest, MissGoesToMemory)
{
    seed(mem, 0x1000, 0x5A);
    const auto r = llc.fetch(0x1000, buf.data());
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 6u + mem.latency());
    EXPECT_EQ(buf[0], 0x5A);
}

TEST_F(ConventionalLlcTest, HitLatencyIsConfigured)
{
    llc.fetch(0x1000, buf.data());
    const auto r = llc.fetch(0x1000, buf.data());
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 6u);
}

TEST_F(ConventionalLlcTest, WritebackUpdatesAndDirties)
{
    llc.fetch(0x1000, buf.data());
    BlockData w;
    w.fill(0x77);
    llc.writeback(0x1000, w.data());
    llc.fetch(0x1000, buf.data());
    EXPECT_EQ(buf[0], 0x77);

    // Flush writes the dirty block to memory.
    llc.flush();
    BlockData back;
    mem.peek(0x1000, back.data(), blockBytes);
    EXPECT_EQ(back[0], 0x77);
}

TEST_F(ConventionalLlcTest, CleanEvictionSilent)
{
    llc.fetch(0x1000, buf.data());
    mem.resetStats();
    llc.flush();
    EXPECT_EQ(mem.writes(), 0u);
}

TEST_F(ConventionalLlcTest, OrphanWritebackGoesStraightToMemory)
{
    BlockData w;
    w.fill(0x12);
    llc.writeback(0x9000, w.data()); // never fetched
    BlockData back;
    mem.peek(0x9000, back.data(), blockBytes);
    EXPECT_EQ(back[0], 0x12);
    EXPECT_FALSE(llc.contains(0x9000));
}

TEST_F(ConventionalLlcTest, LruEvictionWithinSet)
{
    // 64 sets: addresses k * 64 * 64 all land in set 0.
    const Addr stride = 64 * blockBytes;
    for (unsigned k = 0; k <= 16; ++k)
        llc.fetch(k * stride, buf.data());
    EXPECT_FALSE(llc.contains(0));        // LRU victim
    EXPECT_TRUE(llc.contains(stride));    // the rest survive
    EXPECT_TRUE(llc.contains(16 * stride));
}

TEST_F(ConventionalLlcTest, EvictionTriggersBackInvalidation)
{
    unsigned invalidations = 0;
    llc.setBackInvalidate([&](Addr, u8 *) {
        ++invalidations;
        return false;
    });
    const Addr stride = 64 * blockBytes;
    for (unsigned k = 0; k <= 16; ++k)
        llc.fetch(k * stride, buf.data());
    EXPECT_EQ(invalidations, 1u);
}

TEST_F(ConventionalLlcTest, DirtyPrivateCopySupersedesOnEviction)
{
    llc.fetch(0x1000, buf.data());
    llc.setBackInvalidate([&](Addr, u8 *data) {
        BlockData priv;
        priv.fill(0xEE);
        std::memcpy(data, priv.data(), blockBytes);
        return true;
    });
    llc.flush();
    BlockData back;
    mem.peek(0x1000, back.data(), blockBytes);
    EXPECT_EQ(back[0], 0xEE);
}

TEST_F(ConventionalLlcTest, StatsAccounting)
{
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x2000, buf.data());
    const LlcStats &s = llc.stats();
    EXPECT_EQ(s.fetches, 3u);
    EXPECT_EQ(s.fetchHits, 1u);
    EXPECT_EQ(s.fetchMisses, 2u);
    EXPECT_DOUBLE_EQ(s.missRate(), 2.0 / 3.0);
    EXPECT_EQ(s.tagArray.reads, 3u);
    EXPECT_EQ(s.dataArray.writes, 2u); // two fills
    EXPECT_EQ(s.dataArray.reads, 1u);  // one hit
}

TEST_F(ConventionalLlcTest, ResetStats)
{
    llc.fetch(0x1000, buf.data());
    llc.resetStats();
    EXPECT_EQ(llc.stats().fetches, 0u);
    EXPECT_TRUE(llc.contains(0x1000)); // contents untouched
}

TEST_F(ConventionalLlcTest, ForEachBlockReportsResidents)
{
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x2000, buf.data());
    unsigned count = 0;
    llc.forEachBlock([&](const LlcBlockInfo &info) {
        ++count;
        EXPECT_TRUE(info.addr == 0x1000 || info.addr == 0x2000);
        EXPECT_FALSE(info.approx); // no registry attached
    });
    EXPECT_EQ(count, 2u);
}

TEST_F(ConventionalLlcTest, RegistryLabelsApproxBlocks)
{
    ApproxRegistry reg;
    ApproxRegion r;
    r.base = 0x1000;
    r.size = 0x100;
    r.type = ElemType::U8;
    r.minValue = 0;
    r.maxValue = 255;
    r.name = "px";
    reg.add(r);
    ConventionalLlc llc2(mem, 64 * 1024, 16, 6, &reg);
    llc2.fetch(0x1000, buf.data());
    llc2.fetch(0x2000, buf.data());
    unsigned approx = 0;
    llc2.forEachBlock([&](const LlcBlockInfo &info) {
        if (info.approx) {
            ++approx;
            EXPECT_EQ(info.type, ElemType::U8);
        }
    });
    EXPECT_EQ(approx, 1u);
}

TEST_F(ConventionalLlcTest, EntriesReported)
{
    EXPECT_EQ(llc.entries(), 1024u);
}

// ---------------------------------------------------------------------
// PrivateCache
// ---------------------------------------------------------------------

TEST(PrivateCache, FindMissThenInsert)
{
    PrivateCache pc(16 * 1024, 4);
    EXPECT_EQ(pc.find(0x1000), nullptr);
    PrivateCache::Line &line =
        pc.allocate(0x1000, nullptr);
    EXPECT_TRUE(line.valid);
    EXPECT_NE(pc.find(0x1000), nullptr);
    EXPECT_EQ(pc.find(0x1040), nullptr); // next block
}

TEST(PrivateCache, EvictCallbackSeesVictim)
{
    PrivateCache pc(16 * 1024, 4); // 64 sets
    const Addr stride = 64 * blockBytes;
    for (unsigned k = 0; k < 4; ++k) {
        auto &line = pc.allocate(k * stride, nullptr);
        line.data[0] = static_cast<u8>(k);
    }
    Addr victimAddr = 0;
    u8 victimByte = 0xFF;
    pc.allocate(4 * stride,
                [&](Addr a, const PrivateCache::Line &v) {
                    victimAddr = a;
                    victimByte = v.data[0];
                });
    EXPECT_EQ(victimAddr, 0u); // LRU
    EXPECT_EQ(victimByte, 0u);
    EXPECT_EQ(pc.find(0), nullptr);
}

TEST(PrivateCache, TouchChangesVictim)
{
    PrivateCache pc(16 * 1024, 4);
    const Addr stride = 64 * blockBytes;
    for (unsigned k = 0; k < 4; ++k)
        pc.allocate(k * stride, nullptr);
    pc.touch(0); // refresh address 0
    Addr victimAddr = 0xDEAD;
    pc.allocate(4 * stride,
                [&](Addr a, const PrivateCache::Line &) {
                    victimAddr = a;
                });
    EXPECT_EQ(victimAddr, stride); // now the LRU
}

TEST(PrivateCache, Invalidate)
{
    PrivateCache pc(16 * 1024, 4);
    pc.allocate(0x1000, nullptr);
    EXPECT_TRUE(pc.invalidate(0x1000));
    EXPECT_EQ(pc.find(0x1000), nullptr);
    EXPECT_FALSE(pc.invalidate(0x1000));
}

TEST(PrivateCache, ForEachLine)
{
    PrivateCache pc(16 * 1024, 4);
    pc.allocate(0x1000, nullptr).dirty = true;
    pc.allocate(0x2000, nullptr);
    unsigned total = 0;
    unsigned dirty = 0;
    pc.forEachLine([&](Addr, PrivateCache::Line &line) {
        ++total;
        if (line.dirty)
            ++dirty;
    });
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(dirty, 1u);
}

TEST(PrivateCache, Geometry)
{
    PrivateCache l1(16 * 1024, 4); // Table 1 L1
    EXPECT_EQ(l1.sets(), 64u);
    EXPECT_EQ(l1.ways(), 4u);
    PrivateCache l2(128 * 1024, 8); // Table 1 L2
    EXPECT_EQ(l2.sets(), 256u);
    EXPECT_EQ(l2.ways(), 8u);
}

} // namespace dopp
