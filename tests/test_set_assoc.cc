/**
 * @file
 * Unit tests for the generic set-associative array and address slicer.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/set_assoc.hh"

namespace dopp
{

namespace
{

struct Entry
{
    bool valid = false;
    u64 tag = 0;
    int payload = 0;
};

} // namespace

TEST(SetAssocArray, Geometry)
{
    SetAssocArray<Entry> arr(16, 4);
    EXPECT_EQ(arr.sets(), 16u);
    EXPECT_EQ(arr.ways(), 4u);
    EXPECT_EQ(arr.validCount(), 0u);
}

TEST(SetAssocArray, NonPowerOfTwoSetsAllowed)
{
    SetAssocArray<Entry> arr(1536, 16);
    EXPECT_EQ(arr.sets(), 1536u);
}

TEST(SetAssocArrayDeathTest, ZeroSetsFatal)
{
    EXPECT_EXIT((SetAssocArray<Entry>(0, 4)),
                ::testing::ExitedWithCode(1), "non-zero");
}

TEST(SetAssocArrayDeathTest, ZeroWaysFatal)
{
    EXPECT_EXIT((SetAssocArray<Entry>(4, 0)),
                ::testing::ExitedWithCode(1), "associativity");
}

TEST(SetAssocArray, FindWay)
{
    SetAssocArray<Entry> arr(4, 2);
    EXPECT_EQ(arr.findWay(0, 42), -1);
    arr.at(0, 1).valid = true;
    arr.at(0, 1).tag = 42;
    EXPECT_EQ(arr.findWay(0, 42), 1);
    EXPECT_EQ(arr.findWay(1, 42), -1);   // wrong set
    EXPECT_EQ(arr.findWay(0, 43), -1);   // wrong tag
}

TEST(SetAssocArray, InvalidEntriesNotFound)
{
    SetAssocArray<Entry> arr(4, 2);
    arr.at(0, 0).tag = 7; // valid stays false
    EXPECT_EQ(arr.findWay(0, 7), -1);
}

TEST(SetAssocArray, VictimPrefersInvalid)
{
    SetAssocArray<Entry> arr(1, 4);
    arr.at(0, 0).valid = true;
    arr.at(0, 2).valid = true;
    const u32 victim = arr.victimWay(0);
    EXPECT_TRUE(victim == 1 || victim == 3);
}

TEST(SetAssocArray, LruEvictsLeastRecentlyUsed)
{
    SetAssocArray<Entry> arr(1, 4, ReplPolicy::LRU);
    for (u32 w = 0; w < 4; ++w) {
        arr.at(0, w).valid = true;
        arr.at(0, w).tag = w;
        arr.touchInsert(0, w);
    }
    // Touch everything but way 2.
    arr.touch(0, 0);
    arr.touch(0, 1);
    arr.touch(0, 3);
    EXPECT_EQ(arr.victimWay(0), 2u);
}

TEST(SetAssocArray, LruTouchReordersVictims)
{
    SetAssocArray<Entry> arr(1, 2, ReplPolicy::LRU);
    arr.at(0, 0).valid = true;
    arr.at(0, 1).valid = true;
    arr.touchInsert(0, 0);
    arr.touchInsert(0, 1);
    EXPECT_EQ(arr.victimWay(0), 0u);
    arr.touch(0, 0);
    EXPECT_EQ(arr.victimWay(0), 1u);
}

TEST(SetAssocArray, FifoIgnoresTouch)
{
    SetAssocArray<Entry> arr(1, 2, ReplPolicy::FIFO);
    arr.at(0, 0).valid = true;
    arr.at(0, 1).valid = true;
    arr.touchInsert(0, 0);
    arr.touchInsert(0, 1);
    arr.touch(0, 0); // FIFO must not reorder
    EXPECT_EQ(arr.victimWay(0), 0u);
}

TEST(SetAssocArray, RandomVictimIsValidWay)
{
    SetAssocArray<Entry> arr(1, 4, ReplPolicy::RANDOM);
    for (u32 w = 0; w < 4; ++w)
        arr.at(0, w).valid = true;
    std::set<u32> seen;
    for (int i = 0; i < 200; ++i) {
        const u32 v = arr.victimWay(0);
        EXPECT_LT(v, 4u);
        seen.insert(v);
    }
    // Uniform-random over 4 ways should hit several distinct ways.
    EXPECT_GE(seen.size(), 3u);
}

TEST(SetAssocArray, ValidCount)
{
    SetAssocArray<Entry> arr(4, 4);
    arr.setValid(0, 0, true);
    arr.setValid(3, 3, true);
    EXPECT_EQ(arr.validCount(), 2u);
    EXPECT_TRUE(arr.at(0, 0).valid);
    EXPECT_TRUE(arr.at(3, 3).valid);
    arr.setValid(0, 0, false);
    EXPECT_EQ(arr.validCount(), 1u);
    EXPECT_FALSE(arr.at(0, 0).valid);
}

TEST(SetAssocArray, SetValidIsIdempotent)
{
    // The maintained counter only moves on actual transitions;
    // re-asserting the current state must not drift it.
    SetAssocArray<Entry> arr(4, 4);
    arr.setValid(1, 2, true);
    arr.setValid(1, 2, true);
    EXPECT_EQ(arr.validCount(), 1u);
    arr.setValid(1, 2, false);
    arr.setValid(1, 2, false);
    EXPECT_EQ(arr.validCount(), 0u);
    arr.setValid(2, 0, false); // never-valid entry stays a no-op
    EXPECT_EQ(arr.validCount(), 0u);
}

TEST(SetAssocArray, InvalidateAll)
{
    SetAssocArray<Entry> arr(4, 4);
    arr.setValid(1, 1, true);
    arr.setValid(2, 3, true);
    arr.touchInsert(1, 1);
    arr.invalidateAll();
    EXPECT_EQ(arr.validCount(), 0u);
    EXPECT_FALSE(arr.at(1, 1).valid);
    EXPECT_FALSE(arr.at(2, 3).valid);
}

TEST(AddrSlicer, RoundTrip)
{
    AddrSlicer s(1024);
    const Addr addrs[] = {0x0, 0x40, 0x12345640, 0xFFFFFFC0};
    for (Addr a : addrs) {
        const u32 set = s.set(a);
        const u64 tag = s.tag(a);
        EXPECT_EQ(s.addr(set, tag), blockAlign(a)) << std::hex << a;
        EXPECT_LT(set, 1024u);
    }
}

TEST(AddrSlicer, ConsecutiveBlocksDifferentSets)
{
    AddrSlicer s(64);
    EXPECT_NE(s.set(0), s.set(64));
    EXPECT_EQ(s.set(0), s.set(64 * 64)); // wraps after 64 sets
    EXPECT_NE(s.tag(0), s.tag(64 * 64));
}

TEST(AddrSlicer, SingleSet)
{
    AddrSlicer s(1);
    EXPECT_EQ(s.set(0xDEADBEC0), 0u);
    EXPECT_EQ(s.tag(0x40), 1u);
}

TEST(ReplPolicy, Names)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "lru");
    EXPECT_STREQ(replPolicyName(ReplPolicy::FIFO), "fifo");
    EXPECT_STREQ(replPolicyName(ReplPolicy::RANDOM), "random");
}

// ---------------------------------------------------------------------
// SetAssocDir: the structure-of-arrays directory behind the optimized
// Doppelgänger hot path. Must make the exact same replacement
// decisions as SetAssocArray for any touch sequence.
// ---------------------------------------------------------------------

TEST(SetAssocDir, GeometryAndIndexing)
{
    SetAssocDir dir(16, 4);
    EXPECT_EQ(dir.sets(), 16u);
    EXPECT_EQ(dir.ways(), 4u);
    EXPECT_EQ(dir.index(0, 0), 0);
    EXPECT_EQ(dir.index(1, 0), 4);
    EXPECT_EQ(dir.index(15, 3), 63);
    EXPECT_EQ(dir.validCount(), 0u);
}

TEST(SetAssocDir, KeysFlagsAndValidity)
{
    SetAssocDir dir(2, 2);
    const i32 idx = dir.index(1, 1);
    EXPECT_FALSE(dir.valid(idx));
    dir.setKey(idx, 0xCAFE);
    dir.setValid(idx, true);
    EXPECT_TRUE(dir.valid(idx));
    EXPECT_EQ(dir.key(idx), 0xCAFEu);
    EXPECT_EQ(dir.validCount(), 1u);

    // Client flag bits are independent of the valid bit.
    dir.setFlag(idx, 2, true);
    EXPECT_TRUE(dir.flag(idx, 2));
    EXPECT_EQ(dir.flags(idx), SetAssocDir::kValid | 2);
    dir.setFlag(idx, 2, false);
    EXPECT_FALSE(dir.flag(idx, 2));
    EXPECT_TRUE(dir.valid(idx));

    // setValid is idempotent (count stays exact).
    dir.setValid(idx, true);
    EXPECT_EQ(dir.validCount(), 1u);
    dir.setValid(idx, false);
    dir.setValid(idx, false);
    EXPECT_EQ(dir.validCount(), 0u);
}

TEST(SetAssocDir, FindWaySkipsInvalidAndWrongKeys)
{
    SetAssocDir dir(1, 4);
    dir.setKey(dir.index(0, 1), 7);
    EXPECT_EQ(dir.findWay(0, 7), -1); // key set but not valid
    dir.setValid(dir.index(0, 1), true);
    EXPECT_EQ(dir.findWay(0, 7), 1);
    EXPECT_EQ(dir.findWay(0, 8), -1);
}

TEST(SetAssocDir, FindWayFlagsFiltersOnClientBits)
{
    // Two valid ways with the same key, one carrying client bit 2:
    // the filtered probe must be able to select either.
    SetAssocDir dir(1, 4);
    dir.setKey(dir.index(0, 0), 9);
    dir.setValid(dir.index(0, 0), true);
    dir.setKey(dir.index(0, 2), 9);
    dir.setValid(dir.index(0, 2), true);
    dir.setFlag(dir.index(0, 2), 2, true);

    const u8 all = SetAssocDir::kValid | 2;
    EXPECT_EQ(dir.findWayFlags(0, 9, all, SetAssocDir::kValid), 0);
    EXPECT_EQ(dir.findWayFlags(0, 9, all, all), 2);
    EXPECT_EQ(dir.findWayFlags(0, 10, all, all), -1);
}

TEST(SetAssocDir, VictimPrefersInvalidInWayOrder)
{
    SetAssocDir dir(1, 4);
    for (u32 w = 0; w < 4; ++w)
        dir.setValid(dir.index(0, w), true);
    dir.setValid(dir.index(0, 2), false);
    EXPECT_EQ(dir.victimWay(0), 2u);
}

TEST(SetAssocDir, ReplacementMatchesSetAssocArray)
{
    // Property: for one long random stream of inserts and touches the
    // directory and the template array must pick the same victims —
    // this is what makes the optimized engine's eviction sequence
    // bit-identical to the reference implementation's.
    for (ReplPolicy policy :
         {ReplPolicy::LRU, ReplPolicy::FIFO, ReplPolicy::RANDOM}) {
        SetAssocArray<Entry> arr(4, 4, policy);
        SetAssocDir dir(4, 4, policy);
        Rng rng(0x5E7A550C);
        for (int n = 0; n < 2000; ++n) {
            const u32 set = static_cast<u32>(rng.below(4));
            const u32 roll = static_cast<u32>(rng.below(10));
            if (roll < 6) {
                const u32 vArr = arr.victimWay(set);
                const u32 vDir = dir.victimWay(set);
                ASSERT_EQ(vArr, vDir)
                    << replPolicyName(policy) << " op " << n;
                arr.setValid(set, vArr, true);
                arr.touchInsert(set, vArr);
                dir.setValid(dir.index(set, vDir), true);
                dir.touchInsert(set, vDir);
            } else if (roll < 9) {
                const u32 way = static_cast<u32>(rng.below(4));
                if (arr.at(set, way).valid) {
                    arr.touch(set, way);
                    dir.touch(set, way);
                }
            } else {
                const u32 way = static_cast<u32>(rng.below(4));
                arr.setValid(set, way, false);
                dir.setValid(dir.index(set, way), false);
            }
            ASSERT_EQ(arr.validCount(), dir.validCount());
        }
    }
}

TEST(SetAssocDir, InvalidateAllClearsEverything)
{
    SetAssocDir dir(2, 2);
    for (u32 s = 0; s < 2; ++s) {
        for (u32 w = 0; w < 2; ++w) {
            dir.setValid(dir.index(s, w), true);
            dir.setFlag(dir.index(s, w), 4, true);
        }
    }
    EXPECT_EQ(dir.validCount(), 4u);
    dir.invalidateAll();
    EXPECT_EQ(dir.validCount(), 0u);
    for (u32 s = 0; s < 2; ++s) {
        for (u32 w = 0; w < 2; ++w) {
            EXPECT_FALSE(dir.valid(dir.index(s, w)));
            EXPECT_FALSE(dir.flag(dir.index(s, w), 4));
        }
    }
}

} // namespace dopp
