/**
 * @file
 * Tests for trace capture and replay: file format round-trips, harness
 * capture, and replay equivalence (a replayed trace must reproduce the
 * original run's hierarchy behaviour on an identical system).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "harness/experiment.hh"
#include "sim/trace.hh"

namespace dopp
{

namespace
{

/** Temp file path helper; removed on destruction. */
struct TempTrace
{
    TempTrace()
    {
        char buf[] = "/tmp/dopptrace-XXXXXX";
        const int fd = mkstemp(buf);
        if (fd >= 0)
            ::close(fd);
        path = buf;
    }

    ~TempTrace() { std::remove(path.c_str()); }

    std::string path;
};

} // namespace

TEST(Trace, WriteReadRoundTrip)
{
    TempTrace tmp;
    {
        TraceWriter w(tmp.path);
        for (u32 i = 0; i < 100; ++i) {
            TraceRecord r;
            r.addr = 0x1000 + i * 4;
            r.payload = i * 7;
            r.core = static_cast<u8>(i % 4);
            r.size = 4;
            r.isWrite = i % 3 == 0;
            w.append(r);
        }
        EXPECT_EQ(w.count(), 100u);
    }
    TraceReader rd(tmp.path);
    EXPECT_EQ(rd.count(), 100u);
    TraceRecord r;
    u32 i = 0;
    while (rd.next(r)) {
        EXPECT_EQ(r.addr, 0x1000 + i * 4);
        EXPECT_EQ(r.payload, i * 7);
        EXPECT_EQ(r.core, i % 4);
        EXPECT_EQ(r.isWrite, i % 3 == 0 ? 1 : 0);
        ++i;
    }
    EXPECT_EQ(i, 100u);
}

TEST(Trace, RewindRestarts)
{
    TempTrace tmp;
    {
        TraceWriter w(tmp.path);
        TraceRecord r;
        r.addr = 0xAA40;
        w.append(r);
    }
    TraceReader rd(tmp.path);
    TraceRecord r;
    ASSERT_TRUE(rd.next(r));
    EXPECT_FALSE(rd.next(r));
    rd.rewind();
    ASSERT_TRUE(rd.next(r));
    EXPECT_EQ(r.addr, 0xAA40u);
}

TEST(Trace, EmptyTraceIsValid)
{
    TempTrace tmp;
    {
        TraceWriter w(tmp.path);
    }
    TraceReader rd(tmp.path);
    EXPECT_EQ(rd.count(), 0u);
    TraceRecord r;
    EXPECT_FALSE(rd.next(r));
}

TEST(TraceDeathTest, BadMagicIsFatal)
{
    TempTrace tmp;
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    std::fwrite("NOTATRACE123456", 1, 16, f);
    std::fclose(f);
    EXPECT_EXIT((TraceReader(tmp.path)), ::testing::ExitedWithCode(1),
                "not a doppelganger trace");
}

TEST(TraceDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT((TraceReader("/nonexistent/file.dopptrc")),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Trace, HarnessCapturesWorkloadRun)
{
    TempTrace tmp;
    RunConfig cfg;
    cfg.kind = LlcKind::Baseline;
    cfg.workload.scale = 0.05;
    cfg.tracePath = tmp.path;
    const RunResult run = runWorkload("kmeans", cfg);

    TraceReader rd(tmp.path);
    EXPECT_EQ(rd.count(), run.hierarchy.accesses);

    // Every record is well-formed.
    TraceRecord r;
    u64 writes = 0;
    while (rd.next(r)) {
        EXPECT_GE(r.size, 1);
        EXPECT_LE(r.size, 8);
        EXPECT_LT(r.core, 4);
        writes += r.isWrite;
    }
    EXPECT_EQ(writes, run.hierarchy.stores);
}

TEST(Trace, ReplayReproducesHierarchyBehaviour)
{
    // Record a run, then replay the trace on an identical fresh
    // system: access/hit/miss counts and memory traffic must match
    // the original exactly (stores carry their payloads, so even the
    // functional state matches).
    TempTrace tmp;
    RunConfig cfg;
    cfg.kind = LlcKind::Baseline;
    cfg.workload.scale = 0.05;
    cfg.tracePath = tmp.path;
    const RunResult run = runWorkload("jmeint", cfg);

    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc(mem, 2 * 1024 * 1024, 16, 6, &reg);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    TraceReader rd(tmp.path);
    const ReplayStats stats = replayTrace(rd, sys);

    EXPECT_EQ(stats.accesses, run.hierarchy.accesses);
    EXPECT_EQ(stats.writes, run.hierarchy.stores);
    EXPECT_EQ(sys.stats().l1Hits, run.hierarchy.l1Hits);
    EXPECT_EQ(sys.stats().l2Misses, run.hierarchy.l2Misses);
    EXPECT_EQ(llc.stats().fetchMisses, run.llc.fetchMisses);
    // Trace replay sees the same addresses but pokes no initial data,
    // so only *traffic counts* are compared, not values.
    EXPECT_EQ(mem.reads(), run.memReads);
}

TEST(Trace, ReplayOnDifferentLlcDiffers)
{
    // The point of traces: swap the LLC under the same access stream.
    TempTrace tmp;
    RunConfig cfg;
    cfg.kind = LlcKind::Baseline;
    cfg.workload.scale = 0.1;
    cfg.tracePath = tmp.path;
    runWorkload("canneal", cfg);

    auto replayOn = [&](u64 llcBytes) {
        MainMemory mem;
        ApproxRegistry reg;
        ConventionalLlc llc(mem, llcBytes, 16, 6, &reg);
        MemorySystem sys(HierarchyConfig{}, llc, mem);
        TraceReader rd(tmp.path);
        replayTrace(rd, sys);
        return llc.stats().fetchMisses;
    };
    const u64 missesBig = replayOn(2 * 1024 * 1024);
    const u64 missesSmall = replayOn(64 * 1024);
    EXPECT_GT(missesSmall, missesBig);
}

TEST(Trace, InterleavePreservesAllRecords)
{
    TempTrace a;
    TempTrace b;
    TempTrace merged;
    {
        TraceWriter wa(a.path);
        TraceWriter wb(b.path);
        for (u32 i = 0; i < 150; ++i) {
            TraceRecord r;
            r.addr = i * 64;
            r.core = static_cast<u8>(i % 4);
            wa.append(r);
        }
        for (u32 i = 0; i < 40; ++i) {
            TraceRecord r;
            r.addr = i * 64;
            r.core = static_cast<u8>(i % 4);
            wb.append(r);
        }
    }
    const u64 total =
        interleaveTraces({a.path, b.path}, merged.path, 16);
    EXPECT_EQ(total, 190u);

    TraceReader rd(merged.path);
    EXPECT_EQ(rd.count(), 190u);
    TraceRecord r;
    u64 fromA = 0;
    u64 fromB = 0;
    while (rd.next(r)) {
        if (r.addr >= (1ULL << 33)) {
            ++fromB;
            EXPECT_GE(r.core, 2); // program 1 gets cores 2..3
        } else {
            ++fromA;
            EXPECT_LT(r.core, 2); // program 0 gets cores 0..1
        }
    }
    EXPECT_EQ(fromA, 150u);
    EXPECT_EQ(fromB, 40u);
}

TEST(Trace, InterleaveChunksAlternate)
{
    TempTrace a;
    TempTrace b;
    TempTrace merged;
    {
        TraceWriter wa(a.path);
        TraceWriter wb(b.path);
        for (u32 i = 0; i < 8; ++i) {
            TraceRecord r;
            r.addr = 0x100;
            wa.append(r);
            r.addr = 0x200;
            wb.append(r);
        }
    }
    interleaveTraces({a.path, b.path}, merged.path, 4);
    TraceReader rd(merged.path);
    TraceRecord r;
    std::vector<int> origin;
    while (rd.next(r))
        origin.push_back(r.addr >= (1ULL << 33) ? 1 : 0);
    const std::vector<int> expect = {0, 0, 0, 0, 1, 1, 1, 1,
                                     0, 0, 0, 0, 1, 1, 1, 1};
    EXPECT_EQ(origin, expect);
}

TEST(Trace, MultiprogramReplayRunsOnSharedLlc)
{
    TempTrace a;
    TempTrace b;
    TempTrace merged;
    RunConfig cfg;
    cfg.kind = LlcKind::Baseline;
    cfg.workload.scale = 0.05;
    cfg.tracePath = a.path;
    const RunResult ra = runWorkload("kmeans", cfg);
    cfg.tracePath = b.path;
    const RunResult rb = runWorkload("jmeint", cfg);
    interleaveTraces({a.path, b.path}, merged.path);

    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc(mem, 2 * 1024 * 1024, 16, 6, &reg);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    TraceReader rd(merged.path);
    const ReplayStats stats = replayTrace(rd, sys);
    EXPECT_EQ(stats.accesses,
              ra.hierarchy.accesses + rb.hierarchy.accesses);
    // The shared run misses at least as much as either alone would
    // have at the same size (disjoint address spaces only compete).
    EXPECT_GE(llc.stats().fetchMisses,
              std::max(ra.llc.fetchMisses, rb.llc.fetchMisses));
}

TEST(TraceDeathTest, InterleaveRejectsTooManyPrograms)
{
    TempTrace a;
    {
        TraceWriter w(a.path);
    }
    EXPECT_EXIT(interleaveTraces({a.path, a.path, a.path, a.path,
                                  a.path},
                                 "/tmp/never.dopptrc", 4, 1 << 20, 4),
                ::testing::ExitedWithCode(1), "more programs");
}

TEST(Trace, RecordLayoutIsStable)
{
    // The on-disk format is a contract: 24-byte records.
    EXPECT_EQ(sizeof(TraceRecord), 24u);
    EXPECT_EQ(std::string(traceMagic, 8), "DOPPTRC1");
}

namespace
{

/** Write @p n valid records to @p path. */
void
writeValidTrace(const std::string &path, u32 n)
{
    TraceWriter w(path);
    for (u32 i = 0; i < n; ++i) {
        TraceRecord r;
        r.addr = 0x1000 + i * blockBytes;
        w.append(r);
    }
}

/** Truncate the file at @p path to @p bytes. */
void
truncateFile(const std::string &path, long bytes)
{
    ASSERT_EQ(::truncate(path.c_str(), bytes), 0);
}

} // namespace

TEST(TraceDeathTest, ShortMagicIsFatal)
{
    TempTrace tmp;
    writeValidTrace(tmp.path, 4);
    truncateFile(tmp.path, 5); // mid-magic
    EXPECT_EXIT(TraceReader rd(tmp.path),
                ::testing::ExitedWithCode(1),
                "offset 0: file too short for the 8-byte magic");
}

TEST(TraceDeathTest, ShortHeaderCountIsFatal)
{
    TempTrace tmp;
    writeValidTrace(tmp.path, 4);
    truncateFile(tmp.path, 12); // magic intact, count cut in half
    EXPECT_EXIT(TraceReader rd(tmp.path),
                ::testing::ExitedWithCode(1),
                "offset 8: file too short for the record count");
}

TEST(TraceDeathTest, TruncatedBodyIsFatal)
{
    TempTrace tmp;
    writeValidTrace(tmp.path, 8);
    // Cut the last record in half: header promises more than is there.
    truncateFile(tmp.path, 16 + 8 * 24 - 12);
    EXPECT_EXIT(TraceReader rd(tmp.path),
                ::testing::ExitedWithCode(1), "truncated: .*promises");
}

TEST(TraceDeathTest, TrailingBytesAreFatal)
{
    TempTrace tmp;
    writeValidTrace(tmp.path, 2);
    std::FILE *f = std::fopen(tmp.path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[7] = {};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader rd(tmp.path),
                ::testing::ExitedWithCode(1),
                "7 trailing bytes after the 2 promised records");
}

TEST(TraceDeathTest, AbsurdRecordCountIsFatal)
{
    TempTrace tmp;
    writeValidTrace(tmp.path, 1);
    // Overwrite the count with a value whose byte size overflows.
    std::FILE *f = std::fopen(tmp.path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    const u64 absurd = ~0ULL;
    std::fwrite(&absurd, sizeof(absurd), 1, f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader rd(tmp.path),
                ::testing::ExitedWithCode(1),
                "offset 8: absurd record count");
}

TEST(TraceDeathTest, OutOfRangeAccessSizeIsFatal)
{
    TempTrace tmp;
    {
        TraceWriter w(tmp.path);
        TraceRecord r;
        w.append(r);
        w.append(r);
    }
    // Corrupt record 1's size field (offset 16 + 24 + 17).
    std::FILE *f = std::fopen(tmp.path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 16 + 24 + 17, SEEK_SET);
    const u8 bad = 9;
    std::fwrite(&bad, 1, 1, f);
    std::fclose(f);

    TraceReader rd(tmp.path);
    TraceRecord r;
    EXPECT_TRUE(rd.next(r)); // record 0 is fine
    EXPECT_EXIT(rd.next(r), ::testing::ExitedWithCode(1),
                "record 1 .*: access size 9 out of range 1..8");
}

TEST(TraceDeathTest, BadIsWriteFlagIsFatal)
{
    TempTrace tmp;
    {
        TraceWriter w(tmp.path);
        TraceRecord r;
        w.append(r);
    }
    // Corrupt record 0's isWrite flag (offset 16 + 18).
    std::FILE *f = std::fopen(tmp.path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 16 + 18, SEEK_SET);
    const u8 bad = 0xff;
    std::fwrite(&bad, 1, 1, f);
    std::fclose(f);

    TraceReader rd(tmp.path);
    TraceRecord r;
    EXPECT_EXIT(rd.next(r), ::testing::ExitedWithCode(1),
                "isWrite flag 255 is neither 0 nor 1");
}

} // namespace dopp
