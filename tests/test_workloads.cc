/**
 * @file
 * Tests for the workload layer: the SimRuntime/SimArray plumbing and
 * all nine benchmarks (determinism, annotation, error metrics),
 * parameterized over the benchmark names.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/llc.hh"
#include "workloads/error_metrics.hh"
#include "workloads/workload.hh"

namespace dopp
{

namespace
{

/** A tiny full system for workload tests. */
struct MiniSystem
{
    MiniSystem()
        : llc(mem, 2 * 1024 * 1024, 16, 6, &reg),
          sys(HierarchyConfig{}, llc, mem), rt(sys, mem, reg)
    {
    }

    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc;
    MemorySystem sys;
    SimRuntime rt;
};

constexpr double tinyScale = 0.05;

} // namespace

TEST(SimRuntime, AllocateIsPageAlignedAndDisjoint)
{
    MiniSystem m;
    const Addr a = m.rt.allocate(100, "a");
    const Addr b = m.rt.allocate(100, "b");
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(SimRuntime, LoadStoreRoundTrip)
{
    MiniSystem m;
    const Addr a = m.rt.allocate(64, "x");
    m.rt.store<float>(a, 1.5f);
    EXPECT_FLOAT_EQ(m.rt.load<float>(a), 1.5f);
}

TEST(SimRuntime, CyclesAccumulate)
{
    MiniSystem m;
    const Addr a = m.rt.allocate(64, "x");
    EXPECT_EQ(m.rt.runtime(), 0u);
    m.rt.load<u32>(a);
    const Tick after = m.rt.runtime();
    EXPECT_GT(after, 0u);
    m.rt.addWork(100);
    EXPECT_EQ(m.rt.runtime(), after + 100);
}

TEST(SimRuntime, ParallelForCoversAllIndicesOnce)
{
    MiniSystem m;
    std::vector<int> hits(1000, 0);
    std::vector<CoreId> cores;
    m.rt.parallelFor(0, 1000, 64, [&](u64 i) {
        hits[i] += 1;
        cores.push_back(m.rt.core());
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
    // All four cores participated.
    std::set<CoreId> distinct(cores.begin(), cores.end());
    EXPECT_EQ(distinct.size(), 4u);
}

TEST(SimRuntime, PeriodicHookFires)
{
    MiniSystem m;
    const Addr a = m.rt.allocate(4096, "x");
    unsigned fired = 0;
    m.rt.setPeriodicHook(10, [&] { ++fired; });
    for (unsigned i = 0; i < 100; ++i)
        m.rt.load<u8>(a + i);
    EXPECT_EQ(fired, 10u);
}

TEST(SimArray, AnnotationRegistersRegion)
{
    MiniSystem m;
    SimArray<float> arr(m.rt, 100, "vals");
    EXPECT_FALSE(m.reg.isApprox(arr.baseAddr()));
    arr.annotateApprox(0.0, 1.0, "vals");
    EXPECT_TRUE(m.reg.isApprox(arr.baseAddr()));
    EXPECT_TRUE(m.reg.isApprox(arr.addrOf(99)));
    const ApproxRegion *r = m.reg.find(arr.baseAddr());
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->type, ElemType::F32);
}

TEST(SimArray, PokeThenGetThroughHierarchy)
{
    MiniSystem m;
    SimArray<i32> arr(m.rt, 16, "ints");
    arr.poke(5, -42);
    EXPECT_EQ(arr.get(5), -42);
    arr.set(5, 17);
    EXPECT_EQ(arr.get(5), 17);
}

TEST(SimArray, PeekSeesMemoryNotCaches)
{
    MiniSystem m;
    SimArray<i32> arr(m.rt, 16, "ints");
    arr.poke(0, 1);
    arr.set(0, 2);          // dirty in L1
    EXPECT_EQ(arr.peek(0), 1); // memory still has the old value
    m.sys.drain();
    EXPECT_EQ(arr.peek(0), 2);
}

// ---------------------------------------------------------------------
// Error metric helpers.
// ---------------------------------------------------------------------

TEST(ErrorMetrics, MeanRelativeError)
{
    EXPECT_DOUBLE_EQ(meanRelativeError({1.0, 2.0}, {1.0, 2.0}), 0.0);
    EXPECT_NEAR(meanRelativeError({1.1}, {1.0}), 0.1, 1e-12);
    // Floor guards tiny denominators.
    EXPECT_DOUBLE_EQ(meanRelativeError({1.0}, {0.0}, 1.0), 1.0);
}

TEST(ErrorMetrics, MeanAbsErrorNormalized)
{
    EXPECT_DOUBLE_EQ(
        meanAbsErrorNormalized({10.0, 20.0}, {0.0, 0.0}, 100.0), 0.15);
}

TEST(ErrorMetrics, MisclassificationRate)
{
    EXPECT_DOUBLE_EQ(
        misclassificationRate({1, 0, 1, 0}, {1, 0, 0, 0}), 0.25);
    EXPECT_DOUBLE_EQ(misclassificationRate({}, {}), 0.0);
}

TEST(ErrorMetrics, TopkSetDifference)
{
    // Two queries of k=2; order within a set does not matter.
    EXPECT_DOUBLE_EQ(
        topkSetDifferenceRate({1, 2, 5, 6}, {2, 1, 5, 7}, 2), 0.5);
    EXPECT_DOUBLE_EQ(
        topkSetDifferenceRate({1, 2}, {2, 1}, 2), 0.0);
}

TEST(ErrorMetrics, ScalarRelativeError)
{
    EXPECT_DOUBLE_EQ(scalarRelativeError(11.0, 10.0), 0.1);
    EXPECT_DOUBLE_EQ(scalarRelativeError(5.0, 5.0), 0.0);
}

// ---------------------------------------------------------------------
// All nine workloads, parameterized.
// ---------------------------------------------------------------------

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, FactoryProducesCorrectName)
{
    WorkloadConfig cfg;
    auto w = makeWorkload(GetParam(), cfg);
    EXPECT_EQ(w->name(), GetParam());
}

TEST_P(WorkloadSuite, RunsAndProducesOutput)
{
    WorkloadConfig cfg;
    cfg.scale = tinyScale;
    MiniSystem m;
    auto w = makeWorkload(GetParam(), cfg);
    w->run(m.rt);
    EXPECT_FALSE(w->output().empty());
    EXPECT_GT(m.rt.runtime(), 0u);
    EXPECT_GT(m.rt.accesses(), 0u);
}

TEST_P(WorkloadSuite, DeterministicAcrossRuns)
{
    WorkloadConfig cfg;
    cfg.scale = tinyScale;
    MiniSystem m1;
    MiniSystem m2;
    auto w1 = makeWorkload(GetParam(), cfg);
    auto w2 = makeWorkload(GetParam(), cfg);
    w1->run(m1.rt);
    w2->run(m2.rt);
    ASSERT_EQ(w1->output().size(), w2->output().size());
    for (size_t i = 0; i < w1->output().size(); ++i)
        EXPECT_EQ(w1->output()[i], w2->output()[i]) << i;
    EXPECT_EQ(m1.rt.runtime(), m2.rt.runtime());
}

TEST_P(WorkloadSuite, DifferentSeedsDifferentOutput)
{
    WorkloadConfig a;
    a.scale = tinyScale;
    WorkloadConfig b = a;
    b.seed = a.seed + 1;
    MiniSystem m1;
    MiniSystem m2;
    auto w1 = makeWorkload(GetParam(), a);
    auto w2 = makeWorkload(GetParam(), b);
    w1->run(m1.rt);
    w2->run(m2.rt);
    EXPECT_NE(w1->output(), w2->output());
}

TEST_P(WorkloadSuite, SelfErrorIsZero)
{
    WorkloadConfig cfg;
    cfg.scale = tinyScale;
    MiniSystem m;
    auto w = makeWorkload(GetParam(), cfg);
    w->run(m.rt);
    EXPECT_DOUBLE_EQ(w->outputError(w->output(), w->output()), 0.0);
}

TEST_P(WorkloadSuite, AnnotatesApproximateRegions)
{
    WorkloadConfig cfg;
    cfg.scale = tinyScale;
    MiniSystem m;
    auto w = makeWorkload(GetParam(), cfg);
    w->run(m.rt);
    EXPECT_FALSE(m.reg.regions().empty());
}

TEST_P(WorkloadSuite, ErrorMetricDetectsPerturbation)
{
    WorkloadConfig cfg;
    cfg.scale = tinyScale;
    MiniSystem m;
    auto w = makeWorkload(GetParam(), cfg);
    w->run(m.rt);
    // Flip/perturb every output: the metric must report high error.
    std::vector<double> garbled = w->output();
    for (double &v : garbled)
        v = v * 1.9 + 3.7;
    EXPECT_GT(w->outputError(garbled, w->output()), 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSuite,
                         ::testing::ValuesIn(workloadNames()));

TEST(Workloads, NameListHasNine)
{
    EXPECT_EQ(workloadNames().size(), 9u);
}

TEST(WorkloadsDeathTest, UnknownNameFatal)
{
    WorkloadConfig cfg;
    EXPECT_EXIT(makeWorkload("nosuch", cfg),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Workloads, OutputErrorHelperMatchesMethod)
{
    WorkloadConfig cfg;
    cfg.scale = tinyScale;
    MiniSystem m;
    auto w = makeWorkload("jpeg", cfg);
    w->run(m.rt);
    std::vector<double> other = w->output();
    if (!other.empty())
        other[0] += 10.0;
    EXPECT_DOUBLE_EQ(
        workloadOutputError("jpeg", other, w->output()),
        w->outputError(other, w->output()));
}

} // namespace dopp
