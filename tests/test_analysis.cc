/**
 * @file
 * Tests for the LLC-snapshot similarity analyses behind Figs 2, 7, 8
 * and Table 2, on hand-crafted snapshots with known answers.
 */

#include <gtest/gtest.h>

#include "analysis/similarity.hh"
#include "sim/llc.hh"

namespace dopp
{

namespace
{

SnapshotBlock
f32Block(Addr addr, const std::vector<float> &values, bool approx = true,
         double lo = 0.0, double hi = 1.0)
{
    SnapshotBlock b;
    b.addr = addr;
    b.approx = approx;
    b.type = ElemType::F32;
    b.minValue = lo;
    b.maxValue = hi;
    for (unsigned i = 0; i < 16; ++i)
        setBlockElement(b.data.data(), ElemType::F32, i,
                        values[i % values.size()]);
    return b;
}

} // namespace

TEST(Analysis, ApproxFraction)
{
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.1f}, true));
    snap.push_back(f32Block(0x40, {0.2f}, true));
    snap.push_back(f32Block(0x80, {0.3f}, false));
    snap.push_back(f32Block(0xC0, {0.4f}, false));
    EXPECT_DOUBLE_EQ(approxFraction(snap), 0.5);
    EXPECT_DOUBLE_EQ(approxFraction({}), 0.0);
}

TEST(Analysis, DedupSavingsExactDuplicatesOnly)
{
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.5f}));
    snap.push_back(f32Block(0x40, {0.5f}));   // identical
    snap.push_back(f32Block(0x80, {0.5001f})); // near but distinct
    snap.push_back(f32Block(0xC0, {0.9f}));
    // 4 blocks, 3 unique -> 25% savings.
    EXPECT_DOUBLE_EQ(dedupSavings(snap), 0.25);
}

TEST(Analysis, DedupIgnoresPreciseBlocks)
{
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.5f}, false));
    snap.push_back(f32Block(0x40, {0.5f}, false));
    EXPECT_DOUBLE_EQ(dedupSavings(snap), 0.0); // no approx blocks
}

TEST(Analysis, ThresholdZeroEqualsDedup)
{
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.5f}));
    snap.push_back(f32Block(0x40, {0.5f}));
    snap.push_back(f32Block(0x80, {0.7f}));
    EXPECT_DOUBLE_EQ(thresholdSavings(snap, 0.0), dedupSavings(snap));
}

TEST(Analysis, ThresholdGroupsNearbyBlocks)
{
    // 1% of range [0,1] = 0.01 tolerance.
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.500f}));
    snap.push_back(f32Block(0x40, {0.505f}));  // within 1%
    snap.push_back(f32Block(0x80, {0.520f}));  // outside vs 0.500
    EXPECT_NEAR(thresholdSavings(snap, 0.01), 1.0 / 3.0, 1e-9);
    // At 10% everything merges: 2/3 savings.
    EXPECT_NEAR(thresholdSavings(snap, 0.10), 2.0 / 3.0, 1e-9);
}

TEST(Analysis, ThresholdRequiresEveryElementClose)
{
    // One divergent element disqualifies the pair (Sec 2).
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.5f}));
    std::vector<float> almost(16, 0.5f);
    almost[7] = 0.9f;
    snap.push_back(f32Block(0x40, {almost.begin(), almost.end()}));
    EXPECT_DOUBLE_EQ(thresholdSavings(snap, 0.01), 0.0);
}

TEST(Analysis, ThresholdScalesWithDeclaredRange)
{
    // Same values, wider declared range -> wider absolute tolerance.
    Snapshot tight;
    tight.push_back(f32Block(0x0, {0.50f}, true, 0.0, 1.0));
    tight.push_back(f32Block(0x40, {0.56f}, true, 0.0, 1.0));
    EXPECT_DOUBLE_EQ(thresholdSavings(tight, 0.01), 0.0);

    Snapshot wide;
    wide.push_back(f32Block(0x0, {0.50f}, true, 0.0, 100.0));
    wide.push_back(f32Block(0x40, {0.56f}, true, 0.0, 100.0));
    EXPECT_DOUBLE_EQ(thresholdSavings(wide, 0.01), 0.5);
}

TEST(Analysis, MapSavingsMatchesMapCollisions)
{
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.5f}));
    snap.push_back(f32Block(0x40, {0.500005f})); // same 14-bit map
    snap.push_back(f32Block(0x80, {0.9f}));
    EXPECT_NEAR(mapSavings(snap, 14), 1.0 / 3.0, 1e-9);
}

TEST(Analysis, SmallerMapSpaceSavesMore)
{
    Snapshot snap;
    for (unsigned k = 0; k < 64; ++k) {
        snap.push_back(f32Block(k * blockBytes,
                                {0.5f + 0.0001f * static_cast<float>(k)}));
    }
    const double s12 = mapSavings(snap, 12);
    const double s14 = mapSavings(snap, 14);
    EXPECT_GE(s12, s14); // Fig 7 trend
    EXPECT_GT(s12, 0.0);
}

TEST(Analysis, BdiSavingsOnCompressibleBlocks)
{
    // Zero blocks compress to 1 byte: savings = 63/64 each.
    Snapshot snap;
    SnapshotBlock z;
    z.addr = 0;
    z.approx = true;
    snap.push_back(z);
    EXPECT_NEAR(bdiSavings(snap), 63.0 / 64.0, 1e-9);
}

TEST(Analysis, BdiSavingsZeroOnRandomFloats)
{
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.123f, 0.771f, 0.442f, 0.919f}));
    EXPECT_NEAR(bdiSavings(snap), 0.0, 0.5); // little to gain
}

TEST(Analysis, DoppBdiAtLeastDopp)
{
    Snapshot snap;
    for (unsigned k = 0; k < 16; ++k) {
        snap.push_back(f32Block(
            k * blockBytes, {0.25f * static_cast<float>(k % 4)}));
    }
    EXPECT_GE(doppBdiSavings(snap, 14), mapSavings(snap, 14) - 1e-9);
}

TEST(Analysis, CaptureSnapshotFromLlc)
{
    MainMemory mem;
    ApproxRegistry reg;
    ApproxRegion r;
    r.base = 0x1000;
    r.size = 0x100;
    r.type = ElemType::U8;
    r.minValue = 0;
    r.maxValue = 255;
    r.name = "px";
    reg.add(r);
    ConventionalLlc llc(mem, 64 * 1024, 16, 6, &reg);
    BlockData buf;
    llc.fetch(0x1000, buf.data());
    llc.fetch(0x2000, buf.data());
    const Snapshot snap = captureSnapshot(llc, reg);
    ASSERT_EQ(snap.size(), 2u);
    unsigned approx = 0;
    for (const auto &b : snap)
        approx += b.approx ? 1 : 0;
    EXPECT_EQ(approx, 1u);
}

TEST(Analysis, SnapshotAverager)
{
    SnapshotAverager avg;
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(0.2);
    avg.sample(0.4);
    EXPECT_DOUBLE_EQ(avg.mean(), 0.3);
    EXPECT_EQ(avg.count(), 2u);
}

TEST(Analysis, EmptySnapshotsSafe)
{
    const Snapshot empty;
    EXPECT_DOUBLE_EQ(thresholdSavings(empty, 0.01), 0.0);
    EXPECT_DOUBLE_EQ(mapSavings(empty, 14), 0.0);
    EXPECT_DOUBLE_EQ(dedupSavings(empty), 0.0);
    EXPECT_DOUBLE_EQ(bdiSavings(empty), 0.0);
    EXPECT_DOUBLE_EQ(doppBdiSavings(empty, 14), 0.0);
}

TEST(Analysis, MixedTypesNeverSimilar)
{
    // Blocks of different element types cannot be merged by the
    // threshold analysis.
    Snapshot snap;
    snap.push_back(f32Block(0x0, {0.5f}));
    SnapshotBlock intBlock;
    intBlock.addr = 0x40;
    intBlock.approx = true;
    intBlock.type = ElemType::I32;
    intBlock.minValue = 0;
    intBlock.maxValue = 100;
    snap.push_back(intBlock);
    EXPECT_DOUBLE_EQ(thresholdSavings(snap, 0.10), 0.0);
}

} // namespace dopp
