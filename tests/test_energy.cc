/**
 * @file
 * Tests for CactiLite and the hardware-cost/energy models: power-law
 * fitting, Table 3 bit widths and totals (exact), anchor-point
 * tolerances, area reductions and energy arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/energy_model.hh"
#include "energy/hardware_cost.hh"

namespace dopp
{

TEST(PowerLaw, ExactFitOfTwoPoints)
{
    const PowerLaw law = fitPowerLaw({{1.0, 2.0}, {4.0, 8.0}});
    EXPECT_NEAR(law.eval(1.0), 2.0, 1e-9);
    EXPECT_NEAR(law.eval(4.0), 8.0, 1e-9);
    EXPECT_NEAR(law.b, 1.0, 1e-9);
}

TEST(PowerLaw, RecoverKnownExponent)
{
    // y = 3 x^0.5 sampled at several points.
    std::vector<std::pair<double, double>> pts;
    for (double x : {1.0, 4.0, 16.0, 64.0})
        pts.emplace_back(x, 3.0 * std::sqrt(x));
    const PowerLaw law = fitPowerLaw(pts);
    EXPECT_NEAR(law.a, 3.0, 1e-9);
    EXPECT_NEAR(law.b, 0.5, 1e-9);
}

TEST(PowerLaw, ZeroInputGivesZero)
{
    const PowerLaw law = fitPowerLaw({{1.0, 2.0}, {4.0, 8.0}});
    EXPECT_EQ(law.eval(0.0), 0.0);
}

namespace
{

/** Relative difference helper. */
double
rel(double measured, double paper)
{
    return std::abs(measured - paper) / paper;
}

} // namespace

TEST(CactiLite, AnchorsWithinTolerance)
{
    const CactiLite c;
    // Table 3 anchors: tag-like structures (KB → pJ, ns).
    EXPECT_LT(rel(c.tagArray(19 * 8192.0).readEnergyPj, 6.3), 0.20);
    EXPECT_LT(rel(c.tagArray(108 * 8192.0).readEnergyPj, 24.8), 0.20);
    EXPECT_LT(rel(c.tagArray(316 * 8192.0).readEnergyPj, 61.3), 0.20);
    // Data-like structures.
    EXPECT_LT(rel(c.dataArray(256 * 8192.0).readEnergyPj, 80.3), 0.10);
    EXPECT_LT(rel(c.dataArray(1024 * 8192.0).readEnergyPj, 322.7),
              0.10);
    EXPECT_LT(rel(c.dataArray(2048 * 8192.0).readEnergyPj, 667.4),
              0.10);
    EXPECT_LT(rel(c.dataArray(256 * 8192.0).latencyNs, 0.67), 0.10);
    EXPECT_LT(rel(c.dataArray(2048 * 8192.0).latencyNs, 1.27), 0.10);
}

TEST(CactiLite, MonotonicInCapacity)
{
    const CactiLite c;
    double prevArea = 0.0;
    double prevEnergy = 0.0;
    for (double kb : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
        const SramCost cost = c.dataArray(kb * 8192.0);
        EXPECT_GT(cost.areaMm2, prevArea);
        EXPECT_GT(cost.readEnergyPj, prevEnergy);
        prevArea = cost.areaMm2;
        prevEnergy = cost.readEnergyPj;
    }
}

TEST(CactiLite, LeakageProportionalToCapacity)
{
    const CactiLite c;
    const SramCost a = c.dataArray(256 * 8192.0);
    const SramCost b = c.dataArray(512 * 8192.0);
    EXPECT_NEAR(b.leakageMw / a.leakageMw, 2.0, 1e-9);
}

TEST(CactiLite, WritePremium)
{
    const CactiLite c;
    const SramCost cost = c.dataArray(1024 * 8192.0);
    EXPECT_GT(cost.writeEnergyPj, cost.readEnergyPj);
    EXPECT_NEAR(cost.writeEnergyPj / cost.readEnergyPj,
                CactiLite::writeEnergyFactor, 1e-12);
}

// ---------------------------------------------------------------------
// Hardware cost: Table 3 bit widths and totals must match exactly.
// ---------------------------------------------------------------------

namespace
{

DoppConfig
paperSplitDopp()
{
    DoppConfig d; // defaults are the Table 1 split configuration
    return d;
}

DoppConfig
paperUniDopp()
{
    DoppConfig d;
    d.tagEntries = 32 * 1024;
    d.dataEntries = 16 * 1024;
    d.unified = true;
    return d;
}

} // namespace

TEST(HardwareCost, BaselineEntryBits)
{
    const CactiLite c;
    const StructureCost s = conventionalCost(c, "b", 32 * 1024, 16);
    EXPECT_EQ(s.tagEntryBits, 27u);       // Table 3
    EXPECT_EQ(s.dataEntryBits, 512u);
    EXPECT_NEAR(s.totalKb, 2156.0, 0.5);
}

TEST(HardwareCost, PreciseEntryBits)
{
    const CactiLite c;
    const StructureCost s = conventionalCost(c, "p", 16 * 1024, 16);
    EXPECT_EQ(s.tagEntryBits, 28u);
    EXPECT_NEAR(s.totalKb, 1080.0, 0.5);
}

TEST(HardwareCost, DoppTagEntryBits)
{
    const CactiLite c;
    const StructureCost s = doppTagCost(c, "t", paperSplitDopp());
    EXPECT_EQ(s.tagEntryBits, 77u); // Table 3
    EXPECT_NEAR(s.totalKb, 154.0, 0.5);
}

TEST(HardwareCost, DoppDataEntryBits)
{
    const CactiLite c;
    const StructureCost s = doppDataCost(c, "d", paperSplitDopp());
    EXPECT_EQ(s.tagEntryBits, 38u); // Table 3 MTag entry
    EXPECT_NEAR(s.totalKb, 275.0, 0.5);
}

TEST(HardwareCost, UniDoppTagEntryBits)
{
    const CactiLite c;
    const StructureCost s = doppTagCost(c, "ut", paperUniDopp());
    EXPECT_EQ(s.tagEntryBits, 79u);
    EXPECT_NEAR(s.totalKb, 316.0, 0.5);
}

TEST(HardwareCost, UniDoppDataEntryBits)
{
    const CactiLite c;
    const StructureCost s = doppDataCost(c, "ud", paperUniDopp());
    EXPECT_EQ(s.tagEntryBits, 38u);
    EXPECT_NEAR(s.totalKb, 1100.0, 0.5);
}

TEST(HardwareCost, StorageReductionMatchesSec56)
{
    const CactiLite c;
    const double base =
        conventionalCost(c, "b", 32 * 1024, 16).totalKb;
    const double dopp =
        conventionalCost(c, "p", 16 * 1024, 16).totalKb +
        doppTagCost(c, "t", paperSplitDopp()).totalKb +
        doppDataCost(c, "d", paperSplitDopp()).totalKb;
    EXPECT_NEAR(base / dopp, 1.43, 0.02); // Sec 5.6
}

TEST(HardwareCost, SplitAreaReductionNearPaper)
{
    const CactiLite c;
    const LlcCost base = baselineLlcCost(c);
    const LlcCost split =
        splitLlcCost(c, 16 * 1024, 16, paperSplitDopp());
    const double reduction = base.totalAreaMm2 / split.totalAreaMm2;
    EXPECT_NEAR(reduction, 1.55, 0.12); // Fig 13 @1/4
    EXPECT_GT(split.fpuAreaMm2, 0.0);   // map-gen FPUs included
}

TEST(HardwareCost, SmallerDataArraysSaveMoreArea)
{
    const CactiLite c;
    const LlcCost base = baselineLlcCost(c);
    double prev = 0.0;
    for (u32 entries : {8u * 1024, 4u * 1024, 2u * 1024}) {
        DoppConfig d = paperSplitDopp();
        d.dataEntries = entries;
        const LlcCost split = splitLlcCost(c, 16 * 1024, 16, d);
        const double red = base.totalAreaMm2 / split.totalAreaMm2;
        EXPECT_GT(red, prev);
        prev = red;
    }
}

TEST(HardwareCost, UniAreaReductionNearPaper)
{
    const CactiLite c;
    const LlcCost base = baselineLlcCost(c);
    DoppConfig u = paperUniDopp();
    u.dataEntries = 8 * 1024; // 1/4 of the 2 MB tag-equivalent
    const LlcCost uni = uniLlcCost(c, u);
    EXPECT_NEAR(base.totalAreaMm2 / uni.totalAreaMm2, 3.15, 0.45);
}

TEST(HardwareCost, DataAccessLatencyClaim)
{
    // Sec 5.6: MTag + small data array beats the baseline data array
    // by about 1.31x.
    const CactiLite c;
    const StructureCost base =
        conventionalCost(c, "b", 32 * 1024, 16);
    const StructureCost dopp = doppDataCost(c, "d", paperSplitDopp());
    const double ratio = base.dataPart.latencyNs /
        (dopp.tagPart.latencyNs + dopp.dataPart.latencyNs);
    EXPECT_NEAR(ratio, 1.31, 0.15);
}

TEST(HardwareCost, MapBitsAffectTagWidth)
{
    const CactiLite c;
    DoppConfig d12 = paperSplitDopp();
    d12.mapBits = 12;
    DoppConfig d14 = paperSplitDopp();
    const unsigned w12 = doppTagCost(c, "t", d12).tagEntryBits;
    const unsigned w14 = doppTagCost(c, "t", d14).tagEntryBits;
    EXPECT_EQ(w14 - w12, 3u); // 21-bit vs 18-bit map field
}

// ---------------------------------------------------------------------
// Energy model arithmetic.
// ---------------------------------------------------------------------

TEST(EnergyModel, BaselineEnergyScalesWithAccesses)
{
    const EnergyModel em;
    LlcStats s;
    s.tagArray.reads = 1000;
    s.dataArray.reads = 1000;
    const EnergyResult one = em.baseline(s, 1000);
    LlcStats s2 = s;
    s2.tagArray.reads = 2000;
    s2.dataArray.reads = 2000;
    const EnergyResult two = em.baseline(s2, 1000);
    EXPECT_NEAR(two.dynamicPj / one.dynamicPj, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(one.leakagePj, two.leakagePj);
}

TEST(EnergyModel, LeakageScalesWithRuntime)
{
    const EnergyModel em;
    LlcStats s;
    const EnergyResult a = em.baseline(s, 1000);
    const EnergyResult b = em.baseline(s, 3000);
    EXPECT_NEAR(b.leakagePj / a.leakagePj, 3.0, 1e-9);
}

TEST(EnergyModel, MapGenChargedAt168pJ)
{
    const EnergyModel em;
    LlcStats precise;
    LlcStats dopp;
    dopp.mapGens = 1000;
    const EnergyResult e =
        em.split(precise, dopp, DoppConfig{}, 0);
    EXPECT_DOUBLE_EQ(e.mapGenPj, 168.0 * 1000);
    EXPECT_DOUBLE_EQ(e.dynamicPj, e.mapGenPj);
}

TEST(EnergyModel, SplitPerAccessCheaperThanBaseline)
{
    // One access to each structure: the Dopp side must be much
    // cheaper than one baseline access (the source of Fig 11a).
    const EnergyModel em;
    LlcStats base;
    base.tagArray.reads = 1;
    base.dataArray.reads = 1;
    const double basePj = em.baseline(base, 0).dynamicPj;

    LlcStats precise;
    LlcStats dopp;
    dopp.tagArray.reads = 1;
    dopp.mtagArray.reads = 1;
    dopp.dataArray.reads = 1;
    const double doppPj =
        em.split(precise, dopp, DoppConfig{}, 0).dynamicPj;
    EXPECT_GT(basePj / doppPj, 3.0);
}

TEST(EnergyModel, UnifiedUsesUniStructures)
{
    const EnergyModel em;
    LlcStats s;
    s.tagArray.reads = 1;
    DoppConfig uni;
    uni.tagEntries = 32 * 1024;
    uni.dataEntries = 16 * 1024;
    uni.unified = true;
    const double uniTagPj = em.unified(s, uni, 0).dynamicPj;
    // The 316 KB uni tag array costs more per read than the 154 KB
    // split tag array.
    LlcStats precise;
    const double splitTagPj =
        em.split(precise, s, DoppConfig{}, 0).dynamicPj;
    EXPECT_GT(uniTagPj, splitTagPj);
}

TEST(HardwareCost, FpuConstants)
{
    EXPECT_EQ(mapGenFpuCount, 8u);
    EXPECT_DOUBLE_EQ(mapGenFpuAreaMm2, 0.01); // Sec 4
}

} // namespace dopp
