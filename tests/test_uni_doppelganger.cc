/**
 * @file
 * Dedicated uniDoppelgänger coverage (Sec 3.8) beyond the basics:
 * precise/approximate cohabitation under data pressure, fractional
 * (non-power-of-two) data arrays, direct-pointer integrity when
 * precise entries are evicted by approximate allocations and vice
 * versa, and the Table 1 uni geometry.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/doppelganger_cache.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

class UniPressureTest : public ::testing::Test
{
  protected:
    UniPressureTest()
    {
        ApproxRegion r;
        r.base = approxBase;
        r.size = 1 << 20;
        r.type = ElemType::F32;
        r.minValue = 0.0;
        r.maxValue = 1.0;
        r.name = "approx";
        reg.add(r);

        DoppConfig cfg;
        cfg.tagEntries = 128;
        cfg.tagWays = 16;
        cfg.dataEntries = 8; // tiny: constant data pressure
        cfg.dataWays = 4;
        cfg.unified = true;
        cache = std::make_unique<DoppelgangerCache>(mem, cfg, &reg);
    }

    void
    seed(Addr addr, float value)
    {
        BlockData b;
        for (unsigned i = 0; i < 16; ++i)
            setBlockElement(b.data(), ElemType::F32, i,
                            static_cast<double>(value));
        mem.poke(addr, b.data(), blockBytes);
    }

    static constexpr Addr approxBase = 0x100000;
    static constexpr Addr preciseBase = 0x900000;

    MainMemory mem;
    ApproxRegistry reg;
    std::unique_ptr<DoppelgangerCache> cache;
    BlockData buf;
};

} // namespace

TEST_F(UniPressureTest, ApproxAllocationCanEvictPreciseEntry)
{
    // Fill the data array with precise blocks, then insert approximate
    // ones: precise victims' tags must be dropped cleanly.
    for (unsigned k = 0; k < 8; ++k) {
        seed(preciseBase + k * 0x1000, 0.5f);
        cache->fetch(preciseBase + k * 0x1000, buf.data());
    }
    EXPECT_EQ(cache->dataCount(), 8u);

    for (unsigned k = 0; k < 8; ++k) {
        seed(approxBase + k * 0x1000,
             0.1f + 0.1f * static_cast<float>(k));
        cache->fetch(approxBase + k * 0x1000, buf.data());
    }
    std::string why;
    EXPECT_TRUE(cache->checkInvariants(&why)) << why;
    // Some precise blocks were displaced; those still resident must
    // still resolve through their direct pointers.
    unsigned resident = 0;
    for (unsigned k = 0; k < 8; ++k) {
        if (cache->contains(preciseBase + k * 0x1000)) {
            ++resident;
            cache->fetch(preciseBase + k * 0x1000, buf.data());
            EXPECT_FLOAT_EQ(static_cast<float>(blockElement(
                                buf.data(), ElemType::F32, 0)),
                            0.5f);
        }
    }
    EXPECT_LT(resident, 8u);
}

TEST_F(UniPressureTest, PreciseAllocationCanEvictSharedApproxEntry)
{
    // One shared approximate entry with many tags, then precise fills:
    // evicting the shared entry must drop every linked tag.
    for (unsigned k = 0; k < 6; ++k) {
        seed(approxBase + k * 0x1000, 0.5f);
        cache->fetch(approxBase + k * 0x1000, buf.data());
    }
    EXPECT_EQ(cache->tagsSharingWith(approxBase), 6u);

    for (unsigned k = 0; k < 16; ++k) {
        seed(preciseBase + k * 0x1000, 0.9f);
        cache->fetch(preciseBase + k * 0x1000, buf.data());
    }
    std::string why;
    EXPECT_TRUE(cache->checkInvariants(&why)) << why;
    // Either all six share a surviving entry, or all six are gone.
    const unsigned sharing = cache->tagsSharingWith(approxBase);
    EXPECT_TRUE(sharing == 6 || sharing == 0) << sharing;
}

TEST_F(UniPressureTest, DirtyPreciseVictimWritesBackExactly)
{
    seed(preciseBase, 0.25f);
    cache->fetch(preciseBase, buf.data());
    BlockData w;
    for (unsigned i = 0; i < 16; ++i)
        setBlockElement(w.data(), ElemType::F32, i, 0.875);
    cache->writeback(preciseBase, w.data());

    // Force its eviction with approximate pressure everywhere.
    Rng rng(3);
    for (unsigned k = 0; k < 64; ++k) {
        const Addr a = approxBase + k * 0x1000;
        seed(a, static_cast<float>(rng.uniform()));
        cache->fetch(a, buf.data());
    }
    if (!cache->contains(preciseBase)) {
        BlockData back;
        mem.peek(preciseBase, back.data(), blockBytes);
        EXPECT_FLOAT_EQ(static_cast<float>(blockElement(
                            back.data(), ElemType::F32, 0)),
                        0.875f);
    }
}

TEST(UniGeometry, FractionalThreeQuarterArrayWorks)
{
    // The paper's uniDopp 3/4 point: 1536 sets at 16 ways.
    MainMemory mem;
    DoppConfig cfg;
    cfg.tagEntries = 32 * 1024;
    cfg.dataEntries = 24 * 1024; // 3/4 of the tags
    cfg.unified = true;
    DoppelgangerCache cache(mem, cfg, nullptr);
    BlockData buf;
    Rng rng(8);
    for (int i = 0; i < 4000; ++i)
        cache.fetch(rng.below(8192) * blockBytes, buf.data());
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
    EXPECT_GT(cache.tagCount(), 0u);
}

TEST(UniGeometry, Table1UniConfiguration)
{
    // 2 MB tag-equivalent with a 1 MB data array runs and keeps
    // invariants under mixed traffic.
    MainMemory mem;
    ApproxRegistry reg;
    ApproxRegion r;
    r.base = 0;
    r.size = 1 << 22;
    r.type = ElemType::F32;
    r.minValue = 0.0;
    r.maxValue = 1.0;
    r.name = "approx";
    reg.add(r);
    DoppConfig cfg;
    cfg.tagEntries = 32 * 1024;
    cfg.dataEntries = 16 * 1024;
    cfg.unified = true;
    DoppelgangerCache cache(mem, cfg, &reg);
    BlockData buf;
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        const bool approx = rng.below(2) == 0;
        const Addr a = (approx ? 0 : (1ULL << 23)) +
            rng.below(2048) * blockBytes;
        cache.fetch(a, buf.data());
    }
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
    // Both populations resident.
    u64 precise = 0;
    u64 approx = 0;
    cache.forEachBlock([&](const LlcBlockInfo &info) {
        (info.approx ? approx : precise) += 1;
    });
    EXPECT_GT(precise, 0u);
    EXPECT_GT(approx, 0u);
}

TEST(UniGeometry, ApproxSharingAcrossPressureIsStable)
{
    // Two similar approximate blocks keep sharing an entry while a
    // third population churns the rest of the array.
    MainMemory mem;
    ApproxRegistry reg;
    ApproxRegion r;
    r.base = 0;
    r.size = 1 << 22;
    r.type = ElemType::F32;
    r.minValue = 0.0;
    r.maxValue = 1.0;
    r.name = "approx";
    reg.add(r);
    DoppConfig cfg;
    cfg.tagEntries = 1024;
    cfg.dataEntries = 256;
    cfg.dataWays = 4;
    cfg.unified = true;
    DoppelgangerCache cache(mem, cfg, &reg);
    BlockData seedBuf;
    for (unsigned i = 0; i < 16; ++i)
        setBlockElement(seedBuf.data(), ElemType::F32, i, 0.5);
    mem.poke(0x0, seedBuf.data(), blockBytes);
    mem.poke(0x10000, seedBuf.data(), blockBytes);

    BlockData buf;
    cache.fetch(0x0, buf.data());
    cache.fetch(0x10000, buf.data());
    ASSERT_TRUE(cache.sameDataEntry(0x0, 0x10000));

    Rng rng(10);
    for (int i = 0; i < 2000; ++i) {
        // Keep the pair warm while churning.
        cache.fetch(0x0, buf.data());
        cache.fetch(rng.below(2048) * blockBytes + 0x100000,
                    buf.data());
    }
    if (cache.contains(0x0) && cache.contains(0x10000)) {
        EXPECT_TRUE(cache.sameDataEntry(0x0, 0x10000));
    }
    std::string why;
    EXPECT_TRUE(cache.checkInvariants(&why)) << why;
}

} // namespace dopp
