/**
 * @file
 * Tests for Frequent Pattern Compression: per-word classification,
 * zero-run compaction, size bounds, and comparisons against B∆I on
 * the pattern families each is known to favor.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "compress/bdi.hh"
#include "compress/fpc.hh"
#include "sim/memory.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

BlockData
wordBlock(const std::vector<u32> &words)
{
    BlockData b = {};
    for (unsigned i = 0; i < blockBytes / 4; ++i) {
        const u32 w = words[i % words.size()];
        std::memcpy(b.data() + i * 4, &w, 4);
    }
    return b;
}

} // namespace

TEST(Fpc, ClassifySign4)
{
    EXPECT_EQ(fpcClassify(0), FpcPattern::Sign4);
    EXPECT_EQ(fpcClassify(7), FpcPattern::Sign4);
    EXPECT_EQ(fpcClassify(0xFFFFFFF8u), FpcPattern::Sign4); // -8
}

TEST(Fpc, ClassifySign8)
{
    EXPECT_EQ(fpcClassify(100), FpcPattern::Sign8);
    EXPECT_EQ(fpcClassify(0xFFFFFF80u), FpcPattern::Sign8); // -128
}

TEST(Fpc, ClassifySign16)
{
    EXPECT_EQ(fpcClassify(30000), FpcPattern::Sign16);
    EXPECT_EQ(fpcClassify(0xFFFF8000u), FpcPattern::Sign16);
}

TEST(Fpc, ClassifyHalfZeroLow)
{
    // Upper half zero but not sign-extendable from 16 bits.
    EXPECT_EQ(fpcClassify(0x0000F234u), FpcPattern::HalfZeroLow);
}

TEST(Fpc, ClassifyHalfSign8)
{
    // Both halfwords 8-bit sign-extendable: 0x00110022 -> hi 0x0011?
    // 0x0011 does not sign-extend from 8; use 0x007F007F.
    EXPECT_EQ(fpcClassify(0x007F007Fu), FpcPattern::HalfSign8);
    EXPECT_EQ(fpcClassify(0xFF80FF80u), FpcPattern::HalfSign8);
}

TEST(Fpc, ClassifyRepeatedByte)
{
    EXPECT_EQ(fpcClassify(0xABABABABu), FpcPattern::RepeatedByte);
}

TEST(Fpc, ClassifyUncompressed)
{
    EXPECT_EQ(fpcClassify(0x12345678u), FpcPattern::Uncompressed);
}

TEST(Fpc, ZeroBlockCompressesToRuns)
{
    const BlockData b = {};
    // 16 zero words -> 2 run codes (8 words each) of 6 bits = 12 bits.
    EXPECT_EQ(fpcCompressedBits(b.data()), 12u);
    EXPECT_EQ(fpcCompressedSize(b.data()), 2u);
}

TEST(Fpc, SmallIntegersCompressWell)
{
    const BlockData b = wordBlock({1, 2, 3, 4});
    // 16 words x (3 + 4) bits = 112 bits = 14 bytes.
    EXPECT_EQ(fpcCompressedBits(b.data()), 112u);
    EXPECT_EQ(fpcCompressedSize(b.data()), 14u);
}

TEST(Fpc, RandomWordsDoNotCompress)
{
    Rng rng(4);
    BlockData b;
    for (unsigned i = 0; i < blockBytes / 4; ++i) {
        const u32 w = static_cast<u32>(rng.next()) | 0x01020304u;
        std::memcpy(b.data() + i * 4, &w, 4);
    }
    // Mostly uncompressed words: 16 x 35 bits = 70 bytes -> capped 64.
    EXPECT_EQ(fpcCompressedSize(b.data()), blockBytes);
}

TEST(Fpc, SizeNeverExceedsBlock)
{
    Rng rng(9);
    for (int trial = 0; trial < 300; ++trial) {
        BlockData b;
        for (auto &byte : b)
            byte = static_cast<u8>(rng.below(256));
        EXPECT_LE(fpcCompressedSize(b.data()), blockBytes);
        EXPECT_GE(fpcCompressedSize(b.data()), 1u);
    }
}

TEST(Fpc, MixedRunAndPatterns)
{
    // 8 zeros then 8 ints in [8, 15]: one 6-bit run code + 8 Sign8
    // codes of 3+8 bits (values above 7 exceed the Sign4 window).
    BlockData b = {};
    for (unsigned i = 8; i < 16; ++i) {
        const u32 w = i;
        std::memcpy(b.data() + i * 4, &w, 4);
    }
    EXPECT_EQ(fpcCompressedBits(b.data()), 6u + 8u * 11u);
}

TEST(Fpc, BeatsBdiOnSparseWords)
{
    // Scattered small values with zeros in between favor FPC's
    // per-word codes over B∆I's uniform delta size.
    BlockData b = {};
    for (unsigned i = 0; i < 16; i += 2) {
        const u32 w = 3 + i;
        std::memcpy(b.data() + i * 4, &w, 4);
    }
    EXPECT_LT(fpcCompressedSize(b.data()),
              bdiCompressedSize(b.data()));
}

TEST(Fpc, BdiBeatsFpcOnLargeBaseDeltas)
{
    // Words near a large shared base: B∆I stores one base + tiny
    // deltas; FPC sees uncompressible 32-bit words.
    BlockData b;
    for (unsigned i = 0; i < 16; ++i) {
        const u32 w = 0x76543210u + i;
        std::memcpy(b.data() + i * 4, &w, 4);
    }
    EXPECT_LT(bdiCompressedSize(b.data()),
              fpcCompressedSize(b.data()));
}

TEST(Fpc, PatternBitWidths)
{
    EXPECT_EQ(fpcPatternBits(FpcPattern::ZeroRun), 3u);
    EXPECT_EQ(fpcPatternBits(FpcPattern::Sign4), 4u);
    EXPECT_EQ(fpcPatternBits(FpcPattern::Sign8), 8u);
    EXPECT_EQ(fpcPatternBits(FpcPattern::Sign16), 16u);
    EXPECT_EQ(fpcPatternBits(FpcPattern::RepeatedByte), 8u);
    EXPECT_EQ(fpcPatternBits(FpcPattern::Uncompressed), 32u);
}

} // namespace dopp
