/**
 * @file
 * Tests for the 4-core coherent hierarchy: latency accounting,
 * MSI directory behaviour, inclusive back-invalidation, drain, and a
 * randomized functional-consistency property test against a flat
 * reference memory.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "sim/hierarchy.hh"
#include "sim/llc.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : llc(mem, 2 * 1024 * 1024, 16, 6, nullptr),
          sys(HierarchyConfig{}, llc, mem)
    {
    }

    u32
    read32(CoreId core, Addr a, Tick *lat = nullptr)
    {
        u32 v = 0;
        const Tick t = sys.access(core, a, false, 4, &v);
        if (lat)
            *lat = t;
        return v;
    }

    Tick
    write32(CoreId core, Addr a, u32 v)
    {
        return sys.access(core, a, true, 4, &v);
    }

    MainMemory mem;
    ConventionalLlc llc;
    MemorySystem sys;
};

} // namespace

TEST_F(HierarchyTest, ColdMissLatencyStacksLevels)
{
    Tick lat;
    read32(0, 0x1000, &lat);
    // L1 (1) + L2 (3) + LLC (6) + memory (160).
    EXPECT_EQ(lat, 1u + 3u + 6u + 160u);
}

TEST_F(HierarchyTest, L1HitLatency)
{
    read32(0, 0x1000);
    Tick lat;
    read32(0, 0x1000, &lat);
    EXPECT_EQ(lat, 1u);
}

TEST_F(HierarchyTest, L2HitAfterL1Eviction)
{
    // L1 is 16 KB 4-way (64 sets); five same-set blocks evict one.
    const Addr stride = 64 * blockBytes;
    for (unsigned k = 0; k < 5; ++k)
        read32(0, k * stride);
    Tick lat;
    read32(0, 0, &lat); // evicted from L1, still in L2
    EXPECT_EQ(lat, 1u + 3u);
}

TEST_F(HierarchyTest, WriteThenReadSameCore)
{
    write32(0, 0x1000, 0xABCD);
    EXPECT_EQ(read32(0, 0x1000), 0xABCDu);
}

TEST_F(HierarchyTest, SubBlockAccessesIndependent)
{
    write32(0, 0x1000, 1);
    write32(0, 0x1004, 2);
    EXPECT_EQ(read32(0, 0x1000), 1u);
    EXPECT_EQ(read32(0, 0x1004), 2u);
}

TEST_F(HierarchyTest, RemoteCoreSeesWrite)
{
    write32(0, 0x1000, 0xBEEF);
    EXPECT_EQ(read32(1, 0x1000), 0xBEEFu);
}

TEST_F(HierarchyTest, WriteInvalidatesRemoteCopies)
{
    read32(1, 0x1000); // core 1 caches the block
    write32(0, 0x1000, 77);
    EXPECT_EQ(read32(1, 0x1000), 77u); // must not read stale data
}

TEST_F(HierarchyTest, PingPongWritesStayCoherent)
{
    for (u32 i = 0; i < 20; ++i) {
        write32(i % 4, 0x2000, i);
        EXPECT_EQ(read32((i + 1) % 4, 0x2000), i);
    }
    EXPECT_GT(sys.stats().remoteFetches + sys.stats().upgrades, 0u);
}

TEST_F(HierarchyTest, RemoteFetchCharged)
{
    write32(0, 0x1000, 5);
    Tick lat;
    read32(1, 0x1000, &lat);
    // Remote M copy adds the remote penalty on top of the LLC path.
    EXPECT_GE(lat, 1u + 3u + 6u + HierarchyConfig{}.remotePenalty);
    EXPECT_EQ(sys.stats().remoteFetches, 1u);
}

TEST_F(HierarchyTest, UpgradeCountsOnSharedWrite)
{
    read32(0, 0x1000);
    read32(1, 0x1000);
    write32(0, 0x1000, 9);
    EXPECT_GE(sys.stats().upgrades, 1u);
    EXPECT_GE(sys.stats().invalidationsSent, 1u);
}

TEST_F(HierarchyTest, StatsCountHitsAndMisses)
{
    read32(0, 0x1000);
    read32(0, 0x1000);
    read32(0, 0x1040);
    const HierarchyStats &s = sys.stats();
    EXPECT_EQ(s.accesses, 3u);
    EXPECT_EQ(s.loads, 3u);
    EXPECT_EQ(s.l1Hits, 1u);
    EXPECT_EQ(s.l1Misses, 2u);
    EXPECT_EQ(s.l2Misses, 2u);
}

TEST_F(HierarchyTest, DrainWritesDirtyDataToMemory)
{
    write32(0, 0x1000, 0x1234);
    sys.drain();
    u32 v = 0;
    mem.peek(0x1000, &v, 4);
    EXPECT_EQ(v, 0x1234u);
    EXPECT_FALSE(llc.contains(0x1000));
}

TEST_F(HierarchyTest, DrainThenReadRefetches)
{
    write32(0, 0x1000, 42);
    sys.drain();
    EXPECT_EQ(read32(2, 0x1000), 42u);
}

TEST_F(HierarchyTest, InclusionMaintainedUnderLlcEviction)
{
    // A small LLC forces evictions; reads afterward must still be
    // correct (back-invalidation dropped the private copies).
    ConventionalLlc tiny(mem, 16 * 1024, 4, 6, nullptr); // 64 sets...
    MemorySystem small(HierarchyConfig{}, tiny, mem);
    const Addr stride = 64 * blockBytes;
    u32 v;
    for (u32 k = 0; k < 8; ++k) {
        v = k;
        small.access(0, k * stride, true, 4, &v);
    }
    for (u32 k = 0; k < 8; ++k) {
        v = 0xFFFFFFFF;
        small.access(0, k * stride, false, 4, &v);
        EXPECT_EQ(v, k);
    }
    EXPECT_GT(tiny.stats().backInvalidations, 0u);
}

TEST_F(HierarchyTest, AccessCountsPerLevel)
{
    for (int i = 0; i < 10; ++i)
        read32(0, 0x1000);
    EXPECT_EQ(sys.l1Accesses(), 10u);
    EXPECT_EQ(sys.l2Accesses(), 1u);
}

TEST(HierarchyProperty, RandomTrafficMatchesFlatMemory)
{
    // Functional consistency: with a precise LLC, every load must
    // return exactly what a flat reference memory would.
    MainMemory mem;
    ConventionalLlc llc(mem, 64 * 1024, 8, 6, nullptr); // small: churn
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    std::unordered_map<Addr, u32> reference;

    Rng rng(2024);
    for (int i = 0; i < 20000; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(4));
        const Addr a = rng.below(4096) * 4; // 16 KB of u32s
        if (rng.below(2) == 0) {
            u32 v = static_cast<u32>(rng.next());
            sys.access(core, a, true, 4, &v);
            reference[a] = v;
        } else {
            u32 v = 0;
            sys.access(core, a, false, 4, &v);
            const auto it = reference.find(a);
            const u32 expect = it == reference.end() ? 0 : it->second;
            ASSERT_EQ(v, expect)
                << "mismatch at 0x" << std::hex << a << " op " << i;
        }
    }

    // After drain, backing memory holds the reference contents.
    sys.drain();
    for (const auto &[a, expect] : reference) {
        u32 v = 0;
        mem.peek(a, &v, 4);
        ASSERT_EQ(v, expect);
    }
}

TEST(HierarchyProperty, WiderSweepAcrossCoreCounts)
{
    for (u32 cores : {1u, 2u, 4u}) {
        MainMemory mem;
        ConventionalLlc llc(mem, 32 * 1024, 4, 6, nullptr);
        HierarchyConfig hc;
        hc.numCores = cores;
        MemorySystem sys(hc, llc, mem);
        std::unordered_map<Addr, u8> reference;
        Rng rng(cores * 17);
        for (int i = 0; i < 5000; ++i) {
            const CoreId core = static_cast<CoreId>(rng.below(cores));
            const Addr a = rng.below(2048);
            if (rng.below(2) == 0) {
                u8 v = static_cast<u8>(rng.below(256));
                sys.access(core, a, true, 1, &v);
                reference[a] = v;
            } else {
                u8 v = 0;
                sys.access(core, a, false, 1, &v);
                const auto it = reference.find(a);
                ASSERT_EQ(v, it == reference.end() ? 0 : it->second);
            }
        }
    }
}

TEST(HierarchyConfigTest, Table1Defaults)
{
    const HierarchyConfig hc;
    EXPECT_EQ(hc.numCores, 4u);
    EXPECT_EQ(hc.l1Bytes, 16u * 1024);
    EXPECT_EQ(hc.l1Ways, 4u);
    EXPECT_EQ(hc.l1Latency, 1u);
    EXPECT_EQ(hc.l2Bytes, 128u * 1024);
    EXPECT_EQ(hc.l2Ways, 8u);
    EXPECT_EQ(hc.l2Latency, 3u);
}

TEST(HierarchyDeathTest, TooManyCoresFatal)
{
    MainMemory mem;
    ConventionalLlc llc(mem, 64 * 1024, 8, 6, nullptr);
    HierarchyConfig hc;
    hc.numCores = 64;
    EXPECT_EXIT((MemorySystem(hc, llc, mem)),
                ::testing::ExitedWithCode(1), "core count");
}

} // namespace dopp
