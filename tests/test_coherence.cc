/**
 * @file
 * Deep coherence and inclusion tests for the 4-core hierarchy,
 * including the invariants the Doppelgänger LLC's multi-tag evictions
 * must not break: L2 ⊇ L1 per core, inclusive LLC (every privately
 * cached block has an LLC tag), precise-data exactness under churn on
 * the split organization, and writeback ordering.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/split_llc.hh"
#include "sim/hierarchy.hh"
#include "util/random.hh"

namespace dopp
{

namespace
{

/** Assert L2 ⊇ L1 and LLC ⊇ L2 for every core. */
void
expectInclusion(MemorySystem &sys, LastLevelCache &llc)
{
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        sys.l1Cache(c).forEachLine(
            [&](Addr addr, PrivateCache::Line &) {
                EXPECT_NE(sys.l2Cache(c).find(addr), nullptr)
                    << "L1 line 0x" << std::hex << addr
                    << " missing from L2 of core " << std::dec << c;
            });
        sys.l2Cache(c).forEachLine(
            [&](Addr addr, PrivateCache::Line &) {
                EXPECT_TRUE(llc.contains(addr))
                    << "L2 line 0x" << std::hex << addr
                    << " missing from the inclusive LLC";
            });
    }
}

} // namespace

TEST(Coherence, InclusionAfterSequentialFill)
{
    MainMemory mem;
    ConventionalLlc llc(mem, 256 * 1024, 16, 6, nullptr);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    u32 v = 0;
    for (u32 i = 0; i < 4000; ++i)
        sys.access(i % 4, i * 64, false, 4, &v);
    expectInclusion(sys, llc);
}

TEST(Coherence, InclusionUnderRandomChurnConventional)
{
    MainMemory mem;
    ConventionalLlc llc(mem, 64 * 1024, 8, 6, nullptr); // small: evicts
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    Rng rng(31);
    for (int i = 0; i < 20000; ++i) {
        u32 v = static_cast<u32>(rng.next());
        sys.access(static_cast<CoreId>(rng.below(4)),
                   rng.below(4096) * 64, rng.below(2) == 0, 4, &v);
    }
    expectInclusion(sys, llc);
}

TEST(Coherence, InclusionUnderRandomChurnSplitDopp)
{
    // The Doppelgänger's data evictions invalidate many tags at once;
    // back-invalidation must keep the private caches inside the LLC.
    MainMemory mem;
    ApproxRegistry reg;
    ApproxRegion r;
    r.base = 0;
    r.size = 1ULL << 22;
    r.type = ElemType::F32;
    r.minValue = 0.0;
    r.maxValue = 1.0;
    r.name = "all";
    reg.add(r);

    SplitLlcConfig cfg;
    cfg.preciseBytes = 64 * 1024;
    cfg.dopp.tagEntries = 512;
    cfg.dopp.dataEntries = 64;
    cfg.dopp.dataWays = 4;
    SplitLlc llc(mem, cfg, reg);
    MemorySystem sys(HierarchyConfig{}, llc, mem);

    Rng rng(32);
    for (int i = 0; i < 20000; ++i) {
        u32 v = static_cast<u32>(rng.next());
        sys.access(static_cast<CoreId>(rng.below(4)),
                   rng.below(2048) * 64, rng.below(2) == 0, 4, &v);
    }
    expectInclusion(sys, llc);
    std::string why;
    EXPECT_TRUE(llc.doppelganger().checkInvariants(&why)) << why;
}

TEST(Coherence, PreciseDataExactUnderSplitDoppChurn)
{
    // The killer property of the split design: addresses outside every
    // annotated region must behave *exactly* like a precise cache, no
    // matter how hard the approximate side churns.
    MainMemory mem;
    ApproxRegistry reg;
    ApproxRegion r;
    r.base = 0;
    r.size = 1ULL << 20; // approx: [0, 1M)
    r.type = ElemType::F32;
    r.minValue = 0.0;
    r.maxValue = 1.0;
    r.name = "approx";
    reg.add(r);

    SplitLlcConfig cfg;
    cfg.preciseBytes = 64 * 1024;
    cfg.dopp.tagEntries = 512;
    cfg.dopp.dataEntries = 64;
    cfg.dopp.dataWays = 4;
    SplitLlc llc(mem, cfg, reg);
    MemorySystem sys(HierarchyConfig{}, llc, mem);

    const Addr preciseBase = 1ULL << 24;
    std::unordered_map<Addr, u32> reference;
    Rng rng(33);
    for (int i = 0; i < 30000; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(4));
        if (rng.below(3) == 0) {
            // Approximate-side churn (values may be corrupted; we
            // never check them).
            u32 v = static_cast<u32>(rng.next());
            sys.access(core, rng.below(8192) * 64,
                       rng.below(2) == 0, 4, &v);
        } else {
            const Addr a = preciseBase + rng.below(2048) * 4;
            if (rng.below(2) == 0) {
                u32 v = static_cast<u32>(rng.next());
                sys.access(core, a, true, 4, &v);
                reference[a] = v;
            } else {
                u32 v = 0;
                sys.access(core, a, false, 4, &v);
                const auto it = reference.find(a);
                ASSERT_EQ(v, it == reference.end() ? 0 : it->second)
                    << "precise data corrupted at op " << i;
            }
        }
    }
}

TEST(Coherence, WritebackOrderingAcrossCores)
{
    // Core 0 writes, cores 1..3 read in turn; each reader must see the
    // most recent write even though the block migrates through the
    // LLC-writeback path each time.
    MainMemory mem;
    ConventionalLlc llc(mem, 256 * 1024, 16, 6, nullptr);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    for (u32 round = 0; round < 50; ++round) {
        u32 v = round * 1000;
        sys.access(0, 0x5000, true, 4, &v);
        for (CoreId c = 1; c < 4; ++c) {
            u32 got = 0;
            sys.access(c, 0x5000, false, 4, &got);
            ASSERT_EQ(got, round * 1000) << "core " << c;
        }
    }
}

TEST(Coherence, FalseSharingWithinOneBlock)
{
    // Four cores write disjoint words of one block; all writes must
    // survive the ping-ponging.
    MainMemory mem;
    ConventionalLlc llc(mem, 256 * 1024, 16, 6, nullptr);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    for (u32 round = 0; round < 20; ++round) {
        for (CoreId c = 0; c < 4; ++c) {
            u32 v = round * 10 + c;
            sys.access(c, 0x7000 + c * 4, true, 4, &v);
        }
    }
    for (CoreId c = 0; c < 4; ++c) {
        u32 got = 0;
        sys.access((c + 1) % 4, 0x7000 + c * 4, false, 4, &got);
        EXPECT_EQ(got, 190u + c);
    }
}

TEST(Coherence, DrainPreservesEveryDirtyWord)
{
    MainMemory mem;
    ConventionalLlc llc(mem, 64 * 1024, 8, 6, nullptr);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    std::unordered_map<Addr, u32> reference;
    Rng rng(34);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.below(4096) * 4;
        u32 v = static_cast<u32>(rng.next());
        sys.access(static_cast<CoreId>(rng.below(4)), a, true, 4, &v);
        reference[a] = v;
    }
    sys.drain();
    for (const auto &[a, expect] : reference) {
        u32 v = 0;
        mem.peek(a, &v, 4);
        ASSERT_EQ(v, expect) << std::hex << a;
    }
}

TEST(Coherence, UpgradeLatencyChargedOnce)
{
    MainMemory mem;
    ConventionalLlc llc(mem, 256 * 1024, 16, 6, nullptr);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    u32 v = 1;
    sys.access(0, 0x9000, false, 4, &v); // S in core 0
    sys.access(1, 0x9000, false, 4, &v); // S in cores 0,1

    // Core 0 upgrades: one remote-penalty charge on top of the L1 hit.
    const Tick lat = sys.access(0, 0x9000, true, 4, &v);
    EXPECT_EQ(lat, 1u + HierarchyConfig{}.remotePenalty);
    // Second write: already owner, plain L1-hit latency.
    const Tick lat2 = sys.access(0, 0x9000, true, 4, &v);
    EXPECT_EQ(lat2, 1u);
}

TEST(Coherence, ReadAfterRemoteWriteSeesLlcPath)
{
    MainMemory mem;
    ConventionalLlc llc(mem, 256 * 1024, 16, 6, nullptr);
    MemorySystem sys(HierarchyConfig{}, llc, mem);
    u32 v = 42;
    sys.access(0, 0xA000, true, 4, &v);
    const u64 writebacksBefore = llc.stats().writebacksIn;
    u32 got = 0;
    sys.access(1, 0xA000, false, 4, &got);
    EXPECT_EQ(got, 42u);
    // The dirty remote copy was written back through the LLC.
    EXPECT_GT(llc.stats().writebacksIn, writebacksBefore);
}

} // namespace dopp
