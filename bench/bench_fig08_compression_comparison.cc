/**
 * @file
 * Fig 8: approximate-data storage savings of Doppelgänger (14-bit map)
 * against base-delta-immediate compression (B∆I) and exact
 * deduplication, plus the combined Dopp + B∆I.
 *
 * Methodology (paper Sec 5.1): all four measured over baseline 2 MB
 * LLC snapshots, approximate blocks only. Paper averages: B∆I 20.9%,
 * exact dedup 5.3%, 14-bit Dopp 37.9%, Dopp+B∆I 43.9%.
 */

#include <array>

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const auto &names = workloadNames();
    const size_t cap = snapshotCap();

    std::vector<std::array<SnapshotAverager, 4>> avg(names.size());
    std::vector<RunConfig> configs;
    for (size_t w = 0; w < names.size(); ++w) {
        RunConfig cfg = defaultConfig(names[w]);
        cfg.kind = LlcKind::Baseline;
        cfg.snapshotPeriod = snapshotPeriod();
        auto *a = &avg[w];
        cfg.onSnapshot = [a, cap](const Snapshot &snap) {
            const Snapshot thin = thinSnapshot(snap, cap);
            (*a)[0].sample(bdiSavings(thin));
            (*a)[1].sample(dedupSavings(thin));
            (*a)[2].sample(mapSavings(thin, 14));
            (*a)[3].sample(doppBdiSavings(thin, 14));
        };
        configs.push_back(std::move(cfg));
    }
    runCampaign(configs);

    TextTable table;
    table.header({"benchmark", "BdI", "exact dedup", "14-bit Dopp",
                  "14-bit Dopp + BdI"});

    double sums[4] = {};
    for (size_t w = 0; w < names.size(); ++w) {
        table.row({names[w], pct(avg[w][0].mean()),
                   pct(avg[w][1].mean()), pct(avg[w][2].mean()),
                   pct(avg[w][3].mean())});
        for (int i = 0; i < 4; ++i)
            sums[i] += avg[w][i].mean();
    }

    const double n = static_cast<double>(names.size());
    table.row({"average", pct(sums[0] / n), pct(sums[1] / n),
               pct(sums[2] / n), pct(sums[3] / n)});
    table.print("Fig 8: Doppelganger vs BdI compression vs exact "
                "deduplication");
    std::printf("(paper averages: BdI 20.9%%, dedup 5.3%%, Dopp 37.9%%, "
                "Dopp+BdI 43.9%%)\n");
    return 0;
}
