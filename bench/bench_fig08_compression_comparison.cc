/**
 * @file
 * Fig 8: approximate-data storage savings of Doppelgänger (14-bit map)
 * against base-delta-immediate compression (B∆I) and exact
 * deduplication, plus the combined Dopp + B∆I.
 *
 * Methodology (paper Sec 5.1): all four measured over baseline 2 MB
 * LLC snapshots, approximate blocks only. Paper averages: B∆I 20.9%,
 * exact dedup 5.3%, 14-bit Dopp 37.9%, Dopp+B∆I 43.9%.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    TextTable table;
    table.header({"benchmark", "BdI", "exact dedup", "14-bit Dopp",
                  "14-bit Dopp + BdI"});

    double sums[4] = {};
    for (const auto &name : workloadNames()) {
        SnapshotAverager avg[4];
        RunConfig cfg = defaultConfig();
        cfg.kind = LlcKind::Baseline;
        cfg.snapshotPeriod = snapshotPeriod();
        cfg.onSnapshot = [&](const Snapshot &snap) {
            const Snapshot thin = thinSnapshot(snap, snapshotCap());
            avg[0].sample(bdiSavings(thin));
            avg[1].sample(dedupSavings(thin));
            avg[2].sample(mapSavings(thin, 14));
            avg[3].sample(doppBdiSavings(thin, 14));
        };
        runWithProgress(name, cfg);

        table.row({name, pct(avg[0].mean()), pct(avg[1].mean()),
                   pct(avg[2].mean()), pct(avg[3].mean())});
        for (int i = 0; i < 4; ++i)
            sums[i] += avg[i].mean();
    }

    const double n = static_cast<double>(workloadNames().size());
    table.row({"average", pct(sums[0] / n), pct(sums[1] / n),
               pct(sums[2] / n), pct(sums[3] / n)});
    table.print("Fig 8: Doppelganger vs BdI compression vs exact "
                "deduplication");
    std::printf("(paper averages: BdI 20.9%%, dedup 5.3%%, Dopp 37.9%%, "
                "Dopp+BdI 43.9%%)\n");
    return 0;
}
