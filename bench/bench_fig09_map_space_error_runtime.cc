/**
 * @file
 * Fig 9: application output error (a) and normalized runtime (b) of
 * the split Doppelgänger LLC as the map space varies over 12/13/14
 * bits (base configuration otherwise: 1/4 data array, Table 1).
 *
 * Paper shape: error decreases with a larger map space and stays near
 * or below 10% at 14 bits except ferret and swaptions; runtime stays
 * within a few percent of the baseline, increasing slightly with the
 * map-space size.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const unsigned mapBits[] = {12, 13, 14};
    const auto &names = workloadNames();

    // Per workload: the baseline run, then one split run per map size.
    const size_t stride = 1 + 3;
    std::vector<RunConfig> configs;
    for (const auto &name : names) {
        RunConfig base = defaultConfig(name);
        base.kind = LlcKind::Baseline;
        configs.push_back(std::move(base));
        for (unsigned bits : mapBits) {
            RunConfig cfg = defaultConfig(name);
            cfg.kind = LlcKind::SplitDopp;
            cfg.mapBits = bits;
            cfg.dataFraction = 0.25;
            configs.push_back(std::move(cfg));
        }
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable err;
    err.header({"benchmark", "error @12-bit", "error @13-bit",
                "error @14-bit"});
    TextTable rt;
    rt.header({"benchmark", "runtime @12-bit", "runtime @13-bit",
               "runtime @14-bit"});

    std::vector<double> rtSum(3, 0.0);
    for (size_t w = 0; w < names.size(); ++w) {
        const RunResult &baseline = results[w * stride];
        std::vector<std::string> erow = {names[w]};
        std::vector<std::string> rrow = {names[w]};
        for (size_t i = 0; i < 3; ++i) {
            const RunResult &r = results[w * stride + 1 + i];
            const double error = workloadOutputError(
                names[w], r.output, baseline.output);
            const double norm = static_cast<double>(r.runtime) /
                static_cast<double>(baseline.runtime);
            erow.push_back(pct(error));
            rrow.push_back(strfmt("%.3f", norm));
            rtSum[i] += norm;
        }
        err.row(std::move(erow));
        rt.row(std::move(rrow));
    }

    const double n = static_cast<double>(names.size());
    rt.row({"average", strfmt("%.3f", rtSum[0] / n),
            strfmt("%.3f", rtSum[1] / n), strfmt("%.3f", rtSum[2] / n)});

    err.print("Fig 9a: output error vs map space size (split Dopp, "
              "1/4 data array)");
    rt.print("Fig 9b: normalized runtime vs map space size");
    std::printf("(paper: error ~10%% or lower at 14-bit except ferret/"
                "swaptions; runtime within ~1%% across map sizes)\n");
    return 0;
}
