/**
 * @file
 * Fig 13: LLC area reduction relative to the 2 MB baseline for the
 * split Doppelgänger (1/2, 1/4, 1/8 data arrays) and uniDoppelgänger
 * (3/4, 1/2, 1/4 data arrays) organizations, from the CactiLite model
 * (calibrated to the paper's Table 3 CACTI outputs). Purely
 * analytical — no simulation.
 *
 * Paper: Dopp 1.36× / 1.55× / 1.70×; uniDopp @1/4 3.15×.
 */

#include "energy/hardware_cost.hh"

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const CactiLite cacti;
    const LlcCost base = baselineLlcCost(cacti);
    std::printf("baseline 2 MB LLC: %.2f mm^2 (paper: 4.12 mm^2)\n",
                base.totalAreaMm2);

    TextTable table;
    table.header({"organization", "data array", "area (mm^2)",
                  "reduction", "paper"});

    struct Row
    {
        bool unified;
        double fraction;
        const char *paper;
    };
    const Row rows[] = {
        {false, 0.5, "1.36x"},  {false, 0.25, "1.55x"},
        {false, 0.125, "1.70x"}, {true, 0.75, "(modest)"},
        {true, 0.5, "-"},        {true, 0.25, "3.15x"},
    };

    for (const auto &r : rows) {
        RunConfig cfg;
        cfg.dataFraction = r.fraction;
        LlcCost cost;
        if (r.unified) {
            cost = uniLlcCost(cacti, uniDoppConfig(cfg));
        } else {
            cost = splitLlcCost(cacti, 16 * 1024, 16,
                                splitDoppConfig(cfg));
        }
        table.row({r.unified ? "uniDoppelganger" : "Doppelganger",
                   strfmt("%g", r.fraction),
                   strfmt("%.2f", cost.totalAreaMm2),
                   times(base.totalAreaMm2 / cost.totalAreaMm2),
                   r.paper});
    }

    table.print("Fig 13: LLC area reduction");
    return 0;
}
