/**
 * @file
 * Fig 7: approximate-data storage savings under Doppelgänger map
 * clustering, for 12-, 13- and 14-bit map spaces.
 *
 * Methodology (paper Sec 5.1): snapshot the baseline 2 MB LLC; blocks
 * with equal map values share one data entry; savings is the removable
 * fraction of approximate blocks, averaged over snapshots. Paper
 * averages: 65.2% (12-bit) and 37.9% (14-bit).
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const unsigned mapBits[] = {12, 13, 14};

    TextTable table;
    table.header({"benchmark", "12-bit map", "13-bit map", "14-bit map"});

    double sums[3] = {};
    for (const auto &name : workloadNames()) {
        SnapshotAverager avg[3];
        RunConfig cfg = defaultConfig();
        cfg.kind = LlcKind::Baseline;
        cfg.snapshotPeriod = snapshotPeriod();
        cfg.onSnapshot = [&](const Snapshot &snap) {
            const Snapshot thin = thinSnapshot(snap, snapshotCap());
            for (int i = 0; i < 3; ++i)
                avg[i].sample(mapSavings(thin, mapBits[i]));
        };
        runWithProgress(name, cfg);

        table.row({name, pct(avg[0].mean()), pct(avg[1].mean()),
                   pct(avg[2].mean())});
        for (int i = 0; i < 3; ++i)
            sums[i] += avg[i].mean();
    }

    const double n = static_cast<double>(workloadNames().size());
    table.row({"average", pct(sums[0] / n), pct(sums[1] / n),
               pct(sums[2] / n)});
    table.print("Fig 7: approx data storage savings vs map space size");
    std::printf("(paper averages: 65.2%% @12-bit, 37.9%% @14-bit)\n");
    return 0;
}
