/**
 * @file
 * Fig 7: approximate-data storage savings under Doppelgänger map
 * clustering, for 12-, 13- and 14-bit map spaces.
 *
 * Methodology (paper Sec 5.1): snapshot the baseline 2 MB LLC; blocks
 * with equal map values share one data entry; savings is the removable
 * fraction of approximate blocks, averaged over snapshots. Paper
 * averages: 65.2% (12-bit) and 37.9% (14-bit).
 */

#include <array>

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const std::array<unsigned, 3> mapBits = {12, 13, 14};
    const auto &names = workloadNames();
    const size_t cap = snapshotCap();

    // One averager set per workload; each is written only by the one
    // worker thread executing that workload's config.
    std::vector<std::array<SnapshotAverager, 3>> avg(names.size());
    std::vector<RunConfig> configs;
    for (size_t w = 0; w < names.size(); ++w) {
        RunConfig cfg = defaultConfig(names[w]);
        cfg.kind = LlcKind::Baseline;
        cfg.snapshotPeriod = snapshotPeriod();
        auto *a = &avg[w];
        cfg.onSnapshot = [a, cap, mapBits](const Snapshot &snap) {
            const Snapshot thin = thinSnapshot(snap, cap);
            for (size_t i = 0; i < mapBits.size(); ++i)
                (*a)[i].sample(mapSavings(thin, mapBits[i]));
        };
        configs.push_back(std::move(cfg));
    }
    runCampaign(configs);

    TextTable table;
    table.header({"benchmark", "12-bit map", "13-bit map", "14-bit map"});

    double sums[3] = {};
    for (size_t w = 0; w < names.size(); ++w) {
        table.row({names[w], pct(avg[w][0].mean()),
                   pct(avg[w][1].mean()), pct(avg[w][2].mean())});
        for (int i = 0; i < 3; ++i)
            sums[i] += avg[w][i].mean();
    }

    const double n = static_cast<double>(names.size());
    table.row({"average", pct(sums[0] / n), pct(sums[1] / n),
               pct(sums[2] / n)});
    table.print("Fig 7: approx data storage savings vs map space size");
    std::printf("(paper averages: 65.2%% @12-bit, 37.9%% @14-bit)\n");
    return 0;
}
