/**
 * @file
 * Fig 10: application output error (a) and normalized runtime (b) of
 * the split Doppelgänger LLC as the approximate data array shrinks
 * (1/2, 1/4, 1/8 of the 16 K tag entries; 14-bit map space).
 *
 * Paper shape: error *decreases* as the data array shrinks (less value
 * reuse); runtime increases slightly, worst for canneal; the base 1/4
 * configuration stays within 2.3% of baseline on average.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const double fractions[] = {0.5, 0.25, 0.125};

    TextTable err;
    err.header({"benchmark", "error @1/2", "error @1/4", "error @1/8"});
    TextTable rt;
    rt.header({"benchmark", "runtime @1/2", "runtime @1/4",
               "runtime @1/8"});

    std::vector<double> rtSum(3, 0.0);
    for (const auto &name : workloadNames()) {
        RunConfig base = defaultConfig();
        base.kind = LlcKind::Baseline;
        const RunResult baseline = runWithProgress(name, base);

        std::vector<std::string> erow = {name};
        std::vector<std::string> rrow = {name};
        for (int i = 0; i < 3; ++i) {
            RunConfig cfg = defaultConfig();
            cfg.kind = LlcKind::SplitDopp;
            cfg.mapBits = 14;
            cfg.dataFraction = fractions[i];
            const RunResult r = runWithProgress(name, cfg);
            const double error =
                workloadOutputError(name, r.output, baseline.output);
            const double norm = static_cast<double>(r.runtime) /
                static_cast<double>(baseline.runtime);
            erow.push_back(pct(error));
            rrow.push_back(strfmt("%.3f", norm));
            rtSum[static_cast<size_t>(i)] += norm;
        }
        err.row(std::move(erow));
        rt.row(std::move(rrow));
    }

    const double n = static_cast<double>(workloadNames().size());
    rt.row({"average", strfmt("%.3f", rtSum[0] / n),
            strfmt("%.3f", rtSum[1] / n), strfmt("%.3f", rtSum[2] / n)});

    err.print("Fig 10a: output error vs data array size (split Dopp, "
              "14-bit map)");
    rt.print("Fig 10b: normalized runtime vs data array size");
    std::printf("(paper: error falls as the array shrinks; runtime "
                "+2.3%% on average at 1/4, canneal most sensitive)\n");
    return 0;
}
