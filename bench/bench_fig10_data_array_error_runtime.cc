/**
 * @file
 * Fig 10: application output error (a) and normalized runtime (b) of
 * the split Doppelgänger LLC as the approximate data array shrinks
 * (1/2, 1/4, 1/8 of the 16 K tag entries; 14-bit map space).
 *
 * Paper shape: error *decreases* as the data array shrinks (less value
 * reuse); runtime increases slightly, worst for canneal; the base 1/4
 * configuration stays within 2.3% of baseline on average.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const double fractions[] = {0.5, 0.25, 0.125};
    const auto &names = workloadNames();

    const size_t stride = 1 + 3;
    std::vector<RunConfig> configs;
    for (const auto &name : names) {
        RunConfig base = defaultConfig(name);
        base.kind = LlcKind::Baseline;
        configs.push_back(std::move(base));
        for (double fraction : fractions) {
            RunConfig cfg = defaultConfig(name);
            cfg.kind = LlcKind::SplitDopp;
            cfg.mapBits = 14;
            cfg.dataFraction = fraction;
            configs.push_back(std::move(cfg));
        }
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable err;
    err.header({"benchmark", "error @1/2", "error @1/4", "error @1/8"});
    TextTable rt;
    rt.header({"benchmark", "runtime @1/2", "runtime @1/4",
               "runtime @1/8"});

    std::vector<double> rtSum(3, 0.0);
    for (size_t w = 0; w < names.size(); ++w) {
        const RunResult &baseline = results[w * stride];
        std::vector<std::string> erow = {names[w]};
        std::vector<std::string> rrow = {names[w]};
        for (size_t i = 0; i < 3; ++i) {
            const RunResult &r = results[w * stride + 1 + i];
            const double error = workloadOutputError(
                names[w], r.output, baseline.output);
            const double norm = static_cast<double>(r.runtime) /
                static_cast<double>(baseline.runtime);
            erow.push_back(pct(error));
            rrow.push_back(strfmt("%.3f", norm));
            rtSum[i] += norm;
        }
        err.row(std::move(erow));
        rt.row(std::move(rrow));
    }

    const double n = static_cast<double>(names.size());
    rt.row({"average", strfmt("%.3f", rtSum[0] / n),
            strfmt("%.3f", rtSum[1] / n), strfmt("%.3f", rtSum[2] / n)});

    err.print("Fig 10a: output error vs data array size (split Dopp, "
              "14-bit map)");
    rt.print("Fig 10b: normalized runtime vs data array size");
    std::printf("(paper: error falls as the array shrinks; runtime "
                "+2.3%% on average at 1/4, canneal most sensitive)\n");
    return 0;
}
