/**
 * @file
 * Memory-tier sweep (DESIGN.md §13): for each workload, compare where
 * the approximation lives —
 *
 *   precise       Baseline LLC + flat DRAM (the exact reference)
 *   cache-only    split Doppelgänger LLC + flat DRAM (the paper)
 *   memory-only   Baseline LLC + tiered approximate/NVM memory
 *   both          split Doppelgänger LLC + tiered memory
 *   both+guard    as `both`, with the cross-tier QoR guardrail armed
 *                 (degrade LLC fills, then migrate regions precise)
 *
 * and report end-to-end output error, runtime, LLC + memory-tier
 * energy (CactiLite for the SRAM arrays, per-partition profile
 * energies for the memory), the per-partition fault/latency/buffer
 * counters of the `both` run, and what the guardrail escalation did.
 *
 * The sweep runs through the resilient batch runner: set DOPP_JOURNAL
 * to make it resumable, DOPP_JOBS for parallelism (results are
 * bit-identical at any job count).
 *
 * Environment knobs (besides common.hh's):
 *   DOPP_MEMTIER_WORKLOADS  comma-separated workload subset
 *   DOPP_MEMTIER_BER        approx-DRAM read bit-error rate (1e-5)
 *   DOPP_MEMTIER_REFRESH    retention fault rate per epoch (1e-4)
 *   DOPP_QOR_BUDGET         guardrail error budget (0.002)
 */

#include <cstdlib>
#include <sstream>

#include "common.hh"
#include "energy/energy_model.hh"

using namespace dopp;
using namespace dopp::bench;

namespace
{

std::vector<std::string>
sweepWorkloads()
{
    const char *env = std::getenv("DOPP_MEMTIER_WORKLOADS");
    if (!env)
        return {"blackscholes", "kmeans"};
    std::vector<std::string> names;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ','))
        if (!name.empty())
            names.push_back(name);
    return names;
}

/** Batch indices of one workload's five modes. */
struct Cell
{
    size_t precise;
    size_t cacheOnly;
    size_t memOnly;
    size_t both;
    size_t bothGuard;
};

/** LLC energy via the snapshot overloads, per organization. */
double
llcEnergyPj(const RunResult &r)
{
    static const EnergyModel model;
    if (r.organization == "split-doppelganger") {
        return model
            .split(r.stats, "llc.precise", "llc.dopp", r.doppConfig)
            .totalPj();
    }
    return model.baseline(r.stats, "llc").totalPj();
}

/**
 * Memory energy: tiered runs integrate their per-partition counters;
 * flat runs are costed as one precise-DRAM partition over the legacy
 * mem.reads/mem.writes counters, so the columns are comparable.
 */
double
memEnergyPj(const RunResult &r, const MemTierConfig &tier)
{
    if (tier.enabled())
        return memTierEnergy(tier, r.stats).totalPj();
    const MemPartitionProfile flat = preciseDramProfile();
    return flat.readEnergyPj * static_cast<double>(r.memReads) +
        flat.writeEnergyPj * static_cast<double>(r.memWrites) +
        flat.standbyPowerMw * static_cast<double>(r.runtime);
}

std::string
u64str(u64 v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

} // namespace

int
main()
{
    const std::vector<std::string> names = sweepWorkloads();
    const double ber = envDouble("DOPP_MEMTIER_BER", 1e-5);
    const double refresh = envDouble("DOPP_MEMTIER_REFRESH", 1e-4);
    const double budget = envDouble("DOPP_QOR_BUDGET", 0.002);
    const MemTierConfig tier = defaultMemTier(ber, refresh);

    std::vector<RunConfig> configs;
    std::vector<Cell> cells(names.size());
    for (size_t w = 0; w < names.size(); ++w) {
        RunConfig precise = defaultConfig(names[w]);
        precise.kind = LlcKind::Baseline;
        cells[w].precise = configs.size();
        configs.push_back(std::move(precise));

        RunConfig cacheOnly = defaultConfig(names[w]);
        cacheOnly.kind = LlcKind::SplitDopp;
        cells[w].cacheOnly = configs.size();
        configs.push_back(std::move(cacheOnly));

        RunConfig memOnly = defaultConfig(names[w]);
        memOnly.kind = LlcKind::Baseline;
        memOnly.memTier = tier;
        cells[w].memOnly = configs.size();
        configs.push_back(std::move(memOnly));

        RunConfig both = defaultConfig(names[w]);
        both.kind = LlcKind::SplitDopp;
        both.memTier = tier;
        cells[w].both = configs.size();
        configs.push_back(std::move(both));

        RunConfig guarded = defaultConfig(names[w]);
        guarded.kind = LlcKind::SplitDopp;
        guarded.memTier = tier;
        guarded.qor.budget = budget;
        guarded.qor.migrateFactor = 1.5;
        cells[w].bothGuard = configs.size();
        configs.push_back(std::move(guarded));
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable modes;
    modes.header({"benchmark", "mode", "output err", "runtime",
                  "llc pJ", "mem pJ"});
    TextTable parts;
    parts.header({"benchmark", "partition", "kind", "reads", "writes",
                  "bit flips", "refresh flips", "wbuf hits",
                  "wbuf stalls", "pJ"});
    TextTable guard;
    guard.header({"benchmark", "err unguarded", "err guarded",
                  "budget", "degradations", "migrations",
                  "pages migrated"});

    struct Mode
    {
        const char *label;
        size_t Cell::*idx;
        bool tiered;
    };
    const Mode modeDefs[] = {
        {"precise", &Cell::precise, false},
        {"cache-only", &Cell::cacheOnly, false},
        {"memory-only", &Cell::memOnly, true},
        {"both", &Cell::both, true},
        {"both+guard", &Cell::bothGuard, true},
    };

    for (size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const RunResult &precise = results[cells[w].precise];

        for (const Mode &m : modeDefs) {
            const RunResult &r = results[cells[w].*(m.idx)];
            const MemTierConfig empty;
            modes.row({name, m.label,
                       pct(workloadOutputError(name, r.output,
                                               precise.output)),
                       strfmt("%.3f",
                              static_cast<double>(r.runtime) /
                                  static_cast<double>(
                                      precise.runtime)),
                       strfmt("%.3e", llcEnergyPj(r)),
                       strfmt("%.3e",
                              memEnergyPj(r, m.tiered ? tier
                                                      : empty))});
        }

        const RunResult &both = results[cells[w].both];
        const MemTierEnergy energy = memTierEnergy(tier, both.stats);
        for (size_t i = 0; i < tier.partitions.size(); ++i) {
            const MemPartitionProfile &prof = tier.partitions[i];
            const std::string pre =
                "mem.partition" + std::to_string(i) + ".";
            parts.row({name, prof.name,
                       memPartitionKindName(prof.kind),
                       u64str(both.stats.counter(pre + "reads")),
                       u64str(both.stats.counter(pre + "writes")),
                       u64str(both.stats.counter(pre + "bitFlips")),
                       u64str(both.stats.counter(pre +
                                                 "refreshFaults")),
                       u64str(both.stats.counter(pre + "wbufHits")),
                       u64str(both.stats.counter(pre + "wbufStalls")),
                       strfmt("%.3e", energy.partitions[i].totalPj())});
        }

        const RunResult &guarded = results[cells[w].bothGuard];
        guard.row({name,
                   pct(workloadOutputError(name, both.output,
                                           precise.output)),
                   pct(workloadOutputError(name, guarded.output,
                                           precise.output)),
                   pct(budget),
                   u64str(guarded.guardrailDegradations),
                   u64str(guarded.stats.counter("mem.migrations")),
                   u64str(guarded.stats.counter("mem.pagesMigrated"))});
    }

    modes.print("Memory tier: approximate cache vs approximate memory "
                "vs both");
    parts.print("Per-partition counters and energy (the `both` run)");
    guard.print("Cross-tier guardrail: degrade, then migrate");
    std::printf("(approx-DRAM ber=%g, retention/epoch=%g; equal "
                "configs are bit-identical at any DOPP_JOBS; set "
                "DOPP_JOURNAL to resume)\n",
                ber, refresh);
    return 0;
}
