/**
 * @file
 * Table 3: per-structure hardware cost — entry bit widths (computed
 * from first principles), total storage, area, access latency and
 * access energy (CactiLite), next to the paper's published values.
 * Also checks the Sec 5.6 claims: the 1.43× metadata-inclusive storage
 * reduction, the 168 pJ map generation, and the 1.31× lower combined
 * MTag+data access latency.
 */

#include "energy/hardware_cost.hh"

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

namespace
{

struct PaperRow
{
    unsigned tagBits;
    double totalKb;
    double areaMm2;
    double tagNs;
    double dataNs; // 0 = none
    double tagPj;
    double dataPj;
};

void
addRow(TextTable &table, const StructureCost &c, const PaperRow &paper)
{
    table.row({
        c.name,
        strfmt("%llu", static_cast<unsigned long long>(c.entries)),
        strfmt("%u (paper %u)", c.tagEntryBits, paper.tagBits),
        strfmt("%.0f (paper %.0f)", c.totalKb, paper.totalKb),
        strfmt("%.2f (paper %.2f)", c.areaMm2, paper.areaMm2),
        paper.dataNs > 0.0
            ? strfmt("%.2f/%.2f (paper %.2f/%.2f)", c.tagPart.latencyNs,
                     c.dataPart.latencyNs, paper.tagNs, paper.dataNs)
            : strfmt("%.2f/- (paper %.2f/-)", c.tagPart.latencyNs,
                     paper.tagNs),
        paper.dataPj > 0.0
            ? strfmt("%.1f/%.1f (paper %.1f/%.1f)",
                     c.tagPart.readEnergyPj, c.dataPart.readEnergyPj,
                     paper.tagPj, paper.dataPj)
            : strfmt("%.1f/- (paper %.1f/-)", c.tagPart.readEnergyPj,
                     paper.tagPj),
    });
}

} // namespace

int
main()
{
    const CactiLite cacti;
    RunConfig rc;
    const DoppConfig split = splitDoppConfig(rc);
    rc.dataFraction = 0.5; // Table 1/3: uniDopp with a 1 MB data array
    const DoppConfig uni = uniDoppConfig(rc);

    const StructureCost baseline =
        conventionalCost(cacti, "baseline LLC 2MB", 32 * 1024, 16);
    const StructureCost precise =
        conventionalCost(cacti, "precise cache 1MB", 16 * 1024, 16);
    const StructureCost dtag =
        doppTagCost(cacti, "Dopp tag array", split);
    const StructureCost ddata =
        doppDataCost(cacti, "Dopp data array 256KB", split);
    const StructureCost utag =
        doppTagCost(cacti, "uniDopp tag array", uni);
    const StructureCost udata =
        doppDataCost(cacti, "uniDopp data array 1MB", uni);

    TextTable table;
    table.header({"structure", "entries", "tag entry bits",
                  "total KB", "area mm^2", "latency tag/data ns",
                  "energy tag/data pJ"});
    addRow(table, baseline, {27, 2156, 4.12, 0.61, 1.27, 24.8, 667.4});
    addRow(table, precise, {28, 1080, 1.91, 0.45, 1.07, 13.5, 322.7});
    addRow(table, dtag, {77, 154, 0.19, 0.48, 0, 30.8, 0});
    addRow(table, ddata, {38, 275, 0.47, 0.30, 0.67, 6.3, 80.3});
    addRow(table, utag, {79, 316, 0.40, 0.74, 0, 61.3, 0});
    addRow(table, udata, {38, 1100, 1.95, 0.51, 1.07, 18.7, 322.7});
    table.print("Table 3: hardware cost, access latency and energy");

    // Sec 5.6 claims.
    const double storageReduction = baseline.totalKb /
        (precise.totalKb + dtag.totalKb + ddata.totalKb);
    std::printf("\nstorage reduction incl. metadata: %s "
                "(paper: 1.43x)\n",
                times(storageReduction).c_str());
    std::printf("map generation: %u maf ops x 8 pJ = %.0f pJ "
                "(paper: 168 pJ)\n",
                mapGenFlops, mapGenEnergyPj);
    const double dataLatencyReduction = baseline.dataPart.latencyNs /
        (ddata.tagPart.latencyNs + ddata.dataPart.latencyNs);
    std::printf("data access latency: baseline %.2f ns vs Dopp "
                "MTag+data %.2f ns -> %s lower (paper: 1.31x)\n",
                baseline.dataPart.latencyNs,
                ddata.tagPart.latencyNs + ddata.dataPart.latencyNs,
                times(dataLatencyReduction).c_str());
    return 0;
}
