/**
 * @file
 * Sec 3.5 statistics: the paper reports that "on average 4.4 tags map
 * to a single data entry, and only 5.1% of evicted blocks are dirty
 * upon a replacement" for the base split configuration. This bench
 * measures both per workload: the end-of-run tag/data occupancy ratio,
 * the average tags linked to each *evicted* data entry, and the dirty
 * fraction of evictions.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const auto &names = workloadNames();
    std::vector<RunConfig> configs;
    for (const auto &name : names) {
        RunConfig cfg = defaultConfig(name);
        cfg.kind = LlcKind::SplitDopp; // base config: 14-bit, 1/4
        configs.push_back(std::move(cfg));
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable table;
    table.header({"benchmark", "tags per data entry (resident)",
                  "tags per evicted entry", "dirty evictions"});

    double occSum = 0.0;
    double dirtySum = 0.0;
    u64 dirtyWorkloads = 0;
    for (size_t w = 0; w < names.size(); ++w) {
        const RunResult &r = results[w];
        const double dirtyFrac = r.doppHalf.evictions
            ? static_cast<double>(r.doppHalf.dirtyWritebacks) /
                static_cast<double>(r.doppHalf.evictions)
            : 0.0;

        table.row({names[w],
                   strfmt("%.2f", r.tagsPerDataEntry),
                   r.doppHalf.linkedTagsSamples
                       ? strfmt("%.2f", r.doppHalf.avgLinkedTags())
                       : "- (no data evictions)",
                   r.doppHalf.evictions ? pct(dirtyFrac) : "-"});
        occSum += r.tagsPerDataEntry;
        if (r.doppHalf.evictions) {
            dirtySum += dirtyFrac;
            ++dirtyWorkloads;
        }
    }

    table.row({"average",
               strfmt("%.2f", occSum / static_cast<double>(
                                  names.size())),
               "-",
               dirtyWorkloads
                   ? pct(dirtySum / static_cast<double>(dirtyWorkloads))
                   : "-"});
    table.print("Sec 3.5 statistics (base split configuration)");
    std::printf("(paper: on average 4.4 tags map to a single data "
                "entry; 5.1%% of evicted blocks are dirty)\n");
    return 0;
}
