/**
 * @file
 * Shared plumbing for the per-figure bench binaries: environment-tuned
 * workload scale, snapshot cadence, and run-with-progress helpers.
 *
 * Environment knobs:
 *   DOPP_WORKLOAD_SCALE   input-size multiplier (default 1.0)
 *   DOPP_SNAPSHOT_PERIOD  accesses between LLC snapshots (default 400k)
 *   DOPP_SNAPSHOT_CAP     max blocks analysed per snapshot (default 6k)
 */

#ifndef DOPP_BENCH_COMMON_HH
#define DOPP_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/similarity.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

namespace dopp::bench
{

inline u64
envU64(const char *name, u64 fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    const long long parsed = std::atoll(v);
    return parsed > 0 ? static_cast<u64>(parsed) : fallback;
}

inline u64
snapshotPeriod()
{
    return envU64("DOPP_SNAPSHOT_PERIOD", 400000);
}

inline size_t
snapshotCap()
{
    return static_cast<size_t>(envU64("DOPP_SNAPSHOT_CAP", 6000));
}

/** Deterministically thin @p snap to at most @p cap blocks. */
inline Snapshot
thinSnapshot(const Snapshot &snap, size_t cap)
{
    if (snap.size() <= cap)
        return snap;
    Snapshot out;
    out.reserve(cap);
    const double stride =
        static_cast<double>(snap.size()) / static_cast<double>(cap);
    for (size_t i = 0; i < cap; ++i)
        out.push_back(snap[static_cast<size_t>(
            static_cast<double>(i) * stride)]);
    return out;
}

/** Default run configuration at the environment's workload scale. */
inline RunConfig
defaultConfig()
{
    RunConfig cfg;
    cfg.workload.scale = workloadScaleFromEnv();
    return cfg;
}

/** Run @p name under @p cfg with a progress line on stderr. */
inline RunResult
runWithProgress(const std::string &name, const RunConfig &cfg)
{
    std::fprintf(stderr, "[bench] %s on %s (M=%u, data=%g)...\n",
                 name.c_str(), llcKindName(cfg.kind), cfg.mapBits,
                 cfg.dataFraction);
    return runWorkload(name, cfg);
}

} // namespace dopp::bench

#endif // DOPP_BENCH_COMMON_HH
