/**
 * @file
 * Shared plumbing for the per-figure bench binaries: environment-tuned
 * workload scale, snapshot cadence, and the batch-runner front end all
 * sweeps go through.
 *
 * Environment knobs (all strictly parsed; garbage values are fatal):
 *   DOPP_JOBS             concurrent runs (default: hardware threads)
 *   DOPP_WORKLOAD_SCALE   input-size multiplier (default 1.0)
 *   DOPP_SNAPSHOT_PERIOD  accesses between LLC snapshots (default 400k)
 *   DOPP_SNAPSHOT_CAP     max blocks analysed per snapshot (default 6k)
 *   DOPP_JOURNAL          checkpoint journal path; set it to make the
 *                         sweep resumable (kill it, rerun the same
 *                         command, completed runs are skipped)
 *   DOPP_RUN_TIMEOUT_MS   per-run watchdog deadline (default: none)
 *   DOPP_MAX_RETRIES      retries per run after a retryable failure
 *                         (default 0)
 */

#ifndef DOPP_BENCH_COMMON_HH
#define DOPP_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/similarity.hh"
#include "harness/batch_runner.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace dopp::bench
{

/** Strict env read: unset gives @p fallback, garbage is fatal. */
inline u64
envU64(const char *name, u64 fallback)
{
    return ::dopp::envU64(name, fallback);
}

inline u64
snapshotPeriod()
{
    return envU64("DOPP_SNAPSHOT_PERIOD", 400000);
}

inline size_t
snapshotCap()
{
    return static_cast<size_t>(envU64("DOPP_SNAPSHOT_CAP", 6000));
}

/** Deterministically thin @p snap to at most @p cap blocks. */
inline Snapshot
thinSnapshot(const Snapshot &snap, size_t cap)
{
    if (snap.size() <= cap)
        return snap;
    Snapshot out;
    out.reserve(cap);
    const double stride =
        static_cast<double>(snap.size()) / static_cast<double>(cap);
    for (size_t i = 0; i < cap; ++i)
        out.push_back(snap[static_cast<size_t>(
            static_cast<double>(i) * stride)]);
    return out;
}

/** Run configuration for @p workload at the environment's scale. */
inline RunConfig
defaultConfig(const std::string &workload)
{
    RunConfig cfg;
    cfg.workloadName = workload;
    cfg.workload.scale = workloadScaleFromEnv();
    return cfg;
}

/**
 * Run @p configs through the resilient batch runner (DOPP_JOBS-way
 * parallel) with a live progress line per finished run, and return
 * the results in submission order.
 *
 * Resilience plumbing (harness/batch_runner.hh): when DOPP_JOURNAL is
 * set the campaign checkpoints every completed run into that JSONL
 * journal and skips fingerprint-matching completed runs on rerun;
 * SIGINT/SIGTERM stop the sweep gracefully (in-flight runs finish,
 * the journal is flushed) and print the resume recipe. Configs that
 * carry observation hooks (onSnapshot/tracePath) always re-execute —
 * a journal cannot replay their side effects. DOPP_RUN_TIMEOUT_MS
 * arms a per-run watchdog and DOPP_MAX_RETRIES bounds retries.
 *
 * Any failed run is fatal: bench sweeps have no use for partial
 * figures.
 */
inline std::vector<RunResult>
runCampaign(const std::vector<RunConfig> &configs)
{
    BatchOptions opt;
    opt.cancel = installBatchSignalHandler();
    opt.runTimeoutMs = envU64("DOPP_RUN_TIMEOUT_MS", 0);
    opt.maxRetries =
        static_cast<unsigned>(envU64("DOPP_MAX_RETRIES", 0));
    opt.onProgress = [](const BatchProgress &p) {
        std::fprintf(stderr, "[bench] %zu/%zu %s on %s%s%s\n",
                     p.completed, p.total, p.result.workload.c_str(),
                     p.result.organization.c_str(),
                     p.resumed ? " (journal)" : "",
                     p.result.failed ? " FAILED" : "");
    };

    const char *journal = std::getenv("DOPP_JOURNAL");
    std::vector<RunResult> results;
    if (journal && *journal) {
        BatchOutcome out = runBatchResumable(configs, journal, opt);
        if (out.interrupted) {
            const size_t done = static_cast<size_t>(std::count_if(
                out.results.begin(), out.results.end(),
                [](const RunResult &r) { return !r.failed; }));
            fatal("sweep interrupted: %zu/%zu runs completed and "
                  "journaled; rerun the same command with "
                  "DOPP_JOURNAL=%s to resume",
                  done, configs.size(), journal);
        }
        results = std::move(out.results);
    } else {
        results = runBatch(configs, opt);
        if (opt.cancel->load()) {
            fatal("sweep interrupted (set DOPP_JOURNAL=<path> to "
                  "make sweeps resumable)");
        }
    }

    for (const RunResult &r : results) {
        if (r.failed) {
            fatal("batch run %s on %s failed: %s", r.workload.c_str(),
                  r.organization.c_str(), r.error.c_str());
        }
    }
    return results;
}

} // namespace dopp::bench

#endif // DOPP_BENCH_COMMON_HH
