/**
 * @file
 * Shared plumbing for the per-figure bench binaries: environment-tuned
 * workload scale, snapshot cadence, and the batch-runner front end all
 * sweeps go through.
 *
 * Environment knobs (all strictly parsed; garbage values are fatal):
 *   DOPP_JOBS             concurrent runs (default: hardware threads)
 *   DOPP_WORKLOAD_SCALE   input-size multiplier (default 1.0)
 *   DOPP_SNAPSHOT_PERIOD  accesses between LLC snapshots (default 400k)
 *   DOPP_SNAPSHOT_CAP     max blocks analysed per snapshot (default 6k)
 */

#ifndef DOPP_BENCH_COMMON_HH
#define DOPP_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/similarity.hh"
#include "harness/batch_runner.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace dopp::bench
{

/** Strict env read: unset gives @p fallback, garbage is fatal. */
inline u64
envU64(const char *name, u64 fallback)
{
    return ::dopp::envU64(name, fallback);
}

inline u64
snapshotPeriod()
{
    return envU64("DOPP_SNAPSHOT_PERIOD", 400000);
}

inline size_t
snapshotCap()
{
    return static_cast<size_t>(envU64("DOPP_SNAPSHOT_CAP", 6000));
}

/** Deterministically thin @p snap to at most @p cap blocks. */
inline Snapshot
thinSnapshot(const Snapshot &snap, size_t cap)
{
    if (snap.size() <= cap)
        return snap;
    Snapshot out;
    out.reserve(cap);
    const double stride =
        static_cast<double>(snap.size()) / static_cast<double>(cap);
    for (size_t i = 0; i < cap; ++i)
        out.push_back(snap[static_cast<size_t>(
            static_cast<double>(i) * stride)]);
    return out;
}

/** Run configuration for @p workload at the environment's scale. */
inline RunConfig
defaultConfig(const std::string &workload)
{
    RunConfig cfg;
    cfg.workloadName = workload;
    cfg.workload.scale = workloadScaleFromEnv();
    return cfg;
}

/**
 * Run @p configs through the batch runner (DOPP_JOBS-way parallel)
 * with a live progress line per finished run, and return the results
 * in submission order. Any failed run is fatal: bench sweeps have no
 * use for partial figures.
 */
inline std::vector<RunResult>
runBatchWithProgress(const std::vector<RunConfig> &configs)
{
    BatchOptions opt;
    opt.onProgress = [](const BatchProgress &p) {
        std::fprintf(stderr, "[bench] %zu/%zu %s on %s%s\n",
                     p.completed, p.total, p.result.workload.c_str(),
                     p.result.organization.c_str(),
                     p.result.failed ? " FAILED" : "");
    };
    std::vector<RunResult> results = runBatch(configs, opt);
    for (const RunResult &r : results) {
        if (r.failed) {
            fatal("batch run %s on %s failed: %s", r.workload.c_str(),
                  r.organization.c_str(), r.error.c_str());
        }
    }
    return results;
}

} // namespace dopp::bench

#endif // DOPP_BENCH_COMMON_HH
