/**
 * @file
 * Table 1: the simulated system configuration, printed from the live
 * defaults of the code (not hard-coded strings), so drift between the
 * documentation and the implementation is impossible.
 */

#include "common.hh"
#include "sim/hierarchy.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const HierarchyConfig hc;
    const RunConfig rc;
    const DoppConfig split = splitDoppConfig(rc);
    const DoppConfig uni = uniDoppConfig(rc);
    const MainMemory mem;

    TextTable table;
    table.header({"component", "configuration"});
    table.row({"processor", strfmt("%u cores, 1 GHz", hc.numCores)});
    table.row({"private L1",
               strfmt("%llu KB, %u-way, LRU, %llu-cycle, 64 B blocks",
                      static_cast<unsigned long long>(hc.l1Bytes / 1024),
                      hc.l1Ways,
                      static_cast<unsigned long long>(hc.l1Latency))});
    table.row({"private L2",
               strfmt("%llu KB, %u-way, LRU, %llu-cycle",
                      static_cast<unsigned long long>(hc.l2Bytes / 1024),
                      hc.l2Ways,
                      static_cast<unsigned long long>(hc.l2Latency))});
    table.row({"shared LLC",
               strfmt("%llu MB, %u-way, LRU, inclusive, %llu-cycle",
                      static_cast<unsigned long long>(
                          rc.baselineBytes / 1024 / 1024),
                      rc.llcWays,
                      static_cast<unsigned long long>(rc.llcLatency))});
    table.row({"main memory",
               strfmt("%llu-cycle latency",
                      static_cast<unsigned long long>(mem.latency()))});
    table.row({"coherence", "MSI directory at the LLC"});
    table.row({"precise cache (split)",
               strfmt("%llu KB, %u-way",
                      static_cast<unsigned long long>(
                          rc.baselineBytes / 2 / 1024),
                      rc.llcWays)});
    table.row({"Doppelganger tag array",
               strfmt("%u K tags, %u-way", split.tagEntries / 1024,
                      split.tagWays)});
    table.row({"Doppelganger data array",
               strfmt("%u entries (%u KB, 1/4 capacity), %u-way",
                      split.dataEntries,
                      split.dataEntries * 64 / 1024, split.dataWays)});
    table.row({"map space", strfmt("%u-bit", split.mapBits)});
    table.row({"uniDoppelganger tag array",
               strfmt("%u K tags, %u-way", uni.tagEntries / 1024,
                      uni.tagWays)});
    table.row({"uniDoppelganger data array",
               strfmt("%u entries (%u KB, 1/4 capacity), %u-way",
                      uni.dataEntries, uni.dataEntries * 64 / 1024,
                      uni.dataWays)});

    table.print("Table 1: configuration parameters used in evaluation");
    return 0;
}
